// Package lambdadb_test holds the testing.B benchmarks, one per table and
// figure of the paper's evaluation (Section 8). Sizes are scaled to keep
// `go test -bench=.` under a few minutes; cmd/benchrunner runs the larger
// sweeps behind EXPERIMENTS.md and can be pushed to the paper's full sizes.
//
// Mapping (see DESIGN.md §5):
//
//	BenchmarkFig4Tuples/Dims/Clusters  — Figure 4 (k-Means sweeps)
//	BenchmarkFig5PageRank              — Figure 5 left
//	BenchmarkFig5NBTuples/NBDims       — Figure 5 middle/right
//	BenchmarkIterateVsCTE              — Section 5.1 claim (E8)
//	BenchmarkLambdaVariants            — Section 7 claim (E9)
//	BenchmarkKMeansParallel            — thread-local merge ablation
//	BenchmarkPageRankParallel/CSRBuild — Section 6.3 ablations
//	BenchmarkInstantLoad               — bulk CSV loading (Section 3)
//	BenchmarkSnapshotSaveLoad          — persistence round trips
//
// internal/exec has the engine-level ablations (vectorized vs
// row-at-a-time, parallel aggregation scaling, hash join).
package lambdadb_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lambdadb/internal/analytics"
	"lambdadb/internal/bench"
	"lambdadb/internal/engine"
	"lambdadb/internal/graph"
	"lambdadb/internal/load"
	"lambdadb/internal/persist"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
	"lambdadb/internal/workload"
)

// benchSystems are the systems measured inside testing.B loops.
var benchSystems = bench.AllSystems

func runKMeansBench(b *testing.B, cfg bench.KMeansConfig) {
	ds, err := bench.PrepareKMeans(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range benchSystems {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.Run(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Tuples is Figure 4 (left): k-Means runtime vs tuple count
// (d=10, k=5, 3 iterations). Tuple counts keep the paper's 1:5 ratio.
func BenchmarkFig4Tuples(b *testing.B) {
	for _, n := range []int{20_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runKMeansBench(b, bench.KMeansConfig{N: n, D: 10, K: 5, Iters: 3, Seed: 1})
		})
	}
}

// BenchmarkFig4Dims is Figure 4 (middle): k-Means vs dimensions.
func BenchmarkFig4Dims(b *testing.B) {
	for _, d := range []int{3, 10, 50} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			runKMeansBench(b, bench.KMeansConfig{N: 50_000, D: d, K: 5, Iters: 3, Seed: 2})
		})
	}
}

// BenchmarkFig4Clusters is Figure 4 (right): k-Means vs cluster count.
func BenchmarkFig4Clusters(b *testing.B) {
	for _, k := range []int{3, 10, 50} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runKMeansBench(b, bench.KMeansConfig{N: 50_000, D: 10, K: k, Iters: 3, Seed: 3})
		})
	}
}

// BenchmarkFig5PageRank is Figure 5 (left): PageRank on an LDBC-like
// graph, damping 0.85, fixed iterations (scaled from the paper's 45).
func BenchmarkFig5PageRank(b *testing.B) {
	ds, err := bench.PreparePageRank(bench.PageRankConfig{
		Vertices: 5_000, DirectedEdges: 100_000, Damping: 0.85, Iters: 10, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range benchSystems {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.Run(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func runNBBench(b *testing.B, cfg bench.NBConfig) {
	ds, err := bench.PrepareNB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range benchSystems {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.Run(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5NBTuples is Figure 5 (middle): Naive Bayes training vs n.
func BenchmarkFig5NBTuples(b *testing.B) {
	for _, n := range []int{20_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runNBBench(b, bench.NBConfig{N: n, D: 10, Seed: 5})
		})
	}
}

// BenchmarkFig5NBDims is Figure 5 (right): Naive Bayes training vs d.
func BenchmarkFig5NBDims(b *testing.B) {
	for _, d := range []int{3, 10, 50} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			runNBBench(b, bench.NBConfig{N: 50_000, D: d, Seed: 6})
		})
	}
}

// BenchmarkIterateVsCTE isolates the Section 5.1 claim: a non-appending
// relation-update loop via ITERATE versus the appending recursive CTE.
func BenchmarkIterateVsCTE(b *testing.B) {
	const n, iters = 50_000, 10
	for i := 0; i < b.N; i++ {
		if _, err := bench.IterateVsCTE(n, iters, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLambdaVariants measures the Section 7 claim: parameterizing the
// k-Means operator with different lambdas keeps operator-level speed.
func BenchmarkLambdaVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.LambdaVariants(50_000, 10, 5, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansParallel ablates the operator's thread-local-merge design
// (Section 6.1) across worker counts.
func BenchmarkKMeansParallel(b *testing.B) {
	const n, d, k = 200_000, 10, 5
	data := workload.UniformVectors(n, d, 7)
	centers := workload.SampleCenters(data, n, d, k, 8)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := analytics.KMeans(data, n, d, centers, k,
					analytics.KMeansOptions{MaxIter: 3, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPageRankParallel ablates the per-iteration parallel rank update
// (Section 6.3) across worker counts.
func BenchmarkPageRankParallel(b *testing.B) {
	g := workload.SocialGraph(20_000, 400_000, 9)
	csr, err := graph.Build(g.Src, g.Dst)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := analytics.PageRank(csr, analytics.PageRankOptions{
					Damping: 0.85, Epsilon: 0, MaxIter: 10, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRBuild measures the temporary graph-index construction the
// PageRank operator performs per query (Section 6.3).
func BenchmarkCSRBuild(b *testing.B) {
	g := workload.SocialGraph(20_000, 400_000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Build(g.Src, g.Dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstantLoad measures the parallel CSV bulk loader (the paper's
// Section 3 cites fast loading as a key data-science property).
func BenchmarkInstantLoad(b *testing.B) {
	var sb strings.Builder
	const rows = 100_000
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%g,%g\n", i, float64(i)*0.5, float64(i)*0.25)
	}
	input := sb.String()
	schema := types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "a", Type: types.Float64},
		{Name: "b2", Type: types.Float64},
	}
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := storage.NewStore()
		if _, err := store.CreateTable("t", schema); err != nil {
			b.Fatal(err)
		}
		n, err := load.CSV(store, "t", strings.NewReader(input), load.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("loaded %d", n)
		}
	}
}

// BenchmarkSnapshotSaveLoad measures database image round trips.
func BenchmarkSnapshotSaveLoad(b *testing.B) {
	db := engine.Open()
	data := workload.UniformVectors(100_000, 4, 11)
	if err := workload.LoadVectorTable(db, "v", data, 100_000, 4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := persist.Save(db.Store(), &buf); err != nil {
			b.Fatal(err)
		}
		if _, err := persist.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
