module lambdadb

go 1.22
