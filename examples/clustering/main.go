// Clustering: the paper's Listing 3 in action. One tuned k-Means operator
// covers a whole family of algorithms through λ-expressions: default
// squared Euclidean (k-Means), Manhattan distance (k-Medians), and a
// custom anisotropic metric — all pre- and post-processed in the same SQL
// query.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lambdadb/internal/engine"
	"lambdadb/internal/types"
)

func main() {
	db := engine.Open()
	loadCustomerData(db)

	// Initial centers: three spread-out customers picked by SQL.
	mustExec(db, `CREATE TABLE center (spend DOUBLE, visits DOUBLE)`)
	mustExec(db, `INSERT INTO center
		SELECT spend, visits FROM customers WHERE id IN (0, 400, 800)`)

	fmt.Println("-- k-Means (default lambda: squared Euclidean) --")
	mustPrint(db, `SELECT * FROM KMEANS (
		(SELECT spend, visits FROM customers),
		(SELECT spend, visits FROM center),
		20) ORDER BY cluster`)

	// The paper's Listing 3: the same operator, explicit distance lambda.
	fmt.Println("-- k-Means (explicit λ, paper Listing 3) --")
	mustPrint(db, `SELECT * FROM KMEANS (
		(SELECT spend, visits FROM customers),
		(SELECT spend, visits FROM center),
		λ(a, b) (a.spend - b.spend)^2 + (a.visits - b.visits)^2,
		20) ORDER BY cluster`)

	// k-Medians: swap in the L1 norm. Same operator, different lambda.
	fmt.Println("-- k-Medians (λ = Manhattan distance) --")
	mustPrint(db, `SELECT * FROM KMEANS (
		(SELECT spend, visits FROM customers),
		(SELECT spend, visits FROM center),
		λ(a, b) abs(a.spend - b.spend) + abs(a.visits - b.visits),
		20) ORDER BY cluster`)

	// A domain-specific metric: spend differences matter 10x more than
	// visit differences. This is the flexibility Section 7 argues for —
	// no new operator, no UDF, just a lambda.
	fmt.Println("-- custom anisotropic metric (spend weighted 10x) --")
	mustPrint(db, `SELECT * FROM KMEANS (
		(SELECT spend, visits FROM customers),
		(SELECT spend, visits FROM center),
		λ(a, b) 10 * (a.spend - b.spend)^2 + (a.visits - b.visits)^2,
		20) ORDER BY cluster`)

	// Operators compose with relational SQL: cluster only high-value
	// customers (pre-processing) and post-aggregate the result — one query.
	fmt.Println("-- pre-filtered input + post-processed output, one query --")
	mustPrint(db, `SELECT count(*) AS clusters, min(spend) AS min_spend_center
		FROM KMEANS (
			(SELECT spend, visits FROM customers WHERE spend > 50),
			(SELECT spend, visits FROM center),
			20)`)
}

// loadCustomerData inserts three behavioral customer segments.
func loadCustomerData(db *engine.DB) {
	store := db.Store()
	schema := types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "spend", Type: types.Float64},
		{Name: "visits", Type: types.Float64},
	}
	tbl, err := store.CreateTable("customers", schema)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	b := types.NewBatch(schema)
	segment := func(base int, spend, visits float64, n int) {
		for i := 0; i < n; i++ {
			b.Cols[0].AppendInt(int64(base + i))
			b.Cols[1].AppendFloat(spend + r.NormFloat64()*5)
			b.Cols[2].AppendFloat(visits + r.NormFloat64()*2)
		}
	}
	segment(0, 20, 25, 400)   // frequent low spenders
	segment(400, 90, 5, 400)  // rare big spenders
	segment(800, 60, 15, 200) // middle segment
	tx := store.Begin()
	if err := tx.Insert(tbl, b); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
}

func mustExec(db *engine.DB, q string) {
	if _, err := db.Exec(q); err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
}

func mustPrint(db *engine.DB, q string) {
	res, err := db.Query(q)
	if err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
	fmt.Print(res)
	fmt.Println()
}
