// Classify: the paper's model-application pattern (Section 6.2) end to
// end. Naive Bayes training runs as a physical operator; the model is an
// ordinary relation that can be stored in a table, inspected with SQL,
// and applied to new data with NAIVE_BAYES_PREDICT — including fresh rows
// inserted transactionally between training and prediction (the
// "no stale data" property of a unified system).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lambdadb/internal/engine"
	"lambdadb/internal/types"
)

func main() {
	db := engine.Open()
	loadIrisLike(db)

	// Train and persist the model relationally.
	mustExec(db, `CREATE TABLE model (label BIGINT, feature BIGINT, prior DOUBLE, mean DOUBLE, stddev DOUBLE)`)
	mustExec(db, `INSERT INTO model
		SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT sepal, petal, species FROM flowers))`)

	fmt.Println("-- the trained model is a relation: inspect it with SQL --")
	mustPrint(db, `SELECT * FROM model ORDER BY label, feature`)

	// Predict labels for unlabeled measurements.
	mustExec(db, `CREATE TABLE unknown (sepal DOUBLE, petal DOUBLE)`)
	mustExec(db, `INSERT INTO unknown VALUES (5.0, 1.4), (6.8, 5.6), (5.1, 1.6), (7.0, 6.0)`)

	fmt.Println("-- predictions (0 = short-petal species, 1 = long-petal) --")
	mustPrint(db, `SELECT * FROM NAIVE_BAYES_PREDICT (
		(SELECT label, feature, prior, mean, stddev FROM model),
		(SELECT sepal, petal FROM unknown))`)

	// The whole pipeline also works as one ad-hoc query, no stored model.
	fmt.Println("-- train + predict in a single query --")
	mustPrint(db, `SELECT count(*) AS n, sum(label) AS predicted_long_petal
		FROM NAIVE_BAYES_PREDICT (
			(SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT sepal, petal, species FROM flowers))),
			(SELECT sepal, petal FROM unknown))`)

	// Fresh data arrives transactionally; retraining sees it immediately —
	// no ETL cycle, no stale data.
	mustExec(db, `INSERT INTO flowers
		SELECT sepal + 0.1, petal + 0.1, species FROM flowers WHERE species = 1`)
	fmt.Println("-- retrained priors after new rows arrived (class 1 grew) --")
	mustPrint(db, `SELECT label, max(prior) AS prior
		FROM NAIVE_BAYES_TRAIN ((SELECT sepal, petal, species FROM flowers))
		GROUP BY label ORDER BY label`)
}

// loadIrisLike creates a two-species flower table with Gaussian features.
func loadIrisLike(db *engine.DB) {
	store := db.Store()
	schema := types.Schema{
		{Name: "sepal", Type: types.Float64},
		{Name: "petal", Type: types.Float64},
		{Name: "species", Type: types.Int64},
	}
	tbl, err := store.CreateTable("flowers", schema)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b := types.NewBatch(schema)
	for i := 0; i < 300; i++ {
		b.Cols[0].AppendFloat(5.0 + r.NormFloat64()*0.35)
		b.Cols[1].AppendFloat(1.5 + r.NormFloat64()*0.2)
		b.Cols[2].AppendInt(0)
	}
	for i := 0; i < 300; i++ {
		b.Cols[0].AppendFloat(6.6 + r.NormFloat64()*0.4)
		b.Cols[1].AppendFloat(5.5 + r.NormFloat64()*0.5)
		b.Cols[2].AppendInt(1)
	}
	tx := store.Begin()
	if err := tx.Insert(tbl, b); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
}

func mustExec(db *engine.DB, q string) {
	if _, err := db.Exec(q); err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
}

func mustPrint(db *engine.DB, q string) {
	res, err := db.Query(q)
	if err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
	fmt.Print(res)
	fmt.Println()
}
