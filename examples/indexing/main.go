// Indexing: secondary indexes, ANALYZE statistics, and the cost-based
// planner — watch EXPLAIN switch from a full scan to an IndexScan, see
// the planner reorder a join chain, and time the difference.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"lambdadb/internal/engine"
)

func main() {
	db := engine.Open()

	// A small star: orders (fact), customers (mid), regions (dim).
	mustExec(db, `CREATE TABLE regions (id BIGINT, name VARCHAR)`)
	mustExec(db, `INSERT INTO regions VALUES
		(0,'north'),(1,'south'),(2,'east'),(3,'west')`)
	mustExec(db, `CREATE TABLE customers (id BIGINT, region BIGINT)`)
	loadRows(db, "customers", 5_000, func(i int) string {
		return fmt.Sprintf("(%d, %d)", i, i%4)
	})
	mustExec(db, `CREATE TABLE orders (id BIGINT, customer BIGINT, amount DOUBLE)`)
	loadRows(db, "orders", 100_000, func(i int) string {
		return fmt.Sprintf("(%d, %d, %g)", i, i%5_000, float64(i%997)*1.5)
	})

	// Without an index and without statistics, a point query scans.
	q := `SELECT amount FROM orders WHERE id = 73500`
	fmt.Println("-- before: EXPLAIN of a point query --")
	mustPrint(db, "EXPLAIN "+q)
	before := timeQuery(db, q)

	// An ordered index serves point and range probes; ANALYZE gives the
	// planner real row counts, NDVs, and histograms.
	mustExec(db, `CREATE INDEX orders_id ON orders(id)`)
	mustExec(db, `CREATE INDEX orders_cust ON orders(customer) USING HASH`)
	mustExec(db, `ANALYZE`)

	fmt.Println("-- after CREATE INDEX + ANALYZE --")
	mustPrint(db, "EXPLAIN "+q)
	after := timeQuery(db, q)
	fmt.Printf("point query: %v unindexed, %v indexed\n\n", before, after)

	// Range probes use the ordered index once statistics exist.
	fmt.Println("-- range probe --")
	mustPrint(db, `EXPLAIN SELECT count(*) FROM orders WHERE id >= 500 AND id < 600`)

	// The planner reorders the join chain to start from the selective
	// region filter instead of the 100k-row fact table the query leads with.
	fmt.Println("-- join order: written fact-first, planned dim-first --")
	mustPrint(db, `EXPLAIN SELECT count(*)
		FROM orders
		JOIN customers ON orders.customer = customers.id
		JOIN regions   ON customers.region = regions.id
		WHERE regions.id = 2`)

	// EXPLAIN ANALYZE shows estimated vs. actual rows per operator.
	fmt.Println("-- EXPLAIN ANALYZE: est vs. actual --")
	mustPrint(db, `EXPLAIN ANALYZE SELECT amount FROM orders WHERE id = 73500`)

	// The catalog: indexes and collected statistics are ordinary tables.
	fmt.Println("-- system.indexes --")
	mustPrint(db, `SELECT * FROM system.indexes`)
	fmt.Println("-- system.table_stats for orders --")
	mustPrint(db, `SELECT column_name, row_count, ndv, min, max
		FROM system.table_stats WHERE table_name = 'orders'`)
}

// loadRows inserts n generated rows in chunks (one giant statement is slow
// to parse; 5k-row chunks keep this example snappy).
func loadRows(db *engine.DB, table string, n int, row func(i int) string) {
	const chunk = 5_000
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		vals := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			vals = append(vals, row(i))
		}
		mustExec(db, fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(vals, ", ")))
	}
}

func timeQuery(db *engine.DB, q string) time.Duration {
	start := time.Now()
	if _, err := db.Query(q); err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
	return time.Since(start)
}

func mustExec(db *engine.DB, q string) {
	if _, err := db.Exec(q); err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
}

func mustPrint(db *engine.DB, q string) {
	res, err := db.Exec(q)
	if err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
	fmt.Print(res)
	fmt.Println()
}
