// Quickstart: create tables, load data, run ordinary SQL, and use the
// paper's ITERATE construct — all through the public engine API.
package main

import (
	"fmt"
	"log"

	"lambdadb/internal/engine"
)

func main() {
	db := engine.Open()

	// Plain SQL: DDL, DML, transactions.
	mustExec(db, `CREATE TABLE sensors (id BIGINT, room VARCHAR, temp DOUBLE)`)
	mustExec(db, `INSERT INTO sensors VALUES
		(1, 'lab', 21.5), (2, 'lab', 22.0), (3, 'office', 19.5),
		(4, 'office', 20.0), (5, 'server', 31.0)`)

	fmt.Println("-- average temperature per room --")
	mustPrint(db, `SELECT room, avg(temp) AS avg_temp, count(*) AS sensors
		FROM sensors GROUP BY room ORDER BY room`)

	// Updates are transactional; analytics always see a consistent snapshot.
	mustExec(db, `UPDATE sensors SET temp = temp + 0.5 WHERE room = 'server'`)
	fmt.Println("-- hottest sensor --")
	mustPrint(db, `SELECT id, room, temp FROM sensors ORDER BY temp DESC LIMIT 1`)

	// The paper's Listing 1: ITERATE, a non-appending iteration in SQL.
	// Find the smallest three-digit multiple of seven.
	fmt.Println("-- ITERATE: smallest three-digit multiple of 7 --")
	mustPrint(db, `SELECT * FROM ITERATE (
		(SELECT 7 "x"),
		(SELECT x + 7 FROM iterate),
		(SELECT x FROM iterate WHERE x >= 100))`)

	// ITERATE as a general fixpoint tool: Newton iteration for sqrt(2).
	fmt.Println("-- ITERATE: Newton iteration for sqrt(2) --")
	mustPrint(db, `SELECT * FROM ITERATE (
		(SELECT 1.0 AS x),
		(SELECT (x + 2 / x) / 2 FROM iterate),
		(SELECT x FROM iterate WHERE abs(x * x - 2) < 0.000000001))`)

	// Recursive CTEs still work as in SQL:1999 (appending semantics).
	fmt.Println("-- WITH RECURSIVE: factorials --")
	mustPrint(db, `WITH RECURSIVE f (n, fact) AS (
		SELECT 1, 1
		UNION ALL
		SELECT n + 1, fact * (n + 1) FROM f WHERE n < 8
	) SELECT n, fact FROM f ORDER BY n`)
}

func mustExec(db *engine.DB, q string) {
	if _, err := db.Exec(q); err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
}

func mustPrint(db *engine.DB, q string) {
	res, err := db.Query(q)
	if err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
	fmt.Print(res)
	fmt.Println()
}
