// Apriori: frequent itemset mining in plain SQL. The paper singles out the
// a-priori algorithm as one that "works well in SQL" (Section 4.2) — no
// operator or iteration extension needed, just joins and aggregation. The
// candidate-generation levels of a-priori map to self-joins over a basket
// table, with HAVING pruning below-support candidates at each level.
package main

import (
	"fmt"
	"log"

	"lambdadb/internal/engine"
)

func main() {
	db := engine.Open()

	mustExec(db, `CREATE TABLE baskets (basket BIGINT, item VARCHAR)`)
	mustExec(db, `INSERT INTO baskets VALUES
		(1, 'bread'), (1, 'milk'),
		(2, 'bread'), (2, 'diapers'), (2, 'beer'), (2, 'eggs'),
		(3, 'milk'), (3, 'diapers'), (3, 'beer'), (3, 'cola'),
		(4, 'bread'), (4, 'milk'), (4, 'diapers'), (4, 'beer'),
		(5, 'bread'), (5, 'milk'), (5, 'diapers'), (5, 'cola')`)

	const minSupport = 3

	fmt.Println("-- level 1: frequent items (support >= 3) --")
	mustPrint(db, fmt.Sprintf(`SELECT item, count(*) AS support
		FROM baskets GROUP BY item HAVING count(*) >= %d ORDER BY support DESC, item`, minSupport))

	fmt.Println("-- level 2: frequent pairs via self-join --")
	mustPrint(db, fmt.Sprintf(`
		WITH freq AS (
			SELECT item FROM baskets GROUP BY item HAVING count(*) >= %d
		)
		SELECT a.item AS item1, b.item AS item2, count(*) AS support
		FROM baskets a
		  JOIN baskets b ON a.basket = b.basket
		  JOIN freq fa ON a.item = fa.item
		  JOIN freq fb ON b.item = fb.item
		WHERE a.item < b.item
		GROUP BY a.item, b.item
		HAVING count(*) >= %d
		ORDER BY support DESC, item1, item2`, minSupport, minSupport))

	fmt.Println("-- level 3: frequent triples --")
	mustPrint(db, fmt.Sprintf(`
		WITH freq AS (
			SELECT item FROM baskets GROUP BY item HAVING count(*) >= %d
		)
		SELECT a.item AS item1, b.item AS item2, c.item AS item3, count(*) AS support
		FROM baskets a
		  JOIN baskets b ON a.basket = b.basket
		  JOIN baskets c ON b.basket = c.basket
		  JOIN freq fa ON a.item = fa.item
		  JOIN freq fb ON b.item = fb.item
		  JOIN freq fc ON c.item = fc.item
		WHERE a.item < b.item AND b.item < c.item
		GROUP BY a.item, b.item, c.item
		HAVING count(*) >= %d
		ORDER BY support DESC, item1`, minSupport, minSupport))

	// Association strength for the classic pair, all in SQL.
	fmt.Println("-- confidence(diapers -> beer) --")
	mustPrint(db, `
		WITH both1 AS (
			SELECT count(*) AS c FROM (
				SELECT a.basket FROM baskets a JOIN baskets b ON a.basket = b.basket
				WHERE a.item = 'diapers' AND b.item = 'beer'
			) q
		), ante AS (
			SELECT count(*) AS c FROM baskets WHERE item = 'diapers'
		)
		SELECT cast(both1.c AS DOUBLE) / ante.c AS confidence FROM both1, ante`)
}

func mustExec(db *engine.DB, q string) {
	if _, err := db.Exec(q); err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
}

func mustPrint(db *engine.DB, q string) {
	res, err := db.Query(q)
	if err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
	fmt.Print(res)
	fmt.Println()
}
