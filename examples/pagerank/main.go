// PageRank: graph analytics on relational data (the paper's Listing 2 and
// Section 6.3). An LDBC-like social graph lives in an ordinary edges
// table; the PAGERANK operator builds its CSR index on the fly, and the
// result is a relation that joins back to the base data — compared against
// the same computation expressed with ITERATE.
package main

import (
	"fmt"
	"log"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/workload"
)

func main() {
	db := engine.Open()

	// An 2000-person social network with heavy-tailed degrees.
	g := workload.SocialGraph(2000, 20000, 7)
	if err := workload.LoadEdgeTable(db, "edges", g.Src, g.Dst); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded person-knows-person graph: %d vertices, %d directed edges\n\n",
		g.NumVertices, g.NumDirectedEdges())

	// The paper's Listing 2: operator-centric PageRank.
	fmt.Println("-- top 5 most influential people (PAGERANK operator) --")
	start := time.Now()
	mustPrint(db, `SELECT * FROM PAGERANK ((SELECT src, dest FROM edges), 0.85, 0.0001)
		ORDER BY rank DESC LIMIT 5`)
	opTime := time.Since(start)

	// The same ranking via the SQL-centric ITERATE formulation: joins over
	// the edges table instead of a CSR index.
	fmt.Println("-- the same, via ITERATE (SQL-centric, 20 iterations) --")
	start = time.Now()
	mustPrint(db, `SELECT v, rank FROM ITERATE (
		(SELECT v.src AS v, 1.0 / t.n AS rank, 0 AS iter
		 FROM (SELECT DISTINCT src FROM edges) v,
		      (SELECT cast(count(*) AS DOUBLE) AS n FROM (SELECT DISTINCT src FROM edges) q) t),
		(WITH outdeg AS (
		    SELECT src, count(*) AS deg FROM edges GROUP BY src
		  ), contrib AS (
		    SELECT e.dest AS v, sum(r.rank / o.deg) AS inc
		    FROM iterate r
		      JOIN outdeg o ON r.v = o.src
		      JOIN edges e ON r.v = e.src
		    GROUP BY e.dest
		  )
		  SELECT r.v AS v, 0.15 / t.n + 0.85 * coalesce(c.inc, 0.0) AS rank, r.iter + 1 AS iter
		  FROM iterate r
		    LEFT JOIN contrib c ON r.v = c.v,
		    (SELECT cast(count(*) AS DOUBLE) AS n FROM iterate) t),
		(SELECT v FROM iterate WHERE iter >= 20 LIMIT 1))
		ORDER BY rank DESC LIMIT 5`)
	iterTime := time.Since(start)

	fmt.Printf("operator: %v   iterate: %v   (the CSR operator wins — paper Section 8.4.2)\n\n",
		opTime.Round(time.Millisecond), iterTime.Round(time.Millisecond))

	// Post-processing in the same query: rank mass of the top decile.
	fmt.Println("-- rank statistics computed in the same SQL query --")
	mustPrint(db, `SELECT count(*) AS vertices, sum(rank) AS total_rank, max(rank) AS top_rank
		FROM PAGERANK ((SELECT src, dest FROM edges), 0.85, 0.0001)`)
}

func mustPrint(db *engine.DB, q string) {
	res, err := db.Query(q)
	if err != nil {
		log.Fatalf("%v\nquery: %s", err, q)
	}
	fmt.Print(res)
	fmt.Println()
}
