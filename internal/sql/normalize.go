package sql

import "strings"

// NormalizeStatement canonicalizes a single statement's text for use as a
// plan-cache key: comments are stripped, whitespace runs collapse to one
// space, and a single trailing semicolon is dropped, while quoted string
// literals and quoted identifiers are preserved byte-for-byte. It is a pure
// byte scan — no lexing or parsing — so the cache-hit fast path stays cheap.
//
// ok is false when the text is not a safely keyable single statement: empty
// input, more than one top-level statement, an unterminated quote, or an
// unterminated block comment (which the lexer rejects too).
func NormalizeStatement(src string) (key string, ok bool) {
	var sb strings.Builder
	sb.Grow(len(src))
	pendingSpace := false
	// emit appends one byte, collapsing any pending whitespace run into a
	// single separating space first.
	emit := func(c byte) {
		if pendingSpace && sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		pendingSpace = false
		sb.WriteByte(c)
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			pendingSpace = true
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return "", false
			}
			i += 2 + end + 2
			pendingSpace = true
		case c == '\'' || c == '"':
			// Copy the quoted region verbatim, honoring doubled-quote
			// escapes. An unterminated quote is not keyable.
			q := c
			emit(c)
			i++
			for {
				if i >= len(src) {
					return "", false
				}
				emit(src[i])
				if src[i] == q {
					if i+1 < len(src) && src[i+1] == q {
						emit(q)
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		case c == ';':
			// Only a trailing semicolon (modulo whitespace/comments) is
			// allowed; anything after means multi-statement text.
			j := i + 1
			for j < len(src) {
				d := src[j]
				if d == ' ' || d == '\t' || d == '\n' || d == '\r' {
					j++
					continue
				}
				if d == '-' && j+1 < len(src) && src[j+1] == '-' {
					for j < len(src) && src[j] != '\n' {
						j++
					}
					continue
				}
				if d == '/' && j+1 < len(src) && src[j+1] == '*' {
					end := strings.Index(src[j+2:], "*/")
					if end < 0 {
						return "", false
					}
					j += 2 + end + 2
					continue
				}
				return "", false
			}
			i = len(src)
		default:
			emit(c)
			i++
		}
	}
	if sb.Len() == 0 {
		return "", false
	}
	return sb.String(), true
}
