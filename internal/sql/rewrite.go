package sql

import "lambdadb/internal/expr"

// RewriteExprs returns a deep copy of st with fn applied (via expr.Rewrite)
// to every expression root, recursing through subqueries, CTEs, and table
// functions. The input statement is never mutated, so a prepared-statement
// template stays reusable: EXECUTE substitutes $N placeholders with constant
// values on the copy.
func RewriteExprs(st Statement, fn func(expr.Expr) expr.Expr) Statement {
	switch s := st.(type) {
	case *Select:
		return rewriteSelect(s, fn)
	case *Insert:
		c := *s
		if s.Rows != nil {
			c.Rows = make([][]expr.Expr, len(s.Rows))
			for i, row := range s.Rows {
				c.Rows[i] = rewriteExprList(row, fn)
			}
		}
		c.Query = rewriteSelect(s.Query, fn)
		return &c
	case *Update:
		c := *s
		c.Set = make([]Assignment, len(s.Set))
		for i, a := range s.Set {
			c.Set[i] = Assignment{Column: a.Column, Value: expr.Rewrite(a.Value, fn)}
		}
		c.Where = expr.Rewrite(s.Where, fn)
		return &c
	case *Delete:
		c := *s
		c.Where = expr.Rewrite(s.Where, fn)
		return &c
	}
	return st
}

func rewriteExprList(es []expr.Expr, fn func(expr.Expr) expr.Expr) []expr.Expr {
	if es == nil {
		return nil
	}
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = expr.Rewrite(e, fn)
	}
	return out
}

func rewriteSelect(s *Select, fn func(expr.Expr) expr.Expr) *Select {
	if s == nil {
		return nil
	}
	c := *s
	if s.With != nil {
		c.With = make([]CTE, len(s.With))
		for i, cte := range s.With {
			c.With[i] = cte
			c.With[i].Query = rewriteSelect(cte.Query, fn)
		}
	}
	c.Body = rewriteQueryExpr(s.Body, fn)
	if s.OrderBy != nil {
		c.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			c.OrderBy[i] = OrderItem{Expr: expr.Rewrite(o.Expr, fn), Desc: o.Desc}
		}
	}
	c.Limit = expr.Rewrite(s.Limit, fn)
	c.Offset = expr.Rewrite(s.Offset, fn)
	return &c
}

func rewriteQueryExpr(q QueryExpr, fn func(expr.Expr) expr.Expr) QueryExpr {
	switch n := q.(type) {
	case *SetOp:
		c := *n
		c.L = rewriteQueryExpr(n.L, fn)
		c.R = rewriteQueryExpr(n.R, fn)
		return &c
	case *SelectCore:
		c := *n
		c.Items = make([]SelectItem, len(n.Items))
		for i, it := range n.Items {
			c.Items[i] = it
			c.Items[i].Expr = expr.Rewrite(it.Expr, fn)
		}
		c.From = rewriteTableRef(n.From, fn)
		c.Where = expr.Rewrite(n.Where, fn)
		c.GroupBy = rewriteExprList(n.GroupBy, fn)
		c.Having = expr.Rewrite(n.Having, fn)
		return &c
	}
	return q
}

func rewriteTableRef(t TableRef, fn func(expr.Expr) expr.Expr) TableRef {
	switch n := t.(type) {
	case *Subquery:
		c := *n
		c.Query = rewriteSelect(n.Query, fn)
		return &c
	case *Join:
		c := *n
		c.L = rewriteTableRef(n.L, fn)
		c.R = rewriteTableRef(n.R, fn)
		c.On = expr.Rewrite(n.On, fn)
		return &c
	case *TableFunc:
		c := *n
		c.Args = make([]TableFuncArg, len(n.Args))
		for i, a := range n.Args {
			c.Args[i] = TableFuncArg{
				Query:  rewriteSelect(a.Query, fn),
				Lambda: a.Lambda,
				Scalar: expr.Rewrite(a.Scalar, fn),
			}
			if a.Lambda != nil {
				lc := *a.Lambda
				lc.Body = expr.Rewrite(a.Lambda.Body, fn)
				c.Args[i].Lambda = &lc
			}
		}
		return &c
	}
	return t
}
