package sql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// fuzzSeeds is the shared corpus: the regression inputs from the three lexer
// bugfixes plus a spread of valid and deliberately broken statements.
var fuzzSeeds = []string{
	// Lexer regression inputs.
	`SELECT "my""col" FROM t`,
	"SELECT 1 /* oops",
	"SELECT 1\n/* nested /* ",
	"1e", "1e+", "1E-", "2.5e", "SELECT 3e+ FROM t",
	"٢\xa2e0", // non-ASCII digit: used to loop lexAll forever
	// Valid statements across the grammar.
	"SELECT 1",
	"SELECT x, count(*) FROM t WHERE id = 1 GROUP BY x HAVING count(*) > 2 ORDER BY x LIMIT 10",
	"SELECT a.x, b.y FROM a JOIN b ON a.id = b.id",
	"WITH c AS (SELECT 1 AS x) SELECT x FROM c",
	"INSERT INTO t VALUES (1, 'two', 3.5, true, NULL)",
	"UPDATE t SET x = x + 1 WHERE id = 2",
	"DELETE FROM t WHERE id = 3",
	"CREATE TABLE t (id BIGINT, s VARCHAR)",
	"CREATE INDEX idx ON t (id)",
	"PREPARE q (INT, TEXT) AS SELECT * FROM t WHERE id = $1 AND s = $2",
	"EXECUTE q (1, 'x')",
	"DEALLOCATE ALL",
	"SELECT 'it''s', .5e1, 1e+3, 0x, $1 FROM t",
	// Statement splitting shapes.
	"SELECT 1; SELECT 2;",
	"SELECT ';' ; SELECT \"a;b\"",
	"-- comment only\n",
	"/* c */ SELECT 1 /* d */; UPDATE t SET x = ';'",
	// Broken things the front end must reject without panicking.
	"SELECT 'open",
	`SELECT "open`,
	"SELECT $",
	"SELECT $0",
	"SELECT (((",
	")", ";", "", "   ", "\x00", "\xff\xfe",
	"SELECT   FROM ",
}

// FuzzParse: Parse must never panic, and whatever it accepts must survive
// the downstream walkers (NumParams) and the plan-cache normalizer.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		for _, st := range stmts {
			if st == nil {
				t.Fatalf("Parse(%q) returned a nil statement", src)
			}
			if _, err := NumParams(st); err != nil {
				// Param-numbering gaps are a legitimate post-parse error.
				if !strings.Contains(err.Error(), "missing") {
					t.Fatalf("NumParams(%q) = %v", src, err)
				}
			}
		}
		// Normalize must not panic either; a parseable statement that is a
		// single statement must normalize successfully.
		NormalizeStatement(src)
	})
}

// FuzzSplitStatements: splitting must never panic, every returned piece must
// be non-empty, and re-splitting a piece must yield that piece back (the
// splitter is idempotent on its own output).
func FuzzSplitStatements(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		parts, err := SplitStatements(src)
		if err != nil {
			return
		}
		for _, p := range parts {
			if strings.TrimSpace(p) == "" {
				t.Fatalf("SplitStatements(%q) returned blank piece %q", src, p)
			}
			if utf8.ValidString(src) && !strings.Contains(src, p) {
				t.Fatalf("piece %q is not a substring of input %q", p, src)
			}
			again, err := SplitStatements(p)
			if err != nil {
				t.Fatalf("re-split of %q failed: %v", p, err)
			}
			if len(again) != 1 || again[0] != p {
				t.Fatalf("re-split of %q = %q", p, again)
			}
		}
	})
}
