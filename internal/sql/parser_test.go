package sql

import (
	"strings"
	"testing"

	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

func mustParseOne(t *testing.T, src string) Statement {
	t.Helper()
	st, err := ParseOne(src)
	if err != nil {
		t.Fatalf("ParseOne(%q): %v", src, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParseOne(t, `CREATE TABLE data (x FLOAT, y INTEGER, z FLOAT, desc1 VARCHAR(500))`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "data" || len(ct.Schema) != 4 {
		t.Fatalf("create = %+v", ct)
	}
	want := types.Schema{
		{Name: "x", Type: types.Float64},
		{Name: "y", Type: types.Int64},
		{Name: "z", Type: types.Float64},
		{Name: "desc1", Type: types.String},
	}
	if !ct.Schema.Equal(want) {
		t.Errorf("schema = %v, want %v", ct.Schema, want)
	}
}

func TestParseCreateTableIfNotExistsAndConstraints(t *testing.T) {
	st := mustParseOne(t, `CREATE TABLE IF NOT EXISTS t (id BIGINT PRIMARY KEY, v DOUBLE PRECISION NOT NULL)`)
	ct := st.(*CreateTable)
	if !ct.IfNotExists || len(ct.Schema) != 2 || ct.Schema[1].Type != types.Float64 {
		t.Errorf("create = %+v", ct)
	}
}

func TestParseInsertValues(t *testing.T) {
	st := mustParseOne(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	ins := st.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if c, ok := ins.Rows[1][0].(*expr.Const); !ok || c.Val.I != 2 {
		t.Errorf("row[1][0] = %v", ins.Rows[1][0])
	}
}

func TestParseInsertSelect(t *testing.T) {
	st := mustParseOne(t, `INSERT INTO t SELECT a, b FROM s WHERE a > 0`)
	ins := st.(*Insert)
	if ins.Query == nil {
		t.Fatal("expected INSERT ... SELECT")
	}
}

func TestParseSelectBasics(t *testing.T) {
	st := mustParseOne(t, `SELECT x, y + 1 AS y1 FROM t WHERE x > 2 GROUP BY x HAVING count(*) > 1 ORDER BY x DESC LIMIT 10 OFFSET 5`)
	sel := st.(*Select)
	core := sel.Body.(*SelectCore)
	if len(core.Items) != 2 || core.Items[1].Alias != "y1" {
		t.Fatalf("items = %+v", core.Items)
	}
	if core.Where == nil || len(core.GroupBy) != 1 || core.Having == nil {
		t.Error("missing clauses")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Error("order by missing")
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset missing")
	}
}

func TestParseSelectStarAndTableStar(t *testing.T) {
	st := mustParseOne(t, `SELECT *, t.* FROM t`)
	core := st.(*Select).Body.(*SelectCore)
	if !core.Items[0].Star || core.Items[1].TableStar != "t" {
		t.Errorf("items = %+v", core.Items)
	}
}

func TestParseImplicitAliasQuoted(t *testing.T) {
	// Listing 1 uses `SELECT 7 "x"`.
	st := mustParseOne(t, `SELECT 7 "x"`)
	core := st.(*Select).Body.(*SelectCore)
	if core.Items[0].Alias != "x" {
		t.Errorf("alias = %q", core.Items[0].Alias)
	}
}

func TestParseJoins(t *testing.T) {
	st := mustParseOne(t, `SELECT a.x FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id, d`)
	core := st.(*Select).Body.(*SelectCore)
	j, ok := core.From.(*Join)
	if !ok || j.Type != CrossJoin {
		t.Fatalf("outermost join = %+v", core.From)
	}
	lj := j.L.(*Join)
	if lj.Type != LeftJoin || lj.On == nil {
		t.Fatalf("left join = %+v", lj)
	}
	ij := lj.L.(*Join)
	if ij.Type != InnerJoin {
		t.Fatalf("inner join = %+v", ij)
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	st := mustParseOne(t, `SELECT s.x FROM (SELECT x FROM t) AS s`)
	core := st.(*Select).Body.(*SelectCore)
	sq, ok := core.From.(*Subquery)
	if !ok || sq.Alias != "s" {
		t.Fatalf("from = %+v", core.From)
	}
}

func TestParseUnion(t *testing.T) {
	st := mustParseOne(t, `SELECT 1 UNION ALL SELECT 2 UNION SELECT 3`)
	sel := st.(*Select)
	outer, ok := sel.Body.(*SetOp)
	if !ok || outer.All {
		t.Fatalf("outer = %+v", sel.Body)
	}
	inner := outer.L.(*SetOp)
	if !inner.All {
		t.Error("inner should be UNION ALL")
	}
}

func TestParseWithRecursive(t *testing.T) {
	src := `WITH RECURSIVE r (n) AS (
		SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 10
	) SELECT * FROM r`
	st := mustParseOne(t, src)
	sel := st.(*Select)
	if len(sel.With) != 1 || !sel.With[0].Recursive || sel.With[0].Name != "r" {
		t.Fatalf("with = %+v", sel.With)
	}
	if len(sel.With[0].Columns) != 1 || sel.With[0].Columns[0] != "n" {
		t.Errorf("columns = %v", sel.With[0].Columns)
	}
}

func TestParseIterate(t *testing.T) {
	// The paper's Listing 1.
	src := `SELECT * FROM ITERATE ((SELECT 7 "x"),
		(SELECT x + 7 FROM iterate),
		(SELECT x FROM iterate WHERE x >= 100))`
	st := mustParseOne(t, src)
	core := st.(*Select).Body.(*SelectCore)
	tf, ok := core.From.(*TableFunc)
	if !ok || tf.Name != "iterate" {
		t.Fatalf("from = %+v", core.From)
	}
	if len(tf.Args) != 3 {
		t.Fatalf("args = %d, want 3", len(tf.Args))
	}
	for i, a := range tf.Args {
		if a.Query == nil {
			t.Errorf("arg %d should be a subquery", i)
		}
	}
}

func TestParseKMeansWithLambda(t *testing.T) {
	// The paper's Listing 3.
	src := `SELECT * FROM KMEANS (
		(SELECT x, y FROM data),
		(SELECT x, y FROM center),
		λ(a, b) (a.x - b.x)^2 + (a.y - b.y)^2,
		3)`
	st := mustParseOne(t, src)
	core := st.(*Select).Body.(*SelectCore)
	tf := core.From.(*TableFunc)
	if tf.Name != "kmeans" || len(tf.Args) != 4 {
		t.Fatalf("tf = %+v", tf)
	}
	if tf.Args[0].Query == nil || tf.Args[1].Query == nil {
		t.Error("first two args must be subqueries")
	}
	l := tf.Args[2].Lambda
	if l == nil || len(l.Params) != 2 || l.Params[0] != "a" {
		t.Fatalf("lambda = %+v", l)
	}
	// Lambda body references must be ParamFields, not ColRefs.
	sawParam := false
	expr.Walk(l.Body, func(e expr.Expr) bool {
		if _, ok := e.(*expr.ParamField); ok {
			sawParam = true
		}
		if _, ok := e.(*expr.ColRef); ok {
			t.Errorf("lambda body contains unbound ColRef: %v", e)
		}
		return true
	})
	if !sawParam {
		t.Error("lambda body has no ParamFields")
	}
	if tf.Args[3].Scalar == nil {
		t.Error("fourth arg should be a scalar")
	}
}

func TestParseLambdaKeywordSpelling(t *testing.T) {
	src := `SELECT * FROM KMEANS ((SELECT x FROM d), (SELECT x FROM c), LAMBDA(a, b) abs(a.x - b.x), 5)`
	st := mustParseOne(t, src)
	tf := st.(*Select).Body.(*SelectCore).From.(*TableFunc)
	if tf.Args[2].Lambda == nil {
		t.Fatal("LAMBDA spelling not parsed")
	}
}

func TestParsePageRank(t *testing.T) {
	// The paper's Listing 2.
	src := `SELECT * FROM PAGERANK ((SELECT src, dest FROM edges), 0.85, 0.0001)`
	st := mustParseOne(t, src)
	tf := st.(*Select).Body.(*SelectCore).From.(*TableFunc)
	if tf.Name != "pagerank" || len(tf.Args) != 3 {
		t.Fatalf("tf = %+v", tf)
	}
	if tf.Args[1].Scalar == nil || tf.Args[2].Scalar == nil {
		t.Error("damping/epsilon should be scalars")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := mustParseOne(t, `SELECT 1 + 2 * 3 ^ 2`)
	item := st.(*Select).Body.(*SelectCore).Items[0]
	// Expect 1 + (2 * (3 ^ 2)).
	add := item.Expr.(*expr.BinOp)
	if add.Op != expr.OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.R.(*expr.BinOp)
	if mul.Op != expr.OpMul {
		t.Fatalf("second op = %v", mul.Op)
	}
	pow := mul.R.(*expr.BinOp)
	if pow.Op != expr.OpPow {
		t.Fatalf("third op = %v", pow.Op)
	}
}

func TestParsePowerRightAssociative(t *testing.T) {
	st := mustParseOne(t, `SELECT 2 ^ 3 ^ 2`)
	e := st.(*Select).Body.(*SelectCore).Items[0].Expr.(*expr.BinOp)
	if _, ok := e.R.(*expr.BinOp); !ok {
		t.Error("^ should be right associative")
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	st := mustParseOne(t, `SELECT * FROM t WHERE x BETWEEN 1 AND 10 AND y IN (1, 2, 3) AND z NOT IN (4)`)
	core := st.(*Select).Body.(*SelectCore)
	if core.Where == nil {
		t.Fatal("where missing")
	}
	s := core.Where.String()
	for _, frag := range []string{">=", "<=", "OR", "NOT"} {
		if !strings.Contains(s, frag) {
			t.Errorf("desugared WHERE %q missing %q", s, frag)
		}
	}
}

func TestParseCaseForms(t *testing.T) {
	st := mustParseOne(t, `SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM t`)
	if _, ok := st.(*Select).Body.(*SelectCore).Items[0].Expr.(*expr.Case); !ok {
		t.Error("searched CASE not parsed")
	}
	st = mustParseOne(t, `SELECT CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t`)
	c := st.(*Select).Body.(*SelectCore).Items[0].Expr.(*expr.Case)
	if len(c.Whens) != 2 {
		t.Fatalf("simple CASE arms = %d", len(c.Whens))
	}
	// Simple CASE desugars to equality conditions.
	if b, ok := c.Whens[0].Cond.(*expr.BinOp); !ok || b.Op != expr.OpEq {
		t.Error("simple CASE should desugar to =")
	}
}

func TestParseStringEscapes(t *testing.T) {
	st := mustParseOne(t, `SELECT 'it''s'`)
	c := st.(*Select).Body.(*SelectCore).Items[0].Expr.(*expr.Const)
	if c.Val.S != "it's" {
		t.Errorf("string = %q", c.Val.S)
	}
}

func TestParseComments(t *testing.T) {
	src := `SELECT 1 -- trailing comment
	/* block
	   comment */ + 2`
	st := mustParseOne(t, src)
	if st == nil {
		t.Fatal("nil statement")
	}
}

func TestParseNumbers(t *testing.T) {
	st := mustParseOne(t, `SELECT 42, 1.5, 0.0001, 1e3, 2.5e-2, .5`)
	items := st.(*Select).Body.(*SelectCore).Items
	wantFloats := map[int]float64{1: 1.5, 2: 0.0001, 3: 1000, 4: 0.025, 5: 0.5}
	if c := items[0].Expr.(*expr.Const); c.Val.T != types.Int64 || c.Val.I != 42 {
		t.Errorf("int literal = %v", c.Val)
	}
	for i, w := range wantFloats {
		c := items[i].Expr.(*expr.Const)
		if c.Val.T != types.Float64 || c.Val.F != w {
			t.Errorf("item %d = %v, want %v", i, c.Val, w)
		}
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := mustParseOne(t, `UPDATE t SET a = a + 1, b = 'x' WHERE a < 10`)
	upd := st.(*Update)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Fatalf("update = %+v", upd)
	}
	st = mustParseOne(t, `DELETE FROM t WHERE a = 1`)
	del := st.(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParseTxnStatements(t *testing.T) {
	stmts, err := Parse(`BEGIN; COMMIT; ROLLBACK;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, ok := stmts[0].(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := stmts[1].(*Commit); !ok {
		t.Error("COMMIT")
	}
	if _, ok := stmts[2].(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := Parse(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT FROM t`,            // missing select list
		`SELECT * FROM`,            // missing table
		`CREATE TABLE t`,           // missing column list
		`INSERT INTO t`,            // missing VALUES/SELECT
		`SELECT * FROM t WHERE`,    // missing predicate
		`SELECT 'unterminated`,     // bad string
		`SELECT * FROM t GROUP x`,  // missing BY
		`SELECT 1 +`,               // incomplete expression
		`SELECT count(DISTINCT x)`, // unsupported
		`SELECT * FROM t ORDER x`,  // missing BY
		`FOO BAR`,                  // unknown statement
		`SELECT CASE END`,          // CASE with no arms
		`SELECT cast(1 AS blob)`,   // unknown type
		`CREATE TABLE t (a BLOB)`,  // unknown column type
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT *\nFROM")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should carry line info, got %v", err)
	}
}

func TestParseNaiveBayesFuncs(t *testing.T) {
	src := `SELECT * FROM NAIVE_BAYES_PREDICT (
		(SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT f1, f2, label FROM train))),
		(SELECT f1, f2 FROM test))`
	st := mustParseOne(t, src)
	tf := st.(*Select).Body.(*SelectCore).From.(*TableFunc)
	if tf.Name != "naive_bayes_predict" || len(tf.Args) != 2 {
		t.Fatalf("tf = %+v", tf)
	}
	inner := tf.Args[0].Query.Body.(*SelectCore).From.(*TableFunc)
	if inner.Name != "naive_bayes_train" {
		t.Fatalf("inner = %+v", inner)
	}
}
