package sql

import (
	"fmt"

	"lambdadb/internal/expr"
)

// WalkExprs calls fn for every expression root in st, recursing through
// subqueries, CTEs, and table functions. Together with expr.Walk it lets
// callers enumerate every expression node in a statement — the engine uses
// it to find $N parameter placeholders for validation and type stamping.
func WalkExprs(st Statement, fn func(expr.Expr)) {
	switch s := st.(type) {
	case *Select:
		walkSelectExprs(s, fn)
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				fn(e)
			}
		}
		if s.Query != nil {
			walkSelectExprs(s.Query, fn)
		}
	case *Update:
		for _, a := range s.Set {
			fn(a.Value)
		}
		if s.Where != nil {
			fn(s.Where)
		}
	case *Delete:
		if s.Where != nil {
			fn(s.Where)
		}
	case *Explain:
		WalkExprs(s.Stmt, fn)
	case *Prepare:
		WalkExprs(s.Stmt, fn)
	case *Execute:
		for _, e := range s.Args {
			fn(e)
		}
	}
}

func walkSelectExprs(s *Select, fn func(expr.Expr)) {
	if s == nil {
		return
	}
	for _, cte := range s.With {
		walkSelectExprs(cte.Query, fn)
	}
	walkQueryExprs(s.Body, fn)
	for _, o := range s.OrderBy {
		fn(o.Expr)
	}
	if s.Limit != nil {
		fn(s.Limit)
	}
	if s.Offset != nil {
		fn(s.Offset)
	}
}

func walkQueryExprs(q QueryExpr, fn func(expr.Expr)) {
	switch n := q.(type) {
	case *SetOp:
		walkQueryExprs(n.L, fn)
		walkQueryExprs(n.R, fn)
	case *SelectCore:
		for _, it := range n.Items {
			if it.Expr != nil {
				fn(it.Expr)
			}
		}
		walkTableRefExprs(n.From, fn)
		if n.Where != nil {
			fn(n.Where)
		}
		for _, g := range n.GroupBy {
			fn(g)
		}
		if n.Having != nil {
			fn(n.Having)
		}
	}
}

func walkTableRefExprs(t TableRef, fn func(expr.Expr)) {
	switch n := t.(type) {
	case *TableName:
	case *Subquery:
		walkSelectExprs(n.Query, fn)
	case *Join:
		walkTableRefExprs(n.L, fn)
		walkTableRefExprs(n.R, fn)
		if n.On != nil {
			fn(n.On)
		}
	case *TableFunc:
		for _, a := range n.Args {
			if a.Query != nil {
				walkSelectExprs(a.Query, fn)
			}
			if a.Lambda != nil {
				fn(a.Lambda.Body)
			}
			if a.Scalar != nil {
				fn(a.Scalar)
			}
		}
	}
}

// NumParams returns the highest $N referenced anywhere in st, validating
// that the set of referenced ordinals is contiguous from $1.
func NumParams(st Statement) (int, error) {
	seen := map[int]bool{}
	max := 0
	WalkExprs(st, func(root expr.Expr) {
		expr.Walk(root, func(e expr.Expr) bool {
			if p, ok := e.(*expr.Param); ok {
				seen[p.Idx] = true
				if p.Idx > max {
					max = p.Idx
				}
			}
			return true
		})
	})
	for i := 1; i <= max; i++ {
		if !seen[i] {
			return 0, fmt.Errorf("parameter placeholders must be contiguous from $1: $%d is missing but $%d is used", i, max)
		}
	}
	return max, nil
}
