package sql

import (
	"strings"
	"testing"
)

func lexKinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lexAll(%q): %v", src, err)
	}
	return toks[:len(toks)-1] // drop EOF
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks := lexKinds(t, "SELECT Foo FROM bar_baz")
	if toks[0].kind != tokKeyword || toks[0].text != "SELECT" {
		t.Errorf("tok 0 = %+v", toks[0])
	}
	if toks[1].kind != tokIdent || toks[1].text != "foo" {
		t.Errorf("identifiers fold to lower: %+v", toks[1])
	}
	if toks[3].text != "bar_baz" {
		t.Errorf("tok 3 = %+v", toks[3])
	}
	// Keywords are case-insensitive.
	toks = lexKinds(t, "select")
	if toks[0].kind != tokKeyword || toks[0].text != "SELECT" {
		t.Errorf("lowercase keyword: %+v", toks[0])
	}
}

func TestLexNumbers(t *testing.T) {
	for _, src := range []string{"42", "1.5", "0.0001", "1e3", "2.5E-2", ".5"} {
		toks := lexKinds(t, src)
		if len(toks) != 1 || toks[0].kind != tokNumber {
			t.Errorf("lex(%q) = %+v", src, toks)
		}
	}
	// A trailing dot is member access, not part of the number.
	toks := lexKinds(t, "a.b")
	if len(toks) != 3 || toks[1].text != "." {
		t.Errorf("a.b = %+v", toks)
	}
}

func TestLexStringsAndQuotedIdents(t *testing.T) {
	toks := lexKinds(t, `'it''s' "Col Name"`)
	if toks[0].kind != tokString || toks[0].text != "it's" {
		t.Errorf("string = %+v", toks[0])
	}
	if toks[1].kind != tokQuotedIdent || toks[1].text != "Col Name" {
		t.Errorf("quoted ident = %+v", toks[1])
	}
}

func TestLexLambdaRune(t *testing.T) {
	toks := lexKinds(t, "λ(a, b) a.x")
	if toks[0].kind != tokLambda {
		t.Errorf("λ = %+v", toks[0])
	}
}

func TestLexTwoCharSymbols(t *testing.T) {
	toks := lexKinds(t, "<> != <= >= || < > =")
	wants := []string{"<>", "<>", "<=", ">=", "||", "<", ">", "="}
	if len(toks) != len(wants) {
		t.Fatalf("toks = %+v", toks)
	}
	for i, w := range wants {
		if toks[i].text != w {
			t.Errorf("tok %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "1 -- comment to end of line\n+ /* block\ncomment */ 2")
	if len(toks) != 3 {
		t.Fatalf("toks = %+v", toks)
	}
	if toks[1].text != "+" {
		t.Errorf("tok 1 = %+v", toks[1])
	}
	// An unterminated block comment is a positioned syntax error (it used
	// to be silently swallowed to EOF, hiding truncated statements).
	_, err := lexAll("1 /* never closed")
	if err == nil || !strings.Contains(err.Error(), "unterminated block comment") {
		t.Errorf("unterminated block: err = %v", err)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "@"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) should fail", src)
		}
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := lexAll("SELECT 1\nFROM @bad")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error = %v", err)
	}
}

func TestParseCopyStatement(t *testing.T) {
	st := mustParseOne(t, `COPY pts FROM '/tmp/data.csv' WITH HEADER DELIMITER '|'`)
	cp, ok := st.(*Copy)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cp.Table != "pts" || cp.Path != "/tmp/data.csv" || !cp.Header || cp.Delimiter != '|' {
		t.Errorf("copy = %+v", cp)
	}
	st = mustParseOne(t, `COPY pts FROM 'x.csv'`)
	cp = st.(*Copy)
	if cp.Header || cp.Delimiter != 0 {
		t.Errorf("defaults = %+v", cp)
	}
	if _, err := Parse(`COPY pts FROM missing_quotes.csv`); err == nil {
		t.Error("unquoted path should fail")
	}
}

func TestParseExplainStatement(t *testing.T) {
	st := mustParseOne(t, `EXPLAIN SELECT 1`)
	ex, ok := st.(*Explain)
	if !ok || ex.Stmt == nil || ex.Analyze {
		t.Fatalf("got %T %+v", st, st)
	}
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Fatalf("EXPLAIN wraps %T", ex.Stmt)
	}
	st = mustParseOne(t, `EXPLAIN WITH q AS (SELECT 1) SELECT * FROM q`)
	if _, ok := st.(*Explain); !ok {
		t.Fatalf("EXPLAIN WITH: got %T", st)
	}

	st = mustParseOne(t, `EXPLAIN ANALYZE SELECT 1`)
	ex = st.(*Explain)
	if !ex.Analyze {
		t.Error("ANALYZE flag not set")
	}
	st = mustParseOne(t, `EXPLAIN ANALYZE INSERT INTO t SELECT * FROM u`)
	ex = st.(*Explain)
	if _, ok := ex.Stmt.(*Insert); !ok || !ex.Analyze {
		t.Fatalf("EXPLAIN ANALYZE INSERT: got %T analyze=%v", ex.Stmt, ex.Analyze)
	}
	st = mustParseOne(t, `EXPLAIN DELETE FROM t WHERE x > 1`)
	ex = st.(*Explain)
	if _, ok := ex.Stmt.(*Delete); !ok {
		t.Fatalf("EXPLAIN DELETE: got %T", ex.Stmt)
	}
	if _, err := Parse(`EXPLAIN CREATE TABLE t (x INT)`); err == nil {
		t.Error("EXPLAIN CREATE should fail")
	}
}

func TestSplitStatements(t *testing.T) {
	parts, err := SplitStatements("SELECT 1; -- c\n INSERT INTO t VALUES (1);;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT 1", "INSERT INTO t VALUES (1)"}
	if len(parts) != len(want) {
		t.Fatalf("parts = %q", parts)
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Errorf("part %d = %q, want %q", i, parts[i], want[i])
		}
	}
}
