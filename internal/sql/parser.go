package sql

import (
	"fmt"
	"strconv"
	"strings"

	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

// Parse parses a semicolon-separated sequence of SQL statements.
func Parse(src string) ([]Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var out []Statement
	for {
		for p.peek().kind == tokSymbol && p.peek().text == ";" {
			p.advance()
		}
		if p.peek().kind == tokEOF {
			return out, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if t := p.peek(); t.kind != tokEOF && !(t.kind == tokSymbol && t.text == ";") {
			return nil, p.errorf("unexpected %q after statement", t.text)
		}
	}
}

// SplitStatements returns the source text of each non-empty statement in a
// semicolon-separated script, in order, trimmed of surrounding whitespace
// and trailing semicolons. Statement i corresponds to Parse(src)[i], which
// lets callers (the engine's query log) attribute original text to each
// parsed statement.
func SplitStatements(src string) ([]string, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	var out []string
	start := -1
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if t.kind == tokSymbol && t.text == ";" {
			if start >= 0 {
				out = append(out, strings.TrimSpace(src[start:t.pos]))
				start = -1
			}
			continue
		}
		if start < 0 {
			start = t.pos
		}
	}
	if start >= 0 {
		out = append(out, strings.TrimSpace(src[start:]))
	}
	return out, nil
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	src  string
	toks []token
	pos  int
	// lambdaParams is the active lambda parameter name set while parsing a
	// lambda body; references qualified by these names become ParamFields.
	lambdaParams []string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &lexError{msg: fmt.Sprintf(format, args...), pos: p.peek().pos, src: p.src}
}

// matchKeyword consumes the keyword if present.
func (p *parser) matchKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.matchKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

// matchSymbol consumes the symbol if present.
func (p *parser) matchSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.matchSymbol(s) {
		return p.errorf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

// expectIdent consumes and returns an identifier (quoted or plain).
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokQuotedIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement, got %q", t.text)
	}
	switch t.text {
	case "CREATE":
		if n := p.peek2(); n.kind == tokKeyword && n.text == "INDEX" {
			return p.parseCreateIndex()
		}
		return p.parseCreateTable()
	case "DROP":
		if n := p.peek2(); n.kind == tokKeyword && n.text == "INDEX" {
			return p.parseDropIndex()
		}
		return p.parseDropTable()
	case "ANALYZE":
		p.advance()
		a := &Analyze{}
		if t := p.peek(); t.kind == tokIdent || t.kind == tokQuotedIdent {
			a.Table = t.text
			p.advance()
		}
		return a, nil
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT", "WITH":
		return p.parseSelect()
	case "COPY":
		return p.parseCopy()
	case "EXPLAIN":
		p.advance()
		analyze := p.matchKeyword("ANALYZE")
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		switch st.(type) {
		case *Select, *Insert, *Update, *Delete:
		default:
			return nil, p.errorf("EXPLAIN supports SELECT, INSERT, UPDATE, and DELETE statements")
		}
		return &Explain{Stmt: st, Analyze: analyze}, nil
	case "BEGIN":
		p.advance()
		return &Begin{}, nil
	case "COMMIT":
		p.advance()
		return &Commit{}, nil
	case "ROLLBACK":
		p.advance()
		return &Rollback{}, nil
	case "CHECKPOINT":
		p.advance()
		return &Checkpoint{}, nil
	case "PREPARE":
		return p.parsePrepare()
	case "EXECUTE":
		return p.parseExecute()
	case "DEALLOCATE":
		return p.parseDeallocate()
	case "PROMOTE":
		p.advance()
		return &Promote{}, nil
	case "FOLLOW":
		return p.parseFollow()
	case "WAIT":
		return p.parseWaitForClock()
	}
	return nil, p.errorf("unsupported statement %q", t.text)
}

// parseFollow parses FOLLOW 'host:port'.
func (p *parser) parseFollow() (Statement, error) {
	p.advance() // FOLLOW
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errorf("expected a quoted primary address after FOLLOW, got %q", t.text)
	}
	p.advance()
	if t.text == "" {
		return nil, p.errorf("FOLLOW address must not be empty")
	}
	return &Follow{Addr: t.text}, nil
}

// parseWaitForClock parses WAIT FOR CLOCK <n>. FOR and CLOCK are matched
// as plain identifiers, not keywords, to keep them usable as column and
// table names everywhere else.
func (p *parser) parseWaitForClock() (Statement, error) {
	p.advance() // WAIT
	for _, word := range []string{"for", "clock"} {
		t := p.peek()
		if t.kind != tokIdent || t.text != word {
			return nil, p.errorf("expected %s in WAIT FOR CLOCK, got %q", strings.ToUpper(word), t.text)
		}
		p.advance()
	}
	t := p.peek()
	if t.kind != tokNumber {
		return nil, p.errorf("expected a clock value after WAIT FOR CLOCK, got %q", t.text)
	}
	n, err := strconv.ParseUint(t.text, 10, 64)
	if err != nil {
		return nil, p.errorf("bad clock value %q: must be a non-negative integer", t.text)
	}
	p.advance()
	return &WaitForClock{Clock: n}, nil
}

// parsePrepare parses PREPARE name [(TYPE, ...)] AS <stmt>.
func (p *parser) parsePrepare() (Statement, error) {
	p.advance() // PREPARE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var declared []types.Type
	if p.matchSymbol("(") {
		for {
			typeName, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			ct, err := types.ParseType(typeName)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			declared = append(declared, ct)
			if p.matchSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	start := p.peek().pos
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *Select, *Insert, *Update, *Delete:
	default:
		return nil, p.errorf("PREPARE supports SELECT, INSERT, UPDATE, and DELETE statements")
	}
	end := p.peek().pos // the ';' or EOF token after the inner statement
	if end > len(p.src) {
		end = len(p.src)
	}
	return &Prepare{
		Name:  name,
		Types: declared,
		Stmt:  st,
		Text:  strings.TrimSpace(p.src[start:end]),
	}, nil
}

// parseExecute parses EXECUTE name [(expr, ...)].
func (p *parser) parseExecute() (Statement, error) {
	p.advance() // EXECUTE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ex := &Execute{Name: name}
	if p.matchSymbol("(") {
		if !p.matchSymbol(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ex.Args = append(ex.Args, e)
				if p.matchSymbol(",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
	}
	return ex, nil
}

// parseDeallocate parses DEALLOCATE [name | ALL].
func (p *parser) parseDeallocate() (Statement, error) {
	p.advance() // DEALLOCATE
	if p.matchKeyword("ALL") {
		return &Deallocate{All: true}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &Deallocate{Name: name}, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.advance() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifNotExists := false
	if p.matchKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if !p.matchKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS")
		}
		ifNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var schema types.Schema
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		ct, err := types.ParseType(typeName)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		schema = append(schema, types.ColumnInfo{Name: col, Type: ct})
		// Tolerate and ignore PRIMARY KEY / NOT NULL column suffixes.
		for {
			if p.matchKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				continue
			}
			if p.matchKeyword("NOT") {
				if !p.matchKeyword("NULL") {
					return nil, p.errorf("expected NULL after NOT")
				}
				continue
			}
			break
		}
		if p.matchSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Schema: schema, IfNotExists: ifNotExists}, nil
}

// parseTypeName reads a (possibly parameterized) type name like
// VARCHAR(500) or DOUBLE PRECISION, returning its canonical spelling.
func (p *parser) parseTypeName() (string, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokKeyword {
		return "", p.errorf("expected type name, got %q", t.text)
	}
	p.advance()
	name := strings.ToUpper(t.text)
	if name == "DOUBLE" {
		if n := p.peek(); n.kind == tokIdent && strings.EqualFold(n.text, "precision") {
			p.advance()
		}
	}
	// Skip length parameters: VARCHAR(500), DECIMAL(10,2).
	if p.matchSymbol("(") {
		for !p.matchSymbol(")") {
			if p.peek().kind == tokEOF {
				return "", p.errorf("unterminated type parameter list")
			}
			p.advance()
		}
	}
	return name, nil
}

// parseCopy parses COPY table FROM 'path' [WITH HEADER] [DELIMITER 'c'].
func (p *parser) parseCopy() (Statement, error) {
	p.advance() // COPY
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errorf("COPY expects a quoted file path, got %q", t.text)
	}
	p.advance()
	cp := &Copy{Table: table, Path: t.text}
	for {
		switch {
		case p.matchKeyword("WITH"):
			// WITH introduces the option list; loop continues.
		case p.matchKeyword("HEADER"):
			cp.Header = true
		case p.matchKeyword("DELIMITER"):
			d := p.peek()
			if d.kind != tokString || len(d.text) != 1 {
				return nil, p.errorf("DELIMITER expects a one-character string")
			}
			p.advance()
			cp.Delimiter = d.text[0]
		default:
			return cp, nil
		}
	}
}

func (p *parser) parseDropTable() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.matchKeyword("IF") {
		if !p.matchKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS")
		}
		ifExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name, IfExists: ifExists}, nil
}

// parseCreateIndex parses CREATE INDEX [IF NOT EXISTS] name ON table(col)
// [USING HASH|ORDERED].
func (p *parser) parseCreateIndex() (Statement, error) {
	p.advance() // CREATE
	p.advance() // INDEX
	ifNotExists := false
	if p.matchKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if !p.matchKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS")
		}
		ifNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	column, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	kind := ""
	if p.matchKeyword("USING") {
		t := p.peek()
		if t.kind != tokIdent && t.kind != tokKeyword {
			return nil, p.errorf("expected index kind after USING, got %q", t.text)
		}
		switch strings.ToUpper(t.text) {
		case "HASH", "ORDERED", "BTREE":
			kind = strings.ToUpper(t.text)
			if kind == "BTREE" {
				kind = "ORDERED" // accepted as a synonym
			}
		default:
			return nil, p.errorf("unknown index kind %q (want HASH or ORDERED)", t.text)
		}
		p.advance()
	}
	return &CreateIndex{Name: name, Table: table, Column: column, Kind: kind, IfNotExists: ifNotExists}, nil
}

// parseDropIndex parses DROP INDEX [IF EXISTS] name.
func (p *parser) parseDropIndex() (Statement, error) {
	p.advance() // DROP
	p.advance() // INDEX
	ifExists := false
	if p.matchKeyword("IF") {
		if !p.matchKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS")
		}
		ifExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropIndex{Name: name, IfExists: ifExists}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.matchSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.matchSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.matchKeyword("VALUES") {
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []expr.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.matchSymbol(",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.matchSymbol(",") {
				continue
			}
			break
		}
		return ins, nil
	}
	if t := p.peek(); t.kind == tokKeyword && (t.text == "SELECT" || t.text == "WITH") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q.(*Select)
		return ins, nil
	}
	return nil, p.errorf("expected VALUES or SELECT in INSERT")
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if p.matchSymbol(",") {
			continue
		}
		break
	}
	if p.matchKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if p.matchKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) parseSelect() (Statement, error) {
	sel := &Select{}
	if p.matchKeyword("WITH") {
		recursive := p.matchKeyword("RECURSIVE")
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cte := CTE{Name: name, Recursive: recursive}
			if p.matchSymbol("(") {
				for {
					col, err := p.expectIdent()
					if err != nil {
						return nil, err
					}
					cte.Columns = append(cte.Columns, col)
					if p.matchSymbol(",") {
						continue
					}
					break
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			cte.Query = sub.(*Select)
			sel.With = append(sel.With, cte)
			if p.matchSymbol(",") {
				continue
			}
			break
		}
	}
	body, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	sel.Body = body
	if p.matchKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.matchKeyword("DESC") {
				item.Desc = true
			} else {
				p.matchKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.matchSymbol(",") {
				continue
			}
			break
		}
	}
	if p.matchKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.matchKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *parser) parseQueryExpr() (QueryExpr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("UNION") {
		all := p.matchKeyword("ALL")
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &SetOp{All: all, L: left, R: right}
	}
	return left, nil
}

// parseQueryTerm parses a SELECT core or a parenthesized query expression.
func (p *parser) parseQueryTerm() (QueryExpr, error) {
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.advance()
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	return p.parseSelectCore()
}

func (p *parser) parseSelectCore() (QueryExpr, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if p.matchKeyword("DISTINCT") {
		core.Distinct = true
	} else {
		p.matchKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if p.matchSymbol(",") {
			continue
		}
		break
	}
	if p.matchKeyword("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.matchKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = w
	}
	if p.matchKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if p.matchSymbol(",") {
				continue
			}
			break
		}
	}
	if p.matchKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = h
	}
	return core, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	// t.* form.
	if p.peek().kind == tokIdent && p.peek2().kind == tokSymbol && p.peek2().text == "." {
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
			tbl := p.advance().text
			p.advance() // .
			p.advance() // *
			return SelectItem{TableStar: tbl}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.matchKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); t.kind == tokIdent || t.kind == tokQuotedIdent {
		item.Alias = t.text
		p.advance()
	}
	return item, nil
}

// tableFuncNames are identifiers in FROM that denote table functions.
var tableFuncNames = map[string]bool{
	"kmeans": true, "kmeans_assign": true,
	"pagerank": true, "page": false, // "page rank" handled below
	"naive_bayes_train": true, "naive_bayes_predict": true,
}

func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTableFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.matchSymbol(","):
			right, err := p.parseTableFactor()
			if err != nil {
				return nil, err
			}
			left = &Join{Type: CrossJoin, L: left, R: right}
		case p.matchKeyword("CROSS"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTableFactor()
			if err != nil {
				return nil, err
			}
			left = &Join{Type: CrossJoin, L: left, R: right}
		case p.peekJoin():
			jt := InnerJoin
			if p.matchKeyword("LEFT") {
				p.matchKeyword("OUTER")
				jt = LeftJoin
			} else {
				p.matchKeyword("INNER")
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTableFactor()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &Join{Type: jt, L: left, R: right, On: cond}
		default:
			return left, nil
		}
	}
}

func (p *parser) peekJoin() bool {
	t := p.peek()
	return t.kind == tokKeyword && (t.text == "JOIN" || t.text == "INNER" || t.text == "LEFT")
}

func (p *parser) parseTableFactor() (TableRef, error) {
	t := p.peek()
	// Parenthesized subquery.
	if t.kind == tokSymbol && t.text == "(" {
		p.advance()
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		sq := &Subquery{Query: sub.(*Select)}
		sq.Alias = p.parseOptionalAlias()
		return sq, nil
	}
	// ITERATE is a table function when followed by an argument list and a
	// plain relation name otherwise (the step/stop subqueries reference the
	// working table as `iterate`).
	if t.kind == tokKeyword && t.text == "ITERATE" {
		p.advance()
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			return p.parseTableFuncArgs("iterate")
		}
		tn := &TableName{Name: "iterate"}
		tn.Alias = p.parseOptionalAlias()
		return tn, nil
	}
	// PAGE RANK spelled as two tokens (as in the paper's Listing 2).
	if t.kind == tokIdent && t.text == "page" && p.peek2().kind == tokIdent && p.peek2().text == "rank" {
		p.advance()
		p.advance()
		return p.parseTableFuncArgs("pagerank")
	}
	if t.kind == tokIdent {
		name := t.text
		if tableFuncNames[name] && p.peek2().kind == tokSymbol && p.peek2().text == "(" {
			p.advance()
			return p.parseTableFuncArgs(name)
		}
		p.advance()
		// Schema-qualified name (system.query_log): the dotted pair forms
		// one table name, resolved by the engine's catalog.
		if p.peek().kind == tokSymbol && p.peek().text == "." {
			p.advance()
			part, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = name + "." + part
		}
		tn := &TableName{Name: name}
		tn.Alias = p.parseOptionalAlias()
		return tn, nil
	}
	return nil, p.errorf("expected table reference, got %q", t.text)
}

// parseOptionalAlias consumes `[AS] ident` when present.
func (p *parser) parseOptionalAlias() string {
	if p.matchKeyword("AS") {
		if t := p.peek(); t.kind == tokIdent || t.kind == tokQuotedIdent {
			p.advance()
			return t.text
		}
		return ""
	}
	if t := p.peek(); t.kind == tokIdent || t.kind == tokQuotedIdent {
		p.advance()
		return t.text
	}
	return ""
}

// parseTableFuncArgs parses the parenthesized argument list of a table
// function. Each argument is a subquery, a lambda, or a scalar expression.
func (p *parser) parseTableFuncArgs(name string) (TableRef, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	tf := &TableFunc{Name: name}
	if p.matchSymbol(")") {
		tf.Alias = p.parseOptionalAlias()
		return tf, nil
	}
	for {
		arg, err := p.parseTableFuncArg()
		if err != nil {
			return nil, err
		}
		tf.Args = append(tf.Args, arg)
		if p.matchSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	tf.Alias = p.parseOptionalAlias()
	return tf, nil
}

func (p *parser) parseTableFuncArg() (TableFuncArg, error) {
	t := p.peek()
	// Lambda argument.
	if t.kind == tokLambda || (t.kind == tokKeyword && t.text == "LAMBDA") {
		l, err := p.parseLambda()
		if err != nil {
			return TableFuncArg{}, err
		}
		return TableFuncArg{Lambda: l}, nil
	}
	// Subquery argument: '(' SELECT|WITH.
	if t.kind == tokSymbol && t.text == "(" {
		if n := p.peek2(); n.kind == tokKeyword && (n.text == "SELECT" || n.text == "WITH") {
			p.advance()
			sub, err := p.parseSelect()
			if err != nil {
				return TableFuncArg{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return TableFuncArg{}, err
			}
			return TableFuncArg{Query: sub.(*Select)}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return TableFuncArg{}, err
	}
	return TableFuncArg{Scalar: e}, nil
}

// parseLambda parses `λ(a, b) expr` or `LAMBDA(a, b) expr`.
func (p *parser) parseLambda() (*expr.Lambda, error) {
	p.advance() // λ or LAMBDA
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var params []string
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, name)
		if p.matchSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	saved := p.lambdaParams
	p.lambdaParams = params
	body, err := p.parseExpr()
	p.lambdaParams = saved
	if err != nil {
		return nil, err
	}
	return &expr.Lambda{Params: params, Body: body}, nil
}

func (p *parser) isLambdaParam(name string) bool {
	for _, q := range p.lambdaParams {
		if q == name {
			return true
		}
	}
	return false
}

// ---- expression parsing (precedence climbing) ----

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expr.BinOp{Op: expr.OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expr.BinOp{Op: expr.OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.matchKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.UnOp{Op: expr.OpNot, E: inner}, nil
	}
	return p.parseComparison()
}

var compareOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.matchKeyword("IS") {
		negate := p.matchKeyword("NOT")
		if !p.matchKeyword("NULL") {
			return nil, p.errorf("expected NULL after IS")
		}
		return &expr.IsNull{E: left, Negate: negate}, nil
	}
	// [NOT] BETWEEN a AND b
	notPrefix := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		if n := p.peek2(); n.kind == tokKeyword && (n.text == "BETWEEN" || n.text == "IN" || n.text == "LIKE") {
			p.advance()
			notPrefix = true
		}
	}
	if p.matchKeyword("LIKE") {
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errorf("LIKE expects a string pattern literal, got %q", t.text)
		}
		p.advance()
		return &expr.Like{E: left, Pattern: t.text, Negate: notPrefix}, nil
	}
	if p.matchKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := expr.Expr(&expr.BinOp{Op: expr.OpAnd,
			L: &expr.BinOp{Op: expr.OpGe, L: left, R: lo},
			R: &expr.BinOp{Op: expr.OpLe, L: left, R: hi}})
		if notPrefix {
			e = &expr.UnOp{Op: expr.OpNot, E: e}
		}
		return e, nil
	}
	// [NOT] IN (list)
	if p.matchKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var disj expr.Expr
		for {
			item, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			eq := &expr.BinOp{Op: expr.OpEq, L: left, R: item}
			if disj == nil {
				disj = eq
			} else {
				disj = &expr.BinOp{Op: expr.OpOr, L: disj, R: eq}
			}
			if p.matchSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if notPrefix {
			disj = &expr.UnOp{Op: expr.OpNot, E: disj}
		}
		return disj, nil
	}
	if t := p.peek(); t.kind == tokSymbol {
		if op, ok := compareOps[t.text]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &expr.BinOp{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol {
			return left, nil
		}
		var op expr.Op
		switch t.text {
		case "+":
			op = expr.OpAdd
		case "-":
			op = expr.OpSub
		case "||":
			op = expr.OpConcat
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &expr.BinOp{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol {
			return left, nil
		}
		var op expr.Op
		switch t.text {
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		case "%":
			op = expr.OpMod
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		left = &expr.BinOp{Op: op, L: left, R: right}
	}
}

// parsePower handles ^, which is right-associative and binds tighter than
// multiplication (as in the paper's Listing 3).
func (p *parser) parsePower() (expr.Expr, error) {
	base, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol && t.text == "^" {
		p.advance()
		exp, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		return &expr.BinOp{Op: expr.OpPow, L: base, R: exp}, nil
	}
	return base, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if t := p.peek(); t.kind == tokSymbol && t.text == "-" {
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals.
		if c, ok := inner.(*expr.Const); ok && c.Val.T.IsNumeric() && !c.Val.Null {
			v := c.Val
			if v.T == types.Int64 {
				return &expr.Const{Val: types.NewInt(-v.I)}, nil
			}
			return &expr.Const{Val: types.NewFloat(-v.F)}, nil
		}
		return &expr.UnOp{Op: expr.OpNeg, E: inner}, nil
	}
	if t := p.peek(); t.kind == tokSymbol && t.text == "+" {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &expr.Const{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Very large integer literal: fall back to float.
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &expr.Const{Val: types.NewFloat(f)}, nil
		}
		return &expr.Const{Val: types.NewInt(i)}, nil

	case tokString:
		p.advance()
		return &expr.Const{Val: types.NewString(t.text)}, nil

	case tokParam:
		p.advance()
		idx, err := strconv.Atoi(t.text)
		if err != nil || idx < 1 {
			return nil, p.errorf("bad parameter placeholder $%s", t.text)
		}
		return &expr.Param{Idx: idx}, nil

	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &expr.Const{Val: types.NewNull(types.Unknown)}, nil
		case "TRUE":
			p.advance()
			return &expr.Const{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &expr.Const{Val: types.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)

	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			// Bare * only valid inside COUNT(*), handled in parseFuncCall.
			return nil, p.errorf("unexpected *")
		}
		return nil, p.errorf("unexpected %q in expression", t.text)

	case tokIdent, tokQuotedIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

func (p *parser) parseIdentExpr() (expr.Expr, error) {
	name := p.advance().text
	// Function call.
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		return p.parseFuncCall(name)
	}
	// Qualified reference: table.column or lambdaParam.field.
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.advance()
		field, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.isLambdaParam(name) {
			return &expr.ParamField{Param: name, Field: field, ParamIdx: -1, FieldIdx: -1}, nil
		}
		return &expr.ColRef{Table: name, Name: field, Index: -1}, nil
	}
	return &expr.ColRef{Name: name, Index: -1}, nil
}

func (p *parser) parseFuncCall(name string) (expr.Expr, error) {
	p.advance() // (
	name = strings.ToLower(name)
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.advance()
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &expr.FuncCall{Name: name, Star: true}, nil
	}
	var args []expr.Expr
	if !(p.peek().kind == tokSymbol && p.peek().text == ")") {
		// DISTINCT inside aggregates is not supported; reject it clearly.
		if p.peek().kind == tokKeyword && p.peek().text == "DISTINCT" {
			return nil, p.errorf("DISTINCT aggregates are not supported")
		}
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.matchSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &expr.FuncCall{Name: name, Args: args}, nil
}

func (p *parser) parseCase() (expr.Expr, error) {
	p.advance() // CASE
	c := &expr.Case{}
	// Simple CASE (CASE expr WHEN v THEN ...) is desugared to searched CASE.
	var operand expr.Expr
	if t := p.peek(); !(t.kind == tokKeyword && (t.text == "WHEN" || t.text == "END")) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		operand = e
	}
	for p.matchKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = &expr.BinOp{Op: expr.OpEq, L: operand, R: cond}
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expr.When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.matchKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (expr.Expr, error) {
	p.advance() // CAST
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	typeName, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	ct, err := types.ParseType(typeName)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &expr.Cast{E: e, To: ct}, nil
}
