package sql

import (
	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// CreateTable is CREATE TABLE name (col TYPE, ...).
type CreateTable struct {
	Name        string
	Schema      types.Schema
	IfNotExists bool
}

func (*CreateTable) stmtNode() {}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) stmtNode() {}

// CreateIndex is CREATE INDEX [IF NOT EXISTS] name ON table(col)
// [USING HASH|ORDERED]. Kind is the USING spelling ("HASH" or "ORDERED");
// empty means the default (ordered — it serves both point and range probes).
type CreateIndex struct {
	Name        string
	Table       string
	Column      string
	Kind        string
	IfNotExists bool
}

func (*CreateIndex) stmtNode() {}

// DropIndex is DROP INDEX [IF EXISTS] name.
type DropIndex struct {
	Name     string
	IfExists bool
}

func (*DropIndex) stmtNode() {}

// Analyze is ANALYZE [table]: collect per-column statistics for the named
// table, or for every table when none is given.
type Analyze struct {
	Table string // empty = all tables
}

func (*Analyze) stmtNode() {}

// Insert is INSERT INTO name [(cols)] VALUES (...),... | SELECT ...
type Insert struct {
	Table   string
	Columns []string      // empty = positional
	Rows    [][]expr.Expr // literal VALUES rows
	Query   *Select       // or INSERT ... SELECT
}

func (*Insert) stmtNode() {}

// Assignment is one SET col = expr clause.
type Assignment struct {
	Column string
	Value  expr.Expr
}

// Update is UPDATE name SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assignment
	Where expr.Expr
}

func (*Update) stmtNode() {}

// Delete is DELETE FROM name [WHERE ...].
type Delete struct {
	Table string
	Where expr.Expr
}

func (*Delete) stmtNode() {}

// Begin/Commit/Rollback control explicit transactions.
type Begin struct{}

func (*Begin) stmtNode() {}

// Commit commits the current transaction.
type Commit struct{}

func (*Commit) stmtNode() {}

// Rollback aborts the current transaction.
type Rollback struct{}

func (*Rollback) stmtNode() {}

// Checkpoint forces a durability checkpoint: a snapshot image is written
// and the redo log truncated behind it. Only meaningful when the engine
// was opened with a data directory.
type Checkpoint struct{}

func (*Checkpoint) stmtNode() {}

// Promote is PROMOTE: detach this node from its primary and begin
// accepting writes under a bumped, durably-logged cluster epoch. Only
// meaningful on a node with cluster control wired in (lambdaserver).
type Promote struct{}

func (*Promote) stmtNode() {}

// Follow is FOLLOW 'host:port': demote this node (fencing local writes
// first) and start replicating from the given primary.
type Follow struct {
	Addr string
}

func (*Follow) stmtNode() {}

// WaitForClock is WAIT FOR CLOCK <n>: block until the node's applied
// commit clock reaches n. A router prefixes replica-bound reads with it to
// give a client read-your-writes across the fleet.
type WaitForClock struct {
	Clock uint64
}

func (*WaitForClock) stmtNode() {}

// Prepare is PREPARE name [(TYPE, ...)] AS <stmt>. The inner statement may
// contain $N parameter placeholders; Types optionally declares their types
// (position i declares $i+1). Text is the inner statement's source text,
// used as the plan-cache key after normalization.
type Prepare struct {
	Name  string
	Types []types.Type
	Stmt  Statement
	Text  string
}

func (*Prepare) stmtNode() {}

// Execute is EXECUTE name [(args, ...)]. Arguments are constant expressions
// evaluated at execute time and bound to $1..$N in order.
type Execute struct {
	Name string
	Args []expr.Expr
}

func (*Execute) stmtNode() {}

// Deallocate is DEALLOCATE [name | ALL].
type Deallocate struct {
	Name string
	All  bool
}

func (*Deallocate) stmtNode() {}

// Copy is COPY table FROM 'path' [WITH HEADER] [DELIMITER 'c'] — bulk CSV
// ingestion.
type Copy struct {
	Table     string
	Path      string
	Header    bool
	Delimiter byte
}

func (*Copy) stmtNode() {}

// Explain is EXPLAIN [ANALYZE] <stmt>. Plain EXPLAIN returns the optimized
// logical plan as text without executing; EXPLAIN ANALYZE executes the
// statement and returns the physical tree annotated with per-operator
// actuals. Stmt is a *Select, *Insert, *Update, or *Delete.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmtNode() {}

// CTE is one WITH entry. Recursive CTEs follow SQL:1999: the definition is
// `initial UNION [ALL] recursive` and may reference its own name in the
// recursive term.
type CTE struct {
	Name      string
	Columns   []string // optional column alias list
	Query     *Select
	Recursive bool
}

// Select is a full query: optional WITH prefix, a set-operation tree of
// select cores, and optional ORDER BY / LIMIT.
type Select struct {
	With    []CTE
	Body    QueryExpr
	OrderBy []OrderItem
	Limit   expr.Expr // nil = no limit
	Offset  expr.Expr // nil = no offset
}

func (*Select) stmtNode() {}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// QueryExpr is a node in the set-operation tree: *SelectCore or *SetOp.
type QueryExpr interface{ queryNode() }

// SetOp combines two query expressions with UNION [ALL].
type SetOp struct {
	All  bool
	L, R QueryExpr
}

func (*SetOp) queryNode() {}

// SelectCore is a single SELECT ... FROM ... block.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil = SELECT without FROM
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
}

func (*SelectCore) queryNode() {}

// SelectItem is one projection item.
type SelectItem struct {
	Star      bool   // SELECT *
	TableStar string // SELECT t.*
	Expr      expr.Expr
	Alias     string
}

// TableRef is a FROM-clause item: TableName, Subquery, Join, or TableFunc.
type TableRef interface{ tableRefNode() }

// TableName references a stored table or CTE.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRefNode() {}

// Subquery is a parenthesized query in FROM.
type Subquery struct {
	Query *Select
	Alias string
}

func (*Subquery) tableRefNode() {}

// JoinType enumerates supported join types.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	CrossJoin
)

// Join combines two table references.
type Join struct {
	Type JoinType
	L, R TableRef
	On   expr.Expr // nil for CROSS
}

func (*Join) tableRefNode() {}

// TableFuncArg is one argument to a table function: exactly one field set.
type TableFuncArg struct {
	Query  *Select      // subquery argument
	Lambda *expr.Lambda // lambda argument
	Scalar expr.Expr    // constant scalar argument
}

// TableFunc is an analytical table function in FROM: ITERATE, KMEANS,
// PAGERANK, NAIVE_BAYES_TRAIN, NAIVE_BAYES_PREDICT.
type TableFunc struct {
	Name  string // lower-case
	Args  []TableFuncArg
	Alias string
}

func (*TableFunc) tableRefNode() {}
