package sql

import (
	"strings"
	"testing"

	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

// TestLexerRegressions is the table-driven regression suite for three
// front-end bugs; every case here fails against the pre-fix lexer.
func TestLexerRegressions(t *testing.T) {
	t.Run("doubled-quote escape in quoted identifiers", func(t *testing.T) {
		toks := lexKinds(t, `"my""col"`)
		if len(toks) != 1 || toks[0].kind != tokQuotedIdent || toks[0].text != `my"col` {
			t.Fatalf("toks = %+v", toks)
		}
		// The escape must survive all the way through the parser.
		st := mustParseOne(t, `SELECT "a""b" FROM t`)
		sel := st.(*Select).Body.(*SelectCore)
		col, ok := sel.Items[0].Expr.(*expr.ColRef)
		if !ok || col.Name != `a"b` {
			t.Fatalf("item = %#v", sel.Items[0].Expr)
		}
	})

	t.Run("unterminated block comment is a positioned error", func(t *testing.T) {
		for src, wantPos := range map[string]string{
			"SELECT 1 /* oops":        "line 1 column 10",
			"SELECT 1\n/* nested /* ": "line 2 column 1",
		} {
			_, err := lexAll(src)
			if err == nil {
				t.Errorf("lexAll(%q) should fail", src)
				continue
			}
			msg := err.Error()
			if !strings.Contains(msg, "unterminated block comment") || !strings.Contains(msg, wantPos) {
				t.Errorf("lexAll(%q) error = %q, want unterminated block comment at %s", src, msg, wantPos)
			}
		}
	})

	t.Run("exponent with no digits is a positioned error", func(t *testing.T) {
		for _, src := range []string{"1e", "1e+", "1E-", "2.5e", "SELECT 3e+ FROM t"} {
			_, err := lexAll(src)
			if err == nil {
				t.Errorf("lexAll(%q) should fail", src)
				continue
			}
			msg := err.Error()
			if !strings.Contains(msg, "exponent has no digits") || !strings.Contains(msg, "column") {
				t.Errorf("lexAll(%q) error = %q", src, msg)
			}
		}
		// Well-formed exponents keep working, including signs.
		for _, src := range []string{"1e3", "1e+3", "1E-2", ".5e1"} {
			toks := lexKinds(t, src)
			if len(toks) != 1 || toks[0].kind != tokNumber {
				t.Errorf("lex(%q) = %+v", src, toks)
			}
		}
	})

	t.Run("non-ASCII digit errors instead of looping", func(t *testing.T) {
		// Found by FuzzSplitStatements: unicode.IsDigit used to route U+0662
		// into the byte-oriented number lexer, which emitted empty tokens
		// without advancing — lexAll never terminated.
		for _, src := range []string{"٢", "SELECT ٢\xa2e0"} {
			if _, err := lexAll(src); err == nil || !strings.Contains(err.Error(), "unexpected character") {
				t.Errorf("lexAll(%q) = %v, want unexpected-character error", src, err)
			}
		}
	})
}

func TestLexParams(t *testing.T) {
	toks := lexKinds(t, "$1 $23")
	if len(toks) != 2 || toks[0].kind != tokParam || toks[0].text != "1" || toks[1].text != "23" {
		t.Fatalf("toks = %+v", toks)
	}
	if _, err := lexAll("$"); err == nil {
		t.Error("bare $ should fail")
	}
	if _, err := lexAll("$x"); err == nil {
		t.Error("$x should fail")
	}
}

func TestParsePrepare(t *testing.T) {
	st := mustParseOne(t, `PREPARE q AS SELECT x FROM t WHERE id = $1`)
	p, ok := st.(*Prepare)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if p.Name != "q" || len(p.Types) != 0 {
		t.Fatalf("prepare = %+v", p)
	}
	if _, ok := p.Stmt.(*Select); !ok {
		t.Fatalf("inner statement is %T", p.Stmt)
	}
	if p.Text != "SELECT x FROM t WHERE id = $1" {
		t.Fatalf("text = %q", p.Text)
	}

	st = mustParseOne(t, `PREPARE q2 (INT, TEXT) AS INSERT INTO t VALUES ($1, $2)`)
	p = st.(*Prepare)
	if len(p.Types) != 2 || p.Types[0] != types.Int64 || p.Types[1] != types.String {
		t.Fatalf("types = %+v", p.Types)
	}
	if _, ok := p.Stmt.(*Insert); !ok {
		t.Fatalf("inner statement is %T", p.Stmt)
	}

	for _, bad := range []string{
		`PREPARE q AS CREATE TABLE t (x INT)`, // only SELECT/DML
		`PREPARE AS SELECT 1`,
		`PREPARE q SELECT 1`, // missing AS
		`PREPARE q (NOTATYPE) AS SELECT $1`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseExecuteDeallocate(t *testing.T) {
	st := mustParseOne(t, `EXECUTE q (1, 'two', 3.5)`)
	e := st.(*Execute)
	if e.Name != "q" || len(e.Args) != 3 {
		t.Fatalf("execute = %+v", e)
	}
	st = mustParseOne(t, `EXECUTE q`)
	if e = st.(*Execute); len(e.Args) != 0 {
		t.Fatalf("no-arg execute = %+v", e)
	}
	st = mustParseOne(t, `EXECUTE q ()`)
	if e = st.(*Execute); len(e.Args) != 0 {
		t.Fatalf("empty-paren execute = %+v", e)
	}

	st = mustParseOne(t, `DEALLOCATE q`)
	d := st.(*Deallocate)
	if d.Name != "q" || d.All {
		t.Fatalf("deallocate = %+v", d)
	}
	st = mustParseOne(t, `DEALLOCATE ALL`)
	if d = st.(*Deallocate); !d.All {
		t.Fatalf("deallocate all = %+v", d)
	}
}

func TestNumParams(t *testing.T) {
	st := mustParseOne(t, `SELECT $1, x + $2 FROM (SELECT z FROM u WHERE w = $3) s`)
	n, err := NumParams(st)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	st = mustParseOne(t, `SELECT 1`)
	if n, err = NumParams(st); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	st = mustParseOne(t, `SELECT $2`)
	if _, err = NumParams(st); err == nil || !strings.Contains(err.Error(), "$1 is missing") {
		t.Fatalf("gap error = %v", err)
	}
}

func TestNormalizeStatement(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{`SELECT 1`, `SELECT 1`, true},
		{"  SELECT\t1\n;", `SELECT 1`, true},
		{"SELECT /* c */ 1 -- t\n", `SELECT 1`, true},
		{`SELECT 'a  b' FROM t`, `SELECT 'a  b' FROM t`, true},
		{`SELECT 'it''s', "my""col" FROM t`, `SELECT 'it''s', "my""col" FROM t`, true},
		{"SELECT 1; SELECT 2", "", false}, // multi-statement
		{"SELECT 1; -- trailing comment ok", `SELECT 1`, true},
		{"SELECT 'open", "", false}, // unterminated quote
		{"SELECT 1 /* open", "", false},
		{"", "", false},
		{"   ", "", false},
		{";", "", false},
	}
	for _, c := range cases {
		got, ok := NormalizeStatement(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("NormalizeStatement(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	// Two spellings of the same statement share a key.
	a, _ := NormalizeStatement("SELECT  x FROM t  WHERE id = 1;")
	b, _ := NormalizeStatement("SELECT x /* hint */ FROM t WHERE id = 1")
	if a != b {
		t.Errorf("keys differ: %q vs %q", a, b)
	}
}

func TestParamsInParser(t *testing.T) {
	st := mustParseOne(t, `SELECT * FROM t WHERE id = $1 AND tag = $2`)
	n, err := NumParams(st)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := Parse(`SELECT $0`); err == nil {
		t.Error("$0 should fail")
	}
}
