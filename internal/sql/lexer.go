// Package sql implements the SQL front end: a hand-written lexer and
// recursive-descent parser for the dialect described in DESIGN.md,
// including the paper's ITERATE construct, lambda expressions, and the
// analytical table functions.
package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuotedIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokLambda // the λ rune
	tokParam  // $N positional parameter; text holds the digits
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; unquoted identifiers lower-cased
	pos  int    // byte offset, for error messages
}

// keywords recognized by the lexer (upper case).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "ALL": true,
	"AS": true, "JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true,
	"OUTER": true, "CROSS": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "WITH": true, "RECURSIVE": true, "UNION": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"IS": true, "IN": true, "BETWEEN": true, "LIKE": true, "EXISTS": true,
	"CAST": true, "IF": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "LAMBDA": true, "ITERATE": true, "PRIMARY": true,
	"KEY": true, "COPY": true, "HEADER": true, "DELIMITER": true,
	"EXPLAIN": true, "ANALYZE": true, "CHECKPOINT": true,
	"INDEX": true, "USING": true,
	"PREPARE": true, "EXECUTE": true, "DEALLOCATE": true,
	"PROMOTE": true, "FOLLOW": true, "WAIT": true,
}

// lexer turns SQL text into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// lexError decorates an error with position context.
type lexError struct {
	msg string
	pos int
	src string
}

func (e *lexError) Error() string {
	line, col := 1, 1
	for i := 0; i < e.pos && i < len(e.src); i++ {
		if e.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("syntax error at line %d column %d: %s", line, col, e.msg)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &lexError{msg: fmt.Sprintf(format, args...), pos: pos, src: l.src}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])

	switch {
	case r == 'λ':
		l.pos += size
		return token{kind: tokLambda, text: "λ", pos: start}, nil

	case unicode.IsLetter(r) || r == '_':
		for l.pos < len(l.src) {
			r2, s2 := utf8.DecodeRuneInString(l.src[l.pos:])
			if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' {
				break
			}
			l.pos += s2
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: strings.ToLower(word), pos: start}, nil

	// Numbers are ASCII-only: lexNumber consumes bytes, so classifying by
	// unicode.IsDigit would let a non-ASCII digit (e.g. U+0662) produce an
	// empty token without advancing — an infinite loop in lexAll.
	case isDigit(l.src[l.pos]) || (r == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber(start)

	case r == '\'':
		return l.lexString(start)

	case r == '"':
		return l.lexQuotedIdent(start)

	case r == '$':
		return l.lexParam(start)

	default:
		return l.lexSymbol(start)
	}
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			// Block comment. An unterminated one is an error, not silent
			// truncation: `SELECT 1 /* oops` must not parse cleanly while
			// trailing statements vanish.
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errorf(l.pos, "unterminated block comment")
			}
			l.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) lexNumber(start int) (token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			// Peek past the marker and an optional sign without consuming:
			// an exponent with no digits (`1e`, `1e+`) is rejected here with
			// a position, instead of deferring to the parser's generic "bad
			// number" after swallowing characters of the next token.
			j := l.pos + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j >= len(l.src) || !isDigit(l.src[j]) {
				return token{}, l.errorf(l.pos, "exponent has no digits")
			}
			seenExp = true
			l.pos = j
		default:
			return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated string literal")
}

func (l *lexer) lexQuotedIdent(start int) (token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				sb.WriteByte('"') // doubled quote escapes a literal quote
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokQuotedIdent, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated quoted identifier")
}

// lexParam lexes a $N positional parameter. The token text holds just the
// digits; a bare `$` is an error.
func (l *lexer) lexParam(start int) (token, error) {
	l.pos++ // the $
	ds := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == ds {
		return token{}, l.errorf(start, "expected digits after $ in parameter placeholder")
	}
	return token{kind: tokParam, text: l.src[ds:l.pos], pos: start}, nil
}

// two-character symbols, checked before single characters.
var twoCharSymbols = map[string]bool{
	"<>": true, "!=": true, "<=": true, ">=": true, "||": true,
}

func (l *lexer) lexSymbol(start int) (token, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{kind: tokSymbol, text: two, pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '.', '*', '+', '-', '/', '%', '^', '=', '<', '>':
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole input (used by the parser, which needs
// lookahead).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
