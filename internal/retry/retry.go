// Package retry implements capped exponential backoff with jitter, shared
// by the network client's bounded redial and the replication layer's
// reconnect loop.
//
// The schedule doubles from Base up to Max, and each delay is jittered
// uniformly in [delay/2, delay) so a fleet of disconnected replicas (or a
// burst of failed clients) does not stampede the server in lockstep.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes the delay schedule. The zero value uses defaults
// (Base 50ms, Max 5s).
type Backoff struct {
	Base time.Duration // first delay; <= 0 means 50ms
	Max  time.Duration // delay cap; <= 0 means 5s

	mu  sync.Mutex
	rng *rand.Rand
}

// Delay returns the jittered delay for the given attempt (0-based): the
// exponential delay Base<<attempt capped at Max, jittered to a uniform
// value in [delay/2, delay).
func (b *Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		// Sub-2ns delays cannot be jittered without rounding to zero (and
		// rand.Int63n panics on n <= 0); return the delay as-is.
		return d
	}
	b.mu.Lock()
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	jittered := half + time.Duration(b.rng.Int63n(int64(half)))
	b.mu.Unlock()
	return jittered
}

// Sleep waits the attempt's jittered delay or until ctx is cancelled,
// returning ctx's error in that case.
func (b *Backoff) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
