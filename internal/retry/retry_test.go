package retry

import (
	"context"
	"testing"
	"time"
)

func TestDelayBoundsAndGrowth(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	// Expected un-jittered schedule: 10, 20, 40, 80, 80, ... with each
	// delay jittered into the half-open interval [d/2, d).
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for attempt, w := range want {
		w *= time.Millisecond
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < w/2 || d >= w {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, w/2, w)
			}
		}
	}
}

func TestDelayNeverZeroOrNegative(t *testing.T) {
	// Sweep attempt counts far past the cap (where the doubling loop has
	// long saturated) and odd bases that do not halve evenly: every delay
	// must stay positive and strictly below the un-jittered schedule value.
	for _, b := range []*Backoff{
		{Base: time.Nanosecond, Max: time.Nanosecond},
		{Base: 3 * time.Nanosecond, Max: 7 * time.Nanosecond},
		{Base: 50 * time.Millisecond, Max: 5 * time.Second},
	} {
		for attempt := 0; attempt < 5000; attempt++ {
			d := b.Delay(attempt)
			if d <= 0 {
				t.Fatalf("Base=%v Max=%v attempt %d: non-positive delay %v", b.Base, b.Max, attempt, d)
			}
			if d > b.Max {
				t.Fatalf("Base=%v Max=%v attempt %d: delay %v exceeds cap", b.Base, b.Max, attempt, d)
			}
		}
	}
}

func TestDelayDefaults(t *testing.T) {
	b := &Backoff{}
	if d := b.Delay(0); d < 25*time.Millisecond || d > 50*time.Millisecond {
		t.Fatalf("default base delay %v outside [25ms, 50ms]", d)
	}
	if d := b.Delay(30); d > 5*time.Second {
		t.Fatalf("delay %v exceeds default cap", d)
	}
}

func TestDelayJitters(t *testing.T) {
	b := &Backoff{Base: time.Second, Max: time.Second}
	seen := map[time.Duration]bool{}
	for i := 0; i < 20; i++ {
		seen[b.Delay(0)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("20 delays produced %d distinct values; jitter looks broken", len(seen))
	}
}

func TestSleepCancel(t *testing.T) {
	b := &Backoff{Base: time.Minute, Max: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := b.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not return promptly on cancel")
	}
}
