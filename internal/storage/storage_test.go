package storage

import (
	"errors"
	"sync"
	"testing"

	"lambdadb/internal/types"
)

func testSchema() types.Schema {
	return types.Schema{{Name: "id", Type: types.Int64}, {Name: "v", Type: types.Float64}}
}

func insertRows(t *testing.T, s *Store, tbl *Table, rows [][2]float64) {
	t.Helper()
	tx := s.Begin()
	b := types.NewBatch(tbl.Schema())
	for _, r := range rows {
		b.AppendRow([]types.Value{types.NewInt(int64(r[0])), types.NewFloat(r[1])})
	}
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, tbl *Table, snap uint64) [][]types.Value {
	t.Helper()
	var out [][]types.Value
	err := tbl.Scan(snap, func(b *types.Batch) error {
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCreateInsertScan(t *testing.T) {
	s := NewStore()
	tbl, err := s.CreateTable("t", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	insertRows(t, s, tbl, [][2]float64{{1, 1.5}, {2, 2.5}, {3, 3.5}})
	rows := scanAll(t, tbl, s.Snapshot())
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[1][0].I != 2 || rows[1][1].F != 2.5 {
		t.Errorf("row 1 = %v", rows[1])
	}
	if tbl.NumRows(s.Snapshot()) != 3 {
		t.Errorf("NumRows = %d", tbl.NumRows(s.Snapshot()))
	}
}

func TestCreateDuplicateTable(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable("t", testSchema()); err == nil {
		t.Error("duplicate create should fail")
	}
}

func TestDropTable(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("t"); err == nil {
		t.Error("dropping a missing table should fail")
	}
	if _, err := s.Resolve("t"); err == nil {
		t.Error("resolve after drop should fail")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	insertRows(t, s, tbl, [][2]float64{{1, 1}})
	snapBefore := s.Snapshot()

	// A later insert must be invisible to the earlier snapshot.
	insertRows(t, s, tbl, [][2]float64{{2, 2}})
	if got := len(scanAll(t, tbl, snapBefore)); got != 1 {
		t.Errorf("old snapshot sees %d rows, want 1", got)
	}
	if got := len(scanAll(t, tbl, s.Snapshot())); got != 2 {
		t.Errorf("new snapshot sees %d rows, want 2", got)
	}
}

func TestUncommittedInvisible(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	tx := s.Begin()
	b := types.NewBatch(tbl.Schema())
	b.AppendRow([]types.Value{types.NewInt(1), types.NewFloat(1)})
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	// Not committed yet: no snapshot can see it.
	if got := len(scanAll(t, tbl, s.Snapshot())); got != 0 {
		t.Errorf("uncommitted rows visible: %d", got)
	}
	tx.Rollback()
	if err := tx.Commit(); err == nil {
		t.Error("commit after rollback should fail")
	}
	if got := len(scanAll(t, tbl, s.Snapshot())); got != 0 {
		t.Errorf("rolled-back rows visible: %d", got)
	}
}

func TestDeleteVisibility(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	insertRows(t, s, tbl, [][2]float64{{1, 1}, {2, 2}})
	snapBefore := s.Snapshot()

	tx := s.Begin()
	if err := tx.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if got := len(scanAll(t, tbl, snapBefore)); got != 2 {
		t.Errorf("pre-delete snapshot sees %d rows, want 2", got)
	}
	rows := scanAll(t, tbl, s.Snapshot())
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Errorf("post-delete rows = %v", rows)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	insertRows(t, s, tbl, [][2]float64{{1, 1}})

	tx1 := s.Begin()
	tx2 := s.Begin()
	if err := tx1.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	err := tx2.Commit()
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("second delete committed: err = %v", err)
	}
}

func TestScanWithRowIDs(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	insertRows(t, s, tbl, [][2]float64{{1, 1}, {2, 2}, {3, 3}})
	tx := s.Begin()
	if err := tx.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var ids []int
	err := tbl.ScanWithRowIDs(s.Snapshot(), func(b *types.Batch, rowIDs []int) error {
		ids = append(ids, rowIDs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("row ids = %v, want [0 2]", ids)
	}
}

func TestScanRangeMorsels(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	const n = 5000
	tx := s.Begin()
	b := types.NewBatch(tbl.Schema())
	for i := 0; i < n; i++ {
		b.AppendRow([]types.Value{types.NewInt(int64(i)), types.NewFloat(float64(i))})
	}
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	// Scan two disjoint ranges and confirm they partition the table.
	count := 0
	half := tbl.PhysicalRows() / 2
	for _, r := range [][2]int{{0, half}, {half, tbl.PhysicalRows()}} {
		err := tbl.ScanRange(snap, r[0], r[1], func(b *types.Batch) error {
			count += b.Len()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if count != n {
		t.Errorf("morsel scan counted %d rows, want %d", count, n)
	}
}

func TestConcurrentInserters(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				b := types.NewBatch(tbl.Schema())
				b.AppendRow([]types.Value{types.NewInt(int64(w*perWorker + i)), types.NewFloat(0)})
				if err := tx.Insert(tbl, b); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tbl.NumRows(s.Snapshot()); got != workers*perWorker {
		t.Errorf("NumRows = %d, want %d", got, workers*perWorker)
	}
	// All ids must be distinct and complete.
	seen := map[int64]bool{}
	for _, r := range scanAll(t, tbl, s.Snapshot()) {
		seen[r[0].I] = true
	}
	if len(seen) != workers*perWorker {
		t.Errorf("distinct ids = %d, want %d", len(seen), workers*perWorker)
	}
}

func TestInsertColumnCountMismatch(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	tx := s.Begin()
	bad := types.NewBatch(types.Schema{{Name: "only", Type: types.Int64}})
	bad.AppendRow([]types.Value{types.NewInt(1)})
	if err := tx.Insert(tbl, bad); err == nil {
		t.Error("insert with wrong arity should fail")
	}
}
