package storage

import "lambdadb/internal/types"

// ScanWithRowIDs yields batches of visible rows together with their physical
// row indices. DML execution (UPDATE/DELETE) uses it to address the rows it
// must version.
func (t *Table) ScanWithRowIDs(snapshot uint64, yield func(b *types.Batch, rowIDs []int) error) error {
	t.mu.RLock()
	n := len(t.createdAt)
	t.mu.RUnlock()
	idx := make([]int, 0, types.BatchSize)
	for start := 0; start < n; start += types.BatchSize {
		end := start + types.BatchSize
		if end > n {
			end = n
		}
		t.mu.RLock()
		idx = idx[:0]
		for i := start; i < end; i++ {
			if t.visibleLocked(i, snapshot) {
				idx = append(idx, i)
			}
		}
		var b *types.Batch
		if len(idx) > 0 {
			b = &types.Batch{Schema: t.schema, Cols: make([]*types.Column, len(t.cols))}
			for j, c := range t.cols {
				b.Cols[j] = c.Gather(idx)
			}
		}
		t.mu.RUnlock()
		if b != nil {
			ids := make([]int, len(idx))
			copy(ids, idx)
			if err := yield(b, ids); err != nil {
				return err
			}
		}
	}
	return nil
}
