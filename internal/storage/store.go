package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lambdadb/internal/catalog"
	"lambdadb/internal/types"
)

// Store is the top-level main-memory database: a set of tables plus the
// global commit clock.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// nextTableID is the last table ID handed out. IDs distinguish
	// incarnations of a table name across DROP + CREATE, so a redo log can
	// tell whether a record still targets the incarnation it was written
	// against. Guarded by mu.
	nextTableID uint64

	// clock is the last assigned commit timestamp. A snapshot is simply a
	// clock reading: all rows committed at or before it are visible.
	clock atomic.Uint64

	// ddlVer counts catalog changes (CREATE/DROP TABLE, CREATE/DROP INDEX,
	// state adoption) — including ones applied by WAL replay or replication.
	// The engine's plan cache stamps entries with it so a schema change
	// invalidates every plan built against the old catalog.
	ddlVer atomic.Uint64

	// commitMu serializes commits so validation and apply are atomic.
	commitMu sync.Mutex

	// logger, when set, observes every committing transaction and schema
	// change before it is applied (write-ahead logging). nil in the default,
	// non-durable configuration; the commit path takes no logging branch and
	// performs no extra allocation then.
	logger CommitLogger
}

// CommitInsert is one table's inserted batch within a CommitData.
type CommitInsert struct {
	Table   string
	TableID uint64
	Batch   *types.Batch
}

// CommitDelete is one physical-row deletion within a CommitData.
type CommitDelete struct {
	Table   string
	TableID uint64
	Row     int
}

// CommitData describes one committing transaction for the CommitLogger: the
// commit timestamp it will publish plus every buffered write. The batches
// are shared with the transaction — loggers must encode them synchronously
// and not retain them.
type CommitData struct {
	TS      uint64
	Inserts []CommitInsert
	Deletes []CommitDelete
}

// CommitLogger is the storage layer's durability hook (write-ahead log).
//
// Log* methods are called while the relevant store lock is held — LogCommit
// under the commit lock after validation and before apply, the DDL hooks
// under the table-map lock — so log order equals apply order. They must
// only buffer the record and return quickly; returning a non-nil error
// fails the operation before anything is applied. The returned wait
// function is called after the locks are released and blocks until the
// record is durable; its error means the change is applied in memory but
// its durability is unconfirmed (the caller must not acknowledge it).
type CommitLogger interface {
	LogCommit(c *CommitData) (wait func() error, err error)
	LogCreateTable(name string, schema types.Schema, id uint64) (wait func() error, err error)
	LogDropTable(name string, id uint64) (wait func() error, err error)
	LogCreateIndex(def IndexDef, tableID uint64) (wait func() error, err error)
	LogDropIndex(index, table string, tableID uint64) (wait func() error, err error)
}

// SetCommitLogger installs the durability hook. It must be called before
// the store is shared between goroutines (recovery installs it before the
// engine starts serving); passing nil disables logging.
func (s *Store) SetCommitLogger(l CommitLogger) { s.logger = l }

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// CreateTable creates a new table. It fails if the name is taken.
func (s *Store) CreateTable(name string, schema types.Schema) (*Table, error) {
	s.mu.Lock()
	if _, ok := s.tables[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("table %q already exists", name)
	}
	t := NewTable(name, schema)
	t.id = s.nextTableID + 1
	var wait func() error
	if lg := s.logger; lg != nil {
		w, err := lg.LogCreateTable(name, schema, t.id)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		wait = w
	}
	s.nextTableID = t.id
	s.tables[name] = t
	s.ddlVer.Add(1)
	s.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return nil, fmt.Errorf("CREATE TABLE applied but not confirmed durable: %w", err)
		}
	}
	return t, nil
}

// CreateTableWithID creates a table carrying an explicit incarnation ID.
// It is a recovery-only API (snapshot load and log replay, before a
// CommitLogger is installed): the ID must come from the image or log so
// later log records can be matched against the right incarnation.
func (s *Store) CreateTableWithID(name string, schema types.Schema, id uint64) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("table %q already exists", name)
	}
	t := NewTable(name, schema)
	t.id = id
	if id > s.nextTableID {
		s.nextTableID = id
	}
	s.tables[name] = t
	s.ddlVer.Add(1)
	return t, nil
}

// DropTable removes a table.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	t, ok := s.tables[name]
	if !ok {
		s.mu.Unlock()
		return &catalog.ErrNoSuchTable{Name: name}
	}
	var wait func() error
	if lg := s.logger; lg != nil {
		w, err := lg.LogDropTable(name, t.id)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		wait = w
	}
	delete(s.tables, name)
	s.ddlVer.Add(1)
	s.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("DROP TABLE applied but not confirmed durable: %w", err)
		}
	}
	return nil
}

// CreateIndex creates a secondary index on an existing table. Index names
// are globally unique (DROP INDEX takes only a name). The definition is
// validated before it is logged, then built and installed atomically with
// respect to commits: addIndex holds the table lock, so the structure covers
// exactly the rows present at install time and the append hook covers every
// later one.
func (s *Store) CreateIndex(def IndexDef) error {
	s.mu.Lock()
	t, ok := s.tables[def.Table]
	if !ok {
		s.mu.Unlock()
		return &catalog.ErrNoSuchTable{Name: def.Table}
	}
	for _, other := range s.tables {
		if other.hasIndex(def.Name) {
			s.mu.Unlock()
			return fmt.Errorf("index %q already exists", def.Name)
		}
	}
	// Validate column and type now: the log must never record an operation
	// that cannot apply.
	col := t.Schema().IndexOf(def.Column)
	if col < 0 {
		s.mu.Unlock()
		return fmt.Errorf("table %q has no column %q", def.Table, def.Column)
	}
	if _, err := newIndexImpl(def.Kind, t.Schema()[col].Type); err != nil {
		s.mu.Unlock()
		return err
	}
	var wait func() error
	if lg := s.logger; lg != nil {
		w, err := lg.LogCreateIndex(def, t.id)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		wait = w
	}
	if err := t.AddIndex(def); err != nil {
		s.mu.Unlock()
		return err
	}
	s.ddlVer.Add(1)
	s.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("CREATE INDEX applied but not confirmed durable: %w", err)
		}
	}
	return nil
}

// DropIndex removes the named index from whichever table holds it.
func (s *Store) DropIndex(name string) error {
	s.mu.Lock()
	var t *Table
	for _, tb := range s.tables {
		if tb.hasIndex(name) {
			t = tb
			break
		}
	}
	if t == nil {
		s.mu.Unlock()
		return fmt.Errorf("index %q does not exist", name)
	}
	var wait func() error
	if lg := s.logger; lg != nil {
		w, err := lg.LogDropIndex(name, t.name, t.id)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		wait = w
	}
	t.dropIndex(name)
	s.ddlVer.Add(1)
	s.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("DROP INDEX applied but not confirmed durable: %w", err)
		}
	}
	return nil
}

// HasIndex reports whether any table has an index with the given name.
func (s *Store) HasIndex(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, t := range s.tables {
		if t.hasIndex(name) {
			return true
		}
	}
	return false
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, &catalog.ErrNoSuchTable{Name: name}
	}
	return t, nil
}

// Resolve implements catalog.Catalog.
func (s *Store) Resolve(name string) (catalog.Relation, error) {
	return s.Table(name)
}

// TableNames returns the names of all tables.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	return out
}

// Snapshot returns the current snapshot timestamp.
func (s *Store) Snapshot() uint64 { return s.clock.Load() }

// WithCommitLock runs fn while holding the commit lock, so no commit is in
// flight and the clock cannot move. fn receives the current clock value.
// The checkpointer uses it to rotate the redo log exactly at a clock
// boundary: every record written before the rotation has a timestamp at or
// below the received clock, every record after it a higher one.
func (s *Store) WithCommitLock(fn func(clock uint64)) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	fn(s.clock.Load())
}

// RestoreClock forces the commit clock during recovery (snapshot load).
// It must not be used on a live store.
func (s *Store) RestoreClock(ts uint64) { s.clock.Store(ts) }

// AdoptState replaces this store's contents — tables, table-ID counter,
// and commit clock — with from's, in place, so every existing reference to
// this store observes the new state. A replica uses it when a snapshot
// resync replaces its entire database. from must be private to the caller
// (freshly loaded, never shared). In-flight scans keep the table pointers
// they already resolved and finish against the old state — a consistent,
// if stale, snapshot.
func (s *Store) AdoptState(from *Store) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables = from.tables
	s.nextTableID = from.nextTableID
	s.clock.Store(from.clock.Load())
	s.ddlVer.Add(1)
}

// DDLVersion returns the current catalog-change counter. Plans cached at an
// older version must not be served.
func (s *Store) DDLVersion() uint64 { return s.ddlVer.Load() }

// lookupForReplay resolves a logged table reference. It returns nil when
// the name is gone or now names a different incarnation — the record then
// targeted a table that was concurrently dropped, and had no visible
// effect, so replay skips it.
func (s *Store) lookupForReplay(name string, id uint64) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[name]
	if t == nil || t.id != id {
		return nil
	}
	return t
}

// ApplyLoggedCommit re-applies one logged commit during recovery. Commit
// timestamps are contiguous (every logged commit advanced the clock by
// exactly one), so the record's timestamp must be exactly clock+1; a gap
// means a log record is missing and recovery must not guess.
func (s *Store) ApplyLoggedCommit(c *CommitData) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	ts := s.clock.Load() + 1
	if c.TS != ts {
		return fmt.Errorf("storage: replayed commit has timestamp %d, want %d (log record missing or duplicated)", c.TS, ts)
	}
	for _, d := range c.Deletes {
		t := s.lookupForReplay(d.Table, d.TableID)
		if t == nil {
			continue
		}
		if err := t.replayDelete(d.Row, ts); err != nil {
			return err
		}
	}
	for _, in := range c.Inserts {
		t := s.lookupForReplay(in.Table, in.TableID)
		if t == nil {
			continue
		}
		if len(in.Batch.Cols) != len(t.schema) {
			return fmt.Errorf("storage: replayed insert into %s has %d columns, table has %d",
				in.Table, len(in.Batch.Cols), len(t.schema))
		}
		for j, col := range t.schema {
			if got := in.Batch.Cols[j].T; got != col.Type {
				return fmt.Errorf("storage: replayed insert into %s column %q has type %s, table has %s",
					in.Table, col.Name, got, col.Type)
			}
		}
		t.appendRows(in.Batch, ts)
	}
	s.clock.Store(ts)
	return nil
}

// Begin starts a transaction reading at the current snapshot.
func (s *Store) Begin() *Txn {
	return &Txn{store: s, snapshot: s.clock.Load()}
}

// Txn is a transaction: a snapshot for reads plus buffered writes that are
// validated and applied atomically at commit. Write-write conflicts follow
// first-committer-wins.
//
// A Txn is built by one statement executor at a time, but Commit and
// Rollback may race with each other (a connection teardown rolling back
// while a commit is in flight): the internal mutex makes that safe, and
// whichever finishes the transaction first wins.
type Txn struct {
	store    *Store
	snapshot uint64

	mu      sync.Mutex
	done    bool
	inserts []bufferedInsert
	deletes []bufferedDelete
}

type bufferedInsert struct {
	table *Table
	batch *types.Batch
}

type bufferedDelete struct {
	table *Table
	row   int
}

// Snapshot returns the transaction's read snapshot.
func (tx *Txn) Snapshot() uint64 { return tx.snapshot }

// Insert buffers rows for insertion into table at commit. The batch must
// match the table's column count and column types exactly: a mis-typed
// batch would corrupt the column store when its vectors are bulk-appended.
func (tx *Txn) Insert(table *Table, b *types.Batch) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxnDone
	}
	if len(b.Cols) != len(table.schema) {
		return fmt.Errorf("insert into %s: got %d columns, want %d",
			table.name, len(b.Cols), len(table.schema))
	}
	for j, col := range table.schema {
		if got := b.Cols[j].T; got != col.Type {
			return &TypeMismatchError{
				Table: table.name, Column: col.Name, Got: got, Want: col.Type,
			}
		}
	}
	tx.inserts = append(tx.inserts, bufferedInsert{table, b})
	return nil
}

// Delete buffers the deletion of a physical row. Buffering the same row
// more than once is allowed (scans do not see the transaction's own
// buffered deletes, so an UPDATE followed by a DELETE targets the same
// physical rows twice); Commit deduplicates.
func (tx *Txn) Delete(table *Table, row int) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxnDone
	}
	tx.deletes = append(tx.deletes, bufferedDelete{table, row})
	return nil
}

// Commit validates and applies all buffered writes atomically, returning a
// ConflictError if another transaction deleted one of our target rows after
// our snapshot.
//
// Commit either publishes everything or publishes nothing: the commit
// timestamp is only advanced after every buffered write applied, and a
// failed commit unwinds any delete stamps it placed, so a later committer
// can never accidentally publish a failed transaction's writes by reusing
// its timestamp.
func (tx *Txn) Commit() error {
	wait, err := tx.commit()
	if err != nil {
		return err
	}
	if wait != nil {
		// Block until the write-ahead record is durable, outside every lock
		// so concurrent committers batch into one fsync (group commit). An
		// error here means the commit is applied in memory but its record
		// may not have reached disk: the caller must treat the transaction
		// as failed (it was never acknowledged), and the log has latched
		// the failure so no later commit can be acknowledged past the gap.
		if err := wait(); err != nil {
			return fmt.Errorf("commit applied but not confirmed durable: %w", err)
		}
	}
	return nil
}

// commit validates, logs, and applies the transaction under the commit
// lock, returning the logger's durability wait (nil without a logger).
func (tx *Txn) commit() (wait func() error, err error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, errTxnDone
	}
	tx.done = true
	// One transaction may buffer the same physical row for deletion more
	// than once (UPDATE then DELETE, or DELETE twice — scans never see the
	// transaction's own buffered deletes). Deduplicate so the apply loop
	// below stamps each row exactly once.
	deletes := dedupeDeletes(tx.deletes)
	if len(tx.inserts) == 0 && len(deletes) == 0 {
		return nil, nil
	}
	s := tx.store
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	// Validate deletes first (first-committer-wins): any target row deleted
	// after our snapshot is a conflict. Bounds are checked here too, so an
	// invalid row index fails the commit before anything is stamped.
	for _, d := range deletes {
		_, del, err := d.table.rowVersion(d.row)
		if err != nil {
			return nil, err
		}
		if del != 0 && del > tx.snapshot {
			return nil, &ConflictError{Table: d.table.name, Row: d.row}
		}
	}

	ts := s.clock.Load() + 1

	// Write-ahead: hand the validated commit to the logger before anything
	// is applied. Appends are ordered by the commit lock, so log order is
	// commit order; a logging failure fails the commit with nothing stamped.
	if lg := s.logger; lg != nil {
		c := &CommitData{TS: ts}
		for _, in := range tx.inserts {
			if in.batch.Len() == 0 {
				continue
			}
			c.Inserts = append(c.Inserts, CommitInsert{
				Table: in.table.name, TableID: in.table.id, Batch: in.batch,
			})
		}
		for _, d := range deletes {
			c.Deletes = append(c.Deletes, CommitDelete{
				Table: d.table.name, TableID: d.table.id, Row: d.row,
			})
		}
		if wait, err = lg.LogCommit(c); err != nil {
			return nil, err
		}
	}

	for k, d := range deletes {
		if err := d.table.deleteRow(d.row, ts, tx.snapshot); err != nil {
			// Cannot happen after validation while holding commitMu, but if
			// it ever does, unwind the stamps already placed: ts was never
			// published, and the next committer will reuse it.
			for _, u := range deletes[:k] {
				u.table.undeleteRow(u.row, ts)
			}
			return nil, err
		}
	}
	for _, in := range tx.inserts {
		in.table.appendRows(in.batch, ts)
	}
	// Publish: rows become visible to snapshots taken from now on.
	s.clock.Store(ts)
	return wait, nil
}

// dedupeDeletes drops repeated (table, row) targets, keeping first
// occurrence order. The common cases (no deletes, a single delete) return
// the slice untouched.
func dedupeDeletes(ds []bufferedDelete) []bufferedDelete {
	if len(ds) < 2 {
		return ds
	}
	type target struct {
		t   *Table
		row int
	}
	seen := make(map[target]struct{}, len(ds))
	out := ds[:0]
	for _, d := range ds {
		k := target{d.table, d.row}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, d)
	}
	return out
}

// Rollback discards all buffered writes.
func (tx *Txn) Rollback() {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	tx.done = true
	tx.inserts = nil
	tx.deletes = nil
}

var errTxnDone = fmt.Errorf("transaction already finished")
