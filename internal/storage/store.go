package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lambdadb/internal/catalog"
	"lambdadb/internal/types"
)

// Store is the top-level main-memory database: a set of tables plus the
// global commit clock.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// clock is the last assigned commit timestamp. A snapshot is simply a
	// clock reading: all rows committed at or before it are visible.
	clock atomic.Uint64

	// commitMu serializes commits so validation and apply are atomic.
	commitMu sync.Mutex
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// CreateTable creates a new table. It fails if the name is taken.
func (s *Store) CreateTable(name string, schema types.Schema) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("table %q already exists", name)
	}
	t := NewTable(name, schema)
	s.tables[name] = t
	return t, nil
}

// DropTable removes a table.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return &catalog.ErrNoSuchTable{Name: name}
	}
	delete(s.tables, name)
	return nil
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, &catalog.ErrNoSuchTable{Name: name}
	}
	return t, nil
}

// Resolve implements catalog.Catalog.
func (s *Store) Resolve(name string) (catalog.Relation, error) {
	return s.Table(name)
}

// TableNames returns the names of all tables.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	return out
}

// Snapshot returns the current snapshot timestamp.
func (s *Store) Snapshot() uint64 { return s.clock.Load() }

// Begin starts a transaction reading at the current snapshot.
func (s *Store) Begin() *Txn {
	return &Txn{store: s, snapshot: s.clock.Load()}
}

// Txn is a transaction: a snapshot for reads plus buffered writes that are
// validated and applied atomically at commit. Write-write conflicts follow
// first-committer-wins.
//
// A Txn is built by one statement executor at a time, but Commit and
// Rollback may race with each other (a connection teardown rolling back
// while a commit is in flight): the internal mutex makes that safe, and
// whichever finishes the transaction first wins.
type Txn struct {
	store    *Store
	snapshot uint64

	mu      sync.Mutex
	done    bool
	inserts []bufferedInsert
	deletes []bufferedDelete
}

type bufferedInsert struct {
	table *Table
	batch *types.Batch
}

type bufferedDelete struct {
	table *Table
	row   int
}

// Snapshot returns the transaction's read snapshot.
func (tx *Txn) Snapshot() uint64 { return tx.snapshot }

// Insert buffers rows for insertion into table at commit. The batch must
// match the table's column count and column types exactly: a mis-typed
// batch would corrupt the column store when its vectors are bulk-appended.
func (tx *Txn) Insert(table *Table, b *types.Batch) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxnDone
	}
	if len(b.Cols) != len(table.schema) {
		return fmt.Errorf("insert into %s: got %d columns, want %d",
			table.name, len(b.Cols), len(table.schema))
	}
	for j, col := range table.schema {
		if got := b.Cols[j].T; got != col.Type {
			return &TypeMismatchError{
				Table: table.name, Column: col.Name, Got: got, Want: col.Type,
			}
		}
	}
	tx.inserts = append(tx.inserts, bufferedInsert{table, b})
	return nil
}

// Delete buffers the deletion of a physical row. Buffering the same row
// more than once is allowed (scans do not see the transaction's own
// buffered deletes, so an UPDATE followed by a DELETE targets the same
// physical rows twice); Commit deduplicates.
func (tx *Txn) Delete(table *Table, row int) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxnDone
	}
	tx.deletes = append(tx.deletes, bufferedDelete{table, row})
	return nil
}

// Commit validates and applies all buffered writes atomically, returning a
// ConflictError if another transaction deleted one of our target rows after
// our snapshot.
//
// Commit either publishes everything or publishes nothing: the commit
// timestamp is only advanced after every buffered write applied, and a
// failed commit unwinds any delete stamps it placed, so a later committer
// can never accidentally publish a failed transaction's writes by reusing
// its timestamp.
func (tx *Txn) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxnDone
	}
	tx.done = true
	// One transaction may buffer the same physical row for deletion more
	// than once (UPDATE then DELETE, or DELETE twice — scans never see the
	// transaction's own buffered deletes). Deduplicate so the apply loop
	// below stamps each row exactly once.
	deletes := dedupeDeletes(tx.deletes)
	if len(tx.inserts) == 0 && len(deletes) == 0 {
		return nil
	}
	s := tx.store
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	// Validate deletes first (first-committer-wins): any target row deleted
	// after our snapshot is a conflict. Bounds are checked here too, so an
	// invalid row index fails the commit before anything is stamped.
	for _, d := range deletes {
		_, del, err := d.table.rowVersion(d.row)
		if err != nil {
			return err
		}
		if del != 0 && del > tx.snapshot {
			return &ConflictError{Table: d.table.name, Row: d.row}
		}
	}

	ts := s.clock.Load() + 1
	for k, d := range deletes {
		if err := d.table.deleteRow(d.row, ts, tx.snapshot); err != nil {
			// Cannot happen after validation while holding commitMu, but if
			// it ever does, unwind the stamps already placed: ts was never
			// published, and the next committer will reuse it.
			for _, u := range deletes[:k] {
				u.table.undeleteRow(u.row, ts)
			}
			return err
		}
	}
	for _, in := range tx.inserts {
		in.table.appendRows(in.batch, ts)
	}
	// Publish: rows become visible to snapshots taken from now on.
	s.clock.Store(ts)
	return nil
}

// dedupeDeletes drops repeated (table, row) targets, keeping first
// occurrence order. The common cases (no deletes, a single delete) return
// the slice untouched.
func dedupeDeletes(ds []bufferedDelete) []bufferedDelete {
	if len(ds) < 2 {
		return ds
	}
	type target struct {
		t   *Table
		row int
	}
	seen := make(map[target]struct{}, len(ds))
	out := ds[:0]
	for _, d := range ds {
		k := target{d.table, d.row}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, d)
	}
	return out
}

// Rollback discards all buffered writes.
func (tx *Txn) Rollback() {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	tx.done = true
	tx.inserts = nil
	tx.deletes = nil
}

var errTxnDone = fmt.Errorf("transaction already finished")
