package storage

import (
	"errors"
	"testing"

	"lambdadb/internal/types"
)

// TestDoubleDeleteSameTxnCommits is the regression test for the commit
// atomicity bug: a transaction buffering the same physical row for deletion
// twice (UPDATE-then-DELETE or DELETE-twice, since scans never see the
// transaction's own buffered deletes) used to pass validation, stamp the
// row, then fail on the duplicate with a ConflictError — leaving delete
// stamps carrying a commit timestamp that was never published.
func TestDoubleDeleteSameTxnCommits(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	insertRows(t, s, tbl, [][2]float64{{1, 1}, {2, 2}})
	clock0 := s.Snapshot()

	tx := s.Begin()
	for _, row := range []int{0, 0, 1, 0} {
		if err := tx.Delete(tbl, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("double-delete commit failed: %v", err)
	}
	if got := s.Snapshot(); got != clock0+1 {
		t.Errorf("clock = %d, want %d (exactly one advance per commit)", got, clock0+1)
	}
	if got := tbl.NumRows(s.Snapshot()); got != 0 {
		t.Errorf("NumRows = %d, want 0", got)
	}
	// The pre-commit snapshot still sees both rows.
	if got := tbl.NumRows(clock0); got != 2 {
		t.Errorf("NumRows at old snapshot = %d, want 2", got)
	}
}

// TestFailedCommitPublishesNothing asserts the commit invariant directly: a
// commit that fails must not advance the clock and must not leave any
// delete stamp behind, so the next committer's timestamp cannot publish a
// failed transaction's writes.
func TestFailedCommitPublishesNothing(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	insertRows(t, s, tbl, [][2]float64{{1, 1}, {2, 2}})
	clock0 := s.Snapshot()

	tx := s.Begin()
	if err := tx.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, 99); err != nil { // out-of-range: commit must fail
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with an out-of-range delete should fail")
	}
	if got := s.Snapshot(); got != clock0 {
		t.Errorf("failed commit advanced the clock: %d -> %d", clock0, got)
	}
	// Row 0 must still be live: no stamp from the failed commit survives.
	if _, del, err := tbl.rowVersion(0); err != nil || del != 0 {
		t.Errorf("row 0 deletedAt = %d (err %v), want 0 after failed commit", del, err)
	}
	// The next committer reuses the failed commit's timestamp; it must not
	// resurrect the failed delete.
	insertRows(t, s, tbl, [][2]float64{{3, 3}})
	if got := tbl.NumRows(s.Snapshot()); got != 3 {
		t.Errorf("NumRows after next commit = %d, want 3 (phantom delete published)", got)
	}
}

// TestCommitUnwindsPartialDeletes forces a mid-apply failure across two
// tables and checks the earlier table's stamp is unwound.
func TestCommitUnwindsPartialDeletes(t *testing.T) {
	s := NewStore()
	a, _ := s.CreateTable("a", testSchema())
	b, _ := s.CreateTable("b", testSchema())
	insertRows(t, s, a, [][2]float64{{1, 1}})
	insertRows(t, s, b, [][2]float64{{2, 2}})
	clock0 := s.Snapshot()

	tx := s.Begin()
	if err := tx.Delete(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(b, 42); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit should fail on the out-of-range delete")
	}
	if got := s.Snapshot(); got != clock0 {
		t.Errorf("clock moved on failed commit: %d -> %d", clock0, got)
	}
	if _, del, _ := a.rowVersion(0); del != 0 {
		t.Errorf("table a row 0 deletedAt = %d, want 0", del)
	}
}

func TestInsertTypeMismatch(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema()) // (id BIGINT, v DOUBLE)
	tx := s.Begin()
	bad := types.NewBatch(types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "v", Type: types.String}, // wrong: table column is DOUBLE
	})
	bad.AppendRow([]types.Value{types.NewInt(1), types.NewString("oops")})
	err := tx.Insert(tbl, bad)
	var mismatch *TypeMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("mis-typed insert: err = %v, want *TypeMismatchError", err)
	}
	if mismatch.Column != "v" || mismatch.Got != types.String || mismatch.Want != types.Float64 {
		t.Errorf("mismatch detail = %+v", mismatch)
	}
	tx.Rollback()

	// A correctly typed batch still inserts.
	tx = s.Begin()
	ok := types.NewBatch(tbl.Schema())
	ok.AppendRow([]types.Value{types.NewInt(1), types.NewFloat(1.5)})
	if err := tx.Insert(tbl, ok); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.NumRows(s.Snapshot()); got != 1 {
		t.Errorf("NumRows = %d, want 1", got)
	}
}

func TestRollbackRacesCommit(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())
	// Commit and Rollback racing on the same Txn must be safe; exactly one
	// outcome wins.
	for i := 0; i < 50; i++ {
		tx := s.Begin()
		b := types.NewBatch(tbl.Schema())
		b.AppendRow([]types.Value{types.NewInt(int64(i)), types.NewFloat(0)})
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			tx.Rollback()
			close(done)
		}()
		_ = tx.Commit() // either commits or reports the txn finished
		<-done
	}
	// Every row that is visible was committed; the count is whatever the
	// races produced, but the scan must be internally consistent.
	n := tbl.NumRows(s.Snapshot())
	if n < 0 || n > 50 {
		t.Errorf("NumRows = %d out of range", n)
	}
}
