// Package storage implements the main-memory column store and the
// transaction layer on top of it.
//
// Tables are append-optimized: columns grow at the tail, and deletes set a
// per-row deletion timestamp. Visibility follows snapshot semantics: a row
// is visible at snapshot S when it was created at or before S and not
// deleted at or before S. Updates are delete+insert. This mirrors the
// versioning scheme of main-memory systems like HyPer closely enough to
// exercise the paper's "fully transactional environment" claim while
// staying within the standard library.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"lambdadb/internal/types"
)

// Table is a main-memory columnar table with per-row version metadata.
type Table struct {
	name   string
	schema types.Schema
	id     uint64 // incarnation ID, unique across DROP + re-CREATE (see Store)

	mu        sync.RWMutex
	cols      []*types.Column
	createdAt []uint64 // commit timestamp that created the row
	deletedAt []uint64 // commit timestamp that deleted the row; 0 = live
	liveRows  int      // rows with deletedAt == 0
	maxTS     uint64   // newest commit timestamp that touched this table
	indexes   []*tableIndex
}

// NewTable creates an empty table.
func NewTable(name string, schema types.Schema) *Table {
	t := &Table{name: name, schema: schema}
	t.cols = make([]*types.Column, len(schema))
	for i, c := range schema {
		t.cols[i] = types.NewColumn(c.Type, 0)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ID returns the table's incarnation ID (0 for tables created outside a
// Store). Redo-log records carry it so replay can tell a record that
// targeted a dropped incarnation from one targeting the current table.
func (t *Table) ID() uint64 { return t.id }

// Schema returns the table schema.
func (t *Table) Schema() types.Schema { return t.schema }

// PhysicalRows returns the number of physical row slots (live + dead).
func (t *Table) PhysicalRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.createdAt)
}

// NumRows returns the number of rows visible at snapshot.
func (t *Table) NumRows(snapshot uint64) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Fast path: when the snapshot is at least as new as the last write to
	// this table, exactly the live rows are visible — O(1), which matters
	// because the planner calls this for cardinality estimates.
	if snapshot >= t.maxTS {
		return t.liveRows
	}
	n := 0
	for i := range t.createdAt {
		if t.visibleLocked(i, snapshot) {
			n++
		}
	}
	return n
}

func (t *Table) visibleLocked(i int, snapshot uint64) bool {
	if t.createdAt[i] > snapshot {
		return false
	}
	d := t.deletedAt[i]
	return d == 0 || d > snapshot
}

// Scan yields batches of rows visible at snapshot.
func (t *Table) Scan(snapshot uint64, yield func(*types.Batch) error) error {
	t.mu.RLock()
	n := len(t.createdAt)
	t.mu.RUnlock()
	return t.ScanRange(snapshot, 0, n, yield)
}

// ScanRange yields batches of visible rows whose physical index is in
// [lo, hi). Appends never move existing rows, so holding the lock only per
// batch is safe: rows added after the scan started have createdAt greater
// than the snapshot and would be invisible anyway.
func (t *Table) ScanRange(snapshot uint64, lo, hi int, yield func(*types.Batch) error) error {
	if lo < 0 {
		lo = 0
	}
	idx := make([]int, 0, types.BatchSize)
	for start := lo; start < hi; start += types.BatchSize {
		end := start + types.BatchSize
		if end > hi {
			end = hi
		}
		t.mu.RLock()
		if end > len(t.createdAt) {
			end = len(t.createdAt)
		}
		if start >= end {
			t.mu.RUnlock()
			break
		}
		idx = idx[:0]
		allVisible := true
		for i := start; i < end; i++ {
			if t.visibleLocked(i, snapshot) {
				idx = append(idx, i)
			} else {
				allVisible = false
			}
		}
		var b *types.Batch
		if allVisible {
			// Zero-copy view of a fully visible range.
			b = &types.Batch{Schema: t.schema, Cols: make([]*types.Column, len(t.cols))}
			for j, c := range t.cols {
				b.Cols[j] = c.Slice(start, end)
			}
		} else if len(idx) > 0 {
			b = &types.Batch{Schema: t.schema, Cols: make([]*types.Column, len(t.cols))}
			for j, c := range t.cols {
				b.Cols[j] = c.Gather(idx)
			}
		}
		t.mu.RUnlock()
		if b != nil && b.Len() > 0 {
			if err := yield(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// appendRows appends rows (as a batch) with the given creation timestamp.
// Caller must ensure batch schema types match the table schema.
func (t *Table) appendRows(b *types.Batch, ts uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := b.Len()
	base := len(t.createdAt)
	for j, c := range t.cols {
		c.AppendColumn(b.Cols[j])
	}
	for _, ix := range t.indexes {
		ix.impl.insert(b.Cols[ix.col], base)
	}
	for i := 0; i < n; i++ {
		t.createdAt = append(t.createdAt, ts)
		t.deletedAt = append(t.deletedAt, 0)
	}
	t.liveRows += n
	if ts > t.maxTS {
		t.maxTS = ts
	}
}

// deleteRow marks physical row i deleted at ts. It reports a conflict when
// the row was already deleted by a transaction invisible to snapshot.
func (t *Table) deleteRow(i int, ts, snapshot uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.deletedAt) {
		return fmt.Errorf("storage: delete of out-of-range row %d in %s", i, t.name)
	}
	if d := t.deletedAt[i]; d != 0 {
		if d == ts {
			// Already stamped by this very commit (a duplicate buffered
			// delete). Commit deduplicates, but a same-timestamp stamp must
			// never read as a conflict: that would fail the commit after
			// earlier stamps were placed.
			return nil
		}
		if d > snapshot {
			return &ConflictError{Table: t.name, Row: i}
		}
		return nil // already deleted before our snapshot; treat as no-op
	}
	t.deletedAt[i] = ts
	t.liveRows--
	if ts > t.maxTS {
		t.maxTS = ts
	}
	return nil
}

// replayDelete re-applies a logged deletion during recovery. The original
// commit already validated it, so any disagreement with the table's state
// (row out of range, or already deleted by a different timestamp) means the
// log and image diverged, and recovery must stop rather than guess.
func (t *Table) replayDelete(i int, ts uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.deletedAt) {
		return fmt.Errorf("storage: replayed delete of out-of-range row %d in %s (have %d physical rows)",
			i, t.name, len(t.deletedAt))
	}
	switch d := t.deletedAt[i]; d {
	case 0:
		t.deletedAt[i] = ts
		t.liveRows--
	case ts:
		// duplicate within the record; harmless
	default:
		return fmt.Errorf("storage: replayed delete of row %d in %s at ts %d, but row already deleted at ts %d",
			i, t.name, ts, d)
	}
	if ts > t.maxTS {
		t.maxTS = ts
	}
	return nil
}

// RestoreRows bulk-appends physical rows with explicit version stamps. It
// is a recovery-only API used to load a physical snapshot image: the rows
// keep their original physical positions, creation and deletion
// timestamps, so redo-log records that reference physical row indexes
// resolve exactly as they did before the crash.
func (t *Table) RestoreRows(b *types.Batch, createdAt, deletedAt []uint64) error {
	n := b.Len()
	if len(createdAt) != n || len(deletedAt) != n {
		return fmt.Errorf("storage: restore of %d rows in %s with %d/%d version stamps",
			n, t.name, len(createdAt), len(deletedAt))
	}
	if len(b.Cols) != len(t.schema) {
		return fmt.Errorf("storage: restore into %s: got %d columns, want %d",
			t.name, len(b.Cols), len(t.schema))
	}
	for j, col := range t.schema {
		if got := b.Cols[j].T; got != col.Type {
			return fmt.Errorf("storage: restore into %s column %q: got type %s, want %s",
				t.name, col.Name, got, col.Type)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := len(t.createdAt)
	for j, c := range t.cols {
		c.AppendColumn(b.Cols[j])
	}
	for _, ix := range t.indexes {
		ix.impl.insert(b.Cols[ix.col], base)
	}
	for i := 0; i < n; i++ {
		t.createdAt = append(t.createdAt, createdAt[i])
		t.deletedAt = append(t.deletedAt, deletedAt[i])
		if deletedAt[i] == 0 {
			t.liveRows++
		}
		if createdAt[i] > t.maxTS {
			t.maxTS = createdAt[i]
		}
		if deletedAt[i] > t.maxTS {
			t.maxTS = deletedAt[i]
		}
	}
	return nil
}

// ScanPhysical yields the physical row prefix created at or before clock,
// in physical order and with per-row version stamps; deletions stamped
// after clock are reported as live (0). Commit timestamps are assigned
// under the commit lock and rows append at the tail, so createdAt is
// non-decreasing and the rows at or before clock are exactly a prefix.
// Checkpointing uses this to write a consistent physical image of the
// store as of clock while commits continue.
func (t *Table) ScanPhysical(clock uint64, yield func(b *types.Batch, createdAt, deletedAt []uint64) error) error {
	t.mu.RLock()
	n := sort.Search(len(t.createdAt), func(i int) bool { return t.createdAt[i] > clock })
	t.mu.RUnlock()
	for start := 0; start < n; start += types.BatchSize {
		end := start + types.BatchSize
		if end > n {
			end = n
		}
		t.mu.RLock()
		b := &types.Batch{Schema: t.schema, Cols: make([]*types.Column, len(t.cols))}
		for j, c := range t.cols {
			b.Cols[j] = c.Slice(start, end)
		}
		created := append([]uint64(nil), t.createdAt[start:end]...)
		deleted := make([]uint64, end-start)
		for i := range deleted {
			if d := t.deletedAt[start+i]; d != 0 && d <= clock {
				deleted[i] = d
			}
		}
		t.mu.RUnlock()
		if err := yield(b, created, deleted); err != nil {
			return err
		}
	}
	return nil
}

// undeleteRow reverts a deleteRow stamp placed with ts by a commit that
// subsequently failed, restoring the row's live status. Stamps placed by
// other timestamps are left untouched.
func (t *Table) undeleteRow(i int, ts uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= 0 && i < len(t.deletedAt) && t.deletedAt[i] == ts {
		t.deletedAt[i] = 0
		t.liveRows++
	}
}

// rowVersion returns (createdAt, deletedAt) of physical row i, or an error
// when i is not a physical row of the table.
func (t *Table) rowVersion(i int) (uint64, uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.createdAt) {
		return 0, 0, fmt.Errorf("storage: version of out-of-range row %d in %s", i, t.name)
	}
	return t.createdAt[i], t.deletedAt[i], nil
}

// ConflictError reports a write-write conflict (first-committer-wins).
type ConflictError struct {
	Table string
	Row   int
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("serialization conflict on table %q row %d", e.Table, e.Row)
}

// TypeMismatchError reports an insert batch whose column type does not
// match the table schema.
type TypeMismatchError struct {
	Table  string
	Column string
	Got    types.Type
	Want   types.Type
}

func (e *TypeMismatchError) Error() string {
	return fmt.Sprintf("type mismatch inserting into %q: column %q holds %s, batch provides %s",
		e.Table, e.Column, e.Want, e.Got)
}
