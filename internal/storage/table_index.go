package storage

import (
	"fmt"
	"sort"

	"lambdadb/internal/catalog"
	"lambdadb/internal/types"
)

// tableIndex binds an index definition to its structure and column ordinal.
// Guarded by the owning table's mutex.
type tableIndex struct {
	def  IndexDef
	col  int
	impl indexImpl
}

// AddIndex validates def against the table, builds the structure over every
// existing physical row, and installs it, all under the table lock so no
// concurrent append can slip between build and install.
//
// It performs no logging: Store.CreateIndex is the transactional path.
// Calling AddIndex directly is reserved for recovery (image load), where
// the definition comes from the checkpoint image.
func (t *Table) AddIndex(def IndexDef) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ix := range t.indexes {
		if ix.def.Name == def.Name {
			return fmt.Errorf("storage: index %q already exists on table %q", def.Name, t.name)
		}
	}
	col := t.schema.IndexOf(def.Column)
	if col < 0 {
		return fmt.Errorf("storage: table %q has no column %q", t.name, def.Column)
	}
	impl, err := newIndexImpl(def.Kind, t.schema[col].Type)
	if err != nil {
		return err
	}
	impl.insert(t.cols[col], 0)
	def.Table = t.name
	t.indexes = append(t.indexes, &tableIndex{def: def, col: col, impl: impl})
	return nil
}

// dropIndex removes the named index; it reports whether it existed.
func (t *Table) dropIndex(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, ix := range t.indexes {
		if ix.def.Name == name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return true
		}
	}
	return false
}

// hasIndex reports whether the named index exists on this table.
func (t *Table) hasIndex(name string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.indexes {
		if ix.def.Name == name {
			return true
		}
	}
	return false
}

// IndexDefs returns the table's index definitions, sorted by name (the
// persist layer relies on the deterministic order).
func (t *Table) IndexDefs() []IndexDef {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexDef, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix.def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Indexes implements catalog.IndexedRelation.
func (t *Table) Indexes() []catalog.IndexInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]catalog.IndexInfo, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, catalog.IndexInfo{
			Name:    ix.def.Name,
			Column:  ix.def.Column,
			Kind:    ix.def.Kind.String(),
			Keys:    ix.impl.keys(),
			Entries: ix.impl.entries(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// indexLocked returns the named index; the caller holds t.mu.
func (t *Table) indexLocked(name string) *tableIndex {
	for _, ix := range t.indexes {
		if ix.def.Name == name {
			return ix
		}
	}
	return nil
}

// IndexLookupEq implements catalog.IndexedRelation: it yields batches of
// rows visible at snapshot whose indexed column equals key.
func (t *Table) IndexLookupEq(index string, key types.Value, snapshot uint64, yield func(*types.Batch) error) error {
	rows, err := t.indexRows(index, snapshot, func(ix *tableIndex) ([]int32, error) {
		return ix.impl.probeEq(key, nil), nil
	})
	if err != nil {
		return err
	}
	return t.emitRows(rows, yield)
}

// IndexLookupRange implements catalog.IndexedRelation: it yields batches of
// visible rows whose indexed column falls within the bounds (nil pointer =
// unbounded side). The index must be ordered.
func (t *Table) IndexLookupRange(index string, lo, hi *types.Value, loInc, hiInc bool, snapshot uint64, yield func(*types.Batch) error) error {
	rows, err := t.indexRows(index, snapshot, func(ix *tableIndex) ([]int32, error) {
		res, ok := ix.impl.probeRange(lo, hi, loInc, hiInc, nil)
		if !ok {
			return nil, fmt.Errorf("storage: index %q on table %q does not support range probes", index, t.name)
		}
		return res, nil
	})
	if err != nil {
		return err
	}
	return t.emitRows(rows, yield)
}

// indexRows probes an index under the read lock, filters the candidate rows
// by MVCC visibility at snapshot, and returns them in ascending physical
// order. Probes never mutate the structure, so the read lock suffices.
func (t *Table) indexRows(name string, snapshot uint64, probe func(*tableIndex) ([]int32, error)) ([]int, error) {
	t.mu.RLock()
	ix := t.indexLocked(name)
	if ix == nil {
		t.mu.RUnlock()
		return nil, fmt.Errorf("storage: no index %q on table %q", name, t.name)
	}
	cand, err := probe(ix)
	if err != nil {
		t.mu.RUnlock()
		return nil, err
	}
	vis := make([]int, 0, len(cand))
	for _, r := range cand {
		if t.visibleLocked(int(r), snapshot) {
			vis = append(vis, int(r))
		}
	}
	t.mu.RUnlock()
	sort.Ints(vis)
	return vis, nil
}

// emitRows gathers the given physical rows into batches, re-taking the read
// lock per batch like ScanRange does (rows never move once appended).
func (t *Table) emitRows(rows []int, yield func(*types.Batch) error) error {
	for start := 0; start < len(rows); start += types.BatchSize {
		end := start + types.BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		t.mu.RLock()
		b := &types.Batch{Schema: t.schema, Cols: make([]*types.Column, len(t.cols))}
		for j, c := range t.cols {
			b.Cols[j] = c.Gather(rows[start:end])
		}
		t.mu.RUnlock()
		if err := yield(b); err != nil {
			return err
		}
	}
	return nil
}
