package storage

import (
	"fmt"
	"math"
	"sort"

	"lambdadb/internal/types"
)

// ---------------------------------------------------------------------------
// Secondary indexes
//
// An index covers every physical row of its table, dead versions included:
// a row deleted at timestamp D is still visible to snapshots below D, so the
// index must keep serving it. Probes therefore return candidate physical row
// IDs which the table filters per-row against the read snapshot — exactly
// the visibility check a scan performs, applied to a much smaller set. This
// also makes index content a pure function of (physical rows × column):
// deletes need no index maintenance, and rebuild-from-rows during recovery
// is guaranteed to converge with the pre-crash state.
//
// Two structures are provided. A hash index maps native keys to row-ID
// postings and serves equality probes in O(1). An ordered index keeps a
// (key, row) array sorted by key with a small unsorted tail — appends are
// O(1) amortized, the tail is merged once it outgrows a fraction of the
// sorted prefix — and serves both equality and range probes by binary
// search plus a linear walk of the tail.
// ---------------------------------------------------------------------------

// IndexKind selects the index structure.
type IndexKind uint8

// Supported index kinds.
const (
	HashIndex    IndexKind = 1 // equality probes only
	OrderedIndex IndexKind = 2 // equality and range probes
)

// String returns the SQL spelling of the kind.
func (k IndexKind) String() string {
	switch k {
	case HashIndex:
		return "HASH"
	case OrderedIndex:
		return "ORDERED"
	default:
		return "UNKNOWN"
	}
}

// IndexDef identifies one secondary index.
type IndexDef struct {
	Name   string
	Table  string
	Column string
	Kind   IndexKind
}

// indexImpl is the typed index structure behind a tableIndex. Implementations
// are not safe for concurrent use; the owning table's mutex guards them
// (write lock for insert, read lock for probes — probes never mutate).
type indexImpl interface {
	// insert adds the column's rows as physical rows base, base+1, ….
	// NULL keys are skipped: the predicates an index serves (=, <, <=, >,
	// >=) are NULL-rejecting, so a NULL row can never be a probe hit.
	insert(c *types.Column, base int)
	// probeEq appends the row IDs whose key equals v to out.
	probeEq(v types.Value, out []int32) []int32
	// probeRange appends the row IDs whose key falls within the bounds
	// (nil pointer = unbounded side). ok is false when the structure does
	// not support range probes (hash indexes).
	probeRange(lo, hi *types.Value, loInc, hiInc bool, out []int32) (res []int32, ok bool)
	// keys and entries report distinct-key and posting counts.
	keys() int
	entries() int
}

// newIndexImpl builds the structure for a column type. Bool columns are
// rejected at CREATE INDEX, so only Int64, Float64, and String appear here.
func newIndexImpl(kind IndexKind, t types.Type) (indexImpl, error) {
	switch kind {
	case HashIndex:
		switch t {
		case types.Int64:
			return &hashIdx[int64, intCodec]{m: map[int64][]int32{}}, nil
		case types.Float64:
			return &hashIdx[float64, floatCodec]{m: map[float64][]int32{}}, nil
		case types.String:
			return &hashIdx[string, stringCodec]{m: map[string][]int32{}}, nil
		}
	case OrderedIndex:
		switch t {
		case types.Int64:
			return &orderedIdx[int64, intCodec]{}, nil
		case types.Float64:
			return &orderedIdx[float64, floatCodec]{}, nil
		case types.String:
			return &orderedIdx[string, stringCodec]{}, nil
		}
	}
	return nil, fmt.Errorf("storage: no %s index over %s columns", kind, t)
}

// ---------------------------------------------------------------------------
// Key codecs: column/probe value → native key conversion.
//
// Probe coercion is total — a probe value that cannot possibly match any
// key (a non-integral float equality against an integer column, NaN, a
// cross-type string probe) yields an empty result, never an error, so the
// planner may hand any constant to any index and keep scan semantics.
// ---------------------------------------------------------------------------

type codec[K any] interface {
	// at extracts row i's key; false means NULL (or NaN) — not indexed.
	at(c *types.Column, i int) (K, bool)
	// eqKey converts an equality probe; false means nothing can match.
	eqKey(v types.Value) (K, bool)
	// loKey converts a lower bound to (key, inclusive); false means the
	// range is empty (bound above every representable key).
	loKey(v types.Value, inc bool) (K, bool, bool)
	// hiKey converts an upper bound; false means the range is empty.
	hiKey(v types.Value, inc bool) (K, bool, bool)
	less(a, b K) bool
}

// maxI64f is 2^63 as a float64 (exact). Floats at or beyond ±2^63 are
// outside int64 range.
const maxI64f = float64(1 << 63)

type intCodec struct{}

func (intCodec) at(c *types.Column, i int) (int64, bool) {
	if c.IsNull(i) {
		return 0, false
	}
	return c.Ints[i], true
}

func (intCodec) eqKey(v types.Value) (int64, bool) {
	switch v.T {
	case types.Int64:
		return v.I, true
	case types.Float64:
		f := v.F
		if math.IsNaN(f) || f != math.Trunc(f) || f < -maxI64f || f >= maxI64f {
			return 0, false
		}
		return int64(f), true
	}
	return 0, false
}

func (intCodec) loKey(v types.Value, inc bool) (int64, bool, bool) {
	switch v.T {
	case types.Int64:
		return v.I, inc, true
	case types.Float64:
		f := v.F
		if math.IsNaN(f) || f >= maxI64f {
			return 0, false, false
		}
		if f < -maxI64f {
			return math.MinInt64, true, true
		}
		if f == math.Trunc(f) {
			return int64(f), inc, true
		}
		// Non-integral bound: round up; the rounded key strictly exceeds
		// the bound, so the comparison becomes inclusive.
		cf := math.Ceil(f)
		if cf >= maxI64f {
			return 0, false, false
		}
		return int64(cf), true, true
	}
	return 0, false, false
}

func (intCodec) hiKey(v types.Value, inc bool) (int64, bool, bool) {
	switch v.T {
	case types.Int64:
		return v.I, inc, true
	case types.Float64:
		f := v.F
		if math.IsNaN(f) || f < -maxI64f {
			return 0, false, false
		}
		if f >= maxI64f {
			return math.MaxInt64, true, true
		}
		if f == math.Trunc(f) {
			return int64(f), inc, true
		}
		return int64(math.Floor(f)), true, true
	}
	return 0, false, false
}

func (intCodec) less(a, b int64) bool { return a < b }

type floatCodec struct{}

func (floatCodec) at(c *types.Column, i int) (float64, bool) {
	if c.IsNull(i) {
		return 0, false
	}
	f := c.Floats[i]
	if math.IsNaN(f) {
		// NaN compares false against everything, so a NaN row can never be
		// an =, <, <=, >, or >= probe hit; keeping it out of the index also
		// keeps the ordered structure's sort invariant intact.
		return 0, false
	}
	return f, true
}

func (floatCodec) eqKey(v types.Value) (float64, bool) {
	switch v.T {
	case types.Int64:
		return float64(v.I), true
	case types.Float64:
		if math.IsNaN(v.F) {
			return 0, false
		}
		if v.F == 0 {
			return 0, true // normalize -0.0 so it matches +0.0 keys
		}
		return v.F, true
	}
	return 0, false
}

func (floatCodec) loKey(v types.Value, inc bool) (float64, bool, bool) {
	k, ok := floatCodec{}.eqKey(v)
	return k, inc, ok
}

func (floatCodec) hiKey(v types.Value, inc bool) (float64, bool, bool) {
	k, ok := floatCodec{}.eqKey(v)
	return k, inc, ok
}

func (floatCodec) less(a, b float64) bool { return a < b }

type stringCodec struct{}

func (stringCodec) at(c *types.Column, i int) (string, bool) {
	if c.IsNull(i) {
		return "", false
	}
	return c.Strs[i], true
}

func (stringCodec) eqKey(v types.Value) (string, bool) {
	if v.T != types.String {
		return "", false
	}
	return v.S, true
}

func (stringCodec) loKey(v types.Value, inc bool) (string, bool, bool) {
	k, ok := stringCodec{}.eqKey(v)
	return k, inc, ok
}

func (stringCodec) hiKey(v types.Value, inc bool) (string, bool, bool) {
	k, ok := stringCodec{}.eqKey(v)
	return k, inc, ok
}

func (stringCodec) less(a, b string) bool { return a < b }

// normalizeFloatKey folds -0.0 into +0.0 on the insert path, mirroring
// eqKey's probe-side normalization.
func normalizeFloatKey(f float64) float64 {
	if f == 0 {
		return 0
	}
	return f
}

// ---------------------------------------------------------------------------
// Hash index
// ---------------------------------------------------------------------------

type hashIdx[K comparable, C codec[K]] struct {
	cd C
	m  map[K][]int32
	n  int
}

func (h *hashIdx[K, C]) insert(c *types.Column, base int) {
	n := c.Len()
	for i := 0; i < n; i++ {
		k, ok := h.cd.at(c, i)
		if !ok {
			continue
		}
		if f, isF := any(k).(float64); isF {
			k = any(normalizeFloatKey(f)).(K)
		}
		h.m[k] = append(h.m[k], int32(base+i))
		h.n++
	}
}

func (h *hashIdx[K, C]) probeEq(v types.Value, out []int32) []int32 {
	k, ok := h.cd.eqKey(v)
	if !ok {
		return out
	}
	return append(out, h.m[k]...)
}

func (h *hashIdx[K, C]) probeRange(lo, hi *types.Value, loInc, hiInc bool, out []int32) ([]int32, bool) {
	return out, false
}

func (h *hashIdx[K, C]) keys() int    { return len(h.m) }
func (h *hashIdx[K, C]) entries() int { return h.n }

// ---------------------------------------------------------------------------
// Ordered index
// ---------------------------------------------------------------------------

// minTailMerge is the smallest unsorted tail worth merging; below it the
// linear tail walk is cheaper than re-sorting.
const minTailMerge = 256

type orderedIdx[K any, C codec[K]] struct {
	cd     C
	ks     []K
	rows   []int32
	sorted int // prefix [0, sorted) is sorted by key
	nkeys  int // distinct keys in the sorted prefix (tail counted lazily)
}

func (o *orderedIdx[K, C]) insert(c *types.Column, base int) {
	n := c.Len()
	for i := 0; i < n; i++ {
		k, ok := o.cd.at(c, i)
		if !ok {
			continue
		}
		if f, isF := any(k).(float64); isF {
			k = any(normalizeFloatKey(f)).(K)
		}
		o.ks = append(o.ks, k)
		o.rows = append(o.rows, int32(base+i))
	}
	if tail := len(o.ks) - o.sorted; tail >= minTailMerge && tail >= o.sorted/16 {
		o.merge()
	}
}

// merge re-sorts the whole (key, row) array and recounts distinct keys. The
// tail threshold keeps this amortized: the array must grow by ~6% (or by
// minTailMerge entries) between merges.
func (o *orderedIdx[K, C]) merge() {
	sort.Sort(&keyRowSort[K, C]{o})
	o.sorted = len(o.ks)
	o.nkeys = 0
	for i := range o.ks {
		if i == 0 || o.cd.less(o.ks[i-1], o.ks[i]) {
			o.nkeys++
		}
	}
}

// keyRowSort sorts ks and rows in lockstep by key.
type keyRowSort[K any, C codec[K]] struct{ o *orderedIdx[K, C] }

func (s *keyRowSort[K, C]) Len() int { return len(s.o.ks) }
func (s *keyRowSort[K, C]) Less(i, j int) bool {
	return s.o.cd.less(s.o.ks[i], s.o.ks[j])
}
func (s *keyRowSort[K, C]) Swap(i, j int) {
	s.o.ks[i], s.o.ks[j] = s.o.ks[j], s.o.ks[i]
	s.o.rows[i], s.o.rows[j] = s.o.rows[j], s.o.rows[i]
}

func (o *orderedIdx[K, C]) probeEq(v types.Value, out []int32) []int32 {
	k, ok := o.cd.eqKey(v)
	if !ok {
		return out
	}
	// Sorted prefix: the run of equal keys starting at the first key ≥ k.
	lo := sort.Search(o.sorted, func(i int) bool { return !o.cd.less(o.ks[i], k) })
	for i := lo; i < o.sorted && !o.cd.less(k, o.ks[i]); i++ {
		out = append(out, o.rows[i])
	}
	// Unsorted tail: linear walk.
	for i := o.sorted; i < len(o.ks); i++ {
		if !o.cd.less(o.ks[i], k) && !o.cd.less(k, o.ks[i]) {
			out = append(out, o.rows[i])
		}
	}
	return out
}

func (o *orderedIdx[K, C]) probeRange(lo, hi *types.Value, loInc, hiInc bool, out []int32) ([]int32, bool) {
	var (
		lk, hk         K
		haveLo, haveHi bool
		li, hi2        bool
	)
	if lo != nil {
		var ok bool
		lk, li, ok = o.cd.loKey(*lo, loInc)
		if !ok {
			return out, true // empty range
		}
		haveLo = true
	}
	if hi != nil {
		var ok bool
		hk, hi2, ok = o.cd.hiKey(*hi, hiInc)
		if !ok {
			return out, true
		}
		haveHi = true
	}
	inRange := func(k K) bool {
		if haveLo {
			if o.cd.less(k, lk) {
				return false
			}
			if !li && !o.cd.less(lk, k) {
				return false
			}
		}
		if haveHi {
			if o.cd.less(hk, k) {
				return false
			}
			if !hi2 && !o.cd.less(k, hk) {
				return false
			}
		}
		return true
	}
	// Sorted prefix: binary-search both ends.
	start := 0
	if haveLo {
		if li {
			start = sort.Search(o.sorted, func(i int) bool { return !o.cd.less(o.ks[i], lk) })
		} else {
			start = sort.Search(o.sorted, func(i int) bool { return o.cd.less(lk, o.ks[i]) })
		}
	}
	end := o.sorted
	if haveHi {
		if hi2 {
			end = sort.Search(o.sorted, func(i int) bool { return o.cd.less(hk, o.ks[i]) })
		} else {
			end = sort.Search(o.sorted, func(i int) bool { return !o.cd.less(o.ks[i], hk) })
		}
	}
	for i := start; i < end; i++ {
		out = append(out, o.rows[i])
	}
	// Unsorted tail: linear walk.
	for i := o.sorted; i < len(o.ks); i++ {
		if inRange(o.ks[i]) {
			out = append(out, o.rows[i])
		}
	}
	return out, true
}

func (o *orderedIdx[K, C]) keys() int {
	n := o.nkeys
	// Tail keys are counted as distinct; the estimate self-corrects at the
	// next merge, and stats only need the right order of magnitude.
	n += len(o.ks) - o.sorted
	return n
}

func (o *orderedIdx[K, C]) entries() int { return len(o.ks) }
