package storage

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"lambdadb/internal/types"
)

// TestParallelCommitters hammers the transaction layer with concurrent
// insert/delete/conflict traffic and asserts the commit-clock invariants:
// the clock is monotone, every successful commit with writes advances it by
// exactly one (no timestamp reuse, no lost advance), no row ever carries a
// timestamp newer than the published clock, and NumRows matches the
// effective insert/delete balance. Run under -race this also exercises the
// locking of the store, tables, and transactions.
func TestParallelCommitters(t *testing.T) {
	s := NewStore()
	tbl, _ := s.CreateTable("t", testSchema())

	// Contended rows: every worker tries to delete these; first committer
	// wins, the rest must either conflict or no-op.
	insertRows(t, s, tbl, [][2]float64{{-1, 0}, {-2, 0}, {-3, 0}, {-4, 0}})
	const contended = 4

	const workers = 8
	const rounds = 150
	clock0 := s.Snapshot()

	var (
		commits     atomic.Int64 // successful commits with buffered writes
		inserted    atomic.Int64 // rows inserted by successful commits
		clockErrs   atomic.Int64
		stopMonitor = make(chan struct{})
		monitorDone = make(chan struct{})
	)

	// Monitor: the clock must never move backwards.
	go func() {
		defer close(monitorDone)
		last := s.Snapshot()
		for {
			select {
			case <-stopMonitor:
				return
			default:
			}
			now := s.Snapshot()
			if now < last {
				clockErrs.Add(1)
				return
			}
			last = now
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var ownRows []int // physical indices of rows this worker inserted
			for i := 0; i < rounds; i++ {
				switch op := rng.Intn(4); {
				case op <= 1: // insert 1-3 rows
					tx := s.Begin()
					b := types.NewBatch(tbl.Schema())
					n := 1 + rng.Intn(3)
					for k := 0; k < n; k++ {
						b.AppendRow([]types.Value{
							types.NewInt(int64(w*1_000_000 + i*10 + k)),
							types.NewFloat(float64(i)),
						})
					}
					if err := tx.Insert(tbl, b); err != nil {
						t.Error(err)
						return
					}
					before := tbl.PhysicalRows()
					if err := tx.Commit(); err != nil {
						t.Errorf("insert commit: %v", err)
						return
					}
					// Concurrent appends may land between `before` and our
					// rows, so these indices are only *probably* ours — good
					// enough: deleting another worker's row is still a valid
					// operation, it just may conflict.
					for k := 0; k < n; k++ {
						ownRows = append(ownRows, before+k)
					}
					commits.Add(1)
					inserted.Add(int64(n))
				case op == 2 && len(ownRows) > 0: // delete a row believed ours
					row := ownRows[rng.Intn(len(ownRows))]
					tx := s.Begin()
					if err := tx.Delete(tbl, row); err != nil {
						t.Error(err)
						return
					}
					// Duplicate the target sometimes: must never break commit.
					if rng.Intn(2) == 0 {
						if err := tx.Delete(tbl, row); err != nil {
							t.Error(err)
							return
						}
					}
					err := tx.Commit()
					var conflict *ConflictError
					switch {
					case err == nil:
						commits.Add(1)
					case errors.As(err, &conflict):
						// another worker's delete won on this row
					default:
						t.Errorf("delete commit: %v", err)
						return
					}
				default: // fight over a contended row
					tx := s.Begin()
					if err := tx.Delete(tbl, rng.Intn(contended)); err != nil {
						t.Error(err)
						return
					}
					err := tx.Commit()
					var conflict *ConflictError
					switch {
					case err == nil:
						commits.Add(1)
					case errors.As(err, &conflict):
					default:
						t.Errorf("contended commit: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopMonitor)
	<-monitorDone
	if clockErrs.Load() != 0 {
		t.Fatal("commit clock moved backwards")
	}

	clockEnd := s.Snapshot()
	if got, want := clockEnd-clock0, uint64(commits.Load()); got != want {
		t.Errorf("clock advanced %d, want %d (one tick per successful commit)", got, want)
	}

	// No row may carry a timestamp newer than the published clock, and the
	// live-row count must reconcile with the version metadata.
	tbl.mu.RLock()
	live := 0
	for i := range tbl.createdAt {
		if tbl.createdAt[i] > clockEnd {
			t.Errorf("row %d createdAt %d > clock %d (unpublished timestamp)", i, tbl.createdAt[i], clockEnd)
		}
		if d := tbl.deletedAt[i]; d > clockEnd {
			t.Errorf("row %d deletedAt %d > clock %d (unpublished timestamp)", i, d, clockEnd)
		} else if d == 0 {
			live++
		}
	}
	phys := len(tbl.createdAt)
	tbl.mu.RUnlock()

	if got := tbl.NumRows(clockEnd); got != live {
		t.Errorf("NumRows = %d, want %d (version metadata)", got, live)
	}
	if want := int(inserted.Load()) + contended; phys != want {
		t.Errorf("physical rows = %d, want %d", phys, want)
	}
}
