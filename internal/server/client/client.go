// Package client is a minimal Go client for lambdaserver's wire protocol
// (see internal/server/wire). It is what sqlshell's -connect mode and the
// server's stress tests are built on.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"lambdadb/internal/retry"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
)

// Result is one request's outcome: either a typed result set (Columns,
// Types, Rows) or an affected-row count.
type Result struct {
	Columns  []string
	Types    []types.Type
	Rows     [][]types.Value
	Affected int
}

// ServerError is an error the server reported for one request. The
// connection stays usable after a ServerError; any other error from Exec
// poisons the connection. TraceID is the request's trace ID as echoed by
// the server ("" when talking to a server predating trace support), so a
// caller can quote it when filing the failure against server logs and
// system.query_log.
//
// Code is the machine-readable classification from the error frame (e.g.
// wire.CodeReadOnly, wire.CodeRetryable), "" when the server sent an
// unclassified error. Details carries the code's key/value annotations.
type ServerError struct {
	Msg     string
	TraceID string
	Code    string
	Details map[string]string
}

func (e *ServerError) Error() string { return e.Msg }

// Primary returns the primary's address a read_only rejection pointed at,
// or "" when the server did not know one.
func (e *ServerError) Primary() string { return e.Details["primary"] }

// Retryable reports whether the server classified the failure as safe to
// retry (elsewhere or later) for idempotent requests.
func (e *ServerError) Retryable() bool { return e.Code == wire.CodeRetryable }

// Conn is a client connection. It is safe for concurrent use: requests are
// serialized (the protocol is strictly request/response), and Close may be
// called at any time — including while a request is in flight, which
// aborts it (the server sees the disconnect and cancels the statement).
type Conn struct {
	reqMu sync.Mutex // serializes requests; never held by Close
	br    *bufio.Reader

	mu     sync.Mutex // guards nc
	nc     net.Conn
	closed bool
}

// ConnError is a transport-level connection failure: the dial (including
// every retry) failed, so no server ever answered. It wraps the last
// attempt's error and reports how many attempts were made, so callers can
// distinguish "server unreachable" from a statement the server rejected
// (*ServerError) and surface the retry effort in their own messages.
type ConnError struct {
	Addr     string
	Attempts int
	Err      error
}

func (e *ConnError) Error() string {
	return fmt.Sprintf("client: connect to %s failed after %d attempt(s): %v", e.Addr, e.Attempts, e.Err)
}

func (e *ConnError) Unwrap() error { return e.Err }

// RetryConfig bounds DialRetry. The zero value means 5 attempts with a
// 50ms-to-2s jittered exponential backoff between them.
type RetryConfig struct {
	MaxAttempts int           // total dial attempts; <= 0 means 5
	BaseBackoff time.Duration // first retry delay; <= 0 means 50ms
	MaxBackoff  time.Duration // retry delay cap; <= 0 means 2s
}

// Dial connects to a lambdaserver at addr with a single attempt.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &ConnError{Addr: addr, Attempts: 1, Err: err}
	}
	return &Conn{nc: nc, br: bufio.NewReader(nc)}, nil
}

// DialRetry connects to a lambdaserver at addr, retrying failed dials with
// capped exponential backoff plus jitter up to cfg.MaxAttempts times. It
// returns a *ConnError carrying the attempt count when every attempt
// failed, or ctx's error when cancelled between attempts. Permanent
// failures — a malformed address, or a resolver saying the host does not
// exist — fail immediately instead of burning the attempt budget: no
// number of retries turns a bad address into a reachable server.
func DialRetry(ctx context.Context, addr string, cfg RetryConfig) (*Conn, error) {
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	base := cfg.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := cfg.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return nil, &ConnError{Addr: addr, Attempts: 0, Err: err}
	}
	bo := &retry.Backoff{Base: base, Max: max}
	var d net.Dialer
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := bo.Sleep(ctx, attempt-1); err != nil {
				return nil, err
			}
		}
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return &Conn{nc: nc, br: bufio.NewReader(nc)}, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if permanentDialError(err) {
			return nil, &ConnError{Addr: addr, Attempts: attempt + 1, Err: err}
		}
	}
	return nil, &ConnError{Addr: addr, Attempts: attempts, Err: lastErr}
}

// permanentDialError reports whether a dial failure cannot be cured by
// retrying: the address failed to parse, or DNS authoritatively said the
// name does not exist. Refused connections, timeouts, and temporary
// resolver failures all stay retryable.
func permanentDialError(err error) bool {
	var ae *net.AddrError
	if errors.As(err, &ae) {
		return true
	}
	var de *net.DNSError
	if errors.As(err, &de) {
		return de.IsNotFound
	}
	return false
}

// conn returns the live socket or an error after Close/failure.
func (c *Conn) conn() (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nc == nil {
		return nil, fmt.Errorf("client: connection is closed")
	}
	return c.nc, nil
}

// Exec sends one request (one or more semicolon-separated statements) and
// returns the server's single response — the last statement's result.
func (c *Conn) Exec(text string) (*Result, error) {
	return c.ExecContext(context.Background(), text)
}

// ExecContext is Exec bounded by ctx. The wire protocol has no out-of-band
// cancel message, so cancellation closes the connection; the server
// notices the disconnect and cancels the statement server-side. After a
// cancelled call the Conn is closed and must be re-dialled.
//
// The request carries a trace ID: the one in ctx (telemetry.WithTraceID)
// when present, else a freshly generated one. The server stamps it into
// its query log, slow-query log, and any error frame, so one ID follows
// the statement across every observability surface.
func (c *Conn) ExecContext(ctx context.Context, text string) (*Result, error) {
	return c.roundTrip(ctx, wire.Query, []byte(text))
}

// Prepare creates a named server-side prepared statement on this
// connection's session; stmt may contain $1..$N placeholders, and name may
// carry a declared type list, e.g. "q (INT, TEXT)". It is sent as ordinary
// PREPARE statement text, so it also works against servers predating the
// prepared-statement frames (which answer Bind by dropping the connection —
// a failed Prepare is the compatibility signal to stop).
func (c *Conn) Prepare(ctx context.Context, name, stmt string) error {
	_, err := c.ExecContext(ctx, "PREPARE "+name+" AS "+stmt)
	return err
}

// ExecutePrepared executes a prepared statement with args bound to $1..$N
// using a Bind frame: no SQL text crosses the wire and the server skips
// lex/parse/plan entirely on a plan-cache hit. Only call it after a
// successful Prepare on this connection.
func (c *Conn) ExecutePrepared(ctx context.Context, name string, args ...types.Value) (*Result, error) {
	return c.roundTrip(ctx, wire.Bind, wire.EncodeBind(name, args))
}

// Deallocate drops one prepared statement, or every one when name is "".
func (c *Conn) Deallocate(ctx context.Context, name string) error {
	_, err := c.roundTrip(ctx, wire.Deallocate, []byte(name))
	return err
}

// roundTrip sends one request frame and decodes the single response frame.
func (c *Conn) roundTrip(ctx context.Context, typ byte, body []byte) (*Result, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	nc, err := c.conn()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				nc.Close() // unblocks the write/read below
			case <-stop:
			}
		}()
	}
	traceID := telemetry.TraceID(ctx)
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	if err := wire.WriteFrame(nc, typ, wire.AppendTraced(traceID, body)); err != nil {
		return nil, c.fail(ctx, err)
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, c.fail(ctx, err)
	}
	switch typ {
	case wire.Error:
		id, body := wire.SplitTraced(payload)
		code, details, msg := wire.SplitErrorCode(body)
		return nil, &ServerError{Msg: msg, TraceID: id, Code: code, Details: details}
	case wire.Affected:
		n, err := strconv.Atoi(string(payload))
		if err != nil {
			return nil, c.fail(ctx, fmt.Errorf("client: bad affected count %q", payload))
		}
		return &Result{Affected: n}, nil
	case wire.Result:
		rs, err := wire.DecodeResultSet(payload)
		if err != nil {
			return nil, c.fail(ctx, err)
		}
		return &Result{Columns: rs.Columns, Types: rs.Types, Rows: rs.Rows}, nil
	default:
		return nil, c.fail(ctx, fmt.Errorf("client: unexpected frame type %q", typ))
	}
}

// fail tears the connection down after a transport-level failure,
// preferring the context's error when the failure was a cancellation and
// a plain "closed" error when Close raced the request.
func (c *Conn) fail(ctx context.Context, err error) error {
	c.mu.Lock()
	closed := c.closed
	if c.nc != nil {
		c.nc.Close()
		c.nc = nil
	}
	c.mu.Unlock()
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if closed {
		return fmt.Errorf("client: connection closed during request")
	}
	return err
}

// Close closes the connection. It never blocks on an in-flight request
// (the request fails instead) and is safe to call twice.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.nc == nil {
		return nil
	}
	err := c.nc.Close()
	c.nc = nil
	return err
}
