package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// unusedAddr returns a localhost address nothing is listening on.
func unusedAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestDialRetryReportsAttempts(t *testing.T) {
	addr := unusedAddr(t)
	_, err := DialRetry(context.Background(), addr, RetryConfig{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	var ce *ConnError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *ConnError", err, err)
	}
	if ce.Attempts != 3 || ce.Addr != addr {
		t.Errorf("ConnError = %+v, want Attempts=3 Addr=%s", ce, addr)
	}
	if ce.Unwrap() == nil {
		t.Error("ConnError should wrap the last dial error")
	}
}

func TestDialRetryEventualSuccess(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	c, err := DialRetry(context.Background(), l.Addr().String(), RetryConfig{MaxAttempts: 2})
	if err != nil {
		t.Fatalf("DialRetry against a live listener failed: %v", err)
	}
	c.Close()
}

func TestDialRetryCancelled(t *testing.T) {
	addr := unusedAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DialRetry(ctx, addr, RetryConfig{
		MaxAttempts: 100,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  time.Second,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("DialRetry kept retrying after cancellation")
	}
}

func TestDialSingleAttemptConnError(t *testing.T) {
	_, err := Dial(unusedAddr(t))
	var ce *ConnError
	if !errors.As(err, &ce) {
		t.Fatalf("Dial err = %v (%T), want *ConnError", err, err)
	}
	if ce.Attempts != 1 {
		t.Errorf("Dial ConnError.Attempts = %d, want 1", ce.Attempts)
	}
}
