// Package server exposes an engine.DB over TCP: a concurrent network front
// end speaking the length-prefixed text protocol of package wire.
//
// Each accepted connection gets its own engine.Session, so explicit
// BEGIN/COMMIT transactions are per-connection, exactly like the embedded
// shell. Statements run under the DB's lifecycle knobs (statement timeout,
// memory budget) plus a per-connection context that is cancelled when the
// client disconnects, so a dropped client never leaves a statement running.
// Admission control caps concurrent connections; Shutdown drains gracefully
// (stop accepting, let in-flight statements finish for a grace period, then
// cancel them — their error responses are still delivered — and close).
// Connection counters feed the engine's system.metrics virtual table, and
// every statement lands in system.query_log like any other.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
)

// DefaultDrainGrace is how long Shutdown lets in-flight statements run
// before cancelling them when Config.DrainGrace is unset.
const DefaultDrainGrace = 5 * time.Second

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. ":5433" or "127.0.0.1:0".
	Addr string
	// MaxConns caps concurrent connections; further clients are refused
	// with an Error frame. <= 0 means unlimited.
	MaxConns int
	// DrainGrace is how long Shutdown lets in-flight statements finish
	// before cancelling them. <= 0 means DefaultDrainGrace.
	DrainGrace time.Duration
	// ReplHandler, when set, accepts replication streams: a connection
	// whose first frame is ReplStart is handed to it for the rest of its
	// life instead of serving queries. When nil, a ReplStart is answered
	// with an Error frame and the connection closed.
	ReplHandler ReplicationHandler
	// Logger receives structured connection-lifecycle and statement-error
	// logs (session and trace IDs as fields). Nil discards them.
	Logger *slog.Logger
}

// ReplicationHandler takes over a connection that identified itself as a
// replica (first frame ReplStart). It owns the socket until it returns;
// br carries any bytes already buffered past the handshake frame, and
// start is the handshake payload. ctx is cancelled on server shutdown.
type ReplicationHandler interface {
	ServeReplication(ctx context.Context, nc net.Conn, br *bufio.Reader, start []byte)
}

// Server serves an engine.DB over TCP.
type Server struct {
	db     *engine.DB
	cfg    Config
	log    *slog.Logger
	nextID atomic.Int64 // per-connection session IDs for log correlation

	// baseCtx parents every connection's statement context; Shutdown
	// cancels it when the drain grace expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	lis     net.Listener
	conns   map[*conn]struct{}
	closing bool

	wg sync.WaitGroup // one count per live connection
}

// New returns an unstarted server for db.
func New(db *engine.DB, cfg Config) *Server {
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = DefaultDrainGrace
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:         db,
		cfg:        cfg,
		log:        log,
		baseCtx:    ctx,
		baseCancel: cancel,
		conns:      make(map[*conn]struct{}),
	}
}

// Listen binds the configured address. After Listen, Addr reports the
// bound address (useful with ":0").
func (s *Server) Listen() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		lis.Close()
		return fmt.Errorf("server is shut down")
	}
	s.lis = lis
	return nil
}

// Addr returns the bound listen address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Serve accepts connections until Shutdown. It returns nil when the
// listener was closed by Shutdown, otherwise the accept error.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.admit(nc)
	}
}

// admit applies admission control and either starts serving the
// connection or refuses it with an Error frame.
func (s *Server) admit(nc net.Conn) {
	m := s.db.Metrics()
	s.mu.Lock()
	refuse := ""
	switch {
	case s.closing:
		refuse = "server is shutting down"
	case s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns:
		refuse = fmt.Sprintf("server is at its connection limit (%d)", s.cfg.MaxConns)
	}
	if refuse != "" {
		s.mu.Unlock()
		m.ConnsRejected.Add(1)
		s.log.Warn("connection refused", "remote", nc.RemoteAddr().String(), "reason", refuse)
		_ = nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
		// Both refusals are transient: another node (or this one, shortly)
		// can serve the client, so code them retryable for routers.
		_ = wire.WriteFrame(nc, wire.Error, wire.EncodeErrorCode(wire.CodeRetryable, nil, refuse))
		nc.Close()
		return
	}
	c := &conn{srv: s, nc: nc, sess: s.db.NewSession(), id: s.nextID.Add(1)}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	m.ConnsOpened.Add(1)
	m.ConnsActive.Add(1)
	s.log.Info("connection opened", "session", c.id, "remote", nc.RemoteAddr().String())
	go c.serve()
}

// Shutdown gracefully drains the server: stop accepting, close idle
// connections, let in-flight statements finish for the configured
// DrainGrace (their responses are still delivered), then cancel whatever
// is left — cancelled statements still answer with an Error frame — and
// wait for every connection to tear down. ctx bounds the whole wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	lis := s.lis
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.drain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-grace.C:
	case <-ctx.Done():
	}
	// Grace expired (or the caller gave up waiting): cancel in-flight
	// statements. Each still writes its error response before closing.
	s.baseCancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// conn is one client connection: a session, the socket, and the drain
// handshake state.
type conn struct {
	srv  *Server
	nc   net.Conn
	sess *engine.Session
	id   int64 // session ID for log correlation

	mu       sync.Mutex
	busy     bool // a statement is executing
	draining bool // close as soon as the current response is written
}

// serve runs the request loop. Requests are read ahead on a separate
// goroutine so a client disconnect cancels the statement it was waiting
// on instead of leaving it running to completion.
func (c *conn) serve() {
	defer c.teardown()
	ctx, cancel := context.WithCancel(c.srv.baseCtx)
	defer cancel()

	// The first frame decides what the connection is: a Query starts an
	// ordinary session, a ReplStart hands the socket to the replication
	// layer for the rest of its life.
	br := bufio.NewReader(c.nc)
	first, firstPayload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	if first == wire.ReplStart {
		h := c.srv.cfg.ReplHandler
		if h == nil {
			_ = c.nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
			_ = wire.WriteFrame(c.nc, wire.Error, []byte("this server does not accept replicas"))
			return
		}
		h.ServeReplication(ctx, c.nc, br, firstPayload)
		return
	}
	if !isRequestFrame(first) {
		return
	}

	reqs := make(chan request)
	go func() {
		defer close(reqs)
		// Deliver the already-read first request, then keep reading ahead so
		// a client disconnect cancels the statement it was waiting on.
		select {
		case reqs <- request{first, firstPayload}:
		case <-ctx.Done():
			return
		}
		for {
			typ, payload, err := wire.ReadFrame(br)
			if err != nil || !isRequestFrame(typ) {
				// Disconnect or protocol violation: abort whatever the
				// connection is running and stop reading.
				cancel()
				return
			}
			select {
			case reqs <- request{typ, payload}:
			case <-ctx.Done():
				return
			}
		}
	}()

	bw := bufio.NewWriter(c.nc)
	for req := range reqs {
		if !c.beginStatement() {
			return // draining: don't start new work
		}
		typ, payload := c.execute(ctx, req.typ, req.payload)
		werr := wire.WriteFrame(bw, typ, payload)
		if werr == nil {
			werr = bw.Flush()
		}
		drained := c.endStatement()
		if werr != nil || drained || ctx.Err() != nil {
			return
		}
	}
}

// request is one client frame awaiting execution.
type request struct {
	typ     byte
	payload []byte
}

// isRequestFrame reports whether typ is a frame a client may send on an
// established query connection.
func isRequestFrame(typ byte) bool {
	switch typ {
	case wire.Query, wire.Prepare, wire.Bind, wire.Deallocate:
		return true
	}
	return false
}

// execute runs one request on the connection's session and encodes the
// response frame. The request's trace ID (client-supplied, or generated
// here so every statement has one) rides the statement context into the
// engine's query log and comes back on the Error frame.
func (c *conn) execute(ctx context.Context, typ byte, req []byte) (byte, []byte) {
	traceID, body := wire.SplitTraced(req)
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	ctx = telemetry.WithTraceID(ctx, traceID)
	var res *engine.Result
	var err error
	switch typ {
	case wire.Query:
		res, err = c.sess.ExecContext(ctx, string(body))
	case wire.Prepare:
		// Routed through PREPARE text: the statement is parsed once here and
		// never again on Bind.
		var name, stmt string
		if name, stmt, err = wire.DecodePrepare(body); err == nil {
			res, err = c.sess.ExecContext(ctx, "PREPARE "+name+" AS "+stmt)
		}
	case wire.Bind:
		// The fast path: no SQL text at all — the prepared template's cached
		// plan is rebound to the argument values and executed.
		var name string
		var args []types.Value
		if name, args, err = wire.DecodeBind(body); err == nil {
			res, err = c.sess.ExecutePrepared(ctx, name, args)
		}
	case wire.Deallocate:
		if len(body) == 0 {
			res, err = c.sess.ExecContext(ctx, "DEALLOCATE ALL")
		} else {
			res, err = c.sess.ExecContext(ctx, "DEALLOCATE "+string(body))
		}
	default:
		err = fmt.Errorf("unsupported request frame %q", typ)
	}
	if err != nil {
		c.srv.log.Warn("statement error", "session", c.id, "trace_id", traceID, "err", err.Error())
		return wire.Error, wire.AppendTraced(traceID, classifyError(err))
	}
	if res == nil || len(res.Columns) == 0 {
		affected := 0
		if res != nil {
			affected = res.Affected
		}
		return wire.Affected, strconv.AppendInt(nil, int64(affected), 10)
	}
	rs := &wire.ResultSet{Columns: res.Columns, Types: resultTypes(res), Rows: res.Rows}
	return wire.Result, wire.EncodeResultSet(rs)
}

// classifyError renders an error body for the wire, prefixing the
// machine-readable code for failures a router or client must act on
// structurally; everything else stays a plain message.
func classifyError(err error) []byte {
	var ro *engine.ReadOnlyError
	if errors.As(err, &ro) {
		details := map[string]string{}
		if ro.Primary != "" {
			details["primary"] = ro.Primary
		}
		return wire.EncodeErrorCode(wire.CodeReadOnly, details, err.Error())
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The statement was cancelled (drain, disconnect race, timeout): a
		// read is safe to retry on another node.
		return wire.EncodeErrorCode(wire.CodeRetryable, nil, err.Error())
	}
	return []byte(err.Error())
}

// resultTypes returns the column types of a result, falling back to the
// first row's value types (then VARCHAR) for results that carry none,
// e.g. EXPLAIN text.
func resultTypes(res *engine.Result) []types.Type {
	if len(res.Types) == len(res.Columns) {
		return res.Types
	}
	out := make([]types.Type, len(res.Columns))
	for i := range out {
		if len(res.Rows) > 0 && i < len(res.Rows[0]) && res.Rows[0][i].T != types.Unknown {
			out[i] = res.Rows[0][i].T
		} else {
			out[i] = types.String
		}
	}
	return out
}

// beginStatement marks the connection busy; it reports false when the
// server is draining and no new statement may start.
func (c *conn) beginStatement() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return false
	}
	c.busy = true
	return true
}

// endStatement clears the busy flag and reports whether a drain request
// arrived while the statement ran.
func (c *conn) endStatement() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.busy = false
	return c.draining
}

// drain asks the connection to finish up: an idle connection closes
// immediately, a busy one closes right after its response is written.
func (c *conn) drain() {
	c.mu.Lock()
	busy := c.busy
	c.draining = true
	c.mu.Unlock()
	if !busy {
		c.nc.Close()
	}
}

// teardown releases everything the connection holds.
func (c *conn) teardown() {
	c.sess.Close()
	c.nc.Close()
	s := c.srv
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	m := s.db.Metrics()
	m.ConnsClosed.Add(1)
	m.ConnsActive.Add(-1)
	s.log.Info("connection closed", "session", c.id)
	s.wg.Done()
}
