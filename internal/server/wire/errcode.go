package wire

import (
	"sort"
	"strings"
)

// Machine-readable error codes carried on Error frames. The coded form is
//
//	[code key=value ...] message
//
// prefixed to the human-readable message (after the trace-ID prefix), so a
// router or client classifies failures without string matching. A body
// that does not start with a well-formed bracket group is a plain message
// from a server predating codes — SplitErrorCode returns it untouched with
// an empty code, which callers treat as unclassified.
const (
	// CodeReadOnly: the node rejects writes — it is a replica or a fenced
	// ex-primary. The "primary" detail, when present, names the address
	// writes should go to.
	CodeReadOnly = "read_only"
	// CodeNotPrimary: the request needed a primary and the cluster has
	// none electable right now; reads may still be served.
	CodeNotPrimary = "not_primary"
	// CodeRetryable: a transient condition (shutdown in progress,
	// connection limit); the same request may succeed elsewhere or later.
	CodeRetryable = "retryable"
	// CodeUnavailable: no backend could serve the request at all.
	CodeUnavailable = "unavailable"
)

// EncodeErrorCode renders the coded error body: "[code k=v ...] message".
// Detail keys are emitted in sorted order so the encoding is
// deterministic. Keys and values must not contain spaces or ']' (addresses
// and identifiers never do); offenders are skipped rather than corrupting
// the frame.
func EncodeErrorCode(code string, details map[string]string, msg string) []byte {
	var sb strings.Builder
	sb.WriteByte('[')
	sb.WriteString(code)
	keys := make([]string, 0, len(details))
	for k := range details {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := details[k]
		if strings.ContainsAny(k, " ]=") || strings.ContainsAny(v, " ]") {
			continue
		}
		sb.WriteByte(' ')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(v)
	}
	sb.WriteString("] ")
	sb.WriteString(msg)
	return []byte(sb.String())
}

// SplitErrorCode parses a coded error body. It returns the code, the
// detail map (nil when none), and the human-readable message. A body
// without a well-formed code prefix comes back with code "" and the whole
// body as the message — old servers and messages that merely start with
// '[' both degrade to unclassified, never to a wrong classification.
func SplitErrorCode(body []byte) (code string, details map[string]string, msg string) {
	s := string(body)
	if !strings.HasPrefix(s, "[") {
		return "", nil, s
	}
	end := strings.IndexByte(s, ']')
	if end < 0 {
		return "", nil, s
	}
	fields := strings.Fields(s[1:end])
	if len(fields) == 0 || !isErrCode(fields[0]) {
		return "", nil, s
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" {
			// A bracket group with non-kv fields is not ours.
			return "", nil, s
		}
		if details == nil {
			details = make(map[string]string, len(fields)-1)
		}
		details[k] = v
	}
	return fields[0], details, strings.TrimPrefix(s[end+1:], " ")
}

// isErrCode reports whether s looks like an error code: non-empty
// lower-case snake case.
func isErrCode(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && c != '_' {
			return false
		}
	}
	return true
}
