package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"lambdadb/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("SELECT 1"), {}, []byte("x")}
	for _, p := range payloads {
		if err := WriteFrame(&buf, Query, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != Query || !bytes.Equal(got, want) {
			t.Errorf("frame = (%c, %q), want (Q, %q)", typ, got, want)
		}
	}
}

func TestFrameLimit(t *testing.T) {
	// The write-side bound is MaxReplFrame: a replication record bigger
	// than any query frame still writes...
	var buf bytes.Buffer
	if err := WriteFrame(&buf, ReplRecord, make([]byte, MaxFrame+1)); err != nil {
		t.Fatalf("write of a repl-sized frame failed: %v", err)
	}
	// ...the query-protocol reader refuses it...
	if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("ReadFrame accepted a frame over MaxFrame")
	}
	// ...and the replication reader accepts it.
	typ, got, err := ReadFrameLimit(bytes.NewReader(buf.Bytes()), MaxReplFrame)
	if err != nil {
		t.Fatalf("ReadFrameLimit: %v", err)
	}
	if typ != ReplRecord || len(got) != MaxFrame+1 {
		t.Errorf("ReadFrameLimit = (%c, %d bytes), want (W, %d)", typ, len(got), MaxFrame+1)
	}
	// A corrupt length prefix must error out, not allocate.
	rd := bytes.NewReader([]byte{Query, 0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(rd); err == nil {
		t.Error("oversized read should fail")
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	rs := &ResultSet{
		Columns: []string{"n", "f", "s", "b"},
		Types:   []types.Type{types.Int64, types.Float64, types.String, types.Bool},
		Rows: [][]types.Value{
			{types.NewInt(-42), types.NewFloat(math.Pi), types.NewString("plain"), types.NewBool(true)},
			{types.NewNull(types.Int64), types.NewNull(types.Float64), types.NewNull(types.String), types.NewNull(types.Bool)},
			{types.NewInt(0), types.NewFloat(-0.5), types.NewString("tab\tnewline\nback\\slash\rend"), types.NewBool(false)},
			{types.NewInt(math.MaxInt64), types.NewFloat(1e-300), types.NewString(`\N`), types.NewBool(true)},
			{types.NewInt(7), types.NewFloat(2), types.NewString(""), types.NewBool(false)},
		},
	}
	got, err := DecodeResultSet(EncodeResultSet(rs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rs)
	}
}

func TestResultSetEmptyRows(t *testing.T) {
	rs := &ResultSet{
		Columns: []string{"only"},
		Types:   []types.Type{types.String},
		Rows:    [][]types.Value{},
	}
	got, err := DecodeResultSet(EncodeResultSet(rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 || got.Columns[0] != "only" || got.Types[0] != types.String {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	for _, payload := range []string{
		"noheadercolon",
		"a:BIGINT\n1\t2",    // too many fields
		"a:BIGINT\nnotanum", // bad int
		"a:BOOLEAN\nmaybe",  // bad bool
		"a:BIGINT\n\\x",     // bad escape
	} {
		if _, err := DecodeResultSet([]byte(payload)); err == nil {
			t.Errorf("payload %q decoded without error", payload)
		}
	}
}
