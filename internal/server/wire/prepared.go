package wire

import (
	"fmt"
	"strconv"
	"strings"

	"lambdadb/internal/types"
)

// Prepared-statement frames. All payloads are tab-separated escaped text
// (the same escaping as result sets), so they compose with the optional
// NUL-prefixed trace-ID framing: an escaped field never begins with a NUL.
//
//	Prepare    'P': name \t statement-text
//	Bind       'B': name [\t tagged-arg]...
//	Deallocate 'X': name  (empty payload = DEALLOCATE ALL)
//
// A tagged argument is one tag byte followed by the escaped value text:
// 'i' BIGINT, 'f' DOUBLE, 's' VARCHAR, 'b' BOOLEAN, 'n' NULL (no text).
// The server answers P and X with an Affected frame, B with the usual
// Result/Affected/Error — exactly one response frame per request, like Query.

// EncodePrepare renders a Prepare payload. Name may carry a parenthesized
// parameter type list, e.g. "q (INT, TEXT)".
func EncodePrepare(name, stmt string) []byte {
	b := appendEscaped(nil, name)
	b = append(b, '\t')
	return appendEscaped(b, stmt)
}

// DecodePrepare parses a Prepare payload.
func DecodePrepare(payload []byte) (name, stmt string, err error) {
	fields := strings.SplitN(string(payload), "\t", 2)
	if len(fields) != 2 {
		return "", "", fmt.Errorf("wire: Prepare payload has no statement field")
	}
	if name, _, err = unescape(fields[0]); err != nil {
		return "", "", err
	}
	if name == "" {
		return "", "", fmt.Errorf("wire: Prepare payload has an empty name")
	}
	if stmt, _, err = unescape(fields[1]); err != nil {
		return "", "", err
	}
	return name, stmt, nil
}

// EncodeBind renders a Bind payload: the statement name plus the argument
// values for $1..$N in order.
func EncodeBind(name string, args []types.Value) []byte {
	b := appendEscaped(nil, name)
	for _, v := range args {
		b = append(b, '\t')
		if v.Null {
			b = append(b, 'n')
			continue
		}
		switch v.T {
		case types.Int64:
			b = append(b, 'i')
			b = strconv.AppendInt(b, v.I, 10)
		case types.Float64:
			b = append(b, 'f')
			b = strconv.AppendFloat(b, v.F, 'g', -1, 64)
		case types.Bool:
			b = append(b, 'b')
			b = strconv.AppendBool(b, v.B)
		default:
			b = append(b, 's')
			b = appendEscaped(b, v.String())
		}
	}
	return b
}

// DecodeBind parses a Bind payload.
func DecodeBind(payload []byte) (name string, args []types.Value, err error) {
	fields := strings.Split(string(payload), "\t")
	if name, _, err = unescape(fields[0]); err != nil {
		return "", nil, err
	}
	if name == "" {
		return "", nil, fmt.Errorf("wire: Bind payload has an empty name")
	}
	args = make([]types.Value, 0, len(fields)-1)
	for i, f := range fields[1:] {
		if f == "" {
			return "", nil, fmt.Errorf("wire: Bind argument %d is empty", i+1)
		}
		tag, rest := f[0], f[1:]
		if tag == 'n' {
			args = append(args, types.NewNull(types.Unknown))
			continue
		}
		text, _, err := unescape(rest)
		if err != nil {
			return "", nil, fmt.Errorf("wire: Bind argument %d: %w", i+1, err)
		}
		switch tag {
		case 'i':
			n, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return "", nil, fmt.Errorf("wire: Bind argument %d: bad BIGINT %q", i+1, text)
			}
			args = append(args, types.NewInt(n))
		case 'f':
			x, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return "", nil, fmt.Errorf("wire: Bind argument %d: bad DOUBLE %q", i+1, text)
			}
			args = append(args, types.NewFloat(x))
		case 'b':
			switch text {
			case "true":
				args = append(args, types.NewBool(true))
			case "false":
				args = append(args, types.NewBool(false))
			default:
				return "", nil, fmt.Errorf("wire: Bind argument %d: bad BOOLEAN %q", i+1, text)
			}
		case 's':
			args = append(args, types.NewString(text))
		default:
			return "", nil, fmt.Errorf("wire: Bind argument %d has unknown tag %q", i+1, tag)
		}
	}
	return name, args, nil
}
