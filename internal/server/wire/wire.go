// Package wire implements the length-prefixed text protocol spoken between
// lambdaserver and its clients.
//
// Every frame is [1-byte type][4-byte big-endian payload length][payload],
// payloads are UTF-8 text. The client sends Query frames, each carrying one
// or more semicolon-separated SQL statements; the server answers every
// Query with exactly one frame — Result (a typed result set), Affected (a
// decimal row count), or Error (a message; the connection stays usable).
//
// A Result payload is newline-separated lines: a header line of "name:TYPE"
// fields joined by tabs, then one line per row of tab-separated encoded
// values. Value text escapes backslash, tab, newline, and carriage return
// as '\\', '\t', '\n', '\r', and spells NULL as '\N', so every string value
// round-trips and the separators stay unambiguous.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lambdadb/internal/types"
)

// Frame types.
const (
	Query    byte = 'Q' // client -> server: SQL text
	Result   byte = 'R' // server -> client: typed result set
	Affected byte = 'A' // server -> client: affected-row count
	Error    byte = 'E' // server -> client: error message

	// Prepared-statement frames (see prepared.go). Servers predating them
	// drop the connection on an unknown frame type, so clients only send
	// Bind/Deallocate after a successful PREPARE round-trip proved the
	// server understands prepared statements.
	Prepare    byte = 'P' // client -> server: name + statement text
	Bind       byte = 'B' // client -> server: name + argument values
	Deallocate byte = 'X' // client -> server: name ("" = ALL)

	// Replication stream frames (see internal/repl). A replica opens an
	// ordinary connection and sends ReplStart instead of a Query; from then
	// on the connection is a replication stream, not a query session.
	ReplStart  byte = 'S' // replica -> primary: handshake with resume position
	ReplSeg    byte = 'G' // primary -> replica: following records belong to this segment
	ReplRecord byte = 'W' // primary -> replica: one redo record (end offset + CRC + payload)
	ReplPos    byte = 'L' // primary -> replica: heartbeat with durable position and clock
	ReplResync byte = 'Y' // primary -> replica: discard local state; a snapshot follows
	ReplChunk  byte = 'C' // primary -> replica: one chunk of the resync snapshot
	ReplAck    byte = 'K' // replica -> primary: durably applied through this position
)

// MaxFrame bounds a query-protocol frame payload; oversized frames are a
// protocol error, so a corrupt or malicious length prefix cannot drive an
// allocation.
const MaxFrame = 16 << 20

// MaxReplFrame bounds a replication-stream frame: a ReplRecord carries one
// WAL record payload, whose own plausibility bound is 1 GiB, plus a small
// binary header.
const MaxReplFrame = 1<<30 + 64

// WriteFrame writes one frame. The write-side bound is MaxReplFrame (the
// largest payload any frame type may carry); readers enforce the tighter
// per-protocol limit.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxReplFrame {
		return fmt.Errorf("wire: %d-byte payload exceeds the %d-byte frame limit", len(payload), MaxReplFrame)
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one query-protocol frame (payloads bounded by MaxFrame).
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	return ReadFrameLimit(r, MaxFrame)
}

// ReadFrameLimit reads one frame whose payload may be up to limit bytes.
// Replication streams read with MaxReplFrame, the query protocol with
// MaxFrame.
func ReadFrameLimit(r io.Reader, limit int) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if int64(n) > int64(limit) {
		return 0, nil, fmt.Errorf("wire: %d-byte frame exceeds the %d-byte limit", n, limit)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ResultSet is the decoded form of a Result frame.
type ResultSet struct {
	Columns []string
	Types   []types.Type
	Rows    [][]types.Value
}

// EncodeResultSet renders a result set as a Result payload.
func EncodeResultSet(rs *ResultSet) []byte {
	var b []byte
	for i, name := range rs.Columns {
		if i > 0 {
			b = append(b, '\t')
		}
		b = appendEscaped(b, name)
		b = append(b, ':')
		b = append(b, rs.Types[i].String()...)
	}
	for _, row := range rs.Rows {
		b = append(b, '\n')
		for i, v := range row {
			if i > 0 {
				b = append(b, '\t')
			}
			b = appendValue(b, v)
		}
	}
	return b
}

// DecodeResultSet parses a Result payload.
func DecodeResultSet(payload []byte) (*ResultSet, error) {
	lines := strings.Split(string(payload), "\n")
	header := strings.Split(lines[0], "\t")
	rs := &ResultSet{
		Columns: make([]string, len(header)),
		Types:   make([]types.Type, len(header)),
	}
	for i, h := range header {
		colon := strings.LastIndexByte(h, ':')
		if colon < 0 {
			return nil, fmt.Errorf("wire: malformed result header field %q", h)
		}
		name, _, err := unescape(h[:colon])
		if err != nil {
			return nil, err
		}
		rs.Columns[i] = name
		rs.Types[i] = typeFromName(h[colon+1:])
	}
	rs.Rows = make([][]types.Value, 0, len(lines)-1)
	for _, line := range lines[1:] {
		fields := strings.Split(line, "\t")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("wire: row has %d fields, header has %d", len(fields), len(header))
		}
		row := make([]types.Value, len(fields))
		for i, f := range fields {
			v, err := decodeValue(f, rs.Types[i])
			if err != nil {
				return nil, fmt.Errorf("wire: column %q: %w", rs.Columns[i], err)
			}
			row[i] = v
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// typeFromName maps the SQL spelling produced by types.Type.String back to
// the type; unrecognized names decode as strings.
func typeFromName(s string) types.Type {
	switch s {
	case "BIGINT":
		return types.Int64
	case "DOUBLE":
		return types.Float64
	case "VARCHAR":
		return types.String
	case "BOOLEAN":
		return types.Bool
	}
	return types.Unknown
}

// appendValue encodes one value.
func appendValue(b []byte, v types.Value) []byte {
	if v.Null {
		return append(b, '\\', 'N')
	}
	switch v.T {
	case types.Int64:
		return strconv.AppendInt(b, v.I, 10)
	case types.Float64:
		return strconv.AppendFloat(b, v.F, 'g', -1, 64)
	case types.Bool:
		return strconv.AppendBool(b, v.B)
	default:
		return appendEscaped(b, v.String())
	}
}

// decodeValue parses one encoded value as type t. Unknown-typed columns
// decode as strings.
func decodeValue(s string, t types.Type) (types.Value, error) {
	text, isNull, err := unescape(s)
	if err != nil {
		return types.Value{}, err
	}
	if isNull {
		return types.NewNull(t), nil
	}
	switch t {
	case types.Int64:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("bad BIGINT %q", text)
		}
		return types.NewInt(n), nil
	case types.Float64:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("bad DOUBLE %q", text)
		}
		return types.NewFloat(f), nil
	case types.Bool:
		switch text {
		case "true":
			return types.NewBool(true), nil
		case "false":
			return types.NewBool(false), nil
		}
		return types.Value{}, fmt.Errorf("bad BOOLEAN %q", text)
	default:
		return types.NewString(text), nil
	}
}

// appendEscaped writes s with the protocol's separator characters escaped.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\t':
			b = append(b, '\\', 't')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, c)
		}
	}
	return b
}

// unescape reverses appendEscaped; the bare token `\N` decodes as NULL
// (a literal backslash-N string value arrives as `\\N`).
func unescape(s string) (text string, isNull bool, err error) {
	if s == `\N` {
		return "", true, nil
	}
	if !strings.ContainsRune(s, '\\') {
		return s, false, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", false, fmt.Errorf("wire: dangling escape in %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		default:
			return "", false, fmt.Errorf("wire: bad escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), false, nil
}
