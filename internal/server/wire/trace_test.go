package wire

import (
	"bytes"
	"testing"
)

func TestTracedRoundTrip(t *testing.T) {
	body := []byte("SELECT 1")
	payload := AppendTraced("a1b2c3d4e5f60718", body)
	id, got := SplitTraced(payload)
	if id != "a1b2c3d4e5f60718" {
		t.Errorf("id = %q", id)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("body = %q, want %q", got, body)
	}
}

// TestTracedBackwardCompat: the framing must be transparent in both
// directions — an untraced payload passes through SplitTraced unchanged
// (old client, new server), and an empty ID adds no prefix (new client
// talking to an old server never sends one).
func TestTracedBackwardCompat(t *testing.T) {
	legacy := []byte("SELECT * FROM t")
	if id, body := SplitTraced(legacy); id != "" || !bytes.Equal(body, legacy) {
		t.Errorf("legacy payload mangled: id=%q body=%q", id, body)
	}
	if got := AppendTraced("", legacy); !bytes.Equal(got, legacy) {
		t.Errorf("empty id added a prefix: %q", got)
	}
	if id, body := SplitTraced(nil); id != "" || len(body) != 0 {
		t.Errorf("empty payload: id=%q body=%q", id, body)
	}
}

// TestTracedMalformed: a payload that starts with NUL but has no
// terminator degrades to untraced rather than corrupting the statement.
func TestTracedMalformed(t *testing.T) {
	malformed := []byte("\x00deadbeef-no-terminator")
	id, body := SplitTraced(malformed)
	if id != "" {
		t.Errorf("malformed prefix produced id %q", id)
	}
	if !bytes.Equal(body, malformed) {
		t.Errorf("malformed payload not passed through: %q", body)
	}
}

// TestTracedHostileID: an ID containing the NUL delimiter cannot be framed
// (it would desynchronize the split), so AppendTraced drops it.
func TestTracedHostileID(t *testing.T) {
	body := []byte("SELECT 1")
	if got := AppendTraced("bad\x00id", body); !bytes.Equal(got, body) {
		t.Errorf("NUL-bearing id was framed: %q", got)
	}
}

// TestTracedEmptyBody: a trace ID on an empty body still round-trips (an
// empty error message, say).
func TestTracedEmptyBody(t *testing.T) {
	payload := AppendTraced("cafe", nil)
	id, body := SplitTraced(payload)
	if id != "cafe" || len(body) != 0 {
		t.Errorf("id=%q body=%q", id, body)
	}
}
