package wire

import "bytes"

// Trace-ID framing. A Query payload may optionally carry a client-chosen
// trace ID ahead of the SQL text, encoded as
//
//	0x00 <id bytes> 0x00 <body>
//
// SQL text never begins with a NUL byte, so an old client's plain payload
// and a traced payload are distinguished by the first byte alone — old
// clients keep working against new servers and vice versa. Error payloads
// sent back for a traced request carry the same prefix, letting the client
// attach the trace ID to the error it surfaces.

// AppendTraced prefixes body with the trace ID. An empty id returns body
// unchanged (the untraced wire form). IDs must not contain NUL bytes; any
// that do are sent without a trace prefix rather than corrupting framing.
func AppendTraced(id string, body []byte) []byte {
	if id == "" || bytes.IndexByte([]byte(id), 0) >= 0 {
		return body
	}
	out := make([]byte, 0, len(id)+2+len(body))
	out = append(out, 0)
	out = append(out, id...)
	out = append(out, 0)
	return append(out, body...)
}

// SplitTraced splits a possibly-traced payload into its trace ID and body.
// Payloads without the 0x00 prefix return id "" and the payload untouched.
// A malformed prefix (no terminating NUL) is treated as untraced rather
// than rejected, so a corrupt prefix degrades to a missing trace ID.
func SplitTraced(payload []byte) (id string, body []byte) {
	if len(payload) == 0 || payload[0] != 0 {
		return "", payload
	}
	end := bytes.IndexByte(payload[1:], 0)
	if end < 0 {
		return "", payload
	}
	return string(payload[1 : 1+end]), payload[2+end:]
}
