package wire

import (
	"testing"

	"lambdadb/internal/types"
)

func TestPrepareRoundTrip(t *testing.T) {
	name, stmt, err := DecodePrepare(EncodePrepare("q (INT)", "SELECT *\nFROM t\tWHERE id = $1"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "q (INT)" || stmt != "SELECT *\nFROM t\tWHERE id = $1" {
		t.Fatalf("name=%q stmt=%q", name, stmt)
	}
	if _, _, err := DecodePrepare([]byte("no-statement-field")); err == nil {
		t.Error("missing statement field should fail")
	}
	if _, _, err := DecodePrepare([]byte("\tSELECT 1")); err == nil {
		t.Error("empty name should fail")
	}
}

func TestBindRoundTrip(t *testing.T) {
	args := []types.Value{
		types.NewInt(-42),
		types.NewFloat(2.5),
		types.NewString("tab\there\nand 'quote'"),
		types.NewBool(true),
		types.NewNull(types.Unknown),
	}
	name, got, err := DecodeBind(EncodeBind("stmt", args))
	if err != nil {
		t.Fatal(err)
	}
	if name != "stmt" || len(got) != len(args) {
		t.Fatalf("name=%q args=%+v", name, got)
	}
	if got[0].I != -42 || got[1].F != 2.5 || got[2].S != args[2].S || !got[3].B || !got[4].Null {
		t.Fatalf("args = %+v", got)
	}
	// No args at all.
	name, got, err = DecodeBind(EncodeBind("q", nil))
	if err != nil || name != "q" || len(got) != 0 {
		t.Fatalf("name=%q args=%+v err=%v", name, got, err)
	}
	// Malformed payloads are rejected, not mis-decoded.
	for _, bad := range []string{"", "q\t", "q\tz99", "q\tiNaN", "q\tbmaybe"} {
		if _, _, err := DecodeBind([]byte(bad)); err == nil {
			t.Errorf("DecodeBind(%q) should fail", bad)
		}
	}
}

// TestBindComposesWithTrace: a traced Bind payload splits cleanly because
// escaped text never begins with a NUL byte.
func TestBindComposesWithTrace(t *testing.T) {
	body := EncodeBind("q", []types.Value{types.NewString("x")})
	traced := AppendTraced("trace-1", body)
	id, split := SplitTraced(traced)
	if id != "trace-1" || string(split) != string(body) {
		t.Fatalf("id=%q body=%q", id, split)
	}
	// Untraced payloads pass through unmolested.
	id, split = SplitTraced(body)
	if id != "" || string(split) != string(body) {
		t.Fatalf("untraced: id=%q body=%q", id, split)
	}
}
