package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/server/client"
	"lambdadb/internal/types"
)

// startServer brings up a server on a loopback ephemeral port and returns
// it with its DB and address. The server is drained at test end.
func startServer(t *testing.T, cfg Config, opts ...engine.Option) (*Server, *engine.DB, string) {
	t.Helper()
	db := engine.Open(opts...)
	cfg.Addr = "127.0.0.1:0"
	srv := New(db, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, db, srv.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// bulkLoad inserts n rows directly through the storage layer (building a
// megabyte of INSERT text would only slow the test down).
func bulkLoad(t *testing.T, db *engine.DB, table string, n int) {
	t.Helper()
	tbl, err := db.Store().Table(table)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Store().Begin()
	b := types.NewBatch(tbl.Schema())
	for i := 0; i < n; i++ {
		b.AppendRow([]types.Value{types.NewInt(int64(i)), types.NewFloat(float64(i))})
	}
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestServerBasicExec(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dial(t, addr)

	if _, err := c.Exec(`CREATE TABLE t (n BIGINT, f DOUBLE, s VARCHAR, b BOOLEAN)`); err != nil {
		t.Fatal(err)
	}
	r, err := c.Exec(`INSERT INTO t VALUES (1, 1.5, 'one', true), (2, 2.5, 'two', false)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Errorf("affected = %d, want 2", r.Affected)
	}
	if _, err := c.Exec(`INSERT INTO t (n) VALUES (3)`); err != nil {
		t.Fatal(err)
	}

	r, err = c.Exec(`SELECT n, f, s, b FROM t ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []types.Type{types.Int64, types.Float64, types.String, types.Bool}
	for i, w := range wantTypes {
		if r.Types[i] != w {
			t.Errorf("column %d type = %s, want %s", i, r.Types[i], w)
		}
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	if r.Rows[0][0].I != 1 || r.Rows[0][1].F != 1.5 || r.Rows[0][2].S != "one" || !r.Rows[0][3].B {
		t.Errorf("row 0 = %v", r.Rows[0])
	}
	if !r.Rows[2][1].Null || !r.Rows[2][2].Null || !r.Rows[2][3].Null {
		t.Errorf("row 2 should carry NULLs: %v", r.Rows[2])
	}

	// A server-side error keeps the connection usable.
	_, err = c.Exec(`SELECT * FROM missing`)
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *client.ServerError", err)
	}
	if r, err = c.Exec(`SELECT count(*) FROM t`); err != nil {
		t.Fatalf("connection unusable after server error: %v", err)
	}
	if r.Rows[0][0].I != 3 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
}

// TestServerTransactionsPerConnection: BEGIN state is connection-local.
func TestServerTransactionsPerConnection(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c1, c2 := dial(t, addr), dial(t, addr)

	if _, err := c1.Exec(`CREATE TABLE t (n BIGINT); BEGIN; INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// c2 must not see c1's uncommitted insert.
	r, err := c2.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 0 {
		t.Errorf("uncommitted row visible across connections: %v", r.Rows[0][0])
	}
	if _, err := c1.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	r, err = c2.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 {
		t.Errorf("committed row missing: %v", r.Rows[0][0])
	}
	// A failed statement aborts c2's transaction server-side too.
	if _, err := c2.Exec(`BEGIN; SELECT * FROM nope`); err == nil {
		t.Fatal("want error")
	}
	if _, err := c2.Exec(`BEGIN`); err != nil {
		t.Errorf("transaction left open after failed statement: %v", err)
	}
	if _, err := c2.Exec(`ROLLBACK`); err != nil {
		t.Error(err)
	}
}

// TestServerConcurrentClients is the multi-client stress test: many
// connections run mixed BEGIN/DML/SELECT traffic concurrently against the
// same tables. Run under -race via `make race`. Serialization conflicts
// are expected (first committer wins) — anything else fails the test.
func TestServerConcurrentClients(t *testing.T) {
	_, db, addr := startServer(t, Config{})
	setup := dial(t, addr)
	if _, err := setup.Exec(`CREATE TABLE acct (id BIGINT, bal DOUBLE); CREATE TABLE audit (id BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(`INSERT INTO acct VALUES (1, 100), (2, 100), (3, 100), (4, 100)`); err != nil {
		t.Fatal(err)
	}

	const clients = 10
	const rounds = 40
	var conflicts, commits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for i := 0; i < rounds; i++ {
				id := 1 + rng.Intn(4)
				var err error
				switch rng.Intn(4) {
				case 0: // read-only
					_, err = c.Exec(`SELECT sum(bal), count(*) FROM acct`)
				case 1: // autocommit DML
					_, err = c.Exec(fmt.Sprintf(`INSERT INTO audit VALUES (%d)`, w*rounds+i))
				case 2: // explicit transaction, update + read + commit
					_, err = c.Exec(fmt.Sprintf(
						`BEGIN; UPDATE acct SET bal = bal + 1 WHERE id = %d; SELECT bal FROM acct WHERE id = %d; COMMIT`, id, id))
					if err == nil {
						commits.Add(1)
					}
				default: // explicit transaction rolled back
					_, err = c.Exec(fmt.Sprintf(
						`BEGIN; UPDATE acct SET bal = bal - 1000 WHERE id = %d; ROLLBACK`, id))
				}
				if err != nil {
					var se *client.ServerError
					if errors.As(err, &se) && strings.Contains(se.Msg, "serialization conflict") {
						conflicts.Add(1)
						continue
					}
					t.Errorf("client %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Committed updates each added exactly 1; rolled-back ones nothing.
	check := dial(t, addr)
	r, err := check.Exec(`SELECT sum(bal) FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	want := 400 + float64(commits.Load())
	if got := r.Rows[0][0].AsFloat(); got != want {
		t.Errorf("sum(bal) = %v, want %v (%d commits, %d conflicts)", got, want, commits.Load(), conflicts.Load())
	}
	// Every client session was torn down except setup/check.
	if got := db.Metrics().ConnsOpened.Load(); got < clients+2 {
		t.Errorf("conns_opened = %d, want >= %d", got, clients+2)
	}
}

func TestServerMaxConns(t *testing.T) {
	_, db, addr := startServer(t, Config{MaxConns: 2})
	c1, c2 := dial(t, addr), dial(t, addr)
	if _, err := c1.Exec(`SELECT 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec(`SELECT 1`); err != nil {
		t.Fatal(err)
	}

	// The third connection is refused with an Error frame.
	c3, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	_, err = c3.Exec(`SELECT 1`)
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "connection limit") {
		t.Fatalf("err = %v, want connection-limit ServerError", err)
	}
	if got := db.Metrics().ConnsRejected.Load(); got != 1 {
		t.Errorf("conns_rejected = %d, want 1", got)
	}

	// Freeing a slot admits new clients again (teardown is async, poll).
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c4.Exec(`SELECT 1`)
		c4.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerMetricsOverWire: the server's own counters are queryable
// through the server, and statements land in system.query_log.
func TestServerMetricsOverWire(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dial(t, addr)
	if _, err := c.Exec(`CREATE TABLE t (n BIGINT); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	r, err := c.Exec(`SELECT name, value FROM system.metrics`)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]int64{}
	for _, row := range r.Rows {
		vals[row[0].S] = row[1].I
	}
	if vals["conns_opened"] < 1 || vals["conns_active"] < 1 {
		t.Errorf("connection counters missing from system.metrics: %v", vals)
	}
	if vals["statements_total"] < 2 {
		t.Errorf("statements_total = %d", vals["statements_total"])
	}
	r, err = c.Exec(`SELECT statement FROM system.query_log`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range r.Rows {
		if strings.Contains(row[0].S, "CREATE TABLE t") {
			found = true
		}
	}
	if !found {
		t.Error("CREATE TABLE statement missing from system.query_log")
	}
}

// TestServerDrainDeliversInFlightResponse: Shutdown while a statement is
// executing must deliver that statement's response before closing, and
// must refuse new connections immediately.
func TestServerDrainDeliversInFlightResponse(t *testing.T) {
	defer faultinject.Reset()
	srv, db, addr := startServer(t, Config{DrainGrace: 30 * time.Second})
	c := dial(t, addr)
	if _, err := c.Exec(`CREATE TABLE big (n BIGINT, f DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	bulkLoad(t, db, "big", 8*types.BatchSize)

	// First scan batch parks on a channel: the statement is reliably
	// in-flight while we start the drain.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faultinject.Set("exec.scan.batch", func() error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})

	type outcome struct {
		res *client.Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		r, err := c.Exec(`SELECT sum(f) FROM big`)
		resCh <- outcome{r, err}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// New clients are refused while the drain waits for the statement.
	refusedBy := time.Now().Add(5 * time.Second)
	for {
		nc, err := client.Dial(addr)
		if err != nil {
			break // listener closed: also a refusal
		}
		_, err = nc.Exec(`SELECT 1`)
		nc.Close()
		if err != nil {
			break
		}
		if time.Now().After(refusedBy) {
			t.Fatal("server kept serving new connections during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	got := <-resCh
	if got.err != nil {
		t.Fatalf("in-flight statement's response dropped during drain: %v", got.err)
	}
	if len(got.res.Rows) != 1 {
		t.Fatalf("rows = %d", len(got.res.Rows))
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
}

// TestServerDrainCancelsAfterGrace: a statement still running when the
// grace expires is cancelled, and its *error* response is still delivered.
func TestServerDrainCancelsAfterGrace(t *testing.T) {
	defer faultinject.Reset()
	srv, db, addr := startServer(t, Config{DrainGrace: 100 * time.Millisecond})
	c := dial(t, addr)
	if _, err := c.Exec(`CREATE TABLE big (n BIGINT, f DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	bulkLoad(t, db, "big", 64*types.BatchSize)

	entered := make(chan struct{})
	var once sync.Once
	faultinject.Set("exec.scan.batch", func() error {
		once.Do(func() { close(entered) })
		time.Sleep(20 * time.Millisecond) // ~64 batches -> far beyond the grace
		return nil
	})

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Exec(`SELECT sum(f) FROM big`)
		errCh <- err
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	err := <-errCh
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("cancelled statement's response not delivered: %v", err)
	}
	if !strings.Contains(strings.ToLower(se.Msg), "cancel") {
		t.Errorf("error does not look like a cancellation: %q", se.Msg)
	}
	if got := db.Metrics().StatementsCancelled.Load(); got < 1 {
		t.Errorf("statements_cancelled = %d, want >= 1", got)
	}
}

// TestServerDisconnectCancelsStatement: a client dropping mid-statement
// cancels the statement server-side instead of letting it run on.
func TestServerDisconnectCancelsStatement(t *testing.T) {
	defer faultinject.Reset()
	_, db, addr := startServer(t, Config{})
	c := dial(t, addr)
	if _, err := c.Exec(`CREATE TABLE big (n BIGINT, f DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	bulkLoad(t, db, "big", 256*types.BatchSize)

	entered := make(chan struct{})
	var once sync.Once
	faultinject.Set("exec.scan.batch", func() error {
		once.Do(func() { close(entered) })
		time.Sleep(10 * time.Millisecond) // ~256 batches: seconds of work if never cancelled
		return nil
	})

	go func() {
		_, _ = c.Exec(`SELECT sum(f) FROM big`)
	}()
	<-entered
	c.Close()

	deadline := time.Now().Add(10 * time.Second)
	for db.Metrics().StatementsCancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statement was not cancelled after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientContextCancellation: cancelling the client context closes the
// connection and surfaces context.Canceled.
func TestClientContextCancellation(t *testing.T) {
	defer faultinject.Reset()
	_, db, addr := startServer(t, Config{})
	c := dial(t, addr)
	if _, err := c.Exec(`CREATE TABLE big (n BIGINT, f DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	bulkLoad(t, db, "big", 256*types.BatchSize)
	faultinject.Set("exec.scan.batch", func() error {
		time.Sleep(10 * time.Millisecond)
		return nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := c.ExecContext(ctx, `SELECT sum(f) FROM big`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
