package server

import (
	"bytes"
	"context"
	"errors"
	"regexp"
	"sync"
	"testing"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/server/client"
	"lambdadb/internal/telemetry"
)

// lockedBuffer is a goroutine-safe slow-log sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceIDRoundTrip is the cross-surface trace contract: a trace ID
// supplied by a Go client travels the wire, and the SAME id shows up in
// system.query_log, in the slow-query JSON log, and — for a failing
// statement — in the error frame the client gets back.
func TestTraceIDRoundTrip(t *testing.T) {
	slow := &lockedBuffer{}
	_, db, addr := startServer(t, Config{},
		// Threshold of 1ns: every statement is "slow", so the slow log
		// doubles as a trace capture.
		engine.WithSlowQueryThreshold(time.Nanosecond, slow))
	c := dial(t, addr)

	const traceID = "0123456789abcdef"
	ctx := telemetry.WithTraceID(context.Background(), traceID)

	if _, err := c.ExecContext(ctx, `CREATE TABLE traced (n BIGINT)`); err != nil {
		t.Fatal(err)
	}

	// 1. The error frame: a failing statement under the same trace returns
	// the ID on the ServerError.
	_, err := c.ExecContext(ctx, `SELECT boom FROM missing_table`)
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *client.ServerError", err)
	}
	if se.TraceID != traceID {
		t.Errorf("error frame trace = %q, want %q", se.TraceID, traceID)
	}

	// 2. system.query_log: both statements carry the client's ID.
	for _, e := range db.QueryLog() {
		if e.Statement == `CREATE TABLE traced (n BIGINT)` || e.Statement == `SELECT boom FROM missing_table` {
			if e.TraceID != traceID {
				t.Errorf("query_log entry %q trace = %q, want %q", e.Statement, e.TraceID, traceID)
			}
		}
	}

	// ... and the trace_id column is queryable over the wire.
	r, err := c.Exec(`SELECT trace_id FROM system.query_log WHERE statement = 'CREATE TABLE traced (n BIGINT)'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != traceID {
		t.Errorf("system.query_log over the wire = %v, want one row with %q", r.Rows, traceID)
	}

	// 3. The slow-query log names the same trace.
	if !bytes.Contains([]byte(slow.String()), []byte(`"trace_id":"`+traceID+`"`)) {
		t.Errorf("slow log missing trace %q:\n%s", traceID, slow.String())
	}
}

// TestTraceIDGeneratedWhenAbsent: with no ID in the context, the client
// generates one, so the server never logs an untraced wire statement — and
// the generated ID still round-trips on errors.
func TestTraceIDGeneratedWhenAbsent(t *testing.T) {
	_, db, addr := startServer(t, Config{})
	c := dial(t, addr)

	_, err := c.Exec(`SELECT nope FROM nowhere`)
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *client.ServerError", err)
	}
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	if !hex16.MatchString(se.TraceID) {
		t.Errorf("generated trace = %q, want 16 hex chars", se.TraceID)
	}
	found := false
	for _, e := range db.QueryLog() {
		if e.Statement == `SELECT nope FROM nowhere` {
			found = true
			if e.TraceID != se.TraceID {
				t.Errorf("query_log trace %q != error frame trace %q", e.TraceID, se.TraceID)
			}
		}
	}
	if !found {
		t.Error("statement missing from query log")
	}
}

// TestTraceIDEmbeddedSessionsUntraced: an embedded session with no trace in
// its context logs an empty trace ID — the engine never invents one, so the
// hot path stays allocation-free for embedded users.
func TestTraceIDEmbeddedSessionsUntraced(t *testing.T) {
	db := engine.Open()
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE embedded_t (n BIGINT)`); err != nil {
		t.Fatal(err)
	}
	for _, e := range db.QueryLog() {
		if e.TraceID != "" {
			t.Errorf("embedded statement %q has trace %q, want empty", e.Statement, e.TraceID)
		}
	}
}
