package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"

	"lambdadb/internal/server/client"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/types"
)

func TestServerPreparedRoundTrip(t *testing.T) {
	_, db, addr := startServer(t, Config{})
	db.MustExec(`CREATE TABLE t (id BIGINT, s VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	c := dial(t, addr)
	ctx := context.Background()

	if err := c.Prepare(ctx, "q", `SELECT s FROM t WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecutePrepared(ctx, "q", types.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "two" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// Re-execute with a different argument: the same template serves both.
	res, err = c.ExecutePrepared(ctx, "q", types.NewInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "three" {
		t.Fatalf("rows = %+v", res.Rows)
	}

	// Prepared DML over the wire.
	if err := c.Prepare(ctx, "ins", `INSERT INTO t VALUES ($1, $2)`); err != nil {
		t.Fatal(err)
	}
	res, err = c.ExecutePrepared(ctx, "ins", types.NewInt(4), types.NewString("four"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}

	// Argument errors surface as ServerError; the connection survives.
	if _, err := c.ExecutePrepared(ctx, "q"); err == nil {
		t.Fatal("missing argument should fail")
	} else if se := new(client.ServerError); !errors.As(err, &se) {
		t.Fatalf("expected ServerError, got %T %v", err, err)
	}
	if _, err := c.ExecutePrepared(ctx, "missing", types.NewInt(1)); err == nil {
		t.Fatal("unknown name should fail")
	}

	if err := c.Deallocate(ctx, "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecutePrepared(ctx, "q", types.NewInt(1)); err == nil {
		t.Fatal("deallocated statement should be gone")
	}
	if err := c.Deallocate(ctx, ""); err != nil { // ALL
		t.Fatal(err)
	}
	if _, err := c.ExecutePrepared(ctx, "ins", types.NewInt(9), types.NewString("x")); err == nil {
		t.Fatal("DEALLOCATE ALL should have dropped ins")
	}

	// The connection is still a perfectly good query connection.
	res, err = c.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 4 {
		t.Fatalf("count = %+v", res.Rows)
	}
}

// TestServerBindSkipsParsing: repeated Bind executions hit the plan cache —
// the whole point of the frame.
func TestServerBindSkipsParsing(t *testing.T) {
	_, db, addr := startServer(t, Config{})
	db.MustExec(`CREATE TABLE t (id BIGINT, s VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'one')`)
	c := dial(t, addr)
	ctx := context.Background()

	if err := c.Prepare(ctx, "q", `SELECT s FROM t WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	before := db.Metrics().PlanCacheHits.Load()
	for i := 0; i < 5; i++ {
		if _, err := c.ExecutePrepared(ctx, "q", types.NewInt(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Metrics().PlanCacheHits.Load(); got < before+5 {
		t.Fatalf("plan cache hits = %d, want >= %d", got, before+5)
	}
}

// TestServerPrepareFrame exercises the raw P frame (clients normally route
// Prepare through Query text for compatibility, but the frame is part of
// the protocol).
func TestServerPrepareFrame(t *testing.T) {
	_, db, addr := startServer(t, Config{})
	db.MustExec(`CREATE TABLE t (id BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (7)`)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	// A P frame as the very first frame of the connection must work.
	if err := wire.WriteFrame(nc, wire.Prepare, wire.EncodePrepare("p", `SELECT id FROM t WHERE id = $1`)); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.Affected {
		t.Fatalf("Prepare answered with frame %q", typ)
	}
	if err := wire.WriteFrame(nc, wire.Bind, wire.EncodeBind("p", []types.Value{types.NewInt(7)})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.Result {
		t.Fatalf("Bind answered with frame %q: %s", typ, payload)
	}
	rs, err := wire.DecodeResultSet(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 7 {
		t.Fatalf("rows = %+v", rs.Rows)
	}
	if err := wire.WriteFrame(nc, wire.Deallocate, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = wire.ReadFrame(br); err != nil || typ != wire.Affected {
		t.Fatalf("Deallocate answered %q, err %v", typ, err)
	}
}

// TestServerOldClientStillWorks: a connection that only ever sends Query
// frames (an old client) is unaffected by the new frame types.
func TestServerOldClientStillWorks(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if err := wire.WriteFrame(nc, wire.Query, []byte(`SELECT 1`)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.Result {
		t.Fatalf("typ=%q err=%v", typ, err)
	}
	rs, err := wire.DecodeResultSet(payload)
	if err != nil || rs.Rows[0][0].I != 1 {
		t.Fatalf("rs=%+v err=%v", rs, err)
	}
}
