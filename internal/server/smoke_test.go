package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lambdadb/internal/server/client"
)

// TestServerBinarySmoke is the end-to-end smoke run used by `make
// server-smoke` and CI: build the real lambdaserver and sqlshell binaries,
// start the server, hammer it with concurrent remote clients plus a
// sqlshell -connect script, then SIGTERM it and require a clean exit 0.
// It is gated behind LAMBDADB_SERVER_SMOKE=1 because it builds binaries
// and forks processes, which the ordinary unit-test run should not.
func TestServerBinarySmoke(t *testing.T) {
	if os.Getenv("LAMBDADB_SERVER_SMOKE") != "1" {
		t.Skip("set LAMBDADB_SERVER_SMOKE=1 to run the binary smoke test")
	}

	dir := t.TempDir()
	serverBin := filepath.Join(dir, "lambdaserver")
	shellBin := filepath.Join(dir, "sqlshell")
	for bin, pkg := range map[string]string{
		serverBin: "lambdadb/cmd/lambdaserver",
		shellBin:  "lambdadb/cmd/sqlshell",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	initSQL := filepath.Join(dir, "init.sql")
	if err := os.WriteFile(initSQL, []byte(
		"CREATE TABLE kv (k BIGINT, v BIGINT);\n"+
			"INSERT INTO kv VALUES (1, 100), (2, 200), (3, 300);\n",
	), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(serverBin, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-init", initSQL, "-grace", "5s")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// Startup announces two addresses on stdout: the admin endpoint first
	// (it binds before recovery), then the SQL listener.
	addr, adminAddr := "", ""
	sc := bufio.NewScanner(stdout)
	for (addr == "" || adminAddr == "") && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "lambdaserver admin listening on "):
			adminAddr = strings.TrimPrefix(line, "lambdaserver admin listening on ")
		case strings.HasPrefix(line, "lambdaserver listening on "):
			addr = strings.TrimPrefix(line, "lambdaserver listening on ")
		default:
			t.Fatalf("unexpected startup line %q", line)
		}
	}
	if addr == "" || adminAddr == "" {
		t.Fatalf("server never announced its addresses (sql=%q admin=%q); stderr:\n%s",
			addr, adminAddr, stderr.String())
	}
	go func() { // drain any further stdout so the child never blocks
		for sc.Scan() {
		}
	}()

	// The SQL listener is up, so the server must report itself ready.
	if code, body := httpGet(t, "http://"+adminAddr+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := httpGet(t, "http://"+adminAddr+"/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q, want 200 ready", code, body)
	}

	// Concurrent remote clients doing mixed reads, writes, and transactions.
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", id, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			for round := 0; round < 30; round++ {
				var err error
				switch rng.Intn(3) {
				case 0:
					_, err = c.Exec("SELECT k, v FROM kv")
				case 1:
					_, err = c.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", 100+id, round))
				default:
					_, err = c.Exec(fmt.Sprintf(
						"BEGIN; UPDATE kv SET v = v + 1 WHERE k = %d; COMMIT", 1+rng.Intn(3)))
				}
				if err != nil {
					var se *client.ServerError
					if errors.As(err, &se) && strings.Contains(se.Msg, "conflict") {
						continue // serialization conflicts are expected under contention
					}
					errs <- fmt.Errorf("client %d round %d: %w", id, round, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// sqlshell -connect runs a script against the live server.
	script := filepath.Join(dir, "probe.sql")
	if err := os.WriteFile(script, []byte("SELECT COUNT(*) AS n FROM kv;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(shellBin, "-connect", addr, "-f", script).CombinedOutput()
	if err != nil {
		t.Fatalf("sqlshell -connect: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "n") {
		t.Errorf("sqlshell output missing result column:\n%s", out)
	}

	// A Prometheus scrape after the workload: valid exposition with the
	// counters and histograms the traffic must have populated.
	resp, err := http.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d:\n%s", resp.StatusCode, metricsBody)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	metrics := string(metricsBody)
	for _, want := range []string{
		"# TYPE lambdadb_statements_total counter",
		"# TYPE lambdadb_conns_active gauge",
		"# TYPE lambdadb_statement_latency_seconds histogram",
		`lambdadb_statement_latency_seconds_bucket{kind="select",le="+Inf"}`,
		"lambdadb_statement_latency_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(metrics, "lambdadb_statements_total 0\n") {
		t.Error("/metrics reports zero statements after the workload")
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-waitCtx.Done():
		t.Fatalf("server did not exit within 30s of SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("server stderr missing drain confirmation:\n%s", stderr.String())
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// startSmokeServer launches a lambdaserver binary and parses the announced
// SQL and admin addresses from stdout.
func startSmokeServer(t *testing.T, bin string, extraArgs ...string) (proc *exec.Cmd, addr, adminAddr string, stderr *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0", "-grace", "5s"}, extraArgs...)
	proc = exec.Command(bin, args...)
	stdout, err := proc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr = &bytes.Buffer{}
	proc.Stderr = stderr
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proc.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	for (addr == "" || adminAddr == "") && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "lambdaserver admin listening on "):
			adminAddr = strings.TrimPrefix(line, "lambdaserver admin listening on ")
		case strings.HasPrefix(line, "lambdaserver listening on "):
			addr = strings.TrimPrefix(line, "lambdaserver listening on ")
		}
	}
	if addr == "" || adminAddr == "" {
		t.Fatalf("server never announced its addresses; stderr:\n%s", stderr.String())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return proc, addr, adminAddr, stderr
}

// TestReplicaReadyzSmoke exercises the replication-aware readiness gates on
// the real binary: a replica whose primary is unreachable must answer 503
// on /readyz (it has never contacted the primary, so its data is
// arbitrarily stale), while a replica streaming from a live primary within
// its lag bound must flip to 200.
func TestReplicaReadyzSmoke(t *testing.T) {
	if os.Getenv("LAMBDADB_SERVER_SMOKE") != "1" {
		t.Skip("set LAMBDADB_SERVER_SMOKE=1 to run the binary smoke test")
	}

	dir := t.TempDir()
	serverBin := filepath.Join(dir, "lambdaserver")
	if out, err := exec.Command("go", "build", "-o", serverBin, "lambdadb/cmd/lambdaserver").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A replica pointed at a dead primary: up, serving reads, but never
	// ready. Deterministic — there is nothing to contact.
	_, _, orphanAdmin, _ := startSmokeServer(t, serverBin,
		"-data-dir", filepath.Join(dir, "orphan"),
		"-replica-of", "127.0.0.1:1")
	if code, body := httpGet(t, "http://"+orphanAdmin+"/readyz"); code != 503 || !strings.Contains(body, "not contacted") {
		t.Errorf("orphan replica /readyz = %d %q, want 503 not contacted", code, body)
	}
	if code, _ := httpGet(t, "http://"+orphanAdmin+"/healthz"); code != 200 {
		t.Errorf("orphan replica /healthz = %d, want 200 (alive, just not ready)", code)
	}

	// A real primary/replica pair: the replica becomes ready once it has
	// streamed to within the lag bound.
	_, primaryAddr, primaryAdmin, _ := startSmokeServer(t, serverBin,
		"-data-dir", filepath.Join(dir, "primary"))
	if code, _ := httpGet(t, "http://"+primaryAdmin+"/readyz"); code != 200 {
		t.Fatalf("primary /readyz = %d, want 200", code)
	}
	c, err := client.Dial(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE smoke (n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO smoke VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	_, _, replicaAdmin, replicaErr := startSmokeServer(t, serverBin,
		"-data-dir", filepath.Join(dir, "replica"),
		"-replica-of", primaryAddr,
		"-ready-max-lag", "100000")
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := httpGet(t, "http://"+replicaAdmin+"/readyz")
		if code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never became ready: /readyz = %d %q; stderr:\n%s", code, body, replicaErr.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	// The replica's metrics must identify the replication link.
	if _, body := httpGet(t, "http://"+replicaAdmin+"/metrics"); !strings.Contains(body, `lambdadb_repl_link_info{role="replica"`) {
		t.Errorf("replica /metrics missing replication link info")
	}
}
