package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lambdadb/internal/server/client"
)

// TestServerBinarySmoke is the end-to-end smoke run used by `make
// server-smoke` and CI: build the real lambdaserver and sqlshell binaries,
// start the server, hammer it with concurrent remote clients plus a
// sqlshell -connect script, then SIGTERM it and require a clean exit 0.
// It is gated behind LAMBDADB_SERVER_SMOKE=1 because it builds binaries
// and forks processes, which the ordinary unit-test run should not.
func TestServerBinarySmoke(t *testing.T) {
	if os.Getenv("LAMBDADB_SERVER_SMOKE") != "1" {
		t.Skip("set LAMBDADB_SERVER_SMOKE=1 to run the binary smoke test")
	}

	dir := t.TempDir()
	serverBin := filepath.Join(dir, "lambdaserver")
	shellBin := filepath.Join(dir, "sqlshell")
	for bin, pkg := range map[string]string{
		serverBin: "lambdadb/cmd/lambdaserver",
		shellBin:  "lambdadb/cmd/sqlshell",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	initSQL := filepath.Join(dir, "init.sql")
	if err := os.WriteFile(initSQL, []byte(
		"CREATE TABLE kv (k BIGINT, v BIGINT);\n"+
			"INSERT INTO kv VALUES (1, 100), (2, 200), (3, 300);\n",
	), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(serverBin, "-addr", "127.0.0.1:0", "-init", initSQL, "-grace", "5s")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The first stdout line announces the bound address.
	addr := ""
	sc := bufio.NewScanner(stdout)
	if sc.Scan() {
		line := sc.Text()
		const prefix = "lambdaserver listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected startup line %q", line)
		}
		addr = strings.TrimPrefix(line, prefix)
	}
	if addr == "" {
		t.Fatalf("server never announced its address; stderr:\n%s", stderr.String())
	}
	go func() { // drain any further stdout so the child never blocks
		for sc.Scan() {
		}
	}()

	// Concurrent remote clients doing mixed reads, writes, and transactions.
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", id, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			for round := 0; round < 30; round++ {
				var err error
				switch rng.Intn(3) {
				case 0:
					_, err = c.Exec("SELECT k, v FROM kv")
				case 1:
					_, err = c.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", 100+id, round))
				default:
					_, err = c.Exec(fmt.Sprintf(
						"BEGIN; UPDATE kv SET v = v + 1 WHERE k = %d; COMMIT", 1+rng.Intn(3)))
				}
				if err != nil {
					var se *client.ServerError
					if errors.As(err, &se) && strings.Contains(se.Msg, "conflict") {
						continue // serialization conflicts are expected under contention
					}
					errs <- fmt.Errorf("client %d round %d: %w", id, round, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// sqlshell -connect runs a script against the live server.
	script := filepath.Join(dir, "probe.sql")
	if err := os.WriteFile(script, []byte("SELECT COUNT(*) AS n FROM kv;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(shellBin, "-connect", addr, "-f", script).CombinedOutput()
	if err != nil {
		t.Fatalf("sqlshell -connect: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "n") {
		t.Errorf("sqlshell output missing result column:\n%s", out)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-waitCtx.Done():
		t.Fatalf("server did not exit within 30s of SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("server stderr missing drain confirmation:\n%s", stderr.String())
	}
}
