package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// HostInfo records the execution environment of a benchmark run, captured
// automatically so BENCH_*.json reports are comparable across machines.
type HostInfo struct {
	GoMaxProcs   int    `json:"gomaxprocs"`
	VisibleCores int    `json:"visible_cores"`
	GoVersion    string `json:"go_version"`
	OS           string `json:"os"`
	Arch         string `json:"arch"`
}

// Host captures the current environment.
func Host() HostInfo {
	return HostInfo{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		VisibleCores: runtime.NumCPU(),
		GoVersion:    runtime.Version(),
		OS:           runtime.GOOS,
		Arch:         runtime.GOARCH,
	}
}

// Report is the machine-readable artifact of one benchrunner invocation:
// environment, scale, and every experiment table including per-operator
// stats for the engine-backed systems.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	Host        HostInfo `json:"host"`
	// ScalingValid is false when the host exposes a single core: parallel
	// speedup is physically impossible there, so worker-sweep numbers
	// measure coordination overhead, not scaling. Consumers should not
	// compare multi-worker ratios from such a report against targets.
	ScalingValid bool     `json:"scaling_valid"`
	Scale        Scale    `json:"scale"`
	Tables       []*Table `json:"tables"`
}

// NewReport assembles a report for the given tables, stamping the host
// block and generation time.
func NewReport(scale Scale, tables []*Table) *Report {
	host := Host()
	return &Report{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Host:         host,
		ScalingValid: host.VisibleCores > 1,
		Scale:        scale,
		Tables:       tables,
	}
}

// WriteJSON writes the report to path, indented.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
