package bench

import (
	"math"
	"sort"
	"testing"
)

// queryKMeansCenters runs a k-Means SQL variant and returns centers sorted
// by coordinates (cluster ids are not comparable across variants).
func queryKMeansCenters(t *testing.T, ds *KMeansDataset, q string) [][]float64 {
	t.Helper()
	r, err := ds.DB.Query(q)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, q)
	}
	var out [][]float64
	for _, row := range r.Rows {
		coords := make([]float64, 0, ds.Cfg.D)
		for _, v := range row[1:] {
			coords = append(coords, v.AsFloat())
		}
		out = append(out, coords)
	}
	sort.Slice(out, func(i, j int) bool {
		for x := range out[i] {
			if out[i][x] != out[j][x] {
				return out[i][x] < out[j][x]
			}
		}
		return false
	})
	return out
}

func centersClose(a, b [][]float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// TestKMeansVariantsAgree is the harness's core correctness check: all
// three in-database variants (operator, iterate, recursive CTE) must
// produce the same centers after the same number of Lloyd iterations.
func TestKMeansVariantsAgree(t *testing.T) {
	ds, err := PrepareKMeans(KMeansConfig{N: 2000, D: 3, K: 4, Iters: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	op := queryKMeansCenters(t, ds, KMeansOperatorQuery(ds.Cfg.D, ds.Cfg.Iters))
	it := queryKMeansCenters(t, ds, KMeansIterateQuery(ds.Cfg.D, ds.Cfg.Iters))
	cte := queryKMeansCenters(t, ds, KMeansRecursiveCTEQuery(ds.Cfg.D, ds.Cfg.Iters))
	if len(op) != ds.Cfg.K {
		t.Fatalf("operator returned %d centers", len(op))
	}
	if !centersClose(op, it, 1e-9) {
		t.Errorf("operator vs iterate centers differ:\n%v\n%v", op, it)
	}
	if !centersClose(op, cte, 1e-9) {
		t.Errorf("operator vs recursive-CTE centers differ:\n%v\n%v", op, cte)
	}
}

// queryRanks runs a PageRank variant and returns vertex→rank.
func queryRanks(t *testing.T, ds *PageRankDataset, q string) map[int64]float64 {
	t.Helper()
	r, err := ds.DB.Query(q)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, q)
	}
	out := map[int64]float64{}
	for _, row := range r.Rows {
		out[row[0].AsInt()] = row[1].AsFloat()
	}
	return out
}

func TestPageRankVariantsAgree(t *testing.T) {
	ds, err := PreparePageRank(PageRankConfig{Vertices: 300, DirectedEdges: 3000, Iters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	op := queryRanks(t, ds, PageRankOperatorQuery(0.85, 0, 10))
	it := queryRanks(t, ds, PageRankIterateQuery(0.85, 10))
	cte := queryRanks(t, ds, PageRankRecursiveCTEQuery(0.85, 10))
	if len(op) == 0 {
		t.Fatal("operator returned no ranks")
	}
	if len(it) != len(op) || len(cte) != len(op) {
		t.Fatalf("rank counts: op=%d it=%d cte=%d", len(op), len(it), len(cte))
	}
	for v, want := range op {
		if math.Abs(it[v]-want) > 1e-9 {
			t.Errorf("iterate rank[%d] = %v, want %v", v, it[v], want)
			break
		}
		if math.Abs(cte[v]-want) > 1e-9 {
			t.Errorf("CTE rank[%d] = %v, want %v", v, cte[v], want)
			break
		}
	}
}

func TestNBVariantsProduceModel(t *testing.T) {
	ds, err := PrepareNB(NBConfig{N: 2000, D: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	op, err := ds.DB.Query(NBTrainOperatorQuery(ds.Cfg.D))
	if err != nil {
		t.Fatal(err)
	}
	if len(op.Rows) != 2*ds.Cfg.D { // classes × features
		t.Fatalf("operator model rows = %d", len(op.Rows))
	}
	sqlRes, err := ds.DB.Query(NBTrainSQLQuery(ds.Cfg.D, ds.Cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlRes.Rows) != 2 { // one row per class
		t.Fatalf("sql model rows = %d", len(sqlRes.Rows))
	}
	// Cross-check priors and means between the two formulations.
	for _, sqlRow := range sqlRes.Rows {
		label := sqlRow[0].AsInt()
		prior := sqlRow[1].AsFloat()
		mean0 := sqlRow[2].AsFloat()
		found := false
		for _, opRow := range op.Rows {
			if opRow[0].AsInt() == label && opRow[1].AsInt() == 0 {
				found = true
				if math.Abs(opRow[2].AsFloat()-prior) > 1e-9 {
					t.Errorf("label %d prior: op %v vs sql %v", label, opRow[2].AsFloat(), prior)
				}
				if math.Abs(opRow[3].AsFloat()-mean0) > 1e-9 {
					t.Errorf("label %d mean0: op %v vs sql %v", label, opRow[3].AsFloat(), mean0)
				}
			}
		}
		if !found {
			t.Errorf("label %d missing from operator model", label)
		}
	}
}

func TestRunAllSystemsSmoke(t *testing.T) {
	km, err := PrepareKMeans(KMeansConfig{N: 1000, D: 2, K: 2, Iters: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range AllSystems {
		if _, _, err := km.Run(sys); err != nil {
			t.Errorf("kmeans %s: %v", sys, err)
		}
	}
	pr, err := PreparePageRank(PageRankConfig{Vertices: 100, DirectedEdges: 600, Iters: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range AllSystems {
		if _, _, err := pr.Run(sys); err != nil {
			t.Errorf("pagerank %s: %v", sys, err)
		}
	}
	nb, err := PrepareNB(NBConfig{N: 1000, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range AllSystems {
		if _, _, err := nb.Run(sys); err != nil {
			t.Errorf("nb %s: %v", sys, err)
		}
	}
}
