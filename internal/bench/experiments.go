package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/types"
	"lambdadb/internal/workload"
)

// Scale shrinks experiment sizes relative to the paper's grid so runs fit
// commodity hardware and time budgets. Scale 1 uses the paper's sizes
// (up to 500M tuples / 46M edges); the default benchrunner scale is
// smaller. Parameter *counts* (d, k, iterations) are never scaled.
type Scale struct {
	// MaxTuples caps the tuple-count sweep.
	MaxTuples int
	// BaseTuples is the fixed n for the dimension/cluster sweeps
	// (the paper uses 4M); 0 = min(MaxTuples, 4M).
	BaseTuples int
	// MaxEdges caps the PageRank graph sweep (directed edges).
	MaxEdges int
	// Systems optionally restricts the evaluated systems (nil = all).
	Systems []string
}

// DefaultScale finishes in a few minutes on a small machine while
// preserving every trend of the paper's figures. Raise the caps (up to the
// paper's 500M tuples / 46M edges) with benchrunner's -max-tuples and
// -max-edges flags on larger hardware.
var DefaultScale = Scale{MaxTuples: 800_000, BaseTuples: 200_000, MaxEdges: 500_000}

// systems returns the evaluated system list for this scale.
func (s Scale) systems() []string {
	if len(s.Systems) > 0 {
		return s.Systems
	}
	return AllSystems
}

// Row is one measured line of an experiment table. Stats holds the
// per-operator stats tree of engine-backed systems, keyed like Seconds
// (present only in JSON reports; the fixed-width tables omit it).
type Row struct {
	Label   string             `json:"label"`
	Seconds map[string]float64 `json:"seconds"`
	Stats   map[string]string  `json:"stats,omitempty"`
}

// Table is the output of one experiment: the paper artifact it reproduces
// plus measured rows.
type Table struct {
	ID      string   `json:"id"` // e.g. "fig4-tuples"
	Title   string   `json:"title"`
	Param   string   `json:"param"` // the swept parameter's column header
	Systems []string `json:"systems"`
	Rows    []Row    `json:"rows"`
}

// Print renders the table in the fixed-width layout EXPERIMENTS.md embeds.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "%-14s", t.Param)
	for _, s := range t.Systems {
		fmt.Fprintf(w, " %18s", s)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-14s", r.Label)
		for _, s := range t.Systems {
			sec, ok := r.Seconds[s]
			if !ok {
				fmt.Fprintf(w, " %18s", "-")
				continue
			}
			fmt.Fprintf(w, " %18.4f", sec)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// kmeansTupleCounts mirrors Table 1's tuple sweep, capped by scale.
func (s Scale) kmeansTupleCounts() []int {
	full := []int{160_000, 800_000, 4_000_000, 20_000_000, 100_000_000, 500_000_000}
	var out []int
	for _, n := range full {
		if n <= s.MaxTuples {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{s.MaxTuples}
	}
	return out
}

// kmeansBaseTuples is the fixed n for the d/k sweeps (paper: 4M), capped.
func (s Scale) kmeansBaseTuples() int {
	if s.BaseTuples > 0 {
		return s.BaseTuples
	}
	if s.MaxTuples < 4_000_000 {
		return s.MaxTuples
	}
	return 4_000_000
}

// dims and clusters follow Table 1 exactly.
var sweepDims = []int{3, 5, 10, 25, 50}
var sweepClusters = []int{3, 5, 10, 25, 50}

// measure times one run; fast runs (<1s) are re-measured once and the
// minimum is kept, so cold-start costs (first-touch page faults, parse
// caches) do not distort sub-second measurements. The stats tree of the
// kept run is returned alongside.
func measure(run func() (time.Duration, string, error)) (float64, string, error) {
	d1, stats, err := run()
	if err != nil {
		return 0, "", err
	}
	if d1 < time.Second {
		d2, stats2, err := run()
		if err != nil {
			return 0, "", err
		}
		if d2 < d1 {
			d1, stats = d2, stats2
		}
	}
	return d1.Seconds(), stats, nil
}

// Fig4Tuples reproduces Figure 4 (left): k-Means runtime vs tuple count
// (d=10, k=5, i=3).
func Fig4Tuples(scale Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "fig4-tuples",
		Title:   "k-Means runtime [s] vs number of tuples (d=10, k=5, 3 iterations)",
		Param:   "tuples",
		Systems: scale.systems()}
	for _, n := range scale.kmeansTupleCounts() {
		row, err := runKMeansCell(KMeansConfig{N: n, D: 10, K: 5, Iters: 3, Seed: 1},
			scale, fmt.Sprintf("%d", n), progress)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4Dims reproduces Figure 4 (middle): k-Means vs dimensions.
func Fig4Dims(scale Scale, progress io.Writer) (*Table, error) {
	n := scale.kmeansBaseTuples()
	t := &Table{ID: "fig4-dims",
		Title:   fmt.Sprintf("k-Means runtime [s] vs dimensions (n=%d, k=5, 3 iterations)", n),
		Param:   "dimensions",
		Systems: scale.systems()}
	for _, d := range sweepDims {
		row, err := runKMeansCell(KMeansConfig{N: n, D: d, K: 5, Iters: 3, Seed: 2},
			scale, fmt.Sprintf("%d", d), progress)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig4Clusters reproduces Figure 4 (right): k-Means vs cluster count.
func Fig4Clusters(scale Scale, progress io.Writer) (*Table, error) {
	n := scale.kmeansBaseTuples()
	t := &Table{ID: "fig4-clusters",
		Title:   fmt.Sprintf("k-Means runtime [s] vs clusters (n=%d, d=10, 3 iterations)", n),
		Param:   "clusters",
		Systems: scale.systems()}
	for _, k := range sweepClusters {
		row, err := runKMeansCell(KMeansConfig{N: n, D: 10, K: k, Iters: 3, Seed: 3},
			scale, fmt.Sprintf("%d", k), progress)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runKMeansCell(cfg KMeansConfig, scale Scale, label string, progress io.Writer) (Row, error) {
	ds, err := PrepareKMeans(cfg)
	if err != nil {
		return Row{}, err
	}
	row := Row{Label: label, Seconds: map[string]float64{}}
	for _, sys := range scale.systems() {
		sec, stats, err := measure(func() (time.Duration, string, error) { return ds.Run(sys) })
		if err != nil {
			return Row{}, fmt.Errorf("kmeans %s (n=%d d=%d k=%d): %w", sys, cfg.N, cfg.D, cfg.K, err)
		}
		row.Seconds[sys] = sec
		row.addStats(sys, stats)
		if progress != nil {
			fmt.Fprintf(progress, "  kmeans %-12s %-20s %8.3fs\n", label, sys, sec)
		}
	}
	return row, nil
}

// addStats records a system's stats tree on the row (no-op when empty).
func (r *Row) addStats(sys, stats string) {
	if stats == "" {
		return
	}
	if r.Stats == nil {
		r.Stats = map[string]string{}
	}
	r.Stats[sys] = stats
}

// Fig5PageRank reproduces Figure 5 (left): PageRank on the LDBC-like
// graphs, damping 0.85, 45 iterations.
func Fig5PageRank(scale Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "fig5-pagerank",
		Title:   "PageRank runtime [s] on LDBC-like graphs (damping 0.85, 45 iterations)",
		Param:   "graph",
		Systems: scale.systems()}
	for _, sc := range workload.LDBCScales {
		if sc.DirectedEdges > scale.MaxEdges {
			continue
		}
		cfg := PageRankConfig{Vertices: sc.Vertices, DirectedEdges: sc.DirectedEdges,
			Damping: 0.85, Iters: 45, Seed: 4, Name: sc.Name}
		ds, err := PreparePageRank(cfg)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dv/%de", sc.Vertices, sc.DirectedEdges)
		row := Row{Label: label, Seconds: map[string]float64{}}
		for _, sys := range scale.systems() {
			sec, stats, err := measure(func() (time.Duration, string, error) { return ds.Run(sys) })
			if err != nil {
				return nil, fmt.Errorf("pagerank %s (%s): %w", sys, sc.Name, err)
			}
			row.Seconds[sys] = sec
			row.addStats(sys, stats)
			if progress != nil {
				fmt.Fprintf(progress, "  pagerank %-14s %-20s %8.3fs\n", label, sys, sec)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	if len(t.Rows) == 0 {
		// Always produce at least one scaled-down graph.
		cfg := PageRankConfig{Vertices: 11_000, DirectedEdges: scale.MaxEdges,
			Damping: 0.85, Iters: 45, Seed: 4}
		ds, err := PreparePageRank(cfg)
		if err != nil {
			return nil, err
		}
		row := Row{Label: fmt.Sprintf("%dv/%de", cfg.Vertices, cfg.DirectedEdges),
			Seconds: map[string]float64{}}
		for _, sys := range scale.systems() {
			d, stats, err := ds.Run(sys)
			if err != nil {
				return nil, err
			}
			row.Seconds[sys] = d.Seconds()
			row.addStats(sys, stats)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5NBTuples reproduces Figure 5 (middle): Naive Bayes training vs
// tuple count (d=10, two labels).
func Fig5NBTuples(scale Scale, progress io.Writer) (*Table, error) {
	t := &Table{ID: "fig5-nb-tuples",
		Title:   "Naive Bayes training runtime [s] vs number of tuples (d=10, 2 labels)",
		Param:   "tuples",
		Systems: scale.systems()}
	for _, n := range scale.kmeansTupleCounts() {
		row, err := runNBCell(NBConfig{N: n, D: 10, Seed: 5}, scale, fmt.Sprintf("%d", n), progress)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5NBDims reproduces Figure 5 (right): Naive Bayes training vs
// dimensions.
func Fig5NBDims(scale Scale, progress io.Writer) (*Table, error) {
	n := scale.kmeansBaseTuples()
	t := &Table{ID: "fig5-nb-dims",
		Title:   fmt.Sprintf("Naive Bayes training runtime [s] vs dimensions (n=%d, 2 labels)", n),
		Param:   "dimensions",
		Systems: scale.systems()}
	for _, d := range sweepDims {
		row, err := runNBCell(NBConfig{N: n, D: d, Seed: 6}, scale, fmt.Sprintf("%d", d), progress)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runNBCell(cfg NBConfig, scale Scale, label string, progress io.Writer) (Row, error) {
	ds, err := PrepareNB(cfg)
	if err != nil {
		return Row{}, err
	}
	row := Row{Label: label, Seconds: map[string]float64{}}
	for _, sys := range scale.systems() {
		sec, stats, err := measure(func() (time.Duration, string, error) { return ds.Run(sys) })
		if err != nil {
			return Row{}, fmt.Errorf("nb %s (n=%d d=%d): %w", sys, cfg.N, cfg.D, err)
		}
		row.Seconds[sys] = sec
		row.addStats(sys, stats)
		if progress != nil {
			fmt.Fprintf(progress, "  nb %-12s %-20s %8.3fs\n", label, sys, sec)
		}
	}
	return row, nil
}

// IterateVsCTE is the Section 5.1 ablation (experiment E8): a pure
// relation-update loop of i iterations over n tuples, once with ITERATE
// (constant working set) and once with a recursive CTE (appending n·i
// tuples). It reports runtime and the peak tuple count each variant
// materializes.
func IterateVsCTE(n, iters int, progress io.Writer) (*Table, error) {
	db, err := prepareUpdateLoop(n)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "iterate-vs-cte",
		Title:   fmt.Sprintf("Non-appending ITERATE vs recursive CTE (n=%d tuples, %d iterations)", n, iters),
		Param:   "variant",
		Systems: []string{"seconds", "peak_tuples"}}

	iterQ := fmt.Sprintf(`SELECT count(*) FROM ITERATE (
  (SELECT id, val, 0 AS iter FROM vals),
  (SELECT id, val * 1.0001, iter + 1 FROM iterate),
  (SELECT id FROM iterate WHERE iter >= %d LIMIT 1))`, iters)
	cteQ := fmt.Sprintf(`WITH RECURSIVE r (id, val, iter) AS (
  SELECT id, val, 0 AS iter FROM vals
  UNION ALL
  SELECT id, val * 1.0001, iter + 1 FROM r WHERE iter < %d
) SELECT count(*) FROM r WHERE iter = %d`, iters, iters)

	for _, v := range []struct {
		name  string
		q     string
		tuple float64
	}{
		{"iterate", iterQ, float64(2 * n)},                // current + next working table
		{"recursive-cte", cteQ, float64(n * (iters + 1))}, // full accumulation
	} {
		d, stats, err := timeQuery(db, v.q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		sec := d.Seconds()
		row := Row{Label: v.name,
			Seconds: map[string]float64{"seconds": sec, "peak_tuples": v.tuple}}
		row.addStats("seconds", stats)
		t.Rows = append(t.Rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "  %-14s %8.3fs (peak %v tuples)\n", v.name, sec, v.tuple)
		}
	}
	return t, nil
}

// prepareUpdateLoop loads a vals(id, val) table of n rows.
func prepareUpdateLoop(n int) (*engine.DB, error) {
	db := engine.Open()
	schema := types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "val", Type: types.Float64},
	}
	store := db.Store()
	tbl, err := store.CreateTable("vals", schema)
	if err != nil {
		return nil, err
	}
	tx := store.Begin()
	const chunk = 1 << 16
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b := types.NewBatch(schema)
		for i := lo; i < hi; i++ {
			b.Cols[0].AppendInt(int64(i))
			b.Cols[1].AppendFloat(float64(i))
		}
		if err := tx.Insert(tbl, b); err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return db, nil
}

// Table1 prints the paper's Table 1: the k-Means experiment grid.
func Table1(scale Scale) *Table {
	t := &Table{ID: "table1",
		Title:   "k-Means dataset grid (paper Table 1; applied sizes after scaling)",
		Param:   "experiment",
		Systems: []string{"tuples", "dimensions", "clusters"}}
	add := func(kind string, n, d, k int) {
		t.Rows = append(t.Rows, Row{Label: kind, Seconds: map[string]float64{
			"tuples": float64(n), "dimensions": float64(d), "clusters": float64(k)}})
	}
	for _, n := range scale.kmeansTupleCounts() {
		add("vary-tuples", n, 10, 5)
	}
	base := scale.kmeansBaseTuples()
	for _, d := range sweepDims {
		add("vary-dims", base, d, 5)
	}
	for _, k := range sweepClusters {
		add("vary-clusters", base, 10, k)
	}
	return t
}

// LambdaVariants is experiment E9: the same k-Means operator parameterized
// with different lambdas (default Euclidean, explicit Euclidean lambda,
// Manhattan/k-Medians, and a custom weighted metric) — demonstrating that
// lambda flexibility does not sacrifice operator performance (Section 7).
func LambdaVariants(n, d, k, iters int, progress io.Writer) (*Table, error) {
	ds, err := PrepareKMeans(KMeansConfig{N: n, D: d, K: k, Iters: iters, Seed: 8})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "lambda-variants",
		Title:   fmt.Sprintf("k-Means operator with lambda variants (n=%d, d=%d, k=%d, %d iterations)", n, d, k, iters),
		Param:   "lambda",
		Systems: []string{"seconds"}}

	variants := []struct {
		name string
		q    string
	}{
		{"default(L2)", fmt.Sprintf(`SELECT * FROM KMEANS ((SELECT %s FROM points), (SELECT %s FROM centers), %d)`,
			dimList("", d, "d%[2]d"), dimList("", d, "d%[2]d"), iters)},
		{"lambda-L2", KMeansOperatorLambdaQuery(d, iters)},
		{"lambda-L1", kmeansLambdaQuery(d, iters, l1Lambda(d))},
		{"lambda-weighted", kmeansLambdaQuery(d, iters, weightedLambda(d))},
	}
	for _, v := range variants {
		d, stats, err := timeQuery(ds.DB, v.q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		sec := d.Seconds()
		row := Row{Label: v.name, Seconds: map[string]float64{"seconds": sec}}
		row.addStats("seconds", stats)
		t.Rows = append(t.Rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "  %-16s %8.3fs\n", v.name, sec)
		}
	}
	return t, nil
}

func kmeansLambdaQuery(d, iters int, lambda string) string {
	dims := dimList("", d, "d%[2]d")
	return fmt.Sprintf(`SELECT * FROM KMEANS ((SELECT %s FROM points), (SELECT %s FROM centers), %s, %d)`,
		dims, dims, lambda, iters)
}

func l1Lambda(d int) string {
	terms := make([]string, d)
	for j := 0; j < d; j++ {
		terms[j] = fmt.Sprintf("abs(a.d%d - b.d%d)", j, j)
	}
	return "λ(a, b) " + joinPlus(terms)
}

func weightedLambda(d int) string {
	terms := make([]string, d)
	for j := 0; j < d; j++ {
		terms[j] = fmt.Sprintf("%d * (a.d%d - b.d%d)^2", j+1, j, j)
	}
	return "λ(a, b) " + joinPlus(terms)
}

func joinPlus(terms []string) string {
	out := terms[0]
	for _, t := range terms[1:] {
		out += " + " + t
	}
	return out
}

// Experiments maps experiment ids to their runners (the per-experiment
// index of DESIGN.md).
func Experiments(scale Scale) map[string]func(io.Writer) (*Table, error) {
	return map[string]func(io.Writer) (*Table, error){
		"table1":         func(io.Writer) (*Table, error) { return Table1(scale), nil },
		"fig4-tuples":    func(w io.Writer) (*Table, error) { return Fig4Tuples(scale, w) },
		"fig4-dims":      func(w io.Writer) (*Table, error) { return Fig4Dims(scale, w) },
		"fig4-clusters":  func(w io.Writer) (*Table, error) { return Fig4Clusters(scale, w) },
		"fig5-pagerank":  func(w io.Writer) (*Table, error) { return Fig5PageRank(scale, w) },
		"fig5-nb-tuples": func(w io.Writer) (*Table, error) { return Fig5NBTuples(scale, w) },
		"fig5-nb-dims":   func(w io.Writer) (*Table, error) { return Fig5NBDims(scale, w) },
		"iterate-vs-cte": func(w io.Writer) (*Table, error) {
			n := 100_000
			if scale.MaxTuples < n {
				n = scale.MaxTuples
			}
			return IterateVsCTE(n, 10, w)
		},
		"lambda-variants": func(w io.Writer) (*Table, error) {
			n := 200_000
			if scale.MaxTuples < n {
				n = scale.MaxTuples
			}
			return LambdaVariants(n, 10, 5, 3, w)
		},
	}
}

// ExperimentIDs lists experiment ids in a stable order.
func ExperimentIDs(scale Scale) []string {
	m := Experiments(scale)
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
