// Package bench is the benchmark harness reproducing the paper's
// evaluation (Section 8): it prepares the synthetic datasets, builds the
// SQL texts for the three in-database variants (HyPer Operator, HyPer
// Iterate, HyPer SQL), runs the comparator engines, and prints the series
// behind every figure and the dataset grid of Table 1.
package bench

import (
	"fmt"
	"strings"
)

// kmeansDistanceExpr builds the squared-Euclidean distance expression
// between tuple aliases a and b over d dimension columns d0..d{d-1}.
func kmeansDistanceExpr(a, b string, d int) string {
	terms := make([]string, d)
	for j := 0; j < d; j++ {
		terms[j] = fmt.Sprintf("(%s.d%d - %s.d%d)^2", a, j, b, j)
	}
	return strings.Join(terms, " + ")
}

// dimList renders "p.d0, p.d1, ..." style projections.
func dimList(alias string, d int, format string) string {
	parts := make([]string, d)
	for j := 0; j < d; j++ {
		parts[j] = fmt.Sprintf(format, alias, j, j)
	}
	return strings.Join(parts, ", ")
}

// KMeansOperatorQuery is the layer-4 benchmark query: the physical
// operator with its default distance (the paper's evaluation protocol —
// all systems run plain Lloyd's k-Means with the L2 metric).
func KMeansOperatorQuery(d, maxIter int) string {
	dims := dimList("", d, "d%[2]d")
	return fmt.Sprintf(`SELECT * FROM KMEANS (
  (SELECT %s FROM points),
  (SELECT %s FROM centers),
  %d)`, dims, dims, maxIter)
}

// KMeansOperatorLambdaQuery is the paper's Listing 3 shape: the same
// operator parameterized with an explicit distance lambda (used by the
// lambda-variants ablation and the correctness tests).
func KMeansOperatorLambdaQuery(d, maxIter int) string {
	dims := dimList("", d, "d%[2]d")
	return fmt.Sprintf(`SELECT * FROM KMEANS (
  (SELECT %s FROM points),
  (SELECT %s FROM centers),
  λ(a, b) %s,
  %d)`, dims, dims, kmeansDistanceExpr("a", "b", d), maxIter)
}

// kmeansStepBody builds the assignment+update step over a working centers
// relation named workRel (the SQL-centric plan of the paper's Figure 2b).
// The working relation carries (cid, d0.., iter).
func kmeansStepBody(workRel string, d int) string {
	avgs := dimList("p", d, "avg(%[1]s.d%[2]d) AS d%[3]d")
	return fmt.Sprintf(`WITH dists AS (
    SELECT p.id AS id, c.cid AS cid, %s AS dist
    FROM points p, %s c
  ), mind AS (
    SELECT id, min(dist) AS md FROM dists GROUP BY id
  ), assign AS (
    SELECT dd.id AS id, min(dd.cid) AS cid
    FROM dists dd JOIN mind m ON dd.id = m.id AND dd.dist = m.md
    GROUP BY dd.id
  )
  SELECT a.cid AS cid, %s, min(t.it) + 1 AS iter
  FROM assign a
    JOIN points p ON a.id = p.id,
    (SELECT min(iter) AS it FROM %s) t
  GROUP BY a.cid`, kmeansDistanceExpr("p", "c", d), workRel, avgs, workRel)
}

// KMeansIterateQuery is the layer-3 query using the paper's non-appending
// ITERATE construct: the working table holds the current centers only.
func KMeansIterateQuery(d, iters int) string {
	dims := dimList("", d, "d%[2]d")
	return fmt.Sprintf(`SELECT cid, %s FROM ITERATE (
  (SELECT cid, %s, 0 AS iter FROM centers),
  (%s),
  (SELECT cid FROM iterate WHERE iter >= %d))`,
		dims, dims, kmeansStepBody("iterate", d), iters)
}

// KMeansRecursiveCTEQuery is the plain-SQL:1999 variant: the recursive CTE
// appends every iteration's centers, carries the iteration counter in each
// tuple, and the consumer filters for the final iteration — the costs
// Section 5.1 attributes to recursive CTEs.
func KMeansRecursiveCTEQuery(d, iters int) string {
	dims := dimList("", d, "d%[2]d")
	// The inner HAVING guards recursion: no rows are produced once the
	// iteration counter reaches the target, which terminates the CTE. The
	// step is wrapped in a FROM-subquery because a UNION branch must be a
	// plain SELECT.
	step := kmeansStepBody("c", d)
	return fmt.Sprintf(`WITH RECURSIVE c (cid, %s, iter) AS (
  SELECT cid, %s, 0 AS iter FROM centers
  UNION ALL
  SELECT * FROM (
  %s
  HAVING min(t.it) + 1 <= %d
  ) stepq
) SELECT cid, %s FROM c WHERE iter = %d`,
		dims, dims, step, iters, dims, iters)
}

// PageRankOperatorQuery is the paper's Listing 2.
func PageRankOperatorQuery(damping, epsilon float64, iters int) string {
	return fmt.Sprintf(`SELECT * FROM PAGERANK ((SELECT src, dest FROM edges), %g, %g, %d)`,
		damping, epsilon, iters)
}

// pageRankStepBody computes one rank update over a working relation
// (v, rank, iter). It is the relational formulation the paper describes:
// a derived vertex table and edge joins, with runtime dominated by hash
// joins (Section 8.4.2).
func pageRankStepBody(workRel string, damping float64) string {
	return fmt.Sprintf(`WITH outdeg AS (
    SELECT src, count(*) AS deg FROM edges GROUP BY src
  ), contrib AS (
    SELECT e.dest AS v, sum(r.rank / o.deg) AS inc
    FROM %s r
      JOIN outdeg o ON r.v = o.src
      JOIN edges e ON r.v = e.src
    GROUP BY e.dest
  )
  SELECT r.v AS v, %g / t.n + %g * coalesce(c.inc, 0.0) AS rank, r.iter + 1 AS iter
  FROM %s r
    LEFT JOIN contrib c ON r.v = c.v,
    (SELECT cast(count(*) AS DOUBLE) AS n FROM %s) t`,
		workRel, 1-damping, damping, workRel, workRel)
}

// PageRankIterateQuery is the layer-3 PageRank over ITERATE.
func PageRankIterateQuery(damping float64, iters int) string {
	return fmt.Sprintf(`SELECT v, rank FROM ITERATE (
  (SELECT v.src AS v, 1.0 / t.n AS rank, 0 AS iter
   FROM (SELECT DISTINCT src FROM edges) v,
        (SELECT cast(count(*) AS DOUBLE) AS n FROM (SELECT DISTINCT src FROM edges) q) t),
  (%s),
  (SELECT v FROM iterate WHERE iter >= %d LIMIT 1))`,
		pageRankStepBody("iterate", damping), iters)
}

// PageRankRecursiveCTEQuery is the plain recursive-CTE PageRank: ranks of
// every iteration accumulate; the consumer filters the last one. The step
// is wrapped in a FROM-subquery because a UNION branch must be a plain
// SELECT; the inner WHERE guards recursion.
func PageRankRecursiveCTEQuery(damping float64, iters int) string {
	step := pageRankStepBody("r", damping)
	return fmt.Sprintf(`WITH RECURSIVE r (v, rank, iter) AS (
  SELECT v.src AS v, 1.0 / t.n AS rank, 0 AS iter
  FROM (SELECT DISTINCT src FROM edges) v,
       (SELECT cast(count(*) AS DOUBLE) AS n FROM (SELECT DISTINCT src FROM edges) q) t
  UNION ALL
  SELECT * FROM (
  %s
  WHERE r.iter < %d
  ) stepq
) SELECT v, rank FROM r WHERE iter = %d`, step, iters, iters)
}

// NBTrainOperatorQuery is the layer-4 Naive Bayes training call.
func NBTrainOperatorQuery(d int) string {
	feats := dimList("", d, "d%[2]d")
	return fmt.Sprintf(`SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT %s, label FROM train))`, feats)
}

// NBTrainSQLQuery trains Naive Bayes in plain SQL: one grouped aggregation
// computing count, mean, and stddev per class and feature. Naive Bayes has
// no iteration, so the SQL-centric and iterate-centric variants coincide
// (the paper's Figure 5 reflects the same).
func NBTrainSQLQuery(d, n int) string {
	var cols []string
	for j := 0; j < d; j++ {
		cols = append(cols,
			fmt.Sprintf("avg(d%d) AS mean%d", j, j),
			fmt.Sprintf("stddev(d%d) AS stddev%d", j, j))
	}
	return fmt.Sprintf(
		`SELECT label, cast(count(*) + 1 AS DOUBLE) / (%d + 2) AS prior, %s FROM train GROUP BY label`,
		n, strings.Join(cols, ", "))
}
