package bench

import (
	"fmt"
	"runtime"
	"time"

	"lambdadb/internal/contender"
	"lambdadb/internal/contender/dataflow"
	"lambdadb/internal/contender/singlecore"
	"lambdadb/internal/contender/udf"
	"lambdadb/internal/engine"
	"lambdadb/internal/exec"
	"lambdadb/internal/types"
	"lambdadb/internal/workload"
)

// Systems evaluated, in the paper's presentation order. The three HyPer
// variants run inside the engine; the other three are the simulated
// comparators (see DESIGN.md).
const (
	SysOperator   = "HyPerOperator"
	SysIterate    = "HyPerIterate"
	SysSQL        = "HyPerSQL"
	SysDataflow   = "Dataflow(Spark)"
	SysSingleCore = "SingleCore(MATLAB)"
	SysUDF        = "UDF(MADlib)"
)

// AllSystems lists every evaluated system.
var AllSystems = []string{SysOperator, SysIterate, SysSQL, SysDataflow, SysSingleCore, SysUDF}

// KMeansConfig parameterizes one k-Means experiment cell (Table 1 row).
type KMeansConfig struct {
	N, D, K, Iters int
	Seed           int64
}

// KMeansDataset holds one prepared k-Means dataset across all systems.
type KMeansDataset struct {
	Cfg     KMeansConfig
	DB      *engine.DB
	Data    []float64
	Centers []float64
}

// PrepareKMeans generates the dataset and loads the engine tables:
// points(id, d0..) and centers(cid, d0..).
func PrepareKMeans(cfg KMeansConfig) (*KMeansDataset, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	data := workload.UniformVectors(cfg.N, cfg.D, cfg.Seed)
	centers := workload.SampleCenters(data, cfg.N, cfg.D, cfg.K, cfg.Seed+1)

	db := engine.Open()
	if err := loadPointsTable(db, "points", data, cfg.N, cfg.D, true); err != nil {
		return nil, err
	}
	if err := loadCentersTable(db, "centers", centers, cfg.K, cfg.D); err != nil {
		return nil, err
	}
	return &KMeansDataset{Cfg: cfg, DB: db, Data: data, Centers: centers}, nil
}

// loadPointsTable loads (optionally id-prefixed) vector rows.
func loadPointsTable(db *engine.DB, table string, data []float64, n, d int, withID bool) error {
	schema := types.Schema{}
	if withID {
		schema = append(schema, types.ColumnInfo{Name: "id", Type: types.Int64})
	}
	schema = append(schema, workload.VectorSchema(d)...)
	store := db.Store()
	_ = store.DropTable(table)
	tbl, err := store.CreateTable(table, schema)
	if err != nil {
		return err
	}
	tx := store.Begin()
	const chunk = 1 << 16
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b := types.NewBatch(schema)
		for i := lo; i < hi; i++ {
			col := 0
			if withID {
				b.Cols[0].AppendInt(int64(i))
				col = 1
			}
			for j := 0; j < d; j++ {
				b.Cols[col+j].AppendFloat(data[i*d+j])
			}
		}
		if err := tx.Insert(tbl, b); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

func loadCentersTable(db *engine.DB, table string, centers []float64, k, d int) error {
	schema := append(types.Schema{{Name: "cid", Type: types.Int64}}, workload.VectorSchema(d)...)
	store := db.Store()
	_ = store.DropTable(table)
	tbl, err := store.CreateTable(table, schema)
	if err != nil {
		return err
	}
	tx := store.Begin()
	b := types.NewBatch(schema)
	for c := 0; c < k; c++ {
		b.Cols[0].AppendInt(int64(c))
		for j := 0; j < d; j++ {
			b.Cols[1+j].AppendFloat(centers[c*d+j])
		}
	}
	if err := tx.Insert(tbl, b); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// timeQuery runs a SQL query with per-operator telemetry armed, returning
// its wall time and the rendered stats tree.
func timeQuery(db *engine.DB, q string) (time.Duration, string, error) {
	s := db.NewSession()
	defer s.Close()
	s.CollectStats(true)
	start := time.Now()
	_, err := s.Exec(q)
	d := time.Since(start)
	stats := ""
	if st := s.LastStats(); st != nil {
		stats = exec.FormatStatsTree(st)
	}
	return d, stats, err
}

// Run measures one system on the dataset, returning wall time and — for
// the engine-backed systems — the per-operator stats tree.
func (ds *KMeansDataset) Run(system string) (time.Duration, string, error) {
	cfg := ds.Cfg
	switch system {
	case SysOperator:
		return timeQuery(ds.DB, KMeansOperatorQuery(cfg.D, cfg.Iters))
	case SysIterate:
		return timeQuery(ds.DB, KMeansIterateQuery(cfg.D, cfg.Iters))
	case SysSQL:
		return timeQuery(ds.DB, KMeansRecursiveCTEQuery(cfg.D, cfg.Iters))
	case SysDataflow:
		return timeEngineKMeans(dataflow.New(runtime.GOMAXPROCS(0)), ds)
	case SysSingleCore:
		return timeEngineKMeans(singlecore.New(), ds)
	case SysUDF:
		return timeEngineKMeans(udf.New(runtime.GOMAXPROCS(0)), ds)
	}
	return 0, "", fmt.Errorf("unknown system %q", system)
}

func timeEngineKMeans(e contender.Engine, ds *KMeansDataset) (time.Duration, string, error) {
	start := time.Now()
	_ = e.KMeans(ds.Data, ds.Cfg.N, ds.Cfg.D, ds.Centers, ds.Cfg.K, ds.Cfg.Iters)
	return time.Since(start), "", nil
}

// PageRankConfig parameterizes one PageRank experiment cell.
type PageRankConfig struct {
	Vertices, DirectedEdges int
	Damping                 float64
	Iters                   int
	Seed                    int64
	Name                    string
}

// PageRankDataset holds a prepared graph across all systems.
type PageRankDataset struct {
	Cfg   PageRankConfig
	DB    *engine.DB
	Graph *workload.Graph
}

// PreparePageRank generates the social graph and loads the edges table.
func PreparePageRank(cfg PageRankConfig) (*PageRankDataset, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 45
	}
	g := workload.SocialGraph(cfg.Vertices, cfg.DirectedEdges, cfg.Seed)
	db := engine.Open()
	if err := workload.LoadEdgeTable(db, "edges", g.Src, g.Dst); err != nil {
		return nil, err
	}
	return &PageRankDataset{Cfg: cfg, DB: db, Graph: g}, nil
}

// Run measures one system on the graph.
func (ds *PageRankDataset) Run(system string) (time.Duration, string, error) {
	cfg := ds.Cfg
	switch system {
	case SysOperator:
		return timeQuery(ds.DB, PageRankOperatorQuery(cfg.Damping, 0, cfg.Iters))
	case SysIterate:
		return timeQuery(ds.DB, PageRankIterateQuery(cfg.Damping, cfg.Iters))
	case SysSQL:
		return timeQuery(ds.DB, PageRankRecursiveCTEQuery(cfg.Damping, cfg.Iters))
	case SysDataflow:
		return timeEnginePR(dataflow.New(runtime.GOMAXPROCS(0)), ds)
	case SysSingleCore:
		return timeEnginePR(singlecore.New(), ds)
	case SysUDF:
		return timeEnginePR(udf.New(runtime.GOMAXPROCS(0)), ds)
	}
	return 0, "", fmt.Errorf("unknown system %q", system)
}

func timeEnginePR(e contender.Engine, ds *PageRankDataset) (time.Duration, string, error) {
	start := time.Now()
	_ = e.PageRank(ds.Graph.Src, ds.Graph.Dst, ds.Cfg.Damping, ds.Cfg.Iters)
	return time.Since(start), "", nil
}

// NBConfig parameterizes one Naive Bayes training cell.
type NBConfig struct {
	N, D    int
	Classes int
	Seed    int64
}

// NBDataset holds a prepared labeled dataset.
type NBDataset struct {
	Cfg    NBConfig
	DB     *engine.DB
	Data   []float64
	Labels []int64
}

// PrepareNB generates labeled vectors and loads the train table.
func PrepareNB(cfg NBConfig) (*NBDataset, error) {
	if cfg.Classes <= 0 {
		cfg.Classes = 2
	}
	data := workload.UniformVectors(cfg.N, cfg.D, cfg.Seed)
	labels := workload.UniformLabels(cfg.N, cfg.Classes, cfg.Seed+1)
	db := engine.Open()
	if err := workload.LoadLabeledVectorTable(db, "train", data, labels, cfg.N, cfg.D); err != nil {
		return nil, err
	}
	return &NBDataset{Cfg: cfg, DB: db, Data: data, Labels: labels}, nil
}

// Run measures one system. The iterate variant equals the SQL variant for
// Naive Bayes (no iteration), matching the paper's Figure 5.
func (ds *NBDataset) Run(system string) (time.Duration, string, error) {
	cfg := ds.Cfg
	switch system {
	case SysOperator:
		return timeQuery(ds.DB, NBTrainOperatorQuery(cfg.D))
	case SysIterate, SysSQL:
		return timeQuery(ds.DB, NBTrainSQLQuery(cfg.D, cfg.N))
	case SysDataflow:
		return timeEngineNB(dataflow.New(runtime.GOMAXPROCS(0)), ds)
	case SysSingleCore:
		return timeEngineNB(singlecore.New(), ds)
	case SysUDF:
		return timeEngineNB(udf.New(runtime.GOMAXPROCS(0)), ds)
	}
	return 0, "", fmt.Errorf("unknown system %q", system)
}

func timeEngineNB(e contender.Engine, ds *NBDataset) (time.Duration, string, error) {
	start := time.Now()
	_ = e.NBTrain(ds.Data, ds.Cfg.N, ds.Cfg.D, ds.Labels)
	return time.Since(start), "", nil
}
