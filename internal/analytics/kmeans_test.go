package analytics

import (
	"math"
	"math/rand"
	"testing"
)

// twoBlobs generates n points split between two well-separated clusters.
func twoBlobs(n, d int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := 0; i < n; i++ {
		base := 0.0
		if i >= n/2 {
			base = 10.0
		}
		for j := 0; j < d; j++ {
			data[i*d+j] = base + r.Float64()
		}
	}
	return data
}

func TestKMeansConvergesOnSeparatedBlobs(t *testing.T) {
	const n, d, k = 1000, 3, 2
	data := twoBlobs(n, d, 1)
	centers := []float64{1, 1, 1, 9, 9, 9}
	res, err := KMeans(data, n, d, centers, k, KMeansOptions{MaxIter: 50, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("should converge on separated blobs")
	}
	// Centers near (0.5,...) and (10.5,...).
	for j := 0; j < d; j++ {
		if math.Abs(res.Centers[j]-0.5) > 0.1 {
			t.Errorf("center 0 dim %d = %v", j, res.Centers[j])
		}
		if math.Abs(res.Centers[d+j]-10.5) > 0.1 {
			t.Errorf("center 1 dim %d = %v", j, res.Centers[d+j])
		}
	}
}

func TestKMeansSerialParallelIdentical(t *testing.T) {
	const n, d, k = 2000, 4, 3
	data := twoBlobs(n, d, 2)
	centers := make([]float64, k*d)
	copy(centers, data[:k*d])
	serial, err := KMeans(data, n, d, centers, k, KMeansOptions{MaxIter: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := KMeans(data, n, d, centers, k, KMeansOptions{MaxIter: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Centers {
		if math.Abs(serial.Centers[i]-parallel.Centers[i]) > 1e-9 {
			t.Fatalf("center[%d]: serial %v != parallel %v", i, serial.Centers[i], parallel.Centers[i])
		}
	}
	if serial.Iterations != parallel.Iterations {
		t.Errorf("iterations: serial %d != parallel %d", serial.Iterations, parallel.Iterations)
	}
}

func TestKMeansCustomMetricMatchesDefault(t *testing.T) {
	// Squared Euclidean passed as a custom function must reproduce the
	// specialized default path exactly.
	const n, d, k = 500, 2, 2
	data := twoBlobs(n, d, 3)
	centers := []float64{0, 0, 10, 10}
	custom := func(a, b []float64) float64 {
		dx, dy := a[0]-b[0], a[1]-b[1]
		return dx*dx + dy*dy
	}
	def, err := KMeans(data, n, d, centers, k, KMeansOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	cust, err := KMeans(data, n, d, centers, k, KMeansOptions{MaxIter: 10, Distance: custom})
	if err != nil {
		t.Fatal(err)
	}
	for i := range def.Centers {
		if def.Centers[i] != cust.Centers[i] {
			t.Fatalf("center[%d]: default %v != custom %v", i, def.Centers[i], cust.Centers[i])
		}
	}
}

func TestKMeansManhattanDiffersButClusters(t *testing.T) {
	const n, d, k = 400, 2, 2
	data := twoBlobs(n, d, 4)
	centers := []float64{0, 0, 10, 10}
	l1 := func(a, b []float64) float64 {
		return math.Abs(a[0]-b[0]) + math.Abs(a[1]-b[1])
	}
	res, err := KMeans(data, n, d, centers, k, KMeansOptions{MaxIter: 20, Distance: l1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centers[0] > 5 || res.Centers[2] < 5 {
		t.Errorf("L1 centers = %v", res.Centers)
	}
}

func TestKMeansMaxIterBound(t *testing.T) {
	const n, d, k = 100, 2, 2
	data := twoBlobs(n, d, 5)
	centers := []float64{5, 5, 5.1, 5.1} // poor initialization
	res, err := KMeans(data, n, d, centers, k, KMeansOptions{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

func TestKMeansEmptyClusterKeepsCenter(t *testing.T) {
	// A center far from all points gets no assignments and must stay put.
	data := []float64{0, 0, 1, 1}
	centers := []float64{0.5, 0.5, 100, 100}
	res, err := KMeans(data, 2, 2, centers, 2, KMeansOptions{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centers[2] != 100 || res.Centers[3] != 100 {
		t.Errorf("empty cluster center moved: %v", res.Centers[2:])
	}
}

func TestKMeansInputValidation(t *testing.T) {
	if _, err := KMeans([]float64{1}, 1, 1, []float64{1, 2}, 1, KMeansOptions{}); err == nil {
		t.Error("centers length mismatch should fail")
	}
	if _, err := KMeans([]float64{1, 2}, 1, 1, []float64{1}, 1, KMeansOptions{}); err == nil {
		t.Error("data length mismatch should fail")
	}
	if _, err := KMeans(nil, 0, 0, nil, 0, KMeansOptions{}); err == nil {
		t.Error("d=0,k=0 should fail")
	}
}

func TestKMeansDoesNotMutateInputs(t *testing.T) {
	data := twoBlobs(100, 2, 6)
	centers := []float64{0, 0, 10, 10}
	dataCopy := append([]float64{}, data...)
	centersCopy := append([]float64{}, centers...)
	if _, err := KMeans(data, 100, 2, centers, 2, KMeansOptions{MaxIter: 5}); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != dataCopy[i] {
			t.Fatal("data mutated")
		}
	}
	for i := range centers {
		if centers[i] != centersCopy[i] {
			t.Fatal("centers mutated")
		}
	}
}

func TestAssign(t *testing.T) {
	data := []float64{0, 0, 10, 10, 0.5, 0.5}
	centers := []float64{0, 0, 10, 10}
	got := Assign(data, 3, 2, centers, 2, nil, 2)
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("assignments = %v", got)
	}
}
