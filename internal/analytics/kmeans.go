// Package analytics implements the algorithm kernels behind the paper's
// analytical physical operators (Section 6): k-Means (Lloyd's algorithm)
// with lambda-parameterized distance metrics, pull-based PageRank over a
// CSR index, and Gaussian Naive Bayes training and prediction.
//
// Kernels operate on flat row-major float64 matrices and are parallelized
// with thread-local partial state plus a final merge, mirroring the
// operator implementations described in the paper.
package analytics

import (
	"fmt"
	"sync"
)

// DistanceFn computes the distance between a data tuple and a center, both
// given as d-dimensional float slices. It matches expr.FloatFn so compiled
// SQL lambdas plug in directly.
type DistanceFn func(a, b []float64) float64

// KMeansResult reports the outcome of a k-Means run.
type KMeansResult struct {
	// Centers holds the final cluster centers, row-major k×d.
	Centers []float64
	// Iterations is the number of executed iterations.
	Iterations int
	// Converged reports whether no assignment changed in the last
	// iteration (as opposed to hitting MaxIter).
	Converged bool
}

// KMeansOptions configures a run.
type KMeansOptions struct {
	// MaxIter bounds the iteration count (paper: "an additional parameter
	// defines the maximum number of iterations").
	MaxIter int
	// Workers is the parallelism degree; 0 or 1 means serial.
	Workers int
	// Distance is the metric; nil means squared Euclidean (the default
	// lambda of the paper's Section 7).
	Distance DistanceFn
	// OnIteration, if set, is called after every iteration with the 1-based
	// round number and how many assignments changed (telemetry hook).
	OnIteration func(round, changed int)
}

// KMeans runs Lloyd's algorithm (paper Section 6.1) on n tuples of d
// dimensions stored row-major in data, starting from the given centers
// (row-major k×d, consumed, not modified).
//
// Each worker assigns its chunk of tuples to the nearest center and
// accumulates per-cluster sums locally; synchronization happens only for
// the final merge and center update, exactly as the paper describes.
func KMeans(data []float64, n, d int, centers []float64, k int, opt KMeansOptions) (*KMeansResult, error) {
	if d <= 0 || k <= 0 {
		return nil, fmt.Errorf("kmeans: need d > 0 and k > 0 (got d=%d k=%d)", d, k)
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("kmeans: data length %d != n*d = %d", len(data), n*d)
	}
	if len(centers) != k*d {
		return nil, fmt.Errorf("kmeans: centers length %d != k*d = %d", len(centers), k*d)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n/1024+1 {
		workers = n/1024 + 1
	}

	cur := append([]float64{}, centers...)
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}

	res := &KMeansResult{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		res.Iterations = iter + 1
		changed := assignStep(data, n, d, cur, k, opt.Distance, assign, workers)
		updateStep(data, n, d, cur, k, assign, workers)
		if opt.OnIteration != nil {
			opt.OnIteration(iter+1, changed)
		}
		if changed == 0 {
			res.Converged = true
			break
		}
	}
	res.Centers = cur
	return res, nil
}

// assignStep assigns each tuple to its nearest center, returning how many
// assignments changed.
func assignStep(data []float64, n, d int, centers []float64, k int,
	dist DistanceFn, assign []int32, workers int) int {

	chunk := (n + workers - 1) / workers
	changes := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			changed := 0
			if dist == nil {
				changed = assignEuclid(data, d, centers, k, assign, lo, hi)
			} else {
				changed = assignCustom(data, d, centers, k, dist, assign, lo, hi)
			}
			changes[w] = changed
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range changes {
		total += c
	}
	return total
}

// assignEuclid is the specialized default-metric inner loop.
func assignEuclid(data []float64, d int, centers []float64, k int, assign []int32, lo, hi int) int {
	changed := 0
	for i := lo; i < hi; i++ {
		row := data[i*d : i*d+d]
		best := int32(0)
		bestDist := euclidSq(row, centers[:d])
		for c := 1; c < k; c++ {
			dd := euclidSq(row, centers[c*d:c*d+d])
			if dd < bestDist {
				bestDist = dd
				best = int32(c)
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed++
		}
	}
	return changed
}

func euclidSq(a, b []float64) float64 {
	var s float64
	for j := range a {
		diff := a[j] - b[j]
		s += diff * diff
	}
	return s
}

// assignCustom runs the compiled lambda metric.
func assignCustom(data []float64, d int, centers []float64, k int,
	dist DistanceFn, assign []int32, lo, hi int) int {
	changed := 0
	for i := lo; i < hi; i++ {
		row := data[i*d : i*d+d]
		best := int32(0)
		bestDist := dist(row, centers[:d])
		for c := 1; c < k; c++ {
			dd := dist(row, centers[c*d:c*d+d])
			if dd < bestDist {
				bestDist = dd
				best = int32(c)
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed++
		}
	}
	return changed
}

// updateStep recomputes centers as the arithmetic mean of their assigned
// tuples, using thread-local sums merged at the end. Empty clusters keep
// their previous center.
func updateStep(data []float64, n, d int, centers []float64, k int, assign []int32, workers int) {
	chunk := (n + workers - 1) / workers
	sums := make([][]float64, workers)
	counts := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sum := make([]float64, k*d)
			cnt := make([]int64, k)
			for i := lo; i < hi; i++ {
				c := int(assign[i])
				cnt[c]++
				row := data[i*d : i*d+d]
				cs := sum[c*d : c*d+d]
				for j, v := range row {
					cs[j] += v
				}
			}
			sums[w], counts[w] = sum, cnt
		}(w, lo, hi)
	}
	wg.Wait()
	// Global merge — the only synchronized step.
	totalSum := make([]float64, k*d)
	totalCnt := make([]int64, k)
	for w := range sums {
		if sums[w] == nil {
			continue
		}
		for i, v := range sums[w] {
			totalSum[i] += v
		}
		for c, v := range counts[w] {
			totalCnt[c] += v
		}
	}
	for c := 0; c < k; c++ {
		if totalCnt[c] == 0 {
			continue // keep previous center for empty clusters
		}
		inv := 1 / float64(totalCnt[c])
		for j := 0; j < d; j++ {
			centers[c*d+j] = totalSum[c*d+j] * inv
		}
	}
}

// Assign returns the nearest-center index for each tuple under the given
// metric (nil = squared Euclidean). It is the "apply the model" half of the
// paper's model-application pattern.
func Assign(data []float64, n, d int, centers []float64, k int, dist DistanceFn, workers int) []int32 {
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	if workers < 1 {
		workers = 1
	}
	assignStep(data, n, d, centers, k, dist, assign, workers)
	return assign
}
