package analytics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// NBModel is a trained Gaussian Naive Bayes model (paper Section 6.2):
// per class a prior probability, and per class and feature a mean and
// standard deviation.
type NBModel struct {
	// Labels holds the distinct class labels in ascending order.
	Labels []int64
	// Priors[c] is the Laplace-smoothed a-priori probability of class c:
	// (|c| + 1) / (|D| + |C|), as defined in the paper.
	Priors []float64
	// Means[c][f] and Stds[c][f] are the Gaussian parameters of feature f
	// in class c.
	Means [][]float64
	Stds  [][]float64
}

// minVariance floors variances so degenerate (constant) features do not
// produce infinite densities.
const minVariance = 1e-9

// nbPartial is one worker's training state: per class the tuple count and
// per-feature sum and sum of squares — exactly the running aggregates the
// paper's training operator keeps in its per-thread hash tables.
type nbPartial struct {
	count map[int64]int64
	sum   map[int64][]float64
	sumSq map[int64][]float64
}

func newNBPartial() *nbPartial {
	return &nbPartial{
		count: map[int64]int64{},
		sum:   map[int64][]float64{},
		sumSq: map[int64][]float64{},
	}
}

func (p *nbPartial) update(row []float64, label int64, d int) {
	s, ok := p.sum[label]
	if !ok {
		s = make([]float64, d)
		p.sum[label] = s
		p.sumSq[label] = make([]float64, d)
	}
	sq := p.sumSq[label]
	p.count[label]++
	for j := 0; j < d; j++ {
		v := row[j]
		s[j] += v
		sq[j] += v * v
	}
}

func (p *nbPartial) merge(o *nbPartial, d int) {
	for label, cnt := range o.count {
		p.count[label] += cnt
		s, ok := p.sum[label]
		if !ok {
			p.sum[label] = o.sum[label]
			p.sumSq[label] = o.sumSq[label]
			continue
		}
		sq := p.sumSq[label]
		for j := 0; j < d; j++ {
			s[j] += o.sum[label][j]
			sq[j] += o.sumSq[label][j]
		}
	}
}

// TrainNB trains a Gaussian Naive Bayes classifier on n tuples of d
// features (row-major) with integer class labels. Workers process disjoint
// chunks with thread-local running aggregates; the input tuples themselves
// are consumed and discarded (paper: the operator is a pipeline breaker
// that does not store tuples).
func TrainNB(data []float64, n, d int, labels []int64, workers int) (*NBModel, error) {
	if len(data) != n*d {
		return nil, fmt.Errorf("naive bayes: data length %d != n*d = %d", len(data), n*d)
	}
	if len(labels) != n {
		return nil, fmt.Errorf("naive bayes: %d labels for %d tuples", len(labels), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("naive bayes: empty training set")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n/1024+1 {
		workers = n/1024 + 1
	}

	partials := make([]*nbPartial, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			partials[w] = newNBPartial()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := newNBPartial()
			for i := lo; i < hi; i++ {
				p.update(data[i*d:i*d+d], labels[i], d)
			}
			partials[w] = p
		}(w, lo, hi)
	}
	wg.Wait()

	total := partials[0]
	for _, p := range partials[1:] {
		total.merge(p, d)
	}

	classes := make([]int64, 0, len(total.count))
	for label := range total.count {
		classes = append(classes, label)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	m := &NBModel{Labels: classes}
	numClasses := float64(len(classes))
	for _, label := range classes {
		cnt := float64(total.count[label])
		m.Priors = append(m.Priors, (cnt+1)/(float64(n)+numClasses))
		means := make([]float64, d)
		stds := make([]float64, d)
		for j := 0; j < d; j++ {
			mean := total.sum[label][j] / cnt
			variance := total.sumSq[label][j]/cnt - mean*mean
			if variance < minVariance {
				variance = minVariance
			}
			means[j] = mean
			stds[j] = math.Sqrt(variance)
		}
		m.Means = append(m.Means, means)
		m.Stds = append(m.Stds, stds)
	}
	return m, nil
}

// logGaussian returns the log density of x under N(mean, std²).
func logGaussian(x, mean, std float64) float64 {
	z := (x - mean) / std
	return -0.5*z*z - math.Log(std) - 0.5*math.Log(2*math.Pi)
}

// Predict classifies one feature row by maximum posterior in log space.
func (m *NBModel) Predict(row []float64) int64 {
	bestLabel := m.Labels[0]
	bestScore := math.Inf(-1)
	for c := range m.Labels {
		score := math.Log(m.Priors[c])
		means, stds := m.Means[c], m.Stds[c]
		for j, x := range row {
			score += logGaussian(x, means[j], stds[j])
		}
		if score > bestScore {
			bestScore = score
			bestLabel = m.Labels[c]
		}
	}
	return bestLabel
}

// PredictAll classifies n rows in parallel.
func (m *NBModel) PredictAll(data []float64, n, d int, workers int) []int64 {
	out := make([]int64, n)
	if workers < 1 {
		workers = 1
	}
	if workers > n/1024+1 {
		workers = n/1024 + 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = m.Predict(data[i*d : i*d+d])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
