package analytics

import (
	"math"
	"math/rand"
	"testing"

	"lambdadb/internal/graph"
)

func mustBuild(t *testing.T, src, dst []int64) *graph.CSR {
	t.Helper()
	g, err := graph.Build(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := mustBuild(t, []int64{0, 1, 2, 3}, []int64{1, 2, 3, 0})
	res, err := PageRank(g, PageRankOptions{Damping: 0.85, Epsilon: 1e-12, MaxIter: 200, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res.Ranks {
		if math.Abs(r-0.25) > 1e-9 {
			t.Errorf("rank[%d] = %v, want 0.25", v, r)
		}
	}
	if !res.Converged {
		t.Error("cycle should converge")
	}
}

func TestPageRankHubGetsHighestRank(t *testing.T) {
	// Star graph: all vertices point at 0.
	src := []int64{1, 2, 3, 4, 0}
	dst := []int64{0, 0, 0, 0, 1}
	g := mustBuild(t, src, dst)
	res, err := PageRank(g, PageRankOptions{Damping: 0.85, Epsilon: 0, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if res.Ranks[0] <= res.Ranks[v] {
			t.Errorf("hub rank %v not above rank[%d] = %v", res.Ranks[0], v, res.Ranks[v])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	// Random graph with dangling vertices: total rank mass stays 1.
	r := rand.New(rand.NewSource(7))
	var src, dst []int64
	const n = 200
	for i := 0; i < 600; i++ {
		src = append(src, int64(r.Intn(n)))
		dst = append(dst, int64(r.Intn(n)))
	}
	g := mustBuild(t, src, dst)
	res, err := PageRank(g, PageRankOptions{Damping: 0.85, Epsilon: 0, MaxIter: 60, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.Ranks {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank sum = %v, want 1", sum)
	}
}

func TestPageRankSerialParallelIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var src, dst []int64
	const n = 5000
	for i := 0; i < 20000; i++ {
		src = append(src, int64(r.Intn(n)))
		dst = append(dst, int64(r.Intn(n)))
	}
	g := mustBuild(t, src, dst)
	serial, err := PageRank(g, PageRankOptions{Damping: 0.85, Epsilon: 0, MaxIter: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PageRank(g, PageRankOptions{Damping: 0.85, Epsilon: 0, MaxIter: 10, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := range serial.Ranks {
		if serial.Ranks[v] != parallel.Ranks[v] {
			t.Fatalf("rank[%d]: serial %v != parallel %v", v, serial.Ranks[v], parallel.Ranks[v])
		}
	}
}

func TestPageRankFixedIterations(t *testing.T) {
	// Epsilon 0 runs exactly MaxIter iterations (the paper's evaluation
	// protocol: e = 0, 45 iterations).
	g := mustBuild(t, []int64{0, 1}, []int64{1, 0})
	res, err := PageRank(g, PageRankOptions{Damping: 0.85, Epsilon: 0, MaxIter: 45})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 45 {
		t.Errorf("iterations = %d, want 45", res.Iterations)
	}
	if res.Converged {
		t.Error("epsilon=0 must not report convergence")
	}
}

func TestPageRankDanglingMassRedistributed(t *testing.T) {
	// 0 → 1, 1 is a sink. Without dangling handling mass would leak.
	g := mustBuild(t, []int64{0}, []int64{1})
	res, err := PageRank(g, PageRankOptions{Damping: 0.85, Epsilon: 0, MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Ranks[0] + res.Ranks[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank sum with dangling vertex = %v", sum)
	}
	if res.Ranks[1] <= res.Ranks[0] {
		t.Errorf("sink should outrank source: %v", res.Ranks)
	}
}

func TestPageRankValidation(t *testing.T) {
	g := mustBuild(t, []int64{0}, []int64{1})
	if _, err := PageRank(g, PageRankOptions{Damping: 1.0}); err == nil {
		t.Error("damping = 1 should fail")
	}
	if _, err := PageRank(g, PageRankOptions{Damping: -0.1}); err == nil {
		t.Error("negative damping should fail")
	}
	empty, _ := graph.Build(nil, nil)
	res, err := PageRank(empty, PageRankOptions{Damping: 0.85})
	if err != nil || len(res.Ranks) != 0 {
		t.Errorf("empty graph: res=%v err=%v", res, err)
	}
}
