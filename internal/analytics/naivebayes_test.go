package analytics

import (
	"math"
	"math/rand"
	"testing"
)

// gaussianData draws n points per class from N(center_c, 1).
func gaussianData(classes []float64, nPerClass, d int, seed int64) (data []float64, labels []int64) {
	r := rand.New(rand.NewSource(seed))
	for c, center := range classes {
		for i := 0; i < nPerClass; i++ {
			for j := 0; j < d; j++ {
				data = append(data, center+r.NormFloat64())
			}
			labels = append(labels, int64(c))
		}
	}
	return data, labels
}

func TestTrainNBRecoversParameters(t *testing.T) {
	const nPer, d = 5000, 3
	data, labels := gaussianData([]float64{0, 10}, nPer, d, 1)
	m, err := TrainNB(data, 2*nPer, d, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Labels) != 2 || m.Labels[0] != 0 || m.Labels[1] != 1 {
		t.Fatalf("labels = %v", m.Labels)
	}
	// Laplace prior: (5000+1)/(10000+2) ≈ 0.5.
	for c := range m.Priors {
		if math.Abs(m.Priors[c]-0.5) > 1e-3 {
			t.Errorf("prior[%d] = %v", c, m.Priors[c])
		}
	}
	for j := 0; j < d; j++ {
		if math.Abs(m.Means[0][j]-0) > 0.1 || math.Abs(m.Means[1][j]-10) > 0.1 {
			t.Errorf("means[%d] = %v / %v", j, m.Means[0][j], m.Means[1][j])
		}
		if math.Abs(m.Stds[0][j]-1) > 0.1 || math.Abs(m.Stds[1][j]-1) > 0.1 {
			t.Errorf("stds[%d] = %v / %v", j, m.Stds[0][j], m.Stds[1][j])
		}
	}
}

func TestNBPredictSeparable(t *testing.T) {
	const nPer, d = 1000, 2
	data, labels := gaussianData([]float64{0, 8}, nPer, d, 2)
	m, err := TrainNB(data, 2*nPer, d, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	test, want := gaussianData([]float64{0, 8}, 200, d, 3)
	got := m.PredictAll(test, 400, d, 4)
	errors := 0
	for i := range got {
		if got[i] != want[i] {
			errors++
		}
	}
	// 8 sigma separation: error rate must be essentially zero.
	if errors > 2 {
		t.Errorf("misclassified %d of 400", errors)
	}
}

func TestNBSerialParallelIdentical(t *testing.T) {
	const nPer, d = 3000, 4
	data, labels := gaussianData([]float64{-1, 1, 3}, nPer, d, 4)
	serial, err := TrainNB(data, 3*nPer, d, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TrainNB(data, 3*nPer, d, labels, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Labels) != len(parallel.Labels) {
		t.Fatal("label count differs")
	}
	for c := range serial.Labels {
		if math.Abs(serial.Priors[c]-parallel.Priors[c]) > 1e-12 {
			t.Errorf("prior[%d] differs", c)
		}
		for j := 0; j < d; j++ {
			if math.Abs(serial.Means[c][j]-parallel.Means[c][j]) > 1e-9 {
				t.Errorf("mean[%d][%d]: %v vs %v", c, j, serial.Means[c][j], parallel.Means[c][j])
			}
			if math.Abs(serial.Stds[c][j]-parallel.Stds[c][j]) > 1e-9 {
				t.Errorf("std[%d][%d]: %v vs %v", c, j, serial.Stds[c][j], parallel.Stds[c][j])
			}
		}
	}
}

func TestNBConstantFeatureVarianceFloored(t *testing.T) {
	// A constant feature has zero variance; the model must floor it and
	// still produce finite predictions.
	data := []float64{1, 0, 1, 0.1, 1, 5, 1, 5.1}
	labels := []int64{0, 0, 1, 1}
	m, err := TrainNB(data, 4, 2, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range m.Labels {
		if m.Stds[c][0] <= 0 {
			t.Errorf("floored stddev = %v", m.Stds[c][0])
		}
	}
	got := m.Predict([]float64{1, 0.05})
	if got != 0 {
		t.Errorf("prediction = %d, want 0", got)
	}
	if math.IsNaN(float64(got)) {
		t.Error("NaN prediction")
	}
}

func TestNBPriorsFollowClassImbalance(t *testing.T) {
	// 3 of label 0, 1 of label 7 (labels need not be contiguous).
	data := []float64{0, 0, 0, 9}
	labels := []int64{0, 0, 0, 7}
	m, err := TrainNB(data, 4, 1, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Labels[0] != 0 || m.Labels[1] != 7 {
		t.Fatalf("labels = %v", m.Labels)
	}
	// (3+1)/(4+2) and (1+1)/(4+2) per the paper's formula.
	if math.Abs(m.Priors[0]-4.0/6) > 1e-12 || math.Abs(m.Priors[1]-2.0/6) > 1e-12 {
		t.Errorf("priors = %v", m.Priors)
	}
}

func TestNBValidation(t *testing.T) {
	if _, err := TrainNB([]float64{1}, 1, 1, nil, 1); err == nil {
		t.Error("label length mismatch should fail")
	}
	if _, err := TrainNB([]float64{1, 2}, 1, 1, []int64{0}, 1); err == nil {
		t.Error("data length mismatch should fail")
	}
	if _, err := TrainNB(nil, 0, 1, nil, 1); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestLogGaussianMatchesDensity(t *testing.T) {
	got := logGaussian(0, 0, 1)
	want := math.Log(1 / math.Sqrt(2*math.Pi))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("logGaussian(0,0,1) = %v, want %v", got, want)
	}
}
