package analytics

import (
	"fmt"
	"sync"

	"lambdadb/internal/graph"
)

// PageRankOptions configures a PageRank run (paper Sections 6.3 and 8.1.3).
type PageRankOptions struct {
	// Damping is the probability the random surfer follows an edge
	// (paper default 0.85).
	Damping float64
	// Epsilon stops the iteration when the L1 rank change drops to or
	// below it; 0 disables the check (the paper's evaluation setting).
	Epsilon float64
	// MaxIter bounds the iteration count.
	MaxIter int
	// Workers is the parallelism degree; 0 or 1 means serial.
	Workers int
	// OnIteration, if set, is called after every iteration with the 1-based
	// round number and the L1 rank change (telemetry hook).
	OnIteration func(round int, delta float64)
}

// PageRankResult reports ranks by dense vertex id plus run metadata.
type PageRankResult struct {
	Ranks      []float64
	Iterations int
	Converged  bool
}

// PageRank computes vertex ranks over a CSR graph using pull-based
// iterations: each worker computes new ranks for a disjoint vertex range
// reading only the previous iteration's array, so no per-edge
// synchronization is needed (paper Section 6.3). Current and previous
// ranks live in two directly indexed arrays.
func PageRank(g *graph.CSR, opt PageRankOptions) (*PageRankResult, error) {
	if g.N == 0 {
		return &PageRankResult{Converged: true}, nil
	}
	if opt.Damping < 0 || opt.Damping >= 1 {
		return nil, fmt.Errorf("pagerank: damping must be in [0, 1), got %g", opt.Damping)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > g.N/1024+1 {
		workers = g.N/1024 + 1
	}

	// The kernel pulls over incoming edges; build the transpose once.
	in := g.Transpose()
	n := g.N
	invN := 1.0 / float64(n)

	// contrib[u] caches rank[u]/outdeg[u] so each neighbor access is a
	// single array read.
	// For weighted graphs (the paper's edge-weight lambda), a vertex's
	// outgoing mass is split proportionally to edge weights, so the
	// divisor is the total out-weight rather than the out-degree.
	weighted := g.Weights != nil
	outDeg := make([]float64, n)
	var danglingIdx []int32
	for v := 0; v < n; v++ {
		if weighted {
			var total float64
			for _, w := range g.EdgeWeights(v) {
				total += w
			}
			outDeg[v] = total
		} else {
			outDeg[v] = float64(g.OutDegree(v))
		}
		if outDeg[v] == 0 {
			danglingIdx = append(danglingIdx, int32(v))
		}
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	for v := range rank {
		rank[v] = invN
	}

	chunk := (n + workers - 1) / workers
	diffs := make([]float64, workers)
	res := &PageRankResult{}

	for iter := 0; iter < opt.MaxIter; iter++ {
		res.Iterations = iter + 1

		// Dangling vertices spread their rank uniformly.
		var danglingSum float64
		for _, v := range danglingIdx {
			danglingSum += rank[v]
		}
		base := (1-opt.Damping)*invN + opt.Damping*danglingSum*invN

		for v := 0; v < n; v++ {
			if outDeg[v] > 0 {
				contrib[v] = rank[v] / outDeg[v]
			} else {
				contrib[v] = 0
			}
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				var diff float64
				for v := lo; v < hi; v++ {
					var sum float64
					if weighted {
						ws := in.EdgeWeights(v)
						for i, u := range in.Neighbors(v) {
							sum += contrib[u] * ws[i]
						}
					} else {
						for _, u := range in.Neighbors(v) {
							sum += contrib[u]
						}
					}
					nv := base + opt.Damping*sum
					next[v] = nv
					d := nv - rank[v]
					if d < 0 {
						d = -d
					}
					diff += d
				}
				diffs[w] = diff
			}(w, lo, hi)
		}
		wg.Wait()

		rank, next = next, rank
		var total float64
		for _, d := range diffs {
			total += d
		}
		if opt.OnIteration != nil {
			opt.OnIteration(iter+1, total)
		}
		if opt.Epsilon > 0 && total <= opt.Epsilon {
			res.Converged = true
			break
		}
	}
	res.Ranks = rank
	return res, nil
}
