package plan

import "lambdadb/internal/types"

// Shared marks a subplan referenced from several places (a non-recursive
// CTE). The executor materializes it once per execution epoch and serves
// every reference from the cache, instead of re-evaluating the subtree at
// each reference site.
//
// Invariant marks subplans that read no working table: those are constant
// for the whole query — including across ITERATE / recursive-CTE
// iterations — and are cached once (loop-invariant hoisting). Subplans that
// do read a working table are cached only within one iteration epoch.
type Shared struct {
	Child Node
	// Invariant reports that the subtree reads no working table.
	Invariant bool
}

func (s *Shared) Schema() types.Schema { return s.Child.Schema() }
func (s *Shared) Quals() []string      { return s.Child.Quals() }
func (s *Shared) Card() float64        { return s.Child.Card() }
func (s *Shared) Children() []Node     { return []Node{s.Child} }
func (s *Shared) Explain() string {
	if s.Invariant {
		return "Shared (invariant)"
	}
	return "Shared"
}

// ContainsWorkingScan reports whether the subtree reads any working table.
func ContainsWorkingScan(n Node) bool {
	if _, ok := n.(*WorkingScan); ok {
		return true
	}
	for _, c := range n.Children() {
		if ContainsWorkingScan(c) {
			return true
		}
	}
	return false
}
