package plan

import (
	"fmt"

	"lambdadb/internal/expr"
	"lambdadb/internal/sql"
	"lambdadb/internal/types"
)

func (b *Builder) buildTableRef(tr sql.TableRef) (Node, error) {
	switch n := tr.(type) {
	case *sql.TableName:
		return b.buildTableName(n)
	case *sql.Subquery:
		sub, err := b.buildSelect(n.Query)
		if err != nil {
			return nil, err
		}
		if n.Alias != "" {
			return &Alias{Child: sub, Name: n.Alias}, nil
		}
		return sub, nil
	case *sql.Join:
		return b.buildJoin(n)
	case *sql.TableFunc:
		return b.buildTableFunc(n)
	}
	return nil, fmt.Errorf("unsupported table reference %T", tr)
}

func (b *Builder) buildTableName(tn *sql.TableName) (Node, error) {
	// CTE bindings shadow stored tables.
	if binding, ok := b.ctes[tn.Name]; ok {
		if binding.working {
			ws := &WorkingScan{Name: binding.name, Sch: binding.schema, Alias: tn.Alias}
			return ws, nil
		}
		if tn.Alias != "" {
			return &Alias{Child: binding.node, Name: tn.Alias}, nil
		}
		return &Alias{Child: binding.node, Name: tn.Name}, nil
	}
	rel, err := b.Catalog.Resolve(tn.Name)
	if err != nil {
		return nil, err
	}
	return NewScan(rel, tn.Alias, b.Snapshot), nil
}

func (b *Builder) buildJoin(j *sql.Join) (Node, error) {
	l, err := b.buildTableRef(j.L)
	if err != nil {
		return nil, err
	}
	r, err := b.buildTableRef(j.R)
	if err != nil {
		return nil, err
	}
	out := &Join{L: l, R: r}
	switch j.Type {
	case sql.CrossJoin:
		out.Type = CrossJoin
		return out, nil
	case sql.LeftJoin:
		out.Type = LeftJoin
	default:
		out.Type = InnerJoin
	}
	ctx := &expr.ResolveCtx{
		Schema: out.Schema(),
		Quals:  out.Quals(),
	}
	on, err := expr.Resolve(j.On, ctx)
	if err != nil {
		return nil, fmt.Errorf("JOIN ON: %w", err)
	}
	if on.Type() != types.Bool {
		return nil, fmt.Errorf("JOIN ON must be boolean, got %s", on.Type())
	}
	out.On = Fold(on)
	classifyJoinKeys(out)
	return out, nil
}

// classifyJoinKeys splits an ON condition into equi-join key pairs and a
// residual predicate, enabling hash joins.
func classifyJoinKeys(j *Join) {
	nl := len(j.L.Schema())
	conjuncts := splitConjuncts(j.On)
	var residual []expr.Expr
	for _, c := range conjuncts {
		b, ok := c.(*expr.BinOp)
		if !ok || b.Op != expr.OpEq {
			residual = append(residual, c)
			continue
		}
		lc, lok := b.L.(*expr.ColRef)
		rc, rok := b.R.(*expr.ColRef)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		switch {
		case lc.Index < nl && rc.Index >= nl:
			j.EquiLeft = append(j.EquiLeft, lc.Index)
			j.EquiRight = append(j.EquiRight, rc.Index-nl)
		case rc.Index < nl && lc.Index >= nl:
			j.EquiLeft = append(j.EquiLeft, rc.Index)
			j.EquiRight = append(j.EquiRight, lc.Index-nl)
		default:
			residual = append(residual, c)
		}
	}
	j.Residual = combineConjuncts(residual)
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.BinOp); ok && b.Op == expr.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// combineConjuncts rebuilds an AND tree (nil for an empty list).
func combineConjuncts(es []expr.Expr) expr.Expr {
	var out expr.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &expr.BinOp{Op: expr.OpAnd, L: out, R: e, Typ: types.Bool}
		}
	}
	return out
}

// ---- analytical table functions ----

func (b *Builder) buildTableFunc(tf *sql.TableFunc) (Node, error) {
	var node Node
	var err error
	switch tf.Name {
	case "iterate":
		node, err = b.buildIterate(tf)
	case "kmeans":
		node, err = b.buildKMeans(tf)
	case "kmeans_assign":
		node, err = b.buildKMeansAssign(tf)
	case "pagerank":
		node, err = b.buildPageRank(tf)
	case "naive_bayes_train":
		node, err = b.buildNBTrain(tf)
	case "naive_bayes_predict":
		node, err = b.buildNBPredict(tf)
	default:
		return nil, fmt.Errorf("unknown table function %q", tf.Name)
	}
	if err != nil {
		return nil, err
	}
	if tf.Alias != "" {
		node = &Alias{Child: node, Name: tf.Alias}
	}
	return node, nil
}

func (b *Builder) queryArg(tf *sql.TableFunc, i int) (Node, error) {
	if i >= len(tf.Args) || tf.Args[i].Query == nil {
		return nil, fmt.Errorf("%s: argument %d must be a subquery", tf.Name, i+1)
	}
	return b.buildSelect(tf.Args[i].Query)
}

func (b *Builder) scalarArg(tf *sql.TableFunc, i int, what string) (types.Value, error) {
	if i >= len(tf.Args) || tf.Args[i].Scalar == nil {
		return types.Value{}, fmt.Errorf("%s: argument %d (%s) must be a constant", tf.Name, i+1, what)
	}
	r, err := expr.Resolve(tf.Args[i].Scalar, expr.NewResolveCtx(nil, ""))
	if err != nil {
		return types.Value{}, fmt.Errorf("%s: %s: %w", tf.Name, what, err)
	}
	v, err := expr.EvalConst(r)
	if err != nil {
		return types.Value{}, fmt.Errorf("%s: %s: %w", tf.Name, what, err)
	}
	return v, nil
}

// buildIterate plans ITERATE(init, step, stop) — the paper's Listing 1.
func (b *Builder) buildIterate(tf *sql.TableFunc) (Node, error) {
	if len(tf.Args) != 3 {
		return nil, fmt.Errorf("iterate expects 3 subquery arguments (init, step, stop), got %d", len(tf.Args))
	}
	init, err := b.queryArg(tf, 0)
	if err != nil {
		return nil, fmt.Errorf("iterate init: %w", err)
	}
	schema := init.Schema()

	saved := b.ctes["iterate"]
	b.ctes["iterate"] = &cteBinding{working: true, schema: schema, name: "iterate"}
	defer func() {
		if saved == nil {
			delete(b.ctes, "iterate")
		} else {
			b.ctes["iterate"] = saved
		}
	}()

	step, err := b.queryArg(tf, 1)
	if err != nil {
		return nil, fmt.Errorf("iterate step: %w", err)
	}
	step, err = conformSchema(step, schema)
	if err != nil {
		return nil, fmt.Errorf("iterate: step does not match init: %w", err)
	}
	stop, err := b.queryArg(tf, 2)
	if err != nil {
		return nil, fmt.Errorf("iterate stop: %w", err)
	}
	return &Iterate{Init: init, Step: step, Stop: stop, MaxDepth: b.maxDepth()}, nil
}

// buildKMeans plans KMEANS((data), (centers) [, λ(a,b) dist] [, maxiter]) —
// the paper's Listing 3.
func (b *Builder) buildKMeans(tf *sql.TableFunc) (Node, error) {
	if len(tf.Args) < 2 || len(tf.Args) > 4 {
		return nil, fmt.Errorf("kmeans expects 2-4 arguments, got %d", len(tf.Args))
	}
	data, err := b.queryArg(tf, 0)
	if err != nil {
		return nil, fmt.Errorf("kmeans data: %w", err)
	}
	centers, err := b.queryArg(tf, 1)
	if err != nil {
		return nil, fmt.Errorf("kmeans centers: %w", err)
	}
	ds, cs := data.Schema(), centers.Schema()
	if len(ds) == 0 {
		return nil, fmt.Errorf("kmeans: data has no columns")
	}
	if len(ds) != len(cs) {
		return nil, fmt.Errorf("kmeans: data has %d dimensions, centers %d", len(ds), len(cs))
	}
	names := make([]string, len(ds))
	for i, c := range ds {
		if !c.Type.IsNumeric() {
			return nil, fmt.Errorf("kmeans: data column %q is %s, need a numeric type", c.Name, c.Type)
		}
		if !cs[i].Type.IsNumeric() {
			return nil, fmt.Errorf("kmeans: centers column %q is %s, need a numeric type", cs[i].Name, cs[i].Type)
		}
		names[i] = c.Name
	}

	node := &KMeans{Data: data, Centers: centers, MaxIter: 100, OutNames: names}
	argIdx := 2
	if argIdx < len(tf.Args) && tf.Args[argIdx].Lambda != nil {
		l := tf.Args[argIdx].Lambda
		if len(l.Params) != 2 {
			return nil, fmt.Errorf("kmeans: distance lambda must take 2 parameters, got %d", len(l.Params))
		}
		// Both parameters are bound to the data tuple layout (centers are
		// conformed to the data schema at execution).
		floatSchema := make(types.Schema, len(ds))
		for i, c := range ds {
			floatSchema[i] = types.ColumnInfo{Name: c.Name, Type: types.Float64}
		}
		bound, err := expr.BindLambda(l, []types.Schema{floatSchema, floatSchema})
		if err != nil {
			return nil, fmt.Errorf("kmeans: %w", err)
		}
		node.Lambda = bound
		argIdx++
	}
	if argIdx < len(tf.Args) {
		v, err := b.scalarArg(tf, argIdx, "maxiter")
		if err != nil {
			return nil, err
		}
		if v.AsInt() < 1 {
			return nil, fmt.Errorf("kmeans: maxiter must be >= 1, got %d", v.AsInt())
		}
		node.MaxIter = int(v.AsInt())
		argIdx++
	}
	if argIdx != len(tf.Args) {
		return nil, fmt.Errorf("kmeans: unexpected extra arguments")
	}
	return node, nil
}

// buildKMeansAssign plans KMEANS_ASSIGN((data), (centers) [, λ(a,b) dist]).
func (b *Builder) buildKMeansAssign(tf *sql.TableFunc) (Node, error) {
	if len(tf.Args) < 2 || len(tf.Args) > 3 {
		return nil, fmt.Errorf("kmeans_assign expects 2-3 arguments, got %d", len(tf.Args))
	}
	data, err := b.queryArg(tf, 0)
	if err != nil {
		return nil, fmt.Errorf("kmeans_assign data: %w", err)
	}
	centers, err := b.queryArg(tf, 1)
	if err != nil {
		return nil, fmt.Errorf("kmeans_assign centers: %w", err)
	}
	ds, cs := data.Schema(), centers.Schema()
	if len(ds) == 0 || len(ds) != len(cs) {
		return nil, fmt.Errorf("kmeans_assign: data has %d dimensions, centers %d", len(ds), len(cs))
	}
	for i, c := range ds {
		if !c.Type.IsNumeric() || !cs[i].Type.IsNumeric() {
			return nil, fmt.Errorf("kmeans_assign: all columns must be numeric")
		}
	}
	node := &KMeansAssign{Data: data, Centers: centers}
	if len(tf.Args) == 3 {
		l := tf.Args[2].Lambda
		if l == nil {
			return nil, fmt.Errorf("kmeans_assign: third argument must be a distance lambda")
		}
		if len(l.Params) != 2 {
			return nil, fmt.Errorf("kmeans_assign: distance lambda must take 2 parameters, got %d", len(l.Params))
		}
		floatSchema := make(types.Schema, len(ds))
		for i, c := range ds {
			floatSchema[i] = types.ColumnInfo{Name: c.Name, Type: types.Float64}
		}
		bound, err := expr.BindLambda(l, []types.Schema{floatSchema, floatSchema})
		if err != nil {
			return nil, fmt.Errorf("kmeans_assign: %w", err)
		}
		node.Lambda = bound
	}
	return node, nil
}

// buildPageRank plans PAGERANK((edges) [, λ(e) weight], damping, epsilon
// [, maxiter]) — the paper's Listing 2, plus the Section 7 edge-weight
// variation point. With a weight lambda, the edges subquery may carry
// additional numeric property columns the lambda can reference.
func (b *Builder) buildPageRank(tf *sql.TableFunc) (Node, error) {
	if len(tf.Args) < 1 || len(tf.Args) > 5 {
		return nil, fmt.Errorf("pagerank expects 1-5 arguments, got %d", len(tf.Args))
	}
	edges, err := b.queryArg(tf, 0)
	if err != nil {
		return nil, fmt.Errorf("pagerank edges: %w", err)
	}
	node := &PageRank{Edges: edges, Damping: 0.85, Epsilon: 1e-4, MaxIter: 100}

	argIdx := 1
	if argIdx < len(tf.Args) && tf.Args[argIdx].Lambda != nil {
		l := tf.Args[argIdx].Lambda
		if len(l.Params) != 1 {
			return nil, fmt.Errorf("pagerank: weight lambda must take 1 edge parameter, got %d", len(l.Params))
		}
		es := edges.Schema()
		floatSchema := make(types.Schema, len(es))
		for i, c := range es {
			floatSchema[i] = types.ColumnInfo{Name: c.Name, Type: types.Float64}
		}
		bound, err := expr.BindLambda(l, []types.Schema{floatSchema})
		if err != nil {
			return nil, fmt.Errorf("pagerank: %w", err)
		}
		node.Lambda = bound
		argIdx++
	}

	es := edges.Schema()
	minCols := 2
	if len(es) < minCols || es[0].Type != types.Int64 || es[1].Type != types.Int64 {
		return nil, fmt.Errorf("pagerank: edges must start with two BIGINT columns (src, dest), got %s", es)
	}
	if node.Lambda == nil && len(es) != 2 {
		return nil, fmt.Errorf("pagerank: edges must have exactly (src, dest) unless a weight lambda is given, got %s", es)
	}
	for _, c := range es[2:] {
		if !c.Type.IsNumeric() {
			return nil, fmt.Errorf("pagerank: edge property %q is %s, need a numeric type", c.Name, c.Type)
		}
	}

	if argIdx < len(tf.Args) {
		v, err := b.scalarArg(tf, argIdx, "damping")
		if err != nil {
			return nil, err
		}
		node.Damping = v.AsFloat()
		if node.Damping < 0 || node.Damping >= 1 {
			return nil, fmt.Errorf("pagerank: damping must be in [0, 1), got %g", node.Damping)
		}
		argIdx++
	}
	if argIdx < len(tf.Args) {
		v, err := b.scalarArg(tf, argIdx, "epsilon")
		if err != nil {
			return nil, err
		}
		node.Epsilon = v.AsFloat()
		if node.Epsilon < 0 {
			return nil, fmt.Errorf("pagerank: epsilon must be >= 0, got %g", node.Epsilon)
		}
		argIdx++
	}
	if argIdx < len(tf.Args) {
		v, err := b.scalarArg(tf, argIdx, "maxiter")
		if err != nil {
			return nil, err
		}
		if v.AsInt() < 1 {
			return nil, fmt.Errorf("pagerank: maxiter must be >= 1, got %d", v.AsInt())
		}
		node.MaxIter = int(v.AsInt())
		argIdx++
	}
	if argIdx != len(tf.Args) {
		return nil, fmt.Errorf("pagerank: unexpected extra arguments")
	}
	return node, nil
}

func (b *Builder) buildNBTrain(tf *sql.TableFunc) (Node, error) {
	if len(tf.Args) != 1 {
		return nil, fmt.Errorf("naive_bayes_train expects 1 subquery argument, got %d", len(tf.Args))
	}
	data, err := b.queryArg(tf, 0)
	if err != nil {
		return nil, fmt.Errorf("naive_bayes_train data: %w", err)
	}
	ds := data.Schema()
	if len(ds) < 2 {
		return nil, fmt.Errorf("naive_bayes_train: need at least one feature plus the label column")
	}
	for _, c := range ds[:len(ds)-1] {
		if !c.Type.IsNumeric() {
			return nil, fmt.Errorf("naive_bayes_train: feature %q is %s, need a numeric type", c.Name, c.Type)
		}
	}
	if ds[len(ds)-1].Type != types.Int64 {
		return nil, fmt.Errorf("naive_bayes_train: label column %q must be BIGINT", ds[len(ds)-1].Name)
	}
	return &NaiveBayesTrain{Data: data}, nil
}

func (b *Builder) buildNBPredict(tf *sql.TableFunc) (Node, error) {
	if len(tf.Args) != 2 {
		return nil, fmt.Errorf("naive_bayes_predict expects 2 subquery arguments, got %d", len(tf.Args))
	}
	model, err := b.queryArg(tf, 0)
	if err != nil {
		return nil, fmt.Errorf("naive_bayes_predict model: %w", err)
	}
	if !model.Schema().Equal(NBModelSchema) {
		return nil, fmt.Errorf("naive_bayes_predict: model schema must be %s, got %s",
			NBModelSchema, model.Schema())
	}
	data, err := b.queryArg(tf, 1)
	if err != nil {
		return nil, fmt.Errorf("naive_bayes_predict data: %w", err)
	}
	for _, c := range data.Schema() {
		if !c.Type.IsNumeric() {
			return nil, fmt.Errorf("naive_bayes_predict: feature %q is %s, need a numeric type", c.Name, c.Type)
		}
	}
	return &NaiveBayesPredict{Model: model, Data: data}, nil
}
