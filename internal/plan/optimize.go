package plan

import (
	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

// Fold performs constant folding on a resolved expression: any subtree that
// references no columns is evaluated once at plan time.
func Fold(e expr.Expr) expr.Expr {
	if e == nil {
		return nil
	}
	return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
		switch n.(type) {
		case *expr.Const, *expr.ColRef, *expr.ParamField:
			return n
		}
		if !expr.IsConst(n) {
			return n
		}
		v, err := expr.EvalConst(n)
		if err != nil {
			// Leave runtime errors (1/0, bad casts) to execution.
			return n
		}
		return &expr.Const{Val: v}
	})
}

// Optimize applies the rule-based optimizer: predicate pushdown and filter
// merging. As the paper observes (Section 5.2), selections cannot be pushed
// through analytical operators because their results depend on the whole
// input; pushdown therefore stops at Iterate, KMeans, PageRank, Naive
// Bayes, Aggregate, and RecursiveCTE boundaries. Cost-based decisions
// (join order, build sides, index scans) follow in OptimizeAccess, which
// BuildSelect runs right after — build-side swaps insert restoring
// Projects that would otherwise hide join trees from the reordering pass.
func Optimize(n Node) Node {
	// Two passes: filters freed by one rule (e.g. hoisted through a
	// projection) become candidates for the next (e.g. join pushdown).
	for i := 0; i < 2; i++ {
		n = rewriteTree(n, mergeFilters)
		n = rewriteTree(n, pushFilterThroughAlias)
		n = rewriteTree(n, pushFilterThroughProject)
		n = rewriteTree(n, pushFilterThroughJoin)
		n = rewriteTree(n, pushFilterThroughUnion)
		n = rewriteTree(n, mergeFilters)
	}
	n = rewriteTree(n, fuseTopK)
	return n
}

// fuseTopK turns Limit over Sort into a bounded top-k sort: the heap keeps
// offset+limit rows and the Limit node on top still applies the offset.
func fuseTopK(n Node) Node {
	l, ok := n.(*Limit)
	if !ok || l.N < 0 {
		return n
	}
	srt, ok := l.Child.(*Sort)
	if !ok || srt.TopK >= 0 {
		return n
	}
	srt.TopK = l.N + l.Offset
	return l
}

// pushFilterThroughAlias commutes Filter(Alias(x)) to Alias(Filter(x));
// aliasing changes qualifiers only, never column positions.
func pushFilterThroughAlias(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	a, ok := f.Child.(*Alias)
	if !ok {
		return n
	}
	a.Child = &Filter{Child: a.Child, Pred: f.Pred}
	return a
}

// pushFilterThroughProject moves a filter below a projection when every
// column the predicate references maps to a plain column reference in the
// projection (pure renames/reorders). Computed projection expressions are
// not substituted to avoid duplicating work.
func pushFilterThroughProject(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	p, ok := f.Child.(*Project)
	if !ok {
		return n
	}
	refs := map[int]bool{}
	expr.ReferencedColumns(f.Pred, refs)
	mapping := map[int]*expr.ColRef{}
	for idx := range refs {
		if idx >= len(p.Exprs) {
			return n
		}
		src, ok := p.Exprs[idx].(*expr.ColRef)
		if !ok {
			return n
		}
		mapping[idx] = src
	}
	newPred := expr.Rewrite(f.Pred, func(e expr.Expr) expr.Expr {
		if c, ok := e.(*expr.ColRef); ok && c.Index >= 0 {
			if src, ok := mapping[c.Index]; ok {
				cc := *src
				return &cc
			}
		}
		return e
	})
	p.Child = &Filter{Child: p.Child, Pred: newPred}
	return p
}

// rewriteTree applies fn bottom-up over the plan.
func rewriteTree(n Node, fn func(Node) Node) Node {
	switch t := n.(type) {
	case *Filter:
		t.Child = rewriteTree(t.Child, fn)
	case *Project:
		t.Child = rewriteTree(t.Child, fn)
	case *Alias:
		t.Child = rewriteTree(t.Child, fn)
	case *Shared:
		// Shared subtrees are visited once per reference; the rules are
		// idempotent, and filters never push across the Shared boundary,
		// so repeated application is safe.
		t.Child = rewriteTree(t.Child, fn)
	case *Join:
		t.L = rewriteTree(t.L, fn)
		t.R = rewriteTree(t.R, fn)
	case *Aggregate:
		t.Child = rewriteTree(t.Child, fn)
	case *Sort:
		t.Child = rewriteTree(t.Child, fn)
	case *Limit:
		t.Child = rewriteTree(t.Child, fn)
	case *Distinct:
		t.Child = rewriteTree(t.Child, fn)
	case *Union:
		t.L = rewriteTree(t.L, fn)
		t.R = rewriteTree(t.R, fn)
	case *RecursiveCTE:
		t.Init = rewriteTree(t.Init, fn)
		t.Rec = rewriteTree(t.Rec, fn)
	case *Iterate:
		t.Init = rewriteTree(t.Init, fn)
		t.Step = rewriteTree(t.Step, fn)
		t.Stop = rewriteTree(t.Stop, fn)
	case *KMeans:
		t.Data = rewriteTree(t.Data, fn)
		t.Centers = rewriteTree(t.Centers, fn)
	case *PageRank:
		t.Edges = rewriteTree(t.Edges, fn)
	case *NaiveBayesTrain:
		t.Data = rewriteTree(t.Data, fn)
	case *NaiveBayesPredict:
		t.Model = rewriteTree(t.Model, fn)
		t.Data = rewriteTree(t.Data, fn)
	}
	return fn(n)
}

// mergeFilters collapses Filter(Filter(x)) into a single conjunction and
// drops always-true predicates.
func mergeFilters(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	if c, ok := f.Pred.(*expr.Const); ok && !c.Val.Null && c.Val.T == types.Bool && c.Val.B {
		return f.Child
	}
	inner, ok := f.Child.(*Filter)
	if !ok {
		return f
	}
	return &Filter{
		Child: inner.Child,
		Pred: &expr.BinOp{Op: expr.OpAnd, L: inner.Pred, R: f.Pred,
			Typ: types.Bool},
	}
}

// pushFilterThroughJoin moves single-side conjuncts of a Filter above an
// inner or cross join down to the side they reference.
func pushFilterThroughJoin(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	j, ok := f.Child.(*Join)
	if !ok || j.Type == LeftJoin {
		// Pushing into the nullable side of an outer join changes
		// semantics; keep it simple and skip left joins entirely.
		return n
	}
	nl := len(j.L.Schema())
	var leftPreds, rightPreds, keep []expr.Expr
	for _, c := range splitConjuncts(f.Pred) {
		refs := map[int]bool{}
		expr.ReferencedColumns(c, refs)
		leftOnly, rightOnly := true, true
		for idx := range refs {
			if idx < nl {
				rightOnly = false
			} else {
				leftOnly = false
			}
		}
		switch {
		case leftOnly && len(refs) > 0:
			leftPreds = append(leftPreds, c)
		case rightOnly && len(refs) > 0:
			rightPreds = append(rightPreds, shiftColRefs(c, -nl))
		default:
			keep = append(keep, c)
		}
	}
	if len(leftPreds) == 0 && len(rightPreds) == 0 {
		return n
	}
	if p := combineConjuncts(leftPreds); p != nil {
		j.L = &Filter{Child: j.L, Pred: p}
	}
	if p := combineConjuncts(rightPreds); p != nil {
		j.R = &Filter{Child: j.R, Pred: p}
	}
	if p := combineConjuncts(keep); p != nil {
		return &Filter{Child: j, Pred: p}
	}
	return j
}

// shiftColRefs rebases resolved column indices by delta.
func shiftColRefs(e expr.Expr, delta int) expr.Expr {
	return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.ColRef); ok && c.Index >= 0 {
			cc := *c
			cc.Index += delta
			return &cc
		}
		return n
	})
}

// pushFilterThroughUnion duplicates a filter into both union branches.
func pushFilterThroughUnion(n Node) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	u, ok := f.Child.(*Union)
	if !ok {
		return n
	}
	u.L = &Filter{Child: u.L, Pred: f.Pred}
	u.R = &Filter{Child: u.R, Pred: clone(f.Pred)}
	return u
}

func clone(e expr.Expr) expr.Expr {
	return expr.Rewrite(e, func(n expr.Expr) expr.Expr { return n })
}

// chooseBuildSide swaps hash-join inputs so the smaller side is the build
// side (the executor builds on the left).
func chooseBuildSide(n Node) Node {
	j, ok := n.(*Join)
	if !ok || j.Type != InnerJoin || len(j.EquiLeft) == 0 {
		return n
	}
	if j.L.Card() <= j.R.Card() {
		return n
	}
	nl := len(j.L.Schema())
	nr := len(j.R.Schema())
	swapped := &Join{
		Type: InnerJoin, L: j.R, R: j.L,
		EquiLeft: j.EquiRight, EquiRight: j.EquiLeft,
	}
	if j.Residual != nil {
		swapped.Residual = remapAcrossSwap(j.Residual, nl, nr)
	}
	if j.On != nil {
		swapped.On = remapAcrossSwap(j.On, nl, nr)
	}
	// Restore the original column order on top.
	schema := j.Schema()
	exprs := make([]expr.Expr, len(schema))
	names := make([]string, len(schema))
	for i := range schema {
		src := i + nr // original left columns now live after the right's
		if i >= nl {
			src = i - nl // original right columns now lead
		}
		exprs[i] = &expr.ColRef{Name: schema[i].Name, Index: src, Typ: schema[i].Type}
		names[i] = schema[i].Name
	}
	return &Project{Child: swapped, Exprs: exprs, Names: names}
}

// remapAcrossSwap rewrites column indices for a swapped join: old left
// columns [0,nl) move to [nr, nr+nl), old right columns [nl, nl+nr) move to
// [0, nr).
func remapAcrossSwap(e expr.Expr, nl, nr int) expr.Expr {
	return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
		c, ok := n.(*expr.ColRef)
		if !ok || c.Index < 0 {
			return n
		}
		cc := *c
		if c.Index < nl {
			cc.Index = c.Index + nr
		} else {
			cc.Index = c.Index - nl
		}
		return &cc
	})
}
