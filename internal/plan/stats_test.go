package plan

import (
	"testing"

	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// statsTable creates a single-column BIGINT table and inserts the given
// values.
func statsTable(t *testing.T, vals []types.Value) (*storage.Store, *storage.Table) {
	t.Helper()
	s := storage.NewStore()
	tbl, err := s.CreateTable("st", types.Schema{{Name: "a", Type: types.Int64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) > 0 {
		tx := s.Begin()
		b := types.NewBatch(tbl.Schema())
		for _, v := range vals {
			b.AppendRow([]types.Value{v})
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return s, tbl
}

func TestCollectStatsEmptyTable(t *testing.T) {
	s, tbl := statsTable(t, nil)
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if ts.RowCount != 0 {
		t.Fatalf("RowCount = %d, want 0", ts.RowCount)
	}
	cs := ts.Cols[0]
	if cs.NDV != 0 || !cs.Min.Null || !cs.Max.Null || len(cs.Hist) != 0 {
		t.Fatalf("empty table stats = %+v", cs)
	}
	// No divisions by zero; estimates are simply zero.
	if sel := ts.EqSelectivity("a"); sel != 0 {
		t.Fatalf("EqSelectivity = %v, want 0", sel)
	}
	lo := types.NewInt(1)
	if sel := ts.RangeSelectivity("a", &lo, nil); sel != 0 {
		t.Fatalf("RangeSelectivity = %v, want 0", sel)
	}
}

func TestCollectStatsAllNullColumn(t *testing.T) {
	vals := make([]types.Value, 50)
	for i := range vals {
		vals[i] = types.NewNull(types.Int64)
	}
	s, tbl := statsTable(t, vals)
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Cols[0]
	if cs.NullCount != 50 || cs.NDV != 0 || !cs.Min.Null || !cs.Max.Null {
		t.Fatalf("all-NULL stats = %+v", cs)
	}
	if sel := ts.EqSelectivity("a"); sel != 0 {
		t.Fatalf("EqSelectivity = %v, want 0 (no non-NULL rows match equality)", sel)
	}
}

func TestCollectStatsSingleValueColumn(t *testing.T) {
	vals := make([]types.Value, 40)
	for i := range vals {
		vals[i] = types.NewInt(7)
	}
	s, tbl := statsTable(t, vals)
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Cols[0]
	if cs.NDV != 1 {
		t.Fatalf("NDV = %d, want 1", cs.NDV)
	}
	if cs.Min.I != 7 || cs.Max.I != 7 {
		t.Fatalf("Min/Max = %v/%v, want 7/7", cs.Min, cs.Max)
	}
	if sel := ts.EqSelectivity("a"); sel != 1 {
		t.Fatalf("EqSelectivity = %v, want 1", sel)
	}
	// A range containing the single point matches everything; min==max must
	// not divide by a zero width.
	lo, hi := types.NewInt(0), types.NewInt(10)
	if sel := ts.RangeSelectivity("a", &lo, &hi); sel != 1 {
		t.Fatalf("RangeSelectivity = %v, want 1", sel)
	}
	// A disjoint range matches nothing.
	lo2 := types.NewInt(100)
	if sel := ts.RangeSelectivity("a", &lo2, nil); sel != 0 {
		t.Fatalf("disjoint RangeSelectivity = %v, want 0", sel)
	}
}

func TestCollectStatsUniformColumn(t *testing.T) {
	vals := make([]types.Value, 100)
	for i := range vals {
		vals[i] = types.NewInt(int64(i))
	}
	s, tbl := statsTable(t, vals)
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Cols[0]
	if cs.NDV != 100 {
		t.Fatalf("NDV = %d, want 100", cs.NDV)
	}
	if cs.Min.I != 0 || cs.Max.I != 99 {
		t.Fatalf("Min/Max = %v/%v, want 0/99", cs.Min, cs.Max)
	}
	if len(cs.Hist) != histBuckets {
		t.Fatalf("histogram size = %d, want %d", len(cs.Hist), histBuckets)
	}
	if sel := ts.EqSelectivity("a"); sel != 0.01 {
		t.Fatalf("EqSelectivity = %v, want 0.01", sel)
	}
	// ~10% of rows fall in [0, 9]; the histogram estimate should be close.
	lo, hi := types.NewInt(0), types.NewInt(9)
	if sel := ts.RangeSelectivity("a", &lo, &hi); sel < 0.03 || sel > 0.25 {
		t.Fatalf("RangeSelectivity([0,9]) = %v, want ~0.1", sel)
	}
	// Unbounded range covers everything.
	if sel := ts.RangeSelectivity("a", nil, nil); sel != 1 {
		t.Fatalf("RangeSelectivity(nil,nil) = %v, want 1", sel)
	}
}

func TestCollectStatsMixedNulls(t *testing.T) {
	var vals []types.Value
	for i := 0; i < 30; i++ {
		vals = append(vals, types.NewInt(int64(i%3)))
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, types.NewNull(types.Int64))
	}
	s, tbl := statsTable(t, vals)
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Cols[0]
	if cs.NullCount != 10 || cs.NDV != 3 {
		t.Fatalf("NullCount/NDV = %d/%d, want 10/3", cs.NullCount, cs.NDV)
	}
	// Equality matches 30/40 non-NULL rows spread over 3 values: 0.25.
	if sel := ts.EqSelectivity("a"); sel != 0.25 {
		t.Fatalf("EqSelectivity = %v, want 0.25", sel)
	}
}

func TestStatsUnknownColumnFallsBack(t *testing.T) {
	s, tbl := statsTable(t, []types.Value{types.NewInt(1)})
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if sel := ts.EqSelectivity("nope"); sel != 0.1 {
		t.Fatalf("unknown column EqSelectivity = %v, want heuristic 0.1", sel)
	}
	if sel := ts.RangeSelectivity("nope", nil, nil); sel != 0.3 {
		t.Fatalf("unknown column RangeSelectivity = %v, want heuristic 0.3", sel)
	}
}
