package plan

import (
	"fmt"
	"strings"

	"lambdadb/internal/catalog"
	"lambdadb/internal/expr"
	"lambdadb/internal/sql"
	"lambdadb/internal/types"
)

// Alias renames the qualifier of its child's columns (FROM ... AS alias).
type Alias struct {
	Child Node
	Name  string
}

func (a *Alias) Schema() types.Schema { return a.Child.Schema() }
func (a *Alias) Quals() []string      { return uniformQuals(len(a.Child.Schema()), a.Name) }
func (a *Alias) Card() float64        { return a.Child.Card() }
func (a *Alias) Children() []Node     { return []Node{a.Child} }
func (a *Alias) Explain() string      { return fmt.Sprintf("Alias %s", a.Name) }

// Builder translates parsed SQL queries into logical plans.
type Builder struct {
	Catalog  catalog.Catalog
	Snapshot uint64
	// MaxDepth bounds ITERATE / recursive-CTE rounds in the plans this
	// builder produces (runaway-loop protection); NewBuilder sets the
	// default, engines may lower it per deployment.
	MaxDepth int
	// Stats supplies ANALYZE-collected table statistics to the cost-based
	// access pass; nil means plan on shape heuristics and index metadata.
	Stats StatsProvider

	ctes map[string]*cteBinding
}

type cteBinding struct {
	node    Node // plan inlined at each reference (non-working bindings)
	working bool // true inside a recursive CTE / ITERATE definition
	schema  types.Schema
	name    string
}

// NewBuilder returns a Builder reading at the given snapshot.
func NewBuilder(cat catalog.Catalog, snapshot uint64) *Builder {
	return &Builder{Catalog: cat, Snapshot: snapshot, MaxDepth: defaultMaxDepth,
		ctes: map[string]*cteBinding{}}
}

// defaultMaxDepth bounds iterate/recursive executions; the paper notes the
// system must detect and abort runaway loops.
const defaultMaxDepth = 1_000_000

// maxDepth returns the builder's iteration bound, defending against
// zero-valued Builders constructed without NewBuilder.
func (b *Builder) maxDepth() int {
	if b.MaxDepth > 0 {
		return b.MaxDepth
	}
	return defaultMaxDepth
}

// BuildSelect plans a full SELECT statement, applying the rule-based
// optimizer followed by the cost-based access pass (join order, build
// sides, index scans).
func (b *Builder) BuildSelect(sel *sql.Select) (Node, error) {
	n, err := b.buildSelect(sel)
	if err != nil {
		return nil, err
	}
	return OptimizeAccess(Optimize(n), b.Stats), nil
}

func (b *Builder) buildSelect(sel *sql.Select) (Node, error) {
	// Register CTE bindings; restore the previous scope when done.
	saved := map[string]*cteBinding{}
	defer func() {
		for name, old := range saved {
			if old == nil {
				delete(b.ctes, name)
			} else {
				b.ctes[name] = old
			}
		}
	}()
	for _, cte := range sel.With {
		saved[cte.Name] = b.ctes[cte.Name]
		node, err := b.buildCTE(cte)
		if err != nil {
			return nil, err
		}
		// Materialize each CTE once per execution epoch; subtrees that read
		// no working table are loop-invariant and cached across iterations.
		shared := &Shared{Child: node, Invariant: !ContainsWorkingScan(node)}
		b.ctes[cte.Name] = &cteBinding{node: shared, schema: node.Schema(), name: cte.Name}
	}

	node, err := b.buildQueryExpr(sel.Body)
	if err != nil {
		return nil, err
	}

	if len(sel.OrderBy) > 0 {
		keys, err := b.resolveOrderBy(sel.OrderBy, node)
		if err != nil {
			return nil, err
		}
		node = &Sort{Child: node, Keys: keys, TopK: -1}
	}

	if sel.Limit != nil || sel.Offset != nil {
		lim := &Limit{Child: node, N: -1}
		if sel.Limit != nil {
			v, err := b.constInt(sel.Limit, "LIMIT")
			if err != nil {
				return nil, err
			}
			lim.N = v
		}
		if sel.Offset != nil {
			v, err := b.constInt(sel.Offset, "OFFSET")
			if err != nil {
				return nil, err
			}
			lim.Offset = v
		}
		node = lim
	}
	return node, nil
}

func (b *Builder) constInt(e expr.Expr, what string) (int64, error) {
	r, err := expr.Resolve(e, expr.NewResolveCtx(nil, ""))
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	v, err := expr.EvalConst(r)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	if v.Null || !v.T.IsNumeric() {
		return 0, fmt.Errorf("%s must be a numeric constant", what)
	}
	return v.AsInt(), nil
}

// buildCTE plans one WITH entry. Recursive CTEs must have the SQL:1999
// shape `initial UNION [ALL] recursive`.
func (b *Builder) buildCTE(cte sql.CTE) (Node, error) {
	if !cte.Recursive {
		node, err := b.buildSelect(cte.Query)
		if err != nil {
			return nil, fmt.Errorf("CTE %s: %w", cte.Name, err)
		}
		return b.applyCTEColumns(node, cte)
	}
	setop, ok := cte.Query.Body.(*sql.SetOp)
	if !ok {
		return nil, fmt.Errorf("recursive CTE %s must be `initial UNION [ALL] recursive`", cte.Name)
	}
	init, err := b.buildQueryExpr(setop.L)
	if err != nil {
		return nil, fmt.Errorf("recursive CTE %s (initial): %w", cte.Name, err)
	}
	initSchema := init.Schema()
	if len(cte.Columns) > 0 {
		if len(cte.Columns) != len(initSchema) {
			return nil, fmt.Errorf("recursive CTE %s: %d column aliases for %d columns",
				cte.Name, len(cte.Columns), len(initSchema))
		}
		renamed := make(types.Schema, len(initSchema))
		for i := range initSchema {
			renamed[i] = types.ColumnInfo{Name: cte.Columns[i], Type: initSchema[i].Type}
		}
		init = renameColumns(init, cte.Columns)
		initSchema = renamed
	}

	// Plan the recursive term with the CTE name bound to the working table.
	savedBinding := b.ctes[cte.Name]
	b.ctes[cte.Name] = &cteBinding{working: true, schema: initSchema, name: cte.Name}
	rec, err := b.buildQueryExpr(setop.R)
	if savedBinding == nil {
		delete(b.ctes, cte.Name)
	} else {
		b.ctes[cte.Name] = savedBinding
	}
	if err != nil {
		return nil, fmt.Errorf("recursive CTE %s (recursive term): %w", cte.Name, err)
	}
	rec, err = conformSchema(rec, initSchema)
	if err != nil {
		return nil, fmt.Errorf("recursive CTE %s: %w", cte.Name, err)
	}
	return &RecursiveCTE{Name: cte.Name, Init: init, Rec: rec, All: setop.All,
		MaxDepth: b.maxDepth()}, nil
}

func (b *Builder) applyCTEColumns(node Node, cte sql.CTE) (Node, error) {
	if len(cte.Columns) == 0 {
		return node, nil
	}
	if len(cte.Columns) != len(node.Schema()) {
		return nil, fmt.Errorf("CTE %s: %d column aliases for %d columns",
			cte.Name, len(cte.Columns), len(node.Schema()))
	}
	return renameColumns(node, cte.Columns), nil
}

// renameColumns wraps node in a Project that renames output columns.
func renameColumns(node Node, names []string) Node {
	schema := node.Schema()
	exprs := make([]expr.Expr, len(schema))
	for i, c := range schema {
		exprs[i] = &expr.ColRef{Name: c.Name, Index: i, Typ: c.Type}
	}
	return &Project{Child: node, Exprs: exprs, Names: append([]string{}, names...)}
}

// conformSchema makes node's output type-compatible with want, inserting
// numeric casts where needed.
func conformSchema(node Node, want types.Schema) (Node, error) {
	have := node.Schema()
	if len(have) != len(want) {
		return nil, fmt.Errorf("branch has %d columns, expected %d", len(have), len(want))
	}
	needProject := false
	exprs := make([]expr.Expr, len(have))
	names := make([]string, len(have))
	for i := range have {
		ref := expr.Expr(&expr.ColRef{Name: have[i].Name, Index: i, Typ: have[i].Type})
		names[i] = want[i].Name
		if have[i].Type != want[i].Type {
			if !(have[i].Type.IsNumeric() && want[i].Type.IsNumeric()) {
				return nil, fmt.Errorf("column %d: cannot unify %s with %s",
					i+1, have[i].Type, want[i].Type)
			}
			ref = &expr.Cast{E: ref, To: want[i].Type}
			needProject = true
		}
		if have[i].Name != want[i].Name {
			needProject = true
		}
		exprs[i] = ref
	}
	if !needProject {
		return node, nil
	}
	return &Project{Child: node, Exprs: exprs, Names: names}, nil
}

func (b *Builder) buildQueryExpr(q sql.QueryExpr) (Node, error) {
	switch n := q.(type) {
	case *sql.SelectCore:
		return b.buildCore(n)
	case *sql.SetOp:
		l, err := b.buildQueryExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := b.buildQueryExpr(n.R)
		if err != nil {
			return nil, err
		}
		// Unify branch schemas on the left's column names, widening
		// numerics as needed.
		lSchema := l.Schema()
		rSchema := r.Schema()
		if len(lSchema) != len(rSchema) {
			return nil, fmt.Errorf("UNION branches have %d and %d columns",
				len(lSchema), len(rSchema))
		}
		unified := make(types.Schema, len(lSchema))
		for i := range lSchema {
			t := lSchema[i].Type
			if rSchema[i].Type != t {
				if !(t.IsNumeric() && rSchema[i].Type.IsNumeric()) {
					return nil, fmt.Errorf("UNION column %d: cannot unify %s with %s",
						i+1, t, rSchema[i].Type)
				}
				t = types.Float64
			}
			unified[i] = types.ColumnInfo{Name: lSchema[i].Name, Type: t}
		}
		if l, err = conformSchema(l, unified); err != nil {
			return nil, err
		}
		if r, err = conformSchema(r, unified); err != nil {
			return nil, err
		}
		return &Union{L: l, R: r, All: n.All}, nil
	}
	return nil, fmt.Errorf("unsupported query expression %T", q)
}

// dummyInput is the implicit one-row input of a FROM-less SELECT.
func dummyInput() Node {
	return &Values{
		Sch:  types.Schema{{Name: "$dummy", Type: types.Int64}},
		Rows: [][]types.Value{{types.NewInt(0)}},
	}
}

func (b *Builder) buildCore(core *sql.SelectCore) (Node, error) {
	var node Node
	if core.From != nil {
		n, err := b.buildTableRef(core.From)
		if err != nil {
			return nil, err
		}
		node = n
	} else {
		node = dummyInput()
	}
	inputCtx := &expr.ResolveCtx{Schema: node.Schema(), Quals: node.Quals()}

	if core.Where != nil {
		pred, err := expr.Resolve(core.Where, inputCtx)
		if err != nil {
			return nil, fmt.Errorf("WHERE: %w", err)
		}
		if pred.Type() != types.Bool {
			return nil, fmt.Errorf("WHERE must be boolean, got %s", pred.Type())
		}
		if expr.IsAggregate(pred) {
			return nil, fmt.Errorf("aggregates are not allowed in WHERE")
		}
		node = &Filter{Child: node, Pred: Fold(pred)}
	}

	// Expand stars and resolve the select list.
	items, names, err := b.resolveItems(core, inputCtx)
	if err != nil {
		return nil, err
	}

	hasAgg := len(core.GroupBy) > 0 || core.Having != nil
	for _, it := range items {
		if expr.IsAggregate(it) {
			hasAgg = true
		}
	}

	if !hasAgg {
		node = &Project{Child: node, Exprs: foldAll(items), Names: names}
	} else {
		n, err := b.buildAggregate(core, node, inputCtx, items, names)
		if err != nil {
			return nil, err
		}
		node = n
	}

	if core.Distinct {
		node = &Distinct{Child: node}
	}
	return node, nil
}

func foldAll(es []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = Fold(e)
	}
	return out
}

// resolveItems expands stars and resolves all projection expressions.
func (b *Builder) resolveItems(core *sql.SelectCore, ctx *expr.ResolveCtx) ([]expr.Expr, []string, error) {
	var items []expr.Expr
	var names []string
	for _, it := range core.Items {
		switch {
		case it.Star:
			for i, c := range ctx.Schema {
				if strings.HasPrefix(c.Name, "$") {
					continue // hidden dummy columns
				}
				items = append(items, &expr.ColRef{Name: c.Name, Index: i, Typ: c.Type})
				names = append(names, c.Name)
			}
		case it.TableStar != "":
			found := false
			for i, c := range ctx.Schema {
				if strings.EqualFold(ctx.Quals[i], it.TableStar) {
					items = append(items, &expr.ColRef{Name: c.Name, Index: i, Typ: c.Type})
					names = append(names, c.Name)
					found = true
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("unknown table %q in %s.*", it.TableStar, it.TableStar)
			}
		default:
			e, err := expr.Resolve(it.Expr, ctx)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, e)
			names = append(names, itemName(it))
		}
	}
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("empty select list")
	}
	return items, names, nil
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*expr.ColRef); ok {
		return c.Name
	}
	if f, ok := it.Expr.(*expr.FuncCall); ok {
		return f.Name
	}
	return it.Expr.String()
}

// buildAggregate plans GROUP BY / HAVING / aggregate select lists: an
// Aggregate node computing keys and aggregates, then a Project (and
// optional HAVING Filter) on top.
func (b *Builder) buildAggregate(core *sql.SelectCore, child Node,
	ctx *expr.ResolveCtx, items []expr.Expr, names []string) (Node, error) {

	keys := make([]expr.Expr, 0, len(core.GroupBy))
	keyNames := make([]string, 0, len(core.GroupBy))
	for _, g := range core.GroupBy {
		k, err := expr.Resolve(g, ctx)
		if err != nil {
			return nil, fmt.Errorf("GROUP BY: %w", err)
		}
		if expr.IsAggregate(k) {
			return nil, fmt.Errorf("aggregates are not allowed in GROUP BY")
		}
		keys = append(keys, Fold(k))
		name := k.String()
		if c, ok := k.(*expr.ColRef); ok {
			name = c.Name
		}
		keyNames = append(keyNames, name)
	}

	agg := &Aggregate{Child: child, Keys: keys, KeyNames: keyNames}

	var having expr.Expr
	if core.Having != nil {
		h, err := expr.Resolve(core.Having, ctx)
		if err != nil {
			return nil, fmt.Errorf("HAVING: %w", err)
		}
		if h.Type() != types.Bool {
			return nil, fmt.Errorf("HAVING must be boolean, got %s", h.Type())
		}
		having = h
	}

	// Rewrite post-aggregation expressions: aggregate calls become
	// references to aggregate outputs; group-key expressions become
	// references to key outputs; any other column reference is an error.
	rewrite := func(e expr.Expr) (expr.Expr, error) {
		var rerr error
		out := expr.Rewrite(e, func(n expr.Expr) expr.Expr {
			if rerr != nil {
				return n
			}
			// Group-key match (structural, by string form).
			for ki, k := range keys {
				if n.String() == k.String() && n.Type() == k.Type() {
					return &expr.ColRef{Name: keyNames[ki], Index: ki, Typ: k.Type()}
				}
			}
			if f, ok := n.(*expr.FuncCall); ok && expr.AggregateFuncs[f.Name] {
				spec, err := aggSpecFor(f)
				if err != nil {
					rerr = err
					return n
				}
				// Deduplicate identical aggregates.
				for gi, g := range agg.Aggs {
					if g.Name == spec.Name {
						return &expr.ColRef{Name: g.Name, Index: len(keys) + gi, Typ: g.Type}
					}
				}
				agg.Aggs = append(agg.Aggs, spec)
				return &expr.ColRef{Name: spec.Name,
					Index: len(keys) + len(agg.Aggs) - 1, Typ: spec.Type}
			}
			return n
		})
		if rerr != nil {
			return nil, rerr
		}
		// Validate: any remaining ColRef must point into the aggregate's
		// output (index < len(keys)+len(aggs)); references that survived
		// with input indices are non-grouped columns.
		aggSchema := agg.Schema()
		var bad expr.Expr
		expr.Walk(out, func(n expr.Expr) bool {
			if c, ok := n.(*expr.ColRef); ok {
				if c.Index >= len(aggSchema) || aggSchema[c.Index].Name != c.Name {
					bad = c
					return false
				}
			}
			return true
		})
		if bad != nil {
			return nil, fmt.Errorf("column %s must appear in GROUP BY or inside an aggregate", bad)
		}
		return out, nil
	}

	outExprs := make([]expr.Expr, len(items))
	for i, it := range items {
		e, err := rewrite(it)
		if err != nil {
			return nil, err
		}
		outExprs[i] = Fold(e)
	}
	var havingRewritten expr.Expr
	if having != nil {
		h, err := rewrite(having)
		if err != nil {
			return nil, err
		}
		havingRewritten = Fold(h)
	}

	var node Node = agg
	if havingRewritten != nil {
		node = &Filter{Child: node, Pred: havingRewritten}
	}
	return &Project{Child: node, Exprs: outExprs, Names: names}, nil
}

// aggSpecFor converts a resolved aggregate FuncCall into an AggSpec.
func aggSpecFor(f *expr.FuncCall) (AggSpec, error) {
	spec := AggSpec{Type: f.Typ, Name: f.String()}
	switch {
	case f.Star:
		spec.Func = AggCountStar
	case f.Name == "count":
		spec.Func, spec.Arg = AggCount, f.Args[0]
	case f.Name == "sum":
		spec.Func, spec.Arg = AggSum, f.Args[0]
	case f.Name == "avg":
		spec.Func, spec.Arg = AggAvg, f.Args[0]
	case f.Name == "stddev":
		spec.Func, spec.Arg = AggStddev, f.Args[0]
	case f.Name == "variance":
		spec.Func, spec.Arg = AggVariance, f.Args[0]
	case f.Name == "min":
		spec.Func, spec.Arg = AggMin, f.Args[0]
	case f.Name == "max":
		spec.Func, spec.Arg = AggMax, f.Args[0]
	default:
		return spec, fmt.Errorf("unknown aggregate %q", f.Name)
	}
	if spec.Arg != nil && expr.IsAggregate(spec.Arg) {
		return spec, fmt.Errorf("nested aggregates are not allowed")
	}
	return spec, nil
}

// resolveOrderBy binds ORDER BY items to output columns: by name/alias or
// by 1-based position.
func (b *Builder) resolveOrderBy(items []sql.OrderItem, node Node) ([]SortKey, error) {
	schema := node.Schema()
	keys := make([]SortKey, 0, len(items))
	for _, it := range items {
		var col = -1
		switch e := it.Expr.(type) {
		case *expr.Const:
			if e.Val.T == types.Int64 {
				pos := int(e.Val.I)
				if pos < 1 || pos > len(schema) {
					return nil, fmt.Errorf("ORDER BY position %d out of range", pos)
				}
				col = pos - 1
			}
		case *expr.ColRef:
			idx := schema.IndexOf(e.Name)
			if idx < 0 {
				return nil, fmt.Errorf("ORDER BY: unknown output column %q", e.Name)
			}
			col = idx
		}
		if col < 0 {
			return nil, fmt.Errorf("ORDER BY supports output columns and positions, got %s", it.Expr)
		}
		keys = append(keys, SortKey{Col: col, Desc: it.Desc})
	}
	return keys, nil
}
