package plan

import (
	"strings"
	"testing"

	"lambdadb/internal/expr"
	"lambdadb/internal/sql"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// testStore builds a catalog with two tables: t(a BIGINT, b DOUBLE, s
// VARCHAR) with 100 rows and u(a BIGINT, v DOUBLE) with 10 rows.
func testStore(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	tt, err := s.CreateTable("t", types.Schema{
		{Name: "a", Type: types.Int64},
		{Name: "b", Type: types.Float64},
		{Name: "s", Type: types.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	uu, err := s.CreateTable("u", types.Schema{
		{Name: "a", Type: types.Int64},
		{Name: "v", Type: types.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	fill := func(tbl *storage.Table, n int) {
		tx := s.Begin()
		b := types.NewBatch(tbl.Schema())
		for i := 0; i < n; i++ {
			row := make([]types.Value, len(tbl.Schema()))
			for j, c := range tbl.Schema() {
				switch c.Type {
				case types.Int64:
					row[j] = types.NewInt(int64(i))
				case types.Float64:
					row[j] = types.NewFloat(float64(i))
				default:
					row[j] = types.NewString("x")
				}
			}
			b.AppendRow(row)
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	fill(tt, 100)
	fill(uu, 10)
	return s
}

func buildPlan(t *testing.T, s *storage.Store, q string) Node {
	t.Helper()
	st, err := sql.ParseOne(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := NewBuilder(s, s.Snapshot())
	n, err := b.BuildSelect(st.(*sql.Select))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return n
}

func TestFoldConstants(t *testing.T) {
	e := &expr.BinOp{Op: expr.OpMul, Typ: types.Int64,
		L: &expr.Const{Val: types.NewInt(6)},
		R: &expr.Const{Val: types.NewInt(7)}}
	got := Fold(e)
	c, ok := got.(*expr.Const)
	if !ok || c.Val.I != 42 {
		t.Errorf("Fold = %v", got)
	}
}

func TestFoldLeavesRuntimeErrors(t *testing.T) {
	// Integer modulo by zero must survive folding and fail at runtime.
	e := &expr.BinOp{Op: expr.OpMod, Typ: types.Int64,
		L: &expr.Const{Val: types.NewInt(1)},
		R: &expr.Const{Val: types.NewInt(0)}}
	if _, ok := Fold(e).(*expr.Const); ok {
		t.Error("1 % 0 should not fold to a constant")
	}
}

func TestFoldPartial(t *testing.T) {
	// a + (2*3) folds the right subtree only.
	e := &expr.BinOp{Op: expr.OpAdd, Typ: types.Int64,
		L: &expr.ColRef{Name: "a", Index: 0, Typ: types.Int64},
		R: &expr.BinOp{Op: expr.OpMul, Typ: types.Int64,
			L: &expr.Const{Val: types.NewInt(2)},
			R: &expr.Const{Val: types.NewInt(3)}}}
	got := Fold(e).(*expr.BinOp)
	if c, ok := got.R.(*expr.Const); !ok || c.Val.I != 6 {
		t.Errorf("right subtree = %v", got.R)
	}
	if _, ok := got.L.(*expr.ColRef); !ok {
		t.Errorf("left subtree = %v", got.L)
	}
}

func TestPushdownThroughJoin(t *testing.T) {
	s := testStore(t)
	n := buildPlan(t, s, `SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 5 AND u.v < 3`)
	tree := ExplainTree(n)
	// Both single-side predicates must sit below the join.
	idxJoin := strings.Index(tree, "Join")
	if idxJoin < 0 {
		t.Fatalf("no join in plan:\n%s", tree)
	}
	for _, frag := range []string{"(t.b > 5)", "(u.v < 3)"} {
		at := strings.Index(tree, frag)
		if at < 0 {
			t.Fatalf("predicate %s missing:\n%s", frag, tree)
		}
		if at < idxJoin {
			t.Errorf("predicate %s above the join:\n%s", frag, tree)
		}
	}
}

func TestPushdownSkipsLeftJoin(t *testing.T) {
	s := testStore(t)
	n := buildPlan(t, s, `SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE u.v < 3`)
	tree := ExplainTree(n)
	// The filter must stay above the left join (pushing would change
	// NULL-extension semantics).
	filterAt := strings.Index(tree, "Filter")
	joinAt := strings.Index(tree, "LeftJoin")
	if filterAt < 0 || joinAt < 0 {
		t.Fatalf("plan missing nodes:\n%s", tree)
	}
	if filterAt > joinAt {
		t.Errorf("filter pushed below left join:\n%s", tree)
	}
}

func TestBuildSideSwap(t *testing.T) {
	s := testStore(t)
	// t (100 rows) JOIN u (10 rows): the optimizer must put u on the build
	// (left) side and restore column order with a projection.
	n := buildPlan(t, s, `SELECT t.a, u.v FROM t JOIN u ON t.a = u.a`)
	var join *Join
	var walk func(Node)
	walk = func(n Node) {
		if j, ok := n.(*Join); ok {
			join = j
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if join == nil {
		t.Fatalf("no join:\n%s", ExplainTree(n))
	}
	if ls, ok := join.L.(*Scan); !ok || ls.Alias != "u" {
		t.Errorf("build side should be u:\n%s", ExplainTree(n))
	}
}

func TestEquiKeyExtraction(t *testing.T) {
	s := testStore(t)
	n := buildPlan(t, s, `SELECT t.a FROM u JOIN t ON u.a = t.a AND u.v < t.b`)
	var join *Join
	var walk func(Node)
	walk = func(n Node) {
		if j, ok := n.(*Join); ok && join == nil {
			join = j
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if join == nil {
		t.Fatal("no join")
	}
	if len(join.EquiLeft) != 1 || len(join.EquiRight) != 1 {
		t.Errorf("equi keys = %v / %v", join.EquiLeft, join.EquiRight)
	}
	if join.Residual == nil {
		t.Error("residual predicate missing")
	}
}

func TestSchemaOfAggregate(t *testing.T) {
	s := testStore(t)
	n := buildPlan(t, s, `SELECT s, count(*) AS c, sum(b) AS total FROM t GROUP BY s`)
	schema := n.Schema()
	want := types.Schema{
		{Name: "s", Type: types.String},
		{Name: "c", Type: types.Int64},
		{Name: "total", Type: types.Float64},
	}
	if !schema.Equal(want) {
		t.Errorf("schema = %v, want %v", schema, want)
	}
}

func TestCardinalityEstimates(t *testing.T) {
	s := testStore(t)
	scanCard := buildPlan(t, s, `SELECT a FROM t`).Card()
	if scanCard != 100 {
		t.Errorf("scan card = %v", scanCard)
	}
	filterCard := buildPlan(t, s, `SELECT a FROM t WHERE a = 1`).Card()
	if filterCard >= scanCard {
		t.Errorf("filter card %v should shrink below %v", filterCard, scanCard)
	}
	limitCard := buildPlan(t, s, `SELECT a FROM t LIMIT 5`).Card()
	if limitCard != 5 {
		t.Errorf("limit card = %v", limitCard)
	}
}

func TestMergeAdjacentFilters(t *testing.T) {
	s := testStore(t)
	// Subquery filter + outer filter collapse into one Filter node.
	n := buildPlan(t, s, `SELECT a FROM (SELECT a FROM t WHERE a > 1) q WHERE a < 9`)
	tree := ExplainTree(n)
	if strings.Count(tree, "Filter") != 1 {
		t.Errorf("filters not merged:\n%s", tree)
	}
}

func TestUnknownTableError(t *testing.T) {
	s := testStore(t)
	st, _ := sql.ParseOne(`SELECT * FROM missing`)
	b := NewBuilder(s, s.Snapshot())
	if _, err := b.BuildSelect(st.(*sql.Select)); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestIteratePlanShape(t *testing.T) {
	s := testStore(t)
	n := buildPlan(t, s, `SELECT * FROM ITERATE (
		(SELECT 1 "x"), (SELECT x + 1 FROM iterate), (SELECT x FROM iterate WHERE x > 5))`)
	// Unwrap Project on top.
	var it *Iterate
	var walk func(Node)
	walk = func(n Node) {
		if i, ok := n.(*Iterate); ok {
			it = i
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if it == nil {
		t.Fatalf("no Iterate node:\n%s", ExplainTree(n))
	}
	if it.MaxDepth <= 0 {
		t.Error("MaxDepth must be positive (runaway protection)")
	}
	if len(it.Schema()) != 1 || it.Schema()[0].Name != "x" {
		t.Errorf("iterate schema = %v", it.Schema())
	}
}

func TestKMeansPlanValidation(t *testing.T) {
	s := testStore(t)
	// String column in the data input must be rejected at plan time.
	st, _ := sql.ParseOne(`SELECT * FROM KMEANS ((SELECT a, s FROM t), (SELECT a, v FROM u), 3)`)
	b := NewBuilder(s, s.Snapshot())
	if _, err := b.BuildSelect(st.(*sql.Select)); err == nil ||
		!strings.Contains(err.Error(), "numeric") {
		t.Errorf("expected numeric-type error, got %v", err)
	}
}

func TestExplainTreeIndentation(t *testing.T) {
	s := testStore(t)
	tree := ExplainTree(buildPlan(t, s, `SELECT a FROM t WHERE a > 1`))
	lines := strings.Split(strings.TrimSpace(tree), "\n")
	if len(lines) < 3 {
		t.Fatalf("tree = %q", tree)
	}
	if !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("children not indented:\n%s", tree)
	}
}
