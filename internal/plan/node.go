// Package plan implements the logical query planner: translation of parsed
// SQL into a tree of logical operators, name resolution, and rule-based
// optimization (constant folding, predicate pushdown, build-side choice).
//
// Analytical operators (k-Means, PageRank, Naive Bayes) and the paper's
// ITERATE construct are first-class plan nodes, so the optimizer sees them
// exactly as Figure 3 of the paper describes: one plan mixing relational
// and analytical operators.
package plan

import (
	"fmt"
	"strings"

	"lambdadb/internal/catalog"
	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

// Node is a logical plan operator.
type Node interface {
	// Schema is the output column layout.
	Schema() types.Schema
	// Quals returns the table qualifier of each output column ("" if none);
	// used when resolving references in enclosing scopes.
	Quals() []string
	// Card estimates output cardinality (rows).
	Card() float64
	// Children returns input plans.
	Children() []Node
	// Explain renders one line describing this node.
	Explain() string
}

// Scan reads a stored table. Lo/Hi restrict the physical row range for
// morsel-parallel execution; Lo = 0, Hi = -1 means the whole table.
type Scan struct {
	Rel      catalog.Relation
	Alias    string
	Snapshot uint64
	Lo, Hi   int
}

// NewScan builds a full-table scan.
func NewScan(rel catalog.Relation, alias string, snapshot uint64) *Scan {
	if alias == "" {
		alias = rel.Name()
	}
	return &Scan{Rel: rel, Alias: alias, Snapshot: snapshot, Lo: 0, Hi: -1}
}

func (s *Scan) Schema() types.Schema { return s.Rel.Schema() }
func (s *Scan) Quals() []string      { return uniformQuals(len(s.Rel.Schema()), s.Alias) }
func (s *Scan) Card() float64        { return float64(s.Rel.NumRows(s.Snapshot)) }
func (s *Scan) Children() []Node     { return nil }
func (s *Scan) Explain() string      { return fmt.Sprintf("Scan %s", s.Alias) }

func uniformQuals(n int, q string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = q
	}
	return out
}

// IndexScan probes a secondary index instead of scanning the table: either
// an equality probe (Eq set) or a range probe (Lo/Hi bounds, nil =
// unbounded). The output schema is the full table schema — residual
// predicate work stays in a Filter above. Chosen by OptimizeAccess when the
// estimated selectivity clears the threshold.
type IndexScan struct {
	Rel      catalog.IndexedRelation
	Alias    string
	Snapshot uint64
	Index    string // index name
	Column   string // indexed column (display)
	Kind     string // "HASH" or "ORDERED" (display)

	Eq           *types.Value // equality probe key; nil for range probes
	Lo, Hi       *types.Value // range bounds; nil = unbounded
	LoInc, HiInc bool

	// EqParam, when > 0, marks an equality probe against parameter $EqParam
	// of a prepared statement; Rebind fills Eq from the bound argument. A
	// plan with EqParam set cannot execute until rebound.
	EqParam int

	EstRows float64
}

func (s *IndexScan) Schema() types.Schema { return s.Rel.Schema() }
func (s *IndexScan) Quals() []string      { return uniformQuals(len(s.Rel.Schema()), s.Alias) }
func (s *IndexScan) Card() float64        { return s.EstRows }
func (s *IndexScan) Children() []Node     { return nil }
func (s *IndexScan) Explain() string {
	return fmt.Sprintf("IndexScan %s using %s (%s) est=%.0f", s.Alias, s.Index, s.probeString(), s.EstRows)
}

// probeString renders the probe condition, e.g. "id = 42" or
// "10 <= ts < 20".
func (s *IndexScan) probeString() string {
	if s.Eq != nil {
		return fmt.Sprintf("%s = %s", s.Column, s.Eq)
	}
	if s.EqParam > 0 {
		return fmt.Sprintf("%s = $%d", s.Column, s.EqParam)
	}
	var sb strings.Builder
	if s.Lo != nil {
		op := "<"
		if s.LoInc {
			op = "<="
		}
		fmt.Fprintf(&sb, "%s %s ", s.Lo, op)
	}
	sb.WriteString(s.Column)
	if s.Hi != nil {
		op := "<"
		if s.HiInc {
			op = "<="
		}
		fmt.Fprintf(&sb, " %s %s", op, s.Hi)
	}
	return sb.String()
}

// WorkingScan reads the current working table of an enclosing ITERATE or
// recursive CTE, identified by name. The executor resolves it through its
// binding context. Lo/Hi restrict the row range for morsel-parallel
// execution; Hi <= 0 means to the end of the working table (the zero value
// scans everything, so plain construction needs no explicit range).
type WorkingScan struct {
	Name    string
	Sch     types.Schema
	Alias   string
	CardEst float64
	Lo, Hi  int
}

func (w *WorkingScan) Schema() types.Schema { return w.Sch }
func (w *WorkingScan) Quals() []string {
	q := w.Alias
	if q == "" {
		q = w.Name
	}
	return uniformQuals(len(w.Sch), q)
}
func (w *WorkingScan) Card() float64    { return w.CardEst }
func (w *WorkingScan) Children() []Node { return nil }
func (w *WorkingScan) Explain() string  { return fmt.Sprintf("WorkingScan %s", w.Name) }

// Values produces literal rows.
type Values struct {
	Sch  types.Schema
	Rows [][]types.Value
}

func (v *Values) Schema() types.Schema { return v.Sch }
func (v *Values) Quals() []string      { return uniformQuals(len(v.Sch), "") }
func (v *Values) Card() float64        { return float64(len(v.Rows)) }
func (v *Values) Children() []Node     { return nil }
func (v *Values) Explain() string      { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// Filter keeps rows satisfying a boolean predicate.
type Filter struct {
	Child Node
	Pred  expr.Expr
	// Sel, when > 0, is a statistics-derived selectivity set by
	// OptimizeAccess; it overrides the shape heuristic in Card.
	Sel float64
}

func (f *Filter) Schema() types.Schema { return f.Child.Schema() }
func (f *Filter) Quals() []string      { return f.Child.Quals() }
func (f *Filter) Card() float64 {
	s := f.Sel
	if s <= 0 {
		s = selectivity(f.Pred)
	}
	return f.Child.Card() * s
}
func (f *Filter) Children() []Node { return []Node{f.Child} }
func (f *Filter) Explain() string  { return fmt.Sprintf("Filter %s", f.Pred) }

// selectivity is a coarse textbook heuristic keyed on the predicate shape.
func selectivity(e expr.Expr) float64 {
	switch n := e.(type) {
	case *expr.BinOp:
		switch n.Op {
		case expr.OpEq:
			return 0.1
		case expr.OpAnd:
			return selectivity(n.L) * selectivity(n.R)
		case expr.OpOr:
			s := selectivity(n.L) + selectivity(n.R)
			if s > 1 {
				s = 1
			}
			return s
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			return 0.3
		case expr.OpNe:
			return 0.9
		}
	}
	return 0.5
}

// Project computes output expressions.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string
}

func (p *Project) Schema() types.Schema {
	out := make(types.Schema, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = types.ColumnInfo{Name: p.Names[i], Type: e.Type()}
	}
	return out
}
func (p *Project) Quals() []string  { return uniformQuals(len(p.Exprs), "") }
func (p *Project) Card() float64    { return p.Child.Card() }
func (p *Project) Children() []Node { return []Node{p.Child} }
func (p *Project) Explain() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// JoinType mirrors sql join types at the plan level.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	CrossJoin
)

func (t JoinType) String() string {
	switch t {
	case LeftJoin:
		return "LeftJoin"
	case CrossJoin:
		return "CrossJoin"
	default:
		return "InnerJoin"
	}
}

// Join combines two inputs. When EquiLeft/EquiRight are non-empty the
// executor uses a hash join on those key columns with Residual applied to
// candidate matches; otherwise it falls back to a nested-loop join with On.
type Join struct {
	Type      JoinType
	L, R      Node
	On        expr.Expr // full condition (resolved against concat schema)
	EquiLeft  []int     // key column indices in L's schema
	EquiRight []int     // key column indices in R's schema
	Residual  expr.Expr // non-equi remainder, may be nil
}

func (j *Join) Schema() types.Schema {
	return append(append(types.Schema{}, j.L.Schema()...), j.R.Schema()...)
}
func (j *Join) Quals() []string {
	return append(append([]string{}, j.L.Quals()...), j.R.Quals()...)
}
func (j *Join) Card() float64 {
	l, r := j.L.Card(), j.R.Card()
	switch {
	case j.Type == CrossJoin:
		return l * r
	case len(j.EquiLeft) > 0:
		// Equi join: assume key uniqueness on the smaller side.
		if l > r {
			return l
		}
		return r
	default:
		return l * r * 0.1
	}
}
func (j *Join) Children() []Node { return []Node{j.L, j.R} }
func (j *Join) Explain() string {
	if j.On != nil {
		return fmt.Sprintf("%s on %s", j.Type, j.On)
	}
	return j.Type.String()
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
	AggStddev
	AggVariance
)

var aggNames = map[AggFunc]string{
	AggCount: "count", AggCountStar: "count(*)", AggSum: "sum",
	AggAvg: "avg", AggMin: "min", AggMax: "max",
	AggStddev: "stddev", AggVariance: "variance",
}

func (f AggFunc) String() string { return aggNames[f] }

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr // nil for count(*)
	Type types.Type
	Name string
}

// Aggregate groups by key expressions and computes aggregates. Output
// columns are the keys followed by the aggregates. Global aggregation has
// no keys and produces exactly one row.
type Aggregate struct {
	Child    Node
	Keys     []expr.Expr
	KeyNames []string
	Aggs     []AggSpec
}

func (a *Aggregate) Schema() types.Schema {
	out := make(types.Schema, 0, len(a.Keys)+len(a.Aggs))
	for i, k := range a.Keys {
		out = append(out, types.ColumnInfo{Name: a.KeyNames[i], Type: k.Type()})
	}
	for _, g := range a.Aggs {
		out = append(out, types.ColumnInfo{Name: g.Name, Type: g.Type})
	}
	return out
}
func (a *Aggregate) Quals() []string { return uniformQuals(len(a.Keys)+len(a.Aggs), "") }
func (a *Aggregate) Card() float64 {
	if len(a.Keys) == 0 {
		return 1
	}
	c := a.Child.Card() / 10
	if c < 1 {
		c = 1
	}
	return c
}
func (a *Aggregate) Children() []Node { return []Node{a.Child} }
func (a *Aggregate) Explain() string {
	return fmt.Sprintf("Aggregate keys=%d aggs=%d", len(a.Keys), len(a.Aggs))
}

// Sort orders rows. TopK, when non-negative, bounds the output: the
// executor keeps only the best TopK rows in a bounded heap instead of
// sorting everything (fused from Limit-over-Sort by the optimizer).
type Sort struct {
	Child Node
	Keys  []SortKey
	TopK  int64 // -1 = full sort
}

// SortKey is one ORDER BY item, referencing an output column by index.
type SortKey struct {
	Col  int
	Desc bool
}

func (s *Sort) Schema() types.Schema { return s.Child.Schema() }
func (s *Sort) Quals() []string      { return s.Child.Quals() }
func (s *Sort) Card() float64 {
	c := s.Child.Card()
	if s.TopK >= 0 && float64(s.TopK) < c {
		return float64(s.TopK)
	}
	return c
}
func (s *Sort) Children() []Node { return []Node{s.Child} }
func (s *Sort) Explain() string {
	if s.TopK >= 0 {
		return fmt.Sprintf("TopK %d %v", s.TopK, s.Keys)
	}
	return fmt.Sprintf("Sort %v", s.Keys)
}

// Limit caps the output, after skipping Offset rows.
type Limit struct {
	Child  Node
	N      int64 // -1 = unlimited
	Offset int64
}

func (l *Limit) Schema() types.Schema { return l.Child.Schema() }
func (l *Limit) Quals() []string      { return l.Child.Quals() }
func (l *Limit) Card() float64 {
	c := l.Child.Card()
	if l.N >= 0 && float64(l.N) < c {
		return float64(l.N)
	}
	return c
}
func (l *Limit) Children() []Node { return []Node{l.Child} }
func (l *Limit) Explain() string  { return fmt.Sprintf("Limit %d offset %d", l.N, l.Offset) }

// Distinct removes duplicate rows.
type Distinct struct {
	Child Node
}

func (d *Distinct) Schema() types.Schema { return d.Child.Schema() }
func (d *Distinct) Quals() []string      { return d.Child.Quals() }
func (d *Distinct) Card() float64        { return d.Child.Card() * 0.5 }
func (d *Distinct) Children() []Node     { return []Node{d.Child} }
func (d *Distinct) Explain() string      { return "Distinct" }

// Union concatenates two inputs; without All, duplicates are removed.
type Union struct {
	L, R Node
	All  bool
}

func (u *Union) Schema() types.Schema { return u.L.Schema() }
func (u *Union) Quals() []string      { return uniformQuals(len(u.L.Schema()), "") }
func (u *Union) Card() float64        { return u.L.Card() + u.R.Card() }
func (u *Union) Children() []Node     { return []Node{u.L, u.R} }
func (u *Union) Explain() string {
	if u.All {
		return "UnionAll"
	}
	return "Union"
}

// RecursiveCTE implements SQL:1999 appending fixpoint recursion:
// result = Init; repeat { delta = Rec(working); result += delta } until the
// recursive term adds nothing new (or, for UNION ALL, yields no rows).
type RecursiveCTE struct {
	Name     string
	Init     Node
	Rec      Node // references Name through WorkingScan
	All      bool // UNION ALL vs UNION semantics
	MaxDepth int  // safety bound against infinite recursion
}

func (r *RecursiveCTE) Schema() types.Schema { return r.Init.Schema() }
func (r *RecursiveCTE) Quals() []string      { return uniformQuals(len(r.Init.Schema()), r.Name) }
func (r *RecursiveCTE) Card() float64        { return r.Init.Card() * 10 }
func (r *RecursiveCTE) Children() []Node     { return []Node{r.Init, r.Rec} }
func (r *RecursiveCTE) Explain() string      { return fmt.Sprintf("RecursiveCTE %s", r.Name) }

// Iterate is the paper's non-appending iteration operator (Section 5.1):
// working = Init; while Stop(working) yields no rows { working =
// Step(working) }. The final result is the last working table only.
type Iterate struct {
	Init Node
	Step Node // references the working table as `iterate`
	Stop Node // references the working table as `iterate`
	// MaxDepth bounds runaway iterations (the paper notes both iterate and
	// recursive CTEs can loop forever and must be cut off by the system).
	MaxDepth int
}

func (i *Iterate) Schema() types.Schema { return i.Init.Schema() }
func (i *Iterate) Quals() []string      { return uniformQuals(len(i.Init.Schema()), "iterate") }
func (i *Iterate) Card() float64        { return i.Init.Card() }
func (i *Iterate) Children() []Node     { return []Node{i.Init, i.Step, i.Stop} }
func (i *Iterate) Explain() string      { return "Iterate" }

// KMeans is the physical clustering operator (paper Section 6.1),
// parameterized by a distance lambda (Section 7). Output: cluster id
// followed by the center coordinates, one row per cluster.
type KMeans struct {
	Data     Node
	Centers  Node
	Lambda   *expr.Lambda // nil = default squared Euclidean distance
	MaxIter  int
	OutNames []string // coordinate column names (from Data's schema)
}

func (k *KMeans) Schema() types.Schema {
	out := types.Schema{{Name: "cluster", Type: types.Int64}}
	for _, n := range k.OutNames {
		out = append(out, types.ColumnInfo{Name: n, Type: types.Float64})
	}
	return out
}
func (k *KMeans) Quals() []string  { return uniformQuals(len(k.OutNames)+1, "") }
func (k *KMeans) Card() float64    { return k.Centers.Card() }
func (k *KMeans) Children() []Node { return []Node{k.Data, k.Centers} }
func (k *KMeans) Explain() string {
	if k.Lambda != nil {
		return fmt.Sprintf("KMeans maxiter=%d dist=%s", k.MaxIter, k.Lambda)
	}
	return fmt.Sprintf("KMeans maxiter=%d", k.MaxIter)
}

// KMeansAssign applies cluster centers to data tuples: each input row is
// emitted with the id of its nearest center appended — the "apply the
// model" half of the paper's model-application pattern, sharing the
// k-Means distance variation point (and its lambda).
type KMeansAssign struct {
	Data    Node
	Centers Node
	Lambda  *expr.Lambda // nil = default squared Euclidean distance
}

func (k *KMeansAssign) Schema() types.Schema {
	out := append(types.Schema{}, k.Data.Schema()...)
	return append(out, types.ColumnInfo{Name: "cluster", Type: types.Int64})
}
func (k *KMeansAssign) Quals() []string  { return uniformQuals(len(k.Data.Schema())+1, "") }
func (k *KMeansAssign) Card() float64    { return k.Data.Card() }
func (k *KMeansAssign) Children() []Node { return []Node{k.Data, k.Centers} }
func (k *KMeansAssign) Explain() string  { return "KMeansAssign" }

// PageRank is the physical graph-ranking operator (paper Section 6.3).
// Output: (vertex BIGINT, rank DOUBLE). Lambda, when set, computes a
// per-edge weight from the edge tuple (Section 7: "define edge weights in
// PageRank"); rank mass then flows proportionally to edge weights.
type PageRank struct {
	Edges   Node
	Damping float64
	Epsilon float64
	MaxIter int
	Lambda  *expr.Lambda
}

func (p *PageRank) Schema() types.Schema {
	return types.Schema{{Name: "vertex", Type: types.Int64}, {Name: "rank", Type: types.Float64}}
}
func (p *PageRank) Quals() []string  { return uniformQuals(2, "") }
func (p *PageRank) Card() float64    { return p.Edges.Card() / 10 }
func (p *PageRank) Children() []Node { return []Node{p.Edges} }
func (p *PageRank) Explain() string {
	return fmt.Sprintf("PageRank d=%g eps=%g maxiter=%d", p.Damping, p.Epsilon, p.MaxIter)
}

// NaiveBayesTrain builds a Gaussian Naive Bayes model (paper Section 6.2).
// The input's last column is the class label; the rest are features.
// Output: (label, feature, prior, mean, stddev).
type NaiveBayesTrain struct {
	Data Node
}

// NBModelSchema is the relational representation of a Naive Bayes model.
var NBModelSchema = types.Schema{
	{Name: "label", Type: types.Int64},
	{Name: "feature", Type: types.Int64},
	{Name: "prior", Type: types.Float64},
	{Name: "mean", Type: types.Float64},
	{Name: "stddev", Type: types.Float64},
}

func (n *NaiveBayesTrain) Schema() types.Schema { return NBModelSchema }
func (n *NaiveBayesTrain) Quals() []string      { return uniformQuals(len(NBModelSchema), "") }
func (n *NaiveBayesTrain) Card() float64        { return 2 * float64(len(n.Data.Schema())-1) }
func (n *NaiveBayesTrain) Children() []Node     { return []Node{n.Data} }
func (n *NaiveBayesTrain) Explain() string      { return "NaiveBayesTrain" }

// NaiveBayesPredict applies a trained model to feature rows, appending the
// predicted label column.
type NaiveBayesPredict struct {
	Model Node
	Data  Node
}

func (n *NaiveBayesPredict) Schema() types.Schema {
	out := append(types.Schema{}, n.Data.Schema()...)
	return append(out, types.ColumnInfo{Name: "label", Type: types.Int64})
}
func (n *NaiveBayesPredict) Quals() []string  { return uniformQuals(len(n.Data.Schema())+1, "") }
func (n *NaiveBayesPredict) Card() float64    { return n.Data.Card() }
func (n *NaiveBayesPredict) Children() []Node { return []Node{n.Model, n.Data} }
func (n *NaiveBayesPredict) Explain() string  { return "NaiveBayesPredict" }

// ExplainTree renders a plan as an indented tree.
func ExplainTree(n Node) string {
	var sb strings.Builder
	var rec func(Node, int)
	rec = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Explain())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}
