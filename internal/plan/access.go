package plan

import (
	"lambdadb/internal/catalog"
	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

// ---------------------------------------------------------------------------
// Cost-based access-path selection
//
// OptimizeAccess runs after the rule-based Optimize pass and uses table
// statistics (when ANALYZE has collected them) plus index metadata to pick
// physical access paths:
//
//  1. Filter selectivities are re-estimated from column statistics, so
//     cardinalities flowing up the tree reflect the data rather than the
//     predicate shape.
//  2. Inner/cross join trees of three or more relations are flattened and
//     re-assembled greedily, smallest estimated input first, preferring
//     equi-connected relations (avoiding accidental cross products).
//  3. Hash-join build sides are chosen by estimated cardinality.
//  4. Selective Filter(Scan) pairs are rewritten into IndexScan probes when
//     a matching secondary index exists and the estimated selectivity
//     clears the threshold; non-absorbed conjuncts stay in a residual
//     Filter above.
//
// Every rewrite preserves output column order (restoring Projects are
// inserted where inputs are permuted — name resolution is already
// complete, so losing qualifiers is fine, exactly as in chooseBuildSide).
// ---------------------------------------------------------------------------

// indexScanMaxSelectivity gates index-scan selection: probes estimated to
// touch more than this fraction of the table fall back to the vectorized
// full scan, which wins on bandwidth for non-selective predicates.
const indexScanMaxSelectivity = 0.25

// OptimizeAccess applies statistics- and index-driven rewrites. stats may
// be nil (nothing analyzed yet); index metadata alone still enables point
// probes via the distinct-key count.
func OptimizeAccess(n Node, stats StatsProvider) Node {
	n = rewriteTree(n, func(m Node) Node { return applyStatsSelectivity(m, stats) })
	n = reorderJoins(n)
	n = rewriteTree(n, chooseBuildSide)
	n = rewriteTree(n, func(m Node) Node { return chooseIndexScan(m, stats) })
	return n
}

// ---------------------------------------------------------------------------
// 1. Statistics-derived filter selectivity
// ---------------------------------------------------------------------------

// applyStatsSelectivity sets Filter.Sel for filters sitting directly on a
// table scan, multiplying per-conjunct estimates from the column stats.
func applyStatsSelectivity(n Node, stats StatsProvider) Node {
	f, ok := n.(*Filter)
	if !ok || stats == nil {
		return n
	}
	scan, ok := f.Child.(*Scan)
	if !ok {
		return n
	}
	ts, ok := stats.TableStats(scan.Rel.Name())
	if !ok {
		return n
	}
	schema := scan.Schema()
	sel := 1.0
	for _, c := range splitConjuncts(f.Pred) {
		sel *= conjunctSelectivity(c, schema, ts)
	}
	f.Sel = clamp01(sel)
	return n
}

// conjunctSelectivity estimates one conjunct: column-vs-constant
// comparisons use the stats, everything else the shape heuristic.
func conjunctSelectivity(c expr.Expr, schema types.Schema, ts *TableStats) float64 {
	col, op, val, ok := colOpConst(c)
	if !ok || col >= len(schema) {
		return selectivity(c)
	}
	name := schema[col].Name
	switch op {
	case expr.OpEq:
		return ts.EqSelectivity(name)
	case expr.OpLt, expr.OpLe:
		return ts.RangeSelectivity(name, nil, &val)
	case expr.OpGt, expr.OpGe:
		return ts.RangeSelectivity(name, &val, nil)
	}
	return selectivity(c)
}

// colOpConst matches a conjunct of the form `col op const` (either
// orientation; the op is flipped when the constant is on the left).
// NULL constants do not match — such predicates never pass any row.
func colOpConst(c expr.Expr) (col int, op expr.Op, val types.Value, ok bool) {
	b, isBin := c.(*expr.BinOp)
	if !isBin {
		return 0, 0, types.Value{}, false
	}
	switch b.Op {
	case expr.OpEq, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
	default:
		return 0, 0, types.Value{}, false
	}
	if cr, isCol := b.L.(*expr.ColRef); isCol && cr.Index >= 0 {
		if cn, isConst := b.R.(*expr.Const); isConst && !cn.Val.Null {
			return cr.Index, b.Op, cn.Val, true
		}
	}
	if cr, isCol := b.R.(*expr.ColRef); isCol && cr.Index >= 0 {
		if cn, isConst := b.L.(*expr.Const); isConst && !cn.Val.Null {
			return cr.Index, flipCmp(b.Op), cn.Val, true
		}
	}
	return 0, 0, types.Value{}, false
}

func flipCmp(op expr.Op) expr.Op {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op // Eq is symmetric
}

// ---------------------------------------------------------------------------
// 2. Join reordering
// ---------------------------------------------------------------------------

// reorderJoins walks the plan top-down and, at the top of each maximal
// inner/cross join tree with at least three relations, rebuilds the tree
// greedily by estimated cardinality. Left joins and non-join nodes bound
// the flattening (their subtrees are reordered independently).
func reorderJoins(n Node) Node {
	if j, ok := n.(*Join); ok && j.Type != LeftJoin {
		if nj := tryReorder(j); nj != nil {
			return nj
		}
	}
	switch t := n.(type) {
	case *Filter:
		t.Child = reorderJoins(t.Child)
	case *Project:
		t.Child = reorderJoins(t.Child)
	case *Alias:
		t.Child = reorderJoins(t.Child)
	case *Shared:
		t.Child = reorderJoins(t.Child)
	case *Join:
		t.L = reorderJoins(t.L)
		t.R = reorderJoins(t.R)
	case *Aggregate:
		t.Child = reorderJoins(t.Child)
	case *Sort:
		t.Child = reorderJoins(t.Child)
	case *Limit:
		t.Child = reorderJoins(t.Child)
	case *Distinct:
		t.Child = reorderJoins(t.Child)
	case *Union:
		t.L = reorderJoins(t.L)
		t.R = reorderJoins(t.R)
	case *RecursiveCTE:
		t.Init = reorderJoins(t.Init)
		t.Rec = reorderJoins(t.Rec)
	case *Iterate:
		t.Init = reorderJoins(t.Init)
		t.Step = reorderJoins(t.Step)
		t.Stop = reorderJoins(t.Stop)
	case *KMeans:
		t.Data = reorderJoins(t.Data)
		t.Centers = reorderJoins(t.Centers)
	case *PageRank:
		t.Edges = reorderJoins(t.Edges)
	case *NaiveBayesTrain:
		t.Data = reorderJoins(t.Data)
	case *NaiveBayesPredict:
		t.Model = reorderJoins(t.Model)
		t.Data = reorderJoins(t.Data)
	}
	return n
}

// joinLeaf is one relation of a flattened join tree, with its column range
// [off, off+width) in the original (flattened) output schema.
type joinLeaf struct {
	node       Node
	off, width int
}

// joinCond is one conjunct of the flattened join condition, resolved
// against the original flattened schema.
type joinCond struct {
	pred    expr.Expr
	leaves  map[int]bool // leaf ids referenced
	equi    bool         // ColRef = ColRef across two leaves
	applied bool
}

// tryReorder flattens j and rebuilds it greedily; returns nil when the
// tree is too small to bother (fewer than three leaves).
func tryReorder(j *Join) Node {
	origSchema := j.Schema()
	var leaves []joinLeaf
	var preds []expr.Expr
	flattenJoin(j, 0, &leaves, &preds)
	if len(leaves) < 3 {
		return nil
	}
	// Reorder nested join trees hiding behind flattening boundaries.
	for i := range leaves {
		leaves[i].node = reorderJoins(leaves[i].node)
	}
	// Attach leaf ids to each conjunct.
	conds := make([]*joinCond, 0, len(preds))
	for _, p := range preds {
		for _, c := range splitConjuncts(p) {
			conds = append(conds, analyzeCond(c, leaves))
		}
	}
	// Single-leaf conjuncts become filters on the leaf itself.
	for _, c := range conds {
		if len(c.leaves) <= 1 && !c.applied {
			c.applied = true
			target := 0
			for id := range c.leaves {
				target = id
			}
			leaves[target].node = &Filter{
				Child: leaves[target].node,
				Pred:  shiftColRefs(c.pred, -leaves[target].off),
			}
		}
	}
	return buildGreedyJoin(leaves, conds, origSchema)
}

// flattenJoin collects the leaves and join predicates of a maximal
// inner/cross join tree. Predicates are rebased to the flattened schema
// (column offsets are global). Returns the subtree's column width.
func flattenJoin(n Node, off int, leaves *[]joinLeaf, preds *[]expr.Expr) int {
	j, ok := n.(*Join)
	if !ok || j.Type == LeftJoin {
		w := len(n.Schema())
		*leaves = append(*leaves, joinLeaf{node: n, off: off, width: w})
		return w
	}
	lw := flattenJoin(j.L, off, leaves, preds)
	rw := flattenJoin(j.R, off+lw, leaves, preds)
	if j.On != nil {
		*preds = append(*preds, shiftColRefs(j.On, off))
	}
	return lw + rw
}

// analyzeCond computes the leaf set of a conjunct and whether it is an
// equi-join condition between two leaves.
func analyzeCond(c expr.Expr, leaves []joinLeaf) *joinCond {
	refs := map[int]bool{}
	expr.ReferencedColumns(c, refs)
	ls := map[int]bool{}
	for col := range refs {
		for id, lf := range leaves {
			if col >= lf.off && col < lf.off+lf.width {
				ls[id] = true
				break
			}
		}
	}
	jc := &joinCond{pred: c, leaves: ls}
	if b, ok := c.(*expr.BinOp); ok && b.Op == expr.OpEq && len(ls) == 2 {
		_, lIsCol := b.L.(*expr.ColRef)
		_, rIsCol := b.R.(*expr.ColRef)
		jc.equi = lIsCol && rIsCol
	}
	return jc
}

// buildGreedyJoin re-assembles the flattened tree left-deep: start from
// the smallest leaf, repeatedly join the relation giving the smallest
// estimated intermediate, preferring equi-connected candidates so cross
// products are a last resort. A restoring Project re-establishes the
// original column order when the placement permuted it.
func buildGreedyJoin(leaves []joinLeaf, conds []*joinCond, origSchema types.Schema) Node {
	placed := make([]bool, len(leaves))
	// pos maps original global column index -> position in the current
	// intermediate's schema.
	pos := make([]int, len(origSchema))
	for i := range pos {
		pos[i] = -1
	}

	start := 0
	for i := 1; i < len(leaves); i++ {
		if leaves[i].node.Card() < leaves[start].node.Card() {
			start = i
		}
	}
	cur := leaves[start].node
	placed[start] = true
	curWidth := leaves[start].width
	for c := 0; c < leaves[start].width; c++ {
		pos[leaves[start].off+c] = c
	}

	for n := 1; n < len(leaves); n++ {
		next, nextEqui := -1, false
		nextCard := 0.0
		for j := range leaves {
			if placed[j] {
				continue
			}
			equi, card := candidateCost(cur.Card(), leaves[j].node.Card(), j, placed, conds)
			better := next < 0 ||
				(equi && !nextEqui) ||
				(equi == nextEqui && card < nextCard)
			if better {
				next, nextEqui, nextCard = j, equi, card
			}
		}
		lf := leaves[next]
		// Collect the conjuncts that become applicable at this step and
		// localize their column references to concat(cur, leaf).
		var on []expr.Expr
		for _, c := range conds {
			if c.applied || !subsetPlaced(c.leaves, placed, next) {
				continue
			}
			c.applied = true
			on = append(on, localizeCond(c.pred, pos, lf, curWidth))
		}
		j := &Join{L: cur, R: lf.node, On: combineConjuncts(on)}
		if j.On == nil {
			j.Type = CrossJoin
		} else {
			j.Type = InnerJoin
			classifyJoinKeys(j)
		}
		for c := 0; c < lf.width; c++ {
			pos[lf.off+c] = curWidth + c
		}
		curWidth += lf.width
		placed[next] = true
		cur = j
	}

	// Restore the original column order if placement permuted it.
	identity := true
	for i := range pos {
		if pos[i] != i {
			identity = false
			break
		}
	}
	if identity {
		return cur
	}
	exprs := make([]expr.Expr, len(origSchema))
	names := make([]string, len(origSchema))
	for i := range origSchema {
		exprs[i] = &expr.ColRef{Name: origSchema[i].Name, Index: pos[i], Typ: origSchema[i].Type}
		names[i] = origSchema[i].Name
	}
	return &Project{Child: cur, Exprs: exprs, Names: names}
}

// candidateCost estimates the cardinality of joining the current
// intermediate with leaf j, mirroring Join.Card's shapes.
func candidateCost(curCard, leafCard float64, j int, placed []bool, conds []*joinCond) (equi bool, card float64) {
	connected := false
	for _, c := range conds {
		if c.applied || !subsetPlaced(c.leaves, placed, j) || !c.leaves[j] {
			continue
		}
		connected = true
		if c.equi {
			equi = true
		}
	}
	switch {
	case equi:
		if curCard > leafCard {
			return true, curCard
		}
		return true, leafCard
	case connected:
		return false, curCard * leafCard * 0.1
	default:
		return false, curCard * leafCard
	}
}

// subsetPlaced reports whether every leaf in ls is placed, treating next
// as placed.
func subsetPlaced(ls map[int]bool, placed []bool, next int) bool {
	for id := range ls {
		if id != next && !placed[id] {
			return false
		}
	}
	return true
}

// localizeCond rewrites a conjunct from global flattened indices to the
// schema of Join{L: cur, R: leaf}: columns already placed keep pos[g],
// the new leaf's columns land at curWidth + (g - leaf.off).
func localizeCond(e expr.Expr, pos []int, lf joinLeaf, curWidth int) expr.Expr {
	return expr.Rewrite(e, func(n expr.Expr) expr.Expr {
		c, ok := n.(*expr.ColRef)
		if !ok || c.Index < 0 {
			return n
		}
		cc := *c
		if c.Index >= lf.off && c.Index < lf.off+lf.width {
			cc.Index = curWidth + (c.Index - lf.off)
		} else {
			cc.Index = pos[c.Index]
		}
		return &cc
	})
}

// ---------------------------------------------------------------------------
// 4. Index-scan selection
// ---------------------------------------------------------------------------

// chooseIndexScan rewrites Filter(Scan) into IndexScan (plus residual
// Filter) when a secondary index matches a selective conjunct.
func chooseIndexScan(n Node, stats StatsProvider) Node {
	f, ok := n.(*Filter)
	if !ok {
		return n
	}
	scan, ok := f.Child.(*Scan)
	if !ok || scan.Lo != 0 || scan.Hi != -1 {
		return n
	}
	rel, ok := scan.Rel.(catalog.IndexedRelation)
	if !ok {
		return n
	}
	indexes := rel.Indexes()
	if len(indexes) == 0 {
		return n
	}
	rows := scan.Card()
	if rows <= 0 {
		return n
	}
	var ts *TableStats
	if stats != nil {
		ts, _ = stats.TableStats(scan.Rel.Name())
	}

	schema := scan.Schema()
	conjs := splitConjuncts(f.Pred)
	bounds := collectColumnBounds(conjs, schema)

	best := -1
	var bestScan *IndexScan
	var bestAbsorbed map[int]bool
	for i := range indexes {
		idx := &indexes[i]
		cb, ok := bounds[idx.Column]
		if !ok {
			continue
		}
		is, absorbed := buildIndexProbe(scan, idx, cb, rows, ts)
		if is == nil {
			continue
		}
		if is.EstRows/rows > indexScanMaxSelectivity {
			continue
		}
		if best < 0 || is.EstRows < bestScan.EstRows {
			best, bestScan, bestAbsorbed = i, is, absorbed
		}
	}
	if best < 0 {
		return n
	}
	var residual []expr.Expr
	for i, c := range conjs {
		if !bestAbsorbed[i] {
			residual = append(residual, c)
		}
	}
	if p := combineConjuncts(residual); p != nil {
		return &Filter{Child: bestScan, Pred: p}
	}
	return bestScan
}

// colBounds accumulates the constant comparisons against one column.
type colBounds struct {
	eq           *types.Value
	eqConj       int // conjunct index providing eq
	eqParam      int // $N providing an equality probe (0 = none)
	eqParamConj  int // conjunct index providing eqParam
	lo, hi       *types.Value
	loInc, hiInc bool
	rangeConjs   []int // conjunct indices absorbed into lo/hi
}

// colEqParam matches a conjunct of the form `col = $n` (either orientation),
// returning the column index and parameter ordinal.
func colEqParam(c expr.Expr) (col int, param int, ok bool) {
	b, isBin := c.(*expr.BinOp)
	if !isBin || b.Op != expr.OpEq {
		return 0, 0, false
	}
	if cr, isCol := b.L.(*expr.ColRef); isCol && cr.Index >= 0 {
		if p, isParam := b.R.(*expr.Param); isParam {
			return cr.Index, p.Idx, true
		}
	}
	if cr, isCol := b.R.(*expr.ColRef); isCol && cr.Index >= 0 {
		if p, isParam := b.L.(*expr.Param); isParam {
			return cr.Index, p.Idx, true
		}
	}
	return 0, 0, false
}

// collectColumnBounds groups col-op-const conjuncts by column name,
// intersecting range bounds (all range conjuncts on a column are implied
// by the intersection, so they can all be absorbed by a range probe).
func collectColumnBounds(conjs []expr.Expr, schema types.Schema) map[string]*colBounds {
	out := map[string]*colBounds{}
	for i, c := range conjs {
		col, op, val, ok := colOpConst(c)
		if !ok {
			// Parameter equality probes are value-independent: the index
			// choice and its NDV-based estimate hold for any binding.
			if pcol, param, pok := colEqParam(c); pok && pcol < len(schema) {
				cb := out[schema[pcol].Name]
				if cb == nil {
					cb = &colBounds{}
					out[schema[pcol].Name] = cb
				}
				if cb.eqParam == 0 {
					cb.eqParam, cb.eqParamConj = param, i
				}
			}
			continue
		}
		if col >= len(schema) {
			continue
		}
		name := schema[col].Name
		cb := out[name]
		if cb == nil {
			cb = &colBounds{}
			out[name] = cb
		}
		v := val
		switch op {
		case expr.OpEq:
			if cb.eq == nil {
				cb.eq, cb.eqConj = &v, i
			}
		case expr.OpGt, expr.OpGe:
			inc := op == expr.OpGe
			if tightenLow(cb.lo, cb.loInc, &v, inc) {
				cb.lo, cb.loInc = &v, inc
			}
			cb.rangeConjs = append(cb.rangeConjs, i)
		case expr.OpLt, expr.OpLe:
			inc := op == expr.OpLe
			if tightenHigh(cb.hi, cb.hiInc, &v, inc) {
				cb.hi, cb.hiInc = &v, inc
			}
			cb.rangeConjs = append(cb.rangeConjs, i)
		}
	}
	return out
}

// tightenLow reports whether (nv, ninc) is a tighter lower bound than
// (old, oinc).
func tightenLow(old *types.Value, oinc bool, nv *types.Value, ninc bool) bool {
	if old == nil {
		return true
	}
	switch nv.Compare(*old) {
	case 1:
		return true
	case 0:
		return oinc && !ninc // exclusive beats inclusive at the same point
	}
	return false
}

// tightenHigh reports whether (nv, ninc) is a tighter upper bound.
func tightenHigh(old *types.Value, oinc bool, nv *types.Value, ninc bool) bool {
	if old == nil {
		return true
	}
	switch nv.Compare(*old) {
	case -1:
		return true
	case 0:
		return oinc && !ninc
	}
	return false
}

// buildIndexProbe constructs the IndexScan for one candidate index, or nil
// when the bounds don't suit the index kind. Also returns the set of
// conjunct indices the probe absorbs.
func buildIndexProbe(scan *Scan, idx *catalog.IndexInfo, cb *colBounds, rows float64, ts *TableStats) (*IndexScan, map[int]bool) {
	base := &IndexScan{
		Rel:      scan.Rel.(catalog.IndexedRelation),
		Alias:    scan.Alias,
		Snapshot: scan.Snapshot,
		Index:    idx.Name,
		Column:   idx.Column,
		Kind:     idx.Kind,
	}
	if cb.eq != nil {
		// Point probe: either index kind serves it.
		base.Eq = cb.eq
		sel := 0.0
		if ts != nil {
			sel = ts.EqSelectivity(idx.Column)
		} else {
			// No stats: the index's distinct-key count is an NDV proxy.
			keys := idx.Keys
			if keys < 1 {
				keys = 1
			}
			sel = 1 / float64(keys)
		}
		base.EstRows = rows * clamp01(sel)
		return base, map[int]bool{cb.eqConj: true}
	}
	if cb.eqParam > 0 {
		// Point probe against a $N parameter: the key arrives at rebind
		// time, but equality selectivity does not depend on the value.
		base.EqParam = cb.eqParam
		sel := 0.0
		if ts != nil {
			sel = ts.EqSelectivity(idx.Column)
		} else {
			keys := idx.Keys
			if keys < 1 {
				keys = 1
			}
			sel = 1 / float64(keys)
		}
		base.EstRows = rows * clamp01(sel)
		return base, map[int]bool{cb.eqParamConj: true}
	}
	if cb.lo == nil && cb.hi == nil {
		return nil, nil
	}
	if idx.Kind != "ORDERED" {
		return nil, nil // hash indexes serve equality only
	}
	base.Lo, base.LoInc = cb.lo, cb.loInc
	base.Hi, base.HiInc = cb.hi, cb.hiInc
	sel := 0.3 // shape heuristic: too coarse to clear the gate without stats
	if ts != nil {
		sel = ts.RangeSelectivity(idx.Column, cb.lo, cb.hi)
	}
	base.EstRows = rows * clamp01(sel)
	absorbed := map[int]bool{}
	for _, i := range cb.rangeConjs {
		absorbed[i] = true
	}
	return base, absorbed
}
