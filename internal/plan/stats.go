package plan

import (
	"sort"

	"lambdadb/internal/catalog"
	"lambdadb/internal/types"
)

// ---------------------------------------------------------------------------
// Table statistics
//
// ANALYZE collects per-column statistics in one scan: exact row and NULL
// counts, min/max, a distinct-value count (exact up to a cap, via a hash
// set), and a small equi-depth histogram built from a deterministic sample.
// The cost-based pass (access.go) consumes them through the StatsProvider
// interface; the engine keeps the collected stats in a registry refreshed by
// ANALYZE and CHECKPOINT.
//
// Every estimator here is total and guards its edge cases: an empty table,
// an all-NULL column, and a single-value column all produce sane (zero or
// clamped) selectivities, never a division by zero.
// ---------------------------------------------------------------------------

// StatsProvider hands the planner per-table statistics. Implementations
// return ok=false for tables never analyzed; the planner then falls back to
// shape heuristics and index metadata.
type StatsProvider interface {
	TableStats(table string) (*TableStats, bool)
}

// TableStats is the ANALYZE result for one table.
type TableStats struct {
	Table    string
	RowCount int64
	Snapshot uint64 // the snapshot the stats were collected at
	Cols     []ColumnStats
}

// ColumnStats is the ANALYZE result for one column.
type ColumnStats struct {
	Name      string
	Type      types.Type
	NullCount int64
	// NDV is the observed distinct-value count among non-NULL rows (exact
	// up to ndvCap). 0 means no non-NULL values were seen; consumers must
	// clamp to >= 1 before dividing.
	NDV int64
	// Min and Max bound the non-NULL values; Null when none were seen.
	Min, Max types.Value
	// Hist is a small equi-depth histogram over a sample of the non-NULL
	// values: bucket i covers values <= Hist[i] (and > Hist[i-1]), each
	// bucket holding roughly the same number of sampled rows. Empty when
	// the column had no non-NULL values.
	Hist []types.Value
}

// Col returns the named column's stats.
func (ts *TableStats) Col(name string) (*ColumnStats, bool) {
	if ts == nil {
		return nil, false
	}
	for i := range ts.Cols {
		if ts.Cols[i].Name == name {
			return &ts.Cols[i], true
		}
	}
	return nil, false
}

// EqSelectivity estimates the fraction of rows matching column = constant:
// the non-NULL fraction divided by the distinct-value count. Unknown
// columns fall back to the shape heuristic.
func (ts *TableStats) EqSelectivity(col string) float64 {
	cs, ok := ts.Col(col)
	if !ok {
		return 0.1
	}
	if ts.RowCount == 0 {
		return 0
	}
	nonNull := float64(ts.RowCount-cs.NullCount) / float64(ts.RowCount)
	ndv := cs.NDV
	if ndv < 1 {
		ndv = 1 // all-NULL column: nonNull is already 0
	}
	return nonNull / float64(ndv)
}

// RangeSelectivity estimates the fraction of rows with the column inside
// the given bounds (nil = unbounded side), using the histogram when one
// exists and min/max interpolation otherwise.
func (ts *TableStats) RangeSelectivity(col string, lo, hi *types.Value) float64 {
	cs, ok := ts.Col(col)
	if !ok {
		return 0.3
	}
	if ts.RowCount == 0 {
		return 0
	}
	nonNull := float64(ts.RowCount-cs.NullCount) / float64(ts.RowCount)
	if nonNull == 0 {
		return 0
	}
	return nonNull * cs.rangeFraction(lo, hi)
}

// rangeFraction estimates which fraction of the column's non-NULL values
// fall inside [lo, hi] (inclusive bounds are a fine approximation at
// histogram resolution; nil = unbounded).
func (cs *ColumnStats) rangeFraction(lo, hi *types.Value) float64 {
	if cs.Min.Null || cs.Max.Null {
		return 0 // no non-NULL values observed
	}
	// Disjoint from the observed [Min, Max]?
	if lo != nil && !lo.Null && lo.Compare(cs.Max) > 0 {
		return 0
	}
	if hi != nil && !hi.Null && hi.Compare(cs.Min) < 0 {
		return 0
	}
	if len(cs.Hist) > 0 {
		return cs.histFraction(lo, hi)
	}
	// No histogram (tiny or non-sampled column): linear interpolation over
	// [Min, Max] for numerics, a constant otherwise.
	if !cs.Type.IsNumeric() {
		return 0.3
	}
	minF, maxF := cs.Min.AsFloat(), cs.Max.AsFloat()
	width := maxF - minF
	if width <= 0 {
		return 1 // single-value column and the point is inside the bounds
	}
	frac := 1.0
	if lo != nil && !lo.Null {
		frac -= clamp01((lo.AsFloat() - minF) / width)
	}
	if hi != nil && !hi.Null {
		frac -= clamp01((maxF - hi.AsFloat()) / width)
	}
	return clamp01(frac)
}

// histFraction reads the equi-depth histogram: each bucket holds 1/len of
// the sampled values, so the estimate is the fraction of buckets whose
// upper bound falls inside the range (partially counted at the edges).
func (cs *ColumnStats) histFraction(lo, hi *types.Value) float64 {
	n := len(cs.Hist)
	covered := 0.0
	for _, ub := range cs.Hist {
		inLo := lo == nil || lo.Null || ub.Compare(*lo) >= 0
		inHi := hi == nil || hi.Null || ub.Compare(*hi) <= 0
		if inLo && inHi {
			covered++
		}
	}
	frac := covered / float64(n)
	if frac == 0 {
		// The range is narrower than one bucket: charge half a bucket so a
		// selective range predicate is never estimated at exactly zero.
		frac = 0.5 / float64(n)
	}
	return clamp01(frac)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

const (
	// ndvCap bounds the exact distinct-count hash set; beyond it NDV is
	// reported as the cap (a floor on the true count — selectivity stays
	// conservative and tiny either way).
	ndvCap = 1 << 20
	// sampleCap is the per-column reservoir size feeding the histogram.
	sampleCap = 4096
	// histBuckets is the equi-depth histogram size.
	histBuckets = 32
)

// CollectTableStats scans rel once at the given snapshot and computes
// statistics for every column.
func CollectTableStats(rel catalog.Relation, snapshot uint64) (*TableStats, error) {
	schema := rel.Schema()
	ts := &TableStats{Table: rel.Name(), Snapshot: snapshot, Cols: make([]ColumnStats, len(schema))}
	accs := make([]statsAcc, len(schema))
	for i, c := range schema {
		ts.Cols[i] = ColumnStats{Name: c.Name, Type: c.Type,
			Min: types.NewNull(c.Type), Max: types.NewNull(c.Type)}
		accs[i].distinct = map[uint64]struct{}{}
	}
	err := rel.Scan(snapshot, func(b *types.Batch) error {
		n := b.Len()
		ts.RowCount += int64(n)
		for j, col := range b.Cols {
			cs, acc := &ts.Cols[j], &accs[j]
			for i := 0; i < n; i++ {
				if col.IsNull(i) {
					cs.NullCount++
					continue
				}
				v := col.Value(i)
				if cs.Min.Null || v.Compare(cs.Min) < 0 {
					cs.Min = v
				}
				if cs.Max.Null || v.Compare(cs.Max) > 0 {
					cs.Max = v
				}
				if len(acc.distinct) < ndvCap {
					acc.distinct[v.Hash()] = struct{}{}
				}
				acc.sample(v)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for j := range ts.Cols {
		cs, acc := &ts.Cols[j], &accs[j]
		cs.NDV = int64(len(acc.distinct))
		cs.Hist = buildHistogram(acc.vals)
	}
	return ts, nil
}

// statsAcc is the per-column scan accumulator.
type statsAcc struct {
	distinct map[uint64]struct{}
	vals     []types.Value // reservoir sample
	seen     int64         // non-NULL values offered to the reservoir
	rng      uint64        // deterministic xorshift state
}

// sample keeps a uniform reservoir of up to sampleCap values. The
// pseudo-random replacement stream is seeded deterministically so repeated
// ANALYZE runs over identical data give identical histograms (stable
// EXPLAIN output and tests).
func (a *statsAcc) sample(v types.Value) {
	a.seen++
	if len(a.vals) < sampleCap {
		a.vals = append(a.vals, v)
		return
	}
	if a.rng == 0 {
		a.rng = 0x9e3779b97f4a7c15
	}
	// xorshift64*
	a.rng ^= a.rng >> 12
	a.rng ^= a.rng << 25
	a.rng ^= a.rng >> 27
	r := (a.rng * 0x2545f4914f6cdd1d) % uint64(a.seen)
	if int(r) < len(a.vals) {
		a.vals[r] = v
	}
}

// buildHistogram sorts the sampled values and picks histBuckets equi-depth
// upper bounds. Fewer than 2 distinct sample points yield no histogram
// (min/max interpolation handles those columns).
func buildHistogram(vals []types.Value) []types.Value {
	if len(vals) < histBuckets {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	out := make([]types.Value, histBuckets)
	for b := 0; b < histBuckets; b++ {
		idx := (b+1)*len(vals)/histBuckets - 1
		out[b] = vals[idx]
	}
	return out
}
