package plan

import (
	"strings"
	"testing"

	"lambdadb/internal/sql"
)

// TestNoPushdownThroughAnalyticalOperators verifies the paper's Section 5.2
// observation: selections cannot be pushed through analytical operators
// because their result depends on the whole input. A filter above KMEANS
// must stay above it.
func TestNoPushdownThroughAnalyticalOperators(t *testing.T) {
	s := testStore(t)
	st, err := sql.ParseOne(`SELECT * FROM KMEANS ((SELECT a, b FROM t), (SELECT a, v FROM u), 3) WHERE cluster = 0`)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(s, s.Snapshot())
	n, err := b.BuildSelect(st.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	tree := ExplainTree(n)
	filterAt := strings.Index(tree, "Filter")
	kmeansAt := strings.Index(tree, "KMeans")
	if filterAt < 0 || kmeansAt < 0 {
		t.Fatalf("plan missing nodes:\n%s", tree)
	}
	if filterAt > kmeansAt {
		t.Errorf("filter pushed through the analytical operator:\n%s", tree)
	}
}

// TestNoPushdownThroughIterate: same boundary for the iterate operator.
func TestNoPushdownThroughIterate(t *testing.T) {
	s := testStore(t)
	st, err := sql.ParseOne(`SELECT * FROM ITERATE (
		(SELECT 1 "x"), (SELECT x + 1 FROM iterate), (SELECT x FROM iterate WHERE x > 3)
	) WHERE x > 1`)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(s, s.Snapshot())
	n, err := b.BuildSelect(st.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	tree := ExplainTree(n)
	filterAt := strings.Index(tree, "Filter (x > 1)")
	iterateAt := strings.Index(tree, "Iterate")
	if filterAt < 0 || iterateAt < 0 {
		t.Fatalf("plan missing nodes:\n%s", tree)
	}
	if filterAt > iterateAt {
		t.Errorf("filter pushed into the iterate operator:\n%s", tree)
	}
}

// TestPushdownBelowAnalyticalInputStillWorks: a filter written inside the
// data subquery is optimized normally within that subquery (the paper:
// relational optimization proceeds independently below and above the
// analytical operator).
func TestPushdownBelowAnalyticalInputStillWorks(t *testing.T) {
	s := testStore(t)
	st, err := sql.ParseOne(`SELECT * FROM KMEANS (
		(SELECT q.a, q.b FROM (SELECT a, b FROM t) q WHERE q.a > 1),
		(SELECT a, v FROM u), 3)`)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(s, s.Snapshot())
	n, err := b.BuildSelect(st.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	tree := ExplainTree(n)
	// The filter must have been pushed below the inner projection, next to
	// the scan.
	scanAt := strings.Index(tree, "Scan t")
	filterAt := strings.Index(tree, "Filter")
	if filterAt < 0 || scanAt < 0 {
		t.Fatalf("plan missing nodes:\n%s", tree)
	}
	if filterAt > scanAt {
		t.Errorf("filter not pushed toward the scan inside the subquery:\n%s", tree)
	}
}
