package plan

import (
	"fmt"

	"lambdadb/internal/expr"
	"lambdadb/internal/types"
)

// Rebind deep-clones a plan so a cached template can be executed again:
// every node is copied (optimizer passes and the executor may annotate nodes
// in place, so cached templates are never run directly), scans are stamped
// with a fresh snapshot, and $N parameter placeholders are substituted with
// the bound argument values. args[i] binds $i+1; values are coerced to the
// type inference stamped on each placeholder occurrence.
//
// Expression trees are shared with the template when there are no arguments
// to substitute — the executor compiles them read-only — and rewritten into
// fresh trees otherwise.
func Rebind(n Node, snapshot uint64, args []types.Value) (Node, error) {
	r := &rebinder{snapshot: snapshot, args: args}
	out := r.node(n)
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

type rebinder struct {
	snapshot uint64
	args     []types.Value
	err      error
	// shared memoizes Shared-node clones: a CTE referenced twice must stay
	// one node after cloning, or its materialization would run twice.
	shared map[*Shared]*Shared
}

func (r *rebinder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// bindParamValue coerces an argument to the placeholder's inferred type.
func bindParamValue(v types.Value, to types.Type, idx int) (types.Value, error) {
	if v.Null {
		return types.NewNull(to), nil
	}
	if v.T == to || to == types.Unknown {
		return v, nil
	}
	if v.T.IsNumeric() && to.IsNumeric() {
		if to == types.Float64 {
			return types.NewFloat(v.AsFloat()), nil
		}
		return types.NewInt(v.AsInt()), nil
	}
	return types.Value{}, fmt.Errorf("parameter $%d: cannot bind %s value where %s is expected", idx, v.T, to)
}

func (r *rebinder) expr(e expr.Expr) expr.Expr {
	if e == nil || len(r.args) == 0 {
		return e
	}
	return expr.Rewrite(e, func(x expr.Expr) expr.Expr {
		p, ok := x.(*expr.Param)
		if !ok {
			return x
		}
		if p.Idx < 1 || p.Idx > len(r.args) {
			r.fail(fmt.Errorf("no argument bound for parameter $%d", p.Idx))
			return x
		}
		v, err := bindParamValue(r.args[p.Idx-1], p.Typ, p.Idx)
		if err != nil {
			r.fail(err)
			return x
		}
		return &expr.Const{Val: v}
	})
}

func (r *rebinder) exprs(es []expr.Expr) []expr.Expr {
	if es == nil {
		return nil
	}
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = r.expr(e)
	}
	return out
}

func (r *rebinder) node(n Node) Node {
	if n == nil || r.err != nil {
		return n
	}
	switch t := n.(type) {
	case *Scan:
		c := *t
		c.Snapshot = r.snapshot
		return &c

	case *IndexScan:
		c := *t
		c.Snapshot = r.snapshot
		if c.EqParam > 0 {
			if c.EqParam > len(r.args) {
				r.fail(fmt.Errorf("no argument bound for parameter $%d", c.EqParam))
				return &c
			}
			key := r.args[c.EqParam-1]
			// Coerce against the indexed column's declared type so the
			// probe key compares like a stored value.
			schema := c.Rel.Schema()
			for _, ci := range schema {
				if ci.Name == c.Column {
					v, err := bindParamValue(key, ci.Type, c.EqParam)
					if err != nil {
						r.fail(err)
						return &c
					}
					key = v
					break
				}
			}
			c.Eq = &key
			c.EqParam = 0
		}
		return &c

	case *WorkingScan:
		c := *t
		return &c

	case *Values:
		c := *t
		return &c

	case *Filter:
		c := *t
		c.Child = r.node(t.Child)
		c.Pred = r.expr(t.Pred)
		return &c

	case *Project:
		c := *t
		c.Child = r.node(t.Child)
		c.Exprs = r.exprs(t.Exprs)
		return &c

	case *Join:
		c := *t
		c.L = r.node(t.L)
		c.R = r.node(t.R)
		c.On = r.expr(t.On)
		c.Residual = r.expr(t.Residual)
		return &c

	case *Aggregate:
		c := *t
		c.Child = r.node(t.Child)
		c.Keys = r.exprs(t.Keys)
		if len(r.args) > 0 && t.Aggs != nil {
			aggs := make([]AggSpec, len(t.Aggs))
			copy(aggs, t.Aggs)
			for i := range aggs {
				aggs[i].Arg = r.expr(aggs[i].Arg)
			}
			c.Aggs = aggs
		}
		return &c

	case *Sort:
		c := *t
		c.Child = r.node(t.Child)
		return &c

	case *Limit:
		c := *t
		c.Child = r.node(t.Child)
		return &c

	case *Distinct:
		c := *t
		c.Child = r.node(t.Child)
		return &c

	case *Union:
		c := *t
		c.L = r.node(t.L)
		c.R = r.node(t.R)
		return &c

	case *RecursiveCTE:
		c := *t
		c.Init = r.node(t.Init)
		c.Rec = r.node(t.Rec)
		return &c

	case *Iterate:
		c := *t
		c.Init = r.node(t.Init)
		c.Step = r.node(t.Step)
		c.Stop = r.node(t.Stop)
		return &c

	case *KMeans:
		c := *t
		c.Data = r.node(t.Data)
		c.Centers = r.node(t.Centers)
		return &c

	case *KMeansAssign:
		c := *t
		c.Data = r.node(t.Data)
		c.Centers = r.node(t.Centers)
		return &c

	case *PageRank:
		c := *t
		c.Edges = r.node(t.Edges)
		return &c

	case *NaiveBayesTrain:
		c := *t
		c.Data = r.node(t.Data)
		return &c

	case *NaiveBayesPredict:
		c := *t
		c.Model = r.node(t.Model)
		c.Data = r.node(t.Data)
		return &c

	case *Alias:
		c := *t
		c.Child = r.node(t.Child)
		return &c

	case *Shared:
		if c, ok := r.shared[t]; ok {
			return c
		}
		c := &Shared{Invariant: t.Invariant}
		if r.shared == nil {
			r.shared = map[*Shared]*Shared{}
		}
		r.shared[t] = c
		c.Child = r.node(t.Child)
		return c

	default:
		r.fail(fmt.Errorf("cannot rebind plan node %T", n))
		return n
	}
}
