package plan

import "fmt"

// Morsel splitting: a pipeline rooted at a base-table Scan (or at a
// WorkingScan over a bound working table) can be cloned into row-range
// restricted copies, one per morsel, which the executor runs on a worker
// pool. Filter/Project/Alias nodes are pure per-row transforms and commute
// with the split; everything else is a pipeline breaker.

// MorselLeaf returns the splittable leaf (a *Scan or *WorkingScan) at the
// root of a Filter/Project/Alias pipeline, or nil when the pipeline is not
// splittable.
func MorselLeaf(p Node) Node {
	switch n := p.(type) {
	case *Scan:
		return n
	case *WorkingScan:
		return n
	case *Filter:
		return MorselLeaf(n.Child)
	case *Project:
		return MorselLeaf(n.Child)
	case *Alias:
		return MorselLeaf(n.Child)
	}
	return nil
}

// ClonePipeline copies a Filter/Project/Alias chain with the leaf scan
// restricted to [lo, hi). Expressions are shared; they are immutable after
// planning.
func ClonePipeline(p Node, lo, hi int) Node {
	switch n := p.(type) {
	case *Scan:
		c := *n
		c.Lo, c.Hi = lo, hi
		return &c
	case *WorkingScan:
		c := *n
		c.Lo, c.Hi = lo, hi
		return &c
	case *Filter:
		c := *n
		c.Child = ClonePipeline(n.Child, lo, hi)
		return &c
	case *Project:
		c := *n
		c.Child = ClonePipeline(n.Child, lo, hi)
		return &c
	case *Alias:
		c := *n
		c.Child = ClonePipeline(n.Child, lo, hi)
		return &c
	}
	panic(fmt.Sprintf("plan.ClonePipeline: unexpected node %T", p))
}

// SplitPipeline clones p into row-range morsels covering [0, rows). It
// returns nil when the input is too small to be worth splitting or when the
// clamp leaves a single part (callers then take the cheaper serial path).
func SplitPipeline(p Node, rows, parts, minRowsPerPart int) []Node {
	if parts <= 1 || rows < 2*minRowsPerPart {
		return nil
	}
	if parts > rows/minRowsPerPart {
		parts = rows / minRowsPerPart
	}
	if parts <= 1 {
		return nil
	}
	out := make([]Node, 0, parts)
	chunk := (rows + parts - 1) / parts
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		out = append(out, ClonePipeline(p, lo, hi))
	}
	return out
}
