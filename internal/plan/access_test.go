package plan

import (
	"strings"
	"testing"

	"lambdadb/internal/sql"
	"lambdadb/internal/storage"
)

func parseSelect(q string) (*sql.Select, error) {
	st, err := sql.ParseOne(q)
	if err != nil {
		return nil, err
	}
	return st.(*sql.Select), nil
}

// mapStats is a test StatsProvider backed by a map.
type mapStats map[string]*TableStats

func (m mapStats) TableStats(table string) (*TableStats, bool) {
	ts, ok := m[table]
	return ts, ok
}

func TestChooseIndexScanPointProbe(t *testing.T) {
	s := testStore(t)
	if err := s.CreateIndex(storage.IndexDef{Name: "t_a", Table: "t", Column: "a", Kind: storage.HashIndex}); err != nil {
		t.Fatal(err)
	}
	// 100 distinct keys: a point probe is ~1% selective even without
	// ANALYZE (the index key count is the NDV proxy).
	n := buildPlan(t, s, "SELECT * FROM t WHERE a = 5")
	tree := ExplainTree(n)
	if !strings.Contains(tree, "IndexScan t using t_a (a = 5)") {
		t.Fatalf("expected IndexScan, got:\n%s", tree)
	}
	if strings.Contains(tree, "Filter") {
		t.Fatalf("fully absorbed predicate should leave no Filter:\n%s", tree)
	}
}

func TestChooseIndexScanResidualFilter(t *testing.T) {
	s := testStore(t)
	if err := s.CreateIndex(storage.IndexDef{Name: "t_a", Table: "t", Column: "a", Kind: storage.OrderedIndex}); err != nil {
		t.Fatal(err)
	}
	n := buildPlan(t, s, "SELECT * FROM t WHERE a = 5 AND b > 1.5")
	tree := ExplainTree(n)
	if !strings.Contains(tree, "IndexScan") {
		t.Fatalf("expected IndexScan, got:\n%s", tree)
	}
	if !strings.Contains(tree, "Filter") {
		t.Fatalf("non-absorbed conjunct must stay in a residual Filter:\n%s", tree)
	}
}

func TestLowSelectivityKeepsFullScan(t *testing.T) {
	s := testStore(t)
	if err := s.CreateIndex(storage.IndexDef{Name: "t_a", Table: "t", Column: "a", Kind: storage.OrderedIndex}); err != nil {
		t.Fatal(err)
	}
	// Without stats a range predicate estimates at 30% — over the gate.
	n := buildPlan(t, s, "SELECT * FROM t WHERE a >= 0")
	tree := ExplainTree(n)
	if strings.Contains(tree, "IndexScan") {
		t.Fatalf("low-selectivity range must keep the full scan:\n%s", tree)
	}
	if !strings.Contains(tree, "Scan t") {
		t.Fatalf("expected full Scan, got:\n%s", tree)
	}
}

func TestRangeProbeWithStats(t *testing.T) {
	s := testStore(t)
	if err := s.CreateIndex(storage.IndexDef{Name: "t_a", Table: "t", Column: "a", Kind: storage.OrderedIndex}); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	st, err := parseSelect("SELECT * FROM t WHERE a >= 90 AND a <= 94")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(s, s.Snapshot())
	b.Stats = mapStats{"t": ts}
	n, err := b.BuildSelect(st)
	if err != nil {
		t.Fatal(err)
	}
	tree := ExplainTree(n)
	if !strings.Contains(tree, "IndexScan t using t_a (90 <= a <= 94)") {
		t.Fatalf("expected selective range IndexScan, got:\n%s", tree)
	}
	// Hash indexes must never serve range probes.
	s2 := testStore(t)
	if err := s2.CreateIndex(storage.IndexDef{Name: "t_a", Table: "t", Column: "a", Kind: storage.HashIndex}); err != nil {
		t.Fatal(err)
	}
	b2 := NewBuilder(s2, s2.Snapshot())
	b2.Stats = mapStats{"t": ts}
	n2, err := b2.BuildSelect(st)
	if err != nil {
		t.Fatal(err)
	}
	if tree2 := ExplainTree(n2); strings.Contains(tree2, "IndexScan") {
		t.Fatalf("hash index must not serve a range probe:\n%s", tree2)
	}
}

func TestJoinReorderSmallestFirst(t *testing.T) {
	s := testStore(t)
	// t has 100 rows, u has 10; a three-way join should start from u.
	n := buildPlan(t, s,
		"SELECT * FROM t JOIN u ON t.a = u.a JOIN t AS t2 ON u.a = t2.a")
	tree := ExplainTree(n)
	iu := strings.Index(tree, "Scan u")
	it := strings.Index(tree, "Scan t")
	if iu < 0 || it < 0 {
		t.Fatalf("missing scans in:\n%s", tree)
	}
	if iu > it {
		t.Fatalf("expected u (10 rows) to lead the reordered join:\n%s", tree)
	}
	// No cross products: every join must carry a condition.
	if strings.Contains(tree, "CrossJoin") {
		t.Fatalf("reorder introduced a cross product:\n%s", tree)
	}
}

func TestStatsDrivenFilterSelectivity(t *testing.T) {
	s := testStore(t)
	tbl, err := s.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := CollectTableStats(tbl, s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	st, err := parseSelect("SELECT * FROM t WHERE a = 5")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(s, s.Snapshot())
	b.Stats = mapStats{"t": ts}
	n, err := b.BuildSelect(st)
	if err != nil {
		t.Fatal(err)
	}
	// With 100 distinct values the stats say 1% — the heuristic would have
	// said 10%. Walk to the Filter (no index exists, so it survives).
	var f *Filter
	var walk func(Node)
	walk = func(m Node) {
		if ff, ok := m.(*Filter); ok {
			f = ff
		}
		for _, c := range m.Children() {
			walk(c)
		}
	}
	walk(n)
	if f == nil {
		t.Fatalf("no Filter in plan:\n%s", ExplainTree(n))
	}
	if f.Sel != 0.01 {
		t.Fatalf("Filter.Sel = %v, want 0.01", f.Sel)
	}
	if got := f.Card(); got != 1 {
		t.Fatalf("Filter.Card() = %v, want 1", got)
	}
}
