package engine

import (
	"context"
	"fmt"

	"lambdadb/internal/expr"
	"lambdadb/internal/sql"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// coerce converts a value to a column type, widening numerics.
func coerce(v types.Value, to types.Type) (types.Value, error) {
	if v.Null {
		return types.NewNull(to), nil
	}
	if v.T == to {
		return v, nil
	}
	if v.T.IsNumeric() && to.IsNumeric() {
		if to == types.Float64 {
			return types.NewFloat(v.AsFloat()), nil
		}
		return types.NewInt(v.AsInt()), nil
	}
	return types.Value{}, fmt.Errorf("cannot store %s value in %s column", v.T, to)
}

func (s *Session) execInsert(ctx context.Context, n *sql.Insert) (*Result, error) {
	tbl, err := s.db.store.Table(n.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()

	// Map the insert column list to table positions.
	colIdx := make([]int, 0, len(schema))
	if len(n.Columns) == 0 {
		for i := range schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range n.Columns {
			i := schema.IndexOf(name)
			if i < 0 {
				return nil, fmt.Errorf("table %q has no column %q", n.Table, name)
			}
			colIdx = append(colIdx, i)
		}
	}

	batch := types.NewBatch(schema)
	appendRow := func(vals []types.Value) error {
		if len(vals) != len(colIdx) {
			return fmt.Errorf("INSERT expects %d values, got %d", len(colIdx), len(vals))
		}
		row := make([]types.Value, len(schema))
		for i := range row {
			row[i] = types.NewNull(schema[i].Type)
		}
		for k, v := range vals {
			cv, err := coerce(v, schema[colIdx[k]].Type)
			if err != nil {
				return err
			}
			row[colIdx[k]] = cv
		}
		batch.AppendRow(row)
		return nil
	}

	switch {
	case len(n.Rows) > 0:
		emptyCtx := expr.NewResolveCtx(nil, "")
		for _, exprRow := range n.Rows {
			vals := make([]types.Value, len(exprRow))
			for i, e := range exprRow {
				re, err := expr.Resolve(e, emptyCtx)
				if err != nil {
					return nil, err
				}
				v, err := expr.EvalConst(re)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			if err := appendRow(vals); err != nil {
				return nil, err
			}
		}
	case n.Query != nil:
		node, err := s.newBuilder().BuildSelect(n.Query)
		if err != nil {
			return nil, err
		}
		// runPlan applies the session timeout, memory limit, and telemetry,
		// so an INSERT ... SELECT is governed like any SELECT.
		mat, err := s.runPlan(ctx, node)
		if err != nil {
			return nil, err
		}
		for _, src := range mat.Batches {
			cnt := src.Len()
			for i := 0; i < cnt; i++ {
				if err := appendRow(src.Row(i)); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("INSERT needs VALUES or a SELECT")
	}

	affected := batch.Len()
	err = s.write(func(tx *storage.Txn) error { return tx.Insert(tbl, batch) })
	if err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}

// compilePredicate resolves and compiles an optional WHERE clause against a
// table's schema. A nil clause accepts all rows.
func compilePredicate(where expr.Expr, schema types.Schema, table string) (expr.Evaluator, error) {
	if where == nil {
		return nil, nil
	}
	rc := expr.NewResolveCtx(schema, table)
	pred, err := expr.Resolve(where, rc)
	if err != nil {
		return nil, err
	}
	if pred.Type() != types.Bool {
		return nil, fmt.Errorf("WHERE must be boolean, got %s", pred.Type())
	}
	return expr.Compile(pred)
}

func (s *Session) execDelete(n *sql.Delete) (*Result, error) {
	tbl, err := s.db.store.Table(n.Table)
	if err != nil {
		return nil, err
	}
	pred, err := compilePredicate(n.Where, tbl.Schema(), n.Table)
	if err != nil {
		return nil, err
	}
	affected := 0
	err = s.write(func(tx *storage.Txn) error {
		return tbl.ScanWithRowIDs(s.snapshot(), func(b *types.Batch, rowIDs []int) error {
			match, err := matchRows(b, pred)
			if err != nil {
				return err
			}
			for i, m := range match {
				if !m {
					continue
				}
				if err := tx.Delete(tbl, rowIDs[i]); err != nil {
					return err
				}
				affected++
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}

// matchRows evaluates an optional predicate over a batch.
func matchRows(b *types.Batch, pred expr.Evaluator) ([]bool, error) {
	n := b.Len()
	match := make([]bool, n)
	if pred == nil {
		for i := range match {
			match[i] = true
		}
		return match, nil
	}
	c, err := pred(b)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		match[i] = !c.IsNull(i) && c.Bools[i]
	}
	return match, nil
}

func (s *Session) execUpdate(n *sql.Update) (*Result, error) {
	tbl, err := s.db.store.Table(n.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	pred, err := compilePredicate(n.Where, schema, n.Table)
	if err != nil {
		return nil, err
	}

	// Compile SET expressions against the table schema.
	rc := expr.NewResolveCtx(schema, n.Table)
	setCols := make([]int, len(n.Set))
	setEvals := make([]expr.Evaluator, len(n.Set))
	for i, a := range n.Set {
		ci := schema.IndexOf(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("table %q has no column %q", n.Table, a.Column)
		}
		e, err := expr.Resolve(a.Value, rc)
		if err != nil {
			return nil, err
		}
		if e.Type() != schema[ci].Type {
			if !(e.Type().IsNumeric() && schema[ci].Type.IsNumeric()) {
				return nil, fmt.Errorf("cannot assign %s to column %q (%s)",
					e.Type(), a.Column, schema[ci].Type)
			}
			e = &expr.Cast{E: e, To: schema[ci].Type}
		}
		ev, err := expr.Compile(e)
		if err != nil {
			return nil, err
		}
		setCols[i], setEvals[i] = ci, ev
	}

	affected := 0
	err = s.write(func(tx *storage.Txn) error {
		return tbl.ScanWithRowIDs(s.snapshot(), func(b *types.Batch, rowIDs []int) error {
			match, err := matchRows(b, pred)
			if err != nil {
				return err
			}
			// Compute replacement values over the whole batch once.
			newCols := make([]*types.Column, len(setEvals))
			for k, ev := range setEvals {
				c, err := ev(b)
				if err != nil {
					return err
				}
				newCols[k] = c
			}
			inserted := types.NewBatch(schema)
			for i, m := range match {
				if !m {
					continue
				}
				if err := tx.Delete(tbl, rowIDs[i]); err != nil {
					return err
				}
				row := b.Row(i)
				for k, ci := range setCols {
					row[ci] = newCols[k].Value(i)
				}
				inserted.AppendRow(row)
				affected++
			}
			if inserted.Len() > 0 {
				return tx.Insert(tbl, inserted)
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}
