package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lambdadb/internal/exec"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
)

// newBigBatch fills a (k BIGINT, v DOUBLE) batch with k = i % 7, v = i.
func newBigBatch(schema types.Schema, n int) *types.Batch {
	b := types.NewBatch(schema)
	for i := 0; i < n; i++ {
		b.Cols[0].AppendInt(int64(i % 7))
		b.Cols[1].AppendFloat(float64(i))
	}
	return b
}

// explainAnalyzeLines runs EXPLAIN ANALYZE and returns the plan lines.
func explainAnalyzeLines(t *testing.T, db *DB, stmt string) []string {
	t.Helper()
	r, err := db.Exec("EXPLAIN ANALYZE " + stmt)
	if err != nil {
		t.Fatalf("EXPLAIN ANALYZE %s: %v", stmt, err)
	}
	lines := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		lines = append(lines, row[0].S)
	}
	return lines
}

func TestExplainAnalyzeJoinAgg(t *testing.T) {
	db := Open(WithWorkers(2))
	db.MustExec(`CREATE TABLE orders (id BIGINT, cust BIGINT, amount DOUBLE)`)
	db.MustExec(`CREATE TABLE custs (cid BIGINT, region VARCHAR)`)
	db.MustExec(`INSERT INTO custs VALUES (1, 'eu'), (2, 'us'), (3, 'eu')`)
	for i := 0; i < 30; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d, %d.5)`, i, i%3+1, i))
	}
	lines := explainAnalyzeLines(t, db,
		`SELECT region, SUM(amount) FROM orders JOIN custs ON cust = cid GROUP BY region ORDER BY region`)
	text := strings.Join(lines, "\n")
	for _, want := range []string{"Join", "Aggregate", "Sort", "Scan orders", "Scan custs",
		"rows=30", "rows=2", "Execution time:", "Rows: 2", "Peak memory:", "Workers: 2"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
	// Every executed operator line carries actuals.
	if !strings.Contains(lines[0], "time=") || !strings.Contains(lines[0], "bytes=") {
		t.Errorf("root line lacks actuals: %s", lines[0])
	}
}

func TestExplainAnalyzeIterateShowsIterations(t *testing.T) {
	db := Open(WithWorkers(2))
	lines := explainAnalyzeLines(t, db, `SELECT count(*) FROM ITERATE (
		(SELECT 1 "x", 0 "iter"),
		(SELECT x + 1, iter + 1 FROM iterate),
		(SELECT x FROM iterate WHERE iter >= 3 LIMIT 1))`)
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "Iterate") {
		t.Fatalf("no Iterate operator:\n%s", text)
	}
	iters := strings.Count(text, "[iter ")
	if iters < 3 {
		t.Errorf("want >= 3 per-iteration lines, got %d:\n%s", iters, text)
	}
}

func TestExplainAnalyzePageRankShowsDeltas(t *testing.T) {
	db := Open(WithWorkers(2))
	db.MustExec(`CREATE TABLE edges (src BIGINT, dest BIGINT)`)
	db.MustExec(`INSERT INTO edges VALUES (0,1),(1,2),(2,0),(2,1),(0,2)`)
	lines := explainAnalyzeLines(t, db,
		`SELECT * FROM PAGERANK ((SELECT src, dest FROM edges), 0.85, 0, 5)`)
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "PageRank") {
		t.Fatalf("no PageRank operator:\n%s", text)
	}
	if got := strings.Count(text, "[iter "); got < 2 {
		t.Errorf("want per-iteration lines, got %d:\n%s", got, text)
	}
	if !strings.Contains(text, "delta=") {
		t.Errorf("iteration lines lack deltas:\n%s", text)
	}
}

func TestExplainAnalyzeInsertSelectAndDML(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE copy_nums (n BIGINT)`)
	lines := explainAnalyzeLines(t, db, `INSERT INTO copy_nums SELECT n FROM nums`)
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "Insert into copy_nums") || !strings.Contains(text, "rows=5") {
		t.Errorf("INSERT...SELECT analyze output:\n%s", text)
	}
	// The INSERT really executed.
	if got := queryInts(t, db, `SELECT count(*) FROM copy_nums`); got[0] != 5 {
		t.Errorf("copy_nums rows = %d", got[0])
	}
	lines = explainAnalyzeLines(t, db, `DELETE FROM copy_nums WHERE n > 3`)
	text = strings.Join(lines, "\n")
	if !strings.Contains(text, "Delete from copy_nums") || !strings.Contains(text, "Rows: 2") {
		t.Errorf("DELETE analyze output:\n%s", text)
	}
}

func TestPlainExplainDML(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Exec(`EXPLAIN UPDATE nums SET f = f + 1 WHERE n > 2`)
	if err != nil {
		t.Fatal(err)
	}
	text := ""
	for _, row := range r.Rows {
		text += row[0].S + "\n"
	}
	for _, want := range []string{"Update nums", "Filter", "Scan nums"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN UPDATE missing %q:\n%s", want, text)
		}
	}
	// Plain EXPLAIN must not execute.
	if got := queryOneFloat(t, db, `SELECT f FROM nums WHERE n = 3`); got != 3.5 {
		t.Errorf("EXPLAIN UPDATE executed the update: f = %v", got)
	}
}

// TestStatsAccuracySerialVsParallel pushes known row counts through
// join/sort/agg and demands identical per-operator RowsOut between a
// serial and an 8-worker run.
func TestStatsAccuracySerialVsParallel(t *testing.T) {
	const n = 40_000
	load := func(workers int) *DB {
		db := Open(WithWorkers(workers))
		db.MustExec(`CREATE TABLE big (k BIGINT, v DOUBLE)`)
		db.MustExec(`CREATE TABLE dims (k BIGINT, name VARCHAR)`)
		db.MustExec(`INSERT INTO dims VALUES (0,'a'),(1,'b'),(2,'c'),(3,'d'),(4,'e'),(5,'f'),(6,'g')`)
		store := db.Store()
		tbl, err := store.Table("big")
		if err != nil {
			t.Fatal(err)
		}
		tx := store.Begin()
		b := newBigBatch(tbl.Schema(), n)
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return db
	}
	const q = `SELECT name, count(*), sum(v) FROM big JOIN dims ON big.k = dims.k
		WHERE v < 20000 GROUP BY name ORDER BY name`
	trees := map[int]*exec.OpStats{}
	for _, workers := range []int{1, 8} {
		db := load(workers)
		s := db.NewSession()
		s.CollectStats(true)
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
		trees[workers] = s.LastStats()
		s.Close()
	}
	var flatten func(n *exec.OpStats, out map[string]int64)
	flatten = func(n *exec.OpStats, out map[string]int64) {
		out[n.Name] += n.RowsOut
		for _, c := range n.Children {
			flatten(c, out)
		}
	}
	serial, parallel := map[string]int64{}, map[string]int64{}
	flatten(trees[1], serial)
	flatten(trees[8], parallel)
	if len(serial) == 0 {
		t.Fatal("no stats recorded")
	}
	for name, rows := range serial {
		if parallel[name] != rows {
			t.Errorf("operator %q: serial rows=%d parallel rows=%d", name, rows, parallel[name])
		}
	}
	// Spot-check the known counts: the filtered scan side feeds 20000 rows,
	// the aggregate emits 7 groups.
	found := false
	for name, rows := range serial {
		if strings.HasPrefix(name, "Aggregate") {
			found = true
			if rows != 7 {
				t.Errorf("aggregate rows = %d, want 7", rows)
			}
		}
	}
	if !found {
		t.Error("no Aggregate operator in stats tree")
	}
}

func TestQueryLogStatuses(t *testing.T) {
	defer faultinject.Reset()
	db := newTestDB(t)

	// ok
	db.MustExec(`SELECT n FROM nums`)
	// error
	if _, err := db.Exec(`SELECT * FROM no_such_table`); err == nil {
		t.Fatal("want error")
	}
	// cancelled: pull the plug mid-iteration.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	faultinject.Set("exec.iterate.round", func() error {
		once.Do(cancel)
		return nil
	})
	if _, err := db.ExecContext(ctx, slowIterate); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	faultinject.Reset()

	// timeout
	tdb := Open(WithStatementTimeout(20*time.Millisecond), WithIterationLimit(1_000_000_000))
	faultinject.Set("exec.iterate.round", func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if _, err := tdb.Exec(slowIterate); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	faultinject.Reset()

	statusOf := func(entries []telemetry.QueryLogEntry, stmt string) string {
		for i := len(entries) - 1; i >= 0; i-- {
			if entries[i].Statement == stmt {
				return entries[i].Status
			}
		}
		return "<missing>"
	}
	log := db.QueryLog()
	if got := statusOf(log, `SELECT n FROM nums`); got != telemetry.StatusOK {
		t.Errorf("ok statement status = %q", got)
	}
	if got := statusOf(log, `SELECT * FROM no_such_table`); got != telemetry.StatusError {
		t.Errorf("error statement status = %q", got)
	}
	if got := statusOf(log, strings.TrimSpace(slowIterate)); got != telemetry.StatusCancelled {
		t.Errorf("cancelled statement status = %q", got)
	}
	if got := statusOf(tdb.QueryLog(), strings.TrimSpace(slowIterate)); got != telemetry.StatusTimeout {
		t.Errorf("timed-out statement status = %q", got)
	}

	// The same statuses are visible through SQL.
	r, err := tdb.Query(`SELECT statement, status FROM system.query_log WHERE status = 'timeout'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("timeout rows in system.query_log = %d", len(r.Rows))
	}
}

func TestQueryLogMatchesStatement(t *testing.T) {
	db := newTestDB(t)
	before := time.Now()
	r, err := db.Query(`SELECT n FROM nums WHERE n > 2`)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := db.Query(`SELECT statement, duration_ms, rows, status FROM system.query_log
		WHERE statement = 'SELECT n FROM nums WHERE n > 2'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rq.Rows) != 1 {
		t.Fatalf("query_log rows = %d", len(rq.Rows))
	}
	row := rq.Rows[0]
	if row[2].AsInt() != int64(len(r.Rows)) {
		t.Errorf("logged rows = %d, want %d", row[2].AsInt(), len(r.Rows))
	}
	if row[3].S != telemetry.StatusOK {
		t.Errorf("status = %q", row[3].S)
	}
	maxMS := float64(time.Since(before).Nanoseconds()) / 1e6
	if ms := row[1].AsFloat(); ms <= 0 || ms > maxMS {
		t.Errorf("duration_ms = %v (elapsed bound %v)", ms, maxMS)
	}
}

func TestSystemMetricsCounters(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`SELECT n FROM nums`)
	_, _ = db.Exec(`SELECT * FROM missing`)
	r, err := db.Query(`SELECT name, value FROM system.metrics`)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]int64{}
	for _, row := range r.Rows {
		vals[row[0].S] = row[1].AsInt()
	}
	if vals["statements_total"] < 3 {
		t.Errorf("statements_total = %d", vals["statements_total"])
	}
	if vals["statements_error"] < 1 {
		t.Errorf("statements_error = %d", vals["statements_error"])
	}
	if vals["rows_returned"] < 5 {
		t.Errorf("rows_returned = %d", vals["rows_returned"])
	}
}

// TestSystemMetricsConcurrentReads hammers system.metrics reads while
// queries run on other goroutines; run under -race this verifies the
// lock-free counters and the virtual-table snapshotting.
func TestSystemMetricsConcurrentReads(t *testing.T) {
	db := newTestDB(t)
	const readers, writers, rounds = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := db.Query(`SELECT sum(f) FROM nums WHERE n > 1`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := db.Query(`SELECT name, value FROM system.metrics`); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Query(`SELECT count(*) FROM system.query_log`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := db.Metrics().StatementsOK.Load(); got < writers*rounds {
		t.Errorf("statements_ok = %d, want >= %d", got, writers*rounds)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	db := Open(WithWorkers(2), WithSlowQueryThreshold(time.Nanosecond, &buf))
	db.MustExec(`CREATE TABLE t (x BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	db.MustExec(`SELECT count(*) FROM t WHERE x > 1`)

	var sawStats bool
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("slow log lines = %d", len(lines))
	}
	for _, line := range lines {
		var rec struct {
			Statement  string        `json:"statement"`
			DurationMS float64       `json:"duration_ms"`
			Status     string        `json:"status"`
			Stats      *exec.OpStats `json:"stats"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad slow-log line %q: %v", line, err)
		}
		if rec.Status != telemetry.StatusOK || rec.DurationMS <= 0 {
			t.Errorf("slow-log record = %+v", rec)
		}
		if rec.Stats != nil && strings.HasPrefix(rec.Statement, "SELECT") {
			sawStats = true
			if rec.Stats.TotalRows() == 0 && len(rec.Stats.Children) == 0 {
				t.Errorf("empty stats tree for %q", rec.Statement)
			}
		}
	}
	if !sawStats {
		t.Error("no slow-log record carried a stats tree")
	}
	if got := db.Metrics().SlowQueries.Load(); got < 3 {
		t.Errorf("slow_queries = %d", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log sinks in tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
