package engine

import (
	"testing"
)

func TestCTEReferencedTwice(t *testing.T) {
	db := newTestDB(t)
	// Two references to the same CTE in one query (materialized once).
	got := queryInts(t, db, `WITH big AS (SELECT n FROM nums WHERE n > 2)
		SELECT a.n FROM big a JOIN big b ON a.n = b.n ORDER BY a.n`)
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestNestedCTEs(t *testing.T) {
	// A CTE referencing another CTE — regression test for the shared-
	// materialization deadlock.
	db := newTestDB(t)
	got := queryInts(t, db, `WITH
		a AS (SELECT n FROM nums WHERE n > 1),
		b AS (SELECT n FROM a WHERE n < 5)
		SELECT n FROM b ORDER BY n`)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestCTEShadowsTable(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `WITH nums AS (SELECT 42 AS n) SELECT n FROM nums`)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("CTE should shadow the base table, got %v", got)
	}
	// Out of the WITH scope, the base table is visible again.
	got = queryInts(t, db, `SELECT count(*) FROM nums`)
	if got[0] != 5 {
		t.Fatalf("base table rows = %v", got)
	}
}

func TestCTEColumnAliases(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`WITH renamed (a, b) AS (SELECT n, f FROM nums WHERE n = 1)
		SELECT a, b FROM renamed`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].I != 1 || r.Rows[0][1].F != 1.5 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Wrong arity must fail.
	if _, err := db.Query(`WITH x (a) AS (SELECT n, f FROM nums) SELECT a FROM x`); err == nil {
		t.Error("column alias arity mismatch should fail")
	}
}

func TestCTEInsideIterateIsPerIteration(t *testing.T) {
	// A CTE inside an ITERATE step that reads the working table must be
	// re-evaluated every iteration (epoch-scoped sharing), or the loop
	// would never progress.
	db := Open()
	got := queryInts(t, db, `SELECT * FROM ITERATE (
		(SELECT 1 "x"),
		(WITH doubled AS (SELECT x * 2 AS x FROM iterate) SELECT x FROM doubled),
		(SELECT x FROM iterate WHERE x >= 64))`)
	if len(got) != 1 || got[0] != 64 {
		t.Fatalf("got %v, want [64]", got)
	}
}

func TestInvariantCTEInsideIterate(t *testing.T) {
	// A CTE inside the step that does NOT read the working table is
	// loop-invariant; caching it across iterations must not change the
	// result.
	db := newTestDB(t)
	got := queryInts(t, db, `SELECT * FROM ITERATE (
		(SELECT 0 "x"),
		(WITH total AS (SELECT sum(n) AS s FROM nums)
		 SELECT x + t.s FROM iterate, total t),
		(SELECT x FROM iterate WHERE x >= 45))`)
	// sum(n) = 15; 0 → 15 → 30 → 45.
	if len(got) != 1 || got[0] != 45 {
		t.Fatalf("got %v, want [45]", got)
	}
}

func TestRecursiveCTEJoinsBaseTable(t *testing.T) {
	// BFS depth computation over a path graph.
	db := Open()
	db.MustExec(`CREATE TABLE e (s BIGINT, d BIGINT)`)
	db.MustExec(`INSERT INTO e VALUES (1,2),(2,3),(3,4),(4,5)`)
	r, err := db.Query(`WITH RECURSIVE walk (v, depth) AS (
		SELECT 1, 0
		UNION ALL
		SELECT e.d, walk.depth + 1 FROM walk JOIN e ON walk.v = e.s
	) SELECT v, depth FROM walk ORDER BY depth`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 || r.Rows[4][0].I != 5 || r.Rows[4][1].I != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestTwoIndependentIteratesInOneQuery(t *testing.T) {
	db := Open()
	got := queryInts(t, db, `SELECT a.x + b.y FROM
		(SELECT * FROM ITERATE ((SELECT 1 "x"), (SELECT x + 1 FROM iterate), (SELECT x FROM iterate WHERE x >= 3))) a,
		(SELECT * FROM ITERATE ((SELECT 10 "y"), (SELECT y + 10 FROM iterate), (SELECT y FROM iterate WHERE y >= 30))) b`)
	if len(got) != 1 || got[0] != 33 {
		t.Fatalf("got %v, want [33]", got)
	}
}
