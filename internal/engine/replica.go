package engine

import (
	"fmt"

	"lambdadb/internal/sql"
	"lambdadb/internal/types"
)

// ReadOnlyError rejects a write on a node that is not the writable
// primary. It names the primary, when known, so a client (or router)
// knows where writes must go; the address round-trips through the wire
// protocol's read_only error code.
type ReadOnlyError struct {
	Primary   string // primary address the node follows ("" when unknown)
	Statement string // the rejected statement kind, e.g. "INSERT"
}

func (e *ReadOnlyError) Error() string {
	if e.Primary == "" {
		return fmt.Sprintf("%s rejected: this node is read-only (not the primary)", e.Statement)
	}
	return fmt.Sprintf("%s rejected: this is a read-only replica of %s", e.Statement, e.Primary)
}

// roleState is the node's live cluster role. Failover swaps it at runtime
// (promotion makes a replica writable; demotion fences an ex-primary), so
// it lives behind an atomic pointer rather than a construction-time field.
type roleState struct {
	writable bool   // writes accepted (this node is the primary)
	primary  string // the primary's address when not writable ("" when unknown)
}

// WithReadReplica marks the database a read-only replica following the
// primary at addr: every statement that would change data or schema —
// including CHECKPOINT, whose log rotation would break the mirrored log —
// fails with a *ReadOnlyError naming the primary. Reads, transactions
// around reads, ANALYZE, and EXPLAIN stay available.
func WithReadReplica(addr string) Option {
	return func(db *DB) { db.replicaOf = addr }
}

// ReplicaOf returns the primary address this DB follows, or "" when it is
// the primary (or read-only with no primary known).
func (db *DB) ReplicaOf() string { return db.role.Load().primary }

// Writable reports whether this node accepts writes.
func (db *DB) Writable() bool { return db.role.Load().writable }

// BecomePrimary makes the node writable. Promotion calls it after the
// replication stream is stopped and the bumped epoch is durable.
func (db *DB) BecomePrimary() { db.role.Store(&roleState{writable: true}) }

// BecomeReplica fences the node read-only, recording the primary writes
// should be redirected to. addr may be "" when no primary is known yet
// (a demoted primary waiting to learn its successor): writes are still
// rejected, just without a redirect target.
func (db *DB) BecomeReplica(addr string) {
	db.role.Store(&roleState{writable: false, primary: addr})
}

// rejectOnReplica returns the *ReadOnlyError for st when the DB is not
// writable and st writes; nil otherwise.
func (db *DB) rejectOnReplica(st sql.Statement) error {
	role := db.role.Load()
	if role.writable {
		return nil
	}
	var kind string
	switch st.(type) {
	case *sql.Insert:
		kind = "INSERT"
	case *sql.Update:
		kind = "UPDATE"
	case *sql.Delete:
		kind = "DELETE"
	case *sql.CreateTable:
		kind = "CREATE TABLE"
	case *sql.DropTable:
		kind = "DROP TABLE"
	case *sql.CreateIndex:
		kind = "CREATE INDEX"
	case *sql.DropIndex:
		kind = "DROP INDEX"
	case *sql.Copy:
		kind = "COPY"
	case *sql.Checkpoint:
		// The replica's log mirrors the primary's byte for byte; a local
		// CHECKPOINT would rotate it out of alignment. The replica
		// checkpoints itself at stream boundaries instead.
		kind = "CHECKPOINT"
	default:
		return nil
	}
	return &ReadOnlyError{Primary: role.primary, Statement: kind}
}

// ReplicationRow is one row of system.replication: the local role plus one
// peer link — a replica reports its primary; a primary reports each
// connected replica (and a placeholder row when none are connected).
type ReplicationRow struct {
	Role         string // "primary" or "replica"
	Peer         string // remote address ("" when no peer is connected)
	State        string // e.g. "streaming", "catchup", "connecting", "idle"
	Epoch        uint64 // cluster fencing epoch the node is serving under
	WalSeg       uint64 // durable log position: segment ...
	WalOff       int64  // ... and offset (local on a replica, acked on a primary)
	AppliedClock uint64 // commit clock applied locally (replica) / acked (primary)
	PrimaryClock uint64 // latest commit clock known on the primary
	LastContact  int64  // ms since the peer was last heard from (-1: never)
}

// ReplicationReporter feeds system.replication; internal/repl implements
// it for both roles. The engine only defines the interface so it never
// imports the replication layer.
type ReplicationReporter interface {
	ReplicationRows() []ReplicationRow
}

// SetReplicationReporter installs the system.replication source. It must
// be set before the DB serves queries (the field is unguarded).
func (db *DB) SetReplicationReporter(r ReplicationReporter) { db.replReporter = r }

// ReplicationRows reports the current replication links, falling back to a
// single idle row describing the local role when no reporter is installed
// (or it has no links yet). Both system.replication and the /metrics
// exporter read through here so the two surfaces can never disagree.
func (db *DB) ReplicationRows() []ReplicationRow {
	var rows []ReplicationRow
	if rep := db.replReporter; rep != nil {
		rows = rep.ReplicationRows()
	}
	if len(rows) == 0 {
		r := db.role.Load()
		role := "primary"
		if !r.writable {
			role = "replica"
		}
		var epoch uint64
		if db.wal != nil {
			epoch = db.wal.Epoch()
		}
		rows = []ReplicationRow{{
			Role: role, Peer: r.primary, State: "idle", Epoch: epoch,
			AppliedClock: db.store.Snapshot(), PrimaryClock: db.store.Snapshot(),
			LastContact: -1,
		}}
	}
	return rows
}

// replicationRelation materializes system.replication. Without a reporter
// it still answers with the local role, so the table is always queryable.
func (c systemCatalog) replicationRelation() *memRelation {
	schema := types.Schema{
		{Name: "role", Type: types.String},
		{Name: "peer", Type: types.String},
		{Name: "state", Type: types.String},
		{Name: "epoch", Type: types.Int64},
		{Name: "wal_seg", Type: types.Int64},
		{Name: "wal_off", Type: types.Int64},
		{Name: "applied_clock", Type: types.Int64},
		{Name: "primary_clock", Type: types.Int64},
		{Name: "lag", Type: types.Int64},
		{Name: "last_contact_ms", Type: types.Int64},
	}
	rows := c.db.ReplicationRows()
	b := types.NewBatch(schema)
	for _, r := range rows {
		lag := int64(r.PrimaryClock) - int64(r.AppliedClock)
		if lag < 0 {
			lag = 0
		}
		b.AppendRow([]types.Value{
			types.NewString(r.Role),
			types.NewString(r.Peer),
			types.NewString(r.State),
			types.NewInt(int64(r.Epoch)),
			types.NewInt(int64(r.WalSeg)),
			types.NewInt(r.WalOff),
			types.NewInt(int64(r.AppliedClock)),
			types.NewInt(int64(r.PrimaryClock)),
			types.NewInt(lag),
			types.NewInt(r.LastContact),
		})
	}
	return newMemRelation("system.replication", schema, b)
}
