package engine

import (
	"math"
	"sort"
	"strings"
	"testing"
)

// clusterTestDB loads two well-separated 2-d clusters plus initial centers.
func clusterTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithWorkers(2))
	db.MustExec(`CREATE TABLE data (x FLOAT, y FLOAT)`)
	db.MustExec(`CREATE TABLE center (x FLOAT, y FLOAT)`)
	db.MustExec(`INSERT INTO data VALUES
		(0.0, 0.0), (0.2, 0.1), (-0.1, 0.2), (0.1, -0.2),
		(10.0, 10.0), (10.2, 9.9), (9.8, 10.1), (10.1, 10.2)`)
	db.MustExec(`INSERT INTO center VALUES (1.0, 1.0), (9.0, 9.0)`)
	return db
}

func TestKMeansOperatorDefaultDistance(t *testing.T) {
	db := clusterTestDB(t)
	r, err := db.Query(`SELECT * FROM KMEANS ((SELECT x, y FROM data), (SELECT x, y FROM center), 10) ORDER BY cluster`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Columns[0] != "cluster" || r.Columns[1] != "x" || r.Columns[2] != "y" {
		t.Errorf("columns = %v", r.Columns)
	}
	// Cluster 0 must converge near (0.05, 0.025), cluster 1 near (10.025, 10.05).
	c0x, c0y := r.Rows[0][1].F, r.Rows[0][2].F
	c1x, c1y := r.Rows[1][1].F, r.Rows[1][2].F
	if math.Abs(c0x-0.05) > 0.01 || math.Abs(c0y-0.025) > 0.01 {
		t.Errorf("cluster 0 center = (%v, %v)", c0x, c0y)
	}
	if math.Abs(c1x-10.025) > 0.01 || math.Abs(c1y-10.05) > 0.01 {
		t.Errorf("cluster 1 center = (%v, %v)", c1x, c1y)
	}
}

func TestKMeansOperatorListing3Lambda(t *testing.T) {
	// The paper's Listing 3: explicit Euclidean lambda must match the
	// default distance exactly on this data.
	db := clusterTestDB(t)
	q := `SELECT * FROM KMEANS (
		(SELECT x, y FROM data),
		(SELECT x, y FROM center),
		λ(a, b) (a.x - b.x)^2 + (a.y - b.y)^2,
		3) ORDER BY cluster`
	withLambda, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	withDefault, err := db.Query(`SELECT * FROM KMEANS ((SELECT x, y FROM data), (SELECT x, y FROM center), 3) ORDER BY cluster`)
	if err != nil {
		t.Fatal(err)
	}
	for i := range withLambda.Rows {
		for j := range withLambda.Rows[i] {
			a, b := withLambda.Rows[i][j], withDefault.Rows[i][j]
			if a.T != b.T || math.Abs(a.AsFloat()-b.AsFloat()) > 1e-9 {
				t.Errorf("row %d col %d: lambda %v vs default %v", i, j, a, b)
			}
		}
	}
}

func TestKMeansManhattanLambda(t *testing.T) {
	// k-Medians via the L1 lambda (the paper's motivating variant).
	db := clusterTestDB(t)
	r, err := db.Query(`SELECT * FROM KMEANS (
		(SELECT x, y FROM data),
		(SELECT x, y FROM center),
		LAMBDA(a, b) abs(a.x - b.x) + abs(a.y - b.y),
		10) ORDER BY cluster`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Same separation: centers must land in the two blobs.
	if r.Rows[0][1].F > 5 || r.Rows[1][1].F < 5 {
		t.Errorf("centers = %v", r.Rows)
	}
}

func TestKMeansPostProcessingInSQL(t *testing.T) {
	// The operator's output is a relation: aggregate over it in the same
	// query (paper: results can be post-processed within the same query).
	db := clusterTestDB(t)
	r, err := db.Query(`SELECT count(*), max(x) FROM KMEANS ((SELECT x, y FROM data), (SELECT x, y FROM center), 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 || r.Rows[0][1].F < 9 {
		t.Errorf("post-processed = %v", r.Rows[0])
	}
}

func TestKMeansErrors(t *testing.T) {
	db := clusterTestDB(t)
	for _, q := range []string{
		`SELECT * FROM KMEANS ((SELECT x, y FROM data))`,                                            // too few args
		`SELECT * FROM KMEANS ((SELECT x FROM data), (SELECT x, y FROM center), 3)`,                 // dim mismatch
		`SELECT * FROM KMEANS ((SELECT x, y FROM data), (SELECT x, y FROM center), 0)`,              // bad maxiter
		`SELECT * FROM KMEANS ((SELECT x, y FROM data), (SELECT x, y FROM center), λ(a) a.x, 3)`,    // 1-param lambda
		`SELECT * FROM KMEANS ((SELECT x, y FROM data), (SELECT x, y FROM center), λ(a, b) a.z, 3)`, // unknown field
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestPageRankOperatorListing2(t *testing.T) {
	db := Open(WithWorkers(2))
	db.MustExec(`CREATE TABLE edges (src BIGINT, dest BIGINT)`)
	// A tiny directed graph: 1 and 2 point at 3; 3 points at 1.
	db.MustExec(`INSERT INTO edges VALUES (1,3), (2,3), (3,1)`)
	r, err := db.Query(`SELECT * FROM PAGE RANK ((SELECT src, dest FROM edges), 0.85, 0.0001) ORDER BY rank DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Vertex 3 receives two links and must rank highest; ranks sum to ~1.
	if r.Rows[0][0].I != 3 {
		t.Errorf("top vertex = %v", r.Rows[0])
	}
	var sum float64
	for _, row := range r.Rows {
		sum += row[1].F
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("rank sum = %v", sum)
	}
}

func TestPageRankVertexIDsPreserved(t *testing.T) {
	// Original (sparse, large) vertex ids must come back unchanged
	// through the dense relabeling and reverse mapping.
	db := Open()
	db.MustExec(`CREATE TABLE e2 (src BIGINT, dest BIGINT)`)
	db.MustExec(`INSERT INTO e2 VALUES (1000000, 42), (42, 7), (7, 1000000)`)
	r, err := db.Query(`SELECT vertex FROM PAGERANK ((SELECT src, dest FROM e2), 0.85, 0.0) ORDER BY vertex`)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, row := range r.Rows {
		got = append(got, row[0].I)
	}
	want := []int64{7, 42, 1000000}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("vertices = %v, want %v", got, want)
	}
}

func TestPageRankSymmetricGraphUniformRanks(t *testing.T) {
	// On a symmetric cycle every vertex must receive the same rank.
	db := Open()
	db.MustExec(`CREATE TABLE cyc (src BIGINT, dest BIGINT)`)
	db.MustExec(`INSERT INTO cyc VALUES (0,1),(1,2),(2,3),(3,0)`)
	r, err := db.Query(`SELECT rank FROM PAGERANK ((SELECT src, dest FROM cyc), 0.85, 0.0, 50)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if math.Abs(row[0].F-0.25) > 1e-9 {
			t.Errorf("rank = %v, want 0.25", row[0].F)
		}
	}
}

func TestPageRankErrors(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE e3 (src BIGINT, dest BIGINT, w DOUBLE)`)
	for _, q := range []string{
		`SELECT * FROM PAGERANK ((SELECT src, dest, w FROM e3), 0.85, 0.0)`, // 3 columns
		`SELECT * FROM PAGERANK ((SELECT src, dest FROM e3), 1.5, 0.0)`,     // bad damping
		`SELECT * FROM PAGERANK ((SELECT src, dest FROM e3), 0.85, -1.0)`,   // bad epsilon
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

// nbTestDB creates a separable 2-feature classification problem.
func nbTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithWorkers(2))
	db.MustExec(`CREATE TABLE train (f1 DOUBLE, f2 DOUBLE, label BIGINT)`)
	db.MustExec(`INSERT INTO train VALUES
		(0.0, 0.1, 0), (0.1, 0.0, 0), (0.2, 0.2, 0), (-0.1, 0.1, 0),
		(5.0, 5.1, 1), (5.1, 5.0, 1), (4.9, 5.2, 1), (5.2, 4.8, 1)`)
	db.MustExec(`CREATE TABLE test (f1 DOUBLE, f2 DOUBLE)`)
	db.MustExec(`INSERT INTO test VALUES (0.05, 0.05), (5.05, 5.05), (0.3, -0.1), (4.7, 5.3)`)
	return db
}

func TestNaiveBayesTrainModelRelation(t *testing.T) {
	db := nbTestDB(t)
	r, err := db.Query(`SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT f1, f2, label FROM train)) ORDER BY label, feature`)
	if err != nil {
		t.Fatal(err)
	}
	// 2 classes × 2 features.
	if len(r.Rows) != 4 {
		t.Fatalf("model rows = %v", r.Rows)
	}
	cols := strings.Join(r.Columns, ",")
	if cols != "label,feature,prior,mean,stddev" {
		t.Errorf("model columns = %v", r.Columns)
	}
	// Paper's Laplace prior: (4+1)/(8+2) = 0.5 for both classes.
	for _, row := range r.Rows {
		if math.Abs(row[2].F-0.5) > 1e-12 {
			t.Errorf("prior = %v, want 0.5", row[2].F)
		}
	}
	// Class-0 means near 0, class-1 means near 5.
	if r.Rows[0][3].F > 1 || r.Rows[3][3].F < 4 {
		t.Errorf("means = %v", r.Rows)
	}
}

func TestNaiveBayesPredictEndToEnd(t *testing.T) {
	db := nbTestDB(t)
	r, err := db.Query(`SELECT * FROM NAIVE_BAYES_PREDICT (
		(SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT f1, f2, label FROM train))),
		(SELECT f1, f2 FROM test)) ORDER BY f1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	want := []int64{0, 0, 1, 1} // ordered by f1: 0.05, 0.3, 4.7, 5.05
	var got []int64
	for _, row := range r.Rows {
		got = append(got, row[2].I)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("prediction %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestNaiveBayesModelStoredInTable(t *testing.T) {
	// Model-application across statements: store the model relationally,
	// then predict from the stored model (the paper's two-phase pattern).
	db := nbTestDB(t)
	db.MustExec(`CREATE TABLE model (label BIGINT, feature BIGINT, prior DOUBLE, mean DOUBLE, stddev DOUBLE)`)
	db.MustExec(`INSERT INTO model SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT f1, f2, label FROM train))`)
	r, err := db.Query(`SELECT label FROM NAIVE_BAYES_PREDICT (
		(SELECT label, feature, prior, mean, stddev FROM model),
		(SELECT f1, f2 FROM test)) ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, row := range r.Rows {
		got = append(got, row[0].I)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 4 || got[0] != 0 || got[3] != 1 {
		t.Errorf("stored-model predictions = %v", got)
	}
}

func TestNaiveBayesErrors(t *testing.T) {
	db := nbTestDB(t)
	for _, q := range []string{
		`SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT f1 FROM train))`,                              // no label col
		`SELECT * FROM NAIVE_BAYES_TRAIN ((SELECT f1, f2 FROM train))`,                          // label not BIGINT
		`SELECT * FROM NAIVE_BAYES_PREDICT ((SELECT f1, f2 FROM train), (SELECT f1 FROM test))`, // bad model schema
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestIterateNewtonConvergence(t *testing.T) {
	// Numeric fixpoint through ITERATE: Newton iteration for sqrt(2).
	db := Open()
	r, err := db.Query(`SELECT * FROM ITERATE (
		(SELECT 1.0 AS x),
		(SELECT (x + 2 / x) / 2 FROM iterate),
		(SELECT x FROM iterate WHERE abs(x * x - 2) < 0.000000001))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if math.Abs(r.Rows[0][0].F-math.Sqrt2) > 1e-9 {
		t.Errorf("sqrt(2) = %v", r.Rows[0][0].F)
	}
}

func TestIterateKMeansStepInSQL(t *testing.T) {
	// One dimension of the paper's Figure 2b query plan: a working table of
	// centers is non-appendingly replaced by the mean of its assigned data
	// points, with a fixed iteration count encoded in the working table.
	db := clusterTestDB(t)
	r, err := db.Query(`SELECT cx FROM ITERATE (
		(SELECT 1.0 AS cx, 0 AS iter),
		(SELECT (SELECT avg(x) FROM data) , iter + 1 FROM iterate),
		(SELECT cx FROM iterate WHERE iter >= 3))`)
	// Scalar subqueries are not part of the dialect; assignment-style SQL
	// k-Means lives in the workload package with joins instead. Accept a
	// clean planner error here rather than silent misbehavior.
	if err != nil {
		if !strings.Contains(err.Error(), "SELECT") {
			t.Fatalf("unexpected error shape: %v", err)
		}
		return
	}
	if len(r.Rows) != 1 {
		t.Errorf("rows = %v", r.Rows)
	}
}
