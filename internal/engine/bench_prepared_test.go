package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lambdadb/internal/types"
)

// TestPreparedBench measures the point-query latency win from the prepared
// statement / plan-cache path versus re-lexing, re-parsing, and re-planning
// every statement, and writes the numbers to BENCH_prepared.json at the repo
// root. Three variants over the same indexed point query:
//
//   - unprepared: plan cache disabled; every execution pays lex+parse+plan.
//   - adhoc_cached: plan cache on, identical text re-submitted; the hit path
//     skips the front end entirely.
//   - prepared: PREPARE once, then EXECUTE through the session API.
//
// It asserts the headline claim — the cached paths are at least 2x faster
// than the unprepared path — and records the front end's share of statement
// time from the stage histograms to show where the win comes from.
//
// Gated behind LAMBDADB_PREPARED_BENCH=1 (run via `make bench-prepared`)
// because it is a timing benchmark, not a correctness test.
func TestPreparedBench(t *testing.T) {
	if os.Getenv("LAMBDADB_PREPARED_BENCH") != "1" {
		t.Skip("set LAMBDADB_PREPARED_BENCH=1 (make bench-prepared) to run the prepared-statement benchmark")
	}

	const rows = 20000
	const warmup = 200
	const iters = 3000

	setup := func(opts ...Option) *DB {
		db := Open(opts...)
		db.MustExec(`CREATE TABLE pts (id BIGINT, x DOUBLE, tag VARCHAR)`)
		var sb strings.Builder
		for i := 0; i < rows; i += 1000 {
			sb.Reset()
			sb.WriteString("INSERT INTO pts VALUES ")
			for j := i; j < i+1000; j++ {
				if j > i {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d.5, 'tag%d')", j, j, j%7)
			}
			db.MustExec(sb.String())
		}
		db.MustExec(`CREATE INDEX pts_id ON pts (id)`)
		db.MustExec(`ANALYZE`)
		return db
	}

	ctx := context.Background()
	const query = `SELECT x FROM pts WHERE id = 12345`

	timeLoop := func(n int, f func()) (meanNs float64) {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}

	// Unprepared: plan cache off, so ExecContext pays the whole front end
	// on every call.
	coldDB := setup(WithPlanCacheSize(0))
	coldSess := coldDB.NewSession()
	run := func(s *Session, sql string) {
		res, err := s.ExecContext(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].F != 12345.5 {
			t.Fatalf("rows = %+v", res.Rows)
		}
	}
	timeLoop(warmup, func() { run(coldSess, query) })
	unpreparedNs := timeLoop(iters, func() { run(coldSess, query) })
	coldStages := coldDB.Metrics().Hist()
	coldParsePlan := coldStages.StageParsePlan.Snapshot()
	coldExec := coldStages.StageExec.Snapshot()
	coldSess.Close()
	coldShare := share(coldParsePlan.Sum, coldExec.Sum)

	// Ad-hoc cached: same text, cache on; after the first miss every
	// execution is a hit that skips lex/parse/plan.
	adhocDB := setup()
	adhocSess := adhocDB.NewSession()
	timeLoop(warmup, func() { run(adhocSess, query) })
	adhocNs := timeLoop(iters, func() { run(adhocSess, query) })
	adhocHits := adhocDB.Metrics().PlanCacheHits.Load()
	adhocMisses := adhocDB.Metrics().PlanCacheMisses.Load()
	adhocStages := adhocDB.Metrics().Hist()
	adhocShare := share(adhocStages.StageParsePlan.Snapshot().Sum, adhocStages.StageExec.Snapshot().Sum)
	adhocSess.Close()

	// Prepared: parse once, bind per execution.
	prepDB := setup()
	prepSess := prepDB.NewSession()
	if _, err := prepSess.ExecContext(ctx, `PREPARE p AS SELECT x FROM pts WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	arg := []types.Value{types.NewInt(12345)}
	runPrep := func() {
		res, err := prepSess.ExecutePrepared(ctx, "p", arg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].F != 12345.5 {
			t.Fatalf("rows = %+v", res.Rows)
		}
	}
	timeLoop(warmup, runPrep)
	preparedNs := timeLoop(iters, runPrep)
	prepHits := prepDB.Metrics().PlanCacheHits.Load()
	prepSess.Close()

	t.Logf("unprepared   %8.0f ns/op  (front end %4.1f%% of stmt time)", unpreparedNs, 100*coldShare)
	t.Logf("adhoc cached %8.0f ns/op  (%.1fx; hits=%d misses=%d, front end %4.1f%%)",
		adhocNs, unpreparedNs/adhocNs, adhocHits, adhocMisses, 100*adhocShare)
	t.Logf("prepared     %8.0f ns/op  (%.1fx; hits=%d)", preparedNs, unpreparedNs/preparedNs, prepHits)

	if unpreparedNs < 2*preparedNs {
		t.Errorf("prepared path is only %.2fx faster than unprepared; want >= 2x", unpreparedNs/preparedNs)
	}
	if unpreparedNs < 2*adhocNs {
		t.Errorf("ad-hoc cached path is only %.2fx faster than unprepared; want >= 2x", unpreparedNs/adhocNs)
	}
	if int(adhocHits) < iters {
		t.Errorf("ad-hoc cache hits = %d, want >= %d", adhocHits, iters)
	}

	out, err := json.MarshalIndent(map[string]any{
		"description":        "Point query (indexed, 20k rows): prepared/plan-cached execution vs full lex+parse+plan per statement.",
		"query":              query,
		"rows":               rows,
		"iterations":         iters,
		"unprepared_ns_op":   round1(unpreparedNs),
		"adhoc_cached_ns_op": round1(adhocNs),
		"prepared_ns_op":     round1(preparedNs),
		"speedup_adhoc":      round2(unpreparedNs / adhocNs),
		"speedup_prepared":   round2(unpreparedNs / preparedNs),
		"plan_cache": map[string]any{
			"adhoc_hits":    adhocHits,
			"adhoc_misses":  adhocMisses,
			"prepared_hits": prepHits,
		},
		"front_end_share_of_stmt_time": map[string]any{
			"unprepared":   round3(coldShare),
			"adhoc_cached": round3(adhocShare),
		},
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_prepared.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	abs, _ := filepath.Abs(path)
	t.Logf("wrote %s", abs)
}

// share returns a/(a+b), 0 when empty.
func share(a, b int64) float64 {
	if a+b == 0 {
		return 0
	}
	return float64(a) / float64(a+b)
}

func round1(v float64) float64 { return float64(int64(v*10)) / 10 }
func round2(v float64) float64 { return float64(int64(v*100)) / 100 }
func round3(v float64) float64 { return float64(int64(v*1000)) / 1000 }
