package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lambdadb/internal/plan"
	"lambdadb/internal/sql"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// statsRegistry holds the ANALYZE-collected table statistics and implements
// plan.StatsProvider for the session planners. Stats are refreshed by
// ANALYZE, re-collected for analyzed tables at CHECKPOINT, and dropped with
// their table.
type statsRegistry struct {
	mu sync.RWMutex
	m  map[string]*plan.TableStats
	// version counts every statistics change (ANALYZE, CHECKPOINT refresh,
	// drop-with-table). Plan-cache entries are stamped with it: a stats
	// change means a cached plan may no longer be the plan the optimizer
	// would pick, so it must be rebuilt.
	version atomic.Uint64
}

func (r *statsRegistry) Version() uint64 { return r.version.Load() }

func (r *statsRegistry) TableStats(table string) (*plan.TableStats, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts, ok := r.m[table]
	return ts, ok
}

func (r *statsRegistry) put(ts *plan.TableStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[ts.Table] = ts
	r.version.Add(1)
}

func (r *statsRegistry) drop(table string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, table)
	r.version.Add(1)
}

// tables returns the analyzed table names, sorted.
func (r *statsRegistry) tables() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for t := range r.m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// analyzeTable collects and registers statistics for one table at the
// given snapshot.
func (db *DB) analyzeTable(name string, snapshot uint64) (*plan.TableStats, error) {
	tbl, err := db.store.Table(name)
	if err != nil {
		return nil, err
	}
	ts, err := plan.CollectTableStats(tbl, snapshot)
	if err != nil {
		return nil, err
	}
	db.stats.put(ts)
	db.metrics.AnalyzeRuns.Add(1)
	return ts, nil
}

// refreshStats re-collects statistics for every previously analyzed table
// (dropped tables fall out of the registry). Called after CHECKPOINT so
// long-running durable databases keep their estimates fresh.
func (db *DB) refreshStats() {
	snap := db.store.Snapshot()
	for _, name := range db.stats.tables() {
		if _, err := db.analyzeTable(name, snap); err != nil {
			db.stats.drop(name)
		}
	}
}

// execAnalyze runs ANALYZE [table]: one table, or every stored table.
func (s *Session) execAnalyze(n *sql.Analyze) (*Result, error) {
	snap := s.snapshot()
	names := []string{n.Table}
	if n.Table == "" {
		names = s.db.store.TableNames()
		sort.Strings(names)
	}
	res := &Result{
		Columns: []string{"table", "rows"},
		Types:   []types.Type{types.String, types.Int64},
	}
	for _, name := range names {
		ts, err := s.db.analyzeTable(name, snap)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []types.Value{
			types.NewString(name), types.NewInt(ts.RowCount),
		})
	}
	return res, nil
}

// indexKindFromSQL maps the parsed USING spelling to the storage kind;
// the default is ordered (it serves both point and range probes).
func indexKindFromSQL(kind string) (storage.IndexKind, error) {
	switch kind {
	case "", "ORDERED":
		return storage.OrderedIndex, nil
	case "HASH":
		return storage.HashIndex, nil
	}
	return 0, fmt.Errorf("unknown index kind %q", kind)
}

func (s *Session) execCreateIndex(n *sql.CreateIndex) (*Result, error) {
	if n.IfNotExists && s.db.store.HasIndex(n.Name) {
		return &Result{}, nil
	}
	kind, err := indexKindFromSQL(n.Kind)
	if err != nil {
		return nil, err
	}
	err = s.db.store.CreateIndex(storage.IndexDef{
		Name: n.Name, Table: n.Table, Column: n.Column, Kind: kind,
	})
	return &Result{}, err
}

func (s *Session) execDropIndex(n *sql.DropIndex) (*Result, error) {
	if n.IfExists && !s.db.store.HasIndex(n.Name) {
		return &Result{}, nil
	}
	return &Result{}, s.db.store.DropIndex(n.Name)
}
