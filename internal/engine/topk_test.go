package engine

import (
	"strings"
	"testing"
)

func TestTopKPlanFusion(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Exec(`EXPLAIN SELECT n FROM nums ORDER BY n DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, row := range r.Rows {
		joined += row[0].S + "\n"
	}
	if !strings.Contains(joined, "TopK 2") {
		t.Errorf("Limit over Sort not fused to TopK:\n%s", joined)
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	db := Open()
	rows := randomTable(t, db, "t", 5000, 99)
	_ = rows
	limited, err := db.Query(`SELECT v FROM t ORDER BY v DESC LIMIT 25`)
	if err != nil {
		t.Fatal(err)
	}
	full, err := db.Query(`SELECT v FROM t ORDER BY v DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 25 {
		t.Fatalf("limited rows = %d", len(limited.Rows))
	}
	for i := range limited.Rows {
		if limited.Rows[i][0].F != full.Rows[i][0].F {
			t.Errorf("row %d: topk %v vs full %v", i, limited.Rows[i][0].F, full.Rows[i][0].F)
		}
	}
}

func TestTopKWithOffset(t *testing.T) {
	db := Open()
	randomTable(t, db, "t", 2000, 5)
	withOffset, err := db.Query(`SELECT v FROM t ORDER BY v LIMIT 10 OFFSET 7`)
	if err != nil {
		t.Fatal(err)
	}
	full, err := db.Query(`SELECT v FROM t ORDER BY v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(withOffset.Rows) != 10 {
		t.Fatalf("rows = %d", len(withOffset.Rows))
	}
	for i := range withOffset.Rows {
		if withOffset.Rows[i][0].F != full.Rows[i+7][0].F {
			t.Errorf("offset row %d: %v vs %v", i, withOffset.Rows[i][0].F, full.Rows[i+7][0].F)
		}
	}
}

func TestTopKLargerThanInput(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `SELECT n FROM nums ORDER BY n LIMIT 100`)
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestLimitZero(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `SELECT n FROM nums ORDER BY n LIMIT 0`)
	if len(got) != 0 {
		t.Fatalf("LIMIT 0 returned %v", got)
	}
}

func TestTopKMultiKey(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT s, n FROM nums ORDER BY s DESC, n ASC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	// nums: (1,a) (2,b) (3,c) (4,a) (5,b) → ordered: (c,3) (b,2) (b,5).
	want := [][2]interface{}{{"c", int64(3)}, {"b", int64(2)}, {"b", int64(5)}}
	for i, w := range want {
		if r.Rows[i][0].S != w[0].(string) || r.Rows[i][1].I != w[1].(int64) {
			t.Errorf("row %d = %v, want %v", i, r.Rows[i], w)
		}
	}
}
