// Package engine is the public face of the database: it wires the SQL
// front end, planner, executor, and storage into a single main-memory
// engine with autocommit and explicit transactions.
package engine

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lambdadb/internal/exec"
	"lambdadb/internal/load"
	"lambdadb/internal/persist"
	"lambdadb/internal/plan"
	"lambdadb/internal/plancache"
	"lambdadb/internal/sql"
	"lambdadb/internal/storage"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
	"lambdadb/internal/wal"
)

// DB is a main-memory database instance.
type DB struct {
	store       *storage.Store
	workers     int
	memLimit    int64
	stmtTimeout time.Duration
	iterLimit   int

	queryLog      *telemetry.QueryLog
	metrics       *telemetry.Metrics
	stats         statsRegistry
	planCache     *plancache.Cache
	planCacheSize int
	logger        *slog.Logger
	slowThreshold time.Duration
	slowSink      io.Writer
	slowMu        sync.Mutex // serializes slow-log writes

	// Durability state, set by OpenDir; all nil/zero for an in-memory DB.
	wal             *wal.Manager
	checkpointEvery time.Duration
	checkpointStop  chan struct{}
	checkpointDone  chan struct{}
	closeOnce       sync.Once

	// Replication state (see replica.go): replicaOf is the initial role
	// from WithReadReplica; the live role (which failover changes at
	// runtime) lives in role. replReporter feeds system.replication and
	// clusterCtl handles PROMOTE/FOLLOW.
	replicaOf    string
	role         atomic.Pointer[roleState]
	replReporter ReplicationReporter
	clusterCtl   ClusterControl
}

// Option configures a DB.
type Option func(*DB)

// WithWorkers sets the parallelism degree for query execution.
func WithWorkers(n int) Option {
	return func(db *DB) {
		if n > 0 {
			db.workers = n
		}
	}
}

// WithMemoryLimit caps the bytes one query may hold in materializations
// (hash-join builds, sort runs, working tables, buffered results). A query
// over the budget fails with a typed *exec.ResourceError naming the
// operator that tripped it, instead of driving the process out of memory.
// bytes <= 0 (the default) means unlimited.
func WithMemoryLimit(bytes int64) Option {
	return func(db *DB) { db.memLimit = bytes }
}

// WithStatementTimeout bounds the wall-clock time of each statement. An
// expired statement fails with a wrapped context.DeadlineExceeded within
// one morsel's work. d <= 0 (the default) means no timeout.
func WithStatementTimeout(d time.Duration) Option {
	return func(db *DB) { db.stmtTimeout = d }
}

// WithIterationLimit bounds ITERATE / recursive-CTE rounds per query
// (runaway-loop protection); n <= 0 keeps the planner default.
func WithIterationLimit(n int) Option {
	return func(db *DB) { db.iterLimit = n }
}

// WithPlanCacheSize caps the shared LRU plan cache at n entries; n = 0
// disables plan caching entirely (every statement is planned from scratch).
// The default is plancache.DefaultSize.
func WithPlanCacheSize(n int) Option {
	return func(db *DB) {
		if n >= 0 {
			db.planCacheSize = n
		}
	}
}

// WithSlowQueryThreshold appends every statement that runs for at least d
// to sink as one JSON line including its compact per-operator stats tree.
// Setting a threshold arms statement telemetry for all statements (a few
// percent overhead); d <= 0 or a nil sink disables the log.
func WithSlowQueryThreshold(d time.Duration, sink io.Writer) Option {
	return func(db *DB) {
		if d > 0 && sink != nil {
			db.slowThreshold = d
			db.slowSink = sink
		}
	}
}

// WithLogger routes the engine's background logs (checkpointer errors, WAL
// recovery summaries) through a structured logger instead of stderr text.
func WithLogger(l *slog.Logger) Option {
	return func(db *DB) {
		if l != nil {
			db.logger = l
		}
	}
}

// WithCheckpointInterval makes a durable DB (OpenDir) checkpoint itself in
// the background every d: a snapshot image is written and the redo log
// truncated behind it, bounding recovery time. d <= 0 (the default) leaves
// checkpointing manual (the CHECKPOINT statement). Ignored by Open.
func WithCheckpointInterval(d time.Duration) Option {
	return func(db *DB) { db.checkpointEvery = d }
}

// Open creates an empty database.
func Open(opts ...Option) *DB {
	db := &DB{
		store:         storage.NewStore(),
		workers:       runtime.GOMAXPROCS(0),
		queryLog:      telemetry.NewQueryLog(0),
		metrics:       &telemetry.Metrics{},
		stats:         statsRegistry{m: map[string]*plan.TableStats{}},
		planCacheSize: plancache.DefaultSize,
		// Default logging matches the engine's historical stderr behavior:
		// background failures surface, routine lifecycle (recovery summaries)
		// stays quiet until WithLogger installs an operator-facing logger.
		logger: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	}
	for _, o := range opts {
		o(db)
	}
	db.role.Store(&roleState{writable: db.replicaOf == "", primary: db.replicaOf})
	db.planCache = plancache.New(db.planCacheSize)
	return db
}

// Metrics exposes the engine-wide cumulative counters (also queryable as
// the virtual table system.metrics).
func (db *DB) Metrics() *telemetry.Metrics { return db.metrics }

// QueryLog returns the recent-statement log, oldest first (also queryable
// as the virtual table system.query_log).
func (db *DB) QueryLog() []telemetry.QueryLogEntry { return db.queryLog.Snapshot() }

// Store exposes the underlying storage (tools and benchmarks use it for
// bulk loading).
func (db *DB) Store() *storage.Store { return db.store }

// WALManager exposes the durability manager of a DB opened with OpenDir
// (nil otherwise). The replication layer ships from and mirrors into it.
func (db *DB) WALManager() *wal.Manager { return db.wal }

// Save writes a snapshot image of the database to path.
func (db *DB) Save(path string) error { return persist.SaveFile(db.store, path) }

// OpenFile opens a database restored from a snapshot image.
func OpenFile(path string, opts ...Option) (*DB, error) {
	store, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	db := Open(opts...)
	db.store = store
	return db, nil
}

// OpenDir opens a durable database backed by a data directory: the latest
// checkpoint image is loaded, the write-ahead log replayed (recovering
// from a crash if there was one), and from then on every commit is made
// durable — acknowledged only after its redo record is fsynced, with
// concurrent commits sharing one sync (group commit). The directory is
// created if missing. Call Close before exiting to flush the log; after a
// crash the next OpenDir recovers instead.
func OpenDir(dir string, opts ...Option) (*DB, error) {
	db := Open(opts...)
	store, mgr, err := wal.Open(dir, wal.Options{Metrics: db.metrics, Logger: db.logger})
	if err != nil {
		return nil, err
	}
	db.store = store
	db.wal = mgr
	if db.checkpointEvery > 0 {
		db.checkpointStop = make(chan struct{})
		db.checkpointDone = make(chan struct{})
		go db.checkpointLoop()
	}
	return db, nil
}

// checkpointLoop checkpoints every checkpointEvery until Close.
func (db *DB) checkpointLoop() {
	defer close(db.checkpointDone)
	t := time.NewTicker(db.checkpointEvery)
	defer t.Stop()
	for {
		select {
		case <-db.checkpointStop:
			return
		case <-t.C:
			if _, err := db.Checkpoint(); err != nil {
				db.logger.Warn("background checkpoint failed", "err", err.Error())
			}
		}
	}
}

// Checkpoint writes a durable snapshot image and truncates the redo log
// behind it, then refreshes the statistics of every analyzed table. It
// fails on an in-memory DB (no data directory).
func (db *DB) Checkpoint() (wal.CheckpointStats, error) {
	if db.wal == nil {
		return wal.CheckpointStats{}, fmt.Errorf("CHECKPOINT requires a database opened with a data directory")
	}
	if r := db.role.Load(); !r.writable {
		// The replica's log mirrors the primary's; rotating it locally would
		// break the mirror. Replica checkpoints happen at stream boundaries.
		return wal.CheckpointStats{}, &ReadOnlyError{Primary: r.primary, Statement: "CHECKPOINT"}
	}
	stats, err := db.wal.Checkpoint()
	if err == nil {
		db.refreshStats()
	}
	return stats, err
}

// RecoverySummary reports what startup recovery found and did, and whether
// this DB is durable at all (false for Open/OpenFile databases).
func (db *DB) RecoverySummary() (wal.RecoverySummary, bool) {
	if db.wal == nil {
		return wal.RecoverySummary{}, false
	}
	return db.wal.Summary(), true
}

// Close flushes and closes the write-ahead log (and stops the background
// checkpointer), so a clean shutdown loses nothing and needs no replay on
// the next start. It does not checkpoint — restart replays the log tail.
// Close is a no-op on an in-memory DB and safe to call more than once;
// commits attempted after Close fail.
func (db *DB) Close() error {
	var err error
	db.closeOnce.Do(func() {
		if db.checkpointStop != nil {
			close(db.checkpointStop)
			<-db.checkpointDone
		}
		if db.wal != nil {
			err = db.wal.Close()
		}
	})
	return err
}

// Workers returns the configured parallelism degree.
func (db *DB) Workers() int { return db.workers }

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns (empty for DML).
	Columns []string
	// Types holds the result column types, aligned with Columns. It may be
	// empty for results not derived from a plan (e.g. EXPLAIN text);
	// consumers that need types should fall back to inspecting row values.
	Types []types.Type
	// Rows holds the result rows (nil for DML).
	Rows [][]types.Value
	// Affected counts rows touched by DML.
	Affected int
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("(%d rows affected)", r.Affected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(r.Rows))
	return sb.String()
}

// Exec parses and executes one or more semicolon-separated statements in
// autocommit mode, returning the last statement's result.
func (db *DB) Exec(text string) (*Result, error) {
	return db.ExecContext(context.Background(), text)
}

// ExecContext is Exec governed by ctx: cancelling it (or its deadline
// expiring) aborts the running statement within one morsel's work with a
// wrapped context.Canceled / context.DeadlineExceeded, leaving the DB
// usable for subsequent queries.
func (db *DB) ExecContext(ctx context.Context, text string) (*Result, error) {
	s := db.NewSession()
	defer s.Close()
	return s.ExecContext(ctx, text)
}

// Query is Exec restricted to a single SELECT.
func (db *DB) Query(text string) (*Result, error) {
	return db.QueryContext(context.Background(), text)
}

// QueryContext is Query governed by ctx (see ExecContext).
func (db *DB) QueryContext(ctx context.Context, text string) (*Result, error) {
	fastSess := db.NewSession()
	res, handled, err := fastSess.tryCachedSelect(ctx, text)
	fastSess.Close()
	if handled {
		return res, err
	}
	parseStart := time.Now()
	st, err := sql.ParseOne(text)
	parseNs := time.Since(parseStart).Nanoseconds()
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("Query expects a SELECT statement")
	}
	s := db.NewSession()
	defer s.Close()
	s.parseNs = parseNs
	return s.execLogged(ctx, strings.TrimSpace(text), sel)
}

// MustExec is Exec that panics on error (tests, examples).
func (db *DB) MustExec(text string) *Result {
	r, err := db.Exec(text)
	if err != nil {
		panic(fmt.Sprintf("MustExec(%q): %v", text, err))
	}
	return r
}

// Session is a connection-like handle holding transaction state.
// Statements outside BEGIN...COMMIT autocommit. Within an explicit
// transaction, reads see the snapshot taken at BEGIN; buffered writes
// become visible at COMMIT (no read-your-own-writes).
//
// A failed statement aborts any open explicit transaction (it is rolled
// back immediately, PostgreSQL-style, and the returned error says so), so
// a script can never continue half-way through a transaction that silently
// lost a statement.
//
// A Session executes one statement at a time, but Close is safe to call
// concurrently with an in-flight ExecContext — the network server closes
// sessions when clients drop mid-statement. After Close, statements fail
// with a "session is closed" error.
type Session struct {
	db *DB

	mu     sync.Mutex // guards txn and closed
	txn    *storage.Txn
	closed bool

	collect   bool          // arm per-operator stats for every statement
	lastStats *exec.OpStats // stats tree of the last armed statement
	lastPeak  int64         // peak accounted bytes of the last armed statement

	// Stage-latency attribution for the current statement (see execLogged):
	// parseNs is this statement's share of script parse time, planNs the
	// time execSelect spent building the plan.
	parseNs int64
	planNs  int64

	// prepared holds this session's PREPAREd statements by name.
	prepared map[string]*preparedStmt

	// cacheKey, when non-empty, asks execSelect to insert the plan it
	// builds into the shared plan cache under that key, stamped with
	// cacheDDLVer/cacheStatsVer (read before the build started, so a DDL
	// racing the build invalidates the entry on its next lookup).
	cacheKey      string
	cacheDDLVer   uint64
	cacheStatsVer uint64
}

// CollectStats arms (or disarms) per-operator statistics collection for
// every subsequent statement in this session; LastStats returns the tree.
func (s *Session) CollectStats(on bool) { s.collect = on }

// LastStats returns the per-operator stats tree of the most recent
// statement executed with stats armed, or nil.
func (s *Session) LastStats() *exec.OpStats { return s.lastStats }

// LastPeakBytes returns the peak accounted memory of the most recent
// statement executed with stats armed.
func (s *Session) LastPeakBytes() int64 { return s.lastPeak }

// statsArmed reports whether statement telemetry should be collected.
func (s *Session) statsArmed() bool { return s.collect || s.db.slowSink != nil }

// NewSession opens a session.
func (db *DB) NewSession() *Session {
	db.metrics.SessionsActive.Add(1)
	return &Session{db: db}
}

// Close rolls back any open transaction and marks the session unusable.
// It is safe to call concurrently with an in-flight ExecContext and safe to
// call more than once.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.db.metrics.SessionsActive.Add(-1)
	}
	s.closed = true
	if s.txn != nil {
		s.txn.Rollback()
		s.txn = nil
	}
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txn != nil
}

var errSessionClosed = fmt.Errorf("session is closed")

// abortOnError enforces the abort-on-error rule: a failed statement rolls
// back any open explicit transaction rather than leaving it silently open.
// The returned error notes the rollback so the caller knows the
// transaction is gone.
func (s *Session) abortOnError(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txn == nil {
		return err
	}
	s.txn.Rollback()
	s.txn = nil
	return fmt.Errorf("%w (open transaction rolled back)", err)
}

// Exec executes one or more statements, returning the last result.
func (s *Session) Exec(text string) (*Result, error) {
	return s.ExecContext(context.Background(), text)
}

// ExecContext is Exec governed by ctx; cancellation aborts the statement in
// flight and skips any statements after it. Any error — parse failure,
// statement failure, or cancellation — aborts an open explicit transaction
// (see Session).
func (s *Session) ExecContext(ctx context.Context, text string) (*Result, error) {
	// Plan-cache fast path: a single SELECT whose normalized text matches a
	// cached template executes with zero lex/parse/plan work. Misses fall
	// through to the ordinary path (which inserts the built plan).
	if res, handled, err := s.tryCachedSelect(ctx, text); handled {
		if err != nil {
			return nil, s.abortOnError(err)
		}
		return res, nil
	}
	parseStart := time.Now()
	stmts, err := sql.Parse(text)
	if err != nil {
		return nil, s.abortOnError(err)
	}
	if len(stmts) == 0 {
		return &Result{}, nil
	}
	// Recover each statement's original text for the query log; fall back
	// to the whole script if the split disagrees with the parse.
	texts, err := sql.SplitStatements(text)
	if err != nil || len(texts) != len(stmts) {
		texts = nil
	}
	// Each statement's share of the script's parse time, for the
	// parse_plan stage histogram.
	parseShare := time.Since(parseStart).Nanoseconds() / int64(len(stmts))
	var last *Result
	for i, st := range stmts {
		if err := ctx.Err(); err != nil {
			return nil, s.abortOnError(err)
		}
		if s.isClosed() {
			return nil, errSessionClosed
		}
		stmtText := strings.TrimSpace(text)
		if texts != nil {
			stmtText = texts[i]
		}
		s.parseNs = parseShare
		r, err := s.execLogged(ctx, stmtText, st)
		if err != nil {
			return nil, s.abortOnError(err)
		}
		last = r
	}
	return last, nil
}

// isClosed reports whether Close has been called.
func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Session) execStatement(ctx context.Context, st sql.Statement) (*Result, error) {
	if err := s.db.rejectOnReplica(st); err != nil {
		return nil, err
	}
	switch n := st.(type) {
	case *sql.CreateTable:
		return s.execCreate(n)
	case *sql.DropTable:
		return s.execDrop(n)
	case *sql.Insert:
		return s.execInsert(ctx, n)
	case *sql.Update:
		return s.execUpdate(n)
	case *sql.Delete:
		return s.execDelete(n)
	case *sql.Select:
		return s.execSelect(ctx, n)
	case *sql.Begin:
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errSessionClosed
		}
		if s.txn != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("transaction already open")
		}
		s.txn = s.db.store.Begin()
		s.mu.Unlock()
		return &Result{}, nil
	case *sql.Commit:
		s.mu.Lock()
		tx := s.txn
		s.txn = nil
		s.mu.Unlock()
		if tx == nil {
			return nil, fmt.Errorf("no transaction open")
		}
		return &Result{}, tx.Commit()
	case *sql.Rollback:
		s.mu.Lock()
		tx := s.txn
		s.txn = nil
		s.mu.Unlock()
		if tx == nil {
			return nil, fmt.Errorf("no transaction open")
		}
		tx.Rollback()
		return &Result{}, nil
	case *sql.CreateIndex:
		return s.execCreateIndex(n)
	case *sql.DropIndex:
		return s.execDropIndex(n)
	case *sql.Analyze:
		return s.execAnalyze(n)
	case *sql.Copy:
		return s.execCopy(n)
	case *sql.Explain:
		return s.execExplain(ctx, n)
	case *sql.Prepare:
		return s.execPrepare(n)
	case *sql.Execute:
		return s.execExecute(ctx, n)
	case *sql.Deallocate:
		return s.execDeallocate(n)
	case *sql.Checkpoint:
		stats, err := s.db.Checkpoint()
		if err != nil {
			return nil, err
		}
		return &Result{
			Columns: []string{"clock", "segments_removed"},
			Types:   []types.Type{types.Int64, types.Int64},
			Rows: [][]types.Value{{
				types.NewInt(int64(stats.Clock)),
				types.NewInt(int64(stats.SegmentsRemoved)),
			}},
		}, nil
	case *sql.Promote:
		cc := s.db.clusterCtl
		if cc == nil {
			return nil, fmt.Errorf("PROMOTE requires cluster control (a lambdaserver with a data directory)")
		}
		epoch, err := cc.Promote(ctx)
		if err != nil {
			return nil, err
		}
		return &Result{
			Columns: []string{"epoch"},
			Types:   []types.Type{types.Int64},
			Rows:    [][]types.Value{{types.NewInt(int64(epoch))}},
		}, nil
	case *sql.Follow:
		cc := s.db.clusterCtl
		if cc == nil {
			return nil, fmt.Errorf("FOLLOW requires cluster control (a lambdaserver with a data directory)")
		}
		if err := cc.Follow(ctx, n.Addr); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.WaitForClock:
		if err := s.db.WaitForClock(ctx, n.Clock); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", st)
}

// execCopy bulk-loads a CSV file into a table (instant-loading style).
func (s *Session) execCopy(n *sql.Copy) (*Result, error) {
	if s.InTransaction() {
		return nil, fmt.Errorf("COPY is not supported inside an explicit transaction")
	}
	f, err := os.Open(n.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := load.CSV(s.db.store, n.Table, f, load.Options{
		Header:    n.Header,
		Delimiter: n.Delimiter,
		Workers:   s.db.workers,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: rows}, nil
}

// snapshot returns the read snapshot for the current statement.
func (s *Session) snapshot() uint64 {
	s.mu.Lock()
	tx := s.txn
	s.mu.Unlock()
	if tx != nil {
		return tx.Snapshot()
	}
	return s.db.store.Snapshot()
}

// write runs fn against the session transaction, or an autocommit one.
func (s *Session) write(fn func(tx *storage.Txn) error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errSessionClosed
	}
	tx := s.txn
	s.mu.Unlock()
	if tx != nil {
		// A concurrent Close may roll tx back mid-statement; the Txn's own
		// locking turns that into a clean "transaction already finished"
		// error from the buffering calls.
		return fn(tx)
	}
	tx = s.db.store.Begin()
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

func (s *Session) execCreate(n *sql.CreateTable) (*Result, error) {
	_, err := s.db.store.CreateTable(n.Name, n.Schema)
	if err != nil && n.IfNotExists {
		return &Result{}, nil
	}
	return &Result{}, err
}

func (s *Session) execDrop(n *sql.DropTable) (*Result, error) {
	err := s.db.store.DropTable(n.Name)
	if err == nil {
		s.db.stats.drop(n.Name)
	}
	if err != nil && n.IfExists {
		return &Result{}, nil
	}
	return &Result{}, err
}

// newBuilder returns a plan builder configured with the session snapshot,
// the DB's iteration limit, and the system virtual tables.
func (s *Session) newBuilder() *plan.Builder {
	b := plan.NewBuilder(systemCatalog{db: s.db}, s.snapshot())
	if s.db.iterLimit > 0 {
		b.MaxDepth = s.db.iterLimit
	}
	b.Stats = &s.db.stats
	return b
}

// runPlan executes a built plan under the session's execution settings
// (workers, memory limit, statement timeout). When telemetry is armed it
// records the per-operator stats tree and peak memory on the session —
// including for failed statements, so cancelled work is observable too.
func (s *Session) runPlan(ctx context.Context, node plan.Node) (*exec.Materialized, error) {
	if s.db.stmtTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.db.stmtTimeout)
		defer cancel()
	}
	ectx := exec.NewContext()
	ectx.Workers = s.db.workers
	ectx.AttachContext(ctx)
	ectx.SetMemoryLimit(s.db.memLimit)
	ectx.OnIndexProbe = func(rows int64) {
		s.db.metrics.IndexScans.Add(1)
		s.db.metrics.IndexRowsRead.Add(rows)
	}
	var sc *exec.StatsCollector
	if s.statsArmed() {
		sc = ectx.EnableStats()
	}
	mat, err := exec.Run(node, ectx)
	if sc != nil {
		s.lastStats = sc.Tree(node)
		s.lastPeak = ectx.PeakBytes()
	}
	return mat, err
}

func (s *Session) execSelect(ctx context.Context, sel *sql.Select) (*Result, error) {
	if n, err := sql.NumParams(sel); err != nil {
		return nil, err
	} else if n > 0 {
		return nil, fmt.Errorf("statement has %d parameter placeholder(s); use PREPARE / EXECUTE to bind them", n)
	}
	// Read both invalidation versions before building: a DDL or ANALYZE
	// racing this build then mismatches the stamped entry on its next
	// lookup, so a possibly-stale plan is never served again.
	ddlVer := s.db.store.DDLVersion()
	statsVer := s.db.stats.Version()
	planStart := time.Now()
	node, err := s.newBuilder().BuildSelect(sel)
	s.planNs = time.Since(planStart).Nanoseconds()
	if err != nil {
		return nil, err
	}
	if key := s.cacheKey; key != "" {
		s.cacheKey = ""
		if planCacheable(node) {
			s.db.planCache.Put(&plancache.Entry{
				Key: key, Plan: node, DDLVer: ddlVer, StatsVer: statsVer,
			})
		}
	}
	return s.runSelectPlan(ctx, node)
}

// runSelectPlan executes a built (or rebound) SELECT plan and shapes the
// result.
func (s *Session) runSelectPlan(ctx context.Context, node plan.Node) (*Result, error) {
	mat, err := s.runPlan(ctx, node)
	if err != nil {
		return nil, err
	}
	colTypes := make([]types.Type, len(mat.Schema))
	for i, c := range mat.Schema {
		colTypes[i] = c.Type
	}
	return &Result{Columns: mat.Schema.Names(), Types: colTypes, Rows: mat.Rows()}, nil
}

// Explain returns the plan of a SELECT or DML statement as text without
// executing it.
func (s *Session) Explain(text string) (string, error) {
	st, err := sql.ParseOne(text)
	if err != nil {
		return "", err
	}
	if ex, ok := st.(*sql.Explain); ok {
		st = ex.Stmt
	}
	lines, err := s.explainLines(st)
	if err != nil {
		return "", err
	}
	return strings.Join(lines, "\n") + "\n", nil
}
