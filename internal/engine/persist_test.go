package engine

import (
	"path/filepath"
	"testing"
)

func TestSaveAndOpenFile(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE edges (src BIGINT, dest BIGINT)`)
	db.MustExec(`INSERT INTO edges VALUES (1,2),(2,1)`)
	path := filepath.Join(t.TempDir(), "db.img")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	restored, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := queryInts(t, restored, `SELECT count(*) FROM nums`)
	if got[0] != 5 {
		t.Errorf("restored rows = %v", got)
	}
	// The restored database is fully queryable including analytics.
	r, err := restored.Query(`SELECT count(*) FROM PAGERANK ((SELECT src, dest FROM edges), 0.85, 0.0, 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 {
		t.Errorf("pagerank on restored db = %v", r.Rows[0][0])
	}
	// And writable.
	restored.MustExec(`INSERT INTO nums VALUES (6, 6.5, 'z')`)
	if got := queryInts(t, restored, `SELECT count(*) FROM nums`); got[0] != 6 {
		t.Errorf("post-restore insert: %v", got)
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile("/nonexistent/db.img"); err == nil {
		t.Error("missing image should fail")
	}
}
