package engine

import (
	"sort"
	"time"

	"lambdadb/internal/catalog"
	"lambdadb/internal/types"
)

// systemCatalog decorates the store's catalog with the virtual tables
// system.query_log and system.metrics. Virtual tables materialize their
// rows at resolve time (plan build), so a statement never observes its own
// log entry and scans are stable for the statement's lifetime.
type systemCatalog struct {
	db *DB
}

func (c systemCatalog) Resolve(name string) (catalog.Relation, error) {
	switch name {
	case "system.query_log":
		return c.queryLogRelation(), nil
	case "system.metrics":
		return c.metricsRelation(), nil
	case "system.table_stats":
		return c.tableStatsRelation(), nil
	case "system.indexes":
		return c.indexesRelation(), nil
	case "system.replication":
		return c.replicationRelation(), nil
	case "system.plan_cache":
		return c.planCacheRelation(), nil
	}
	return c.db.store.Resolve(name)
}

// tableStatsRelation exposes the ANALYZE-collected per-column statistics.
func (c systemCatalog) tableStatsRelation() *memRelation {
	schema := types.Schema{
		{Name: "table_name", Type: types.String},
		{Name: "column_name", Type: types.String},
		{Name: "row_count", Type: types.Int64},
		{Name: "null_count", Type: types.Int64},
		{Name: "ndv", Type: types.Int64},
		{Name: "min", Type: types.String},
		{Name: "max", Type: types.String},
		{Name: "hist_buckets", Type: types.Int64},
		{Name: "snapshot", Type: types.Int64},
	}
	b := types.NewBatch(schema)
	for _, name := range c.db.stats.tables() {
		ts, ok := c.db.stats.TableStats(name)
		if !ok {
			continue
		}
		for _, cs := range ts.Cols {
			b.AppendRow([]types.Value{
				types.NewString(ts.Table),
				types.NewString(cs.Name),
				types.NewInt(ts.RowCount),
				types.NewInt(cs.NullCount),
				types.NewInt(cs.NDV),
				types.NewString(cs.Min.String()),
				types.NewString(cs.Max.String()),
				types.NewInt(int64(len(cs.Hist))),
				types.NewInt(int64(ts.Snapshot)),
			})
		}
	}
	return newMemRelation("system.table_stats", schema, b)
}

// indexesRelation lists every secondary index with its size counters.
func (c systemCatalog) indexesRelation() *memRelation {
	schema := types.Schema{
		{Name: "table_name", Type: types.String},
		{Name: "index_name", Type: types.String},
		{Name: "column_name", Type: types.String},
		{Name: "kind", Type: types.String},
		{Name: "keys", Type: types.Int64},
		{Name: "entries", Type: types.Int64},
	}
	b := types.NewBatch(schema)
	names := c.db.store.TableNames()
	sort.Strings(names)
	for _, tn := range names {
		tbl, err := c.db.store.Table(tn)
		if err != nil {
			continue
		}
		for _, ix := range tbl.Indexes() {
			b.AppendRow([]types.Value{
				types.NewString(tn),
				types.NewString(ix.Name),
				types.NewString(ix.Column),
				types.NewString(ix.Kind),
				types.NewInt(int64(ix.Keys)),
				types.NewInt(int64(ix.Entries)),
			})
		}
	}
	return newMemRelation("system.indexes", schema, b)
}

func (c systemCatalog) queryLogRelation() *memRelation {
	schema := types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "started", Type: types.String},
		{Name: "statement", Type: types.String},
		{Name: "trace_id", Type: types.String},
		{Name: "duration_ms", Type: types.Float64},
		{Name: "rows", Type: types.Int64},
		{Name: "peak_bytes", Type: types.Int64},
		{Name: "status", Type: types.String},
		{Name: "error", Type: types.String},
	}
	b := types.NewBatch(schema)
	for _, e := range c.db.queryLog.Snapshot() {
		b.AppendRow([]types.Value{
			types.NewInt(e.ID),
			types.NewString(e.Started.UTC().Format(time.RFC3339Nano)),
			types.NewString(e.Statement),
			types.NewString(e.TraceID),
			types.NewFloat(float64(e.Duration.Nanoseconds()) / 1e6),
			types.NewInt(e.Rows),
			types.NewInt(e.PeakBytes),
			types.NewString(e.Status),
			types.NewString(e.Err),
		})
	}
	return newMemRelation("system.query_log", schema, b)
}

func (c systemCatalog) metricsRelation() *memRelation {
	schema := types.Schema{
		{Name: "name", Type: types.String},
		{Name: "value", Type: types.Int64},
	}
	b := types.NewBatch(schema)
	for _, m := range c.db.metrics.Snapshot() {
		b.AppendRow([]types.Value{types.NewString(m.Name), types.NewInt(m.Value)})
	}
	// Histogram summaries (p50/p95/p99/count per histogram) follow the
	// plain counters, so `SELECT * FROM system.metrics` is one stop for
	// both counts and latency distributions.
	for _, m := range c.db.metrics.Hist().HistogramSummaries() {
		b.AppendRow([]types.Value{types.NewString(m.Name), types.NewInt(m.Value)})
	}
	return newMemRelation("system.metrics", schema, b)
}

// planCacheRelation lists the cached plan templates, most recently used
// first (list position 0 is the MRU entry, the last to be evicted).
func (c systemCatalog) planCacheRelation() *memRelation {
	schema := types.Schema{
		{Name: "position", Type: types.Int64},
		{Name: "statement", Type: types.String},
		{Name: "num_params", Type: types.Int64},
		{Name: "hits", Type: types.Int64},
		{Name: "ddl_version", Type: types.Int64},
		{Name: "stats_version", Type: types.Int64},
	}
	b := types.NewBatch(schema)
	for i, e := range c.db.planCache.Snapshot() {
		b.AppendRow([]types.Value{
			types.NewInt(int64(i)),
			types.NewString(e.Key),
			types.NewInt(int64(e.NParams)),
			types.NewInt(e.Hits),
			types.NewInt(int64(e.DDLVer)),
			types.NewInt(int64(e.StatsVer)),
		})
	}
	return newMemRelation("system.plan_cache", schema, b)
}

// memRelation is an immutable in-memory relation backing a virtual table.
type memRelation struct {
	name   string
	schema types.Schema
	batch  *types.Batch
}

func newMemRelation(name string, schema types.Schema, batch *types.Batch) *memRelation {
	return &memRelation{name: name, schema: schema, batch: batch}
}

func (r *memRelation) Name() string         { return r.name }
func (r *memRelation) Schema() types.Schema { return r.schema }
func (r *memRelation) NumRows(_ uint64) int { return r.batch.Len() }
func (r *memRelation) PhysicalRows() int    { return r.batch.Len() }

func (r *memRelation) Scan(_ uint64, yield func(*types.Batch) error) error {
	if r.batch.Len() == 0 {
		return nil
	}
	return yield(r.batch)
}

func (r *memRelation) ScanRange(_ uint64, lo, hi int, yield func(*types.Batch) error) error {
	n := r.batch.Len()
	if hi < 0 || hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	b := r.batch
	if lo != 0 || hi != n {
		b = b.Slice(lo, hi)
	}
	return yield(b)
}
