package engine

import (
	"time"

	"lambdadb/internal/catalog"
	"lambdadb/internal/types"
)

// systemCatalog decorates the store's catalog with the virtual tables
// system.query_log and system.metrics. Virtual tables materialize their
// rows at resolve time (plan build), so a statement never observes its own
// log entry and scans are stable for the statement's lifetime.
type systemCatalog struct {
	db *DB
}

func (c systemCatalog) Resolve(name string) (catalog.Relation, error) {
	switch name {
	case "system.query_log":
		return c.queryLogRelation(), nil
	case "system.metrics":
		return c.metricsRelation(), nil
	}
	return c.db.store.Resolve(name)
}

func (c systemCatalog) queryLogRelation() *memRelation {
	schema := types.Schema{
		{Name: "id", Type: types.Int64},
		{Name: "started", Type: types.String},
		{Name: "statement", Type: types.String},
		{Name: "duration_ms", Type: types.Float64},
		{Name: "rows", Type: types.Int64},
		{Name: "peak_bytes", Type: types.Int64},
		{Name: "status", Type: types.String},
		{Name: "error", Type: types.String},
	}
	b := types.NewBatch(schema)
	for _, e := range c.db.queryLog.Snapshot() {
		b.AppendRow([]types.Value{
			types.NewInt(e.ID),
			types.NewString(e.Started.UTC().Format(time.RFC3339Nano)),
			types.NewString(e.Statement),
			types.NewFloat(float64(e.Duration.Nanoseconds()) / 1e6),
			types.NewInt(e.Rows),
			types.NewInt(e.PeakBytes),
			types.NewString(e.Status),
			types.NewString(e.Err),
		})
	}
	return newMemRelation("system.query_log", schema, b)
}

func (c systemCatalog) metricsRelation() *memRelation {
	schema := types.Schema{
		{Name: "name", Type: types.String},
		{Name: "value", Type: types.Int64},
	}
	b := types.NewBatch(schema)
	for _, m := range c.db.metrics.Snapshot() {
		b.AppendRow([]types.Value{types.NewString(m.Name), types.NewInt(m.Value)})
	}
	return newMemRelation("system.metrics", schema, b)
}

// memRelation is an immutable in-memory relation backing a virtual table.
type memRelation struct {
	name   string
	schema types.Schema
	batch  *types.Batch
}

func newMemRelation(name string, schema types.Schema, batch *types.Batch) *memRelation {
	return &memRelation{name: name, schema: schema, batch: batch}
}

func (r *memRelation) Name() string         { return r.name }
func (r *memRelation) Schema() types.Schema { return r.schema }
func (r *memRelation) NumRows(_ uint64) int { return r.batch.Len() }
func (r *memRelation) PhysicalRows() int    { return r.batch.Len() }

func (r *memRelation) Scan(_ uint64, yield func(*types.Batch) error) error {
	if r.batch.Len() == 0 {
		return nil
	}
	return yield(r.batch)
}

func (r *memRelation) ScanRange(_ uint64, lo, hi int, yield func(*types.Batch) error) error {
	n := r.batch.Len()
	if hi < 0 || hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	b := r.batch
	if lo != 0 || hi != n {
		b = b.Slice(lo, hi)
	}
	return yield(b)
}
