package engine

import (
	"testing"
)

func TestKMeansAssignBasic(t *testing.T) {
	db := clusterTestDB(t)
	r, err := db.Query(`SELECT x, y, cluster FROM KMEANS_ASSIGN (
		(SELECT x, y FROM data),
		(SELECT x, y FROM center)) ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Initial centers are (1,1) and (9,9): the four near-origin points go
	// to cluster 0, the four near (10,10) to cluster 1.
	for _, row := range r.Rows {
		want := int64(0)
		if row[0].F > 5 {
			want = 1
		}
		if row[2].I != want {
			t.Errorf("point (%v,%v) assigned to %d, want %d", row[0].F, row[1].F, row[2].I, want)
		}
	}
}

func TestKMeansAssignModelApplication(t *testing.T) {
	// The full model-application pattern: KMEANS learns centers, the
	// centers relation feeds KMEANS_ASSIGN — one query, no copies.
	db := clusterTestDB(t)
	r, err := db.Query(`SELECT cluster, count(*) AS members FROM KMEANS_ASSIGN (
		(SELECT x, y FROM data),
		(SELECT x, y FROM KMEANS ((SELECT x, y FROM data), (SELECT x, y FROM center), 10)))
		GROUP BY cluster ORDER BY cluster`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("clusters = %v", r.Rows)
	}
	if r.Rows[0][1].I != 4 || r.Rows[1][1].I != 4 {
		t.Errorf("cluster sizes = %v", r.Rows)
	}
}

func TestKMeansAssignWithLambda(t *testing.T) {
	db := clusterTestDB(t)
	r, err := db.Query(`SELECT count(*) FROM KMEANS_ASSIGN (
		(SELECT x, y FROM data),
		(SELECT x, y FROM center),
		λ(a, b) abs(a.x - b.x) + abs(a.y - b.y))`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 8 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
}

func TestKMeansAssignErrors(t *testing.T) {
	db := clusterTestDB(t)
	for _, q := range []string{
		`SELECT * FROM KMEANS_ASSIGN ((SELECT x, y FROM data))`,
		`SELECT * FROM KMEANS_ASSIGN ((SELECT x FROM data), (SELECT x, y FROM center))`,
		`SELECT * FROM KMEANS_ASSIGN ((SELECT x, y FROM data), (SELECT x, y FROM center), 5)`,
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}
