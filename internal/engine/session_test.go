package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lambdadb/internal/faultinject"
)

// TestStatementErrorAbortsTransaction: a failed statement inside an
// explicit transaction rolls the transaction back (abort-on-error), and
// the error says so.
func TestStatementErrorAbortsTransaction(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (n BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)

	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(`BEGIN; INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec(`SELECT * FROM missing_table`)
	if err == nil {
		t.Fatal("statement against a missing table should fail")
	}
	if !strings.Contains(err.Error(), "open transaction rolled back") {
		t.Errorf("error does not mention the rollback: %v", err)
	}
	if s.InTransaction() {
		t.Error("transaction still open after a failed statement")
	}
	// The buffered insert must be gone, and the session usable again.
	r, qerr := db.Query(`SELECT count(*) FROM t`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if got := r.Rows[0][0].I; got != 1 {
		t.Errorf("count = %d, want 1 (aborted insert leaked)", got)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (3)`); err != nil {
		t.Errorf("session unusable after aborted transaction: %v", err)
	}
}

// TestMidScriptErrorAbortsTransaction: the failure arriving mid-script
// (statements after it skipped) must still abort the transaction opened
// earlier in the same script.
func TestMidScriptErrorAbortsTransaction(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (n BIGINT)`)
	s := db.NewSession()
	defer s.Close()
	_, err := s.Exec(`BEGIN; INSERT INTO t VALUES (1); SELECT * FROM nope; INSERT INTO t VALUES (2); COMMIT`)
	if err == nil {
		t.Fatal("script with a failing statement should fail")
	}
	if s.InTransaction() {
		t.Error("transaction left open after mid-script failure")
	}
	r, qerr := db.Query(`SELECT count(*) FROM t`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if got := r.Rows[0][0].I; got != 0 {
		t.Errorf("count = %d, want 0 (partial script committed)", got)
	}
}

// TestUpdateThenDeleteInTxn is the engine-level commit-atomicity
// regression: UPDATE buffers delete+insert for each matched row, the
// following DELETE (which cannot see the transaction's own writes) buffers
// the same physical rows again. The commit used to fail with a spurious
// serialization conflict after stamping rows with an unpublished
// timestamp.
func TestUpdateThenDeleteInTxn(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (n BIGINT, f DOUBLE)`)
	db.MustExec(`INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)`)

	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(`BEGIN; UPDATE t SET f = f + 10; DELETE FROM t; COMMIT`); err != nil {
		t.Fatalf("UPDATE-then-DELETE transaction failed to commit: %v", err)
	}
	// Documented visibility rule: DELETE saw the BEGIN snapshot, so it
	// removed the *original* rows; the UPDATE's replacement rows survive.
	r, err := db.Query(`SELECT count(*), min(f) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows[0][0].I; got != 3 {
		t.Errorf("count = %d, want 3 (updated rows survive the snapshot-based DELETE)", got)
	}
	if got := r.Rows[0][1].AsFloat(); got != 11.0 {
		t.Errorf("min(f) = %v, want 11 (update applied)", got)
	}
	// Integrity probe: the next autocommit write must not publish phantom
	// state (this is what broke before the fix).
	db.MustExec(`INSERT INTO t VALUES (9, 9.0)`)
	r, err = db.Query(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows[0][0].I; got != 4 {
		t.Errorf("count after probe insert = %d, want 4", got)
	}
}

// TestDoubleDeleteScript: DELETE twice in one transaction commits cleanly.
func TestDoubleDeleteScript(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (n BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2)`)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(`BEGIN; DELETE FROM t; DELETE FROM t; COMMIT`); err != nil {
		t.Fatalf("double DELETE failed to commit: %v", err)
	}
	r, err := db.Query(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows[0][0].I; got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

// TestClosedSessionRejectsStatements: statements after Close fail cleanly.
func TestClosedSessionRejectsStatements(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (n BIGINT)`)
	s := db.NewSession()
	s.Close()
	if _, err := s.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Error("statement on a closed session should fail")
	}
	s.Close() // double close is fine
}

// TestCloseConcurrentWithExec closes sessions while statements are in
// flight (a client dropping mid-statement). Run under -race this verifies
// the session locking; functionally the statement must either complete or
// fail cleanly, never panic or wedge.
func TestCloseConcurrentWithExec(t *testing.T) {
	defer faultinject.Reset()
	db := Open()
	db.MustExec(`CREATE TABLE t (n BIGINT, f DOUBLE)`)
	db.MustExec(`INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)`)
	// Slow every scan batch a little so Close reliably lands mid-statement.
	faultinject.Set("exec.scan.batch", func() error {
		time.Sleep(200 * time.Microsecond)
		return nil
	})

	for i := 0; i < 30; i++ {
		s := db.NewSession()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Mixed read/write traffic inside an explicit transaction.
			_, _ = s.Exec(`BEGIN; UPDATE t SET f = f + 1; SELECT sum(f) FROM t; COMMIT`)
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			s.Close()
		}()
		wg.Wait()
		if s.InTransaction() {
			t.Fatal("closed session still reports an open transaction")
		}
	}
	faultinject.Reset()
	// The database stays consistent and usable.
	if _, err := db.Query(`SELECT count(*) FROM t`); err != nil {
		t.Fatalf("database unusable after close/exec races: %v", err)
	}
}
