package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lambdadb/internal/exec"
	"lambdadb/internal/faultinject"
)

// slowIterate never reaches its stop condition before the default depth
// bound; each round is trivial, so it spins for as long as the lifecycle
// controls allow.
const slowIterate = `SELECT * FROM ITERATE (
	(SELECT 1 "x"),
	(SELECT x + 1 FROM iterate),
	(SELECT x FROM iterate WHERE x < 0))`

func TestExecContextCancelled(t *testing.T) {
	db := newTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, `SELECT n FROM nums`); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The DB stays usable after a cancelled statement.
	if got := queryInts(t, db, `SELECT count(*) FROM nums`); len(got) != 1 || got[0] != 5 {
		t.Fatalf("post-cancel query = %v", got)
	}
}

func TestExecContextCancelMidIteration(t *testing.T) {
	defer faultinject.Reset()
	db := Open(WithIterationLimit(1_000_000))
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	rounds := 0
	faultinject.Set("exec.iterate.round", func() error {
		rounds++
		if rounds >= 10 {
			once.Do(cancel)
		}
		return nil
	})
	_, err := db.ExecContext(ctx, slowIterate)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	faultinject.Reset()
	// Working-table bindings are released: later queries — including a
	// fresh ITERATE reusing the binding name — run normally.
	r, qerr := db.Exec(`SELECT * FROM ITERATE (
		(SELECT 1 "x"),
		(SELECT x + 1 FROM iterate),
		(SELECT x FROM iterate WHERE x >= 3))`)
	if qerr != nil {
		t.Fatalf("ITERATE after cancellation: %v", qerr)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].I != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestStatementTimeout(t *testing.T) {
	defer faultinject.Reset()
	db := Open(WithStatementTimeout(30*time.Millisecond), WithIterationLimit(1_000_000_000))
	// Slow each round down so the loop outlives the timeout by pacing, not
	// by CPU-bound luck.
	faultinject.Set("exec.iterate.round", func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	start := time.Now()
	_, err := db.Exec(slowIterate)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v to take effect", elapsed)
	}
	faultinject.Reset()
	// The timeout is per statement, not per DB: quick statements still run.
	if got := queryInts(t, db, `SELECT 1 "x"`); len(got) != 1 || got[0] != 1 {
		t.Fatalf("post-timeout query = %v", got)
	}
}

func TestIterationLimitIterate(t *testing.T) {
	db := Open(WithIterationLimit(25))
	_, err := db.Exec(slowIterate)
	if err == nil || !strings.Contains(err.Error(), "exceeded 25 iterations") {
		t.Fatalf("want iteration-limit error, got %v", err)
	}
}

func TestIterationLimitRecursiveCTE(t *testing.T) {
	db := Open(WithIterationLimit(25))
	_, err := db.Exec(`WITH RECURSIVE r ("x") AS (
		SELECT 1 UNION ALL SELECT x + 1 FROM r)
		SELECT count(*) FROM r`)
	if err == nil || !strings.Contains(err.Error(), "exceeded 25 iterations") {
		t.Fatalf("want iteration-limit error, got %v", err)
	}
	// The limit names the CTE.
	if !strings.Contains(err.Error(), "recursive CTE r") {
		t.Fatalf("error does not name the CTE: %v", err)
	}
}

func TestMemoryLimitSQL(t *testing.T) {
	db := Open(WithMemoryLimit(16 << 10))
	db.MustExec(`CREATE TABLE big (n BIGINT, v DOUBLE)`)
	// ~12k rows * 16 B well past the 16 KB budget; insert in chunks via a
	// recursive generator-free path: plain INSERTs.
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES (0, 0.0)`)
	for i := 1; i < 512; i++ {
		sb.WriteString(`, (`)
		sb.WriteString(itoa(i))
		sb.WriteString(`, 1.0)`)
	}
	for i := 0; i < 24; i++ {
		db.MustExec(sb.String())
	}
	_, err := db.Query(`SELECT n FROM big ORDER BY n DESC`)
	var re *exec.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want *exec.ResourceError, got %v", err)
	}
	if re.Operator == "" {
		t.Fatalf("ResourceError does not name an operator: %+v", re)
	}
	// DML and small queries still work under the same budget.
	if got := queryInts(t, db, `SELECT count(*) FROM big`); len(got) != 1 || got[0] != 512*24 {
		t.Fatalf("post-breach count = %v", got)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestInjectedPanicBecomesInternalError(t *testing.T) {
	defer faultinject.Reset()
	db := newTestDB(t)
	faultinject.Set("exec.scan.batch", func() error { panic("engine-level injected panic") })
	_, err := db.Query(`SELECT n FROM nums`)
	var ie *exec.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *exec.InternalError, got %v", err)
	}
	faultinject.Reset()
	if got := queryInts(t, db, `SELECT count(*) FROM nums`); len(got) != 1 || got[0] != 5 {
		t.Fatalf("post-panic query = %v", got)
	}
}

func TestSessionExecContextSkipsRemainingStatements(t *testing.T) {
	defer faultinject.Reset()
	db := newTestDB(t)
	s := db.NewSession()
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	faultinject.Set("exec.scan.batch", func() error { cancel(); return nil })
	// The second statement must never run: the INSERT would be visible.
	_, err := s.ExecContext(ctx, `SELECT n FROM nums; INSERT INTO nums VALUES (99, 9.9, 'z')`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	faultinject.Reset()
	if got := queryInts(t, db, `SELECT count(*) FROM nums WHERE n = 99`); got[0] != 0 {
		t.Fatal("statement after the cancelled one still ran")
	}
}
