package engine

import (
	"sort"
	"testing"

	"lambdadb/internal/types"
)

// loadParallelFixture bulk-loads deterministic tables big enough to cross
// the executor's morsel-split threshold: fact (60k rows, duplicated keys,
// NULLs sprinkled) and dim (30k rows).
func loadParallelFixture(t *testing.T, db *DB) {
	t.Helper()
	db.MustExec(`CREATE TABLE fact (k BIGINT, v DOUBLE)`)
	db.MustExec(`CREATE TABLE dim (k BIGINT, w DOUBLE)`)
	fill := func(name string, n, mod, nullEvery int) {
		tbl, err := db.Store().Table(name)
		if err != nil {
			t.Fatal(err)
		}
		tx := db.Store().Begin()
		const chunk = 1 << 14
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			b := types.NewBatch(tbl.Schema())
			for i := lo; i < hi; i++ {
				if nullEvery > 0 && i%nullEvery == 0 {
					b.Cols[0].AppendNull()
				} else {
					b.Cols[0].AppendInt(int64(i % mod))
				}
				b.Cols[1].AppendFloat(float64(i))
			}
			if err := tx.Insert(tbl, b); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	fill("fact", 60_000, 20_000, 101)
	fill("dim", 30_000, 20_000, 0)
}

// TestParallelQueriesMatchSerial runs the same SQL on a Workers=1 and a
// Workers=8 database and demands identical (normalized) results across
// join-heavy, sort-heavy, top-k, and recursive workloads.
func TestParallelQueriesMatchSerial(t *testing.T) {
	serialDB := Open(WithWorkers(1))
	parallelDB := Open(WithWorkers(8))
	loadParallelFixture(t, serialDB)
	loadParallelFixture(t, parallelDB)

	queries := []struct {
		name    string
		sql     string
		ordered bool
	}{
		{"hash-join", `SELECT fact.k, fact.v, dim.w FROM fact JOIN dim ON fact.k = dim.k`, false},
		{"left-join-nulls", `SELECT fact.k, dim.w FROM fact LEFT JOIN dim ON fact.k = dim.k WHERE fact.v < 5000`, false},
		{"join-agg", `SELECT dim.k, count(*), sum(fact.v) FROM fact JOIN dim ON fact.k = dim.k GROUP BY dim.k`, false},
		{"full-sort", `SELECT k, v FROM fact ORDER BY v DESC`, true},
		{"sort-two-keys", `SELECT k, v FROM fact ORDER BY k, v DESC`, true},
		{"topk-limit-offset", `SELECT k, v FROM fact ORDER BY v DESC LIMIT 20 OFFSET 7`, true},
		{"sort-over-join", `SELECT fact.v, dim.w FROM fact JOIN dim ON fact.k = dim.k ORDER BY fact.v LIMIT 50`, true},
		{"recursive-cte", `WITH RECURSIVE walk (v, depth) AS (
			SELECT 1, 0
			UNION ALL
			SELECT fact.k, walk.depth + 1 FROM walk JOIN fact ON walk.v = fact.k WHERE walk.depth < 2
		) SELECT count(*) FROM walk`, true},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			sr, err := serialDB.Query(q.sql)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			pr, err := parallelDB.Query(q.sql)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if len(sr.Rows) != len(pr.Rows) {
				t.Fatalf("row counts differ: serial %d parallel %d", len(sr.Rows), len(pr.Rows))
			}
			a, b := sr.Rows, pr.Rows
			if !q.ordered {
				normalizeRows(a)
				normalizeRows(b)
			}
			for i := range a {
				for j := range a[i] {
					av, bv := a[i][j], b[i][j]
					if av.Null != bv.Null || (!av.Null && !av.Equal(bv)) {
						t.Fatalf("row %d col %d: serial %v parallel %v", i, j, av, bv)
					}
				}
			}
		})
	}
}

// normalizeRows sorts rows into a canonical total order (NULLs first).
func normalizeRows(rows [][]types.Value) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for c := range a {
			if a[c].Null != b[c].Null {
				return a[c].Null
			}
			if a[c].Null {
				continue
			}
			if cmp := a[c].Compare(b[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}
