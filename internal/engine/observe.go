package engine

import (
	"context"
	"encoding/json"
	"time"

	"lambdadb/internal/exec"
	"lambdadb/internal/sql"
	"lambdadb/internal/telemetry"
)

// execLogged runs one statement and folds its outcome into the engine
// telemetry: cumulative counters (system.metrics), the recent-statement
// ring (system.query_log), and — when the statement ran at least the
// configured threshold — the slow-query log.
func (s *Session) execLogged(ctx context.Context, text string, st sql.Statement) (*Result, error) {
	s.lastStats, s.lastPeak = nil, 0
	start := time.Now()
	res, err := s.execStatement(ctx, st)
	dur := time.Since(start)

	status := telemetry.StatusOf(err)
	var returned, affected int64
	if res != nil {
		returned = int64(len(res.Rows))
		affected = int64(res.Affected)
	}
	errText := ""
	if err != nil {
		errText = err.Error()
	}
	db := s.db
	db.metrics.RecordStatement(status, returned, affected, dur, s.lastPeak)
	db.queryLog.Add(telemetry.QueryLogEntry{
		Started:   start,
		Statement: text,
		Duration:  dur,
		Rows:      returned + affected,
		PeakBytes: s.lastPeak,
		Status:    status,
		Err:       errText,
	})
	if db.slowSink != nil && dur >= db.slowThreshold {
		db.metrics.SlowQueries.Add(1)
		s.emitSlowQuery(text, dur, returned+affected, status)
	}
	return res, err
}

// slowQueryRecord is one slow-log line. Stats is the per-operator tree of
// the statement (nil for statements with no plan-driven execution, e.g.
// VALUES inserts).
type slowQueryRecord struct {
	TS         string        `json:"ts"`
	Statement  string        `json:"statement"`
	DurationMS float64       `json:"duration_ms"`
	Rows       int64         `json:"rows"`
	Status     string        `json:"status"`
	PeakBytes  int64         `json:"peak_bytes"`
	Stats      *exec.OpStats `json:"stats,omitempty"`
}

func (s *Session) emitSlowQuery(text string, dur time.Duration, rows int64, status string) {
	rec := slowQueryRecord{
		TS:         time.Now().UTC().Format(time.RFC3339Nano),
		Statement:  text,
		DurationMS: float64(dur.Nanoseconds()) / 1e6,
		Rows:       rows,
		Status:     status,
		PeakBytes:  s.lastPeak,
		Stats:      s.lastStats,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.db.slowMu.Lock()
	defer s.db.slowMu.Unlock()
	s.db.slowSink.Write(append(b, '\n'))
}
