package engine

import (
	"context"
	"encoding/json"
	"time"

	"lambdadb/internal/exec"
	"lambdadb/internal/sql"
	"lambdadb/internal/telemetry"
)

// stmtKind classifies a statement for the by-kind latency histograms.
func stmtKind(st sql.Statement) string {
	switch st.(type) {
	case *sql.Select:
		return telemetry.KindSelect
	case *sql.Insert, *sql.Update, *sql.Delete, *sql.Copy:
		return telemetry.KindDML
	case *sql.CreateTable, *sql.DropTable, *sql.CreateIndex, *sql.DropIndex:
		return telemetry.KindDDL
	}
	return telemetry.KindOther
}

// execLogged runs one statement and folds its outcome into the engine
// telemetry: cumulative counters and latency histograms (system.metrics),
// the recent-statement ring (system.query_log), and — when the statement
// ran at least the configured threshold — the slow-query log. The trace ID
// carried by ctx (if any) is stamped into the log entries so one ID follows
// the statement across every surface.
func (s *Session) execLogged(ctx context.Context, text string, st sql.Statement) (*Result, error) {
	return s.execLoggedKind(ctx, text, stmtKind(st), func(ctx context.Context) (*Result, error) {
		return s.execStatement(ctx, st)
	})
}

// execLoggedKind is execLogged without an AST: the plan-cache hit path uses
// it because a cached statement is never re-parsed, so there is no syntax
// tree to classify — the caller supplies the histogram kind and a closure
// that does the work.
func (s *Session) execLoggedKind(ctx context.Context, text, kind string, run func(context.Context) (*Result, error)) (*Result, error) {
	s.lastStats, s.lastPeak, s.planNs = nil, 0, 0
	db := s.db
	db.metrics.QueriesActive.Add(1)
	start := time.Now()
	res, err := run(ctx)
	dur := time.Since(start)
	db.metrics.QueriesActive.Add(-1)

	status := telemetry.StatusOf(err)
	var returned, affected int64
	if res != nil {
		returned = int64(len(res.Rows))
		affected = int64(res.Affected)
	}
	errText := ""
	if err != nil {
		errText = err.Error()
	}
	db.metrics.RecordStatement(status, returned, affected, dur, s.lastPeak)
	hist := db.metrics.Hist()
	hist.RecordStmt(kind, dur.Nanoseconds())
	// Stage split: parse time is attributed by ExecContext (s.parseNs),
	// plan time by execSelect (s.planNs); what remains is execution.
	execNs := dur.Nanoseconds() - s.planNs
	if execNs < 0 {
		execNs = 0
	}
	hist.RecordStages(s.parseNs+s.planNs, execNs)
	s.parseNs = 0
	traceID := telemetry.TraceID(ctx)
	db.queryLog.Add(telemetry.QueryLogEntry{
		Started:   start,
		Statement: text,
		TraceID:   traceID,
		Duration:  dur,
		Rows:      returned + affected,
		PeakBytes: s.lastPeak,
		Status:    status,
		Err:       errText,
	})
	if db.slowSink != nil && dur >= db.slowThreshold {
		db.metrics.SlowQueries.Add(1)
		s.emitSlowQuery(text, traceID, dur, returned+affected, status)
	}
	return res, err
}

// slowQueryRecord is one slow-log line. Stats is the per-operator tree of
// the statement (nil for statements with no plan-driven execution, e.g.
// VALUES inserts).
type slowQueryRecord struct {
	TS         string        `json:"ts"`
	Statement  string        `json:"statement"`
	TraceID    string        `json:"trace_id,omitempty"`
	DurationMS float64       `json:"duration_ms"`
	Rows       int64         `json:"rows"`
	Status     string        `json:"status"`
	PeakBytes  int64         `json:"peak_bytes"`
	Stats      *exec.OpStats `json:"stats,omitempty"`
}

func (s *Session) emitSlowQuery(text, traceID string, dur time.Duration, rows int64, status string) {
	rec := slowQueryRecord{
		TS:         time.Now().UTC().Format(time.RFC3339Nano),
		Statement:  text,
		TraceID:    traceID,
		DurationMS: float64(dur.Nanoseconds()) / 1e6,
		Rows:       rows,
		Status:     status,
		PeakBytes:  s.lastPeak,
		Stats:      s.lastStats,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.db.slowMu.Lock()
	defer s.db.slowMu.Unlock()
	s.db.slowSink.Write(append(b, '\n'))
}
