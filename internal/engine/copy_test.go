package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCopyFromCSV(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE pts (id BIGINT, x DOUBLE, tag VARCHAR)`)
	path := writeTempCSV(t, "id,x,tag\n1,0.5,a\n2,1.5,b\n3,2.5,c\n")
	r, err := db.Exec(fmt.Sprintf(`COPY pts FROM '%s' WITH HEADER`, path))
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 3 {
		t.Fatalf("affected = %d", r.Affected)
	}
	q, err := db.Query(`SELECT count(*), sum(x) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows[0][0].I != 3 || q.Rows[0][1].F != 4.5 {
		t.Errorf("loaded data = %v", q.Rows[0])
	}
}

func TestCopyCustomDelimiter(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE d (a BIGINT, b VARCHAR)`)
	path := writeTempCSV(t, "1|one\n2|two\n")
	r, err := db.Exec(fmt.Sprintf(`COPY d FROM '%s' DELIMITER '|'`, path))
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Fatalf("affected = %d", r.Affected)
	}
}

func TestCopyErrors(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE e (a BIGINT)`)
	if _, err := db.Exec(`COPY e FROM '/nonexistent/file.csv'`); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := db.Exec(`COPY missing FROM '/tmp/whatever.csv'`); err == nil {
		t.Error("missing table should fail")
	}
	path := writeTempCSV(t, "notanumber\n")
	if _, err := db.Exec(fmt.Sprintf(`COPY e FROM '%s'`, path)); err == nil {
		t.Error("bad data should fail")
	}
	// Failed COPY leaves nothing behind.
	q, _ := db.Query(`SELECT count(*) FROM e`)
	if q.Rows[0][0].I != 0 {
		t.Errorf("failed COPY left %v rows", q.Rows[0][0])
	}
}

func TestCopyRejectedInExplicitTransaction(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE e2 (a BIGINT)`)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	path := writeTempCSV(t, "1\n")
	if _, err := s.Exec(fmt.Sprintf(`COPY e2 FROM '%s'`, path)); err == nil {
		t.Error("COPY inside a transaction should be rejected")
	}
}

func TestExplainStatement(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Exec(`EXPLAIN SELECT n FROM nums WHERE n > 1 ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Columns) != 1 || r.Columns[0] != "plan" {
		t.Fatalf("columns = %v", r.Columns)
	}
	joined := ""
	for _, row := range r.Rows {
		joined += row[0].S + "\n"
	}
	for _, frag := range []string{"Sort", "Project", "Filter", "Scan nums"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("plan missing %q:\n%s", frag, joined)
		}
	}
}

func TestDatagenRoundTrip(t *testing.T) {
	// datagen-format CSV (header + floats) loads back via COPY — the
	// layer-1 export/import loop.
	db := Open()
	db.MustExec(`CREATE TABLE vecs (d0 DOUBLE, d1 DOUBLE)`)
	var sb strings.Builder
	sb.WriteString("d0,d1\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "%g,%g\n", float64(i)*0.1, float64(i)*0.2)
	}
	path := writeTempCSV(t, sb.String())
	r, err := db.Exec(fmt.Sprintf(`COPY vecs FROM '%s' WITH HEADER`, path))
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 100 {
		t.Fatalf("affected = %d", r.Affected)
	}
	q, _ := db.Query(`SELECT max(d1) FROM vecs`)
	if q.Rows[0][0].F != 19.8 {
		t.Errorf("max d1 = %v", q.Rows[0][0])
	}
}
