package engine

import "testing"

func TestLikeInSQL(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE names (n VARCHAR)`)
	db.MustExec(`INSERT INTO names VALUES ('alice'), ('bob'), ('carol'), ('albert')`)
	r, err := db.Query(`SELECT n FROM names WHERE n LIKE 'al%' ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].S != "albert" || r.Rows[1][0].S != "alice" {
		t.Fatalf("rows = %v", r.Rows)
	}
	r, err = db.Query(`SELECT count(*) FROM names WHERE n NOT LIKE '%o%'`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 { // alice, albert
		t.Errorf("NOT LIKE count = %v", r.Rows[0][0])
	}
	r, err = db.Query(`SELECT count(*) FROM names WHERE n LIKE '_ob'`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 {
		t.Errorf("underscore count = %v", r.Rows[0][0])
	}
	if _, err := db.Query(`SELECT * FROM names WHERE n LIKE 5`); err == nil {
		t.Error("non-string pattern should fail to parse")
	}
}
