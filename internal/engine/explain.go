package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lambdadb/internal/exec"
	"lambdadb/internal/plan"
	"lambdadb/internal/sql"
	"lambdadb/internal/types"
)

// execExplain handles EXPLAIN [ANALYZE] <stmt>. Plain EXPLAIN builds the
// plan and returns it as text without executing; EXPLAIN ANALYZE executes
// the statement with telemetry armed and returns the physical tree
// annotated with per-operator actuals plus an execution footer.
func (s *Session) execExplain(ctx context.Context, n *sql.Explain) (*Result, error) {
	var lines []string
	if n.Analyze {
		analyzed, err := s.explainAnalyze(ctx, n.Stmt)
		if err != nil {
			return nil, err
		}
		lines = analyzed
	} else {
		plain, err := s.explainLines(n.Stmt)
		if err != nil {
			return nil, err
		}
		lines = plain
	}
	res := &Result{Columns: []string{"plan"}}
	for _, line := range lines {
		res.Rows = append(res.Rows, []types.Value{types.NewString(line)})
	}
	return res, nil
}

// explainLines renders the static plan of a statement, one line per row.
func (s *Session) explainLines(st sql.Statement) ([]string, error) {
	switch n := st.(type) {
	case *sql.Select:
		node, err := s.newBuilder().BuildSelect(n)
		if err != nil {
			return nil, err
		}
		return splitLines(plan.ExplainTree(node)), nil
	case *sql.Insert:
		lines := []string{fmt.Sprintf("Insert into %s", n.Table)}
		if n.Query != nil {
			node, err := s.newBuilder().BuildSelect(n.Query)
			if err != nil {
				return nil, err
			}
			lines = append(lines, indentLines(splitLines(plan.ExplainTree(node)))...)
		} else {
			lines = append(lines, fmt.Sprintf("  Values (%d rows)", len(n.Rows)))
		}
		return lines, nil
	case *sql.Update:
		return dmlScanLines(fmt.Sprintf("Update %s", n.Table), n.Table, n.Where), nil
	case *sql.Delete:
		return dmlScanLines(fmt.Sprintf("Delete from %s", n.Table), n.Table, n.Where), nil
	}
	return nil, fmt.Errorf("EXPLAIN supports SELECT, INSERT, UPDATE, and DELETE statements")
}

// dmlScanLines renders the table-scan shape shared by UPDATE and DELETE.
func dmlScanLines(head, table string, where any) []string {
	lines := []string{head}
	if where != nil {
		lines = append(lines,
			fmt.Sprintf("  Filter %s", where),
			fmt.Sprintf("    Scan %s", table))
	} else {
		lines = append(lines, fmt.Sprintf("  Scan %s", table))
	}
	return lines
}

// explainAnalyze executes the statement with stats armed and renders the
// operator tree with actuals plus a footer of whole-statement measurements.
func (s *Session) explainAnalyze(ctx context.Context, st sql.Statement) ([]string, error) {
	saved := s.collect
	s.collect = true
	defer func() { s.collect = saved }()

	start := time.Now()
	res, err := s.execStatement(ctx, st)
	dur := time.Since(start)
	if err != nil {
		return nil, err
	}

	var lines []string
	if s.lastStats != nil {
		body := splitLines(exec.FormatStatsTree(s.lastStats))
		if ins, ok := st.(*sql.Insert); ok {
			// The stats tree covers the SELECT source; head it with the sink.
			lines = append(lines, fmt.Sprintf("Insert into %s", ins.Table))
			lines = append(lines, indentLines(body)...)
		} else {
			lines = body
		}
	} else {
		// No plan-driven execution (VALUES insert, UPDATE, DELETE): show
		// the static shape.
		lines, err = s.explainLines(st)
		if err != nil {
			return nil, err
		}
	}
	rows := int64(len(res.Rows)) + int64(res.Affected)
	lines = append(lines,
		"",
		fmt.Sprintf("Execution time: %s", dur.Round(time.Microsecond)),
		fmt.Sprintf("Rows: %d", rows),
		fmt.Sprintf("Peak memory: %s", exec.FormatBytes(s.lastPeak)),
		fmt.Sprintf("Workers: %d", s.db.workers))
	return lines, nil
}

// splitLines breaks rendered multi-line text into rows, dropping the
// trailing newline.
func splitLines(text string) []string {
	return strings.Split(strings.TrimRight(text, "\n"), "\n")
}

// indentLines shifts every line right by two spaces (nesting under a
// synthetic DML head line).
func indentLines(lines []string) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = "  " + l
	}
	return out
}
