package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAnalyticsUnderConcurrentWrites exercises the paper's core claim:
// analytical algorithms run "in a fully transactional environment".
// PageRank queries execute while writers concurrently insert edges; every
// query must see a consistent snapshot (rank mass exactly 1, vertex count
// within the committed range).
func TestAnalyticsUnderConcurrentWrites(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE edges (src BIGINT, dest BIGINT)`)
	db.MustExec(`INSERT INTO edges VALUES (0,1),(1,2),(2,0)`)

	const writers = 4
	const insertsPerWriter = 50

	var writerWG sync.WaitGroup
	var writersDone atomic.Bool
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < insertsPerWriter; i++ {
				v := 3 + w*insertsPerWriter + i
				q := fmt.Sprintf(`INSERT INTO edges VALUES (%d, 0), (0, %d)`, v, v)
				if _, err := db.Exec(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		// A fixed query budget keeps the single-CPU scheduler from letting
		// the reader starve the writers indefinitely.
		for q := 0; q < 15 && !writersDone.Load(); q++ {
			r, err := db.Query(`SELECT count(*), sum(rank) FROM PAGERANK ((SELECT src, dest FROM edges), 0.85, 0.0, 5)`)
			if err != nil {
				t.Error(err)
				return
			}
			vertices := r.Rows[0][0].I
			mass := r.Rows[0][1].F
			if vertices < 3 || vertices > 3+writers*insertsPerWriter {
				t.Errorf("vertex count %d outside committed range", vertices)
				return
			}
			if math.Abs(mass-1) > 1e-6 {
				t.Errorf("rank mass %v with %d vertices: snapshot not consistent", mass, vertices)
				return
			}
		}
	}()

	writerWG.Wait()
	writersDone.Store(true)
	readerWG.Wait()

	r, err := db.Query(`SELECT count(*) FROM edges`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows[0][0].I; got != int64(3+2*writers*insertsPerWriter) {
		t.Errorf("final edges = %d, want %d", got, 3+2*writers*insertsPerWriter)
	}
}

// TestSnapshotStableDuringLongQuery verifies an ITERATE query keeps seeing
// its start-of-query snapshot while a concurrent writer commits changes:
// the three per-iteration scans of vals inside one query must all see the
// same sum.
func TestSnapshotStableDuringLongQuery(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE vals (v DOUBLE)`)
	db.MustExec(`INSERT INTO vals VALUES (1), (2), (3)`)

	var wg sync.WaitGroup
	wg.Add(2)
	results := make(chan float64, 8)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			r, err := db.Query(`SELECT * FROM ITERATE (
				(SELECT 0.0 AS acc, 0 AS iter),
				(SELECT acc + t.s, iter + 1 FROM iterate, (SELECT sum(v) AS s FROM vals) t),
				(SELECT acc FROM iterate WHERE iter >= 3))`)
			if err != nil {
				t.Error(err)
				return
			}
			results <- r.Rows[0][0].F
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := db.Exec(`INSERT INTO vals VALUES (10)`); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(results)
	for acc := range results {
		// vals only ever contains integral values, so a fixed-snapshot sum
		// S is integral and acc = 3·S must be divisible by 3. A moving
		// snapshot (S, S', S'') would still sum to an integer — the strong
		// check is on the *same* query seeing sums that differ by inserts
		// of 10: acc mod 30 must be 3·(1+2+3) mod 30 = 18 or shifted by
		// whole inserts. Keep the robust invariant: acc = 3·integer.
		s := acc / 3
		if math.Abs(s-math.Round(s)) > 1e-9 {
			t.Errorf("acc %v is not 3× an integral snapshot sum", acc)
		}
	}
}

// TestConflictingUpdatesSerialized: two sessions updating the same row —
// first committer wins, the second gets a serialization error, and the
// final state reflects exactly one update.
func TestConflictingUpdatesSerialized(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE acct (id BIGINT, bal DOUBLE)`)
	db.MustExec(`INSERT INTO acct VALUES (1, 100)`)

	s1, s2 := db.NewSession(), db.NewSession()
	defer s1.Close()
	defer s2.Close()
	if _, err := s1.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec(`UPDATE acct SET bal = bal + 10 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec(`UPDATE acct SET bal = bal + 20 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec(`COMMIT`); err == nil {
		t.Fatal("second conflicting update should fail to commit")
	}
	r, err := db.Query(`SELECT bal FROM acct WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].F != 110 {
		t.Errorf("balance = %v, want 110 (one update only)", r.Rows[0][0].F)
	}
}
