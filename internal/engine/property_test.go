package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"lambdadb/internal/types"
)

// randomTable loads n rows of (k BIGINT, v DOUBLE) with small random values
// and returns the raw rows for reference computations.
func randomTable(t *testing.T, db *DB, name string, n int, seed int64) [][2]float64 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][2]float64, n)
	store := db.Store()
	tbl, err := store.CreateTable(name, types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "v", Type: types.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := store.Begin()
	b := types.NewBatch(tbl.Schema())
	for i := range rows {
		k := float64(r.Intn(10))
		v := math.Round(r.Float64()*100) / 4 // exact quarters: float-sum safe
		rows[i] = [2]float64{k, v}
		b.Cols[0].AppendInt(int64(k))
		b.Cols[1].AppendFloat(v)
	}
	if err := tx.Insert(tbl, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestAggregatesMatchReference cross-checks SQL aggregation against a
// straightforward Go computation over many random datasets.
func TestAggregatesMatchReference(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		db := Open()
		rows := randomTable(t, db, "t", 500+trial*100, int64(trial))

		// Reference group-by.
		type agg struct {
			count    int64
			sum      float64
			min, max float64
		}
		ref := map[int64]*agg{}
		for _, row := range rows {
			k := int64(row[0])
			a, ok := ref[k]
			if !ok {
				a = &agg{min: math.Inf(1), max: math.Inf(-1)}
				ref[k] = a
			}
			a.count++
			a.sum += row[1]
			a.min = math.Min(a.min, row[1])
			a.max = math.Max(a.max, row[1])
		}

		r, err := db.Query(`SELECT k, count(*), sum(v), min(v), max(v), avg(v) FROM t GROUP BY k ORDER BY k`)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != len(ref) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(r.Rows), len(ref))
		}
		for _, row := range r.Rows {
			k := row[0].I
			a := ref[k]
			if a == nil {
				t.Fatalf("trial %d: unexpected group %d", trial, k)
			}
			if row[1].I != a.count {
				t.Errorf("trial %d group %d: count %d want %d", trial, k, row[1].I, a.count)
			}
			if math.Abs(row[2].F-a.sum) > 1e-9 {
				t.Errorf("trial %d group %d: sum %v want %v", trial, k, row[2].F, a.sum)
			}
			if row[3].F != a.min || row[4].F != a.max {
				t.Errorf("trial %d group %d: min/max %v/%v want %v/%v",
					trial, k, row[3].F, row[4].F, a.min, a.max)
			}
			if math.Abs(row[5].F-a.sum/float64(a.count)) > 1e-9 {
				t.Errorf("trial %d group %d: avg %v", trial, k, row[5].F)
			}
		}
	}
}

// TestFilterMatchesReference cross-checks WHERE evaluation against Go.
func TestFilterMatchesReference(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		db := Open()
		rows := randomTable(t, db, "t", 400, int64(100+trial))
		lo := float64(trial * 3)
		hi := lo + 10
		want := 0
		for _, row := range rows {
			if row[1] > lo && row[1] <= hi || int64(row[0])%2 == 0 {
				want++
			}
		}
		q := fmt.Sprintf(`SELECT count(*) FROM t WHERE (v > %g AND v <= %g) OR k %% 2 = 0`, lo, hi)
		r, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := int(r.Rows[0][0].I); got != want {
			t.Errorf("trial %d: filter count %d, want %d", trial, got, want)
		}
	}
}

// TestJoinMatchesReference cross-checks an equi-join against a nested loop
// in Go.
func TestJoinMatchesReference(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		db := Open()
		a := randomTable(t, db, "a", 200, int64(200+trial))
		b := randomTable(t, db, "b", 150, int64(300+trial))
		want := 0
		for _, ra := range a {
			for _, rb := range b {
				if int64(ra[0]) == int64(rb[0]) {
					want++
				}
			}
		}
		r, err := db.Query(`SELECT count(*) FROM a JOIN b ON a.k = b.k`)
		if err != nil {
			t.Fatal(err)
		}
		if got := int(r.Rows[0][0].I); got != want {
			t.Errorf("trial %d: join count %d, want %d", trial, got, want)
		}
	}
}

// TestOrderByIsSorted checks ordering over random data, including ties
// (stability is not required, only correct ordering of the key).
func TestOrderByIsSorted(t *testing.T) {
	db := Open()
	rows := randomTable(t, db, "t", 1000, 42)
	r, err := db.Query(`SELECT v FROM t ORDER BY v DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(rows) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i][0].F > r.Rows[i-1][0].F {
			t.Fatalf("row %d out of order: %v after %v", i, r.Rows[i][0].F, r.Rows[i-1][0].F)
		}
	}
	// Same multiset as input.
	want := make([]float64, len(rows))
	for i, row := range rows {
		want[i] = row[1]
	}
	got := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		got[i] = row[0].F
	}
	sort.Float64s(want)
	sort.Float64s(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("value multiset differs at %d", i)
		}
	}
}

// TestDistinctMatchesReference checks DISTINCT against a Go set.
func TestDistinctMatchesReference(t *testing.T) {
	db := Open()
	rows := randomTable(t, db, "t", 800, 7)
	set := map[int64]bool{}
	for _, row := range rows {
		set[int64(row[0])] = true
	}
	r, err := db.Query(`SELECT DISTINCT k FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(set) {
		t.Fatalf("distinct = %d, want %d", len(r.Rows), len(set))
	}
	seen := map[int64]bool{}
	for _, row := range r.Rows {
		if seen[row[0].I] {
			t.Fatalf("duplicate %d in DISTINCT output", row[0].I)
		}
		seen[row[0].I] = true
		if !set[row[0].I] {
			t.Fatalf("phantom value %d", row[0].I)
		}
	}
}

// TestUnionAllCounts checks UNION ALL concatenation semantics.
func TestUnionAllCounts(t *testing.T) {
	db := Open()
	a := randomTable(t, db, "a", 300, 1)
	b := randomTable(t, db, "b", 200, 2)
	r, err := db.Query(`SELECT count(*) FROM (SELECT k FROM a UNION ALL SELECT k FROM b) u`)
	if err != nil {
		t.Fatal(err)
	}
	if int(r.Rows[0][0].I) != len(a)+len(b) {
		t.Errorf("union all count = %v", r.Rows[0][0])
	}
}

// TestIterateEquivalentToGoLoop: for a deterministic numeric recurrence,
// ITERATE must agree with the direct computation, for random parameters.
func TestIterateEquivalentToGoLoop(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		start := float64(r.Intn(10) + 1)
		factor := 1 + float64(r.Intn(5)+1)/10 // 1.1 .. 1.5
		iters := r.Intn(10) + 1
		want := start
		for i := 0; i < iters; i++ {
			want = want*factor + 1
		}
		db := Open()
		q := fmt.Sprintf(`SELECT x FROM ITERATE (
			(SELECT %.1f AS x, 0 AS iter),
			(SELECT x * %g + 1, iter + 1 FROM iterate),
			(SELECT x FROM iterate WHERE iter >= %d))`, start, factor, iters)
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, q)
		}
		if got := res.Rows[0][0].AsFloat(); math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("trial %d: iterate %v, want %v", trial, got, want)
		}
	}
}

// TestResultStringAlignment sanity-checks the text table renderer.
func TestResultStringAlignment(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE w (a VARCHAR, b BIGINT)`)
	db.MustExec(`INSERT INTO w VALUES ('longvaluehere', 1), ('x', 22222)`)
	r, _ := db.Query(`SELECT a, b FROM w ORDER BY b`)
	lines := strings.Split(strings.TrimSpace(r.String()), "\n")
	if len(lines) != 5 { // header, separator, 2 rows, count
		t.Fatalf("lines = %q", lines)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", r)
	}
}
