package engine

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestOpenDirSQLCycle drives the durable engine entirely through SQL:
// DDL, DML, an explicit transaction, CHECKPOINT, clean close, reopen.
func TestOpenDirSQLCycle(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE kv (k BIGINT, v TEXT)")
	db.MustExec("INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')")
	db.MustExec("UPDATE kv SET v = 'TWO' WHERE k = 2")
	db.MustExec("BEGIN; DELETE FROM kv WHERE k = 1; INSERT INTO kv VALUES (4, 'four'); COMMIT")

	res := db.MustExec("CHECKPOINT")
	if len(res.Rows) != 1 || len(res.Columns) != 2 || res.Columns[0] != "clock" {
		t.Fatalf("CHECKPOINT result = %+v, want one (clock, segments_removed) row", res)
	}
	db.MustExec("INSERT INTO kv VALUES (5, 'five')")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	summary, durable := db2.RecoverySummary()
	if !durable {
		t.Fatal("reopened DB does not report as durable")
	}
	if !summary.SnapshotLoaded {
		t.Errorf("summary = %+v, want a loaded snapshot", summary)
	}
	res = db2.MustExec("SELECT k, v FROM kv ORDER BY k")
	var got []string
	for _, row := range res.Rows {
		got = append(got, row[0].String()+"="+row[1].String())
	}
	want := "2=TWO 3=three 4=four 5=five"
	if s := strings.Join(got, " "); s != want {
		t.Errorf("recovered rows %q, want %q", s, want)
	}
}

func TestCheckpointRequiresDataDir(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CHECKPOINT"); err == nil ||
		!strings.Contains(err.Error(), "data directory") {
		t.Fatalf("CHECKPOINT on an in-memory DB = %v, want a data-directory error", err)
	}
	if _, durable := db.RecoverySummary(); durable {
		t.Error("in-memory DB reports as durable")
	}
	if err := db.Close(); err != nil { // no-op, must not fail
		t.Errorf("Close on in-memory DB: %v", err)
	}
}

// TestDurabilityMetrics checks that the WAL counters surface through
// system.metrics, and that group commit keeps fsyncs at or below appends.
func TestDurabilityMetrics(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustExec("CREATE TABLE t (x BIGINT)")
	for i := 0; i < 5; i++ {
		db.MustExec("INSERT INTO t VALUES (1)")
	}
	db.MustExec("CHECKPOINT")

	res := db.MustExec("SELECT name, value FROM system.metrics")
	vals := map[string]string{}
	for _, row := range res.Rows {
		vals[row[0].String()] = row[1].String()
	}
	for _, name := range []string{"wal_appends", "wal_fsyncs", "wal_bytes", "checkpoints"} {
		if v, ok := vals[name]; !ok || v == "0" {
			t.Errorf("system.metrics %s = %q, want a non-zero value (have %v)", name, v, vals)
		}
	}

	appends := db.Metrics().WalAppends.Load()
	fsyncs := db.Metrics().WalFsyncs.Load()
	if appends != 6 { // 1 DDL + 5 inserts
		t.Errorf("wal_appends = %d, want 6", appends)
	}
	if fsyncs > appends {
		t.Errorf("wal_fsyncs = %d > wal_appends = %d", fsyncs, appends)
	}
	if db.Metrics().Checkpoints.Load() != 1 {
		t.Errorf("checkpoints = %d, want 1", db.Metrics().Checkpoints.Load())
	}
}

// TestBackgroundCheckpointer verifies WithCheckpointInterval checkpoints on
// its own and stops cleanly on Close.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, WithCheckpointInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (x BIGINT)")
	db.MustExec("INSERT INTO t VALUES (1)")
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().Checkpoints.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.MustExec("SELECT COUNT(*) AS n FROM t").Rows[0][0].String(); got != "1" {
		t.Errorf("recovered COUNT(*) = %s, want 1", got)
	}
}

// TestCopyIsDurable checks that COPY's bulk-loaded rows go through the WAL
// like any other commit.
func TestCopyIsDurable(t *testing.T) {
	dir := t.TempDir()
	csv := dir + "/rows.csv"
	if err := os.WriteFile(csv, []byte("x,y\n1,a\n2,b\n3,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDir(dir + "/data")
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (x BIGINT, y TEXT)")
	db.MustExec("COPY t FROM '" + csv + "' WITH HEADER")

	// Crash-style reopen: no Close. COPY commits through the store, so its
	// rows were fsynced before COPY returned.
	db2, err := OpenDir(dir + "/data")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.MustExec("SELECT COUNT(*) AS n FROM t").Rows[0][0].String(); got != "3" {
		t.Errorf("recovered COUNT(*) = %s, want 3", got)
	}
}
