package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lambdadb/internal/expr"
	"lambdadb/internal/plan"
	"lambdadb/internal/plancache"
	"lambdadb/internal/sql"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
)

// preparedStmt is one PREPAREd statement held by a session. The template AST
// is immutable after PREPARE (EXECUTE works on copies), so the same prepared
// statement can be executed any number of times.
type preparedStmt struct {
	name     string
	stmt     sql.Statement // template AST; $N params carry declared types
	text     string        // inner statement source text (for re-PREPARE, display)
	key      string        // normalized plan-cache key; "" = uncacheable text
	nParams  int
	isSelect bool
}

// isSelectPrefix reports whether a normalized statement key can only be a
// SELECT (possibly WITH-prefixed). False negatives just skip the cache;
// false positives are harmless because a cache hit requires that the exact
// key was previously cached by execSelect.
func isSelectPrefix(key string) bool {
	return len(key) >= 6 && strings.EqualFold(key[:6], "SELECT") ||
		len(key) >= 4 && strings.EqualFold(key[:4], "WITH")
}

// tryCachedSelect is the plan-cache fast path for ad-hoc statement text: when
// text normalizes to a single SELECT whose key holds a valid cached template,
// the statement executes with zero lex/parse/plan work (handled = true). On a
// miss the session is armed (cacheKey + pre-build version stamps) so the
// ordinary path inserts the plan it builds, and handled = false.
//
// It must be called at the top of every statement entry point: it also
// resets the arming fields, so a key from a previous statement that errored
// before reaching execSelect can never mis-file a later plan.
func (s *Session) tryCachedSelect(ctx context.Context, text string) (*Result, bool, error) {
	s.cacheKey, s.cacheDDLVer, s.cacheStatsVer = "", 0, 0
	key, ok := sql.NormalizeStatement(text)
	if !ok || !isSelectPrefix(key) {
		return nil, false, nil
	}
	db := s.db
	ddlVer := db.store.DDLVersion()
	statsVer := db.stats.Version()
	entry, outcome := db.planCache.Get(key, ddlVer, statsVer)
	switch outcome {
	case plancache.Hit:
		if entry.NParams > 0 {
			// A PREPAREd template: raw text containing $N placeholders cannot
			// execute without bound arguments. Let the ordinary path reject it.
			return nil, false, nil
		}
		db.metrics.PlanCacheHits.Add(1)
	case plancache.Invalidated:
		db.metrics.PlanCacheInvalidations.Add(1)
		fallthrough
	case plancache.Miss:
		db.metrics.PlanCacheMisses.Add(1)
		s.cacheKey, s.cacheDDLVer, s.cacheStatsVer = key, ddlVer, statsVer
		return nil, false, nil
	}
	if s.isClosed() {
		return nil, true, errSessionClosed
	}
	s.parseNs = 0
	res, err := s.execLoggedKind(ctx, strings.TrimSpace(text), telemetry.KindSelect, func(ctx context.Context) (*Result, error) {
		bound, err := plan.Rebind(entry.Plan, s.snapshot(), nil)
		if err != nil {
			return nil, err
		}
		return s.runSelectPlan(ctx, bound)
	})
	return res, true, err
}

// planCacheable reports whether a built plan may live in the shared cache.
// Plans scanning a system.* virtual table embed a batch materialized at
// build time, so caching them would serve stale point-in-time rows forever.
func planCacheable(n plan.Node) bool {
	if sc, ok := n.(*plan.Scan); ok {
		if _, mem := sc.Rel.(*memRelation); mem {
			return false
		}
	}
	for _, c := range n.Children() {
		if !planCacheable(c) {
			return false
		}
	}
	return true
}

// execPrepare handles PREPARE name [(TYPE, ...)] AS <stmt>.
func (s *Session) execPrepare(n *sql.Prepare) (*Result, error) {
	if _, exists := s.prepared[n.Name]; exists {
		return nil, fmt.Errorf("prepared statement %q already exists", n.Name)
	}
	nParams, err := sql.NumParams(n.Stmt)
	if err != nil {
		return nil, err
	}
	if len(n.Types) > nParams {
		return nil, fmt.Errorf("PREPARE %s declares %d parameter type(s) but the statement only uses %d", n.Name, len(n.Types), nParams)
	}
	// Stamp the declared types onto the placeholder nodes; undeclared
	// parameters stay Unknown and rely on inference during resolution.
	if len(n.Types) > 0 {
		sql.WalkExprs(n.Stmt, func(root expr.Expr) {
			expr.Walk(root, func(e expr.Expr) bool {
				if p, ok := e.(*expr.Param); ok && p.Idx >= 1 && p.Idx <= len(n.Types) {
					p.Typ = n.Types[p.Idx-1]
				}
				return true
			})
		})
	}
	ps := &preparedStmt{name: n.Name, stmt: n.Stmt, text: n.Text, nParams: nParams}
	if key, ok := sql.NormalizeStatement(n.Text); ok {
		ps.key = key
	}
	if _, ok := n.Stmt.(*sql.Select); ok {
		ps.isSelect = true
		// Build eagerly: names and parameter types are validated at PREPARE
		// time (PostgreSQL-style), and the plan template is already cached
		// when the first EXECUTE arrives.
		if _, err := s.cachedPlan(ps); err != nil {
			return nil, err
		}
	}
	if s.prepared == nil {
		s.prepared = map[string]*preparedStmt{}
	}
	s.prepared[n.Name] = ps
	return &Result{}, nil
}

// cachedPlan returns the plan template for a prepared SELECT: from the
// shared cache when its stamped versions are current, otherwise freshly
// built (and cached for the next lookup). The returned template must be
// executed via plan.Rebind, never directly.
func (s *Session) cachedPlan(ps *preparedStmt) (plan.Node, error) {
	db := s.db
	ddlVer := db.store.DDLVersion()
	statsVer := db.stats.Version()
	if ps.key != "" {
		entry, outcome := db.planCache.Get(ps.key, ddlVer, statsVer)
		switch outcome {
		case plancache.Hit:
			if entry.NParams == ps.nParams {
				db.metrics.PlanCacheHits.Add(1)
				return entry.Plan, nil
			}
		case plancache.Invalidated:
			db.metrics.PlanCacheInvalidations.Add(1)
			db.metrics.PlanCacheMisses.Add(1)
		case plancache.Miss:
			db.metrics.PlanCacheMisses.Add(1)
		}
	}
	planStart := time.Now()
	node, err := s.newBuilder().BuildSelect(ps.stmt.(*sql.Select))
	s.planNs += time.Since(planStart).Nanoseconds()
	if err != nil {
		return nil, err
	}
	if ps.key != "" && planCacheable(node) {
		db.planCache.Put(&plancache.Entry{
			Key: ps.key, Plan: node, NParams: ps.nParams,
			DDLVer: ddlVer, StatsVer: statsVer,
		})
	}
	return node, nil
}

// execExecute handles EXECUTE name [(args, ...)]: arguments are constant
// expressions evaluated here and bound to $1..$N.
func (s *Session) execExecute(ctx context.Context, n *sql.Execute) (*Result, error) {
	ps, ok := s.prepared[n.Name]
	if !ok {
		return nil, fmt.Errorf("prepared statement %q does not exist", n.Name)
	}
	if len(n.Args) != ps.nParams {
		return nil, fmt.Errorf("prepared statement %q expects %d argument(s), got %d", n.Name, ps.nParams, len(n.Args))
	}
	args := make([]types.Value, len(n.Args))
	for i, ae := range n.Args {
		re, err := expr.Resolve(ae, expr.NewResolveCtx(nil, ""))
		if err != nil {
			return nil, fmt.Errorf("EXECUTE %s argument %d: %w", n.Name, i+1, err)
		}
		v, err := expr.EvalConst(re)
		if err != nil {
			return nil, fmt.Errorf("EXECUTE %s argument %d: %w", n.Name, i+1, err)
		}
		args[i] = v
	}
	return s.runPrepared(ctx, ps, args)
}

// runPrepared executes a prepared statement with bound argument values.
func (s *Session) runPrepared(ctx context.Context, ps *preparedStmt, args []types.Value) (*Result, error) {
	if ps.isSelect {
		node, err := s.cachedPlan(ps)
		if err != nil {
			return nil, err
		}
		bound, err := plan.Rebind(node, s.snapshot(), args)
		if err != nil {
			return nil, err
		}
		return s.runSelectPlan(ctx, bound)
	}
	// DML: substitute the arguments into a deep copy of the template, then
	// run it down the ordinary path (the template itself is never mutated).
	st := ps.stmt
	if len(args) > 0 {
		var substErr error
		st = sql.RewriteExprs(ps.stmt, func(e expr.Expr) expr.Expr {
			p, ok := e.(*expr.Param)
			if !ok {
				return e
			}
			if p.Idx < 1 || p.Idx > len(args) {
				if substErr == nil {
					substErr = fmt.Errorf("no argument bound for parameter $%d", p.Idx)
				}
				return e
			}
			return &expr.Const{Val: args[p.Idx-1]}
		})
		if substErr != nil {
			return nil, substErr
		}
	}
	return s.execStatement(ctx, st)
}

// execDeallocate handles DEALLOCATE name | ALL.
func (s *Session) execDeallocate(n *sql.Deallocate) (*Result, error) {
	if n.All {
		s.prepared = nil
		return &Result{}, nil
	}
	if _, ok := s.prepared[n.Name]; !ok {
		return nil, fmt.Errorf("prepared statement %q does not exist", n.Name)
	}
	delete(s.prepared, n.Name)
	return &Result{}, nil
}

// Prepared returns the names of this session's prepared statements, in no
// particular order.
func (s *Session) Prepared() []string {
	out := make([]string, 0, len(s.prepared))
	for name := range s.prepared {
		out = append(out, name)
	}
	return out
}

// ExecutePrepared runs a previously PREPAREd statement with args bound to
// $1..$N, with full statement telemetry. It is the programmatic equivalent
// of EXECUTE: the network server's Bind frames route here so repeated
// executions skip SQL text entirely.
func (s *Session) ExecutePrepared(ctx context.Context, name string, args []types.Value) (*Result, error) {
	if s.isClosed() {
		return nil, errSessionClosed
	}
	ps, ok := s.prepared[name]
	if !ok {
		return nil, s.abortOnError(fmt.Errorf("prepared statement %q does not exist", name))
	}
	if len(args) != ps.nParams {
		return nil, s.abortOnError(fmt.Errorf("prepared statement %q expects %d argument(s), got %d", name, ps.nParams, len(args)))
	}
	kind := telemetry.KindDML
	if ps.isSelect {
		kind = telemetry.KindSelect
	}
	s.parseNs = 0
	res, err := s.execLoggedKind(ctx, "EXECUTE "+name, kind, func(ctx context.Context) (*Result, error) {
		return s.runPrepared(ctx, ps, args)
	})
	if err != nil {
		return nil, s.abortOnError(err)
	}
	return res, nil
}
