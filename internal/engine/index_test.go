package engine

import (
	"fmt"
	"strings"
	"testing"
)

// explainText runs EXPLAIN [ANALYZE] on q and returns the plan as one string.
func explainText(t *testing.T, db *DB, q string) string {
	t.Helper()
	r, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	var sb strings.Builder
	for _, row := range r.Rows {
		sb.WriteString(row[0].S)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// newIndexedDB loads a 2000-row table with an ordered index on k, a hash
// index on grp, and fresh statistics.
func newIndexedDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithWorkers(2))
	db.MustExec(`CREATE TABLE items (k BIGINT, grp BIGINT, v DOUBLE)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO items VALUES `)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %g)", i, i%10, float64(i)*0.5)
	}
	db.MustExec(sb.String())
	db.MustExec(`CREATE INDEX items_k ON items (k)`)
	db.MustExec(`CREATE INDEX items_grp ON items (grp) USING HASH`)
	db.MustExec(`ANALYZE items`)
	return db
}

func TestCreateDropIndexSQL(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE INDEX nums_n ON nums (n)`)
	if _, err := db.Exec(`CREATE INDEX nums_n ON nums (n)`); err == nil {
		t.Fatal("duplicate CREATE INDEX should fail")
	}
	db.MustExec(`CREATE INDEX IF NOT EXISTS nums_n ON nums (n)`)

	r, err := db.Query(`SELECT index_name, column_name, kind, keys, entries
		FROM system.indexes WHERE table_name = 'nums'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("system.indexes rows = %v", r.Rows)
	}
	row := r.Rows[0]
	if row[0].S != "nums_n" || row[1].S != "n" || row[2].S != "ORDERED" {
		t.Errorf("index row = %v", row)
	}
	if row[3].I != 5 || row[4].I != 5 {
		t.Errorf("keys/entries = %d/%d, want 5/5", row[3].I, row[4].I)
	}

	db.MustExec(`DROP INDEX nums_n`)
	if _, err := db.Exec(`DROP INDEX nums_n`); err == nil {
		t.Fatal("dropping a missing index should fail")
	}
	db.MustExec(`DROP INDEX IF EXISTS nums_n`)
	r = db.MustExec(`SELECT count(*) FROM system.indexes`)
	if r.Rows[0][0].I != 0 {
		t.Errorf("indexes after drop = %v", r.Rows)
	}
}

func TestCreateIndexUnknownKind(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`CREATE INDEX nums_n ON nums (n) USING BITMAP`); err == nil {
		t.Fatal("unknown USING kind should fail")
	}
	// BTREE is accepted as a synonym for ORDERED.
	db.MustExec(`CREATE INDEX nums_n ON nums (n) USING BTREE`)
	r := db.MustExec(`SELECT kind FROM system.indexes WHERE index_name = 'nums_n'`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "ORDERED" {
		t.Fatalf("BTREE synonym = %v", r.Rows)
	}
}

func TestAnalyzeStatement(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE empty_t (x BIGINT)`)

	r, err := db.Exec(`ANALYZE nums`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "nums" || r.Rows[0][1].I != 5 {
		t.Fatalf("ANALYZE nums = %v", r.Rows)
	}

	// ANALYZE with no table covers every stored table, including empty ones.
	r, err = db.Exec(`ANALYZE`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("ANALYZE all = %v", r.Rows)
	}

	stats := db.MustExec(`SELECT column_name, ndv, null_count
		FROM system.table_stats WHERE table_name = 'nums' ORDER BY column_name`)
	if len(stats.Rows) != 3 {
		t.Fatalf("table_stats rows = %v", stats.Rows)
	}
	// nums.n has five distinct non-null values.
	if stats.Rows[1][0].S != "n" || stats.Rows[1][1].I != 5 || stats.Rows[1][2].I != 0 {
		t.Errorf("stats for n = %v", stats.Rows[1])
	}

	if _, err := db.Exec(`ANALYZE no_such_table`); err == nil {
		t.Fatal("ANALYZE of a missing table should fail")
	}
}

func TestDropTableDropsStats(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`ANALYZE nums`)
	db.MustExec(`DROP TABLE nums`)
	r := db.MustExec(`SELECT count(*) FROM system.table_stats`)
	if r.Rows[0][0].I != 0 {
		t.Errorf("stats survived DROP TABLE: %v", r.Rows)
	}
}

// TestExplainIndexScanGolden pins the planner's access-path choices: a
// selective point probe uses the index, a low-selectivity predicate keeps
// the full scan.
func TestExplainIndexScanGolden(t *testing.T) {
	db := newIndexedDB(t)

	selective := explainText(t, db, `EXPLAIN SELECT v FROM items WHERE k = 123`)
	if !strings.Contains(selective, "IndexScan items using items_k (k = 123)") {
		t.Errorf("selective probe did not pick IndexScan:\n%s", selective)
	}
	if strings.Contains(selective, "Filter") {
		t.Errorf("fully absorbed predicate should leave no Filter:\n%s", selective)
	}

	ranged := explainText(t, db, `EXPLAIN SELECT v FROM items WHERE k >= 10 AND k < 20`)
	if !strings.Contains(ranged, "IndexScan items using items_k") {
		t.Errorf("range probe did not pick IndexScan:\n%s", ranged)
	}

	// grp has 10 distinct values: selectivity 0.1 clears the gate via the
	// hash index.
	point := explainText(t, db, `EXPLAIN SELECT v FROM items WHERE grp = 3`)
	if !strings.Contains(point, "IndexScan items using items_grp (grp = 3)") {
		t.Errorf("hash point probe did not pick IndexScan:\n%s", point)
	}

	// A predicate matching half the table must keep the sequential scan.
	wide := explainText(t, db, `EXPLAIN SELECT v FROM items WHERE k < 1000`)
	if strings.Contains(wide, "IndexScan") {
		t.Errorf("low-selectivity predicate picked IndexScan:\n%s", wide)
	}
	if !strings.Contains(wide, "Scan items") {
		t.Errorf("expected full scan:\n%s", wide)
	}
}

func TestExplainAnalyzeShowsEstimates(t *testing.T) {
	db := newIndexedDB(t)
	out := explainText(t, db, `EXPLAIN ANALYZE SELECT v FROM items WHERE k = 123`)
	if !strings.Contains(out, "IndexScan") {
		t.Fatalf("expected IndexScan:\n%s", out)
	}
	if !strings.Contains(out, "rows=1 est=1") {
		t.Errorf("expected est-vs-actual rows:\n%s", out)
	}

	// Index usage counters tick.
	r := db.MustExec(`SELECT value FROM system.metrics WHERE name = 'index_scans'`)
	if r.Rows[0][0].I < 1 {
		t.Errorf("index_scans = %d, want >= 1", r.Rows[0][0].I)
	}
}

// TestIndexedMatchesUnindexed is the differential check: the same workload
// against an indexed+analyzed database and a bare one must produce
// identical results. Run with -race; Workers=8 exercises the parallel
// pipeline around the serial index-scan leaf.
func TestIndexedMatchesUnindexed(t *testing.T) {
	load := func(indexed bool) *DB {
		db := Open(WithWorkers(8))
		db.MustExec(`CREATE TABLE items (k BIGINT, grp BIGINT, v DOUBLE)`)
		var sb strings.Builder
		sb.WriteString(`INSERT INTO items VALUES `)
		for i := 0; i < 3000; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g)", i, i%7, float64(i%113)*1.25)
		}
		db.MustExec(sb.String())
		db.MustExec(`CREATE TABLE dims (grp BIGINT, label VARCHAR)`)
		db.MustExec(`INSERT INTO dims VALUES
			(0,'zero'),(1,'one'),(2,'two'),(3,'three'),(4,'four'),(5,'five'),(6,'six')`)
		// Delete a slice so MVCC visibility filtering is exercised through
		// the index path too.
		db.MustExec(`DELETE FROM items WHERE k >= 100 AND k < 150`)
		if indexed {
			db.MustExec(`CREATE INDEX items_k ON items (k)`)
			db.MustExec(`CREATE INDEX items_grp ON items (grp) USING HASH`)
			db.MustExec(`ANALYZE`)
		}
		return db
	}
	plain, fast := load(false), load(true)

	queries := []string{
		`SELECT k, v FROM items WHERE k = 777`,
		`SELECT k FROM items WHERE k = 120`, // deleted row: empty via both paths
		`SELECT k, v FROM items WHERE k >= 95 AND k <= 160 ORDER BY k`,
		`SELECT count(*), sum(v) FROM items WHERE grp = 3`,
		`SELECT label, count(*) FROM items JOIN dims ON items.grp = dims.grp
			WHERE k >= 200 AND k < 260 GROUP BY label ORDER BY label`,
		`SELECT count(*) FROM items`,
	}
	for _, q := range queries {
		want, err := plain.Query(q)
		if err != nil {
			t.Fatalf("unindexed %q: %v", q, err)
		}
		got, err := fast.Query(q)
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%q: %d rows indexed vs %d unindexed", q, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if want.Rows[i][j].Compare(got.Rows[i][j]) != 0 {
					t.Fatalf("%q row %d col %d: indexed %v, unindexed %v",
						q, i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
	}
}

// TestIndexMaintainedThroughDML confirms probes see freshly inserted,
// updated, and deleted rows without re-ANALYZE (stats are advisory; the
// index itself is transactionally maintained).
func TestIndexMaintainedThroughDML(t *testing.T) {
	db := newIndexedDB(t)

	db.MustExec(`INSERT INTO items VALUES (5000, 1, 9.5)`)
	r := db.MustExec(`SELECT v FROM items WHERE k = 5000`)
	if len(r.Rows) != 1 || r.Rows[0][0].F != 9.5 {
		t.Fatalf("insert not visible through index: %v", r.Rows)
	}

	db.MustExec(`UPDATE items SET v = 10.5 WHERE k = 5000`)
	r = db.MustExec(`SELECT v FROM items WHERE k = 5000`)
	if len(r.Rows) != 1 || r.Rows[0][0].F != 10.5 {
		t.Fatalf("update not visible through index: %v", r.Rows)
	}

	db.MustExec(`DELETE FROM items WHERE k = 5000`)
	r = db.MustExec(`SELECT v FROM items WHERE k = 5000`)
	if len(r.Rows) != 0 {
		t.Fatalf("delete not visible through index: %v", r.Rows)
	}
}
