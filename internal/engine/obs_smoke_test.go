package engine

import (
	"os"
	"testing"

	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
)

// TestObsOverheadSmoke asserts the ARMED histogram path — what every
// statement pays now that latency histograms are always on — stays within
// 2% of a disabled-histogram baseline on the vectorized filter+agg
// workload. The per-statement cost is a handful of uncontended atomic adds,
// so the margin is wide; this smoke exists to catch a future change that
// moves histogram recording into a per-batch or per-row path. Enabled via
// make overhead (LAMBDADB_OVERHEAD_SMOKE=1) to keep ordinary runs
// timing-free.
func TestObsOverheadSmoke(t *testing.T) {
	if os.Getenv("LAMBDADB_OVERHEAD_SMOKE") == "" {
		t.Skip("set LAMBDADB_OVERHEAD_SMOKE=1 (make overhead) to run")
	}
	db := Open(WithWorkers(1))
	defer db.Close()
	db.MustExec(`CREATE TABLE obs_bench (k BIGINT, v DOUBLE)`)
	tbl, err := db.Store().Table("obs_bench")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Store().Begin()
	const rows = 1_000_000
	const chunk = 1 << 14
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		b := types.NewBatch(tbl.Schema())
		for i := lo; i < hi; i++ {
			b.Cols[0].AppendInt(int64(i))
			b.Cols[1].AppendFloat(float64(i))
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const query = `SELECT count(*), sum(v) FROM obs_bench WHERE v > 500000`
	run := func() float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(query); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}

	// Interleave the two sides and keep each side's minimum, so slow drift
	// (thermal throttling, page-cache state) hits both equally.
	measure := func(rounds int) (base, armed float64) {
		for i := 0; i < rounds; i++ {
			db.Metrics().SetHist(telemetry.NewDisabledHistograms())
			if v := run(); i == 0 || v < base {
				base = v
			}
			db.Metrics().SetHist(&telemetry.Histograms{})
			if v := run(); i == 0 || v < armed {
				armed = v
			}
		}
		return base, armed
	}
	base, armed := measure(3)
	overhead := (armed - base) / base
	if overhead > 0.02 {
		// One retry with more rounds before declaring a regression.
		base, armed = measure(5)
		overhead = (armed - base) / base
	}
	t.Logf("disabled %.0f ns/op, armed %.0f ns/op, overhead %.2f%%", base, armed, overhead*100)
	if overhead > 0.02 {
		t.Errorf("armed histogram overhead %.2f%% exceeds 2%%", overhead*100)
	}
}
