package engine

import (
	"math"
	"strings"
	"testing"
)

// newTestDB returns a DB preloaded with small tables used across tests.
func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithWorkers(2))
	db.MustExec(`CREATE TABLE nums (n BIGINT, f DOUBLE, s VARCHAR)`)
	db.MustExec(`INSERT INTO nums VALUES
		(1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c'), (4, 4.5, 'a'), (5, 5.5, 'b')`)
	return db
}

func queryInts(t *testing.T, db *DB, q string) []int64 {
	t.Helper()
	r, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	out := make([]int64, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, row[0].AsInt())
	}
	return out
}

func queryOneFloat(t *testing.T, db *DB, q string) float64 {
	t.Helper()
	r, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("Query(%q): got %d rows, want 1", q, len(r.Rows))
	}
	return r.Rows[0][0].AsFloat()
}

func TestSelectBasics(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT n, f FROM nums WHERE n > 2 ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 || r.Rows[0][0].I != 3 || r.Rows[2][0].I != 5 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Columns[0] != "n" || r.Columns[1] != "f" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestSelectExpressionsAndAliases(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT n * 2 AS dbl, f + 0.5 FROM nums WHERE s = 'a' ORDER BY dbl`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].I != 2 || r.Rows[1][0].I != 8 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Columns[0] != "dbl" {
		t.Errorf("columns = %v", r.Columns)
	}
	if r.Rows[0][1].F != 2.0 {
		t.Errorf("f+0.5 = %v", r.Rows[0][1])
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := Open()
	r, err := db.Query(`SELECT 6 * 7 AS answer, 'hi' AS greeting`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].I != 42 || r.Rows[0][1].S != "hi" {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT count(*), sum(n), avg(f), min(n), max(f) FROM nums`)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row[0].I != 5 || row[1].I != 15 {
		t.Errorf("count/sum = %v", row)
	}
	if math.Abs(row[2].F-3.5) > 1e-12 {
		t.Errorf("avg = %v", row[2])
	}
	if row[3].I != 1 || row[4].F != 5.5 {
		t.Errorf("min/max = %v", row)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT s, count(*) AS c, sum(n) AS total
		FROM nums GROUP BY s HAVING count(*) > 1 ORDER BY s`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].S != "a" || r.Rows[0][1].I != 2 || r.Rows[0][2].I != 5 {
		t.Errorf("group a = %v", r.Rows[0])
	}
	if r.Rows[1][0].S != "b" || r.Rows[1][2].I != 7 {
		t.Errorf("group b = %v", r.Rows[1])
	}
}

func TestGroupByNonGroupedColumnRejected(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Query(`SELECT s, n FROM nums GROUP BY s`)
	if err == nil || !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("expected GROUP BY error, got %v", err)
	}
}

func TestGlobalAggregateOnEmptyTable(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE empty1 (x BIGINT)`)
	r, err := db.Query(`SELECT count(*), sum(x), avg(x) FROM empty1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].I != 0 || !r.Rows[0][1].Null || !r.Rows[0][2].Null {
		t.Errorf("empty aggregate = %v", r.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `SELECT DISTINCT s FROM nums ORDER BY s`)
	_ = got
	r, _ := db.Query(`SELECT DISTINCT s FROM nums ORDER BY s`)
	if len(r.Rows) != 3 {
		t.Fatalf("distinct rows = %v", r.Rows)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `SELECT n FROM nums ORDER BY n DESC LIMIT 2 OFFSET 1`)
	if len(got) != 2 || got[0] != 4 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
	// Positional ORDER BY.
	got = queryInts(t, db, `SELECT n FROM nums ORDER BY 1 DESC LIMIT 1`)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("positional order by got %v", got)
	}
}

func TestJoinInner(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE labels (n BIGINT, tag VARCHAR)`)
	db.MustExec(`INSERT INTO labels VALUES (1, 'one'), (3, 'three'), (9, 'nine')`)
	r, err := db.Query(`SELECT nums.n, labels.tag FROM nums JOIN labels ON nums.n = labels.n ORDER BY nums.n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].I != 1 || r.Rows[0][1].S != "one" {
		t.Errorf("row 0 = %v", r.Rows[0])
	}
	if r.Rows[1][0].I != 3 || r.Rows[1][1].S != "three" {
		t.Errorf("row 1 = %v", r.Rows[1])
	}
}

func TestJoinLeft(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE labels2 (n BIGINT, tag VARCHAR)`)
	db.MustExec(`INSERT INTO labels2 VALUES (1, 'one')`)
	r, err := db.Query(`SELECT nums.n, labels2.tag FROM nums LEFT JOIN labels2 ON nums.n = labels2.n ORDER BY nums.n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].S != "one" {
		t.Errorf("row 0 = %v", r.Rows[0])
	}
	for _, row := range r.Rows[1:] {
		if !row[1].Null {
			t.Errorf("expected NULL tag, got %v", row)
		}
	}
}

func TestJoinCrossAndNonEqui(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE small1 (a BIGINT)`)
	db.MustExec(`INSERT INTO small1 VALUES (1), (2)`)
	r, err := db.Query(`SELECT count(*) FROM nums, small1`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 10 {
		t.Errorf("cross join count = %v", r.Rows[0][0])
	}
	// Non-equi join condition → nested loop.
	r, err = db.Query(`SELECT count(*) FROM nums JOIN small1 ON nums.n < small1.a`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 { // only (1 < 2)
		t.Errorf("non-equi count = %v", r.Rows[0][0])
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT a.n, b.n FROM nums a JOIN nums b ON a.n = b.n WHERE a.n <= 2 ORDER BY a.n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].I != 1 || r.Rows[1][1].I != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `SELECT big.n FROM (SELECT n FROM nums WHERE n > 3) AS big ORDER BY big.n`)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestUnion(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `SELECT n FROM nums WHERE n <= 2 UNION ALL SELECT n FROM nums WHERE n >= 4 ORDER BY n`)
	if len(got) != 4 {
		t.Fatalf("union all got %v", got)
	}
	got = queryInts(t, db, `SELECT 1 UNION SELECT 1 UNION SELECT 2 ORDER BY 1`)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("union distinct got %v", got)
	}
}

func TestCTE(t *testing.T) {
	db := newTestDB(t)
	got := queryInts(t, db, `WITH big AS (SELECT n FROM nums WHERE n > 3)
		SELECT n FROM big ORDER BY n`)
	if len(got) != 2 || got[0] != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestRecursiveCTE(t *testing.T) {
	db := Open()
	got := queryInts(t, db, `WITH RECURSIVE r (n) AS (
		SELECT 1
		UNION ALL
		SELECT n + 1 FROM r WHERE n < 10
	) SELECT n FROM r ORDER BY n`)
	if len(got) != 10 || got[0] != 1 || got[9] != 10 {
		t.Fatalf("got %v", got)
	}
}

func TestRecursiveCTEUnionDistinctFixpoint(t *testing.T) {
	// Transitive closure over a cyclic graph requires UNION (distinct)
	// to terminate.
	db := Open()
	db.MustExec(`CREATE TABLE edge (src BIGINT, dst BIGINT)`)
	db.MustExec(`INSERT INTO edge VALUES (1,2), (2,3), (3,1)`)
	got := queryInts(t, db, `WITH RECURSIVE reach (v) AS (
		SELECT 1
		UNION
		SELECT edge.dst FROM reach JOIN edge ON reach.v = edge.src
	) SELECT v FROM reach ORDER BY v`)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestIterateListing1(t *testing.T) {
	// The paper's Listing 1: smallest three-digit multiple of seven.
	db := Open()
	got := queryInts(t, db, `SELECT * FROM ITERATE (
		(SELECT 7 "x"),
		(SELECT x + 7 FROM iterate),
		(SELECT x FROM iterate WHERE x >= 100))`)
	if len(got) != 1 || got[0] != 105 {
		t.Fatalf("got %v, want [105]", got)
	}
}

func TestIterateKeepsConstantSize(t *testing.T) {
	// Non-appending semantics: result is only the last iteration.
	db := newTestDB(t)
	r, err := db.Query(`SELECT * FROM ITERATE (
		(SELECT n, f FROM nums),
		(SELECT n, f * 2 FROM iterate),
		(SELECT n FROM iterate WHERE f > 100))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("iterate result has %d rows, want 5", len(r.Rows))
	}
}

func TestIterateInfiniteLoopAborted(t *testing.T) {
	db := Open()
	_, err := db.Query(`SELECT * FROM ITERATE (
		(SELECT 1 "x"),
		(SELECT x FROM iterate),
		(SELECT x FROM iterate WHERE x > 2))`)
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Errorf("expected infinite-loop abort, got %v", err)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Exec(`UPDATE nums SET f = f + 10 WHERE n <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Fatalf("affected = %d", r.Affected)
	}
	if got := queryOneFloat(t, db, `SELECT sum(f) FROM nums`); math.Abs(got-37.5) > 1e-9 {
		t.Errorf("sum after update = %v", got)
	}
	r, err = db.Exec(`DELETE FROM nums WHERE s = 'b'`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Fatalf("delete affected = %d", r.Affected)
	}
	got := queryInts(t, db, `SELECT count(*) FROM nums`)
	if got[0] != 3 {
		t.Errorf("count after delete = %v", got)
	}
}

func TestTransactionCommitRollback(t *testing.T) {
	db := newTestDB(t)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO nums VALUES (100, 1.0, 'z')`); err != nil {
		t.Fatal(err)
	}
	// Another session must not see the uncommitted row.
	if got := queryInts(t, db, `SELECT count(*) FROM nums`); got[0] != 5 {
		t.Errorf("uncommitted row visible: count = %v", got)
	}
	if _, err := s.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	if got := queryInts(t, db, `SELECT count(*) FROM nums`); got[0] != 6 {
		t.Errorf("after commit: count = %v", got)
	}

	if _, err := s.Exec(`BEGIN; DELETE FROM nums; ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	if got := queryInts(t, db, `SELECT count(*) FROM nums`); got[0] != 6 {
		t.Errorf("after rollback: count = %v", got)
	}
}

func TestInsertSelect(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE copy1 (n BIGINT, f DOUBLE, s VARCHAR)`)
	r, err := db.Exec(`INSERT INTO copy1 SELECT n, f, s FROM nums WHERE n > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 2 {
		t.Fatalf("affected = %d", r.Affected)
	}
	if got := queryInts(t, db, `SELECT count(*) FROM copy1`); got[0] != 2 {
		t.Errorf("copied rows = %v", got)
	}
}

func TestInsertColumnSubsetAndCoercion(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`INSERT INTO nums (n) VALUES (99)`)
	r, err := db.Query(`SELECT f, s FROM nums WHERE n = 99`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rows[0][0].Null || !r.Rows[0][1].Null {
		t.Errorf("unset columns should be NULL, got %v", r.Rows[0])
	}
	// Int literal into DOUBLE column.
	db.MustExec(`INSERT INTO nums VALUES (50, 2, 'w')`)
	if got := queryOneFloat(t, db, `SELECT f FROM nums WHERE n = 50`); got != 2.0 {
		t.Errorf("coerced f = %v", got)
	}
}

func TestErrorCases(t *testing.T) {
	db := newTestDB(t)
	for _, q := range []string{
		`SELECT nope FROM nums`,
		`SELECT * FROM missing`,
		`INSERT INTO nums VALUES (1)`,
		`INSERT INTO missing VALUES (1)`,
		`UPDATE nums SET missing = 1`,
		`DELETE FROM missing`,
		`SELECT n FROM nums ORDER BY missing`,
		`SELECT sum(s) FROM nums`,
		`SELECT * FROM nums WHERE n`,
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestCreateDropIfExists(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t1 (a BIGINT)`)
	if _, err := db.Exec(`CREATE TABLE t1 (a BIGINT)`); err == nil {
		t.Error("duplicate CREATE should fail")
	}
	db.MustExec(`CREATE TABLE IF NOT EXISTS t1 (a BIGINT)`)
	db.MustExec(`DROP TABLE t1`)
	if _, err := db.Exec(`DROP TABLE t1`); err == nil {
		t.Error("DROP of missing table should fail")
	}
	db.MustExec(`DROP TABLE IF EXISTS t1`)
}

func TestResultString(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT n, s FROM nums WHERE n = 1`)
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "n") || !strings.Contains(s, "(1 rows)") {
		t.Errorf("String() = %q", s)
	}
}

func TestExplain(t *testing.T) {
	db := newTestDB(t)
	s := db.NewSession()
	defer s.Close()
	out, err := s.Explain(`SELECT n FROM nums WHERE n > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scan nums") || !strings.Contains(out, "Filter") {
		t.Errorf("explain = %q", out)
	}
}

func TestCaseInQuery(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT n, CASE WHEN n % 2 = 0 THEN 'even' ELSE 'odd' END AS parity
		FROM nums ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][1].S != "odd" || r.Rows[1][1].S != "even" {
		t.Errorf("parity = %v %v", r.Rows[0], r.Rows[1])
	}
}

func TestPredicatePushdownThroughJoinGivesSameResult(t *testing.T) {
	db := newTestDB(t)
	db.MustExec(`CREATE TABLE other (n BIGINT, v DOUBLE)`)
	db.MustExec(`INSERT INTO other VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50)`)
	r, err := db.Query(`SELECT nums.n, other.v FROM nums JOIN other ON nums.n = other.n
		WHERE nums.n > 2 AND other.v < 50 ORDER BY nums.n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].I != 3 || r.Rows[1][0].I != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
}
