package engine

import (
	"context"
	"fmt"
	"time"
)

// ClusterControl handles the cluster role-change statements. The engine
// only defines the interface — internal/cluster implements it against the
// replication layer — so PROMOTE and FOLLOW work through any SQL surface
// (wire protocol, shell) without the engine importing replication.
type ClusterControl interface {
	// Promote detaches the node from its primary and makes it writable
	// under a freshly bumped, durably-logged cluster epoch. It returns the
	// new epoch.
	Promote(ctx context.Context) (uint64, error)
	// Follow fences the node read-only and starts (or re-points)
	// replication from the primary at addr.
	Follow(ctx context.Context, addr string) error
}

// SetClusterControl installs the PROMOTE/FOLLOW handler. It must be set
// before the DB serves queries (the field is unguarded).
func (db *DB) SetClusterControl(cc ClusterControl) { db.clusterCtl = cc }

// defaultClockWait bounds WAIT FOR CLOCK when neither the statement
// context nor a statement timeout imposes a tighter deadline, so a wait
// for a clock the node will never reach cannot park a session forever.
const defaultClockWait = 30 * time.Second

// WaitForClock blocks until the locally applied commit clock reaches
// clock, the context is done, or defaultClockWait elapses. Routers prefix
// replica-bound reads with WAIT FOR CLOCK to provide read-your-writes: the
// read only proceeds once the replica has applied the writer's commit.
func (db *DB) WaitForClock(ctx context.Context, clock uint64) error {
	if db.store.Snapshot() >= clock {
		return nil
	}
	deadline := time.NewTimer(defaultClockWait)
	defer deadline.Stop()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			return fmt.Errorf("WAIT FOR CLOCK %d: still at clock %d after %v", clock, db.store.Snapshot(), defaultClockWait)
		case <-tick.C:
			if db.store.Snapshot() >= clock {
				return nil
			}
		}
	}
}
