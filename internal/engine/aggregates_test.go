package engine

import (
	"math"
	"testing"

	"lambdadb/internal/types"
)

func TestStddevVariance(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE v (g BIGINT, x DOUBLE)`)
	db.MustExec(`INSERT INTO v VALUES (1, 2), (1, 4), (1, 4), (1, 4), (1, 5), (1, 5), (1, 7), (1, 9),
		(2, 10), (2, 10)`)
	r, err := db.Query(`SELECT g, stddev(x), variance(x) FROM v GROUP BY g ORDER BY g`)
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 is the textbook population-stddev example: σ = 2, σ² = 4.
	if math.Abs(r.Rows[0][1].F-2) > 1e-12 || math.Abs(r.Rows[0][2].F-4) > 1e-12 {
		t.Errorf("group 1: stddev=%v variance=%v, want 2/4", r.Rows[0][1].F, r.Rows[0][2].F)
	}
	// Constant group: zero spread.
	if r.Rows[1][1].F != 0 || r.Rows[1][2].F != 0 {
		t.Errorf("group 2: stddev=%v variance=%v, want 0/0", r.Rows[1][1].F, r.Rows[1][2].F)
	}
}

func TestStddevMatchesManualFormula(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT stddev(f), sqrt(avg(f * f) - avg(f) * avg(f)) FROM nums`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Rows[0][0].F-r.Rows[0][1].F) > 1e-9 {
		t.Errorf("stddev %v != manual %v", r.Rows[0][0].F, r.Rows[0][1].F)
	}
}

func TestStddevOverIntColumn(t *testing.T) {
	db := newTestDB(t)
	r, err := db.Query(`SELECT variance(n) FROM nums`)
	if err != nil {
		t.Fatal(err)
	}
	// n = 1..5: population variance 2.
	if math.Abs(r.Rows[0][0].F-2) > 1e-12 {
		t.Errorf("variance = %v, want 2", r.Rows[0][0].F)
	}
}

func TestStddevEmptyAndNullHandling(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE sparse (x DOUBLE)`)
	r, err := db.Query(`SELECT stddev(x) FROM sparse`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rows[0][0].Null {
		t.Errorf("stddev over empty input should be NULL, got %v", r.Rows[0][0])
	}
	db.MustExec(`INSERT INTO sparse (x) VALUES (1.0)`)
	db.MustExec(`INSERT INTO sparse (x) VALUES (NULL)`)
	db.MustExec(`INSERT INTO sparse (x) VALUES (3.0)`)
	r, err = db.Query(`SELECT stddev(x), count(x) FROM sparse`)
	if err != nil {
		t.Fatal(err)
	}
	// NULLs are ignored: values {1,3}, σ = 1.
	if math.Abs(r.Rows[0][0].F-1) > 1e-12 || r.Rows[0][1].I != 2 {
		t.Errorf("stddev=%v count=%v", r.Rows[0][0], r.Rows[0][1])
	}
}

func TestStddevParallelMatchesSerial(t *testing.T) {
	// Enough rows to trigger the morsel-parallel aggregation path.
	mk := func(workers int) float64 {
		db := Open(WithWorkers(workers))
		db.MustExec(`CREATE TABLE big (x DOUBLE)`)
		// Bulk-load via the storage layer for speed.
		store := db.Store()
		tbl, err := store.Table("big")
		if err != nil {
			t.Fatal(err)
		}
		tx := store.Begin()
		b := types.NewBatch(tbl.Schema())
		for i := 0; i < 40_000; i++ {
			b.Cols[0].AppendFloat(float64(i % 100))
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		r, err := db.Query(`SELECT stddev(x) FROM big`)
		if err != nil {
			t.Fatal(err)
		}
		return r.Rows[0][0].F
	}
	serial, parallel := mk(1), mk(8)
	if math.Abs(serial-parallel) > 1e-9 {
		t.Errorf("serial %v != parallel %v", serial, parallel)
	}
}
