package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"lambdadb/internal/types"
)

func preparedDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE pts (id INT, x FLOAT, tag TEXT)`)
	var sb strings.Builder
	sb.WriteString("INSERT INTO pts VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.5, 'tag%d')", i, i, i%7)
	}
	db.MustExec(sb.String())
	return db
}

func TestPrepareExecuteSelect(t *testing.T) {
	db := preparedDB(t)
	s := db.NewSession()
	defer s.Close()

	if _, err := s.Exec(`PREPARE q AS SELECT x FROM pts WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`EXECUTE q (42)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].F != 42.5 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// Re-execution with a different argument reuses the cached template.
	res, err = s.Exec(`EXECUTE q (7)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].F != 7.5 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if hits := db.Metrics().PlanCacheHits.Load(); hits == 0 {
		t.Errorf("expected plan cache hits, got 0")
	}
}

func TestPrepareDeclaredTypes(t *testing.T) {
	db := preparedDB(t)
	s := db.NewSession()
	defer s.Close()

	if _, err := s.Exec(`PREPARE q (INT) AS SELECT count(*) FROM pts WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`EXECUTE q (3)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// More declared types than parameters is an error.
	if _, err := s.Exec(`PREPARE r (INT, TEXT) AS SELECT * FROM pts WHERE id = $1`); err == nil {
		t.Error("excess declared types should fail")
	}
}

func TestPrepareErrors(t *testing.T) {
	db := preparedDB(t)
	s := db.NewSession()
	defer s.Close()

	db.MustExec(`PREPARE ok AS SELECT 1`) // autocommit session: fine
	if _, err := s.Exec(`EXECUTE nope`); err == nil {
		t.Error("EXECUTE of unknown name should fail")
	}
	if _, err := s.Exec(`PREPARE q AS SELECT * FROM no_such_table`); err == nil {
		t.Error("PREPARE should validate table names eagerly")
	}
	if _, err := s.Exec(`PREPARE q AS SELECT id FROM pts WHERE id = $2`); err == nil {
		t.Error("non-contiguous parameters should fail")
	}
	if _, err := s.Exec(`PREPARE q AS SELECT id FROM pts`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`PREPARE q AS SELECT 1`); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := s.Exec(`EXECUTE q (1)`); err == nil {
		t.Error("argument count mismatch should fail")
	}
	if _, err := s.Exec(`DEALLOCATE q`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`EXECUTE q`); err == nil {
		t.Error("deallocated statement should be gone")
	}
	if _, err := s.Exec(`DEALLOCATE q`); err == nil {
		t.Error("double DEALLOCATE should fail")
	}
	if _, err := s.Exec(`DEALLOCATE ALL`); err != nil {
		t.Fatal(err)
	}
	// Bare placeholders outside PREPARE are rejected.
	if _, err := s.Exec(`SELECT id FROM pts WHERE id = $1`); err == nil {
		t.Error("bare $1 should fail")
	}
}

func TestPreparedDML(t *testing.T) {
	db := preparedDB(t)
	s := db.NewSession()
	defer s.Close()

	if _, err := s.Exec(`PREPARE ins AS INSERT INTO pts VALUES ($1, $2, $3)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`EXECUTE ins (1000, 1.25, 'new')`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`PREPARE upd AS UPDATE pts SET tag = $2 WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`EXECUTE upd (1000, 'renamed')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	if _, err := s.Exec(`PREPARE del AS DELETE FROM pts WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	// The template is reusable: delete twice with different args.
	for _, id := range []int{1000, 199} {
		if _, err := s.Exec(fmt.Sprintf(`EXECUTE del (%d)`, id)); err != nil {
			t.Fatal(err)
		}
	}
	res = db.MustExec(`SELECT count(*) FROM pts`)
	if res.Rows[0][0].I != 199 {
		t.Fatalf("count = %+v", res.Rows)
	}
}

func TestExecutePreparedAPI(t *testing.T) {
	db := preparedDB(t)
	s := db.NewSession()
	defer s.Close()

	if _, err := s.Exec(`PREPARE q AS SELECT tag FROM pts WHERE id = $1`); err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecutePrepared(context.Background(), "q", []types.Value{types.NewInt(13)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "tag6" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if _, err := s.ExecutePrepared(context.Background(), "q", nil); err == nil {
		t.Error("missing argument should fail")
	}
	if got := s.Prepared(); len(got) != 1 || got[0] != "q" {
		t.Errorf("Prepared() = %v", got)
	}
}

// TestAdHocPlanCache exercises the text fast path: the same SELECT text run
// twice must hit the cache, and the hit must record zero parse+plan time.
func TestAdHocPlanCache(t *testing.T) {
	db := preparedDB(t)
	const q = `SELECT x FROM pts WHERE id = 17`
	r1 := db.MustExec(q)
	// Same statement, different surface spelling: comments and whitespace
	// normalize away, so this is the same cache key.
	r2 := db.MustExec("SELECT /* point */ x  FROM pts\nWHERE id = 17;")
	if db.Metrics().PlanCacheHits.Load() == 0 {
		t.Fatal("normalized-identical statement did not hit the plan cache")
	}
	if len(r1.Rows) != 1 || len(r2.Rows) != 1 || r1.Rows[0][0].F != r2.Rows[0][0].F {
		t.Fatalf("results differ: %+v vs %+v", r1.Rows, r2.Rows)
	}
}

// TestPlanCacheSeesNewData verifies a cached plan is not a stale snapshot:
// rows inserted after the plan was cached must be visible to later hits.
func TestPlanCacheSeesNewData(t *testing.T) {
	db := preparedDB(t)
	const q = `SELECT count(*) FROM pts`
	if got := db.MustExec(q).Rows[0][0].I; got != 200 {
		t.Fatalf("count = %d", got)
	}
	db.MustExec(`INSERT INTO pts VALUES (500, 0.5, 'late')`)
	if got := db.MustExec(q).Rows[0][0].I; got != 201 {
		t.Fatalf("count after insert = %d (stale snapshot served from cache?)", got)
	}
}

// TestPlanCacheInvalidation: DDL and ANALYZE drop cached plans.
func TestPlanCacheInvalidation(t *testing.T) {
	db := preparedDB(t)
	const q = `SELECT count(*) FROM pts WHERE id = 5`
	db.MustExec(q)
	db.MustExec(q) // hit
	hits := db.Metrics().PlanCacheHits.Load()
	if hits == 0 {
		t.Fatal("no hit before DDL")
	}
	db.MustExec(`CREATE INDEX pts_id ON pts(id)`)
	db.MustExec(q) // must miss: the catalog changed
	if got := db.Metrics().PlanCacheInvalidations.Load(); got == 0 {
		t.Fatal("CREATE INDEX did not invalidate the cached plan")
	}
	db.MustExec(q)
	if db.Metrics().PlanCacheHits.Load() <= hits {
		t.Fatal("rebuilt plan was not re-cached")
	}
	inv := db.Metrics().PlanCacheInvalidations.Load()
	db.MustExec(`ANALYZE pts`)
	db.MustExec(q)
	if db.Metrics().PlanCacheInvalidations.Load() <= inv {
		t.Fatal("ANALYZE did not invalidate the cached plan")
	}
}

// TestPlanCacheUncacheableSystem: system.* scans materialize at build time
// and must never be served from the cache.
func TestPlanCacheUncacheableSystem(t *testing.T) {
	db := preparedDB(t)
	const q = `SELECT count(*) FROM system.query_log`
	n1 := db.MustExec(q).Rows[0][0].I
	n2 := db.MustExec(q).Rows[0][0].I
	if n2 <= n1 {
		t.Fatalf("system.query_log frozen by the plan cache: %d then %d", n1, n2)
	}
}

func TestSystemPlanCacheTable(t *testing.T) {
	db := preparedDB(t)
	db.MustExec(`SELECT x FROM pts WHERE id = 1`)
	db.MustExec(`SELECT x FROM pts WHERE id = 1`)
	res := db.MustExec(`SELECT statement, hits FROM system.plan_cache`)
	if len(res.Rows) == 0 {
		t.Fatal("system.plan_cache is empty")
	}
	found := false
	for _, r := range res.Rows {
		if strings.Contains(r[0].S, "WHERE id = 1") && r[1].I >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cached statement missing from system.plan_cache: %+v", res.Rows)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := Open(WithPlanCacheSize(0))
	db.MustExec(`CREATE TABLE t (x INT)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	const q = `SELECT x FROM t`
	db.MustExec(q)
	db.MustExec(q)
	if db.Metrics().PlanCacheHits.Load() != 0 {
		t.Error("disabled cache should never hit")
	}
	// Prepared statements still work, just without the shared cache.
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(`PREPARE q AS SELECT x FROM t WHERE x = $1`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`EXECUTE q (1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

// TestPreparedInTransaction: EXECUTE under BEGIN sees the transaction
// snapshot, not the latest committed state.
func TestPreparedInTransaction(t *testing.T) {
	db := preparedDB(t)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec(`PREPARE q AS SELECT count(*) FROM pts`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`INSERT INTO pts VALUES (900, 1.0, 'outside')`)
	res, err := s.Exec(`EXECUTE q`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 200 {
		t.Fatalf("transaction snapshot leaked: count = %d", res.Rows[0][0].I)
	}
	if _, err := s.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Exec(`EXECUTE q`)
	if res.Rows[0][0].I != 201 {
		t.Fatalf("post-commit count = %d", res.Rows[0][0].I)
	}
}

// TestPlanCacheDDLRace is the chaos test: concurrent cached EXECUTEs racing
// DROP/CREATE cycles must never serve a stale plan — a query that succeeds
// must reflect a schema that existed, and the distinctive marker rows of a
// dropped generation must never appear after its drop completes.
func TestPlanCacheDDLRace(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE r (gen INT, v INT)`)
	db.MustExec(`INSERT INTO r VALUES (0, 0)`)

	const q = `SELECT gen, count(*) FROM r GROUP BY gen`
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: drop and recreate the table, each generation tagged.
	var genMu sync.Mutex
	minGen := 0 // lowest generation still allowed to be visible
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 1; gen <= 50; gen++ {
			db.MustExec(`DROP TABLE r`)
			db.MustExec(`CREATE TABLE r (gen INT, v INT)`)
			db.MustExec(fmt.Sprintf(`INSERT INTO r VALUES (%d, %d)`, gen, gen))
			genMu.Lock()
			minGen = gen
			genMu.Unlock()
		}
		close(stop)
	}()

	// Readers: run the same statement text in a loop. Failures are fine
	// (the table vanishes mid-plan); stale rows are not.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				genMu.Lock()
				floor := minGen
				genMu.Unlock()
				res, err := db.Exec(q)
				if err != nil {
					continue // dropped under us: acceptable
				}
				for _, row := range res.Rows {
					if row[0].I < int64(floor) {
						t.Errorf("stale plan served: saw generation %d after generation %d was current", row[0].I, floor)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
