package engine

import (
	"math"
	"testing"
)

// weightedGraphDB loads an edge table with a per-edge weight property.
func weightedGraphDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE wedges (src BIGINT, dest BIGINT, w DOUBLE)`)
	// Vertex 0 splits its mass unevenly: 90% to 1, 10% to 2.
	// 1 and 2 both return everything to 0.
	db.MustExec(`INSERT INTO wedges VALUES
		(0, 1, 9.0), (0, 2, 1.0), (1, 0, 1.0), (2, 0, 1.0)`)
	return db
}

func TestWeightedPageRankLambda(t *testing.T) {
	db := weightedGraphDB(t)
	r, err := db.Query(`SELECT * FROM PAGERANK (
		(SELECT src, dest, w FROM wedges),
		λ(e) e.w,
		0.85, 0.0, 100) ORDER BY vertex`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	rank := map[int64]float64{}
	var sum float64
	for _, row := range r.Rows {
		rank[row[0].I] = row[1].F
		sum += row[1].F
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank sum = %v", sum)
	}
	// The heavy edge makes vertex 1 outrank vertex 2 decisively.
	if rank[1] <= rank[2] {
		t.Errorf("rank[1]=%v should exceed rank[2]=%v under 9:1 weights", rank[1], rank[2])
	}
	// Analytic fixpoint: r1/r2 receive 0.9/0.1 of 0's damped mass.
	if ratio := (rank[1] - 0.05) / (rank[2] - 0.05); math.Abs(ratio-9) > 0.5 {
		t.Errorf("damped-mass ratio = %v, want ≈9", ratio)
	}
}

func TestWeightedPageRankUniformWeightsMatchUnweighted(t *testing.T) {
	// λ(e) 1.0 must reproduce the unweighted ranks exactly.
	db := Open()
	db.MustExec(`CREATE TABLE g (src BIGINT, dest BIGINT)`)
	db.MustExec(`INSERT INTO g VALUES (0,1),(1,2),(2,0),(0,2),(2,1)`)
	plain, err := db.Query(`SELECT vertex, rank FROM PAGERANK ((SELECT src, dest FROM g), 0.85, 0.0, 30) ORDER BY vertex`)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := db.Query(`SELECT vertex, rank FROM PAGERANK ((SELECT src, dest FROM g), λ(e) 1.0, 0.85, 0.0, 30) ORDER BY vertex`)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Rows {
		a, b := plain.Rows[i][1].F, weighted.Rows[i][1].F
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("vertex %d: unweighted %v vs uniform-weighted %v", i, a, b)
		}
	}
}

func TestWeightedPageRankComputedWeightExpr(t *testing.T) {
	// The lambda is an arbitrary expression over the edge tuple: weight
	// by inverse destination id (a contrived but computable metric).
	db := weightedGraphDB(t)
	r, err := db.Query(`SELECT count(*) FROM PAGERANK (
		(SELECT src, dest, w FROM wedges),
		λ(e) e.w * 2 + 1,
		0.85, 0.0, 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 3 {
		t.Errorf("vertices = %v", r.Rows[0][0])
	}
}

func TestWeightedPageRankErrors(t *testing.T) {
	db := weightedGraphDB(t)
	for _, q := range []string{
		// Extra columns without a lambda.
		`SELECT * FROM PAGERANK ((SELECT src, dest, w FROM wedges), 0.85, 0.0)`,
		// Two-parameter lambda.
		`SELECT * FROM PAGERANK ((SELECT src, dest, w FROM wedges), λ(a, b) a.w, 0.85, 0.0)`,
		// Lambda referencing a missing property.
		`SELECT * FROM PAGERANK ((SELECT src, dest, w FROM wedges), λ(e) e.missing, 0.85, 0.0)`,
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
	// Negative weights are a runtime error.
	if _, err := db.Query(`SELECT * FROM PAGERANK ((SELECT src, dest, w FROM wedges), λ(e) 0.0 - e.w, 0.85, 0.0)`); err == nil {
		t.Error("negative weights should fail at runtime")
	}
}
