// Package repl implements WAL streaming replication over the wire
// protocol: a primary ships durable redo records to read replicas, which
// mirror them into a byte-identical local log, apply them continuously,
// and serve snapshot-consistent read-only queries.
//
// The paper's host system scales analytical throughput by running queries
// on consistent snapshots while transactions proceed; replication extends
// the same idea across processes. A replica opens one ordinary server
// connection, identifies itself with a ReplStart frame, and from then on
// the connection is a one-way record stream (primary to replica) plus a
// trickle of position acknowledgements (replica to primary):
//
//	replica  -> primary: ReplStart  "REPL1 seg=S off=O clock=C epoch=E"  (resume position)
//	primary  -> replica: ReplSeg    "SEG S"        records now belong to segment S
//	primary  -> replica: ReplRecord u64 end | u32 crc | payload   one redo record
//	primary  -> replica: ReplPos    "POS seg=S off=O clock=C epoch=E"     heartbeat
//	primary  -> replica: ReplResync "RESYNC seg=S size=N clock=C epoch=E" snapshot follows
//	primary  -> replica: ReplChunk  raw bytes                     snapshot data
//	replica  -> primary: ReplAck    "ACK seg=S off=O clock=C epoch=E"     durably applied
//
// Positions are physical (segment, offset) pairs into the primary's log;
// because the replica's log is a byte mirror, the same position names the
// same prefix on both sides, across restarts of either.
//
// Every control payload carries the sender's cluster fencing epoch, and
// both ends enforce it: a primary refuses (and demotes itself on) a
// replica reporting a newer epoch, and a replica refuses a stream — and in
// particular a snapshot — from a primary on an older epoch. A healed
// partition therefore reconciles by epoch instead of silently diverging.
package repl

import (
	"encoding/binary"
	"fmt"

	"lambdadb/internal/wal"
)

// chunkSize bounds one ReplChunk frame of a shipped snapshot.
const chunkSize = 1 << 20

// encodePosPayload renders a tagged position + clock + epoch control
// payload.
func encodePosPayload(tag string, pos wal.Pos, clock, epoch uint64) []byte {
	return []byte(fmt.Sprintf("%s seg=%d off=%d clock=%d epoch=%d", tag, pos.Seg, pos.Off, clock, epoch))
}

// parsePosPayload parses what encodePosPayload produced.
func parsePosPayload(tag string, payload []byte) (wal.Pos, uint64, uint64, error) {
	var pos wal.Pos
	var clock, epoch uint64
	got, err := fmt.Sscanf(string(payload), tag+" seg=%d off=%d clock=%d epoch=%d", &pos.Seg, &pos.Off, &clock, &epoch)
	if err != nil || got != 4 {
		return wal.Pos{}, 0, 0, fmt.Errorf("repl: malformed %s payload %q", tag, payload)
	}
	return pos, clock, epoch, nil
}

// Handshake payloads (ReplStart) carry the protocol version so a primary
// can refuse a replica from a different build cleanly.
func encodeHandshake(pos wal.Pos, clock, epoch uint64) []byte {
	return encodePosPayload("REPL1", pos, clock, epoch)
}

func parseHandshake(payload []byte) (wal.Pos, uint64, uint64, error) {
	return parsePosPayload("REPL1", payload)
}

// Segment-switch payloads (ReplSeg).
func encodeSeg(seq uint64) []byte { return []byte(fmt.Sprintf("SEG %d", seq)) }

func parseSeg(payload []byte) (uint64, error) {
	var seq uint64
	got, err := fmt.Sscanf(string(payload), "SEG %d", &seq)
	if err != nil || got != 1 {
		return 0, fmt.Errorf("repl: malformed SEG payload %q", payload)
	}
	return seq, nil
}

// Resync payloads (ReplResync): the snapshot's byte size, the image's
// clock, the segment the mirror restarts at, and the primary's epoch for
// the replica to adopt once the image is installed.
func encodeResync(startSeg uint64, size int64, clock, epoch uint64) []byte {
	return []byte(fmt.Sprintf("RESYNC seg=%d size=%d clock=%d epoch=%d", startSeg, size, clock, epoch))
}

func parseResync(payload []byte) (startSeg uint64, size int64, clock, epoch uint64, err error) {
	got, err := fmt.Sscanf(string(payload), "RESYNC seg=%d size=%d clock=%d epoch=%d", &startSeg, &size, &clock, &epoch)
	if err != nil || got != 4 {
		return 0, 0, 0, 0, fmt.Errorf("repl: malformed RESYNC payload %q", payload)
	}
	return startSeg, size, clock, epoch, nil
}

// recordHeader is the binary prefix of a ReplRecord payload: the offset
// the record ends at in its segment plus the CRC the log frames it with.
// The replica re-frames the payload identically and verifies both, so any
// byte divergence between the two logs is caught at the record it starts.
const recordHeader = 8 + 4

// appendRecordPayload encodes one ReplRecord payload into buf.
func appendRecordPayload(buf []byte, endOff int64, crc uint32, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(endOff))
	binary.BigEndian.PutUint32(hdr[8:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseRecordPayload decodes a ReplRecord payload. The returned record
// bytes alias the frame payload.
func parseRecordPayload(payload []byte) (endOff int64, crc uint32, rec []byte, err error) {
	if len(payload) < recordHeader {
		return 0, 0, nil, fmt.Errorf("repl: record frame is %d bytes, shorter than its header", len(payload))
	}
	endOff = int64(binary.BigEndian.Uint64(payload[0:]))
	crc = binary.BigEndian.Uint32(payload[8:])
	return endOff, crc, payload[recordHeader:], nil
}
