package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/wal"
)

// PrimaryConfig tunes the shipping side.
type PrimaryConfig struct {
	// SendTimeout bounds every write toward a replica. A replica that stops
	// draining its socket is disconnected once one write stalls this long —
	// it reconnects and resumes later; it must never be able to wedge the
	// primary. <= 0 means 10s.
	SendTimeout time.Duration
	// RetainSegments caps how many sealed segments checkpoints keep around
	// for lagging replicas. A replica that falls further behind than this
	// loses its resume window and is resynced with a full snapshot instead.
	// <= 0 means 8.
	RetainSegments uint64
	// HeartbeatEvery is the idle-stream heartbeat interval (position +
	// clock, so replicas can report staleness). <= 0 means 1s.
	HeartbeatEvery time.Duration
	// SyncReplicas, when > 0, makes commits semi-synchronous: a commit is
	// acknowledged to the client only once this many replicas have durably
	// acked its log position (or SyncTimeout expires, which surfaces as a
	// commit error — the write is locally durable but unconfirmed). 0 keeps
	// replication fully asynchronous.
	SyncReplicas int
	// SyncTimeout bounds how long a semi-synchronous commit waits for
	// replica acks. <= 0 means 5s.
	SyncTimeout time.Duration
	// OnStaleEpoch is called (from a connection goroutine) when a replica
	// reports a cluster epoch newer than this primary's: someone else was
	// promoted, so this node must fence itself. May be nil.
	OnStaleEpoch func(remoteEpoch uint64, peer string)
	// Logger receives structured replica connect/disconnect logs with the
	// replica's address as a field. Nil discards them.
	Logger *slog.Logger
}

func (c *PrimaryConfig) defaults() {
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 10 * time.Second
	}
	if c.RetainSegments == 0 {
		c.RetainSegments = 8
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 5 * time.Second
	}
}

// Primary ships the write-ahead log to connected replicas. It implements
// server.ReplicationHandler (the server hands it ReplStart connections),
// wal.SegmentRetainer (checkpoints keep segments replicas still need), and
// engine.ReplicationReporter (system.replication rows).
type Primary struct {
	db      *engine.DB
	mgr     *wal.Manager
	metrics *telemetry.Metrics
	cfg     PrimaryConfig

	mu       sync.Mutex
	replicas map[*replicaLink]struct{}
	ackGen   chan struct{} // closed and replaced whenever any ack advances
	stopped  bool          // Stop was called; refuse new replicas
}

// replicaLink is the primary's view of one connected replica.
type replicaLink struct {
	peer string
	nc   net.Conn

	mu          sync.Mutex
	state       string // "catchup", "streaming", "resync"
	acked       wal.Pos
	ackedClock  uint64
	lastContact time.Time

	gone chan struct{} // closed when the ack reader sees the connection die
}

func (l *replicaLink) set(fn func(*replicaLink)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fn(l)
}

// NewPrimary wires a durable DB for shipping: it installs itself as the
// WAL's segment retainer and the engine's replication reporter, and is
// then ready to be set as the server's ReplHandler.
func NewPrimary(db *engine.DB, cfg PrimaryConfig) (*Primary, error) {
	mgr := db.WALManager()
	if mgr == nil {
		return nil, fmt.Errorf("repl: replication requires a database opened with a data directory")
	}
	cfg.defaults()
	p := &Primary{
		db: db, mgr: mgr, metrics: db.Metrics(), cfg: cfg,
		replicas: make(map[*replicaLink]struct{}),
		ackGen:   make(chan struct{}),
	}
	mgr.SetSegmentRetainer(p)
	db.SetReplicationReporter(p)
	if cfg.SyncReplicas > 0 {
		mgr.SetCommitWaiter(p.WaitReplicated)
	}
	return p, nil
}

// Stop disconnects every replica and uninstalls the semi-sync commit
// waiter. New ReplStart handshakes are refused afterwards. Demotion calls
// it so a fenced ex-primary cannot keep shipping records under its stale
// epoch.
func (p *Primary) Stop() {
	p.mu.Lock()
	p.stopped = true
	links := make([]*replicaLink, 0, len(p.replicas))
	for l := range p.replicas {
		links = append(links, l)
	}
	p.mu.Unlock()
	p.mgr.SetCommitWaiter(nil)
	for _, l := range links {
		l.nc.Close()
	}
}

// ackAdvanced wakes every semi-sync commit waiting in WaitReplicated.
func (p *Primary) ackAdvanced() {
	p.mu.Lock()
	close(p.ackGen)
	p.ackGen = make(chan struct{})
	p.mu.Unlock()
}

// WaitReplicated blocks until cfg.SyncReplicas replicas have acked pos as
// durably applied, or SyncTimeout expires. It is installed as the WAL's
// commit waiter when semi-synchronous replication is enabled: the commit
// is already locally durable when it runs, so a timeout means the write
// exists but its replication factor is unconfirmed — the error tells the
// client exactly that.
func (p *Primary) WaitReplicated(pos wal.Pos) error {
	need := p.cfg.SyncReplicas
	if need <= 0 {
		return nil
	}
	deadline := time.Now().Add(p.cfg.SyncTimeout)
	for {
		p.mu.Lock()
		acked := 0
		for l := range p.replicas {
			l.mu.Lock()
			if !l.acked.Less(pos) {
				acked++
			}
			l.mu.Unlock()
		}
		gen := p.ackGen
		stopped := p.stopped
		p.mu.Unlock()
		if acked >= need {
			return nil
		}
		if stopped {
			return fmt.Errorf("repl: commit is durable locally but unconfirmed: primary was stopped before %d replica(s) acked", need)
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("repl: commit is durable locally but unconfirmed: only %d of %d required replicas acked within %v", acked, need, p.cfg.SyncTimeout)
		}
		t := time.NewTimer(remaining)
		select {
		case <-gen:
		case <-t.C:
		}
		t.Stop()
	}
}

// MinSegment implements wal.SegmentRetainer. Checkpoints always retain the
// last RetainSegments sealed segments so a briefly-offline replica can
// resume positionally when it comes back; a replica offline longer than
// that window loses it and is resynced with a snapshot. Connected replicas
// extend retention below the window down to their acked position — they
// are actively draining, and a wedged one is disconnected by the send
// timeout, at which point the window cap applies again.
func (p *Primary) MinSegment(active uint64) uint64 {
	keep := uint64(1)
	if active > p.cfg.RetainSegments {
		keep = active - p.cfg.RetainSegments
	}
	p.mu.Lock()
	for l := range p.replicas {
		l.mu.Lock()
		if s := l.acked.Seg; s > 0 && s < keep {
			keep = s
		}
		l.mu.Unlock()
	}
	p.mu.Unlock()
	return keep
}

// ReplicationRows implements engine.ReplicationReporter: one row per
// connected replica.
func (p *Primary) ReplicationRows() []engine.ReplicationRow {
	clock := p.db.Store().Snapshot()
	epoch := p.mgr.Epoch()
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := make([]engine.ReplicationRow, 0, len(p.replicas))
	for l := range p.replicas {
		l.mu.Lock()
		contact := int64(-1)
		if !l.lastContact.IsZero() {
			contact = time.Since(l.lastContact).Milliseconds()
		}
		rows = append(rows, engine.ReplicationRow{
			Role: "primary", Peer: l.peer, State: l.state, Epoch: epoch,
			WalSeg: l.acked.Seg, WalOff: l.acked.Off,
			AppliedClock: l.ackedClock, PrimaryClock: clock,
			LastContact: contact,
		})
		l.mu.Unlock()
	}
	return rows
}

// ServeReplication implements server.ReplicationHandler: it owns the
// connection from the ReplStart handshake until the stream ends.
func (p *Primary) ServeReplication(ctx context.Context, nc net.Conn, br *bufio.Reader, start []byte) {
	pos, clock, replEpoch, err := parseHandshake(start)
	if err != nil {
		_ = nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_ = wire.WriteFrame(nc, wire.Error, []byte(err.Error()))
		return
	}
	local := p.mgr.Epoch()
	if replEpoch > local {
		// The replica has seen a newer epoch than ours: another node was
		// promoted while we thought we were the primary. Fence ourselves and
		// refuse the stream — shipping our stale history would diverge it.
		p.cfg.Logger.Warn("replica reports a newer cluster epoch; fencing this primary",
			"replica", nc.RemoteAddr().String(), "replica_epoch", replEpoch, "local_epoch", local)
		if p.cfg.OnStaleEpoch != nil {
			p.cfg.OnStaleEpoch(replEpoch, nc.RemoteAddr().String())
		}
		_ = nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_ = wire.WriteFrame(nc, wire.Error,
			[]byte(fmt.Sprintf("repl: stale epoch: this node is at epoch %d, replica at %d", local, replEpoch)))
		return
	}
	// A replica from an older epoch may carry log bytes written outside the
	// fenced regime: a demoted primary keeps commits that were durable
	// locally but never confirmed, and they can collide positionally with
	// the bytes this regime wrote at the same offsets. Positional resume
	// cannot detect that, so the whole log is replaced with a snapshot.
	forceResync := replEpoch < local && !pos.IsZero()
	if forceResync {
		p.cfg.Logger.Info("replica joins from an older epoch; forcing snapshot resync",
			"replica", nc.RemoteAddr().String(), "replica_epoch", replEpoch, "local_epoch", local)
	}

	link := &replicaLink{
		peer: nc.RemoteAddr().String(), nc: nc, state: "catchup",
		acked: pos, ackedClock: clock, lastContact: time.Now(),
		gone: make(chan struct{}),
	}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		_ = nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_ = wire.WriteFrame(nc, wire.Error, []byte("repl: this node no longer serves as a primary"))
		return
	}
	p.replicas[link] = struct{}{}
	p.mu.Unlock()
	p.metrics.ReplReplicasActive.Add(1)
	p.cfg.Logger.Info("replica connected",
		"replica", link.peer, "resume_seg", pos.Seg, "resume_off", pos.Off, "clock", clock)
	defer func() {
		p.mu.Lock()
		delete(p.replicas, link)
		p.mu.Unlock()
		p.metrics.ReplReplicasActive.Add(-1)
		p.cfg.Logger.Info("replica disconnected", "replica", link.peer)
	}()

	// Ack reader: the replica's only traffic after the handshake is ACK
	// frames; their arrival advances the retention floor and lag row. Any
	// read error means the replica is gone.
	go func() {
		defer close(link.gone)
		for {
			typ, payload, err := wire.ReadFrame(br)
			if err != nil || typ != wire.ReplAck {
				return
			}
			ackPos, ackClock, ackEpoch, err := parsePosPayload("ACK", payload)
			if err != nil {
				return
			}
			if local := p.mgr.Epoch(); ackEpoch > local {
				// The replica learned a newer epoch mid-session (e.g. a healed
				// partition brought the real primary back into view). Fence.
				p.cfg.Logger.Warn("replica acked under a newer cluster epoch; fencing this primary",
					"replica", link.peer, "replica_epoch", ackEpoch, "local_epoch", local)
				if p.cfg.OnStaleEpoch != nil {
					p.cfg.OnStaleEpoch(ackEpoch, link.peer)
				}
				return
			}
			link.set(func(l *replicaLink) {
				l.acked, l.ackedClock, l.lastContact = ackPos, ackClock, time.Now()
			})
			p.ackAdvanced()
		}
	}()

	if err := p.stream(ctx, nc, link, pos, forceResync); err != nil {
		if isTimeout(err) {
			p.metrics.ReplSlowKicks.Add(1)
			p.cfg.Logger.Warn("replica kicked for stalling the shipper",
				"replica", link.peer, "err", err.Error())
		}
	}
	nc.Close()
	<-link.gone // the ack reader exits once the socket is closed
}

// isTimeout reports whether err is a write-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// deadlineWriter arms a write deadline before every underlying write, so a
// stalled replica fails the stream after SendTimeout instead of blocking a
// goroutine forever.
type deadlineWriter struct {
	nc      net.Conn
	timeout time.Duration
}

func (w deadlineWriter) Write(b []byte) (int, error) {
	if err := w.nc.SetWriteDeadline(time.Now().Add(w.timeout)); err != nil {
		return 0, err
	}
	return w.nc.Write(b)
}

// stream ships the log from pos onward until the connection, the server,
// or the log goes away. Catch-up and tailing are the same loop: ship
// everything durable, then wait for the durable position to advance.
func (p *Primary) stream(ctx context.Context, nc net.Conn, link *replicaLink, pos wal.Pos, forceResync bool) error {
	bw := bufio.NewWriterSize(deadlineWriter{nc: nc, timeout: p.cfg.SendTimeout}, 256<<10)

	sub, cancelSub := p.mgr.SubscribeDurable()
	defer cancelSub()
	heartbeat := time.NewTicker(p.cfg.HeartbeatEvery)
	defer heartbeat.Stop()

	// Announce our position, clock, and — crucially — epoch before anything
	// else. The replica fences on this frame: it refuses the whole session
	// (including any snapshot that would follow) if our epoch is older than
	// its own, so a stale primary can never resync a replica backwards.
	hello := encodePosPayload("POS", p.mgr.DurablePos(), p.db.Store().Snapshot(), p.mgr.Epoch())
	if err := wire.WriteFrame(bw, wire.ReplPos, hello); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	needResync := forceResync || p.needsResync(pos)
	sentSeg := uint64(0) // last ReplSeg announced; 0 = none yet
	var frame []byte     // reused ReplRecord payload buffer

	for {
		if needResync {
			newPos, err := p.resync(bw, link)
			if err != nil {
				return err
			}
			pos, needResync, sentSeg = newPos, false, 0
			link.set(func(l *replicaLink) { l.state = "catchup" })
		}

		durable := p.mgr.DurablePos()
		for pos.Less(durable) {
			if sentSeg != pos.Seg {
				if err := wire.WriteFrame(bw, wire.ReplSeg, encodeSeg(pos.Seg)); err != nil {
					return err
				}
				sentSeg = pos.Seg
			}
			limit := int64(-1) // sealed segment: ship to its end
			if pos.Seg == durable.Seg {
				limit = durable.Off
			}
			next, err := wal.ReadSegmentRecords(p.mgr.Dir(), pos.Seg, pos.Off, limit,
				func(payload []byte, end int64) error {
					if err := faultinject.Fire("repl.ship.record"); err != nil {
						return err
					}
					frame = appendRecordPayload(frame[:0], end, wal.RecordCRC(payload), payload)
					if err := wire.WriteFrame(bw, wire.ReplRecord, frame); err != nil {
						return err
					}
					p.metrics.ReplRecordsShipped.Add(1)
					p.metrics.ReplBytesShipped.Add(int64(len(payload)))
					return nil
				})
			pos.Off = next
			if err != nil {
				var amb *wal.AmbiguousStateError
				if errors.Is(err, wal.ErrSegmentGone) || errors.As(err, &amb) {
					// The replica's position no longer names readable log
					// bytes — pruned behind it, or not on a record boundary
					// of this log. Fall back to a full snapshot.
					needResync = true
					break
				}
				return err
			}
			if pos.Seg < durable.Seg {
				pos = wal.SegmentStart(pos.Seg + 1)
			}
			durable = p.mgr.DurablePos()
		}
		if needResync {
			continue
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		link.set(func(l *replicaLink) { l.state = "streaming" })

		select {
		case _, ok := <-sub:
			if !ok {
				return nil // log closed or failed; the stream ends cleanly
			}
		case <-heartbeat.C:
			hb := encodePosPayload("POS", p.mgr.DurablePos(), p.db.Store().Snapshot(), p.mgr.Epoch())
			if err := wire.WriteFrame(bw, wire.ReplPos, hb); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case <-ctx.Done():
			return nil
		case <-link.gone:
			return nil
		}
	}
}

// needsResync decides whether a handshake position can be streamed from.
func (p *Primary) needsResync(pos wal.Pos) bool {
	if pos.IsZero() {
		return true // fresh replica, or one that detected divergence
	}
	if pos.Off < wal.SegmentStart(pos.Seg).Off {
		return true
	}
	// A position past our durable end cannot be ours: the replica mirrors
	// only bytes we reported durable, so it followed a different history
	// (e.g. this primary lost its directory and started over).
	return p.mgr.DurablePos().Less(pos)
}

// resync ships a fresh snapshot: RESYNC header, the image in chunks, and
// returns the position streaming resumes from. The replica's acked
// position is reset under the WAL manager's lock (inside ShipState), so a
// concurrent checkpoint cannot prune the restart segment.
func (p *Primary) resync(bw *bufio.Writer, link *replicaLink) (wal.Pos, error) {
	link.set(func(l *replicaLink) { l.state = "resync" })
	var newPos wal.Pos
	err := p.mgr.ShipState(func(path string, clock, startSeg uint64) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(bw, wire.ReplResync, encodeResync(startSeg, st.Size(), clock, p.mgr.Epoch())); err != nil {
			return err
		}
		buf := make([]byte, chunkSize)
		remaining := st.Size()
		for remaining > 0 {
			n := int64(len(buf))
			if n > remaining {
				n = remaining
			}
			if _, err := io.ReadFull(f, buf[:n]); err != nil {
				return err
			}
			if err := wire.WriteFrame(bw, wire.ReplChunk, buf[:n]); err != nil {
				return err
			}
			remaining -= n
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		newPos = wal.SegmentStart(startSeg)
		link.set(func(l *replicaLink) { l.acked, l.ackedClock = newPos, clock })
		p.metrics.ReplSnapshotsSent.Add(1)
		return nil
	})
	return newPos, err
}
