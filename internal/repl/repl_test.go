package repl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/server"
)

// primaryNode is a durable DB serving queries and replication on loopback.
type primaryNode struct {
	db   *engine.DB
	prim *Primary
	addr string
}

func startPrimary(t *testing.T, cfg PrimaryConfig) *primaryNode {
	t.Helper()
	db, err := engine.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prim, err := NewPrimary(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0", ReplHandler: prim})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown primary: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve primary: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Errorf("close primary: %v", err)
		}
	})
	return &primaryNode{db: db, prim: prim, addr: srv.Addr().String()}
}

// replicaNode is a durable read-only DB replicating from a primary.
type replicaNode struct {
	db  *engine.DB
	rep *Replica
	dir string
}

// fastReplicaConfig keeps test reconnects snappy.
func fastReplicaConfig() ReplicaConfig {
	return ReplicaConfig{
		AckEvery:    5 * time.Millisecond,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	}
}

func startReplica(t *testing.T, primaryAddr string) *replicaNode {
	t.Helper()
	dir := t.TempDir()
	n := openReplica(t, dir, primaryAddr)
	return n
}

func openReplica(t *testing.T, dir, primaryAddr string) *replicaNode {
	t.Helper()
	db, err := engine.OpenDir(dir, engine.WithReadReplica(primaryAddr))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := StartReplica(db, primaryAddr, fastReplicaConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rep.Close()
		if err := db.Close(); err != nil {
			t.Errorf("close replica: %v", err)
		}
	})
	return &replicaNode{db: db, rep: rep, dir: dir}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// countRows returns SELECT COUNT(*) FROM table, or -1 if the table does not
// exist yet (the replica may not have applied its creation).
func countRows(db *engine.DB, table string) int64 {
	res, err := db.Query("SELECT COUNT(*) AS n FROM " + table)
	if err != nil {
		return -1
	}
	var n int64
	fmt.Sscanf(res.Rows[0][0].String(), "%d", &n)
	return n
}

// metric fetches one named counter from the DB's telemetry snapshot.
func metric(db *engine.DB, name string) int64 {
	for _, m := range db.Metrics().Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return -1
}

func mustExec(t *testing.T, db *engine.DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func TestReplicaCatchUpAndTail(t *testing.T) {
	p := startPrimary(t, PrimaryConfig{})
	mustExec(t, p.db, "CREATE TABLE t (id BIGINT, v DOUBLE)")
	for i := 0; i < 50; i++ {
		mustExec(t, p.db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d.5)", i, i))
	}

	// Catch-up: the replica starts after the history exists.
	r := startReplica(t, p.addr)
	waitFor(t, "catch-up to 50 rows", func() bool { return countRows(r.db, "t") == 50 })

	// Tail: live commits and DDL stream over the same connection.
	mustExec(t, p.db, "CREATE INDEX t_id ON t (id)")
	for i := 50; i < 80; i++ {
		mustExec(t, p.db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d.5)", i, i))
	}
	waitFor(t, "tail to 80 rows", func() bool { return countRows(r.db, "t") == 80 })

	// The replicated index serves point lookups on the replica.
	res, err := r.db.Query("SELECT v FROM t WHERE id = 77")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "77.5" {
		t.Fatalf("replica point lookup = %v, want one row 77.5", res.Rows)
	}
	if got := metric(r.db, "repl_records_applied"); got <= 0 {
		t.Error("repl_records_applied = 0, want > 0")
	}
}

func TestReplicaRejectsWrites(t *testing.T) {
	p := startPrimary(t, PrimaryConfig{})
	mustExec(t, p.db, "CREATE TABLE t (id BIGINT)")
	r := startReplica(t, p.addr)
	waitFor(t, "table replication", func() bool { return countRows(r.db, "t") == 0 })

	for _, sql := range []string{
		"INSERT INTO t VALUES (1)",
		"UPDATE t SET id = 2",
		"DELETE FROM t",
		"CREATE TABLE u (id BIGINT)",
		"DROP TABLE t",
		"CREATE INDEX t_id ON t (id)",
		"CHECKPOINT",
	} {
		_, err := r.db.Exec(sql)
		var roe *engine.ReadOnlyError
		if !errors.As(err, &roe) {
			t.Fatalf("%s on replica: got %v, want *engine.ReadOnlyError", sql, err)
		}
		if roe.Primary != p.addr {
			t.Errorf("%s error names primary %q, want %q", sql, roe.Primary, p.addr)
		}
	}
	// Reads are unaffected.
	if _, err := r.db.Query("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("SELECT on replica: %v", err)
	}
}

func TestReplicaReconnectResumesWithoutResync(t *testing.T) {
	p := startPrimary(t, PrimaryConfig{})
	mustExec(t, p.db, "CREATE TABLE t (id BIGINT)")
	mustExec(t, p.db, "INSERT INTO t VALUES (1)")

	r := startReplica(t, p.addr)
	waitFor(t, "initial sync", func() bool { return countRows(r.db, "t") == 1 })

	// Break the stream mid-ship: the primary's next record send fails, it
	// drops the connection, and the replica reconnects from its durable
	// position — no snapshot involved.
	faultinject.FailOnce("repl.ship.record", errors.New("injected stream break"))
	defer faultinject.Reset()
	mustExec(t, p.db, "INSERT INTO t VALUES (2)")
	mustExec(t, p.db, "INSERT INTO t VALUES (3)")
	waitFor(t, "resume to 3 rows", func() bool { return countRows(r.db, "t") == 3 })

	if got := metric(r.db, "repl_reconnects"); got <= 0 {
		t.Error("repl_reconnects = 0, want > 0")
	}
	if got := metric(r.db, "repl_resyncs"); got != 0 {
		t.Errorf("repl_resyncs = %d, want 0 (resume should not need a snapshot)", got)
	}
}

func TestReplicaRestartResumesFromLocalLog(t *testing.T) {
	p := startPrimary(t, PrimaryConfig{})
	mustExec(t, p.db, "CREATE TABLE t (id BIGINT)")
	for i := 0; i < 20; i++ {
		mustExec(t, p.db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}

	dir := t.TempDir()
	r := openReplica(t, dir, p.addr)
	waitFor(t, "initial sync", func() bool { return countRows(r.db, "t") == 20 })

	// Stop the replica cleanly, write more on the primary, then reopen the
	// replica from the same directory: it recovers locally and resumes the
	// stream from its durable position.
	r.rep.Close()
	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 35; i++ {
		mustExec(t, p.db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	r2 := openReplica(t, dir, p.addr)
	waitFor(t, "resume after restart", func() bool { return countRows(r2.db, "t") == 35 })
	if got := metric(r2.db, "repl_resyncs"); got != 0 {
		t.Errorf("repl_resyncs = %d, want 0 (restart should resume positionally)", got)
	}
}

func TestReplicaResyncAfterPrune(t *testing.T) {
	p := startPrimary(t, PrimaryConfig{RetainSegments: 1})
	mustExec(t, p.db, "CREATE TABLE t (id BIGINT)")
	mustExec(t, p.db, "INSERT INTO t VALUES (1)")

	dir := t.TempDir()
	r := openReplica(t, dir, p.addr)
	waitFor(t, "initial sync", func() bool { return countRows(r.db, "t") == 1 })

	// Take the replica offline, then roll the primary's log far enough that
	// the replica's resume segment is pruned.
	r.rep.Close()
	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 10; i++ {
			mustExec(t, p.db, fmt.Sprintf("INSERT INTO t VALUES (%d)", 100*round+i+2))
		}
		if _, err := p.db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}

	r2 := openReplica(t, dir, p.addr)
	waitFor(t, "resync to 41 rows", func() bool { return countRows(r2.db, "t") == 41 })
	if got := metric(r2.db, "repl_resyncs"); got <= 0 {
		t.Error("repl_resyncs = 0, want > 0 (resume window was pruned)")
	}
	// And the stream keeps flowing after the snapshot.
	mustExec(t, p.db, "INSERT INTO t VALUES (999)")
	waitFor(t, "tail after resync", func() bool { return countRows(r2.db, "t") == 42 })
}

func TestSystemReplicationRows(t *testing.T) {
	p := startPrimary(t, PrimaryConfig{})
	mustExec(t, p.db, "CREATE TABLE t (id BIGINT)")

	// Before any replica connects, the primary reports a single idle row.
	res, err := p.db.Query("SELECT role, state FROM system.replication")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].String() != "idle" {
		t.Fatalf("idle primary system.replication = %v, want one idle row", res.Rows)
	}

	r := startReplica(t, p.addr)
	waitFor(t, "table replication", func() bool { return countRows(r.db, "t") == 0 })
	mustExec(t, p.db, "INSERT INTO t VALUES (1)")
	waitFor(t, "streaming state on replica", func() bool {
		res, err := r.db.Query("SELECT state FROM system.replication")
		return err == nil && len(res.Rows) == 1 && res.Rows[0][0].String() == "streaming"
	})

	res, err = r.db.Query("SELECT role, peer, lag FROM system.replication")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "replica" || res.Rows[0][1].String() != p.addr {
		t.Fatalf("replica system.replication = %v, want role=replica peer=%s", res.Rows, p.addr)
	}

	waitFor(t, "replica row on primary", func() bool {
		res, err := p.db.Query("SELECT role, state FROM system.replication")
		return err == nil && len(res.Rows) == 1 && res.Rows[0][0].String() == "primary" &&
			res.Rows[0][1].String() == "streaming"
	})
}

func TestReplicaApplyFaultTriggersReconnect(t *testing.T) {
	p := startPrimary(t, PrimaryConfig{})
	mustExec(t, p.db, "CREATE TABLE t (id BIGINT)")
	r := startReplica(t, p.addr)
	waitFor(t, "table replication", func() bool { return countRows(r.db, "t") == 0 })

	// An apply-side fault (e.g. a torn frame surfacing as an error) drops
	// the session; the retry loop reconnects and the stream converges.
	faultinject.FailOnce("repl.apply.record", errors.New("injected apply fault"))
	defer faultinject.Reset()
	for i := 0; i < 10; i++ {
		mustExec(t, p.db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	waitFor(t, "convergence after apply fault", func() bool { return countRows(r.db, "t") == 10 })
	if got := metric(r.db, "repl_reconnects"); got <= 0 {
		t.Error("repl_reconnects = 0, want > 0")
	}
}

func TestPrimaryWithoutWALRefusesReplication(t *testing.T) {
	db := engine.Open()
	defer db.Close()
	if _, err := NewPrimary(db, PrimaryConfig{}); err == nil {
		t.Fatal("NewPrimary on an in-memory DB succeeded, want error")
	}
	if _, err := StartReplica(db, "127.0.0.1:1", fastReplicaConfig()); err == nil {
		t.Fatal("StartReplica on an in-memory DB succeeded, want error")
	}
}

func TestServerWithoutHandlerRefusesReplica(t *testing.T) {
	// A plain server (no ReplHandler) answers ReplStart with an error
	// frame; the replica keeps retrying but reports the refusal.
	db := engine.Open()
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
		db.Close()
	}()

	rdb, err := engine.OpenDir(t.TempDir(), engine.WithReadReplica(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastReplicaConfig()
	cfg.MaxAttempts = 3
	rep, err := StartReplica(rdb, srv.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	waitFor(t, "replica gives up", func() bool {
		rows := rep.ReplicationRows()
		return len(rows) == 1 && rows[0].State == "failed"
	})
	rep.Close()
}

func TestReadOnlyErrorMessage(t *testing.T) {
	err := &engine.ReadOnlyError{Primary: "db1:5433", Statement: "INSERT"}
	if !strings.Contains(err.Error(), "db1:5433") || !strings.Contains(err.Error(), "read-only replica") {
		t.Fatalf("ReadOnlyError message %q should name the primary and the role", err.Error())
	}
}
