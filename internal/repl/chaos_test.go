package repl_test

// The replication chaos harness: a primary and a replica run as separate
// processes (this test binary re-execed), a writer in the parent inserts
// sequential ids over TCP and journals which commits the primary
// acknowledged, and each round a randomized calamity hits the pair —
// kill -9 of the replica mid-tail or mid-catch-up, kill -9 of the primary
// mid-batch, or an injected stream fault (apply, ship, or ack path) that
// severs a session partway through. After every round the dead process is
// restarted and the harness asserts the replication contract:
//
//   - zero acked-commit loss: every insert the primary acknowledged is on
//     the primary after recovery and reaches the replica,
//   - convergence: the replica's table contents become identical to the
//     primary's, and its replicated index answers point probes,
//   - positional resume: a replica that restarts while the primary still
//     retains its segments catches up without a snapshot resync,
//   - resync: a replica left behind a pruned retention window converges
//     via a full snapshot instead of failing,
//   - promotion: after the primary dies for good, the replica restarted
//     as a primary serves exactly the converged prefix and accepts writes.
//
// Gated behind LAMBDADB_CHAOS_REPL=1 (run via `make chaos-repl`) because it
// forks processes and loops for a while.

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/repl"
	"lambdadb/internal/server"
	"lambdadb/internal/server/client"
)

const (
	chaosEnvParent  = "LAMBDADB_CHAOS_REPL"
	chaosEnvRole    = "LAMBDADB_CHAOS_REPL_ROLE"
	chaosEnvDir     = "LAMBDADB_CHAOS_REPL_DIR"
	chaosEnvAddr    = "LAMBDADB_CHAOS_REPL_ADDR"
	chaosEnvPrimary = "LAMBDADB_CHAOS_REPL_PRIMARY"
	chaosEnvFault   = "LAMBDADB_CHAOS_REPL_FAULT"
)

// ---------------------------------------------------------------- parent

func TestReplChaos(t *testing.T) {
	if os.Getenv(chaosEnvParent) != "1" {
		t.Skip("set LAMBDADB_CHAOS_REPL=1 (make chaos-repl) to run the replication chaos harness")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	h := &chaosHarness{
		t: t, rng: rng,
		primaryDir:  filepath.Join(t.TempDir(), "primary"),
		replicaDir:  filepath.Join(t.TempDir(), "replica"),
		primaryAddr: freeAddr(t),
		replicaAddr: freeAddr(t),
		tried:       map[int64]bool{},
		acked:       map[int64]bool{},
	}

	h.primary = h.startChild("primary", h.primaryDir, h.primaryAddr, "")
	h.setupSchema()
	h.replica = h.startChild("replica", h.replicaDir, h.replicaAddr, "")

	// 20+ randomized rounds cycling through every calamity. "none" rounds
	// keep plain streaming in the mix so steady-state convergence is also
	// re-checked after each recovery.
	scenarios := []string{
		"none", "kill-replica", "kill-primary", "fault-apply",
		"kill-replica-catchup", "fault-ship", "kill-primary", "fault-ack",
		"kill-replica", "none", "kill-primary", "fault-apply",
		"kill-replica-catchup", "fault-ship", "kill-replica", "kill-primary",
		"fault-ack", "kill-replica", "none", "kill-primary", "prune-resync",
	}
	for round, sc := range scenarios {
		t.Logf("round %d: %s", round, sc)
		h.runRound(round, sc)
		h.verifyRound(round, sc)
	}

	h.promote()
}

type chaosHarness struct {
	t   *testing.T
	rng *rand.Rand

	primaryDir, replicaDir   string
	primaryAddr, replicaAddr string
	primary, replica         *chaosChild

	mu    sync.Mutex
	tried map[int64]bool // ids whose INSERT was sent
	acked map[int64]bool // ids whose INSERT the primary acknowledged
	next  int64
}

// chaosChild is one re-execed server process.
type chaosChild struct {
	cmd  *exec.Cmd
	done chan error
}

// freeAddr grabs a loopback port and releases it for a child to bind. The
// port must stay fixed across restarts of a role, so children cannot use
// :0 themselves.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startChild launches a role process and waits for it to accept queries.
func (h *chaosHarness) startChild(role, dir, addr, fault string) *chaosChild {
	h.t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestReplChaosChild$")
	cmd.Env = append(os.Environ(),
		chaosEnvRole+"="+role,
		chaosEnvDir+"="+dir,
		chaosEnvAddr+"="+addr,
		chaosEnvPrimary+"="+h.primaryAddr,
		chaosEnvFault+"="+fault,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		h.t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		h.t.Fatal(err)
	}
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "CHILD-READY") {
				close(ready)
				break
			}
		}
		for sc.Scan() { // drain
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		h.t.Fatalf("%s child never became ready", role)
	}
	c := &chaosChild{cmd: cmd, done: make(chan error, 1)}
	go func() { c.done <- cmd.Wait() }()
	return c
}

// killHard SIGKILLs the child and waits for it to die.
func (c *chaosChild) killHard(t *testing.T) {
	t.Helper()
	c.cmd.Process.Signal(syscall.SIGKILL)
	select {
	case <-c.done:
	case <-time.After(30 * time.Second):
		t.Fatal("child did not die after SIGKILL")
	}
}

// stop SIGTERMs the child and requires a clean drain.
func (c *chaosChild) stop(t *testing.T) {
	t.Helper()
	c.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-c.done:
		if err != nil {
			t.Fatalf("child did not drain cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child did not exit after SIGTERM")
	}
}

func (h *chaosHarness) setupSchema() {
	h.t.Helper()
	c := h.dialRetry(h.primaryAddr)
	defer c.Close()
	for _, sql := range []string{
		"CREATE TABLE IF NOT EXISTS chaos (id BIGINT)",
		"CREATE INDEX IF NOT EXISTS chaos_id ON chaos (id)",
	} {
		if _, err := c.Exec(sql); err != nil {
			h.t.Fatalf("%s: %v", sql, err)
		}
	}
}

func (h *chaosHarness) dialRetry(addr string) *client.Conn {
	h.t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		c, err := client.Dial(addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// writeBatch inserts n sequential ids against the primary, journaling
// attempts and acknowledgements. Failures (the primary may be dead or
// dying) skip the id — an unacked id may legitimately be present or absent
// afterwards. Every ~50th statement is a CHECKPOINT so segment rotation
// and prune/retention interact with the stream under fire.
func (h *chaosHarness) writeBatch(n int) {
	var c *client.Conn
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		if c == nil {
			var err error
			if c, err = client.Dial(h.primaryAddr); err != nil {
				time.Sleep(20 * time.Millisecond)
				continue // the id budget shrinks while the primary is down
			}
		}
		if i > 0 && i%50 == 0 {
			if _, err := c.Exec("CHECKPOINT"); err != nil {
				c.Close()
				c = nil
				continue
			}
		}
		h.mu.Lock()
		id := h.next
		h.next++
		h.tried[id] = true
		h.mu.Unlock()
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d)", id)); err != nil {
			c.Close()
			c = nil
			continue
		}
		h.mu.Lock()
		h.acked[id] = true
		h.mu.Unlock()
	}
}

// runRound runs one scenario: writer traffic with a calamity in the middle,
// then whatever died is brought back.
func (h *chaosHarness) runRound(round int, scenario string) {
	h.t.Helper()
	if scenario == "prune-resync" {
		// Take the replica offline, roll the primary's log past its
		// retention window, and bring the replica back: it must detect the
		// pruned resume position and converge via snapshot resync.
		h.replica.killHard(h.t)
		c := h.dialRetry(h.primaryAddr)
		for i := 0; i < 12; i++ {
			h.writeBatchOn(c, 5)
			if _, err := c.Exec("CHECKPOINT"); err != nil {
				h.t.Fatalf("prune-resync checkpoint: %v", err)
			}
		}
		c.Close()
		h.replica = h.startChild("replica", h.replicaDir, h.replicaAddr, "")
		return
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		h.writeBatch(120 + h.rng.Intn(80))
	}()
	time.Sleep(time.Duration(10+h.rng.Intn(150)) * time.Millisecond)

	switch scenario {
	case "none":
	case "kill-replica":
		h.replica.killHard(h.t)
		<-writerDone
		h.replica = h.startChild("replica", h.replicaDir, h.replicaAddr, "")
	case "kill-replica-catchup":
		// Kill the replica, let the primary get ahead, then kill it AGAIN
		// almost immediately after restart — mid-catch-up.
		h.replica.killHard(h.t)
		<-writerDone
		h.replica = h.startChild("replica", h.replicaDir, h.replicaAddr, "")
		time.Sleep(time.Duration(5+h.rng.Intn(40)) * time.Millisecond)
		h.replica.killHard(h.t)
		h.replica = h.startChild("replica", h.replicaDir, h.replicaAddr, "")
	case "kill-primary":
		h.primary.killHard(h.t)
		<-writerDone
		h.primary = h.startChild("primary", h.primaryDir, h.primaryAddr, "")
	case "fault-apply", "fault-ship", "fault-ack":
		// Stream faults sever one session partway through: the armed child
		// is restarted with a one-shot fault that fires after a random
		// number of records, forcing a reconnect-and-resume under traffic.
		point := map[string]string{
			"fault-apply": "repl.apply.record",
			"fault-ship":  "repl.ship.record",
			"fault-ack":   "repl.ack",
		}[scenario]
		fault := fmt.Sprintf("%s:%d", point, 3+h.rng.Intn(40))
		if scenario == "fault-ship" {
			h.primary.killHard(h.t)
			h.primary = h.startChild("primary", h.primaryDir, h.primaryAddr, fault)
		} else {
			h.replica.killHard(h.t)
			h.replica = h.startChild("replica", h.replicaDir, h.replicaAddr, fault)
		}
		<-writerDone
	default:
		h.t.Fatalf("unknown scenario %q", scenario)
	}
	<-writerDone
}

// writeBatchOn is writeBatch against an existing connection, failing the
// test on error (used where the primary is known healthy).
func (h *chaosHarness) writeBatchOn(c *client.Conn, n int) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		h.mu.Lock()
		id := h.next
		h.next++
		h.tried[id] = true
		h.mu.Unlock()
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d)", id)); err != nil {
			h.t.Fatalf("insert %d: %v", id, err)
		}
		h.mu.Lock()
		h.acked[id] = true
		h.mu.Unlock()
	}
}

// idSet dumps the chaos table from one server.
func (h *chaosHarness) idSet(addr string) map[int64]bool {
	h.t.Helper()
	c := h.dialRetry(addr)
	defer c.Close()
	res, err := c.Exec("SELECT id FROM chaos")
	if err != nil {
		h.t.Fatalf("dump %s: %v", addr, err)
	}
	set := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		set[row[0].I] = true
	}
	return set
}

func (h *chaosHarness) metric(addr, name string) int64 {
	h.t.Helper()
	c := h.dialRetry(addr)
	defer c.Close()
	res, err := c.Exec(fmt.Sprintf(
		"SELECT value FROM system.metrics WHERE name = '%s'", name))
	if err != nil || len(res.Rows) != 1 {
		h.t.Fatalf("metric %s on %s: %v (%d rows)", name, addr, err, len(res.Rows))
	}
	return res.Rows[0][0].I
}

// verifyRound asserts the replication contract after a round's recovery.
func (h *chaosHarness) verifyRound(round int, scenario string) {
	h.t.Helper()
	primarySet := h.idSet(h.primaryAddr)

	h.mu.Lock()
	acked := make([]int64, 0, len(h.acked))
	for id := range h.acked {
		acked = append(acked, id)
	}
	tried := make(map[int64]bool, len(h.tried))
	for id := range h.tried {
		tried[id] = true
	}
	h.mu.Unlock()

	for _, id := range acked {
		if !primarySet[id] {
			h.t.Errorf("round %d (%s): ACKED COMMIT LOST on primary: id %d", round, scenario, id)
		}
	}
	for id := range primarySet {
		if !tried[id] {
			h.t.Errorf("round %d (%s): PHANTOM ROW on primary: id %d", round, scenario, id)
		}
	}

	// Convergence: the replica's contents become identical to the
	// primary's. The primary is quiescent now, so equality is stable.
	var replicaSet map[int64]bool
	deadline := time.Now().Add(60 * time.Second)
	for {
		replicaSet = h.idSet(h.replicaAddr)
		if setsEqual(primarySet, replicaSet) {
			break
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("round %d (%s): replica never converged: primary %d rows, replica %d rows",
				round, scenario, len(primarySet), len(replicaSet))
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The replicated index answers point probes on the replica.
	c := h.dialRetry(h.replicaAddr)
	probed := 0
	for id := range primarySet {
		if probed >= 5 {
			break
		}
		probed++
		res, err := c.Exec(fmt.Sprintf("SELECT COUNT(*) FROM chaos WHERE id = %d", id))
		if err != nil || res.Rows[0][0].I != 1 {
			h.t.Errorf("round %d (%s): replica index probe id %d: %v %v", round, scenario, id, err, res)
		}
	}
	c.Close()

	// Resume semantics: a restarted replica whose segments were retained
	// converges positionally (its fresh process counts zero resyncs); one
	// that outlived the retention window must have resynced.
	switch scenario {
	case "kill-replica", "kill-replica-catchup":
		if n := h.metric(h.replicaAddr, "repl_resyncs"); n != 0 {
			h.t.Errorf("round %d (%s): replica resynced %d times; retained segments should allow positional resume",
				round, scenario, n)
		}
	case "prune-resync":
		if n := h.metric(h.replicaAddr, "repl_resyncs"); n == 0 {
			h.t.Errorf("round %d (%s): replica resumed without resync despite pruned retention window", round, scenario)
		}
	}
	h.t.Logf("round %d (%s): %d tried, %d acked, %d rows converged",
		round, scenario, len(tried), len(acked), len(primarySet))
}

func setsEqual(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// promote kills the primary for good and restarts the replica's directory
// as a primary: it must serve exactly the converged (acked-inclusive)
// prefix and accept writes.
func (h *chaosHarness) promote() {
	h.t.Helper()
	converged := h.idSet(h.primaryAddr)
	h.primary.killHard(h.t)
	h.replica.stop(h.t) // clean drain: everything applied is durable

	promoted := h.startChild("primary", h.replicaDir, h.replicaAddr, "")
	defer promoted.stop(h.t)

	got := h.idSet(h.replicaAddr)
	if !setsEqual(converged, got) {
		h.t.Fatalf("promotion: promoted replica serves %d rows, want the converged %d", len(got), len(converged))
	}
	c := h.dialRetry(h.replicaAddr)
	defer c.Close()
	if _, err := c.Exec("INSERT INTO chaos VALUES (-1)"); err != nil {
		h.t.Fatalf("promotion: promoted replica rejected a write: %v", err)
	}
	res, err := c.Exec("SELECT COUNT(*) FROM chaos WHERE id = -1")
	if err != nil || res.Rows[0][0].I != 1 {
		h.t.Fatalf("promotion: write not visible: %v %v", err, res)
	}
	res, err = c.Exec("SELECT role FROM system.replication")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "primary" {
		h.t.Fatalf("promotion: system.replication = %v %v, want role primary", res, err)
	}
	h.t.Logf("promotion: %d rows served, writes accepted", len(got))
}

// ----------------------------------------------------------------- child

// TestReplChaosChild is the re-execed server process; it never runs in a
// normal test invocation. It serves one role until SIGKILLed by the parent
// or drained by SIGTERM.
func TestReplChaosChild(t *testing.T) {
	role := os.Getenv(chaosEnvRole)
	if role == "" {
		t.Skip("replication-chaos child")
	}
	dir := os.Getenv(chaosEnvDir)
	addr := os.Getenv(chaosEnvAddr)
	primaryAddr := os.Getenv(chaosEnvPrimary)

	// A fault spec "point:n" makes that injection point fail exactly once,
	// on its n-th firing — a one-shot partition mid-stream.
	if spec := os.Getenv(chaosEnvFault); spec != "" {
		parts := strings.SplitN(spec, ":", 2)
		n, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			t.Fatalf("bad fault spec %q", spec)
		}
		var count int64
		var mu sync.Mutex
		faultinject.Set(parts[0], func() error {
			mu.Lock()
			defer mu.Unlock()
			count++
			if count == n {
				return fmt.Errorf("injected chaos fault at %s #%d", parts[0], n)
			}
			return nil
		})
	}

	var opts []engine.Option
	if role == "replica" {
		opts = append(opts, engine.WithReadReplica(primaryAddr))
	}
	db, err := engine.OpenDir(dir, opts...)
	if err != nil {
		t.Fatalf("child %s: recovery failed: %v", role, err)
	}

	cfg := server.Config{Addr: addr}
	var replica *repl.Replica
	switch role {
	case "primary":
		p, err := repl.NewPrimary(db, repl.PrimaryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.ReplHandler = p
	case "replica":
		r, err := repl.StartReplica(db, primaryAddr, repl.ReplicaConfig{
			AckEvery:    10 * time.Millisecond,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		replica = r
	default:
		t.Fatalf("unknown role %q", role)
	}

	srv := server.New(db, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatalf("child %s: listen %s: %v", role, addr, err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	fmt.Println("CHILD-READY")
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		t.Fatalf("child %s: serve: %v", role, err)
	case <-sig:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("child %s: drain: %v", role, err)
	}
	<-serveErr
	if replica != nil {
		replica.Close()
	}
	if err := db.Close(); err != nil {
		t.Fatalf("child %s: close db: %v", role, err)
	}
}
