package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/retry"
	"lambdadb/internal/server/wire"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/wal"
)

// ReplicaConfig tunes the applying side.
type ReplicaConfig struct {
	// DialTimeout bounds one connection attempt. <= 0 means 5s.
	DialTimeout time.Duration
	// ReadTimeout bounds the wait for any frame from the primary. The
	// primary heartbeats every second when idle, so a quiet connection this
	// long is dead and is torn down for a reconnect. <= 0 means 15s.
	ReadTimeout time.Duration
	// AckEvery is how often durable progress is acknowledged. <= 0 means
	// 100ms.
	AckEvery time.Duration
	// BaseBackoff/MaxBackoff shape the reconnect backoff (exponential with
	// jitter). Zero values mean 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds consecutive failed sessions before Run gives up;
	// 0 means retry forever. A session that makes progress resets the count.
	MaxAttempts int
	// Logger receives structured replication-lifecycle logs (reconnects,
	// resyncs) with the primary's address as a field. Nil discards them.
	Logger *slog.Logger
}

func (c *ReplicaConfig) defaults() {
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 15 * time.Second
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 100 * time.Millisecond
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
}

// Replica maintains a streaming connection to the primary, mirrors its log,
// and applies records continuously. It reconnects with backoff on any
// failure and resumes from its own durable position; if the local log has
// diverged or fallen behind the primary's retained segments it requests a
// full snapshot resync instead.
type Replica struct {
	db      *engine.DB
	mgr     *wal.Manager
	metrics *telemetry.Metrics
	primary string
	cfg     ReplicaConfig

	cancel context.CancelFunc
	done   chan struct{}

	forceResync atomic.Bool // next handshake requests a snapshot

	mu           sync.Mutex
	state        string // "connecting", "catchup", "streaming", "resync"
	primaryPos   wal.Pos
	primaryClock uint64
	lastContact  time.Time
	connected    net.Conn // open connection, for interrupting on Close
}

// StartReplica puts db's WAL into mirror mode and begins replicating from
// primaryAddr in the background until Close is called. The caller is
// responsible for having opened db with WithReadReplica so writes are
// rejected.
func StartReplica(db *engine.DB, primaryAddr string, cfg ReplicaConfig) (*Replica, error) {
	mgr := db.WALManager()
	if mgr == nil {
		return nil, fmt.Errorf("repl: a replica requires a database opened with a data directory")
	}
	cfg.defaults()
	mgr.ReplicaMode()
	r := &Replica{
		db: db, mgr: mgr, metrics: db.Metrics(), primary: primaryAddr, cfg: cfg,
		done: make(chan struct{}), state: "connecting",
	}
	db.SetReplicationReporter(r)
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go r.run(ctx)
	return r, nil
}

// Close stops replicating and waits for the background loop to exit.
func (r *Replica) Close() {
	r.cancel()
	r.mu.Lock()
	if r.connected != nil {
		r.connected.Close()
	}
	r.mu.Unlock()
	<-r.done
}

func (r *Replica) set(fn func(*Replica)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r)
}

// ReplicationRows implements engine.ReplicationReporter: the replica's own
// progress against the primary's last-reported position.
func (r *Replica) ReplicationRows() []engine.ReplicationRow {
	pos := r.mgr.DurablePos()
	clock := r.db.Store().Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	contact := int64(-1)
	if !r.lastContact.IsZero() {
		contact = time.Since(r.lastContact).Milliseconds()
	}
	return []engine.ReplicationRow{{
		Role: "replica", Peer: r.primary, State: r.state, Epoch: r.mgr.Epoch(),
		WalSeg: pos.Seg, WalOff: pos.Off,
		AppliedClock: clock, PrimaryClock: r.primaryClock,
		LastContact: contact,
	}}
}

// run dials, streams, and reconnects until the context is cancelled.
func (r *Replica) run(ctx context.Context) {
	defer close(r.done)
	bo := retry.Backoff{Base: r.cfg.BaseBackoff, Max: r.cfg.MaxBackoff}
	attempt := 0
	for ctx.Err() == nil {
		progressed, err := r.session(ctx)
		if ctx.Err() != nil {
			return
		}
		if progressed {
			attempt = 0
		}
		if err != nil {
			r.metrics.ReplReconnects.Add(1)
			r.cfg.Logger.Warn("replication stream broken, reconnecting",
				"primary", r.primary, "attempt", attempt+1, "err", err.Error())
			attempt++
			if r.cfg.MaxAttempts > 0 && attempt >= r.cfg.MaxAttempts {
				r.set(func(r *Replica) { r.state = "failed" })
				r.cfg.Logger.Error("replication gave up after repeated failures",
					"primary", r.primary, "attempts", attempt)
				return
			}
			r.set(func(r *Replica) { r.state = "connecting" })
			if err := bo.Sleep(ctx, attempt-1); err != nil {
				return
			}
		}
	}
}

// session runs one connection lifecycle: dial, handshake with the resume
// position, then apply frames until something breaks. It reports whether
// any record was applied or snapshot installed (for backoff reset).
func (r *Replica) session(ctx context.Context) (progressed bool, err error) {
	d := net.Dialer{Timeout: r.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", r.primary)
	if err != nil {
		return false, err
	}
	defer nc.Close()
	r.set(func(r *Replica) { r.connected = nc })
	defer r.set(func(r *Replica) { r.connected = nil })

	pos := r.mgr.DurablePos()
	clock := r.db.Store().Snapshot()
	if r.forceResync.Swap(false) {
		pos, clock = wal.Pos{}, 0 // zero position asks for a snapshot
	}
	// The epoch always rides along — even on a resync request — so a stale
	// ex-primary learns it is fenced instead of rolling us backwards.
	epoch := r.mgr.Epoch()
	if err := nc.SetWriteDeadline(time.Now().Add(r.cfg.DialTimeout)); err != nil {
		return false, err
	}
	if err := wire.WriteFrame(nc, wire.ReplStart, encodeHandshake(pos, clock, epoch)); err != nil {
		return false, err
	}
	if err := nc.SetWriteDeadline(time.Time{}); err != nil {
		return false, err
	}
	r.set(func(r *Replica) { r.state = "catchup" })

	// Acker: periodically report the durable position so the primary can
	// advance its retention floor. Runs until the socket dies.
	ackCtx, stopAcker := context.WithCancel(ctx)
	ackerDone := make(chan struct{})
	defer func() { stopAcker(); <-ackerDone }()
	go func() {
		defer close(ackerDone)
		tick := time.NewTicker(r.cfg.AckEvery)
		defer tick.Stop()
		// Also wake on durability advances: with semi-synchronous replication
		// the primary's commit latency is bounded by how promptly we ack, so
		// waiting out the full tick would put AckEvery on every commit.
		sub, cancelSub := r.mgr.SubscribeDurable()
		defer func() { cancelSub() }()
		var lastPos wal.Pos
		var lastClock uint64
		for {
			select {
			case <-ackCtx.Done():
				return
			case <-tick.C:
				if sub == nil {
					// The durable subscription died (the log was swapped by a
					// resync, or closed). Re-arm it at tick cadence so a
					// permanently closed log cannot spin this loop.
					sub, cancelSub = r.mgr.SubscribeDurable()
				}
			case _, ok := <-sub:
				if !ok {
					cancelSub()
					sub = nil
					continue
				}
			}
			p := r.mgr.DurablePos()
			c := r.db.Store().Snapshot()
			if p == lastPos && c == lastClock {
				continue
			}
			if err := faultinject.Fire("repl.ack"); err != nil {
				nc.Close()
				return
			}
			if err := nc.SetWriteDeadline(time.Now().Add(r.cfg.DialTimeout)); err != nil {
				nc.Close()
				return
			}
			if err := wire.WriteFrame(nc, wire.ReplAck, encodePosPayload("ACK", p, c, r.mgr.Epoch())); err != nil {
				nc.Close()
				return
			}
			lastPos, lastClock = p, c
		}
	}()

	br := bufio.NewReaderSize(nc, 256<<10)
	// The primary's first frame is a POS announcing its epoch; nothing else
	// — in particular no snapshot — is accepted before that epoch has been
	// checked against ours. A primary on an older epoch is stale (we, or a
	// peer we replicated from, were promoted past it) and its entire session
	// is refused.
	fenced := false
	for {
		if err := nc.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout)); err != nil {
			return progressed, err
		}
		typ, payload, err := wire.ReadFrameLimit(br, wire.MaxReplFrame)
		if err != nil {
			return progressed, err
		}
		r.set(func(r *Replica) { r.lastContact = time.Now() })
		if !fenced && typ != wire.ReplPos && typ != wire.Error {
			return progressed, fmt.Errorf("repl: primary sent frame type %q before announcing its epoch", typ)
		}

		switch typ {
		case wire.ReplSeg:
			seq, err := parseSeg(payload)
			if err != nil {
				return progressed, err
			}
			if err := r.enterSegment(seq); err != nil {
				return progressed, err
			}

		case wire.ReplRecord:
			if err := r.applyRecord(payload); err != nil {
				return progressed, err
			}
			progressed = true

		case wire.ReplPos:
			pos, clock, primaryEpoch, err := parsePosPayload("POS", payload)
			if err != nil {
				return progressed, err
			}
			if local := r.mgr.Epoch(); primaryEpoch < local {
				return progressed, fmt.Errorf("repl: refusing stream from stale primary %s: its epoch %d is behind local epoch %d",
					r.primary, primaryEpoch, local)
			}
			fenced = true
			r.set(func(r *Replica) {
				r.primaryPos, r.primaryClock, r.state = pos, clock, "streaming"
			})

		case wire.ReplResync:
			if err := r.installSnapshot(br, payload); err != nil {
				// A half-installed snapshot leaves no usable local state;
				// start over from scratch.
				r.forceResync.Store(true)
				return progressed, err
			}
			progressed = true
			r.set(func(r *Replica) { r.state = "catchup" })

		case wire.Error:
			return progressed, fmt.Errorf("repl: primary refused stream: %s", payload)

		default:
			return progressed, fmt.Errorf("repl: unexpected frame type %q from primary", typ)
		}
	}
}

// enterSegment handles a ReplSeg announcement: a repeat of the active
// segment is a no-op (resume mid-segment), the next sequence is a rotation,
// anything else means the logs no longer line up.
func (r *Replica) enterSegment(seq uint64) error {
	active := r.mgr.DurablePos().Seg
	switch {
	case seq == active:
		return nil
	case seq == active+1:
		if err := r.mgr.SealMirror(seq); err != nil {
			r.forceResync.Store(true)
			return err
		}
		// Everything in the sealed segments is applied; checkpoint so
		// restarts recover from the image instead of replaying history,
		// and the mirror doesn't grow without bound.
		if _, err := r.mgr.SnapshotPrune(); err != nil {
			return err
		}
		return nil
	default:
		r.forceResync.Store(true)
		return fmt.Errorf("%w: primary announced segment %d, local log is at %d", wal.ErrDiverged, seq, active)
	}
}

// applyRecord mirrors one shipped record into the local log and applies it
// to the store. The mirror append verifies CRC and end offset against the
// primary's framing; any mismatch flags divergence and forces a resync.
func (r *Replica) applyRecord(payload []byte) error {
	endOff, crc, rec, err := parseRecordPayload(payload)
	if err != nil {
		return err
	}
	if err := faultinject.Fire("repl.apply.record"); err != nil {
		return err
	}
	_, err = r.mgr.AppendMirror(rec, endOff, crc)
	if err != nil {
		r.forceResync.Store(true)
		return err
	}
	// Don't block on durability here: the flusher makes the append durable
	// in the background and the acker reports only durable positions, so
	// the primary never trusts more than what is actually on disk.
	applied, err := r.mgr.ApplyStreamed(rec)
	if err != nil {
		r.forceResync.Store(true)
		return err
	}
	if applied {
		r.metrics.ReplRecordsApplied.Add(1)
	} else {
		r.metrics.ReplRecordsSkipped.Add(1)
	}
	clock := r.db.Store().Snapshot()
	r.metrics.WalAppliedClock.Store(int64(clock))
	// How far this apply still trailed the primary's last-reported clock:
	// the per-record view of replication lag.
	r.mu.Lock()
	lag := int64(r.primaryClock) - int64(clock)
	r.mu.Unlock()
	if lag < 0 {
		lag = 0
	}
	r.metrics.Hist().RecordReplApplyLag(lag)
	return nil
}

// installSnapshot consumes a RESYNC header plus its chunk frames and
// replaces the local state wholesale.
func (r *Replica) installSnapshot(br *bufio.Reader, header []byte) error {
	startSeg, size, clock, epoch, err := parseResync(header)
	if err != nil {
		return err
	}
	if local := r.mgr.Epoch(); epoch < local {
		// Unreachable while the session-level fence holds (the primary's
		// epoch was already validated), but a snapshot install is the one
		// operation that discards local history — double-check it.
		return fmt.Errorf("repl: refusing snapshot from stale primary %s: its epoch %d is behind local epoch %d",
			r.primary, epoch, local)
	}
	r.set(func(r *Replica) { r.state = "resync" })
	cr := &chunkReader{br: br, remaining: size, bump: func() error {
		// Chunks can take a while on a big image; keep the read deadline
		// moving so a live transfer isn't killed by the frame timeout.
		return r.setReadDeadline()
	}}
	if err := r.mgr.ResetForResync(cr, startSeg); err != nil {
		return err
	}
	if got := r.db.Store().Snapshot(); got != clock {
		return fmt.Errorf("repl: resync image clock %d, expected %d", got, clock)
	}
	// The image carries state, not log records, so the primary's epoch
	// arrives out of band in the RESYNC header; adopt it now that the
	// install succeeded.
	r.mgr.AdoptEpoch(epoch)
	r.metrics.ReplResyncs.Add(1)
	r.metrics.WalAppliedClock.Store(int64(clock))
	r.cfg.Logger.Info("snapshot resync installed",
		"primary", r.primary, "clock", clock, "start_seg", startSeg, "bytes", size)
	return nil
}

func (r *Replica) setReadDeadline() error {
	r.mu.Lock()
	nc := r.connected
	r.mu.Unlock()
	if nc == nil {
		return fmt.Errorf("repl: connection closed")
	}
	return nc.SetReadDeadline(time.Now().Add(r.cfg.ReadTimeout))
}

// chunkReader presents a stream of ReplChunk frames as an io.Reader over
// exactly `remaining` snapshot bytes.
type chunkReader struct {
	br        *bufio.Reader
	remaining int64
	buf       []byte
	bump      func() error
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.buf) == 0 {
		if c.remaining <= 0 {
			return 0, io.EOF
		}
		if err := c.bump(); err != nil {
			return 0, err
		}
		typ, payload, err := wire.ReadFrameLimit(c.br, wire.MaxReplFrame)
		if err != nil {
			return 0, err
		}
		if typ != wire.ReplChunk {
			return 0, fmt.Errorf("repl: expected snapshot chunk, got frame type %q", typ)
		}
		if int64(len(payload)) > c.remaining {
			return 0, fmt.Errorf("repl: snapshot overran its declared size by %d bytes", int64(len(payload))-c.remaining)
		}
		c.remaining -= int64(len(payload))
		c.buf = payload
	}
	n := copy(p, c.buf)
	c.buf = c.buf[n:]
	return n, nil
}
