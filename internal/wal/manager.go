package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/persist"
	"lambdadb/internal/storage"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
)

// snapshotFile is the checkpoint image's name within the data directory.
const snapshotFile = "snapshot.db"

// Options configures Open.
type Options struct {
	// Metrics receives the durability counters (wal_appends, wal_fsyncs,
	// wal_bytes, checkpoints). A nil Metrics gets a private, unobserved set.
	Metrics *telemetry.Metrics
	// Logger, when set, receives a structured recovery summary at Open.
	Logger *slog.Logger
}

// RecoverySummary reports what Open found and did while recovering a data
// directory. The server and shell surface it at startup so an operator can
// see at a glance whether a crash was recovered from and how.
type RecoverySummary struct {
	SnapshotLoaded    bool   // a checkpoint image was loaded
	SnapshotClock     uint64 // the image's commit-clock cut (0 when fresh)
	Segments          int    // log segments scanned
	CommitsReplayed   int    // commit records re-applied
	DDLReplayed       int    // CREATE/DROP TABLE records re-applied
	RecordsSkipped    int    // records already covered by the snapshot or a dead incarnation
	TornTailTruncated bool   // the final segment ended in a torn record and was truncated
	TornSegment       string // segment file name of the torn tail
	TornOffset        int64  // byte offset the segment was truncated to
	TornReason        string // why the tail record was rejected
	Epoch             uint64 // highest cluster epoch seen in the log (0 when never fenced)
}

// String renders the summary as one human-readable line.
func (s RecoverySummary) String() string {
	if !s.SnapshotLoaded && s.Segments == 0 {
		return "fresh data directory (no snapshot, no log)"
	}
	out := fmt.Sprintf("recovered: snapshot clock %d, %d segment(s), %d commit(s) and %d DDL replayed, %d record(s) skipped",
		s.SnapshotClock, s.Segments, s.CommitsReplayed, s.DDLReplayed, s.RecordsSkipped)
	if s.TornTailTruncated {
		out += fmt.Sprintf("; torn tail in %s truncated to byte %d (%s)", s.TornSegment, s.TornOffset, s.TornReason)
	}
	return out
}

// CheckpointStats reports one completed checkpoint.
type CheckpointStats struct {
	Clock           uint64 // the commit clock the image captures
	SegmentsRemoved int    // old log segments pruned
}

// Manager owns a data directory: the active redo log, the checkpoint
// image, and the recovery summary. It implements storage.CommitLogger, so
// installing it on a store makes every commit and schema change durable.
type Manager struct {
	dir     string
	store   *storage.Store
	metrics *telemetry.Metrics
	summary RecoverySummary

	// epoch is the cluster fencing epoch: the highest epoch record durable
	// in this log. It only moves forward (see SetEpoch / AdoptEpoch).
	epoch atomic.Uint64

	// commitWaiter, when set, is called after a record is locally durable
	// with the position its frame ends at; it blocks the commit ack until
	// the record is replicated (semi-synchronous replication).
	commitWaiter atomic.Pointer[CommitWaiter]

	mu     sync.Mutex // serializes Checkpoint, resync, and Close
	closed bool

	// retainer, when set, holds sealed segments back from checkpoint
	// pruning while a replica still needs them (see SetSegmentRetainer).
	retainer SegmentRetainer

	// logMu guards the log pointer, which a replica's snapshot resync
	// (ResetForResync) swaps while other goroutines read positions.
	logMu sync.RWMutex
	log   *log
}

// activeLog returns the current log under the pointer lock.
func (m *Manager) activeLog() *log {
	m.logMu.RLock()
	defer m.logMu.RUnlock()
	return m.log
}

// Open recovers the data directory and returns the recovered store with a
// Manager installed as its commit logger:
//
//  1. load the checkpoint image, if any (a missing image is a fresh start;
//     an unreadable or corrupt one is a hard error — never silently
//     reinitialized over),
//  2. replay the log segments in sequence order, skipping records the
//     image already covers and enforcing commit-timestamp contiguity,
//  3. truncate a torn final record (a crash mid-append is expected;
//     damage anywhere else is an *AmbiguousStateError),
//  4. reopen the last segment for appending.
func Open(dir string, opts Options) (*storage.Store, *Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &telemetry.Metrics{}
	}

	var summary RecoverySummary
	store, err := persist.LoadFile(filepath.Join(dir, snapshotFile))
	switch {
	case err == nil:
		summary.SnapshotLoaded = true
		summary.SnapshotClock = store.Snapshot()
	case errors.Is(err, fs.ErrNotExist):
		store = storage.NewStore()
	default:
		return nil, nil, fmt.Errorf("wal: load checkpoint image: %w", err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	summary.Segments = len(segs)

	for i, seg := range segs {
		last := i == len(segs)-1
		res, err := scanSegment(dir, seg, last, func(payload []byte) error {
			return replayRecord(dir, seg, store, summary.SnapshotClock, &summary, payload)
		})
		if err != nil {
			return nil, nil, err
		}
		if res.torn {
			// A crash mid-append legitimately tears the tail of the last
			// segment: drop the torn record and make the truncation durable
			// before any new append can land after it.
			if err := truncateSegment(dir, seg.path, res.goodOffset); err != nil {
				return nil, nil, err
			}
			summary.TornTailTruncated = true
			summary.TornSegment = filepath.Base(seg.path)
			summary.TornOffset = res.goodOffset
			summary.TornReason = res.tornReason
		}
	}

	activeSeq := uint64(1)
	if len(segs) > 0 {
		activeSeq = segs[len(segs)-1].seq
	}
	l, err := openLog(dir, activeSeq, metrics)
	if err != nil {
		return nil, nil, err
	}

	m := &Manager{dir: dir, store: store, metrics: metrics, summary: summary, log: l}
	m.epoch.Store(summary.Epoch)
	store.SetCommitLogger(m)
	if opts.Logger != nil {
		opts.Logger.Info("recovery complete",
			"dir", dir,
			"snapshot_loaded", summary.SnapshotLoaded,
			"snapshot_clock", summary.SnapshotClock,
			"segments", summary.Segments,
			"commits_replayed", summary.CommitsReplayed,
			"ddl_replayed", summary.DDLReplayed,
			"records_skipped", summary.RecordsSkipped,
			"torn_tail_truncated", summary.TornTailTruncated)
	}
	return store, m, nil
}

// replayRecord decodes and re-applies one log record during recovery.
func replayRecord(dir string, seg segmentInfo, store *storage.Store, snapClock uint64, summary *RecoverySummary, payload []byte) error {
	if err := faultinject.Fire("wal.replay.record"); err != nil {
		return err
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		// The payload passed its CRC, so this is a format disagreement, not
		// disk damage — refusing is the only safe move.
		return fmt.Errorf("wal: segment %s: undecodable record: %w", filepath.Base(seg.path), err)
	}
	segName := filepath.Base(seg.path)
	switch rec.kind {
	case recCommit:
		if rec.commit.TS <= snapClock {
			// Already captured by the checkpoint image.
			summary.RecordsSkipped++
			return nil
		}
		if err := store.ApplyLoggedCommit(rec.commit); err != nil {
			return &AmbiguousStateError{Dir: dir, Segment: segName, Reason: err.Error()}
		}
		summary.CommitsReplayed++
	case recCreateTable:
		// DDL records carry no timestamp; a CREATE logged just before the
		// checkpoint image was cut is both in the image and in the log, so
		// replay is idempotent on the incarnation ID.
		if t, err := store.Table(rec.name); err == nil {
			if t.ID() == rec.id {
				summary.RecordsSkipped++
				return nil
			}
			return &AmbiguousStateError{
				Dir: dir, Segment: segName,
				Reason: fmt.Sprintf("logged CREATE TABLE %q id %d, but the store holds incarnation %d",
					rec.name, rec.id, t.ID()),
			}
		}
		if _, err := store.CreateTableWithID(rec.name, rec.schema, rec.id); err != nil {
			return &AmbiguousStateError{Dir: dir, Segment: segName, Reason: err.Error()}
		}
		summary.DDLReplayed++
	case recDropTable:
		t, err := store.Table(rec.name)
		if err != nil || t.ID() != rec.id {
			// The incarnation is already gone (image cut after the drop).
			summary.RecordsSkipped++
			return nil
		}
		if err := store.DropTable(rec.name); err != nil {
			return &AmbiguousStateError{Dir: dir, Segment: segName, Reason: err.Error()}
		}
		summary.DDLReplayed++
	case recCreateIndex:
		t, err := store.Table(rec.name)
		if err != nil || t.ID() != rec.id {
			// The table incarnation is gone; the index died with it.
			summary.RecordsSkipped++
			return nil
		}
		// Index DDL carries no timestamp, so a CREATE INDEX logged around a
		// checkpoint cut may be both in the image and in the log: replay is
		// idempotent on an identical definition. A same-name index with a
		// different definition means log and image diverged.
		if existing, ok := findIndexDef(t, rec.index); ok {
			if existing.Column == rec.column && existing.Kind == rec.ikind {
				summary.RecordsSkipped++
				return nil
			}
			return &AmbiguousStateError{
				Dir: dir, Segment: segName,
				Reason: fmt.Sprintf("logged CREATE INDEX %q on %s(%s) USING %s, but the store holds %s(%s) USING %s",
					rec.index, rec.name, rec.column, rec.ikind,
					existing.Table, existing.Column, existing.Kind),
			}
		}
		def := storage.IndexDef{Name: rec.index, Table: rec.name, Column: rec.column, Kind: rec.ikind}
		if err := store.CreateIndex(def); err != nil {
			return &AmbiguousStateError{Dir: dir, Segment: segName, Reason: err.Error()}
		}
		summary.DDLReplayed++
	case recDropIndex:
		t, err := store.Table(rec.name)
		if err != nil || t.ID() != rec.id {
			summary.RecordsSkipped++
			return nil
		}
		if _, ok := findIndexDef(t, rec.index); !ok {
			// Already gone (image cut after the drop).
			summary.RecordsSkipped++
			return nil
		}
		if err := store.DropIndex(rec.index); err != nil {
			return &AmbiguousStateError{Dir: dir, Segment: segName, Reason: err.Error()}
		}
		summary.DDLReplayed++
	case recEpoch:
		// Epoch records only move the fencing epoch forward; an older one
		// (possible after a demoted primary's segments are replayed behind a
		// newer bump) is inert.
		if rec.epoch > summary.Epoch {
			summary.Epoch = rec.epoch
		}
	}
	return nil
}

// findIndexDef returns the named index's definition on t, if present.
func findIndexDef(t *storage.Table, name string) (storage.IndexDef, bool) {
	for _, def := range t.IndexDefs() {
		if def.Name == name {
			return def, true
		}
	}
	return storage.IndexDef{}, false
}

// truncateSegment cuts a segment back to off and makes the cut durable.
func truncateSegment(dir, path string, off int64) error {
	if err := os.Truncate(path, off); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

// Summary returns what recovery found and did.
func (m *Manager) Summary() RecoverySummary { return m.summary }

// CommitWaiter blocks until the record ending at pos is replicated (or the
// replication guarantee is otherwise satisfied). Installed by the semi-sync
// layer via SetCommitWaiter; called after the record is locally durable.
type CommitWaiter func(pos Pos) error

// SetCommitWaiter installs (or, with nil, removes) the post-durability
// replication wait applied to every logged record before its commit is
// acknowledged.
func (m *Manager) SetCommitWaiter(w CommitWaiter) {
	if w == nil {
		m.commitWaiter.Store(nil)
		return
	}
	m.commitWaiter.Store(&w)
}

// waitReplicated applies the installed commit waiter, if any.
func (m *Manager) waitReplicated(pos Pos) error {
	if w := m.commitWaiter.Load(); w != nil {
		return (*w)(pos)
	}
	return nil
}

// LogCommit implements storage.CommitLogger: it appends the commit's redo
// record (called under the commit lock, so append order is commit order)
// and returns the group-commit durability wait. The time a committer parks
// in that wait feeds the commit_wait stage histogram — the durability share
// of end-to-end DML latency.
func (m *Manager) LogCommit(c *storage.CommitData) (func() error, error) {
	lsn, end, err := m.activeLog().append(encodeCommit(c))
	if err != nil {
		return nil, err
	}
	return func() error {
		waitStart := time.Now()
		err := m.activeLog().waitDurable(lsn)
		m.metrics.Hist().RecordCommitWait(time.Since(waitStart).Nanoseconds())
		if err != nil {
			return err
		}
		return m.waitReplicated(end)
	}, nil
}

// LogCreateTable implements storage.CommitLogger.
func (m *Manager) LogCreateTable(name string, schema types.Schema, id uint64) (func() error, error) {
	lsn, end, err := m.activeLog().append(encodeCreateTable(name, schema, id))
	if err != nil {
		return nil, err
	}
	return m.durableThenReplicated(lsn, end), nil
}

// LogDropTable implements storage.CommitLogger.
func (m *Manager) LogDropTable(name string, id uint64) (func() error, error) {
	lsn, end, err := m.activeLog().append(encodeDropTable(name, id))
	if err != nil {
		return nil, err
	}
	return m.durableThenReplicated(lsn, end), nil
}

// LogCreateIndex implements storage.CommitLogger.
func (m *Manager) LogCreateIndex(def storage.IndexDef, tableID uint64) (func() error, error) {
	lsn, end, err := m.activeLog().append(encodeCreateIndex(def, tableID))
	if err != nil {
		return nil, err
	}
	return m.durableThenReplicated(lsn, end), nil
}

// LogDropIndex implements storage.CommitLogger.
func (m *Manager) LogDropIndex(index, table string, tableID uint64) (func() error, error) {
	lsn, end, err := m.activeLog().append(encodeDropIndex(index, table, tableID))
	if err != nil {
		return nil, err
	}
	return m.durableThenReplicated(lsn, end), nil
}

// durableThenReplicated is the wait shared by the DDL log hooks: local
// group-commit durability, then the semi-sync replication wait.
func (m *Manager) durableThenReplicated(lsn uint64, end Pos) func() error {
	return func() error {
		if err := m.activeLog().waitDurable(lsn); err != nil {
			return err
		}
		return m.waitReplicated(end)
	}
}

// Epoch returns the cluster fencing epoch: the highest epoch record known
// durable in this log (0 when the node has never been fenced).
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// SetEpoch bumps the fencing epoch: it appends an epoch record, waits for
// it to be durable, and only then exposes the new value. Promotion calls it
// before accepting the first write, so a node that claims an epoch and then
// crashes still claims it after recovery. The epoch is strictly monotonic.
func (m *Manager) SetEpoch(e uint64) error {
	if cur := m.epoch.Load(); e <= cur {
		return fmt.Errorf("wal: epoch %d does not advance the current epoch %d", e, cur)
	}
	lsn, _, err := m.activeLog().append(encodeEpoch(e))
	if err != nil {
		return err
	}
	if err := m.activeLog().waitDurable(lsn); err != nil {
		return err
	}
	m.epoch.Store(e)
	return nil
}

// AdoptEpoch raises the in-memory epoch to e when higher, without logging a
// record. The replica apply loop uses it for streamed epoch records (the
// record is already in the mirror log) and resync uses it for the epoch
// carried by the shipped snapshot's stream position.
func (m *Manager) AdoptEpoch(e uint64) {
	for {
		cur := m.epoch.Load()
		if e <= cur || m.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Checkpoint writes a durable physical snapshot and prunes the log behind
// it:
//
//  1. rotate the log under the store's commit lock, capturing the commit
//     clock C — every record with a timestamp at or below C now sits in a
//     sealed segment, every later record in the new one,
//  2. write the physical image as of C (atomic tmp+fsync+rename, so the
//     previous image survives any failure),
//  3. prune the sealed segments, oldest first with the directory fsynced
//     after each removal, so a crash mid-prune leaves a contiguous run.
//
// A crash between any two steps recovers: the image and the log overlap
// rather than gap, and replay skips records the image already covers.
func (m *Manager) Checkpoint() (CheckpointStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return CheckpointStats{}, fmt.Errorf("wal: manager is closed")
	}
	if err := faultinject.Fire("wal.checkpoint"); err != nil {
		return CheckpointStats{}, err
	}

	var clock uint64
	var epochLSN uint64
	var rerr error
	m.store.WithCommitLock(func(c uint64) {
		clock = c
		if rerr = m.activeLog().rotate(); rerr != nil {
			return
		}
		// Re-announce the fencing epoch at the head of the fresh segment:
		// the prune below may remove the only segment carrying it, and the
		// snapshot image does not record epochs.
		if e := m.epoch.Load(); e > 0 {
			epochLSN, _, rerr = m.activeLog().append(encodeEpoch(e))
		}
	})
	if rerr != nil {
		return CheckpointStats{}, fmt.Errorf("wal: rotate log: %w", rerr)
	}
	if epochLSN != 0 {
		// The epoch record must be durable before older segments disappear,
		// or a crash mid-prune could forget the epoch entirely.
		if err := m.activeLog().waitDurable(epochLSN); err != nil {
			return CheckpointStats{}, err
		}
	}

	if err := faultinject.Fire("wal.checkpoint.snapshot"); err != nil {
		return CheckpointStats{}, err
	}
	if err := persist.SavePhysicalFile(m.store, filepath.Join(m.dir, snapshotFile), clock); err != nil {
		return CheckpointStats{}, fmt.Errorf("wal: write checkpoint image: %w", err)
	}

	if err := faultinject.Fire("wal.checkpoint.prune"); err != nil {
		return CheckpointStats{}, err
	}
	segs, err := listSegments(m.dir)
	if err != nil {
		return CheckpointStats{}, err
	}
	// A connected replica may still need sealed segments the image now
	// covers: prune only below the retention floor, never the active one.
	keep := m.pruneFloor(m.activeLog().activeSeq())
	removed := 0
	for _, seg := range segs {
		if seg.seq >= keep {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return CheckpointStats{}, err
		}
		if err := syncDir(m.dir); err != nil {
			return CheckpointStats{}, err
		}
		removed++
	}
	m.metrics.Checkpoints.Add(1)
	return CheckpointStats{Clock: clock, SegmentsRemoved: removed}, nil
}

// Close drains and fsyncs the log and stops the flusher. The manager stays
// installed as the store's commit logger, so a commit attempted after
// Close fails cleanly instead of silently skipping durability.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.activeLog().close()
}
