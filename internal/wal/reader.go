package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
)

// Pos is a physical position in the write-ahead log: a segment sequence
// number and a byte offset within that segment. Positions are totally
// ordered and survive restarts (unlike record LSNs, which count records
// per process lifetime), so replication resumes by Pos.
type Pos struct {
	Seg uint64
	Off int64
}

// Less reports whether p is strictly before q in the log.
func (p Pos) Less(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// IsZero reports whether p is the zero position ("from the beginning").
func (p Pos) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

func (p Pos) String() string { return fmt.Sprintf("seg %d off %d", p.Seg, p.Off) }

// SegmentStart returns the position of the first record in segment seq
// (just past the segment header).
func SegmentStart(seq uint64) Pos { return Pos{Seg: seq, Off: segHeaderLen} }

// ErrSegmentGone reports that a segment the reader wanted no longer
// exists — a checkpoint pruned it. The replication shipper treats it as
// "this replica fell too far behind" and falls back to a snapshot resync.
var ErrSegmentGone = errors.New("wal: segment has been pruned")

// ReadSegmentRecords reads whole records from segment seq of dir, starting
// at byte offset from (which must be a record boundary at or past the
// segment header) and stopping at limit (limit < 0 means the current end
// of file — only safe for sealed segments; for the active segment pass
// the durable offset so the scan never races the appender). Each record's
// payload is handed to fn along with the offset just past it; the payload
// is only valid during the call.
//
// It returns the offset reached. Damage below the limit — a torn frame or
// CRC mismatch in bytes that were reported durable — is returned as an
// *AmbiguousStateError; a missing segment file as ErrSegmentGone.
func ReadSegmentRecords(dir string, seq uint64, from, limit int64, fn func(payload []byte, next int64) error) (int64, error) {
	path := segmentPath(dir, seq)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return from, fmt.Errorf("%w (segment %d)", ErrSegmentGone, seq)
		}
		return from, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return from, err
	}
	if limit < 0 || limit > st.Size() {
		// The file may legitimately be longer than the caller's limit (the
		// appender is ahead of the durable offset); it being shorter than
		// the limit means durable bytes are missing.
		if limit > st.Size() {
			return from, &AmbiguousStateError{
				Dir: dir, Segment: fmt.Sprintf("wal-%08d.log", seq), Offset: st.Size(),
				Reason: fmt.Sprintf("segment is %d bytes, expected at least %d", st.Size(), limit),
			}
		}
		limit = st.Size()
	}
	if from < segHeaderLen {
		return from, fmt.Errorf("wal: read offset %d is inside the segment header", from)
	}
	if from > limit {
		return from, fmt.Errorf("wal: read offset %d past limit %d in segment %d", from, limit, seq)
	}
	if from == limit {
		return from, nil
	}

	// Stream the range rather than slurping it: a sealed segment can be
	// large, and the shipper calls this per connected replica.
	name := fmt.Sprintf("wal-%08d.log", seq)
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return from, err
	}
	br := bufio.NewReaderSize(io.LimitReader(f, limit-from), 256<<10)
	off := from
	var hdr [frameHeader]byte
	var payload []byte
	for off < limit {
		remaining := limit - off
		if remaining < frameHeader {
			return off, &AmbiguousStateError{
				Dir: dir, Segment: name, Offset: off,
				Reason: fmt.Sprintf("%d trailing bytes below the durable limit, too short for a record header", remaining),
			}
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, err
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:]))
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecordLen {
			return off, &AmbiguousStateError{
				Dir: dir, Segment: name, Offset: off,
				Reason: fmt.Sprintf("implausible record length %d", length),
			}
		}
		if remaining-frameHeader < length {
			return off, &AmbiguousStateError{
				Dir: dir, Segment: name, Offset: off,
				Reason: fmt.Sprintf("record length %d but only %d durable bytes remain", length, remaining-frameHeader),
			}
		}
		if int64(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, err
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			return off, &AmbiguousStateError{
				Dir: dir, Segment: name, Offset: off,
				Reason: fmt.Sprintf("record checksum mismatch (stored %08x, computed %08x)", want, got),
			}
		}
		off += frameHeader + length
		if err := fn(payload, off); err != nil {
			return off, err
		}
	}
	return off, nil
}

// RecordCRC returns the checksum the log frames a payload with; the
// replication stream carries it end to end so a replica can verify each
// record against the primary's framing before mirroring it.
func RecordCRC(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }
