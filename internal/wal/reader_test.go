package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"lambdadb/internal/telemetry"
)

// appendDurable appends a payload and waits for it to reach disk, returning
// the end offset.
func appendDurable(t *testing.T, l *log, payload []byte) int64 {
	t.Helper()
	lsn, end, err := l.append(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.waitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	return end.Off
}

// collectRecords reads the given range and returns the payload copies.
func collectRecords(t *testing.T, dir string, seq uint64, from, limit int64) [][]byte {
	t.Helper()
	var got [][]byte
	_, err := ReadSegmentRecords(dir, seq, from, limit, func(p []byte, _ int64) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestReadSegmentRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()

	var want [][]byte
	var offsets []int64
	for i := 0; i < 5; i++ {
		p := bytes.Repeat([]byte{byte('a' + i)}, 10*(i+1))
		want = append(want, p)
		offsets = append(offsets, appendDurable(t, l, p))
	}

	got := collectRecords(t, dir, 1, segHeaderLen, l.durablePos().Off)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// Resume from any record boundary: reading from offsets[2] yields the
	// remaining two records.
	tail := collectRecords(t, dir, 1, offsets[2], l.durablePos().Off)
	if len(tail) != 2 || !bytes.Equal(tail[0], want[3]) {
		t.Fatalf("resume read = %d records, want records 3..4", len(tail))
	}
}

func TestReadSegmentRecordsHeaderOnlySegment(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()

	// A freshly-opened segment holds only its header; a full-range read
	// yields no records and stays at the start position.
	next, err := ReadSegmentRecords(dir, 1, segHeaderLen, -1, func([]byte, int64) error {
		t.Fatal("header-only segment produced a record")
		return nil
	})
	if err != nil || next != segHeaderLen {
		t.Fatalf("header-only read: next=%d err=%v, want %d nil", next, err, segHeaderLen)
	}
}

func TestReadSegmentRecordsConcurrentAppend(t *testing.T) {
	// A reader bounded by the durable offset never sees torn or in-flight
	// bytes, no matter how the appender races it.
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	appendDurable(t, l, []byte("seed"))

	const total = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, _, err := l.append(bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Tail the segment the way the replication shipper does: read from the
	// last position reached up to the current durable offset, repeatedly,
	// while the appender races ahead.
	read, from := 0, int64(segHeaderLen)
	for read < total+1 {
		durable := l.durablePos().Off
		if durable == from {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		next, err := ReadSegmentRecords(dir, 1, from, durable, func(p []byte, _ int64) error {
			read++
			return nil
		})
		if err != nil {
			t.Fatalf("read under concurrent append: %v", err)
		}
		if next != durable {
			t.Fatalf("read stopped at %d, want durable limit %d", next, durable)
		}
		from = next
	}
	wg.Wait()
	if read != total+1 { // +1 for the seed record
		t.Fatalf("tailed %d records, want %d", read, total+1)
	}
}

func TestReadSegmentRecordsSealedMidRead(t *testing.T) {
	// Sealing (rotating away from) a segment mid-read is harmless: sealed
	// bytes are immutable, so a reader holding the old sequence finishes
	// against a complete, stable file.
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	for i := 0; i < 10; i++ {
		appendDurable(t, l, []byte(fmt.Sprintf("record-%d", i)))
	}

	n := 0
	_, err = ReadSegmentRecords(dir, 1, segHeaderLen, -1, func(p []byte, _ int64) error {
		if n == 3 { // seal under the reader's feet
			if err := l.rotate(); err != nil {
				t.Fatal(err)
			}
			appendDurable(t, l, []byte("in segment 2"))
		}
		n++
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("sealed-mid-read: %d records, err %v; want all 10, nil", n, err)
	}
}

func TestReadSegmentRecordsPrunedSegment(t *testing.T) {
	dir := t.TempDir()
	_, err := ReadSegmentRecords(dir, 7, segHeaderLen, -1, func([]byte, int64) error { return nil })
	if !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("missing segment: err = %v, want ErrSegmentGone", err)
	}
}

func TestReadSegmentRecordsLimitPastEOF(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	end := appendDurable(t, l, []byte("only record"))

	// Claiming more durable bytes than the file holds means durable data is
	// missing — ambiguous, not silently short.
	var amb *AmbiguousStateError
	_, err = ReadSegmentRecords(dir, 1, segHeaderLen, end+100, func([]byte, int64) error { return nil })
	if !errors.As(err, &amb) {
		t.Fatalf("limit past EOF: err = %v, want *AmbiguousStateError", err)
	}
}

func TestReadSegmentRecordsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	appendDurable(t, l, []byte("first"))
	end := appendDurable(t, l, []byte("second"))
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, 1)

	flip := func(off int64) {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0xff
		if _, err := f.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}

	// Flip a payload byte of the second record: the first record still
	// reads, the second fails its checksum.
	flip(end - 1)
	var amb *AmbiguousStateError
	n := 0
	_, err = ReadSegmentRecords(dir, 1, segHeaderLen, end, func([]byte, int64) error { n++; return nil })
	if !errors.As(err, &amb) || n != 1 {
		t.Fatalf("payload corruption: err = %v after %d records, want ambiguous after 1", err, n)
	}

	// An implausible length prefix is also ambiguous, not a huge allocation.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], uint32(maxRecordLen+1))
	if _, err := f.WriteAt(huge[:], segHeaderLen); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = ReadSegmentRecords(dir, 1, segHeaderLen, end, func([]byte, int64) error { return nil })
	if !errors.As(err, &amb) {
		t.Fatalf("length corruption: err = %v, want *AmbiguousStateError", err)
	}
}

func TestReadSegmentRecordsBadOffsets(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	end := appendDurable(t, l, []byte("x"))

	if _, err := ReadSegmentRecords(dir, 1, 3, -1, func([]byte, int64) error { return nil }); err == nil {
		t.Error("offset inside the segment header was accepted")
	}
	if _, err := ReadSegmentRecords(dir, 1, end+frameHeader, end, func([]byte, int64) error { return nil }); err == nil {
		t.Error("offset past the limit was accepted")
	}
}

func TestPosOrdering(t *testing.T) {
	cases := []struct {
		p, q Pos
		less bool
	}{
		{Pos{1, 14}, Pos{1, 15}, true},
		{Pos{1, 99}, Pos{2, 14}, true},
		{Pos{2, 14}, Pos{2, 14}, false},
		{Pos{3, 14}, Pos{2, 99}, false},
	}
	for _, c := range cases {
		if got := c.p.Less(c.q); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.p, c.q, got, c.less)
		}
	}
	if !(Pos{}).IsZero() || (Pos{1, 14}).IsZero() {
		t.Error("IsZero misclassifies positions")
	}
	if SegmentStart(4) != (Pos{Seg: 4, Off: segHeaderLen}) {
		t.Errorf("SegmentStart(4) = %v", SegmentStart(4))
	}
}
