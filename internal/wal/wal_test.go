package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/storage"
	"lambdadb/internal/telemetry"
	"lambdadb/internal/types"
)

var errBoom = errors.New("boom")

func intSchema() types.Schema {
	return types.Schema{{Name: "id", Type: types.Int64}}
}

func mustOpen(t *testing.T, dir string) (*storage.Store, *Manager) {
	t.Helper()
	store, mgr, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return store, mgr
}

func intBatch(vals ...int64) *types.Batch {
	b := types.NewBatch(intSchema())
	for _, v := range vals {
		b.AppendRow([]types.Value{types.NewInt(v)})
	}
	return b
}

func commitInsert(t *testing.T, store *storage.Store, name string, vals ...int64) {
	t.Helper()
	tbl, err := store.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	tx := store.Begin()
	if err := tx.Insert(tbl, intBatch(vals...)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func commitDelete(t *testing.T, store *storage.Store, name string, row int) {
	t.Helper()
	tbl, err := store.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	tx := store.Begin()
	if err := tx.Delete(tbl, row); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// rowSet returns the visible id values of a table ({} when it is missing).
func rowSet(t *testing.T, store *storage.Store, name string) map[int64]bool {
	t.Helper()
	out := map[int64]bool{}
	tbl, err := store.Table(name)
	if err != nil {
		return out
	}
	if err := tbl.Scan(store.Snapshot(), func(b *types.Batch) error {
		for i := 0; i < b.Len(); i++ {
			out[b.Cols[0].Ints[i]] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func wantRows(t *testing.T, store *storage.Store, name string, want ...int64) {
	t.Helper()
	got := rowSet(t, store, name)
	wantSet := map[int64]bool{}
	for _, v := range want {
		wantSet[v] = true
	}
	if len(got) != len(wantSet) {
		t.Fatalf("table %s: got rows %v, want %v", name, got, wantSet)
	}
	for v := range wantSet {
		if !got[v] {
			t.Fatalf("table %s: missing row %d (got %v)", name, v, got)
		}
	}
}

func TestDurableCycle(t *testing.T) {
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1, 2, 3)
	commitDelete(t, store, "t", 0) // physical row 0 = value 1
	commitInsert(t, store, "t", 4)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	s := mgr2.Summary()
	if s.SnapshotLoaded {
		t.Error("no checkpoint was taken, but a snapshot was loaded")
	}
	if s.CommitsReplayed != 3 || s.DDLReplayed != 1 {
		t.Errorf("summary = %+v, want 3 commits and 1 DDL replayed", s)
	}
	if s.TornTailTruncated {
		t.Errorf("clean shutdown reported a torn tail: %+v", s)
	}
	wantRows(t, store2, "t", 2, 3, 4)
	if got, want := store2.Snapshot(), store.Snapshot(); got != want {
		t.Errorf("recovered clock %d, want %d", got, want)
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	tbl, _ := store.Table("t")
	tx := store.Begin()
	if err := tx.Insert(tbl, intBatch(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after Close succeeded; it must fail (log is closed)")
	}
	if got := store.Snapshot(); got != 1 {
		t.Errorf("failed commit advanced the clock to %d", got)
	}
}

func TestCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1, 2)
	commitDelete(t, store, "t", 0)
	stats, err := mgr.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clock != store.Snapshot() {
		t.Errorf("checkpoint clock %d, want %d", stats.Clock, store.Snapshot())
	}
	if stats.SegmentsRemoved != 1 {
		t.Errorf("SegmentsRemoved = %d, want 1", stats.SegmentsRemoved)
	}
	commitInsert(t, store, "t", 3)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	s := mgr2.Summary()
	if !s.SnapshotLoaded || s.SnapshotClock != stats.Clock {
		t.Errorf("summary = %+v, want snapshot at clock %d", s, stats.Clock)
	}
	if s.CommitsReplayed != 1 {
		t.Errorf("CommitsReplayed = %d, want 1 (only the post-checkpoint insert)", s.CommitsReplayed)
	}
	wantRows(t, store2, "t", 2, 3)

	// The delete of physical row 0 happened before the checkpoint; a new
	// delete of physical row 1 (value 2) must resolve against the restored
	// physical layout.
	commitDelete(t, store2, "t", 1)
	wantRows(t, store2, "t", 3)
}

// TestRecoverWithoutClose reopens a directory whose previous manager was
// never closed — the in-process stand-in for a crash: every acknowledged
// commit was fsynced before Commit returned, so all of them must survive.
func TestRecoverWithoutClose(t *testing.T) {
	dir := t.TempDir()
	store, _ := mustOpen(t, dir) // leaked deliberately
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 10, 20)
	commitInsert(t, store, "t", 30)

	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	wantRows(t, store2, "t", 10, 20, 30)
}

func TestDropCreateIncarnations(t *testing.T) {
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1)
	if err := store.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 2)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	// Only the second incarnation's rows exist; the insert of 1 targeted the
	// dropped incarnation and must not leak into the new table.
	wantRows(t, store2, "t", 2)
}

// TestDropCreateAroundCheckpoint checkpoints between the two incarnations,
// so the image holds the new incarnation while the log still carries the
// old one's records; the incarnation IDs keep them apart.
func TestDropCreateAroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1)
	if _, err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := store.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 2)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	wantRows(t, store2, "t", 2)
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	defer mgr.Close()
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	tbl, _ := store.Table("t")

	const workers = 16
	const each = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tx := store.Begin()
				if err := tx.Insert(tbl, intBatch(int64(w*each+i))); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := rowSet(t, store, "t"); len(got) != workers*each {
		t.Fatalf("got %d rows, want %d", len(got), workers*each)
	}
	appends := mgr.metrics.WalAppends.Load()
	fsyncs := mgr.metrics.WalFsyncs.Load()
	if appends != workers*each+1 { // +1 for the CREATE TABLE record
		t.Errorf("WalAppends = %d, want %d", appends, workers*each+1)
	}
	if fsyncs < 1 || fsyncs > appends {
		t.Errorf("WalFsyncs = %d, out of range [1, %d]", fsyncs, appends)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.2f appends/fsync)",
		appends, fsyncs, float64(appends)/float64(fsyncs))

	// Everything survives recovery.
	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	if got := rowSet(t, store2, "t"); len(got) != workers*each {
		t.Fatalf("recovered %d rows, want %d", len(got), workers*each)
	}
}

func TestAppendFaultFailsCommitCleanly(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	defer mgr.Close()
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1)

	faultinject.FailOnce("wal.append", errBoom)
	tbl, _ := store.Table("t")
	tx := store.Begin()
	if err := tx.Insert(tbl, intBatch(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, errBoom) {
		t.Fatalf("commit error = %v, want errBoom", err)
	}
	// Nothing was applied or logged; the next commit works and recovery
	// agrees.
	wantRows(t, store, "t", 1)
	commitInsert(t, store, "t", 3)
	mgr.Close()
	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	wantRows(t, store2, "t", 1, 3)
}

func TestFsyncFaultLatchesLogFailed(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1)

	faultinject.Set("wal.fsync", func() error { return errBoom })
	tbl, _ := store.Table("t")
	tx := store.Begin()
	if err := tx.Insert(tbl, intBatch(2)); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if err == nil || !strings.Contains(err.Error(), "not confirmed durable") {
		t.Fatalf("commit error = %v, want a not-confirmed-durable failure", err)
	}
	// The failure is sticky: no later commit can be acknowledged past the
	// gap, even after the fault clears.
	faultinject.Reset()
	tx2 := store.Begin()
	if err := tx2.Insert(tbl, intBatch(3)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err == nil {
		t.Fatal("commit after a durability failure succeeded; the log must stay failed")
	}
	mgr.Close()
}

// TestFlusherNeverWritesPastLatchedFailure pins the group-commit flusher's
// failure contract: once a write/fsync fails, records buffered behind the
// failed batch must never reach disk. If the flusher wrote them anyway,
// durableLSN would advance over the failed batch's LSNs (acknowledging
// commits whose bytes never made it) and the segment would carry frames
// behind a gap, which recovery reads as a mid-segment tear.
func TestFlusherNeverWritesPastLatchedFailure(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	faultinject.Set("wal.write", func() error {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
			return errBoom
		}
		return nil
	})

	lsnA, _, err := l.append([]byte("record-A"))
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the flusher holds batch A and is about to fail its write

	// B is buffered before the failure latches; it must be dropped, never
	// written behind the failed batch.
	lsnB, _, err := l.append([]byte("record-B"))
	if err != nil {
		t.Fatal(err)
	}
	close(release)

	if err := l.waitDurable(lsnA); !errors.Is(err, errBoom) {
		t.Errorf("waitDurable(A) = %v, want errBoom", err)
	}
	if err := l.waitDurable(lsnB); !errors.Is(err, errBoom) {
		t.Errorf("waitDurable(B) = %v, want errBoom (B must not be acknowledged past the failed batch)", err)
	}
	if _, _, err := l.append([]byte("record-C")); !errors.Is(err, errBoom) {
		t.Errorf("append after failure = %v, want errBoom", err)
	}
	if err := l.close(); !errors.Is(err, errBoom) {
		t.Errorf("close = %v, want the latched errBoom", err)
	}

	// Nothing after the segment header may be on disk: the failed batch was
	// rejected before writing, and the flusher must not have written B.
	data, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != segHeaderLen {
		t.Errorf("segment holds %d bytes, want the bare header (%d): the flusher wrote past a latched failure", len(data), segHeaderLen)
	}
}

// TestAppendRejectsOversizedPayload: a payload recovery would reject as
// implausible must fail at append time instead of being acknowledged
// durable and then dropped by replay.
func TestAppendRejectsOversizedPayload(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, &telemetry.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.append(make([]byte, maxRecordLen+1)); err == nil {
		t.Fatal("append accepted a payload larger than maxRecordLen")
	}
	// The rejection is a per-record error, not a log failure: the log keeps
	// accepting ordinary appends.
	lsn, _, err := l.append([]byte("small"))
	if err != nil {
		t.Fatalf("append after oversize rejection: %v", err)
	}
	if err := l.waitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
}

// TestRotateToleratesLeftoverNextSegment simulates a rotate/checkpoint that
// died after creating the next segment file (empty, a partial header, or a
// complete header — e.g. failing in syncDir): the retried rotate must reuse
// the file without appending a second header, which recovery would parse as
// a torn frame and use to truncate acknowledged records behind it.
func TestRotateToleratesLeftoverNextSegment(t *testing.T) {
	cases := []struct {
		name    string
		content func(t *testing.T, path string)
	}{
		{"empty-file", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"partial-header", func(t *testing.T, path string) {
			if err := os.WriteFile(path, segMagic[:3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"full-header", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := writeSegmentHeader(f, 2); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			store, mgr := mustOpen(t, dir)
			if _, err := store.CreateTable("t", intSchema()); err != nil {
				t.Fatal(err)
			}
			commitInsert(t, store, "t", 1)

			c.content(t, segmentPath(dir, 2))
			if _, err := mgr.Checkpoint(); err != nil { // rotates into segment 2
				t.Fatal(err)
			}
			commitInsert(t, store, "t", 2)
			if err := mgr.Close(); err != nil {
				t.Fatal(err)
			}

			store2, mgr2 := mustOpen(t, dir)
			defer mgr2.Close()
			if s := mgr2.Summary(); s.TornTailTruncated {
				t.Errorf("leftover segment file read as torn after rotate: %+v", s)
			}
			wantRows(t, store2, "t", 1, 2)
		})
	}
}

// segments with several committed records, used by the torn-tail tests.
func buildTornFixture(t *testing.T) (dir string, boundaries []int64, segPath string) {
	t.Helper()
	dir = t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	for j := int64(0); j < 5; j++ {
		commitInsert(t, store, "t", 100+j)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	segPath = segmentPath(dir, 1)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	boundaries = []int64{segHeaderLen}
	off := int64(segHeaderLen)
	for off < int64(len(data)) {
		l := int64(binary.LittleEndian.Uint32(data[off:]))
		off += frameHeader + l
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != 7 { // header + 1 DDL + 5 commits
		t.Fatalf("fixture has %d record boundaries, want 7", len(boundaries))
	}
	return dir, boundaries, segPath
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// expectPrefix asserts that a recovered store reflects exactly the first
// whole records of the fixture: record 0 is the CREATE TABLE, records 1..k
// insert 100..100+k-1.
func expectPrefix(t *testing.T, store *storage.Store, records int) {
	t.Helper()
	if records == 0 {
		if names := store.TableNames(); len(names) != 0 {
			t.Fatalf("no records survived, but tables exist: %v", names)
		}
		return
	}
	vals := make([]int64, 0, records-1)
	for j := 0; j < records-1; j++ {
		vals = append(vals, 100+int64(j))
	}
	wantRows(t, store, "t", vals...)
}

// TestTornTail exercises every interesting corruption of the final
// segment: truncation at each record boundary (clean), truncation inside
// each record's frame header and payload (torn, truncated back to the
// record's start), and a bit flip inside each record (CRC mismatch, same
// truncation). Recovery must keep exactly the whole-record prefix.
func TestTornTail(t *testing.T) {
	src, boundaries, _ := buildTornFixture(t)
	nRecords := len(boundaries) - 1

	type tc struct {
		name        string
		mutate      func(t *testing.T, path string)
		wantRecords int
		wantTorn    bool
	}
	var cases []tc
	for i := 0; i < nRecords; i++ {
		i := i
		start, end := boundaries[i], boundaries[i+1]
		cases = append(cases,
			tc{
				name:        fmt.Sprintf("truncate-at-boundary-%d", i),
				mutate:      func(t *testing.T, p string) { truncate(t, p, start) },
				wantRecords: i,
				wantTorn:    false,
			},
			tc{
				name:        fmt.Sprintf("truncate-mid-header-%d", i),
				mutate:      func(t *testing.T, p string) { truncate(t, p, start+frameHeader-2) },
				wantRecords: i,
				wantTorn:    true,
			},
			tc{
				name:        fmt.Sprintf("truncate-mid-payload-%d", i),
				mutate:      func(t *testing.T, p string) { truncate(t, p, end-1) },
				wantRecords: i,
				wantTorn:    true,
			},
			tc{
				name:        fmt.Sprintf("bitflip-payload-%d", i),
				mutate:      func(t *testing.T, p string) { flipByte(t, p, start+frameHeader) },
				wantRecords: i,
				wantTorn:    true,
			},
			tc{
				name:        fmt.Sprintf("bitflip-length-%d", i),
				mutate:      func(t *testing.T, p string) { flipByte(t, p, start+2) },
				wantRecords: i,
				wantTorn:    true,
			},
		)
	}
	// Whole file intact: all records.
	cases = append(cases, tc{
		name:        "intact",
		mutate:      func(*testing.T, string) {},
		wantRecords: nRecords,
		wantTorn:    false,
	})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := copyDir(t, src)
			c.mutate(t, segmentPath(dir, 1))
			store, mgr, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer mgr.Close()
			s := mgr.Summary()
			if s.TornTailTruncated != c.wantTorn {
				t.Errorf("TornTailTruncated = %v, want %v (summary %+v)", s.TornTailTruncated, c.wantTorn, s)
			}
			expectPrefix(t, store, c.wantRecords)

			// The directory must be clean after recovery: a second open sees
			// no torn tail and the same state.
			mgr.Close()
			store2, mgr2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("second Open: %v", err)
			}
			defer mgr2.Close()
			if s2 := mgr2.Summary(); s2.TornTailTruncated {
				t.Errorf("second open still sees a torn tail: %+v", s2)
			}
			expectPrefix(t, store2, c.wantRecords)
		})
	}
}

func truncate(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= int64(len(data)) {
		t.Fatalf("flip offset %d beyond file size %d", off, len(data))
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDamagedEarlierSegmentIsAmbiguous builds two segments (a checkpoint
// whose snapshot write fails leaves the rotated segment behind), corrupts
// the sealed one, and requires recovery to refuse with an
// *AmbiguousStateError instead of truncating away acknowledged commits.
func TestDamagedEarlierSegmentIsAmbiguous(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1)
	faultinject.FailOnce("wal.checkpoint.snapshot", errBoom)
	if _, err := mgr.Checkpoint(); !errors.Is(err, errBoom) {
		t.Fatalf("checkpoint error = %v, want errBoom", err)
	}
	faultinject.Reset()
	commitInsert(t, store, "t", 2) // lands in segment 2
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Sanity: an undamaged two-segment directory recovers fine.
	store2, mgr2 := mustOpen(t, copyDirHelper(t, dir))
	if s := mgr2.Summary(); s.Segments != 2 {
		t.Errorf("Segments = %d, want 2", s.Segments)
	}
	wantRows(t, store2, "t", 1, 2)
	mgr2.Close()

	// Damage inside the sealed first segment: hard refusal.
	flipByte(t, segmentPath(dir, 1), segHeaderLen+frameHeader+2)
	_, _, err := Open(dir, Options{})
	var amb *AmbiguousStateError
	if !errors.As(err, &amb) {
		t.Fatalf("Open = %v, want *AmbiguousStateError", err)
	}
	if amb.Segment != filepath.Base(segmentPath(dir, 1)) {
		t.Errorf("ambiguous segment = %q, want the first segment", amb.Segment)
	}
}

func copyDirHelper(t *testing.T, src string) string { return copyDir(t, src) }

// TestCrashBetweenSnapshotAndPrune simulates a crash after the checkpoint
// image is durable but before the old segments were pruned: replay must
// skip the records the image already covers.
func TestCrashBetweenSnapshotAndPrune(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	commitInsert(t, store, "t", 1, 2)
	faultinject.FailOnce("wal.checkpoint.prune", errBoom)
	if _, err := mgr.Checkpoint(); !errors.Is(err, errBoom) {
		t.Fatalf("checkpoint error = %v, want errBoom", err)
	}
	faultinject.Reset()
	commitInsert(t, store, "t", 3)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	s := mgr2.Summary()
	if !s.SnapshotLoaded {
		t.Fatalf("snapshot not loaded: %+v", s)
	}
	if s.RecordsSkipped == 0 {
		t.Errorf("RecordsSkipped = 0, want > 0 (old segments overlap the image); summary %+v", s)
	}
	wantRows(t, store2, "t", 1, 2, 3)
}

func TestSegmentGapIsAmbiguous(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{1, 3} {
		if err := os.WriteFile(segmentPath(dir, seq), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := Open(dir, Options{})
	var amb *AmbiguousStateError
	if !errors.As(err, &amb) {
		t.Fatalf("Open = %v, want *AmbiguousStateError for the sequence gap", err)
	}
	if !strings.Contains(amb.Reason, "gap") {
		t.Errorf("reason = %q, want a sequence-gap explanation", amb.Reason)
	}
}

// TestRotateKeepsRecordsOrdered hammers commits while checkpoints rotate
// the log concurrently, then recovers and checks nothing was lost. Run
// with -race this also exercises the rotation/flusher locking.
func TestRotateKeepsRecordsOrdered(t *testing.T) {
	dir := t.TempDir()
	store, mgr := mustOpen(t, dir)
	if _, err := store.CreateTable("t", intSchema()); err != nil {
		t.Fatal(err)
	}
	tbl, _ := store.Table("t")

	const committers = 4
	const each = 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent checkpointer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := mgr.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	var cwg sync.WaitGroup
	for w := 0; w < committers; w++ {
		cwg.Add(1)
		go func(w int) {
			defer cwg.Done()
			for i := 0; i < each; i++ {
				tx := store.Begin()
				if err := tx.Insert(tbl, intBatch(int64(w*each+i))); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	store2, mgr2 := mustOpen(t, dir)
	defer mgr2.Close()
	if got := rowSet(t, store2, "t"); len(got) != committers*each {
		t.Fatalf("recovered %d rows, want %d", len(got), committers*each)
	}
}
