// Package wal implements the durability layer: a per-commit redo log with
// group commit, physical checkpoints, and crash recovery.
//
// The paper's host system, HyPer, keeps a main-memory database ACID by
// pairing in-memory execution with redo logging and snapshots; this
// package is the corresponding substrate. Every committing transaction
// appends one length-prefixed, CRC-32-checksummed record to the active log
// segment before it is applied (write-ahead, ordered by the commit lock),
// and is acknowledged only once a shared group-commit flusher has fsynced
// its record — concurrent committers park on the flusher and share one
// disk sync per batch. Recovery loads the latest physical snapshot,
// replays the log tail with a strict commit-timestamp contiguity check,
// tolerates a torn final record (truncated, not fatal), and refuses
// anything ambiguous with a typed *AmbiguousStateError.
package wal

import (
	"bytes"
	"fmt"

	"lambdadb/internal/persist"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// Record kinds. A record's payload starts with its kind byte.
const (
	recCommit      byte = 1
	recCreateTable byte = 2
	recDropTable   byte = 3
	recCreateIndex byte = 4
	recDropIndex   byte = 5
	recEpoch       byte = 6
)

// record is the decoded form of one log record.
type record struct {
	kind   byte
	commit *storage.CommitData // recCommit
	name   string              // table name (DDL records)
	id     uint64              // table incarnation ID
	schema types.Schema        // recCreateTable
	index  string              // index name (recCreateIndex / recDropIndex)
	column string              // indexed column (recCreateIndex)
	ikind  storage.IndexKind   // index structure (recCreateIndex)
	epoch  uint64              // recEpoch
}

// encodeCommit serializes a committing transaction:
//
//	u8 kind, u64 ts,
//	u32 insert count, per insert: string table, u64 id,
//	  u32 column count + u8 column types, batch (persist encoding),
//	u32 delete count, per delete: string table, u64 id, u64 physical row
//
// Insert batches carry their column types so a record can be decoded even
// when its table no longer exists at replay time (dropped later in the
// log) — the reader must always be able to find the next record.
func encodeCommit(c *storage.CommitData) []byte {
	var b bytes.Buffer
	b.WriteByte(recCommit)
	persist.WriteU64(&b, c.TS)
	persist.WriteU32(&b, uint32(len(c.Inserts)))
	for _, in := range c.Inserts {
		persist.WriteString(&b, in.Table)
		persist.WriteU64(&b, in.TableID)
		persist.WriteU32(&b, uint32(len(in.Batch.Cols)))
		for _, col := range in.Batch.Cols {
			b.WriteByte(byte(col.T))
		}
		persist.WriteBatch(&b, in.Batch)
	}
	persist.WriteU32(&b, uint32(len(c.Deletes)))
	for _, d := range c.Deletes {
		persist.WriteString(&b, d.Table)
		persist.WriteU64(&b, d.TableID)
		persist.WriteU64(&b, uint64(d.Row))
	}
	return b.Bytes()
}

// encodeCreateTable serializes a CREATE TABLE: u8 kind, string name,
// u64 id, schema.
func encodeCreateTable(name string, schema types.Schema, id uint64) []byte {
	var b bytes.Buffer
	b.WriteByte(recCreateTable)
	persist.WriteString(&b, name)
	persist.WriteU64(&b, id)
	persist.WriteSchema(&b, schema)
	return b.Bytes()
}

// encodeDropTable serializes a DROP TABLE: u8 kind, string name, u64 id.
func encodeDropTable(name string, id uint64) []byte {
	var b bytes.Buffer
	b.WriteByte(recDropTable)
	persist.WriteString(&b, name)
	persist.WriteU64(&b, id)
	return b.Bytes()
}

// encodeCreateIndex serializes a CREATE INDEX: u8 kind, string index name,
// string table name, string column, u8 index kind, u64 table id.
func encodeCreateIndex(def storage.IndexDef, tableID uint64) []byte {
	var b bytes.Buffer
	b.WriteByte(recCreateIndex)
	persist.WriteString(&b, def.Name)
	persist.WriteString(&b, def.Table)
	persist.WriteString(&b, def.Column)
	b.WriteByte(byte(def.Kind))
	persist.WriteU64(&b, tableID)
	return b.Bytes()
}

// encodeDropIndex serializes a DROP INDEX: u8 kind, string index name,
// string table name, u64 table id.
func encodeDropIndex(index, table string, tableID uint64) []byte {
	var b bytes.Buffer
	b.WriteByte(recDropIndex)
	persist.WriteString(&b, index)
	persist.WriteString(&b, table)
	persist.WriteU64(&b, tableID)
	return b.Bytes()
}

// encodeEpoch serializes a cluster-epoch bump: u8 kind, u64 epoch. The
// record rides the ordinary log stream so the fencing epoch survives
// crashes, checkpoints (the active segment re-announces it after every
// rotation), and replication (it mirrors byte-identically to replicas).
func encodeEpoch(epoch uint64) []byte {
	var b bytes.Buffer
	b.WriteByte(recEpoch)
	persist.WriteU64(&b, epoch)
	return b.Bytes()
}

// decodeRecord parses one record payload. The payload has already passed
// its CRC check, so a decode failure here means the log and the code
// disagree about the format — a hard error, never a torn tail.
func decodeRecord(payload []byte) (*record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("empty record payload")
	}
	r := bytes.NewReader(payload[1:])
	rec := &record{kind: payload[0]}
	var err error
	switch rec.kind {
	case recCommit:
		rec.commit, err = decodeCommit(r)
	case recCreateTable:
		if rec.name, err = persist.ReadString(r); err != nil {
			break
		}
		if rec.id, err = persist.ReadU64(r); err != nil {
			break
		}
		rec.schema, err = persist.ReadSchema(r)
	case recDropTable:
		if rec.name, err = persist.ReadString(r); err != nil {
			break
		}
		rec.id, err = persist.ReadU64(r)
	case recCreateIndex:
		if rec.index, err = persist.ReadString(r); err != nil {
			break
		}
		if rec.name, err = persist.ReadString(r); err != nil {
			break
		}
		if rec.column, err = persist.ReadString(r); err != nil {
			break
		}
		var kb byte
		if kb, err = r.ReadByte(); err != nil {
			break
		}
		switch storage.IndexKind(kb) {
		case storage.HashIndex, storage.OrderedIndex:
			rec.ikind = storage.IndexKind(kb)
		default:
			err = fmt.Errorf("bad index kind %d", kb)
		}
		if err != nil {
			break
		}
		rec.id, err = persist.ReadU64(r)
	case recDropIndex:
		if rec.index, err = persist.ReadString(r); err != nil {
			break
		}
		if rec.name, err = persist.ReadString(r); err != nil {
			break
		}
		rec.id, err = persist.ReadU64(r)
	case recEpoch:
		rec.epoch, err = persist.ReadU64(r)
	default:
		return nil, fmt.Errorf("unknown record kind %d", rec.kind)
	}
	if err != nil {
		return nil, fmt.Errorf("record kind %d: %w", rec.kind, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("record kind %d: %d trailing bytes", rec.kind, r.Len())
	}
	return rec, nil
}

func decodeCommit(r *bytes.Reader) (*storage.CommitData, error) {
	c := &storage.CommitData{}
	var err error
	if c.TS, err = persist.ReadU64(r); err != nil {
		return nil, err
	}
	nIns, err := persist.ReadU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nIns; i++ {
		var in storage.CommitInsert
		if in.Table, err = persist.ReadString(r); err != nil {
			return nil, err
		}
		if in.TableID, err = persist.ReadU64(r); err != nil {
			return nil, err
		}
		ncols, err := persist.ReadU32(r)
		if err != nil {
			return nil, err
		}
		if ncols > 1<<16 {
			return nil, fmt.Errorf("insert with %d columns", ncols)
		}
		schema := make(types.Schema, ncols)
		for j := range schema {
			tb, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			ct := types.Type(tb)
			switch ct {
			case types.Int64, types.Float64, types.String, types.Bool:
			default:
				return nil, fmt.Errorf("insert column %d: bad type %d", j, tb)
			}
			schema[j] = types.ColumnInfo{Type: ct}
		}
		if in.Batch, err = persist.ReadBatch(r, schema); err != nil {
			return nil, err
		}
		c.Inserts = append(c.Inserts, in)
	}
	nDel, err := persist.ReadU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nDel; i++ {
		var d storage.CommitDelete
		if d.Table, err = persist.ReadString(r); err != nil {
			return nil, err
		}
		if d.TableID, err = persist.ReadU64(r); err != nil {
			return nil, err
		}
		row, err := persist.ReadU64(r)
		if err != nil {
			return nil, err
		}
		d.Row = int(row)
		c.Deletes = append(c.Deletes, d)
	}
	return c, nil
}
