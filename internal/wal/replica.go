package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lambdadb/internal/persist"
)

// This file is the replica-side surface: a replica keeps a byte-identical
// mirror of the primary's log (same segment sequences, same offsets) so
// that crash recovery, positional resume, and checkpointing all reuse the
// ordinary single-node machinery. The replication stream (internal/repl)
// drives it record by record.

// ErrDiverged reports that the local log no longer mirrors the primary's —
// a record landed at an unexpected offset or a rotation produced the wrong
// sequence number. The only safe continuation is a full snapshot resync.
var ErrDiverged = errors.New("wal: local log diverged from the primary's")

// ReplicaMode detaches the manager from the store's commit hooks. On a
// replica the log is a mirror of the primary's, written by AppendMirror;
// locally-applied records (ApplyStreamed calling into the store) must not
// be logged a second time, or the mirror would diverge.
func (m *Manager) ReplicaMode() { m.store.SetCommitLogger(nil) }

// PrimaryMode reinstalls the manager as the store's commit logger,
// reversing ReplicaMode. Promotion calls it once the replication stream is
// stopped and before the first local write.
func (m *Manager) PrimaryMode() { m.store.SetCommitLogger(m) }

// AppendMirror appends one record shipped by the primary, verifying it
// against the primary's framing: the CRC must match the payload and the
// record must end exactly at wantEnd in the active segment. It returns the
// group-commit durability wait (acks to the primary must not be sent
// before it succeeds). A position mismatch returns ErrDiverged — the
// record is then already mis-placed locally, so the caller must resync.
func (m *Manager) AppendMirror(payload []byte, wantEnd int64, wantCRC uint32) (func() error, error) {
	if got := RecordCRC(payload); got != wantCRC {
		return nil, fmt.Errorf("wal: shipped record checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	lsn, end, err := m.activeLog().append(payload)
	if err != nil {
		return nil, err
	}
	if end.Off != wantEnd {
		return nil, fmt.Errorf("%w: record ends at offset %d locally, %d on the primary", ErrDiverged, end.Off, wantEnd)
	}
	return func() error { return m.activeLog().waitDurable(lsn) }, nil
}

// SealMirror rotates the mirror to segment next, mirroring a rotation on
// the primary. Rotation always advances the sequence by one, so any other
// next means the stream and the local log disagree.
func (m *Manager) SealMirror(next uint64) error {
	if got := m.activeLog().activeSeq() + 1; got != next {
		return fmt.Errorf("%w: primary sealed to segment %d, local log would seal to %d", ErrDiverged, next, got)
	}
	return m.activeLog().rotate()
}

// ApplyStreamed decodes one shipped record and applies it to the store,
// reporting whether it had an effect. Records the store already covers are
// skipped, not errors: a commit whose timestamp is at or below the clock
// (the stream legitimately overlaps what local recovery already replayed),
// and DDL whose effect is present (matched by incarnation ID).
func (m *Manager) ApplyStreamed(payload []byte) (applied bool, err error) {
	var scratch RecoverySummary
	seg := segmentInfo{seq: m.activeLog().activeSeq(), path: filepath.Join(m.dir, "replication-stream")}
	if err := replayRecord(m.dir, seg, m.store, m.store.Snapshot(), &scratch, payload); err != nil {
		return false, err
	}
	// A streamed epoch record fences this replica forward; the record is
	// already in the mirror log via AppendMirror, so only the in-memory
	// value needs raising.
	if scratch.Epoch > 0 {
		m.AdoptEpoch(scratch.Epoch)
	}
	return scratch.RecordsSkipped == 0, nil
}

// SnapshotPrune is the replica's checkpoint: it writes a durable image at
// the applied clock and prunes sealed segments behind the active one,
// without rotating — rotation is driven by the stream (SealMirror) so the
// mirror stays aligned with the primary. The apply loop calls it at seal
// boundaries, when everything in the sealed segments is already applied.
func (m *Manager) SnapshotPrune() (CheckpointStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return CheckpointStats{}, fmt.Errorf("wal: manager is closed")
	}
	var clock uint64
	m.store.WithCommitLock(func(c uint64) { clock = c })
	if err := persist.SavePhysicalFile(m.store, filepath.Join(m.dir, snapshotFile), clock); err != nil {
		return CheckpointStats{}, fmt.Errorf("wal: write checkpoint image: %w", err)
	}
	segs, err := listSegments(m.dir)
	if err != nil {
		return CheckpointStats{}, err
	}
	active := m.activeLog().activeSeq()
	removed := 0
	for _, seg := range segs {
		if seg.seq >= active {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return CheckpointStats{}, err
		}
		if err := syncDir(m.dir); err != nil {
			return CheckpointStats{}, err
		}
		removed++
	}
	m.metrics.Checkpoints.Add(1)
	return CheckpointStats{Clock: clock, SegmentsRemoved: removed}, nil
}

// ResetForResync discards the replica's entire local state and replaces it
// with a snapshot shipped by the primary: the log is closed, every segment
// and the old image are removed, the shipped image is written durably and
// loaded, the store's contents are swapped in place (sessions holding the
// store see the new state; in-flight scans finish against the tables they
// already resolved), and a fresh mirror log is opened at startSeg.
func (m *Manager) ResetForResync(snapshot io.Reader, startSeg uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("wal: manager is closed")
	}
	// A flush failure latched in the old log no longer matters — its
	// contents are about to be deleted.
	m.activeLog().close()

	segs, err := listSegments(m.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := os.Remove(seg.path); err != nil {
			return err
		}
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}

	// Write the shipped image via tmp+fsync+rename so a crash mid-resync
	// leaves either no image (fresh replica, full resync restarts) or a
	// whole one — never a torn image next to an empty log.
	path := filepath.Join(m.dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, snapshot); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}

	fresh, err := persist.LoadFile(path)
	if err != nil {
		return fmt.Errorf("wal: load resync image: %w", err)
	}
	m.store.AdoptState(fresh)
	m.summary = RecoverySummary{SnapshotLoaded: true, SnapshotClock: m.store.Snapshot()}

	l, err := openLog(m.dir, startSeg, m.metrics)
	if err != nil {
		return err
	}
	m.logMu.Lock()
	m.log = l
	m.logMu.Unlock()
	return nil
}
