package wal_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lambdadb/internal/engine"
)

// TestGroupCommitBench measures the group-commit batching effect: the same
// number of durable single-row commits issued serially (one fsync each)
// versus from concurrent committers (fsyncs shared across whoever is
// parked on the flusher). It asserts the headline claim — under
// concurrency the log issues strictly less than one fsync per commit — and
// writes the numbers to BENCH_wal.json at the repo root.
//
// Gated behind LAMBDADB_WAL_BENCH=1 (run via `make bench-wal`) because it
// is a timing benchmark, not a correctness test.
func TestGroupCommitBench(t *testing.T) {
	if os.Getenv("LAMBDADB_WAL_BENCH") != "1" {
		t.Skip("set LAMBDADB_WAL_BENCH=1 (make bench-wal) to run the group-commit benchmark")
	}

	const committers = 16
	const perCommitter = 200
	const total = committers * perCommitter

	// Serial baseline: one committer, so every commit pays its own fsync
	// (the flusher has nothing to batch).
	serialDB := openBenchDB(t)
	serialStart := time.Now()
	runCommits(t, serialDB, 1, total)
	serialElapsed := time.Since(serialStart)
	serialFsyncs := serialDB.Metrics().WalFsyncs.Load()
	serialAppends := serialDB.Metrics().WalAppends.Load()
	serialDB.Close()

	// Concurrent: committers overlap, so flushes carry whole batches.
	concDB := openBenchDB(t)
	concStart := time.Now()
	runCommits(t, concDB, committers, perCommitter)
	concElapsed := time.Since(concStart)
	concFsyncs := concDB.Metrics().WalFsyncs.Load()
	concAppends := concDB.Metrics().WalAppends.Load()
	concDB.Close()

	fsyncsPerCommit := float64(concFsyncs) / float64(total)
	report := map[string]any{
		"benchmark":                    "wal group commit",
		"commits":                      total,
		"serial_fsyncs":                serialFsyncs,
		"serial_appends":               serialAppends,
		"serial_fsyncs_per_commit":     float64(serialFsyncs) / float64(total),
		"serial_commits_per_sec":       float64(total) / serialElapsed.Seconds(),
		"concurrent_committers":        committers,
		"concurrent_fsyncs":            concFsyncs,
		"concurrent_appends":           concAppends,
		"concurrent_fsyncs_per_commit": fsyncsPerCommit,
		"concurrent_commits_per_sec":   float64(total) / concElapsed.Seconds(),
		"fsync_batching_factor":        float64(concAppends) / float64(concFsyncs),
	}
	t.Logf("serial: %d commits, %d fsyncs, %.0f commits/s", total, serialFsyncs, float64(total)/serialElapsed.Seconds())
	t.Logf("concurrent (%d committers): %d commits, %d fsyncs (%.3f fsyncs/commit), %.0f commits/s",
		committers, total, concFsyncs, fsyncsPerCommit, float64(total)/concElapsed.Seconds())

	if fsyncsPerCommit >= 1 {
		t.Errorf("group commit ineffective: %.3f fsyncs per commit under %d committers, want < 1",
			fsyncsPerCommit, committers)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// The test runs with the package directory as cwd; the repo root is two
	// levels up.
	path := filepath.Join("..", "..", "BENCH_wal.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	abs, _ := filepath.Abs(path)
	t.Logf("wrote %s", abs)
}

func openBenchDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := engine.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE bench (id BIGINT)")
	return db
}

func runCommits(t *testing.T, db *engine.DB, workers, each int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO bench VALUES (%d)", w*each+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
