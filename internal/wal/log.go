package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lambdadb/internal/faultinject"
	"lambdadb/internal/telemetry"
)

// Log file layout: numbered segment files wal-<seq>.log in the data
// directory. Each segment starts with a header (magic + u64 sequence
// number) followed by records framed as
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// A checkpoint rotates to a fresh segment and, once the snapshot is
// durable, deletes the older ones; recovery replays all remaining segments
// in sequence order.
var segMagic = []byte("LWAL1\n")

const (
	segHeaderLen = 6 + 8   // magic + sequence number
	frameHeader  = 8       // length + CRC
	maxRecordLen = 1 << 30 // plausibility bound while scanning
	segPrefix    = "wal-"  // segment file name: wal-<08d>.log
	segSuffix    = ".log"
)

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// AmbiguousStateError reports an on-disk state recovery refuses to guess
// about: a damaged record before the tail of the log, a sequence gap
// between segments, or a log that contradicts the snapshot. Recovering
// past it could silently drop or invent acknowledged commits, so startup
// fails instead.
type AmbiguousStateError struct {
	Dir     string
	Segment string // file name, empty for directory-level problems
	Offset  int64
	Reason  string
}

func (e *AmbiguousStateError) Error() string {
	if e.Segment == "" {
		return fmt.Sprintf("ambiguous WAL state in %s: %s", e.Dir, e.Reason)
	}
	return fmt.Sprintf("ambiguous WAL state in %s: segment %s at byte %d: %s",
		e.Dir, e.Segment, e.Offset, e.Reason)
}

// log is the append side of the write-ahead log: an active segment file,
// an in-memory frame buffer, and the group-commit flusher goroutine.
//
// Appends (ordered by the caller's locks) only buffer the framed record
// and bump the append LSN; the flusher picks up whatever has accumulated,
// writes it with one write+fsync, and advances the durable LSN. Committers
// park in WaitDurable until their LSN is covered, so N concurrent
// committers share one fsync instead of paying one each.
type log struct {
	dir     string
	metrics *telemetry.Metrics

	mu         sync.Mutex
	f          *os.File
	seq        uint64
	buf        []byte // framed records not yet handed to the flusher
	appendLSN  uint64 // records appended (logical end of log)
	durableLSN uint64 // records confirmed on disk
	appendOff  int64  // byte offset appends have reached in the active segment
	durableOff int64  // byte offset confirmed on disk in the active segment
	err        error  // sticky: first write/fsync failure latches the log failed
	closed     bool
	writing    bool // flusher is in write+fsync outside mu

	work    *sync.Cond // signals the flusher: buffered bytes or close
	durable *sync.Cond // signals waiters: durable LSN advanced or failure

	// subs are durable-position subscribers (the replication shipper): each
	// gets a non-blocking wakeup whenever the durable position advances, and
	// is closed when the log closes or fails.
	subs map[chan struct{}]struct{}

	flusherDone chan struct{}
}

// openLog opens (or creates) the segment with the given sequence number
// for appending and starts the flusher. The caller has already scanned and
// truncated the segment, so the file is either empty or ends at a clean
// record boundary.
func openLog(dir string, seq uint64, metrics *telemetry.Metrics) (*log, error) {
	f, err := openSegmentFile(dir, seq)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &log{
		dir: dir, metrics: metrics, f: f, seq: seq,
		appendOff: st.Size(), durableOff: st.Size(),
		subs:        make(map[chan struct{}]struct{}),
		flusherDone: make(chan struct{}),
	}
	l.work = sync.NewCond(&l.mu)
	l.durable = sync.NewCond(&l.mu)
	go l.flushLoop()
	return l, nil
}

// openSegmentFile opens (or creates) the segment file for appending and
// writes its header only when the file does not already carry one. A file
// left behind by an earlier failed attempt (e.g. rotate dying in syncDir
// after the header write) keeps its header; writing a second one would be
// parsed as a frame on recovery and read as a mid-segment tear. A partial
// header (shorter than segHeaderLen) can only come from a failed write and
// is safely rewritten from the start.
func openSegmentFile(dir string, seq uint64) (*os.File, error) {
	f, err := os.OpenFile(segmentPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < segHeaderLen {
		if st.Size() != 0 {
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := writeSegmentHeader(f, seq); err != nil {
			f.Close()
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

func writeSegmentHeader(f *os.File, seq uint64) error {
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[6:], seq)
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	return f.Sync()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// append frames the payload and buffers it, returning the record's LSN to
// wait on and the position (segment, byte offset) the active segment will
// end at once the record is flushed. Callers serialize appends through the
// store's locks, so the buffer order is the commit order.
func (l *log) append(payload []byte) (uint64, Pos, error) {
	if err := faultinject.Fire("wal.append"); err != nil {
		return 0, Pos{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, Pos{}, l.err
	}
	if l.closed {
		return 0, Pos{}, fmt.Errorf("wal: log is closed")
	}
	if len(payload) > maxRecordLen {
		// Recovery rejects any record longer than maxRecordLen as
		// implausible (and a length >= 4GiB would not even survive the u32
		// frame header). Refusing here turns an un-loggable commit into an
		// error instead of an acknowledged commit that replay drops.
		return 0, Pos{}, fmt.Errorf("wal: record payload is %d bytes, limit is %d", len(payload), maxRecordLen)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.appendLSN++
	l.appendOff += int64(frameHeader + len(payload))
	l.metrics.WalAppends.Add(1)
	l.work.Signal()
	return l.appendLSN, Pos{Seg: l.seq, Off: l.appendOff}, nil
}

// durablePos returns the position (segment, byte offset) confirmed on
// disk. Everything at or below it is immutable: flushed batches are never
// rewritten and rotation only ever opens higher segments.
func (l *log) durablePos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seg: l.seq, Off: l.durableOff}
}

// appendPos returns the logical end of the log: the position the active
// segment will reach once every buffered record is flushed.
func (l *log) appendPos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seg: l.seq, Off: l.appendOff}
}

// subscribe registers a durable-position wakeup channel; cancel removes
// it. The channel receives a (coalesced, non-blocking) signal whenever the
// durable position advances and is closed when the log closes or fails.
func (l *log) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	if l.closed || l.err != nil {
		close(ch)
		l.mu.Unlock()
		return ch, func() {}
	}
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	return ch, func() {
		l.mu.Lock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
		l.mu.Unlock()
	}
}

// notifySubsLocked wakes every durable-position subscriber; kill closes
// the channels instead (log closed or failed).
func (l *log) notifySubsLocked(kill bool) {
	for ch := range l.subs {
		if kill {
			close(ch)
			delete(l.subs, ch)
			continue
		}
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// waitDurable blocks until the record at lsn is fsynced (group commit), or
// the log has failed or been closed with the record still pending.
func (l *log) waitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durableLSN < lsn && l.err == nil && !(l.closed && len(l.buf) == 0 && !l.writing) {
		l.durable.Wait()
	}
	if l.durableLSN >= lsn {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return fmt.Errorf("wal: log closed before record became durable")
}

// flushLoop is the group-commit flusher: it takes whatever frames have
// accumulated, writes them with a single write+fsync, and wakes every
// committer whose record the batch covered.
func (l *log) flushLoop() {
	l.mu.Lock()
	for {
		for !l.closed && len(l.buf) == 0 {
			l.work.Wait()
		}
		if l.err != nil {
			// The failure is latched: never write again. The failed batch
			// may be partially on disk, so writing later frames after it
			// would both let durableLSN advance over the failed records
			// (acknowledging commits whose bytes never made it) and leave a
			// mid-segment tear that recovery truncates — along with every
			// record behind it. Drop the buffer and fail all waiters.
			l.buf = nil
			l.durable.Broadcast()
			l.notifySubsLocked(true)
			if l.closed {
				break
			}
			continue
		}
		if len(l.buf) == 0 {
			break // closed and drained
		}
		buf, target, f := l.buf, l.appendLSN, l.f
		batchRecords := int64(target - l.durableLSN)
		l.buf = nil
		l.writing = true
		l.mu.Unlock()

		flushStart := time.Now()
		err := writeAndSync(f, buf)
		flushNs := time.Since(flushStart).Nanoseconds()

		l.mu.Lock()
		l.writing = false
		if err != nil {
			if l.err == nil {
				l.err = fmt.Errorf("wal: flush: %w", err)
			}
		} else {
			l.durableLSN = target
			l.durableOff += int64(len(buf))
			l.metrics.WalFsyncs.Add(1)
			l.metrics.WalBytes.Add(int64(len(buf)))
			l.metrics.WalDurableLsn.Store(int64(target))
			l.metrics.Hist().RecordWalFsync(flushNs, batchRecords)
			l.notifySubsLocked(false)
		}
		l.durable.Broadcast()
	}
	l.notifySubsLocked(true)
	l.mu.Unlock()
	close(l.flusherDone)
}

// writeAndSync writes one flush batch and makes it durable. The wal.torn
// fault hooks let the crash harness leave a genuinely torn record on disk:
// when armed, half the batch is written and synced, then a second hook
// gets the chance to SIGKILL the process; unarmed, both halves are written
// and the batch is whole.
func writeAndSync(f *os.File, buf []byte) error {
	if err := faultinject.Fire("wal.write"); err != nil {
		return err
	}
	if faultinject.Fire("wal.torn") != nil && len(buf) > 1 {
		half := len(buf) / 2
		if _, err := f.Write(buf[:half]); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		faultinject.Fire("wal.torn.kill")
		buf = buf[half:]
	}
	if _, err := f.Write(buf); err != nil {
		return err
	}
	if err := faultinject.Fire("wal.fsync"); err != nil {
		return err
	}
	return f.Sync()
}

// rotate drains the pending buffer into the current segment, makes it
// durable, and switches appends to a fresh segment with the next sequence
// number. The caller holds the store's commit lock, so no commit record
// can straddle the rotation; DDL records may slip in during the drain and
// land on either side, which replay tolerates (DDL replay is idempotent).
func (l *log) rotate() error {
	if err := faultinject.Fire("wal.rotate"); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	for (len(l.buf) > 0 || l.writing) && l.err == nil {
		l.work.Signal()
		l.durable.Wait()
	}
	if l.err != nil {
		return l.err
	}
	next := l.seq + 1
	nf, err := openSegmentFile(l.dir, next)
	if err != nil {
		return err
	}
	st, err := nf.Stat()
	if err != nil {
		nf.Close()
		return err
	}
	old := l.f
	l.f, l.seq = nf, next
	// A leftover segment from an earlier failed rotate keeps its contents,
	// so the append position resumes at its current size.
	l.appendOff, l.durableOff = st.Size(), st.Size()
	l.notifySubsLocked(false)
	// The drain loop above already fsynced everything in the old segment.
	return old.Close()
}

// activeSeq returns the sequence number appends currently go to.
func (l *log) activeSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// close drains and fsyncs the log, stops the flusher, and closes the
// segment file. Appends after close fail cleanly.
func (l *log) close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.work.Broadcast()
	l.durable.Broadcast()
	l.mu.Unlock()
	<-l.flusherDone
	if l.err != nil {
		l.f.Close()
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// segmentInfo names one on-disk segment.
type segmentInfo struct {
	seq  uint64
	path string
}

// listSegments returns the data directory's segments sorted by sequence
// number, verifying the numbering is contiguous (checkpoints delete a
// prefix; a hole inside the remaining run means a missing segment).
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) <= len(segPrefix)+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &seq); err != nil {
			continue
		}
		segs = append(segs, segmentInfo{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq != segs[i-1].seq+1 {
			return nil, &AmbiguousStateError{
				Dir:    dir,
				Reason: fmt.Sprintf("segment sequence gap: %d followed by %d", segs[i-1].seq, segs[i].seq),
			}
		}
	}
	return segs, nil
}

// scanResult summarizes one segment scan.
type scanResult struct {
	records    int   // records successfully applied
	goodOffset int64 // end of the last whole record (truncation point)
	torn       bool  // the segment ended in a torn/invalid record
	tornReason string
}

// scanSegment reads one segment, applying every whole, checksum-valid
// record in order. A torn record — short frame, implausible length,
// truncated payload, or CRC mismatch — ends the scan: tolerated (reported
// in the result) when this is the final segment, since a crash mid-append
// legitimately tears the tail; fatal as an *AmbiguousStateError anywhere
// else, because rotated segments were fsynced whole and damage inside one
// means acknowledged commits may be unreadable.
func scanSegment(dir string, seg segmentInfo, last bool, apply func(payload []byte) error) (scanResult, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return scanResult{}, err
	}
	name := filepath.Base(seg.path)
	var res scanResult

	torn := func(off int64, reason string) (scanResult, error) {
		if !last {
			return scanResult{}, &AmbiguousStateError{Dir: dir, Segment: name, Offset: off, Reason: reason}
		}
		res.torn, res.goodOffset, res.tornReason = true, off, reason
		return res, nil
	}

	if len(data) < segHeaderLen {
		return torn(0, fmt.Sprintf("truncated segment header (%d bytes)", len(data)))
	}
	if string(data[:len(segMagic)]) != string(segMagic) {
		// A bad magic is never a torn tail: the header is the first thing
		// written and fsynced when a segment is created.
		return scanResult{}, &AmbiguousStateError{Dir: dir, Segment: name, Offset: 0, Reason: "bad segment magic"}
	}
	if got := binary.LittleEndian.Uint64(data[6:segHeaderLen]); got != seg.seq {
		return scanResult{}, &AmbiguousStateError{
			Dir: dir, Segment: name, Offset: 6,
			Reason: fmt.Sprintf("segment header claims sequence %d, file name says %d", got, seg.seq),
		}
	}

	off := int64(segHeaderLen)
	res.goodOffset = off
	for int(off) < len(data) {
		remaining := int64(len(data)) - off
		if remaining < frameHeader {
			return torn(off, fmt.Sprintf("%d trailing bytes, too short for a record header", remaining))
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxRecordLen {
			return torn(off, fmt.Sprintf("implausible record length %d", length))
		}
		if remaining-frameHeader < length {
			return torn(off, fmt.Sprintf("record length %d but only %d bytes remain", length, remaining-frameHeader))
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return torn(off, fmt.Sprintf("record checksum mismatch (stored %08x, computed %08x)", want, got))
		}
		if err := apply(payload); err != nil {
			return scanResult{}, err
		}
		off += frameHeader + length
		res.goodOffset = off
		res.records++
	}
	return res, nil
}
