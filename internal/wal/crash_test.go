package wal_test

// The kill -9 crash harness: a child process (this test binary re-execed)
// hammers a durable engine with inserts, deletes, and checkpoints while
// journaling its intents and acknowledgements to a side file with its own
// fsyncs; the parent SIGKILLs it at a random moment, recovers the data
// directory in-process, and checks the durability contract against the
// journal:
//
//   - zero acked-commit loss: every acknowledged insert (minus
//     acknowledged deletes) is present after recovery,
//   - no phantom effects: every present row was at least attempted, and
//     every missing acked row was at least attempted to be deleted,
//   - recovery itself never fails, whatever instant the kill hit.
//
// kill -9 does not tear writes that already reached the page cache, so a
// second mode arms the wal.torn fault, which splits one flush batch around
// an fsync and SIGKILLs the process in the gap — leaving a genuinely torn
// record for recovery to truncate.
//
// Gated behind LAMBDADB_CRASH=1 (run via `make crash`) because it forks
// processes and loops for a while.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"lambdadb/internal/engine"
	"lambdadb/internal/faultinject"
)

const (
	crashEnvParent = "LAMBDADB_CRASH"
	crashEnvChild  = "LAMBDADB_CRASH_CHILD"
	crashEnvDir    = "LAMBDADB_CRASH_DIR"
	crashEnvMode   = "LAMBDADB_CRASH_MODE"
	crashEnvRound  = "LAMBDADB_CRASH_ROUND"
)

func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashEnvParent) != "1" {
		t.Skip("set LAMBDADB_CRASH=1 (make crash) to run the kill -9 crash harness")
	}
	dir := t.TempDir()
	modes := []string{"kill", "kill", "torn", "kill", "torn", "kill"}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round, mode := range modes {
		t.Logf("round %d: mode %s", round, mode)
		runCrashRound(t, dir, mode, round, rng)
		verifyCrashDir(t, dir, round)
	}
}

// runCrashRound spawns the child and kills it (or lets it kill itself).
func runCrashRound(t *testing.T, dir, mode string, round int, rng *rand.Rand) {
	t.Helper()
	child := exec.Command(os.Args[0], "-test.run=TestCrashChild$", "-test.v")
	child.Env = append(os.Environ(),
		crashEnvChild+"=1",
		crashEnvDir+"="+dir,
		crashEnvMode+"="+mode,
		crashEnvRound+"="+strconv.Itoa(round),
	)
	stdout, err := child.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	defer child.Process.Kill()

	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "CHILD-READY") {
				close(ready)
				break
			}
		}
		for sc.Scan() { // drain
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("child never became ready")
	}

	if mode == "kill" {
		// Let it get some work done, then pull the plug mid-flight.
		time.Sleep(time.Duration(20+rng.Intn(280)) * time.Millisecond)
		if err := child.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- child.Wait() }()
	select {
	case err := <-done:
		// SIGKILL always surfaces as an error from Wait; that is the point.
		if err == nil {
			t.Fatalf("child exited cleanly; it was supposed to die (mode %s)", mode)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("child did not die within 60s")
	}
}

// verifyCrashDir recovers the data directory and checks the journal
// invariants.
func verifyCrashDir(t *testing.T, dir string, round int) {
	t.Helper()
	tried, acked, triedDel, ackedDel := readJournal(t, filepath.Join(dir, "acks.log"))

	db, err := engine.OpenDir(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatalf("round %d: recovery failed: %v", round, err)
	}
	defer db.Close()
	if s, ok := db.RecoverySummary(); ok {
		t.Logf("round %d: %s", round, s)
	}

	present := map[int64]bool{}
	res, err := db.Exec("SELECT id FROM crash")
	if err != nil {
		if strings.Contains(err.Error(), "does not exist") {
			// Killed before the CREATE TABLE became durable; nothing can have
			// been acked then.
			if len(acked) != 0 {
				t.Fatalf("round %d: table missing but %d inserts were acked", round, len(acked))
			}
			return
		}
		t.Fatalf("round %d: %v", round, err)
	}
	for _, row := range res.Rows {
		present[row[0].I] = true
	}

	for id := range acked {
		switch {
		case ackedDel[id]:
			if present[id] {
				t.Errorf("round %d: id %d present, but its delete was acked", round, id)
			}
		case present[id]:
			// acked and present: fine
		case triedDel[id]:
			// acked insert, unacked delete: either outcome is correct
		default:
			t.Errorf("round %d: ACKED COMMIT LOST: id %d acked, never delete-attempted, absent after recovery", round, id)
		}
	}
	for id := range present {
		if !tried[id] {
			t.Errorf("round %d: PHANTOM ROW: id %d present but never attempted", round, id)
		}
	}

	// The index DDL became durable before CHILD-READY, so recovery must
	// rebuild it, and point probes through it must agree with the full dump.
	idx, err := db.Exec("SELECT index_name FROM system.indexes WHERE table_name = 'crash'")
	if err != nil {
		t.Fatalf("round %d: system.indexes: %v", round, err)
	}
	if len(idx.Rows) != 1 || idx.Rows[0][0].S != "crash_id" {
		t.Errorf("round %d: index did not survive recovery: %v", round, idx.Rows)
	}
	probed := 0
	for id := range present {
		if probed >= 20 {
			break
		}
		probed++
		res, err := db.Exec(fmt.Sprintf("SELECT count(*) FROM crash WHERE id = %d", id))
		if err != nil {
			t.Fatalf("round %d: probe %d: %v", round, id, err)
		}
		if res.Rows[0][0].I != 1 {
			t.Errorf("round %d: index probe for present id %d returned %d rows",
				round, id, res.Rows[0][0].I)
		}
	}
	t.Logf("round %d: %d tried, %d acked, %d present — invariants hold",
		round, len(tried), len(acked), len(present))
}

// readJournal parses the child's intent/ack journal, tolerating a torn
// final line (the child may have died mid-write).
func readJournal(t *testing.T, path string) (tried, acked, triedDel, ackedDel map[int64]bool) {
	t.Helper()
	tried, acked = map[int64]bool{}, map[int64]bool{}
	triedDel, ackedDel = map[int64]bool{}, map[int64]bool{}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) > 0 && !strings.HasSuffix(string(data), "\n") {
		lines = lines[:len(lines)-1] // torn final line
	}
	for _, line := range lines {
		if line == "" {
			continue
		}
		var op string
		var id int64
		if _, err := fmt.Sscanf(line, "%s %d", &op, &id); err != nil {
			continue // torn line that still ends in \n cannot happen, but be lenient
		}
		switch op {
		case "TRY-INS":
			tried[id] = true
		case "ACK-INS":
			acked[id] = true
		case "TRY-DEL":
			triedDel[id] = true
		case "ACK-DEL":
			ackedDel[id] = true
		}
	}
	return
}

// TestCrashChild is the re-execed workload process; it never runs in a
// normal test invocation.
func TestCrashChild(t *testing.T) {
	if os.Getenv(crashEnvChild) != "1" {
		t.Skip("crash-harness child")
	}
	dir := os.Getenv(crashEnvDir)
	mode := os.Getenv(crashEnvMode)
	round, _ := strconv.Atoi(os.Getenv(crashEnvRound))

	journal, err := os.OpenFile(filepath.Join(dir, "acks.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	logLine := func(op string, id int64) {
		if _, err := fmt.Fprintf(journal, "%s %d\n", op, id); err != nil {
			t.Fatal(err)
		}
		if err := journal.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	db, err := engine.OpenDir(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatalf("child: recovery failed: %v", err)
	}
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS crash (id BIGINT)"); err != nil {
		t.Fatal(err)
	}
	// An index rides along so recovery also has to replay the DDL and
	// rebuild the index contents; ANALYZE makes checkpoints refresh stats.
	if _, err := db.Exec("CREATE INDEX IF NOT EXISTS crash_id ON crash (id)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("ANALYZE crash"); err != nil {
		t.Fatal(err)
	}

	if mode == "torn" {
		// After a handful of flushes, split one flush batch around an fsync
		// and die in the gap, leaving a genuinely torn record on disk.
		faultinject.FailAfter("wal.torn", int64(5+round*7), fmt.Errorf("tear now"))
		faultinject.Set("wal.torn.kill", func() error {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // never resume writing
		})
	}

	fmt.Println("CHILD-READY")
	os.Stdout.Sync()

	rng := rand.New(rand.NewSource(int64(round) + 1))
	base := int64(round+1) * 1_000_000
	var ackedIDs []int64
	for n := int64(0); n < 1_000_000; n++ { // parent kills us long before
		id := base + n
		switch {
		case len(ackedIDs) > 0 && rng.Intn(10) == 0:
			victim := ackedIDs[rng.Intn(len(ackedIDs))]
			logLine("TRY-DEL", victim)
			if _, err := db.Exec(fmt.Sprintf("DELETE FROM crash WHERE id = %d", victim)); err == nil {
				logLine("ACK-DEL", victim)
			}
		case n > 0 && n%25 == 0:
			if _, err := db.Exec("CHECKPOINT"); err != nil {
				t.Fatalf("child: checkpoint: %v", err)
			}
		default:
			logLine("TRY-INS", id)
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO crash VALUES (%d)", id)); err == nil {
				logLine("ACK-INS", id)
			}
		}
	}
}
