package wal

import (
	"fmt"
	"path/filepath"

	"lambdadb/internal/persist"
)

// This file is the primary-side surface the replication shipper
// (internal/repl) builds on: positional reads of durable log bytes,
// wakeups when the durable position advances, checkpoint/prune
// coordination with replica positions, and snapshot shipping for a
// replica that fell behind the retained log.

// Dir returns the data directory the manager owns.
func (m *Manager) Dir() string { return m.dir }

// DurablePos returns the position confirmed on disk. Bytes at or below it
// are immutable (flushed batches are never rewritten, rotation only opens
// higher segments), so a shipper may read them from the segment files
// without racing the appender.
func (m *Manager) DurablePos() Pos { return m.activeLog().durablePos() }

// AppendPos returns the logical end of the log: the position the active
// segment reaches once every buffered record is flushed.
func (m *Manager) AppendPos() Pos { return m.activeLog().appendPos() }

// SubscribeDurable registers a wakeup channel that receives a coalesced,
// non-blocking signal whenever the durable position advances (including
// across a rotation) and is closed when the log closes or fails. The
// returned cancel is idempotent.
func (m *Manager) SubscribeDurable() (<-chan struct{}, func()) { return m.activeLog().subscribe() }

// SegmentRetainer lets the replication layer hold sealed segments back
// from checkpoint pruning while a connected replica still needs them.
type SegmentRetainer interface {
	// MinSegment returns the lowest segment sequence that must survive a
	// prune, given the active segment. Returning active (or anything
	// higher) releases every sealed segment.
	MinSegment(active uint64) uint64
}

// SetSegmentRetainer installs the prune hook consulted by Checkpoint.
func (m *Manager) SetSegmentRetainer(r SegmentRetainer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retainer = r
}

// pruneFloor returns the lowest segment Checkpoint must keep.
func (m *Manager) pruneFloor(active uint64) uint64 {
	if m.retainer == nil {
		return active
	}
	if keep := m.retainer.MinSegment(active); keep < active {
		return keep
	}
	return active
}

// ShipState cuts a fresh checkpoint and hands it to fn for shipping to a
// replica that is too far behind the retained log: it rotates at a clock
// boundary, writes the image, and calls fn with the image path, its clock,
// and the segment the replica must mirror from (every record past the
// image sits in that segment or a later one). The manager lock is held
// throughout — Checkpoint and other resyncs wait, commits do not — so the
// image cannot be overwritten and the start segment cannot be pruned while
// fn streams it; fn should record the replica's new position before
// returning.
func (m *Manager) ShipState(fn func(snapshotPath string, clock, startSeg uint64) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("wal: manager is closed")
	}
	var clock uint64
	var epochLSN uint64
	var rerr error
	m.store.WithCommitLock(func(c uint64) {
		clock = c
		if rerr = m.activeLog().rotate(); rerr != nil {
			return
		}
		// Re-announce the fencing epoch so the stream the replica mirrors
		// from startSeg carries it (the shipped image does not).
		if e := m.epoch.Load(); e > 0 {
			epochLSN, _, rerr = m.activeLog().append(encodeEpoch(e))
		}
	})
	if rerr != nil {
		return fmt.Errorf("wal: rotate log: %w", rerr)
	}
	if epochLSN != 0 {
		if err := m.activeLog().waitDurable(epochLSN); err != nil {
			return err
		}
	}
	path := filepath.Join(m.dir, snapshotFile)
	if err := persist.SavePhysicalFile(m.store, path, clock); err != nil {
		return fmt.Errorf("wal: write resync image: %w", err)
	}
	return fn(path, clock, m.activeLog().activeSeq())
}
