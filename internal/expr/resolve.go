package expr

import (
	"fmt"
	"strings"

	"lambdadb/internal/types"
)

// ResolveCtx provides the naming environment for binding column references:
// a schema plus, per column, the table alias that qualifies it (may be "").
type ResolveCtx struct {
	Schema types.Schema
	Quals  []string
}

// NewResolveCtx builds a context where every column carries the same
// qualifier.
func NewResolveCtx(schema types.Schema, qual string) *ResolveCtx {
	quals := make([]string, len(schema))
	for i := range quals {
		quals[i] = qual
	}
	return &ResolveCtx{Schema: schema, Quals: quals}
}

// Concat appends another context's columns (for join schemas).
func (rc *ResolveCtx) Concat(o *ResolveCtx) *ResolveCtx {
	out := &ResolveCtx{
		Schema: append(append(types.Schema{}, rc.Schema...), o.Schema...),
		Quals:  append(append([]string{}, rc.Quals...), o.Quals...),
	}
	return out
}

// Lookup finds the column index for a (table, name) reference. It returns
// an error for unknown or ambiguous references.
func (rc *ResolveCtx) Lookup(table, name string) (int, error) {
	found := -1
	for i, c := range rc.Schema {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(rc.Quals[i], table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("ambiguous column reference %q", refName(table, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("unknown column %q", refName(table, name))
	}
	return found, nil
}

func refName(table, name string) string {
	if table != "" {
		return table + "." + name
	}
	return name
}

// Resolve binds all column references in e against rc and infers types,
// returning a new, fully typed tree. Numeric operands are widened to
// Float64 where an operator mixes Int64 and Float64.
func Resolve(e Expr, rc *ResolveCtx) (Expr, error) {
	switch n := e.(type) {
	case *Const:
		return n, nil

	case *Param:
		// Return a copy so type inference (typeBinOp) can stamp a type on
		// this occurrence without mutating the statement AST, which may be
		// re-resolved later with different bindings.
		return &Param{Idx: n.Idx, Typ: n.Typ}, nil

	case *ColRef:
		idx, err := rc.Lookup(n.Table, n.Name)
		if err != nil {
			return nil, err
		}
		return &ColRef{Table: n.Table, Name: n.Name, Index: idx, Typ: rc.Schema[idx].Type}, nil

	case *ParamField:
		// Lambda parameter fields resolve when the lambda is bound to an
		// operator; inside ordinary queries they are an error.
		return nil, fmt.Errorf("lambda parameter %q used outside a lambda", n)

	case *BinOp:
		l, err := Resolve(n.L, rc)
		if err != nil {
			return nil, err
		}
		r, err := Resolve(n.R, rc)
		if err != nil {
			return nil, err
		}
		return typeBinOp(n.Op, l, r)

	case *UnOp:
		inner, err := Resolve(n.E, rc)
		if err != nil {
			return nil, err
		}
		return typeUnOp(n.Op, inner)

	case *FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := Resolve(a, rc)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return typeFuncCall(n.Name, args, n.Star)

	case *Case:
		out := &Case{Whens: make([]When, len(n.Whens))}
		var resultType types.Type
		for i, w := range n.Whens {
			cond, err := Resolve(w.Cond, rc)
			if err != nil {
				return nil, err
			}
			if cond.Type() != types.Bool {
				return nil, fmt.Errorf("CASE WHEN condition must be boolean, got %s", cond.Type())
			}
			then, err := Resolve(w.Then, rc)
			if err != nil {
				return nil, err
			}
			out.Whens[i] = When{cond, then}
			resultType = unifyTypes(resultType, then.Type())
		}
		if n.Else != nil {
			els, err := Resolve(n.Else, rc)
			if err != nil {
				return nil, err
			}
			out.Else = els
			resultType = unifyTypes(resultType, els.Type())
		}
		if resultType == types.Unknown {
			return nil, fmt.Errorf("cannot infer CASE result type")
		}
		out.Typ = resultType
		// Insert casts so all arms produce the unified type.
		for i := range out.Whens {
			out.Whens[i].Then = castTo(out.Whens[i].Then, resultType)
		}
		if out.Else != nil {
			out.Else = castTo(out.Else, resultType)
		}
		return out, nil

	case *Cast:
		inner, err := Resolve(n.E, rc)
		if err != nil {
			return nil, err
		}
		return &Cast{E: inner, To: n.To}, nil

	case *IsNull:
		inner, err := Resolve(n.E, rc)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Negate: n.Negate}, nil

	case *Like:
		inner, err := Resolve(n.E, rc)
		if err != nil {
			return nil, err
		}
		if inner.Type() != types.String {
			return nil, fmt.Errorf("LIKE requires a string operand, got %s", inner.Type())
		}
		return &Like{E: inner, Pattern: n.Pattern, Negate: n.Negate}, nil

	default:
		return nil, fmt.Errorf("cannot resolve expression %T", e)
	}
}

// unifyTypes picks a common type for two branches, widening numerics.
func unifyTypes(a, b types.Type) types.Type {
	if a == types.Unknown {
		return b
	}
	if b == types.Unknown || a == b {
		return a
	}
	if a.IsNumeric() && b.IsNumeric() {
		return types.Float64
	}
	return a
}

// castTo wraps e in a Cast when its type differs from t.
func castTo(e Expr, t types.Type) Expr {
	if e.Type() == t {
		return e
	}
	return &Cast{E: e, To: t}
}

// adoptParamType lets an untyped Param take the type of the expression on
// the other side of a binary operator, so `id = $1` types $1 from `id`.
func adoptParamType(a, b Expr) {
	if p, ok := a.(*Param); ok && p.Typ == types.Unknown && b.Type() != types.Unknown {
		if _, otherParam := b.(*Param); !otherParam {
			p.Typ = b.Type()
		}
	}
}

func typeBinOp(op Op, l, r Expr) (Expr, error) {
	adoptParamType(l, r)
	adoptParamType(r, l)
	if p, ok := l.(*Param); ok && p.Typ == types.Unknown {
		return nil, fmt.Errorf("cannot infer a type for parameter $%d; declare one with PREPARE name (TYPE, ...) AS ...", p.Idx)
	}
	if p, ok := r.(*Param); ok && p.Typ == types.Unknown {
		return nil, fmt.Errorf("cannot infer a type for parameter $%d; declare one with PREPARE name (TYPE, ...) AS ...", p.Idx)
	}
	lt, rt := l.Type(), r.Type()
	switch {
	case op.IsArith():
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return nil, fmt.Errorf("operator %s requires numeric operands, got %s and %s", op, lt, rt)
		}
		out := types.Int64
		if lt == types.Float64 || rt == types.Float64 || op == OpDiv || op == OpPow {
			out = types.Float64
		}
		if out == types.Float64 {
			l, r = castTo(l, types.Float64), castTo(r, types.Float64)
		}
		return &BinOp{Op: op, L: l, R: r, Typ: out}, nil

	case op.IsComparison():
		if lt.IsNumeric() && rt.IsNumeric() {
			if lt != rt {
				l, r = castTo(l, types.Float64), castTo(r, types.Float64)
			}
		} else if lt != rt {
			return nil, fmt.Errorf("cannot compare %s with %s", lt, rt)
		}
		return &BinOp{Op: op, L: l, R: r, Typ: types.Bool}, nil

	case op == OpAnd || op == OpOr:
		if lt != types.Bool || rt != types.Bool {
			return nil, fmt.Errorf("%s requires boolean operands, got %s and %s", op, lt, rt)
		}
		return &BinOp{Op: op, L: l, R: r, Typ: types.Bool}, nil

	case op == OpConcat:
		if lt != types.String || rt != types.String {
			return nil, fmt.Errorf("|| requires string operands, got %s and %s", lt, rt)
		}
		return &BinOp{Op: op, L: l, R: r, Typ: types.String}, nil
	}
	return nil, fmt.Errorf("unsupported binary operator %s", op)
}

func typeUnOp(op Op, e Expr) (Expr, error) {
	switch op {
	case OpNeg:
		if !e.Type().IsNumeric() {
			return nil, fmt.Errorf("unary - requires a numeric operand, got %s", e.Type())
		}
		return &UnOp{Op: OpNeg, E: e, Typ: e.Type()}, nil
	case OpNot:
		if e.Type() != types.Bool {
			return nil, fmt.Errorf("NOT requires a boolean operand, got %s", e.Type())
		}
		return &UnOp{Op: OpNot, E: e, Typ: types.Bool}, nil
	}
	return nil, fmt.Errorf("unsupported unary operator %s", op)
}

// AggregateFuncs lists the aggregate function names the planner extracts
// from expressions. The expression engine itself never evaluates them.
var AggregateFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"stddev": true, "variance": true,
}

// IsAggregate reports whether e contains an aggregate function call.
func IsAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if f, ok := n.(*FuncCall); ok && AggregateFuncs[f.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
