package expr

import (
	"fmt"
	"math"

	"lambdadb/internal/types"
)

// Evaluator computes one column from an input batch. Returned columns may
// alias input storage (for bare column references); callers must not mutate
// them.
type Evaluator func(*types.Batch) (*types.Column, error)

// Compile translates a resolved expression tree into a tree of closures.
// Each closure is specialized to its operand types, so batch evaluation
// performs no per-row type dispatch — the reproduction's analog of HyPer's
// compiled query pipelines.
func Compile(e Expr) (Evaluator, error) {
	switch n := e.(type) {
	case *Const:
		v := n.Val
		return func(b *types.Batch) (*types.Column, error) {
			return types.ConstColumn(v, b.Len()), nil
		}, nil

	case *ColRef:
		if n.Index < 0 {
			return nil, fmt.Errorf("unresolved column reference %s", n)
		}
		idx := n.Index
		return func(b *types.Batch) (*types.Column, error) {
			if idx >= len(b.Cols) {
				return nil, fmt.Errorf("column index %d out of range (batch has %d)", idx, len(b.Cols))
			}
			return b.Cols[idx], nil
		}, nil

	case *Param:
		return nil, fmt.Errorf("unbound parameter $%d (parameters are only valid in prepared statements)", n.Idx)

	case *Cast:
		return compileCast(n)

	case *BinOp:
		return compileBinOp(n)

	case *UnOp:
		return compileUnOp(n)

	case *FuncCall:
		return compileFunc(n)

	case *Case:
		return compileCase(n)

	case *Like:
		return compileLike(n)

	case *IsNull:
		inner, err := Compile(n.E)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(b *types.Batch) (*types.Column, error) {
			c, err := inner(b)
			if err != nil {
				return nil, err
			}
			n := c.Len()
			out := &types.Column{T: types.Bool, Bools: make([]bool, n)}
			for i := 0; i < n; i++ {
				out.Bools[i] = c.IsNull(i) != negate
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("cannot compile expression %T", e)
}

func compileCast(n *Cast) (Evaluator, error) {
	inner, err := Compile(n.E)
	if err != nil {
		return nil, err
	}
	from, to := n.E.Type(), n.To
	if from == to {
		return inner, nil
	}
	return func(b *types.Batch) (*types.Column, error) {
		c, err := inner(b)
		if err != nil {
			return nil, err
		}
		return castColumn(c, to)
	}, nil
}

func castColumn(c *types.Column, to types.Type) (*types.Column, error) {
	n := c.Len()
	out := types.NewColumn(to, n)
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			out.AppendNull()
			continue
		}
		v, err := castValue(c.Value(i), to)
		if err != nil {
			return nil, err
		}
		out.Append(v)
	}
	return out, nil
}

func castValue(v types.Value, to types.Type) (types.Value, error) {
	switch to {
	case types.Float64:
		if v.T.IsNumeric() {
			return types.NewFloat(v.AsFloat()), nil
		}
	case types.Int64:
		if v.T.IsNumeric() {
			return types.NewInt(v.AsInt()), nil
		}
		if v.T == types.Bool {
			if v.B {
				return types.NewInt(1), nil
			}
			return types.NewInt(0), nil
		}
	case types.String:
		return types.NewString(v.String()), nil
	case types.Bool:
		if v.T == types.Bool {
			return v, nil
		}
	}
	return types.Value{}, fmt.Errorf("cannot cast %s to %s", v.T, to)
}

// mergeNulls returns the elementwise OR of two null bitmaps (either may be
// nil).
func mergeNulls(a, b []bool, n int) []bool {
	if a == nil && b == nil {
		return nil
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = (a != nil && a[i]) || (b != nil && b[i])
	}
	return out
}

func compileBinOp(n *BinOp) (Evaluator, error) {
	l, err := Compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := Compile(n.R)
	if err != nil {
		return nil, err
	}
	op := n.Op
	switch {
	case op == OpAnd:
		return compileAnd(l, r), nil
	case op == OpOr:
		return compileOr(l, r), nil
	case op.IsComparison():
		return compileCompare(op, n.L.Type(), l, r)
	case op == OpConcat:
		return func(b *types.Batch) (*types.Column, error) {
			lc, rc, err := evalPair(l, r, b)
			if err != nil {
				return nil, err
			}
			cnt := lc.Len()
			out := &types.Column{T: types.String, Strs: make([]string, cnt)}
			out.Nulls = mergeNulls(lc.Nulls, rc.Nulls, cnt)
			for i := 0; i < cnt; i++ {
				out.Strs[i] = lc.Strs[i] + rc.Strs[i]
			}
			return out, nil
		}, nil
	case op.IsArith():
		return compileArith(op, n.Typ, l, r)
	}
	return nil, fmt.Errorf("cannot compile operator %s", op)
}

func evalPair(l, r Evaluator, b *types.Batch) (*types.Column, *types.Column, error) {
	lc, err := l(b)
	if err != nil {
		return nil, nil, err
	}
	rc, err := r(b)
	if err != nil {
		return nil, nil, err
	}
	return lc, rc, nil
}

func compileArith(op Op, out types.Type, l, r Evaluator) (Evaluator, error) {
	if out == types.Int64 {
		var fn func(a, b int64) (int64, error)
		switch op {
		case OpAdd:
			fn = func(a, b int64) (int64, error) { return a + b, nil }
		case OpSub:
			fn = func(a, b int64) (int64, error) { return a - b, nil }
		case OpMul:
			fn = func(a, b int64) (int64, error) { return a * b, nil }
		case OpMod:
			fn = func(a, b int64) (int64, error) {
				if b == 0 {
					return 0, fmt.Errorf("modulo by zero")
				}
				return a % b, nil
			}
		default:
			return nil, fmt.Errorf("operator %s cannot yield an integer", op)
		}
		return func(b *types.Batch) (*types.Column, error) {
			lc, rc, err := evalPair(l, r, b)
			if err != nil {
				return nil, err
			}
			n := lc.Len()
			res := &types.Column{T: types.Int64, Ints: make([]int64, n)}
			res.Nulls = mergeNulls(lc.Nulls, rc.Nulls, n)
			for i := 0; i < n; i++ {
				if res.Nulls != nil && res.Nulls[i] {
					continue
				}
				v, err := fn(lc.Ints[i], rc.Ints[i])
				if err != nil {
					return nil, err
				}
				res.Ints[i] = v
			}
			return res, nil
		}, nil
	}

	var fn func(a, b float64) float64
	switch op {
	case OpAdd:
		fn = func(a, b float64) float64 { return a + b }
	case OpSub:
		fn = func(a, b float64) float64 { return a - b }
	case OpMul:
		fn = func(a, b float64) float64 { return a * b }
	case OpDiv:
		fn = func(a, b float64) float64 { return a / b }
	case OpMod:
		fn = math.Mod
	case OpPow:
		fn = math.Pow
	default:
		return nil, fmt.Errorf("operator %s cannot yield a float", op)
	}
	return func(b *types.Batch) (*types.Column, error) {
		lc, rc, err := evalPair(l, r, b)
		if err != nil {
			return nil, err
		}
		n := lc.Len()
		res := &types.Column{T: types.Float64, Floats: make([]float64, n)}
		res.Nulls = mergeNulls(lc.Nulls, rc.Nulls, n)
		lf, rf := lc.Floats, rc.Floats
		for i := 0; i < n; i++ {
			res.Floats[i] = fn(lf[i], rf[i])
		}
		return res, nil
	}, nil
}

func compileCompare(op Op, operand types.Type, l, r Evaluator) (Evaluator, error) {
	// cmpResult maps a three-way comparison to the operator's truth value.
	var truth func(c int) bool
	switch op {
	case OpEq:
		truth = func(c int) bool { return c == 0 }
	case OpNe:
		truth = func(c int) bool { return c != 0 }
	case OpLt:
		truth = func(c int) bool { return c < 0 }
	case OpLe:
		truth = func(c int) bool { return c <= 0 }
	case OpGt:
		truth = func(c int) bool { return c > 0 }
	case OpGe:
		truth = func(c int) bool { return c >= 0 }
	}
	return func(b *types.Batch) (*types.Column, error) {
		lc, rc, err := evalPair(l, r, b)
		if err != nil {
			return nil, err
		}
		n := lc.Len()
		res := &types.Column{T: types.Bool, Bools: make([]bool, n)}
		res.Nulls = mergeNulls(lc.Nulls, rc.Nulls, n)
		switch operand {
		case types.Int64:
			for i := 0; i < n; i++ {
				a, bb := lc.Ints[i], rc.Ints[i]
				res.Bools[i] = truth(cmp3(a < bb, a > bb))
			}
		case types.Float64:
			for i := 0; i < n; i++ {
				a, bb := lc.Floats[i], rc.Floats[i]
				res.Bools[i] = truth(cmp3(a < bb, a > bb))
			}
		case types.String:
			for i := 0; i < n; i++ {
				a, bb := lc.Strs[i], rc.Strs[i]
				res.Bools[i] = truth(cmp3(a < bb, a > bb))
			}
		case types.Bool:
			for i := 0; i < n; i++ {
				a, bb := lc.Bools[i], rc.Bools[i]
				res.Bools[i] = truth(cmp3(!a && bb, a && !bb))
			}
		default:
			return nil, fmt.Errorf("cannot compare values of type %s", operand)
		}
		return res, nil
	}, nil
}

func cmp3(lt, gt bool) int {
	switch {
	case lt:
		return -1
	case gt:
		return 1
	}
	return 0
}

// compileAnd implements SQL three-valued AND: false dominates NULL.
func compileAnd(l, r Evaluator) Evaluator {
	return func(b *types.Batch) (*types.Column, error) {
		lc, rc, err := evalPair(l, r, b)
		if err != nil {
			return nil, err
		}
		n := lc.Len()
		res := &types.Column{T: types.Bool, Bools: make([]bool, n)}
		var nulls []bool
		for i := 0; i < n; i++ {
			ln, rn := lc.IsNull(i), rc.IsNull(i)
			lv := !ln && lc.Bools[i]
			rv := !rn && rc.Bools[i]
			switch {
			case !ln && !rn:
				res.Bools[i] = lv && rv
			case (!ln && !lv) || (!rn && !rv):
				res.Bools[i] = false // false AND anything = false
			default:
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[i] = true
			}
		}
		res.Nulls = nulls
		return res, nil
	}
}

// compileOr implements SQL three-valued OR: true dominates NULL.
func compileOr(l, r Evaluator) Evaluator {
	return func(b *types.Batch) (*types.Column, error) {
		lc, rc, err := evalPair(l, r, b)
		if err != nil {
			return nil, err
		}
		n := lc.Len()
		res := &types.Column{T: types.Bool, Bools: make([]bool, n)}
		var nulls []bool
		for i := 0; i < n; i++ {
			ln, rn := lc.IsNull(i), rc.IsNull(i)
			lv := !ln && lc.Bools[i]
			rv := !rn && rc.Bools[i]
			switch {
			case !ln && !rn:
				res.Bools[i] = lv || rv
			case lv || rv:
				res.Bools[i] = true
			default:
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[i] = true
			}
		}
		res.Nulls = nulls
		return res, nil
	}
}

func compileUnOp(n *UnOp) (Evaluator, error) {
	inner, err := Compile(n.E)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpNeg:
		t := n.Typ
		return func(b *types.Batch) (*types.Column, error) {
			c, err := inner(b)
			if err != nil {
				return nil, err
			}
			cnt := c.Len()
			out := types.NewColumn(t, cnt)
			out.Nulls = mergeNulls(c.Nulls, nil, cnt)
			if out.Nulls == nil && c.Nulls != nil {
				out.Nulls = append([]bool{}, c.Nulls...)
			}
			if t == types.Int64 {
				out.Ints = make([]int64, cnt)
				for i := 0; i < cnt; i++ {
					out.Ints[i] = -c.Ints[i]
				}
			} else {
				out.Floats = make([]float64, cnt)
				for i := 0; i < cnt; i++ {
					out.Floats[i] = -c.Floats[i]
				}
			}
			return out, nil
		}, nil
	case OpNot:
		return func(b *types.Batch) (*types.Column, error) {
			c, err := inner(b)
			if err != nil {
				return nil, err
			}
			cnt := c.Len()
			out := &types.Column{T: types.Bool, Bools: make([]bool, cnt)}
			if c.Nulls != nil {
				out.Nulls = append([]bool{}, c.Nulls...)
			}
			for i := 0; i < cnt; i++ {
				out.Bools[i] = !c.Bools[i]
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("cannot compile unary operator %s", n.Op)
}

func compileCase(n *Case) (Evaluator, error) {
	conds := make([]Evaluator, len(n.Whens))
	thens := make([]Evaluator, len(n.Whens))
	for i, w := range n.Whens {
		var err error
		if conds[i], err = Compile(w.Cond); err != nil {
			return nil, err
		}
		if thens[i], err = Compile(w.Then); err != nil {
			return nil, err
		}
	}
	var els Evaluator
	if n.Else != nil {
		var err error
		if els, err = Compile(n.Else); err != nil {
			return nil, err
		}
	}
	t := n.Typ
	return func(b *types.Batch) (*types.Column, error) {
		cnt := b.Len()
		// decided[i] = arm index + 1, 0 = undecided.
		decided := make([]int, cnt)
		remaining := cnt
		for a := range conds {
			if remaining == 0 {
				break
			}
			cc, err := conds[a](b)
			if err != nil {
				return nil, err
			}
			for i := 0; i < cnt; i++ {
				if decided[i] == 0 && !cc.IsNull(i) && cc.Bools[i] {
					decided[i] = a + 1
					remaining--
				}
			}
		}
		armCols := make([]*types.Column, len(thens))
		for a, th := range thens {
			c, err := th(b)
			if err != nil {
				return nil, err
			}
			armCols[a] = c
		}
		var elseCol *types.Column
		if els != nil {
			c, err := els(b)
			if err != nil {
				return nil, err
			}
			elseCol = c
		}
		out := types.NewColumn(t, cnt)
		for i := 0; i < cnt; i++ {
			switch {
			case decided[i] > 0:
				out.Append(armCols[decided[i]-1].Value(i))
			case elseCol != nil:
				out.Append(elseCol.Value(i))
			default:
				out.AppendNull()
			}
		}
		return out, nil
	}, nil
}

func compileFunc(n *FuncCall) (Evaluator, error) {
	if AggregateFuncs[n.Name] {
		return nil, fmt.Errorf("aggregate %s evaluated outside GROUP BY context", n.Name)
	}
	args := make([]Evaluator, len(n.Args))
	for i, a := range n.Args {
		ev, err := Compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = ev
	}
	name := n.Name
	if f := scalarFloatFunc(name); f != nil && len(args) == 1 && n.Typ == types.Float64 {
		arg := args[0]
		return func(b *types.Batch) (*types.Column, error) {
			c, err := arg(b)
			if err != nil {
				return nil, err
			}
			cnt := c.Len()
			out := &types.Column{T: types.Float64, Floats: make([]float64, cnt)}
			if c.Nulls != nil {
				out.Nulls = append([]bool{}, c.Nulls...)
			}
			for i := 0; i < cnt; i++ {
				out.Floats[i] = f(c.Floats[i])
			}
			return out, nil
		}, nil
	}
	switch name {
	case "abs", "sign":
		// Integer-typed abs/sign.
		arg := args[0]
		return func(b *types.Batch) (*types.Column, error) {
			c, err := arg(b)
			if err != nil {
				return nil, err
			}
			cnt := c.Len()
			out := &types.Column{T: types.Int64, Ints: make([]int64, cnt)}
			if c.Nulls != nil {
				out.Nulls = append([]bool{}, c.Nulls...)
			}
			for i := 0; i < cnt; i++ {
				v := c.Ints[i]
				if name == "abs" {
					if v < 0 {
						v = -v
					}
				} else {
					switch {
					case v > 0:
						v = 1
					case v < 0:
						v = -1
					}
				}
				out.Ints[i] = v
			}
			return out, nil
		}, nil
	case "pow", "power":
		l, r := args[0], args[1]
		return func(b *types.Batch) (*types.Column, error) {
			lc, rc, err := evalPair(l, r, b)
			if err != nil {
				return nil, err
			}
			cnt := lc.Len()
			out := &types.Column{T: types.Float64, Floats: make([]float64, cnt)}
			out.Nulls = mergeNulls(lc.Nulls, rc.Nulls, cnt)
			for i := 0; i < cnt; i++ {
				out.Floats[i] = math.Pow(lc.Floats[i], rc.Floats[i])
			}
			return out, nil
		}, nil
	case "least", "greatest":
		want := -1 // comparison direction
		if name == "greatest" {
			want = 1
		}
		t := n.Typ
		return func(b *types.Batch) (*types.Column, error) {
			cols := make([]*types.Column, len(args))
			for i, a := range args {
				c, err := a(b)
				if err != nil {
					return nil, err
				}
				cols[i] = c
			}
			cnt := b.Len()
			out := types.NewColumn(t, cnt)
			for i := 0; i < cnt; i++ {
				var best types.Value
				haveBest := false
				null := false
				for _, c := range cols {
					if c.IsNull(i) {
						null = true
						break
					}
					v := c.Value(i)
					if !haveBest || v.Compare(best) == want {
						best, haveBest = v, true
					}
				}
				if null {
					out.AppendNull()
				} else {
					bv, err := castValue(best, t)
					if err != nil {
						return nil, err
					}
					out.Append(bv)
				}
			}
			return out, nil
		}, nil
	case "coalesce":
		t := n.Typ
		return func(b *types.Batch) (*types.Column, error) {
			cols := make([]*types.Column, len(args))
			for i, a := range args {
				c, err := a(b)
				if err != nil {
					return nil, err
				}
				cols[i] = c
			}
			cnt := b.Len()
			out := types.NewColumn(t, cnt)
			for i := 0; i < cnt; i++ {
				appended := false
				for _, c := range cols {
					if !c.IsNull(i) {
						v, err := castValue(c.Value(i), t)
						if err != nil {
							return nil, err
						}
						out.Append(v)
						appended = true
						break
					}
				}
				if !appended {
					out.AppendNull()
				}
			}
			return out, nil
		}, nil
	case "length", "lower", "upper", "substr":
		return compileStringFunc(name, args)
	}
	return nil, fmt.Errorf("unknown function %q", name)
}

func compileStringFunc(name string, args []Evaluator) (Evaluator, error) {
	return func(b *types.Batch) (*types.Column, error) {
		cols := make([]*types.Column, len(args))
		for i, a := range args {
			c, err := a(b)
			if err != nil {
				return nil, err
			}
			cols[i] = c
		}
		cnt := b.Len()
		var out *types.Column
		if name == "length" {
			out = &types.Column{T: types.Int64, Ints: make([]int64, cnt)}
		} else {
			out = &types.Column{T: types.String, Strs: make([]string, cnt)}
		}
		if cols[0].Nulls != nil {
			out.Nulls = append([]bool{}, cols[0].Nulls...)
		}
		for i := 0; i < cnt; i++ {
			if cols[0].IsNull(i) {
				continue
			}
			s := cols[0].Strs[i]
			switch name {
			case "length":
				out.Ints[i] = int64(len(s))
			case "lower":
				out.Strs[i] = toLower(s)
			case "upper":
				out.Strs[i] = toUpper(s)
			case "substr":
				start := int(cols[1].Ints[i]) - 1 // SQL is 1-based
				if start < 0 {
					start = 0
				}
				end := len(s)
				if len(cols) == 3 {
					if e := start + int(cols[2].Ints[i]); e < end {
						end = e
					}
				}
				if start > len(s) {
					start = len(s)
				}
				if end < start {
					end = start
				}
				out.Strs[i] = s[start:end]
			}
		}
		return out, nil
	}, nil
}

func toLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

func toUpper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 32
		}
	}
	return string(b)
}

func compileLike(n *Like) (Evaluator, error) {
	inner, err := Compile(n.E)
	if err != nil {
		return nil, err
	}
	pattern, negate := n.Pattern, n.Negate
	return func(b *types.Batch) (*types.Column, error) {
		c, err := inner(b)
		if err != nil {
			return nil, err
		}
		cnt := c.Len()
		out := &types.Column{T: types.Bool, Bools: make([]bool, cnt)}
		if c.Nulls != nil {
			out.Nulls = append([]bool{}, c.Nulls...)
		}
		for i := 0; i < cnt; i++ {
			if c.IsNull(i) {
				continue
			}
			out.Bools[i] = MatchLike(c.Strs[i], pattern) != negate
		}
		return out, nil
	}, nil
}

// MatchLike implements SQL LIKE matching: % matches any byte sequence,
// _ matches exactly one byte. The classic two-pointer algorithm backtracks
// to the most recent %.
func MatchLike(s, pattern string) bool {
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// EvalConst evaluates a constant-foldable expression to a scalar value.
func EvalConst(e Expr) (types.Value, error) {
	// Bare literals (including untyped NULL) need no compilation.
	if c, ok := e.(*Const); ok {
		return c.Val, nil
	}
	ev, err := Compile(e)
	if err != nil {
		return types.Value{}, err
	}
	// A one-row dummy batch drives the evaluation.
	b := &types.Batch{Schema: types.Schema{{Name: "dummy", Type: types.Int64}},
		Cols: []*types.Column{{T: types.Int64, Ints: []int64{0}}}}
	c, err := ev(b)
	if err != nil {
		return types.Value{}, err
	}
	if c.Len() != 1 {
		return types.Value{}, fmt.Errorf("constant expression produced %d rows", c.Len())
	}
	return c.Value(0), nil
}

// IsConst reports whether e references no columns or parameters.
func IsConst(e Expr) bool {
	constant := true
	Walk(e, func(n Expr) bool {
		switch n.(type) {
		case *ColRef, *ParamField:
			constant = false
			return false
		}
		return true
	})
	return constant
}
