package expr

import (
	"fmt"
	"math"

	"lambdadb/internal/types"
)

// FloatFn is a compiled scalar lambda over up to two numeric tuples, the
// form analytical operators use in their hot loops (e.g. a distance metric
// in k-Means). Parameters beyond those a lambda declares are ignored.
type FloatFn func(a, b []float64) float64

// boolFn is the boolean counterpart used for comparisons inside lambdas.
type boolFn func(a, b []float64) bool

// BindLambda resolves a lambda's parameter fields against the tuple schemas
// its parameters are bound to (one schema per parameter, positional). All
// referenced fields must be numeric. It returns a resolved copy.
func BindLambda(l *Lambda, schemas []types.Schema) (*Lambda, error) {
	if len(schemas) < len(l.Params) {
		return nil, fmt.Errorf("lambda %s: bound to %d inputs, declares %d parameters",
			l, len(schemas), len(l.Params))
	}
	paramIdx := make(map[string]int, len(l.Params))
	for i, p := range l.Params {
		paramIdx[p] = i
	}
	var bindErr error
	body := Rewrite(l.Body, func(e Expr) Expr {
		pf, ok := e.(*ParamField)
		if !ok || bindErr != nil {
			return e
		}
		pi, ok := paramIdx[pf.Param]
		if !ok {
			bindErr = fmt.Errorf("lambda %s: unknown parameter %q", l, pf.Param)
			return e
		}
		fi := schemas[pi].IndexOf(pf.Field)
		if fi < 0 {
			bindErr = fmt.Errorf("lambda %s: parameter %q has no field %q", l, pf.Param, pf.Field)
			return e
		}
		ft := schemas[pi][fi].Type
		if !ft.IsNumeric() {
			bindErr = fmt.Errorf("lambda %s: field %s.%s is %s, need a numeric type",
				l, pf.Param, pf.Field, ft)
			return e
		}
		return &ParamField{Param: pf.Param, Field: pf.Field,
			ParamIdx: pi, FieldIdx: fi, Typ: types.Float64}
	})
	if bindErr != nil {
		return nil, bindErr
	}
	return &Lambda{Params: l.Params, Body: body}, nil
}

// CompileFloatLambda compiles a bound lambda into a scalar float closure.
// The lambda body may use arithmetic, comparisons, CASE, and the scalar
// math functions; all values are treated as float64.
func CompileFloatLambda(l *Lambda) (FloatFn, error) {
	return compileFloatScalar(l.Body)
}

func compileFloatScalar(e Expr) (FloatFn, error) {
	switch n := e.(type) {
	case *Const:
		if !n.Val.T.IsNumeric() {
			return nil, fmt.Errorf("lambda: non-numeric constant %s", n)
		}
		v := n.Val.AsFloat()
		return func(_, _ []float64) float64 { return v }, nil

	case *ParamField:
		if n.ParamIdx < 0 || n.FieldIdx < 0 {
			return nil, fmt.Errorf("lambda: unbound parameter field %s", n)
		}
		fi := n.FieldIdx
		if n.ParamIdx == 0 {
			return func(a, _ []float64) float64 { return a[fi] }, nil
		}
		if n.ParamIdx == 1 {
			return func(_, b []float64) float64 { return b[fi] }, nil
		}
		return nil, fmt.Errorf("lambda: more than two parameters are not supported in scalar compilation")

	case *Cast:
		// Numeric casts are identities in the all-float domain.
		return compileFloatScalar(n.E)

	case *UnOp:
		inner, err := compileFloatScalar(n.E)
		if err != nil {
			return nil, err
		}
		if n.Op != OpNeg {
			return nil, fmt.Errorf("lambda: unary %s not supported in float context", n.Op)
		}
		return func(a, b []float64) float64 { return -inner(a, b) }, nil

	case *BinOp:
		if !n.Op.IsArith() {
			return nil, fmt.Errorf("lambda: operator %s does not produce a number", n.Op)
		}
		l, err := compileFloatScalar(n.L)
		if err != nil {
			return nil, err
		}
		r, err := compileFloatScalar(n.R)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case OpAdd:
			return func(a, b []float64) float64 { return l(a, b) + r(a, b) }, nil
		case OpSub:
			return func(a, b []float64) float64 { return l(a, b) - r(a, b) }, nil
		case OpMul:
			return func(a, b []float64) float64 { return l(a, b) * r(a, b) }, nil
		case OpDiv:
			return func(a, b []float64) float64 { return l(a, b) / r(a, b) }, nil
		case OpMod:
			return func(a, b []float64) float64 { return math.Mod(l(a, b), r(a, b)) }, nil
		case OpPow:
			// The overwhelmingly common lambda shape is `expr ^ 2`;
			// specialize small integer exponents.
			if c, ok := n.R.(*Const); ok && !c.Val.Null {
				switch c.Val.AsFloat() {
				case 2:
					return func(a, b []float64) float64 { v := l(a, b); return v * v }, nil
				case 3:
					return func(a, b []float64) float64 { v := l(a, b); return v * v * v }, nil
				case 1:
					return l, nil
				case 0.5:
					return func(a, b []float64) float64 { return math.Sqrt(l(a, b)) }, nil
				}
			}
			return func(a, b []float64) float64 { return math.Pow(l(a, b), r(a, b)) }, nil
		}

	case *FuncCall:
		if f := scalarFloatFunc(n.Name); f != nil && len(n.Args) == 1 {
			inner, err := compileFloatScalar(n.Args[0])
			if err != nil {
				return nil, err
			}
			return func(a, b []float64) float64 { return f(inner(a, b)) }, nil
		}
		switch n.Name {
		case "pow", "power":
			l, err := compileFloatScalar(n.Args[0])
			if err != nil {
				return nil, err
			}
			r, err := compileFloatScalar(n.Args[1])
			if err != nil {
				return nil, err
			}
			return func(a, b []float64) float64 { return math.Pow(l(a, b), r(a, b)) }, nil
		case "least", "greatest":
			fns := make([]FloatFn, len(n.Args))
			for i, arg := range n.Args {
				fn, err := compileFloatScalar(arg)
				if err != nil {
					return nil, err
				}
				fns[i] = fn
			}
			if n.Name == "least" {
				return func(a, b []float64) float64 {
					best := fns[0](a, b)
					for _, fn := range fns[1:] {
						if v := fn(a, b); v < best {
							best = v
						}
					}
					return best
				}, nil
			}
			return func(a, b []float64) float64 {
				best := fns[0](a, b)
				for _, fn := range fns[1:] {
					if v := fn(a, b); v > best {
						best = v
					}
				}
				return best
			}, nil
		}
		return nil, fmt.Errorf("lambda: function %q not supported in scalar compilation", n.Name)

	case *Case:
		conds := make([]boolFn, len(n.Whens))
		thens := make([]FloatFn, len(n.Whens))
		for i, w := range n.Whens {
			c, err := compileBoolScalar(w.Cond)
			if err != nil {
				return nil, err
			}
			t, err := compileFloatScalar(w.Then)
			if err != nil {
				return nil, err
			}
			conds[i], thens[i] = c, t
		}
		var els FloatFn
		if n.Else != nil {
			var err error
			if els, err = compileFloatScalar(n.Else); err != nil {
				return nil, err
			}
		} else {
			els = func(_, _ []float64) float64 { return 0 }
		}
		return func(a, b []float64) float64 {
			for i, c := range conds {
				if c(a, b) {
					return thens[i](a, b)
				}
			}
			return els(a, b)
		}, nil
	}
	return nil, fmt.Errorf("lambda: cannot compile %T in scalar context", e)
}

func compileBoolScalar(e Expr) (boolFn, error) {
	switch n := e.(type) {
	case *Const:
		if n.Val.T != types.Bool {
			return nil, fmt.Errorf("lambda: expected boolean constant, got %s", n)
		}
		v := n.Val.B
		return func(_, _ []float64) bool { return v }, nil

	case *UnOp:
		if n.Op != OpNot {
			return nil, fmt.Errorf("lambda: unary %s not boolean", n.Op)
		}
		inner, err := compileBoolScalar(n.E)
		if err != nil {
			return nil, err
		}
		return func(a, b []float64) bool { return !inner(a, b) }, nil

	case *BinOp:
		switch {
		case n.Op == OpAnd || n.Op == OpOr:
			l, err := compileBoolScalar(n.L)
			if err != nil {
				return nil, err
			}
			r, err := compileBoolScalar(n.R)
			if err != nil {
				return nil, err
			}
			if n.Op == OpAnd {
				return func(a, b []float64) bool { return l(a, b) && r(a, b) }, nil
			}
			return func(a, b []float64) bool { return l(a, b) || r(a, b) }, nil

		case n.Op.IsComparison():
			l, err := compileFloatScalar(n.L)
			if err != nil {
				return nil, err
			}
			r, err := compileFloatScalar(n.R)
			if err != nil {
				return nil, err
			}
			switch n.Op {
			case OpEq:
				return func(a, b []float64) bool { return l(a, b) == r(a, b) }, nil
			case OpNe:
				return func(a, b []float64) bool { return l(a, b) != r(a, b) }, nil
			case OpLt:
				return func(a, b []float64) bool { return l(a, b) < r(a, b) }, nil
			case OpLe:
				return func(a, b []float64) bool { return l(a, b) <= r(a, b) }, nil
			case OpGt:
				return func(a, b []float64) bool { return l(a, b) > r(a, b) }, nil
			case OpGe:
				return func(a, b []float64) bool { return l(a, b) >= r(a, b) }, nil
			}
		}
	}
	return nil, fmt.Errorf("lambda: cannot compile %T in boolean context", e)
}

// DefaultDistanceLambda returns the paper's default k-Means variation
// point: squared Euclidean distance over d dimensions. It is used when a
// query passes no lambda (paper Section 7: "for all variation points we
// provide default lambdas").
func DefaultDistanceLambda(d int) FloatFn {
	return func(a, b []float64) float64 {
		var s float64
		for i := 0; i < d; i++ {
			diff := a[i] - b[i]
			s += diff * diff
		}
		return s
	}
}

// ManhattanDistanceLambda returns the L1 metric (k-Medians variant).
func ManhattanDistanceLambda(d int) FloatFn {
	return func(a, b []float64) float64 {
		var s float64
		for i := 0; i < d; i++ {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}
}
