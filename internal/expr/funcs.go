package expr

import (
	"fmt"
	"math"
	"strings"

	"lambdadb/internal/types"
)

// scalarSig describes a builtin scalar function: argument checking and
// result typing.
type scalarSig struct {
	minArgs, maxArgs int
	// resultType infers the output type from resolved argument types.
	resultType func(args []Expr) (types.Type, error)
}

func numericResult(args []Expr) (types.Type, error) {
	for _, a := range args {
		if !a.Type().IsNumeric() {
			return types.Unknown, fmt.Errorf("expected numeric argument, got %s", a.Type())
		}
	}
	return types.Float64, nil
}

func sameNumericResult(args []Expr) (types.Type, error) {
	out := types.Int64
	for _, a := range args {
		if !a.Type().IsNumeric() {
			return types.Unknown, fmt.Errorf("expected numeric argument, got %s", a.Type())
		}
		if a.Type() == types.Float64 {
			out = types.Float64
		}
	}
	return out, nil
}

func stringArgResult(t types.Type) func(args []Expr) (types.Type, error) {
	return func(args []Expr) (types.Type, error) {
		if args[0].Type() != types.String {
			return types.Unknown, fmt.Errorf("expected string argument, got %s", args[0].Type())
		}
		return t, nil
	}
}

var scalarFuncs = map[string]scalarSig{
	"abs":      {1, 1, sameNumericResult},
	"sign":     {1, 1, sameNumericResult},
	"sqrt":     {1, 1, numericResult},
	"exp":      {1, 1, numericResult},
	"ln":       {1, 1, numericResult},
	"log":      {1, 1, numericResult},
	"pow":      {2, 2, numericResult},
	"power":    {2, 2, numericResult},
	"floor":    {1, 1, numericResult},
	"ceil":     {1, 1, numericResult},
	"round":    {1, 1, numericResult},
	"sin":      {1, 1, numericResult},
	"cos":      {1, 1, numericResult},
	"least":    {2, 16, sameNumericResult},
	"greatest": {2, 16, sameNumericResult},
	"coalesce": {1, 16, func(args []Expr) (types.Type, error) {
		t := types.Unknown
		for _, a := range args {
			t = unifyTypes(t, a.Type())
		}
		if t == types.Unknown {
			return t, fmt.Errorf("cannot infer coalesce type")
		}
		return t, nil
	}},
	"length": {1, 1, stringArgResult(types.Int64)},
	"lower":  {1, 1, stringArgResult(types.String)},
	"upper":  {1, 1, stringArgResult(types.String)},
	"substr": {2, 3, func(args []Expr) (types.Type, error) {
		if args[0].Type() != types.String {
			return types.Unknown, fmt.Errorf("substr expects a string, got %s", args[0].Type())
		}
		for _, a := range args[1:] {
			if a.Type() != types.Int64 {
				return types.Unknown, fmt.Errorf("substr positions must be integers")
			}
		}
		return types.String, nil
	}},
}

// typeFuncCall type-checks a scalar or aggregate function call.
func typeFuncCall(name string, args []Expr, star bool) (Expr, error) {
	name = strings.ToLower(name)
	if AggregateFuncs[name] {
		return typeAggCall(name, args, star)
	}
	sig, ok := scalarFuncs[name]
	if !ok {
		return nil, fmt.Errorf("unknown function %q", name)
	}
	if len(args) < sig.minArgs || len(args) > sig.maxArgs {
		return nil, fmt.Errorf("function %s: wrong argument count %d", name, len(args))
	}
	t, err := sig.resultType(args)
	if err != nil {
		return nil, fmt.Errorf("function %s: %w", name, err)
	}
	// Widen numeric args for float-typed functions so the evaluator only
	// sees float inputs.
	if t == types.Float64 {
		for i, a := range args {
			if a.Type() == types.Int64 {
				args[i] = &Cast{E: a, To: types.Float64}
			}
		}
	}
	return &FuncCall{Name: name, Args: args, Typ: t}, nil
}

func typeAggCall(name string, args []Expr, star bool) (Expr, error) {
	if star {
		if name != "count" {
			return nil, fmt.Errorf("%s(*) is not valid", name)
		}
		return &FuncCall{Name: name, Star: true, Typ: types.Int64}, nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("aggregate %s expects one argument", name)
	}
	at := args[0].Type()
	var t types.Type
	switch name {
	case "count":
		t = types.Int64
	case "avg", "stddev", "variance":
		if !at.IsNumeric() {
			return nil, fmt.Errorf("%s expects a numeric argument, got %s", name, at)
		}
		t = types.Float64
	case "sum":
		if !at.IsNumeric() {
			return nil, fmt.Errorf("sum expects a numeric argument, got %s", at)
		}
		t = at
	case "min", "max":
		t = at
	default:
		return nil, fmt.Errorf("unknown aggregate %q", name)
	}
	return &FuncCall{Name: name, Args: args, Typ: t}, nil
}

// scalarFloatFunc returns the float implementation for 1-arg math funcs.
func scalarFloatFunc(name string) func(float64) float64 {
	switch name {
	case "sqrt":
		return math.Sqrt
	case "exp":
		return math.Exp
	case "ln":
		return math.Log
	case "log":
		return math.Log10
	case "floor":
		return math.Floor
	case "ceil":
		return math.Ceil
	case "round":
		return math.Round
	case "sin":
		return math.Sin
	case "cos":
		return math.Cos
	case "abs":
		return math.Abs
	case "sign":
		return func(x float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			}
			return 0
		}
	}
	return nil
}
