package expr

import (
	"testing"
	"testing/quick"

	"lambdadb/internal/types"
)

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "_____", true},
		{"hello", "____", false},
		{"hello", "H%", false}, // case sensitive
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"mississippi", "m%iss%ppi", true},
		{"mississippi", "m%iss%ippi%", true},
		{"ab", "a%b%c", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.pattern); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

func TestMatchLikeProperties(t *testing.T) {
	// Any string matches itself and "%".
	f := func(s string) bool {
		return MatchLike(s, s) && MatchLike(s, "%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Prefix% matches.
	g := func(a, b string) bool {
		return MatchLike(a+b, a+"%")
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeInQuery(t *testing.T) {
	e, err := Resolve(&Like{E: col("s"), Pattern: "%b%"}, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ev(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	// Test batch strings: "a", "b", "C".
	if c.Bools[0] || !c.Bools[1] || c.Bools[2] {
		t.Errorf("LIKE = %v", c.Bools)
	}
	// NOT LIKE.
	ne, _ := Resolve(&Like{E: col("s"), Pattern: "%b%", Negate: true}, testCtx())
	nev, _ := Compile(ne)
	nc, _ := nev(testBatch())
	if !nc.Bools[0] || nc.Bools[1] {
		t.Errorf("NOT LIKE = %v", nc.Bools)
	}
}

func TestLikeRequiresString(t *testing.T) {
	if _, err := Resolve(&Like{E: col("x"), Pattern: "%"}, testCtx()); err == nil {
		t.Error("LIKE on an integer column should fail to resolve")
	}
}

func TestLikeNullPropagates(t *testing.T) {
	schema := types.Schema{{Name: "v", Type: types.String}}
	b := types.NewBatch(schema)
	b.AppendRow([]types.Value{types.NewNull(types.String)})
	b.AppendRow([]types.Value{types.NewString("x")})
	e, err := Resolve(&Like{E: col("v"), Pattern: "x"}, NewResolveCtx(schema, ""))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := Compile(e)
	c, _ := ev(b)
	if !c.IsNull(0) {
		t.Error("NULL LIKE pattern should be NULL")
	}
	if c.IsNull(1) || !c.Bools[1] {
		t.Errorf("row 1 = %v", c.Bools)
	}
}
