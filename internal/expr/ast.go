// Package expr implements the typed expression engine: expression trees
// produced by the SQL parser, name resolution and type inference, and
// compilation to vectorized evaluator closures.
//
// Closure compilation is this reproduction's substitute for HyPer's LLVM
// code generation: each expression is compiled once per operator into a
// tree of Go closures, so per-row evaluation performs no type dispatch.
//
// The package also implements the paper's lambda expressions (Section 7):
// anonymous SQL functions such as `λ(a, b) (a.x-b.x)^2 + (a.y-b.y)^2` that
// parameterize analytical operators. Lambdas over numeric tuples compile to
// scalar float closures invoked inside the operators' hot loops.
package expr

import (
	"fmt"
	"strings"

	"lambdadb/internal/types"
)

// Expr is a node in an expression tree. Type returns types.Unknown before
// resolution.
type Expr interface {
	Type() types.Type
	String() string
}

// Op enumerates binary and unary operators.
type Op uint8

// Operators.
const (
	OpInvalid Op = iota
	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow // ^ as in the paper's Listing 3
	// Comparison.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Logic.
	OpAnd
	OpOr
	OpNot
	// Unary arithmetic.
	OpNeg
	// String concatenation.
	OpConcat
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%", OpPow: "^",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT", OpNeg: "-", OpConcat: "||",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether o yields a boolean from two operands.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// IsArith reports whether o is an arithmetic operator.
func (o Op) IsArith() bool { return o >= OpAdd && o <= OpPow }

// Const is a literal value.
type Const struct {
	Val types.Value
}

// Type implements Expr.
func (c *Const) Type() types.Type { return c.Val.T }

func (c *Const) String() string {
	if c.Val.T == types.String && !c.Val.Null {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// Param is a $N positional parameter placeholder (Idx is 1-based). Its type
// is Unknown until resolution infers one from the surrounding expression or
// a PREPARE type list stamps one on. Params survive into cached plans and
// are substituted with Consts when the plan is rebound at EXECUTE time; an
// unbound Param reaching the evaluator is an error.
type Param struct {
	Idx int
	Typ types.Type
}

// Type implements Expr.
func (p *Param) Type() types.Type { return p.Typ }

func (p *Param) String() string { return fmt.Sprintf("$%d", p.Idx) }

// ColRef references a column, optionally qualified by a table alias.
// Index is -1 until resolution binds it to a position in the input schema.
type ColRef struct {
	Table string
	Name  string
	Index int
	Typ   types.Type
}

// Type implements Expr.
func (c *ColRef) Type() types.Type { return c.Typ }

func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// BinOp is a binary operation.
type BinOp struct {
	Op   Op
	L, R Expr
	Typ  types.Type
}

// Type implements Expr.
func (b *BinOp) Type() types.Type { return b.Typ }

func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnOp is a unary operation (NOT, negation).
type UnOp struct {
	Op  Op
	E   Expr
	Typ types.Type
}

// Type implements Expr.
func (u *UnOp) Type() types.Type { return u.Typ }

func (u *UnOp) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }

// FuncCall is a scalar or aggregate function call. The planner decides
// which names are aggregates; the expression engine evaluates only scalars.
type FuncCall struct {
	Name string // lower-case
	Args []Expr
	Typ  types.Type
	// Star marks COUNT(*).
	Star bool
}

// Type implements Expr.
func (f *FuncCall) Type() types.Type { return f.Typ }

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // may be nil (NULL)
	Typ   types.Type
}

// When is one WHEN cond THEN result arm.
type When struct {
	Cond Expr
	Then Expr
}

// Type implements Expr.
func (c *Case) Type() types.Type { return c.Typ }

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// Cast converts an expression to a target type.
type Cast struct {
	E  Expr
	To types.Type
}

// Type implements Expr.
func (c *Cast) Type() types.Type { return c.To }

func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }

// IsNull tests nullness; with Negate it is IS NOT NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Type implements Expr.
func (i *IsNull) Type() types.Type { return types.Bool }

func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// Like is `expr [NOT] LIKE 'pattern'` with % (any sequence) and _ (any
// single byte) wildcards.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// Type implements Expr.
func (l *Like) Type() types.Type { return types.Bool }

func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s '%s')", l.E, op, l.Pattern)
}

// ParamField references a field of a lambda parameter, e.g. a.x inside
// `λ(a, b) ...`. ParamIdx selects the parameter, FieldIdx the field within
// the tuple the parameter is bound to; both are -1 until resolved against
// the operator's input schema.
type ParamField struct {
	Param    string
	Field    string
	ParamIdx int
	FieldIdx int
	Typ      types.Type
}

// Type implements Expr.
func (p *ParamField) Type() types.Type { return p.Typ }

func (p *ParamField) String() string { return p.Param + "." + p.Field }

// Lambda is an anonymous SQL function: parameter names plus a body that may
// reference parameter fields. Input and output types are inferred when the
// lambda is bound to an operator variation point (paper Section 7).
type Lambda struct {
	Params []string
	Body   Expr
}

func (l *Lambda) String() string {
	return "λ(" + strings.Join(l.Params, ", ") + ") " + l.Body.String()
}

// Walk visits e and all children in preorder. The visitor returns false to
// stop descending into a node's children.
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch n := e.(type) {
	case *BinOp:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *UnOp:
		Walk(n.E, visit)
	case *FuncCall:
		for _, a := range n.Args {
			Walk(a, visit)
		}
	case *Case:
		for _, w := range n.Whens {
			Walk(w.Cond, visit)
			Walk(w.Then, visit)
		}
		if n.Else != nil {
			Walk(n.Else, visit)
		}
	case *Cast:
		Walk(n.E, visit)
	case *IsNull:
		Walk(n.E, visit)
	case *Like:
		Walk(n.E, visit)
	}
}

// Rewrite returns a copy of e with fn applied bottom-up: children are
// rewritten first, then fn transforms the node itself.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *BinOp:
		c := *n
		c.L = Rewrite(n.L, fn)
		c.R = Rewrite(n.R, fn)
		return fn(&c)
	case *UnOp:
		c := *n
		c.E = Rewrite(n.E, fn)
		return fn(&c)
	case *FuncCall:
		c := *n
		c.Args = make([]Expr, len(n.Args))
		for i, a := range n.Args {
			c.Args[i] = Rewrite(a, fn)
		}
		return fn(&c)
	case *Case:
		c := *n
		c.Whens = make([]When, len(n.Whens))
		for i, w := range n.Whens {
			c.Whens[i] = When{Rewrite(w.Cond, fn), Rewrite(w.Then, fn)}
		}
		if n.Else != nil {
			c.Else = Rewrite(n.Else, fn)
		}
		return fn(&c)
	case *Cast:
		c := *n
		c.E = Rewrite(n.E, fn)
		return fn(&c)
	case *IsNull:
		c := *n
		c.E = Rewrite(n.E, fn)
		return fn(&c)
	case *Like:
		c := *n
		c.E = Rewrite(n.E, fn)
		return fn(&c)
	default:
		return fn(e)
	}
}

// ReferencedColumns returns the set of column indices referenced by e.
// All ColRefs must be resolved.
func ReferencedColumns(e Expr, into map[int]bool) {
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*ColRef); ok && c.Index >= 0 {
			into[c.Index] = true
		}
		return true
	})
}
