package expr

import (
	"math"
	"testing"
	"testing/quick"

	"lambdadb/internal/types"
)

func xySchema() types.Schema {
	return types.Schema{{Name: "x", Type: types.Float64}, {Name: "y", Type: types.Float64}}
}

func pf(param, field string) Expr {
	return &ParamField{Param: param, Field: field, ParamIdx: -1, FieldIdx: -1}
}

// euclidLambda builds λ(a, b) (a.x-b.x)^2 + (a.y-b.y)^2 — the paper's
// Listing 3.
func euclidLambda() *Lambda {
	sq := func(p Expr) Expr {
		return &BinOp{Op: OpPow, L: p, R: &Const{Val: types.NewInt(2)}}
	}
	body := &BinOp{Op: OpAdd,
		L: sq(&BinOp{Op: OpSub, L: pf("a", "x"), R: pf("b", "x")}),
		R: sq(&BinOp{Op: OpSub, L: pf("a", "y"), R: pf("b", "y")}),
	}
	return &Lambda{Params: []string{"a", "b"}, Body: body}
}

func TestBindAndCompileEuclidean(t *testing.T) {
	l, err := BindLambda(euclidLambda(), []types.Schema{xySchema(), xySchema()})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := CompileFloatLambda(l)
	if err != nil {
		t.Fatal(err)
	}
	got := fn([]float64{0, 0}, []float64{3, 4})
	if got != 25 {
		t.Errorf("distance = %v, want 25", got)
	}
}

func TestLambdaMatchesDefaultDistance(t *testing.T) {
	l, err := BindLambda(euclidLambda(), []types.Schema{xySchema(), xySchema()})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := CompileFloatLambda(l)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultDistanceLambda(2)
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) ||
			math.IsInf(ax, 0) || math.IsInf(ay, 0) || math.IsInf(bx, 0) || math.IsInf(by, 0) {
			return true
		}
		a, b := []float64{ax, ay}, []float64{bx, by}
		x, y := fn(a, b), def(a, b)
		if x == y {
			return true
		}
		// allow tiny fp discrepancy from different association
		return math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanLambda(t *testing.T) {
	// λ(a, b) abs(a.x-b.x) + abs(a.y-b.y): the k-Medians variation point.
	absDiff := func(f string) Expr {
		return &FuncCall{Name: "abs",
			Args: []Expr{&BinOp{Op: OpSub, L: pf("a", f), R: pf("b", f)}}}
	}
	l := &Lambda{Params: []string{"a", "b"},
		Body: &BinOp{Op: OpAdd, L: absDiff("x"), R: absDiff("y")}}
	bound, err := BindLambda(l, []types.Schema{xySchema(), xySchema()})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := CompileFloatLambda(bound)
	if err != nil {
		t.Fatal(err)
	}
	got := fn([]float64{0, 0}, []float64{3, -4})
	if got != 7 {
		t.Errorf("L1 distance = %v, want 7", got)
	}
	ref := ManhattanDistanceLambda(2)([]float64{0, 0}, []float64{3, -4})
	if got != ref {
		t.Errorf("lambda %v != builtin %v", got, ref)
	}
}

func TestLambdaWithCase(t *testing.T) {
	// λ(a, b) CASE WHEN a.x > b.x THEN a.x - b.x ELSE b.x - a.x END
	l := &Lambda{Params: []string{"a", "b"}, Body: &Case{
		Whens: []When{{
			Cond: &BinOp{Op: OpGt, L: pf("a", "x"), R: pf("b", "x")},
			Then: &BinOp{Op: OpSub, L: pf("a", "x"), R: pf("b", "x")},
		}},
		Else: &BinOp{Op: OpSub, L: pf("b", "x"), R: pf("a", "x")},
	}}
	bound, err := BindLambda(l, []types.Schema{xySchema(), xySchema()})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := CompileFloatLambda(bound)
	if err != nil {
		t.Fatal(err)
	}
	if got := fn([]float64{5, 0}, []float64{2, 0}); got != 3 {
		t.Errorf("case lambda = %v, want 3", got)
	}
	if got := fn([]float64{2, 0}, []float64{5, 0}); got != 3 {
		t.Errorf("case lambda = %v, want 3", got)
	}
}

func TestBindLambdaErrors(t *testing.T) {
	// Unknown parameter.
	l := &Lambda{Params: []string{"a"}, Body: pf("z", "x")}
	if _, err := BindLambda(l, []types.Schema{xySchema()}); err == nil {
		t.Error("unknown parameter should fail")
	}
	// Unknown field.
	l = &Lambda{Params: []string{"a"}, Body: pf("a", "nope")}
	if _, err := BindLambda(l, []types.Schema{xySchema()}); err == nil {
		t.Error("unknown field should fail")
	}
	// Non-numeric field.
	l = &Lambda{Params: []string{"a"}, Body: pf("a", "s")}
	strSchema := types.Schema{{Name: "s", Type: types.String}}
	if _, err := BindLambda(l, []types.Schema{strSchema}); err == nil {
		t.Error("non-numeric field should fail")
	}
	// Too few bound schemas.
	l = &Lambda{Params: []string{"a", "b"}, Body: pf("a", "x")}
	if _, err := BindLambda(l, []types.Schema{xySchema()}); err == nil {
		t.Error("missing schema binding should fail")
	}
}

func TestPowSpecializations(t *testing.T) {
	for _, tc := range []struct {
		exp  float64
		base float64
		want float64
	}{
		{2, 3, 9}, {3, 2, 8}, {1, 5, 5}, {0.5, 16, 4}, {4, 2, 16},
	} {
		l := &Lambda{Params: []string{"a"}, Body: &BinOp{Op: OpPow,
			L: pf("a", "x"), R: &Const{Val: types.NewFloat(tc.exp)}}}
		bound, err := BindLambda(l, []types.Schema{{{Name: "x", Type: types.Float64}}})
		if err != nil {
			t.Fatal(err)
		}
		fn, err := CompileFloatLambda(bound)
		if err != nil {
			t.Fatal(err)
		}
		if got := fn([]float64{tc.base}, nil); got != tc.want {
			t.Errorf("%v^%v = %v, want %v", tc.base, tc.exp, got, tc.want)
		}
	}
}

func TestLambdaString(t *testing.T) {
	l := euclidLambda()
	s := l.String()
	if s == "" || s[0:2] != "λ" {
		t.Errorf("lambda String = %q", s)
	}
}

func TestDefaultDistanceProperties(t *testing.T) {
	d := DefaultDistanceLambda(3)
	// Non-negativity and identity.
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		p := []float64{x, y, z}
		return d(p, p) == 0 && d(p, []float64{0, 0, 0}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Symmetry.
	g := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := []float64{ax, ay, az}, []float64{bx, by, bz}
		return d(a, b) == d(b, a)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
