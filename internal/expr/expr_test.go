package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"lambdadb/internal/types"
)

// testBatch builds a batch with columns x BIGINT, y DOUBLE, s VARCHAR,
// b BOOLEAN.
func testBatch() *types.Batch {
	schema := types.Schema{
		{Name: "x", Type: types.Int64},
		{Name: "y", Type: types.Float64},
		{Name: "s", Type: types.String},
		{Name: "b", Type: types.Bool},
	}
	batch := types.NewBatch(schema)
	batch.AppendRow([]types.Value{types.NewInt(1), types.NewFloat(1.5), types.NewString("a"), types.NewBool(true)})
	batch.AppendRow([]types.Value{types.NewInt(2), types.NewFloat(2.5), types.NewString("b"), types.NewBool(false)})
	batch.AppendRow([]types.Value{types.NewInt(3), types.NewFloat(-1), types.NewString("C"), types.NewBool(true)})
	return batch
}

func testCtx() *ResolveCtx {
	return NewResolveCtx(testBatch().Schema, "t")
}

// evalOn resolves, compiles, and evaluates e against the test batch.
func evalOn(t *testing.T, e Expr) *types.Column {
	t.Helper()
	r, err := Resolve(e, testCtx())
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	ev, err := Compile(r)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c, err := ev(testBatch())
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return c
}

func col(name string) Expr      { return &ColRef{Name: name, Index: -1} }
func lit(v types.Value) Expr    { return &Const{Val: v} }
func bin(op Op, l, r Expr) Expr { return &BinOp{Op: op, L: l, R: r} }

func TestArithInt(t *testing.T) {
	c := evalOn(t, bin(OpAdd, col("x"), lit(types.NewInt(10))))
	if c.T != types.Int64 {
		t.Fatalf("type = %v", c.T)
	}
	want := []int64{11, 12, 13}
	for i, w := range want {
		if c.Ints[i] != w {
			t.Errorf("row %d = %d, want %d", i, c.Ints[i], w)
		}
	}
}

func TestArithMixedWidensToFloat(t *testing.T) {
	c := evalOn(t, bin(OpMul, col("x"), col("y")))
	if c.T != types.Float64 {
		t.Fatalf("type = %v", c.T)
	}
	want := []float64{1.5, 5.0, -3.0}
	for i, w := range want {
		if c.Floats[i] != w {
			t.Errorf("row %d = %v, want %v", i, c.Floats[i], w)
		}
	}
}

func TestIntDivisionYieldsFloat(t *testing.T) {
	c := evalOn(t, bin(OpDiv, col("x"), lit(types.NewInt(2))))
	if c.T != types.Float64 {
		t.Fatalf("x/2 type = %v, want DOUBLE", c.T)
	}
	if c.Floats[0] != 0.5 || c.Floats[1] != 1.0 {
		t.Errorf("division values = %v", c.Floats)
	}
}

func TestModByZeroErrors(t *testing.T) {
	r, err := Resolve(bin(OpMod, col("x"), lit(types.NewInt(0))), testCtx())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Compile(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev(testBatch()); err == nil {
		t.Error("x % 0 should error")
	}
}

func TestPowOperator(t *testing.T) {
	c := evalOn(t, bin(OpPow, col("y"), lit(types.NewInt(2))))
	want := []float64{2.25, 6.25, 1}
	for i, w := range want {
		if math.Abs(c.Floats[i]-w) > 1e-12 {
			t.Errorf("y^2 row %d = %v, want %v", i, c.Floats[i], w)
		}
	}
}

func TestComparisons(t *testing.T) {
	c := evalOn(t, bin(OpGt, col("x"), lit(types.NewInt(1))))
	want := []bool{false, true, true}
	for i, w := range want {
		if c.Bools[i] != w {
			t.Errorf("x>1 row %d = %v", i, c.Bools[i])
		}
	}
	c = evalOn(t, bin(OpEq, col("s"), lit(types.NewString("b"))))
	if c.Bools[0] || !c.Bools[1] || c.Bools[2] {
		t.Errorf("s='b' = %v", c.Bools)
	}
	// Cross-type numeric comparison.
	c = evalOn(t, bin(OpLe, col("x"), col("y")))
	if !c.Bools[0] || !c.Bools[1] || c.Bools[2] {
		t.Errorf("x<=y = %v", c.Bools)
	}
}

func TestLogicAndOrNot(t *testing.T) {
	e := bin(OpAnd, bin(OpGt, col("x"), lit(types.NewInt(1))), col("b"))
	c := evalOn(t, e)
	if c.Bools[0] || c.Bools[1] || !c.Bools[2] {
		t.Errorf("AND = %v", c.Bools)
	}
	e = bin(OpOr, col("b"), bin(OpGt, col("x"), lit(types.NewInt(2))))
	c = evalOn(t, e)
	if !c.Bools[0] || c.Bools[1] || !c.Bools[2] {
		t.Errorf("OR = %v", c.Bools)
	}
	c = evalOn(t, &UnOp{Op: OpNot, E: col("b")})
	if c.Bools[0] || !c.Bools[1] || c.Bools[2] {
		t.Errorf("NOT = %v", c.Bools)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	// Build a batch with NULL booleans to verify Kleene logic.
	schema := types.Schema{{Name: "p", Type: types.Bool}, {Name: "q", Type: types.Bool}}
	b := types.NewBatch(schema)
	tv, fv, nv := types.NewBool(true), types.NewBool(false), types.NewNull(types.Bool)
	rows := [][2]types.Value{
		{nv, fv}, // NULL AND false = false ; NULL OR false = NULL
		{nv, tv}, // NULL AND true = NULL ; NULL OR true = true
		{nv, nv}, // NULL AND NULL = NULL
	}
	for _, r := range rows {
		b.AppendRow([]types.Value{r[0], r[1]})
	}
	rc := NewResolveCtx(schema, "")
	andE, err := Resolve(bin(OpAnd, col("p"), col("q")), rc)
	if err != nil {
		t.Fatal(err)
	}
	andEv, _ := Compile(andE)
	c, err := andEv(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsNull(0) || c.Bools[0] {
		t.Error("NULL AND false should be false")
	}
	if !c.IsNull(1) {
		t.Error("NULL AND true should be NULL")
	}
	if !c.IsNull(2) {
		t.Error("NULL AND NULL should be NULL")
	}

	orE, err := Resolve(bin(OpOr, col("p"), col("q")), rc)
	if err != nil {
		t.Fatal(err)
	}
	orEv, _ := Compile(orE)
	c, err = orEv(b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsNull(0) {
		t.Error("NULL OR false should be NULL")
	}
	if c.IsNull(1) || !c.Bools[1] {
		t.Error("NULL OR true should be true")
	}
}

func TestIsNull(t *testing.T) {
	schema := types.Schema{{Name: "v", Type: types.Int64}}
	b := types.NewBatch(schema)
	b.AppendRow([]types.Value{types.NewInt(1)})
	b.AppendRow([]types.Value{types.NewNull(types.Int64)})
	rc := NewResolveCtx(schema, "")
	e, err := Resolve(&IsNull{E: col("v")}, rc)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := Compile(e)
	c, _ := ev(b)
	if c.Bools[0] || !c.Bools[1] {
		t.Errorf("IS NULL = %v", c.Bools)
	}
	e2, _ := Resolve(&IsNull{E: col("v"), Negate: true}, rc)
	ev2, _ := Compile(e2)
	c2, _ := ev2(b)
	if !c2.Bools[0] || c2.Bools[1] {
		t.Errorf("IS NOT NULL = %v", c2.Bools)
	}
}

func TestCaseExpr(t *testing.T) {
	e := &Case{
		Whens: []When{
			{Cond: bin(OpEq, col("x"), lit(types.NewInt(1))), Then: lit(types.NewString("one"))},
			{Cond: bin(OpEq, col("x"), lit(types.NewInt(2))), Then: lit(types.NewString("two"))},
		},
		Else: lit(types.NewString("many")),
	}
	c := evalOn(t, e)
	want := []string{"one", "two", "many"}
	for i, w := range want {
		if c.Strs[i] != w {
			t.Errorf("CASE row %d = %q, want %q", i, c.Strs[i], w)
		}
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	e := &Case{Whens: []When{
		{Cond: bin(OpEq, col("x"), lit(types.NewInt(1))), Then: lit(types.NewInt(100))},
	}}
	c := evalOn(t, e)
	if c.IsNull(0) || !c.IsNull(1) || !c.IsNull(2) {
		t.Errorf("CASE nulls = %v %v", c.Ints, c.Nulls)
	}
}

func TestCaseUnifiesNumericArms(t *testing.T) {
	e := &Case{
		Whens: []When{{Cond: col("b"), Then: lit(types.NewInt(1))}},
		Else:  lit(types.NewFloat(0.5)),
	}
	c := evalOn(t, e)
	if c.T != types.Float64 {
		t.Fatalf("CASE type = %v, want DOUBLE", c.T)
	}
	if c.Floats[0] != 1 || c.Floats[1] != 0.5 {
		t.Errorf("CASE values = %v", c.Floats)
	}
}

func TestScalarFunctions(t *testing.T) {
	c := evalOn(t, &FuncCall{Name: "sqrt", Args: []Expr{lit(types.NewFloat(9))}})
	if c.Floats[0] != 3 {
		t.Errorf("sqrt(9) = %v", c.Floats[0])
	}
	c = evalOn(t, &FuncCall{Name: "abs", Args: []Expr{col("y")}})
	if c.Floats[2] != 1 {
		t.Errorf("abs(-1) = %v", c.Floats[2])
	}
	c = evalOn(t, &FuncCall{Name: "abs", Args: []Expr{bin(OpSub, col("x"), lit(types.NewInt(2)))}})
	if c.T != types.Int64 || c.Ints[0] != 1 || c.Ints[1] != 0 || c.Ints[2] != 1 {
		t.Errorf("integer abs = %v (%v)", c.Ints, c.T)
	}
	c = evalOn(t, &FuncCall{Name: "least", Args: []Expr{col("x"), lit(types.NewInt(2))}})
	if c.Ints[0] != 1 || c.Ints[1] != 2 || c.Ints[2] != 2 {
		t.Errorf("least = %v", c.Ints)
	}
	c = evalOn(t, &FuncCall{Name: "upper", Args: []Expr{col("s")}})
	if c.Strs[0] != "A" || c.Strs[2] != "C" {
		t.Errorf("upper = %v", c.Strs)
	}
	c = evalOn(t, &FuncCall{Name: "length", Args: []Expr{col("s")}})
	if c.Ints[0] != 1 {
		t.Errorf("length = %v", c.Ints)
	}
	c = evalOn(t, &FuncCall{Name: "pow", Args: []Expr{col("x"), lit(types.NewInt(3))}})
	if c.Floats[2] != 27 {
		t.Errorf("pow = %v", c.Floats)
	}
}

func TestCoalesce(t *testing.T) {
	schema := types.Schema{{Name: "v", Type: types.Int64}}
	b := types.NewBatch(schema)
	b.AppendRow([]types.Value{types.NewNull(types.Int64)})
	b.AppendRow([]types.Value{types.NewInt(7)})
	rc := NewResolveCtx(schema, "")
	e, err := Resolve(&FuncCall{Name: "coalesce", Args: []Expr{col("v"), lit(types.NewInt(-1))}}, rc)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := Compile(e)
	c, _ := ev(b)
	if c.Ints[0] != -1 || c.Ints[1] != 7 {
		t.Errorf("coalesce = %v", c.Ints)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []Expr{
		col("nope"), // unknown column
		bin(OpAdd, col("s"), lit(types.NewInt(1))),      // string + int
		bin(OpAnd, col("x"), col("b")),                  // int AND bool
		bin(OpEq, col("s"), lit(types.NewInt(1))),       // string = int
		&FuncCall{Name: "nosuchfn", Args: []Expr{}},     // unknown function
		&UnOp{Op: OpNeg, E: col("s")},                   // -string
		&UnOp{Op: OpNot, E: col("x")},                   // NOT int
		&FuncCall{Name: "sqrt", Args: []Expr{col("s")}}, // sqrt(string)
	}
	for i, e := range cases {
		if _, err := Resolve(e, testCtx()); err == nil {
			t.Errorf("case %d (%v): expected resolve error", i, e)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	rc := &ResolveCtx{
		Schema: types.Schema{{Name: "x", Type: types.Int64}, {Name: "x", Type: types.Int64}},
		Quals:  []string{"a", "b"},
	}
	if _, err := Resolve(col("x"), rc); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
	// Qualification disambiguates.
	e, err := Resolve(&ColRef{Table: "b", Name: "x", Index: -1}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*ColRef).Index != 1 {
		t.Errorf("qualified ref bound to %d", e.(*ColRef).Index)
	}
}

func TestQualifierCaseInsensitive(t *testing.T) {
	rc := NewResolveCtx(types.Schema{{Name: "x", Type: types.Int64}}, "T")
	if _, err := Resolve(&ColRef{Table: "t", Name: "x", Index: -1}, rc); err != nil {
		t.Errorf("case-insensitive qualifier failed: %v", err)
	}
}

func TestCastEval(t *testing.T) {
	c := evalOn(t, &Cast{E: col("x"), To: types.Float64})
	if c.T != types.Float64 || c.Floats[2] != 3.0 {
		t.Errorf("cast = %v (%v)", c.Floats, c.T)
	}
	c = evalOn(t, &Cast{E: col("y"), To: types.String})
	if c.Strs[0] != "1.5" {
		t.Errorf("cast to string = %v", c.Strs)
	}
	c = evalOn(t, &Cast{E: col("y"), To: types.Int64})
	if c.Ints[0] != 1 || c.Ints[1] != 2 {
		t.Errorf("float->int cast = %v", c.Ints)
	}
}

func TestEvalConst(t *testing.T) {
	e, err := Resolve(bin(OpMul, lit(types.NewInt(6)), lit(types.NewInt(7))), testCtx())
	if err != nil {
		t.Fatal(err)
	}
	v, err := EvalConst(e)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Errorf("EvalConst = %v", v)
	}
	if !IsConst(e) {
		t.Error("IsConst should hold for literal expression")
	}
	if IsConst(col("x")) {
		t.Error("IsConst should not hold for a column ref")
	}
}

func TestReferencedColumns(t *testing.T) {
	e, err := Resolve(bin(OpAdd, col("x"), bin(OpMul, col("x"), col("y"))), testCtx())
	if err != nil {
		t.Fatal(err)
	}
	refs := map[int]bool{}
	ReferencedColumns(e, refs)
	if len(refs) != 2 || !refs[0] || !refs[1] {
		t.Errorf("refs = %v", refs)
	}
}

func TestRewriteIdentityPreservesShape(t *testing.T) {
	e := bin(OpAdd, col("x"), bin(OpMul, col("y"), lit(types.NewInt(2))))
	got := Rewrite(e, func(n Expr) Expr { return n })
	if got.String() != e.String() {
		t.Errorf("rewrite changed %q to %q", e, got)
	}
}

func TestArithCommutativityProperty(t *testing.T) {
	// a+b == b+a through the whole resolve/compile pipeline.
	f := func(a, b int32) bool {
		e1 := bin(OpAdd, lit(types.NewInt(int64(a))), lit(types.NewInt(int64(b))))
		e2 := bin(OpAdd, lit(types.NewInt(int64(b))), lit(types.NewInt(int64(a))))
		r1, err1 := Resolve(e1, testCtx())
		r2, err2 := Resolve(e2, testCtx())
		if err1 != nil || err2 != nil {
			return false
		}
		v1, err1 := EvalConst(r1)
		v2, err2 := EvalConst(r2)
		return err1 == nil && err2 == nil && v1.I == v2.I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
