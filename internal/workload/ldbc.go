package workload

import (
	"math/rand"
)

// Graph is an undirected social graph emitted as a directed edge list with
// both directions present — the shape of the LDBC SNB person-knows-person
// relation the paper evaluates on.
type Graph struct {
	NumVertices int
	// Src/Dst list every undirected edge twice (u→v and v→u).
	Src, Dst []int64
}

// NumDirectedEdges returns the number of directed edges (2× undirected).
func (g *Graph) NumDirectedEdges() int { return len(g.Src) }

// LDBCScale names the three graph sizes of the paper's Figure 5 (left).
type LDBCScale struct {
	Name     string
	Vertices int
	// UndirectedEdges approximates the paper's edge counts (which count
	// directed person-knows-person rows).
	DirectedEdges int
}

// LDBCScales mirrors the paper's three datasets: 11k/452k, 73k/4.6m,
// 499k/46m (vertices / directed edges).
var LDBCScales = []LDBCScale{
	{Name: "ldbc-sf1", Vertices: 11_000, DirectedEdges: 452_000},
	{Name: "ldbc-sf10", Vertices: 73_000, DirectedEdges: 4_600_000},
	{Name: "ldbc-sf100", Vertices: 499_000, DirectedEdges: 46_000_000},
}

// SocialGraph generates an undirected preferential-attachment graph with
// the given vertex count and approximate directed edge count. Preferential
// attachment yields the heavy-tailed degree distribution characteristic of
// social networks, which is the property that drives PageRank cost — our
// substitute for the LDBC SNB generator (see DESIGN.md).
func SocialGraph(vertices, directedEdges int, seed int64) *Graph {
	if vertices < 2 {
		vertices = 2
	}
	undirected := directedEdges / 2
	m := undirected / vertices // attachments per joining vertex
	if m < 1 {
		m = 1
	}
	r := rand.New(rand.NewSource(seed))

	g := &Graph{NumVertices: vertices}
	// endpoints records every edge endpoint; sampling from it implements
	// preferential attachment (probability proportional to degree).
	endpoints := make([]int64, 0, 2*undirected)

	addEdge := func(u, v int64) {
		g.Src = append(g.Src, u, v)
		g.Dst = append(g.Dst, v, u)
		endpoints = append(endpoints, u, v)
	}

	// Seed clique over the first m+1 vertices.
	seedSize := m + 1
	if seedSize > vertices {
		seedSize = vertices
	}
	for u := 0; u < seedSize; u++ {
		for v := u + 1; v < seedSize; v++ {
			addEdge(int64(u), int64(v))
		}
	}
	// Each remaining vertex attaches to m existing vertices, preferring
	// high-degree ones.
	for u := seedSize; u < vertices; u++ {
		attached := map[int64]bool{}
		for len(attached) < m {
			var v int64
			if r.Intn(10) == 0 {
				// Small uniform component keeps the graph connected-ish and
				// bounds hub dominance, like LDBC's person-similarity noise.
				v = int64(r.Intn(u))
			} else {
				v = endpoints[r.Intn(len(endpoints))]
			}
			if v == int64(u) || attached[v] {
				continue
			}
			attached[v] = true
			addEdge(int64(u), v)
		}
	}
	return g
}

// MaxDegree returns the maximum vertex degree (for tests of skew).
func (g *Graph) MaxDegree() int {
	deg := make([]int, g.NumVertices)
	for _, s := range g.Src {
		deg[s]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}
