package workload

import (
	"testing"
	"testing/quick"

	"lambdadb/internal/engine"
)

func TestUniformVectorsDeterministic(t *testing.T) {
	a := UniformVectors(100, 5, 7)
	b := UniformVectors(100, 5, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical data")
		}
	}
	c := UniformVectors(100, 5, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different data")
	}
}

func TestUniformVectorsRange(t *testing.T) {
	f := func(seed int64) bool {
		data := UniformVectors(200, 3, seed)
		for _, v := range data {
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUniformLabelsDistribution(t *testing.T) {
	labels := UniformLabels(10_000, 2, 1)
	counts := map[int64]int{}
	for _, l := range labels {
		counts[l]++
	}
	if len(counts) != 2 {
		t.Fatalf("labels = %v", counts)
	}
	// Uniform two-label density: each side within 45-55%.
	for l, c := range counts {
		if c < 4500 || c > 5500 {
			t.Errorf("label %d count %d not near uniform", l, c)
		}
	}
}

func TestSampleCentersDistinct(t *testing.T) {
	data := UniformVectors(100, 4, 2)
	centers := SampleCenters(data, 100, 4, 10, 3)
	if len(centers) != 40 {
		t.Fatalf("centers length = %d", len(centers))
	}
	// All centers must be actual data rows.
	rowSet := map[[4]float64]bool{}
	for i := 0; i < 100; i++ {
		var key [4]float64
		copy(key[:], data[i*4:i*4+4])
		rowSet[key] = true
	}
	seen := map[[4]float64]bool{}
	for c := 0; c < 10; c++ {
		var key [4]float64
		copy(key[:], centers[c*4:c*4+4])
		if !rowSet[key] {
			t.Errorf("center %d is not a data row", c)
		}
		if seen[key] {
			t.Errorf("center %d duplicated", c)
		}
		seen[key] = true
	}
}

func TestSocialGraphShape(t *testing.T) {
	g := SocialGraph(1000, 10_000, 1)
	if g.NumVertices != 1000 {
		t.Errorf("vertices = %d", g.NumVertices)
	}
	// Directed edge count within 25% of the request.
	got := g.NumDirectedEdges()
	if got < 7_500 || got > 12_500 {
		t.Errorf("directed edges = %d, want ≈10000", got)
	}
	// Undirectedness: both directions present.
	edgeSet := map[[2]int64]bool{}
	for i := range g.Src {
		edgeSet[[2]int64{g.Src[i], g.Dst[i]}] = true
	}
	for i := range g.Src {
		if !edgeSet[[2]int64{g.Dst[i], g.Src[i]}] {
			t.Fatalf("edge %d→%d missing its reverse", g.Src[i], g.Dst[i])
		}
	}
	// Vertex ids within range.
	for i := range g.Src {
		if g.Src[i] < 0 || g.Src[i] >= int64(g.NumVertices) {
			t.Fatalf("vertex id out of range: %d", g.Src[i])
		}
	}
}

func TestSocialGraphHeavyTail(t *testing.T) {
	// Preferential attachment: the max degree must far exceed the mean
	// (the skew that makes the graph LDBC/social-network-like).
	g := SocialGraph(5000, 50_000, 2)
	mean := float64(g.NumDirectedEdges()) / float64(g.NumVertices)
	if max := g.MaxDegree(); float64(max) < 4*mean {
		t.Errorf("max degree %d vs mean %.1f: degree distribution not heavy-tailed", max, mean)
	}
}

func TestSocialGraphDeterministic(t *testing.T) {
	a := SocialGraph(500, 5000, 3)
	b := SocialGraph(500, 5000, 3)
	if len(a.Src) != len(b.Src) {
		t.Fatal("lengths differ")
	}
	for i := range a.Src {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] {
			t.Fatal("same seed must give identical graphs")
		}
	}
}

func TestLoadVectorTable(t *testing.T) {
	db := engine.Open()
	data := UniformVectors(1000, 3, 4)
	if err := LoadVectorTable(db, "vecs", data, 1000, 3); err != nil {
		t.Fatal(err)
	}
	r, err := db.Query(`SELECT count(*), min(d0), max(d2) FROM vecs`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1000 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
	if r.Rows[0][1].F < 0 || r.Rows[0][2].F >= 1 {
		t.Errorf("bounds = %v", r.Rows[0])
	}
	// Reloading replaces the table.
	if err := LoadVectorTable(db, "vecs", data[:30], 10, 3); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Query(`SELECT count(*) FROM vecs`)
	if r.Rows[0][0].I != 10 {
		t.Errorf("reload count = %v", r.Rows[0][0])
	}
}

func TestLoadLabeledAndEdgeTables(t *testing.T) {
	db := engine.Open()
	data := UniformVectors(500, 2, 5)
	labels := UniformLabels(500, 2, 6)
	if err := LoadLabeledVectorTable(db, "train", data, labels, 500, 2); err != nil {
		t.Fatal(err)
	}
	r, err := db.Query(`SELECT count(DISTINCT label) FROM train`)
	if err == nil {
		_ = r // count(DISTINCT) unsupported; fall through to GROUP BY check
	}
	r, err = db.Query(`SELECT label, count(*) FROM train GROUP BY label ORDER BY label`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Errorf("labels = %v", r.Rows)
	}

	g := SocialGraph(100, 500, 7)
	if err := LoadEdgeTable(db, "edges", g.Src, g.Dst); err != nil {
		t.Fatal(err)
	}
	r, err = db.Query(`SELECT count(*) FROM edges`)
	if err != nil {
		t.Fatal(err)
	}
	if int(r.Rows[0][0].I) != g.NumDirectedEdges() {
		t.Errorf("edge count = %v, want %d", r.Rows[0][0], g.NumDirectedEdges())
	}
}

func TestLDBCScalesMatchPaper(t *testing.T) {
	if len(LDBCScales) != 3 {
		t.Fatal("expected three LDBC scales")
	}
	if LDBCScales[0].Vertices != 11_000 || LDBCScales[0].DirectedEdges != 452_000 {
		t.Errorf("scale 1 = %+v", LDBCScales[0])
	}
	if LDBCScales[2].Vertices != 499_000 || LDBCScales[2].DirectedEdges != 46_000_000 {
		t.Errorf("scale 3 = %+v", LDBCScales[2])
	}
}

func TestVectorSchema(t *testing.T) {
	s := VectorSchema(3)
	if len(s) != 3 || s[0].Name != "d0" || s[2].Name != "d2" {
		t.Errorf("schema = %v", s)
	}
}
