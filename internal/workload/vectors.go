// Package workload generates the synthetic datasets of the paper's
// evaluation (Section 8.1): uniformly distributed vector data for k-Means
// and Naive Bayes, and LDBC-SNB-like social graphs for PageRank.
//
// All generators are deterministic in their seed so experiments are
// reproducible run to run.
package workload

import (
	"fmt"
	"math/rand"

	"lambdadb/internal/engine"
	"lambdadb/internal/types"
)

// UniformVectors generates n tuples of d dimensions, uniformly distributed
// in [0, 1), row-major. The paper argues uniform synthetic data is adequate
// because plain k-Means with a fixed iteration count is insensitive to
// skew (Section 8.1.1).
func UniformVectors(n, d int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n*d)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// UniformLabels generates n labels drawn uniformly from {0, ..., classes-1}
// (the paper uses a uniform density over two labels, Section 8.1.2).
func UniformLabels(n, classes int, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.Intn(classes))
	}
	return out
}

// SampleCenters picks k distinct rows of data (n×d row-major) as initial
// cluster centers — the paper's "simplest cluster initialization strategy:
// random selection of k initial cluster centers".
func SampleCenters(data []float64, n, d, k int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, k*d)
	seen := map[int]bool{}
	for len(seen) < k && len(seen) < n {
		i := r.Intn(n)
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, data[i*d:i*d+d]...)
	}
	return out
}

// VectorColumnNames returns the conventional dimension column names
// d0, d1, ... used by the generated tables.
func VectorColumnNames(d int) []string {
	out := make([]string, d)
	for j := range out {
		out[j] = fmt.Sprintf("d%d", j)
	}
	return out
}

// VectorSchema builds the schema of a d-dimensional vector table.
func VectorSchema(d int) types.Schema {
	names := VectorColumnNames(d)
	schema := make(types.Schema, d)
	for j, name := range names {
		schema[j] = types.ColumnInfo{Name: name, Type: types.Float64}
	}
	return schema
}

// LoadVectorTable bulk-loads row-major vector data into a new table.
func LoadVectorTable(db *engine.DB, table string, data []float64, n, d int) error {
	schema := VectorSchema(d)
	return bulkLoad(db, table, schema, n, func(b *types.Batch, i int) {
		for j := 0; j < d; j++ {
			b.Cols[j].AppendFloat(data[i*d+j])
		}
	})
}

// LoadLabeledVectorTable bulk-loads vectors plus an integer label column.
func LoadLabeledVectorTable(db *engine.DB, table string, data []float64, labels []int64, n, d int) error {
	schema := append(VectorSchema(d), types.ColumnInfo{Name: "label", Type: types.Int64})
	return bulkLoad(db, table, schema, n, func(b *types.Batch, i int) {
		for j := 0; j < d; j++ {
			b.Cols[j].AppendFloat(data[i*d+j])
		}
		b.Cols[d].AppendInt(labels[i])
	})
}

// LoadEdgeTable bulk-loads an edge list into a table (src, dest BIGINT).
func LoadEdgeTable(db *engine.DB, table string, src, dst []int64) error {
	schema := types.Schema{
		{Name: "src", Type: types.Int64},
		{Name: "dest", Type: types.Int64},
	}
	return bulkLoad(db, table, schema, len(src), func(b *types.Batch, i int) {
		b.Cols[0].AppendInt(src[i])
		b.Cols[1].AppendInt(dst[i])
	})
}

// bulkLoad creates the table (replacing an existing one) and inserts n rows
// through a single transaction, using the paper's instant-loading spirit:
// bypassing SQL literal parsing for bulk ingest.
func bulkLoad(db *engine.DB, table string, schema types.Schema, n int,
	fill func(b *types.Batch, i int)) error {

	store := db.Store()
	_ = store.DropTable(table) // ignore "does not exist"
	tbl, err := store.CreateTable(table, schema)
	if err != nil {
		return err
	}
	tx := store.Begin()
	const chunk = 1 << 16
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b := types.NewBatch(schema)
		for i := lo; i < hi; i++ {
			fill(b, i)
		}
		if err := tx.Insert(tbl, b); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}
