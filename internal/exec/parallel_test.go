package exec

import (
	"fmt"
	"sync/atomic"
	"testing"

	"lambdadb/internal/plan"
	"lambdadb/internal/storage"
	"lambdadb/internal/types"
)

// nullableTable builds a table of n rows (k BIGINT, v DOUBLE) with
// k = i % mod and a NULL key every nullEvery-th row (0 = no NULLs).
func nullableTable(t testing.TB, s *storage.Store, name string, n, mod, nullEvery int) *storage.Table {
	t.Helper()
	tbl, err := s.CreateTable(name, types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "v", Type: types.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	const chunk = 1 << 14
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b := types.NewBatch(tbl.Schema())
		for i := lo; i < hi; i++ {
			if nullEvery > 0 && i%nullEvery == 0 {
				b.Cols[0].AppendNull()
			} else {
				b.Cols[0].AppendInt(int64(i % mod))
			}
			b.Cols[1].AppendFloat(float64(i))
		}
		if err := tx.Insert(tbl, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// rowLess is a total order over value rows (NULLs first) used to normalize
// unordered results before comparison.
func rowLess(a, b []types.Value) bool {
	for i := range a {
		if a[i].Null != b[i].Null {
			return a[i].Null
		}
		if a[i].Null {
			continue
		}
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return false
}

// runWithWorkers executes p under the given parallelism degree, with extra
// working-table bindings if any.
func runWithWorkers(t *testing.T, p plan.Node, workers int, bindings map[string]*Materialized) *Materialized {
	t.Helper()
	ctx := NewContext()
	ctx.Workers = workers
	for name, m := range bindings {
		ctx.Bindings[name] = m
	}
	out, err := Run(p, ctx)
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return out
}

// assertSameRows compares two results row-by-row. With ordered=false both
// sides are sorted into a canonical order first.
func assertSameRows(t *testing.T, serial, parallel *Materialized, ordered bool) {
	t.Helper()
	sr, pr := serial.Rows(), parallel.Rows()
	if len(sr) != len(pr) {
		t.Fatalf("row counts differ: serial %d parallel %d", len(sr), len(pr))
	}
	if !ordered {
		sortRows(sr)
		sortRows(pr)
	}
	for i := range sr {
		for j := range sr[i] {
			a, b := sr[i][j], pr[i][j]
			if a.Null != b.Null || (!a.Null && !a.Equal(b)) {
				t.Fatalf("row %d col %d: serial %v parallel %v", i, j, a, b)
			}
		}
	}
}

func sortRows(rows [][]types.Value) {
	// insertion-free: use sort.Slice via helper to avoid importing sort here
	quickSortRows(rows, 0, len(rows)-1)
}

func quickSortRows(rows [][]types.Value, lo, hi int) {
	for lo < hi {
		p := rows[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for rowLess(rows[i], p) {
				i++
			}
			for rowLess(p, rows[j]) {
				j--
			}
			if i <= j {
				rows[i], rows[j] = rows[j], rows[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortRows(rows, lo, j)
			lo = i
		} else {
			quickSortRows(rows, i, hi)
			hi = j
		}
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	s := storage.NewStore()
	l := nullableTable(t, s, "l", 40_000, 20_000, 97)
	r := nullableTable(t, s, "r", 30_000, 20_000, 89)
	join := &plan.Join{
		Type:      plan.InnerJoin,
		L:         plan.NewScan(l, "l", s.Snapshot()),
		R:         plan.NewScan(r, "r", s.Snapshot()),
		EquiLeft:  []int{0},
		EquiRight: []int{0},
	}
	serial := runWithWorkers(t, join, 1, nil)
	parallel := runWithWorkers(t, join, 8, nil)
	if serial.NumRows == 0 {
		t.Fatal("join produced no rows; test data broken")
	}
	// The parallel probe concatenates per-morsel outputs in morsel order,
	// which reproduces the serial probe order exactly.
	assertSameRows(t, serial, parallel, true)
}

func TestParallelLeftJoinNullKeysMatchesSerial(t *testing.T) {
	s := storage.NewStore()
	l := nullableTable(t, s, "l", 40_000, 35_000, 11) // many unmatched + NULL keys
	r := nullableTable(t, s, "r", 20_000, 35_000, 13)
	join := &plan.Join{
		Type:      plan.LeftJoin,
		L:         plan.NewScan(l, "l", s.Snapshot()),
		R:         plan.NewScan(r, "r", s.Snapshot()),
		EquiLeft:  []int{0},
		EquiRight: []int{0},
	}
	serial := runWithWorkers(t, join, 1, nil)
	parallel := runWithWorkers(t, join, 8, nil)
	if serial.NumRows < 40_000 {
		t.Fatalf("left join must keep all %d left rows, got %d", 40_000, serial.NumRows)
	}
	assertSameRows(t, serial, parallel, false)
}

func TestParallelJoinEmptyInputs(t *testing.T) {
	s := storage.NewStore()
	big := nullableTable(t, s, "big", 40_000, 1000, 0)
	empty, err := s.CreateTable("empty", types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "v", Type: types.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		l, r *storage.Table
	}{
		{"empty-build", empty, big},
		{"empty-probe", big, empty},
	} {
		t.Run(tc.name, func(t *testing.T) {
			join := &plan.Join{
				Type:      plan.InnerJoin,
				L:         plan.NewScan(tc.l, "l", s.Snapshot()),
				R:         plan.NewScan(tc.r, "r", s.Snapshot()),
				EquiLeft:  []int{0},
				EquiRight: []int{0},
			}
			for _, w := range []int{1, 8} {
				if got := runWithWorkers(t, join, w, nil); got.NumRows != 0 {
					t.Errorf("workers=%d: rows = %d, want 0", w, got.NumRows)
				}
			}
		})
	}
}

func TestParallelSortMatchesSerial(t *testing.T) {
	s := storage.NewStore()
	tbl := nullableTable(t, s, "t", 50_000, 100, 17) // heavy key duplication + NULLs
	srt := &plan.Sort{
		Child: plan.NewScan(tbl, "", s.Snapshot()),
		Keys:  []plan.SortKey{{Col: 0, Desc: false}, {Col: 1, Desc: true}},
		TopK:  -1,
	}
	serial := runWithWorkers(t, srt, 1, nil)
	parallel := runWithWorkers(t, srt, 8, nil)
	if serial.NumRows != 50_000 {
		t.Fatalf("sort dropped rows: %d", serial.NumRows)
	}
	// Sorted output must match in exact order (the merge is stable).
	assertSameRows(t, serial, parallel, true)
}

func TestParallelTopKMatchesSerial(t *testing.T) {
	s := storage.NewStore()
	tbl := nullableTable(t, s, "t", 60_000, 60_000, 0)
	// ORDER BY v DESC LIMIT 20 OFFSET 5, as the optimizer fuses it: a
	// TopK(25) sort under a Limit node.
	srt := &plan.Sort{
		Child: plan.NewScan(tbl, "", s.Snapshot()),
		Keys:  []plan.SortKey{{Col: 1, Desc: true}},
		TopK:  25,
	}
	lim := &plan.Limit{Child: srt, N: 20, Offset: 5}
	serial := runWithWorkers(t, lim, 1, nil)
	parallel := runWithWorkers(t, lim, 8, nil)
	if serial.NumRows != 20 {
		t.Fatalf("top-k rows = %d, want 20", serial.NumRows)
	}
	assertSameRows(t, serial, parallel, true)
	// Spot-check the actual values: best v is 59999, offset skips 5.
	if got := serial.Rows()[0][1].F; got != 59994 {
		t.Errorf("first row v = %v, want 59994", got)
	}
}

func TestParallelTopKEmptyInput(t *testing.T) {
	s := storage.NewStore()
	empty, err := s.CreateTable("empty", types.Schema{{Name: "v", Type: types.Float64}})
	if err != nil {
		t.Fatal(err)
	}
	srt := &plan.Sort{
		Child: plan.NewScan(empty, "", s.Snapshot()),
		Keys:  []plan.SortKey{{Col: 0}},
		TopK:  10,
	}
	for _, w := range []int{1, 8} {
		if got := runWithWorkers(t, srt, w, nil); got.NumRows != 0 {
			t.Errorf("workers=%d: rows = %d, want 0", w, got.NumRows)
		}
	}
}

// TestParallelWorkingTableBody runs sort and join pipelines rooted at a
// bound working table — the shape of an ITERATE / recursive CTE body — and
// checks the morsel split over the working table matches serial execution.
func TestParallelWorkingTableBody(t *testing.T) {
	s := storage.NewStore()
	base := nullableTable(t, s, "base", 30_000, 5000, 0)

	// Bind a 50k-row working table.
	working := &Materialized{Schema: types.Schema{
		{Name: "k", Type: types.Int64},
		{Name: "v", Type: types.Float64},
	}}
	for lo := 0; lo < 50_000; lo += 10_000 {
		b := types.NewBatch(working.Schema)
		for i := lo; i < lo+10_000; i++ {
			b.Cols[0].AppendInt(int64(i % 5000))
			b.Cols[1].AppendFloat(float64(i))
		}
		working.Append(b)
	}
	bindings := map[string]*Materialized{"iterate": working}
	ws := func() *plan.WorkingScan {
		return &plan.WorkingScan{Name: "iterate", Sch: working.Schema, CardEst: 50_000}
	}

	t.Run("sort", func(t *testing.T) {
		srt := &plan.Sort{Child: ws(), Keys: []plan.SortKey{{Col: 1, Desc: true}}, TopK: -1}
		serial := runWithWorkers(t, srt, 1, bindings)
		parallel := runWithWorkers(t, srt, 8, bindings)
		assertSameRows(t, serial, parallel, true)
	})
	t.Run("join", func(t *testing.T) {
		join := &plan.Join{
			Type:      plan.InnerJoin,
			L:         plan.NewScan(base, "b", s.Snapshot()),
			R:         ws(),
			EquiLeft:  []int{0},
			EquiRight: []int{0},
		}
		serial := runWithWorkers(t, join, 1, bindings)
		parallel := runWithWorkers(t, join, 8, bindings)
		if serial.NumRows == 0 {
			t.Fatal("join produced no rows")
		}
		// Build insertion order and probe morsel order both reproduce the
		// serial order, so the comparison can demand exact equality.
		assertSameRows(t, serial, parallel, true)
	})
	t.Run("split-covers-all-rows", func(t *testing.T) {
		ctx := NewContext()
		ctx.Bindings["iterate"] = working
		parts := splitParallel(ws(), 4, ctx)
		if len(parts) < 2 {
			t.Fatalf("working scan should split, got %d parts", len(parts))
		}
		total := 0
		for _, p := range parts {
			m, err := Run(p, ctx)
			if err != nil {
				t.Fatal(err)
			}
			total += m.NumRows
		}
		if total != 50_000 {
			t.Errorf("parts cover %d rows, want 50000", total)
		}
	})
}

func TestContextWorkersClamped(t *testing.T) {
	ctx := &Context{Workers: 0, Bindings: map[string]*Materialized{}}
	if got := ctx.workers(); got != 1 {
		t.Errorf("workers() with Workers=0 = %d, want 1", got)
	}
	ctx.Workers = -3
	if got := ctx.workers(); got != 1 {
		t.Errorf("workers() with Workers=-3 = %d, want 1", got)
	}
	var nilCtx *Context
	if got := nilCtx.workers(); got != 1 {
		t.Errorf("nil context workers() = %d, want 1", got)
	}
}

func TestSplitPipelineDegenerate(t *testing.T) {
	s, tbl := bigTable(t, 50_000, 3)
	scan := plan.NewScan(tbl, "", s.Snapshot())
	if parts := plan.SplitPipeline(scan, 50_000, 1, 8192); parts != nil {
		t.Errorf("parts=1 must not split, got %d", len(parts))
	}
	if parts := plan.SplitPipeline(scan, 10_000, 8, 8192); parts != nil {
		t.Errorf("small input must not split, got %d", len(parts))
	}
}

// TestRunPartsPool exercises the bounded worker pool under -race: disjoint
// result slots, more parts than workers.
func TestRunPartsPool(t *testing.T) {
	const n = 1000
	out := make([]int64, n)
	err := runParts(&Context{Workers: 8}, n, func(i int) error {
		out[i] = int64(i) * 2
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != int64(i)*2 {
			t.Fatalf("slot %d = %d", i, out[i])
		}
	}
}

func TestRunPartsErrorPropagation(t *testing.T) {
	const n = 50
	ran := make([]atomic.Bool, n)
	err := runParts(&Context{Workers: 8}, n, func(i int) error {
		ran[i].Store(true)
		if i == 7 || i == 23 {
			return fmt.Errorf("part %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "part 7 failed" {
		t.Fatalf("want lowest-indexed error 'part 7 failed', got %v", err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Errorf("part %d never ran", i)
		}
	}
}

// TestLoserTreeMergeStability merges runs with heavy key ties and checks
// rows with equal keys come out in run order (stability across runs).
func TestLoserTreeMergeStability(t *testing.T) {
	mkRow := func(key, seq int64) []types.Value {
		return []types.Value{types.NewInt(key), types.NewInt(seq)}
	}
	// Three runs, each sorted by key, sequence numbers encode global input
	// order (run-major).
	runs := [][][]types.Value{
		{mkRow(1, 0), mkRow(1, 1), mkRow(3, 2)},
		{mkRow(1, 10), mkRow(2, 11), mkRow(3, 12)},
		{mkRow(0, 20), mkRow(1, 21), mkRow(1, 22)},
	}
	less := func(a, b []types.Value) bool { return a[0].I < b[0].I }
	got := mergeRuns(runs, less)
	if len(got) != 9 {
		t.Fatalf("merged %d rows, want 9", len(got))
	}
	wantSeq := []int64{20, 0, 1, 10, 21, 22, 11, 2, 12}
	for i, row := range got {
		if row[1].I != wantSeq[i] {
			t.Fatalf("position %d: seq %d, want %d (got order %v)", i, row[1].I, wantSeq[i], got)
		}
	}
	// Degenerate shapes.
	if out := mergeRuns(nil, less); len(out) != 0 {
		t.Errorf("empty merge produced %d rows", len(out))
	}
	if out := mergeRuns([][][]types.Value{{}, {}, {mkRow(5, 0)}}, less); len(out) != 1 || out[0][0].I != 5 {
		t.Errorf("merge with empty runs = %v", out)
	}
}
