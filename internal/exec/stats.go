package exec

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// ---------------------------------------------------------------------------
// Execution telemetry
//
// When a query arms stats collection (Context.EnableStats), every physical
// operator built for it is wrapped in a statsOp that counts rows, batches,
// estimated bytes, and inclusive wall time into thread-local counters, merged
// into the shared collector exactly once at operator Close. The hot path
// (Next) takes no locks; morsel-parallel clones each carry their own wrapper
// and their counters meet in the per-plan-node record at pipeline end.
//
// When stats are disarmed (the default) buildWith receives a nil collector
// and constructs exactly the same operator tree as before this layer existed:
// no wrappers, no timers, no per-batch work — the disarmed path is the seed
// path.
// ---------------------------------------------------------------------------

// IterationStat records one round of an iterative operator (ITERATE,
// recursive CTE, k-Means, PageRank).
type IterationStat struct {
	// Round is the 1-based iteration number.
	Round int
	// Rows is the round's working-set size: working-table rows after the
	// round, or changed assignments for k-Means.
	Rows int64
	// Delta is the algorithm's convergence measure for the round: row-count
	// change for ITERATE/recursive CTEs, changed assignments for k-Means,
	// the L1 rank change for PageRank.
	Delta float64
	// Nanos is the round's wall time.
	Nanos int64
}

// OpStats is one node of a query's executed-operator statistics tree, as
// rendered by EXPLAIN ANALYZE. Counters are cumulative over every execution
// of the plan node: morsel-parallel clones and per-iteration re-executions
// all fold into the same node.
type OpStats struct {
	// Name is the plan node's Explain label ("Scan lineitem", "HashJoin", …).
	Name string
	// RowsOut / Batches / Bytes describe the operator's output: row count,
	// batch count, and estimated resident bytes of the emitted batches.
	RowsOut int64
	Batches int64
	Bytes   int64
	// Est is the planner's cardinality estimate for the node (plan.Node.Card
	// at explain time), rendered next to the actual row count so estimation
	// errors are visible in EXPLAIN ANALYZE.
	Est float64
	// TimeNanos is cumulative busy time across all instances of the
	// operator, inclusive of its children (for morsel-parallel fragments
	// this is CPU-style work time, not elapsed wall time).
	TimeNanos int64
	// Instances counts how many physical operator instances executed for
	// this plan node: >1 means morsel-parallel clones and/or iterative
	// re-execution. 0 means the node was never executed.
	Instances int64
	// Iterations holds per-round telemetry for iterative operators.
	Iterations []IterationStat
	// Children mirror the plan tree.
	Children []*OpStats
}

// TotalRows returns the root operator's output row count (convenience for
// result summaries).
func (s *OpStats) TotalRows() int64 {
	if s == nil {
		return 0
	}
	return s.RowsOut
}

// opRecord is the collector-side accumulator for one plan node.
type opRecord struct {
	rows, batches, bytes, nanos, instances int64
	iterations                             []IterationStat
}

// StatsCollector accumulates per-operator execution statistics for one
// query. Operators merge their thread-local counters under the collector
// mutex only at Close, so collection adds no locking to the per-batch path.
type StatsCollector struct {
	mu    sync.Mutex
	nodes map[plan.Node]*opRecord
	// alias maps morsel-clone plan nodes to the original nodes they were
	// cloned from, so per-part wrappers fold into one record.
	alias map[plan.Node]plan.Node
}

func newStatsCollector() *StatsCollector {
	return &StatsCollector{
		nodes: map[plan.Node]*opRecord{},
		alias: map[plan.Node]plan.Node{},
	}
}

func (sc *StatsCollector) resolveLocked(n plan.Node) plan.Node {
	for {
		orig, ok := sc.alias[n]
		if !ok {
			return n
		}
		n = orig
	}
}

func (sc *StatsCollector) recordLocked(n plan.Node) *opRecord {
	n = sc.resolveLocked(n)
	r := sc.nodes[n]
	if r == nil {
		r = &opRecord{}
		sc.nodes[n] = r
	}
	return r
}

// merge folds one operator instance's counters into the node's record.
func (sc *StatsCollector) merge(node plan.Node, rows, batches, bytes, nanos int64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	r := sc.recordLocked(node)
	r.rows += rows
	r.batches += batches
	r.bytes += bytes
	r.nanos += nanos
	r.instances++
}

// AddIteration appends one round's telemetry to an iterative operator's
// record.
func (sc *StatsCollector) AddIteration(node plan.Node, it IterationStat) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	r := sc.recordLocked(node)
	r.iterations = append(r.iterations, it)
}

// aliasPipeline registers a morsel clone's spine (Filter/Project/Alias down
// to the Scan or WorkingScan leaf) as aliases of the original pipeline, so
// per-part operator wrappers merge into the original nodes' records.
// ClonePipeline produces a shape-identical spine, which this walk relies on.
func (sc *StatsCollector) aliasPipeline(orig, clone plan.Node) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for orig != nil && clone != nil && orig != clone {
		sc.alias[clone] = orig
		switch o := orig.(type) {
		case *plan.Filter:
			c, ok := clone.(*plan.Filter)
			if !ok {
				return
			}
			orig, clone = o.Child, c.Child
		case *plan.Project:
			c, ok := clone.(*plan.Project)
			if !ok {
				return
			}
			orig, clone = o.Child, c.Child
		case *plan.Alias:
			c, ok := clone.(*plan.Alias)
			if !ok {
				return
			}
			orig, clone = o.Child, c.Child
		default:
			return
		}
	}
}

// Tree assembles the stats tree for the given (original) plan, mirroring its
// shape. Alias nodes are transparent, matching how buildWith skips them.
func (sc *StatsCollector) Tree(root plan.Node) *OpStats {
	if sc == nil || root == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.treeLocked(root)
}

func (sc *StatsCollector) treeLocked(n plan.Node) *OpStats {
	if a, ok := n.(*plan.Alias); ok {
		return sc.treeLocked(a.Child)
	}
	out := &OpStats{Name: n.Explain(), Est: n.Card()}
	if r := sc.nodes[sc.resolveLocked(n)]; r != nil {
		out.RowsOut = r.rows
		out.Batches = r.batches
		out.Bytes = r.bytes
		out.TimeNanos = r.nanos
		out.Instances = r.instances
		out.Iterations = append([]IterationStat(nil), r.iterations...)
	}
	for _, c := range n.Children() {
		out.Children = append(out.Children, sc.treeLocked(c))
	}
	return out
}

// statsOp wraps a physical operator with telemetry. Counters are plain
// fields — each instance is driven by one goroutine — merged into the shared
// collector once, at Close.
type statsOp struct {
	inner  Operator
	node   plan.Node
	sc     *StatsCollector
	rows   int64
	batchN int64
	bytes  int64
	nanos  int64
	merged bool
}

func (s *statsOp) Schema() types.Schema { return s.inner.Schema() }

func (s *statsOp) Open(ctx *Context) error {
	start := time.Now()
	err := s.inner.Open(ctx)
	s.nanos += time.Since(start).Nanoseconds()
	return err
}

func (s *statsOp) Next() (*types.Batch, error) {
	start := time.Now()
	b, err := s.inner.Next()
	s.nanos += time.Since(start).Nanoseconds()
	if b != nil {
		s.rows += int64(b.Len())
		s.batchN++
		s.bytes += batchBytes(b)
	}
	return b, err
}

func (s *statsOp) Close() error {
	start := time.Now()
	err := s.inner.Close()
	s.nanos += time.Since(start).Nanoseconds()
	if !s.merged {
		s.merged = true
		s.sc.merge(s.node, s.rows, s.batchN, s.bytes, s.nanos)
	}
	return err
}

// FormatStatsTree renders an OpStats tree as an indented text block, the
// body of EXPLAIN ANALYZE output.
func FormatStatsTree(root *OpStats) string {
	var b strings.Builder
	writeStatsNode(&b, root, 0)
	return b.String()
}

func writeStatsNode(b *strings.Builder, n *OpStats, depth int) {
	if n == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	if n.Instances == 0 {
		fmt.Fprintf(b, "%s%s (not executed)\n", indent, n.Name)
	} else {
		fmt.Fprintf(b, "%s%s (rows=%d est=%.0f time=%s bytes=%s",
			indent, n.Name, n.RowsOut, n.Est, formatNanos(n.TimeNanos), FormatBytes(n.Bytes))
		if n.Instances > 1 {
			fmt.Fprintf(b, " instances=%d", n.Instances)
		}
		b.WriteString(")\n")
	}
	for _, it := range n.Iterations {
		fmt.Fprintf(b, "%s  [iter %d] rows=%d delta=%g time=%s\n",
			indent, it.Round, it.Rows, it.Delta, formatNanos(it.Nanos))
	}
	for _, c := range n.Children {
		writeStatsNode(b, c, depth+1)
	}
}

// formatNanos renders a duration compactly, rounded so the output stays
// readable (full nanosecond precision is noise in a profile).
func formatNanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// FormatBytes renders a byte estimate with binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
