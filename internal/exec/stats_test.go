package exec

import (
	"os"
	"reflect"
	"testing"
)

// countStatsOps walks an operator graph with reflection and counts the
// statsOp wrappers in it, including ones buried in unexported fields.
func countStatsOps(op Operator) int {
	target := reflect.TypeOf(&statsOp{})
	visited := map[uintptr]bool{}
	count := 0
	var walk func(v reflect.Value, depth int)
	walk = func(v reflect.Value, depth int) {
		if depth > 64 {
			return
		}
		switch v.Kind() {
		case reflect.Pointer:
			if v.IsNil() || visited[v.Pointer()] {
				return
			}
			visited[v.Pointer()] = true
			if v.Type() == target {
				count++
			}
			walk(v.Elem(), depth+1)
		case reflect.Interface:
			if !v.IsNil() {
				walk(v.Elem(), depth+1)
			}
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i), depth+1)
			}
		case reflect.Slice, reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i), depth+1)
			}
		}
	}
	walk(reflect.ValueOf(op), 0)
	return count
}

// TestDisarmedBuildHasNoStatsWrappers is the structural form of the
// disarmed-path guarantee: with no collector, Build produces the exact
// operator tree the engine had before the telemetry layer existed — zero
// wrappers, zero per-batch bookkeeping.
func TestDisarmedBuildHasNoStatsWrappers(t *testing.T) {
	p := buildFilterAggPlan(t, 10_000)
	op, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := countStatsOps(op); n != 0 {
		t.Fatalf("disarmed build contains %d statsOp wrappers, want 0", n)
	}

	ctx := NewContext()
	sc := ctx.EnableStats()
	if sc == nil {
		t.Fatal("EnableStats returned nil")
	}
	armed, err := buildFor(p, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n := countStatsOps(armed); n == 0 {
		t.Fatal("armed build contains no statsOp wrappers")
	}
}

// TestStatsTreeCountsFilterAgg pushes known row counts through the
// scan → filter → aggregate pipeline, serial and 8-way parallel, and
// checks per-operator actuals against ground truth.
func TestStatsTreeCountsFilterAgg(t *testing.T) {
	const rows = 100_000
	p := buildFilterAggPlan(t, rows)
	for _, workers := range []int{1, 8} {
		ctx := NewContext()
		ctx.Workers = workers
		sc := ctx.EnableStats()
		mat, err := Run(p, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if mat.NumRows != 1 {
			t.Fatalf("workers=%d result rows = %d", workers, mat.NumRows)
		}
		tree := sc.Tree(p)
		agg := tree
		filter := agg.Children[0]
		scan := filter.Children[0]
		if agg.RowsOut != 1 {
			t.Errorf("workers=%d aggregate rows = %d, want 1", workers, agg.RowsOut)
		}
		// The predicate v > rows/2 keeps the top half minus the boundary.
		if want := int64(rows/2 - 1); filter.RowsOut != want {
			t.Errorf("workers=%d filter rows = %d, want %d", workers, filter.RowsOut, want)
		}
		if scan.RowsOut != rows {
			t.Errorf("workers=%d scan rows = %d, want %d", workers, scan.RowsOut, rows)
		}
		if workers > 1 && scan.Instances < 2 {
			t.Errorf("parallel scan instances = %d, want >= 2", scan.Instances)
		}
		if agg.TimeNanos <= 0 || scan.Bytes <= 0 {
			t.Errorf("workers=%d missing actuals: time=%d bytes=%d", workers, agg.TimeNanos, scan.Bytes)
		}
	}
}

// TestTelemetryOverheadSmoke asserts the disarmed path stays within 2% of
// the telemetry-free baseline on the vectorized filter+agg pipeline. The
// baseline is the identical plan driven through buildWith with no
// collector — byte-identical operators today (see the structural test);
// this smoke exists to catch a future change that instruments the
// disarmed path unconditionally. Enabled via make overhead
// (LAMBDADB_OVERHEAD_SMOKE=1) to keep ordinary test runs timing-free.
func TestTelemetryOverheadSmoke(t *testing.T) {
	if os.Getenv("LAMBDADB_OVERHEAD_SMOKE") == "" {
		t.Skip("set LAMBDADB_OVERHEAD_SMOKE=1 (make overhead) to run")
	}
	p := buildFilterAggPlan(t, 1_000_000)
	run := func(build func() (Operator, error)) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op, err := build()
				if err != nil {
					b.Fatal(err)
				}
				ctx := NewContext()
				ctx.Workers = 1
				if err := op.Open(ctx); err != nil {
					b.Fatal(err)
				}
				for {
					batch, err := op.Next()
					if err != nil {
						b.Fatal(err)
					}
					if batch == nil {
						break
					}
				}
				if err := op.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	baseline := func() (Operator, error) { return buildWith(p, nil) }
	disarmed := func() (Operator, error) { return Build(p) }

	// Interleave the two sides and keep each side's minimum, so slow drift
	// (thermal throttling, page-cache state) hits both equally.
	measure := func(rounds int) (base, dis float64) {
		for i := 0; i < rounds; i++ {
			if v := run(baseline); i == 0 || v < base {
				base = v
			}
			if v := run(disarmed); i == 0 || v < dis {
				dis = v
			}
		}
		return base, dis
	}
	base, dis := measure(3)
	overhead := (dis - base) / base
	if overhead > 0.02 {
		// One retry with more rounds before declaring a regression.
		base, dis = measure(5)
		overhead = (dis - base) / base
	}
	t.Logf("baseline %.0f ns/op, disarmed %.0f ns/op, overhead %.2f%%", base, dis, overhead*100)
	if overhead > 0.02 {
		t.Errorf("disarmed telemetry overhead %.2f%% exceeds 2%%", overhead*100)
	}
}
