package exec

import (
	"sync"

	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// sharedKey identifies one cached materialization: the plan node plus the
// execution epoch (0 for loop-invariant subplans).
type sharedKey struct {
	node  *plan.Shared
	epoch uint64
}

// sharedCache stores materialized Shared subplans per Context. Each entry
// computes at most once; the per-entry sync.Once keeps nested Shared
// subplans (a CTE referencing another CTE) from deadlocking on the map
// lock.
type sharedCache struct {
	mu      sync.Mutex
	entries map[sharedKey]*sharedEntry
}

type sharedEntry struct {
	once sync.Once
	mat  *Materialized
	err  error
}

// sharedOp serves a Shared plan node from the context cache, computing it
// on first use within the relevant epoch.
type sharedOp struct {
	node *plan.Shared
	it   matIterator
}

func newSharedOp(n *plan.Shared) *sharedOp { return &sharedOp{node: n} }

func (s *sharedOp) Schema() types.Schema { return s.node.Schema() }

func (s *sharedOp) Open(ctx *Context) error {
	key := sharedKey{node: s.node}
	if !s.node.Invariant {
		key.epoch = ctx.epoch
	}
	c := &ctx.shared
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[sharedKey]*sharedEntry{}
	}
	e, ok := c.entries[key]
	if !ok {
		e = &sharedEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.mat, e.err = Run(s.node.Child, ctx)
	})
	if e.err != nil {
		return e.err
	}
	s.it = matIterator{mat: e.mat}
	return nil
}

func (s *sharedOp) Next() (*types.Batch, error) { return s.it.next(), nil }
func (s *sharedOp) Close() error                { return nil }
