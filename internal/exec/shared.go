package exec

import (
	"sync"
	"sync/atomic"

	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// ---------------------------------------------------------------------------
// Parallel-pipeline driver
//
// Morsel-style parallelism shared by aggregation, hash join, sort, and the
// analytical operators' input materialization: a pipeline rooted at a
// base-table Scan (or a bound working table) is cloned into row-range
// morsels and the clones run on a bounded worker pool. Results are indexed
// by part, so output order is deterministic regardless of scheduling.
// ---------------------------------------------------------------------------

// minRowsPerWorker is the smallest morsel worth a goroutine; below twice
// this size the serial path wins.
const minRowsPerWorker = 8192

// splitParallel partitions a pipeline rooted at a base-table Scan or a
// WorkingScan into row-range morsels, one plan clone per part. It returns
// nil when the pipeline is not parallelizable (non-scan leaves, a small
// table, or a clamp down to a single part), in which case callers take the
// cheaper serial path. ctx supplies working-table bindings; it may be nil
// when the caller has none.
func splitParallel(p plan.Node, parts int, ctx *Context) []plan.Node {
	if parts <= 1 {
		return nil
	}
	var rows int
	switch leaf := plan.MorselLeaf(p).(type) {
	case *plan.Scan:
		rows = leaf.Rel.PhysicalRows()
	case *plan.WorkingScan:
		if ctx == nil {
			return nil
		}
		mat, ok := ctx.Bindings[leaf.Name]
		if !ok {
			return nil
		}
		rows = mat.NumRows
	default:
		return nil
	}
	split := plan.SplitPipeline(p, rows, parts, minRowsPerWorker)
	if sc := ctx.statsCollector(); sc != nil {
		// Register each clone's spine so per-morsel wrappers merge their
		// counters into the original pipeline's records.
		for _, part := range split {
			sc.aliasPipeline(p, part)
		}
	}
	return split
}

// runParts executes fn(i) for i in [0, n) on at most ctx.workers()
// goroutines. It is the parallel executor boundary: each part checks for
// cancellation before it starts and runs under panic containment, so one
// worker's panic becomes an *InternalError instead of killing the process.
// Every part runs (or observes cancellation) regardless of failures
// elsewhere; the lowest-indexed error is returned so error reporting is
// deterministic.
func runParts(ctx *Context, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	call := func(i int) (err error) {
		defer containPanic("parallel-worker", &err)
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	}
	workers := ctx.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = call(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// drainParts builds and drains one cloned pipeline per part on the worker
// pool, returning the materialized results in part order.
func drainParts(parts []plan.Node, ctx *Context) ([]*Materialized, error) {
	mats := make([]*Materialized, len(parts))
	err := runParts(ctx, len(parts), func(i int) error {
		op, err := buildFor(parts[i], ctx)
		if err != nil {
			return err
		}
		mats[i], err = Drain(op, ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return mats, nil
}

// drainPipeline materializes a plan, splitting it across the worker pool
// when possible. Batch order matches the serial scan order.
func drainPipeline(p plan.Node, ctx *Context) (*Materialized, error) {
	parts := splitParallel(p, ctx.workers(), ctx)
	if len(parts) == 0 {
		return Run(p, ctx)
	}
	mats, err := drainParts(parts, ctx)
	if err != nil {
		return nil, err
	}
	out := &Materialized{Schema: p.Schema()}
	for _, m := range mats {
		for _, b := range m.Batches {
			out.Append(b)
		}
	}
	return out, nil
}

// sharedKey identifies one cached materialization: the plan node plus the
// execution epoch (0 for loop-invariant subplans).
type sharedKey struct {
	node  *plan.Shared
	epoch uint64
}

// sharedCache stores materialized Shared subplans per Context. Each entry
// computes at most once; the per-entry sync.Once keeps nested Shared
// subplans (a CTE referencing another CTE) from deadlocking on the map
// lock.
type sharedCache struct {
	mu      sync.Mutex
	entries map[sharedKey]*sharedEntry
}

type sharedEntry struct {
	once sync.Once
	mat  *Materialized
	err  error
}

// sharedOp serves a Shared plan node from the context cache, computing it
// on first use within the relevant epoch.
type sharedOp struct {
	node *plan.Shared
	it   matIterator
}

func newSharedOp(n *plan.Shared) *sharedOp { return &sharedOp{node: n} }

func (s *sharedOp) Schema() types.Schema { return s.node.Schema() }

func (s *sharedOp) Open(ctx *Context) error {
	key := sharedKey{node: s.node}
	if !s.node.Invariant {
		key.epoch = ctx.epoch
	}
	c := &ctx.shared
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[sharedKey]*sharedEntry{}
	}
	e, ok := c.entries[key]
	if !ok {
		e = &sharedEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.mat, e.err = Run(s.node.Child, ctx)
	})
	if e.err != nil {
		return e.err
	}
	s.it = matIterator{mat: e.mat}
	return nil
}

func (s *sharedOp) Next() (*types.Batch, error) { return s.it.next(), nil }
func (s *sharedOp) Close() error                { return nil }
