package exec

import (
	"lambdadb/internal/expr"
	"lambdadb/internal/faultinject"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// rowRef addresses a row inside a Materialized relation.
type rowRef struct {
	batch int
	row   int
}

// hashTable is a partitioned chained hash table over materialized rows
// keyed by a set of columns. Partition p owns the keys with hash&mask == p,
// so the parallel build needs no locks: each partition is written by
// exactly one worker, and probing is read-only. NULL keys never enter the
// table (SQL equi-join semantics).
type hashTable struct {
	mat     *Materialized
	keyCols []int
	parts   []map[uint64][]rowRef
	mask    uint64
}

func (ht *hashTable) lookup(h uint64) []rowRef { return ht.parts[h&ht.mask][h] }

// hashTableBytesPerRow is the accounting estimate for one build-side row's
// hash-table footprint: a rowRef plus amortized map bucket overhead.
const hashTableBytesPerRow = 48

// buildHashTable constructs the table; when the build side is large enough
// and the context allows parallelism it builds in parallel: one pass hashes
// every row's keys (parallel over batches), then each partition worker
// inserts its own slice of the hash space. The table's footprint is charged
// against the query memory budget.
func buildHashTable(mat *Materialized, keyCols []int, ctx *Context) (*hashTable, error) {
	if err := ctx.charge("join", int64(mat.NumRows)*hashTableBytesPerRow); err != nil {
		return nil, err
	}
	if ctx.workers() > 1 && mat.NumRows >= 2*minRowsPerWorker {
		return buildHashTableParallel(mat, keyCols, ctx)
	}
	ht := &hashTable{mat: mat, keyCols: keyCols,
		parts: []map[uint64][]rowRef{make(map[uint64][]rowRef, mat.NumRows)}}
	for bi, b := range mat.Batches {
		n := b.Len()
		for i := 0; i < n; i++ {
			h, ok := rowKeyHash(b, keyCols, i)
			if !ok {
				continue // NULL key never joins
			}
			ht.parts[0][h] = append(ht.parts[0][h], rowRef{bi, i})
		}
	}
	return ht, nil
}

func buildHashTableParallel(mat *Materialized, keyCols []int, ctx *Context) (*hashTable, error) {
	p := 1
	for p < ctx.workers() {
		p <<= 1
	}
	ht := &hashTable{mat: mat, keyCols: keyCols,
		parts: make([]map[uint64][]rowRef, p), mask: uint64(p - 1)}
	// Pass 1: hash every row's key columns, parallel over batches. A NULL
	// key marks the row invalid.
	hashes := make([][]uint64, len(mat.Batches))
	valid := make([][]bool, len(mat.Batches))
	if err := runParts(ctx, len(mat.Batches), func(bi int) error {
		b := mat.Batches[bi]
		n := b.Len()
		hs := make([]uint64, n)
		ok := make([]bool, n)
		for i := 0; i < n; i++ {
			hs[i], ok[i] = rowKeyHash(b, keyCols, i)
		}
		hashes[bi], valid[bi] = hs, ok
		return nil
	}); err != nil {
		return nil, err
	}
	// Pass 2: each partition worker scans the precomputed hashes and keeps
	// only its share. Insertion order within a partition matches row order,
	// so probe results are deterministic.
	est := mat.NumRows / p
	if err := runParts(ctx, p, func(pi int) error {
		part := make(map[uint64][]rowRef, est)
		target := uint64(pi)
		for bi, hs := range hashes {
			ok := valid[bi]
			for i, h := range hs {
				if ok[i] && h&ht.mask == target {
					part[h] = append(part[h], rowRef{bi, i})
				}
			}
		}
		ht.parts[pi] = part
		return nil
	}); err != nil {
		return nil, err
	}
	return ht, nil
}

// rowKeyHash hashes the key columns of row i; ok is false when any key is
// NULL.
func rowKeyHash(b *types.Batch, cols []int, i int) (uint64, bool) {
	var h uint64
	for _, c := range cols {
		col := b.Cols[c]
		if col.IsNull(i) {
			return 0, false
		}
		h = types.HashCombine(h, col.Value(i).Hash())
	}
	return h, true
}

// keysEqual compares key columns between two rows.
func keysEqual(a *types.Batch, aCols []int, ai int, b *types.Batch, bCols []int, bi int) bool {
	for k := range aCols {
		if !a.Cols[aCols[k]].Value(ai).Equal(b.Cols[bCols[k]].Value(bi)) {
			return false
		}
	}
	return true
}

// joinOp executes inner, left-outer, and cross joins. With equi keys it is
// a hash join — partition-parallel build and, when the probe side is a
// splittable scan pipeline, morsel-parallel probe; otherwise a block
// nested-loop join.
type joinOp struct {
	node   *plan.Join
	schema types.Schema

	ctx *Context

	// Hash-join state.
	ht          *hashTable
	buildIsLeft bool
	probe       Operator // serial streaming probe
	pr          *prober  // serial streaming probe state
	parallel    bool     // probe ran morsel-parallel in Open
	it          matIterator

	pendingOut []*types.Batch

	// Nested-loop state.
	left      Operator
	right     Operator
	onEval    expr.Evaluator
	rightMat  *Materialized
	nlLeft    *types.Batch
	nlMatched []bool
	nlRight   int
	done      bool
}

func newJoinOp(n *plan.Join) (Operator, error) {
	// Compile condition expressions eagerly so malformed plans fail at
	// build time; per-worker probers recompile their own copies.
	if n.Residual != nil {
		if _, err := expr.Compile(n.Residual); err != nil {
			return nil, err
		}
	}
	if n.On != nil && len(n.EquiLeft) == 0 {
		if _, err := expr.Compile(n.On); err != nil {
			return nil, err
		}
	}
	return &joinOp{node: n, schema: n.Schema()}, nil
}

func (j *joinOp) Schema() types.Schema { return j.schema }

func (j *joinOp) Open(ctx *Context) error {
	j.ctx = ctx
	j.done = false
	j.parallel = false
	j.pendingOut = nil
	useHash := len(j.node.EquiLeft) > 0 &&
		(j.node.Type == plan.InnerJoin || j.node.Type == plan.LeftJoin)
	if useHash {
		return j.openHash(ctx)
	}
	return j.openLoop(ctx)
}

// openHash runs the two hash-join phases. Build: drain the build side
// (morsel-parallel when its pipeline splits) and build the partitioned
// table. Probe: when the probe side splits, each worker streams its morsels
// against the shared read-only table with private output buffers —
// concatenating per-part outputs in part order reproduces the serial output
// order exactly; otherwise probe batches stream through Next as before.
func (j *joinOp) openHash(ctx *Context) error {
	// Inner joins build on the left (the optimizer put the smaller side
	// there); left-outer joins must probe with the left side, so they build
	// on the right.
	j.buildIsLeft = j.node.Type == plan.InnerJoin
	buildPlan, buildKeys := j.node.L, j.node.EquiLeft
	probePlan := j.node.R
	if !j.buildIsLeft {
		buildPlan, buildKeys = j.node.R, j.node.EquiRight
		probePlan = j.node.L
	}
	if err := faultinject.Fire("exec.join.build"); err != nil {
		return err
	}
	mat, err := drainPipeline(buildPlan, ctx)
	if err != nil {
		return err
	}
	j.ht, err = buildHashTable(mat, buildKeys, ctx)
	if err != nil {
		return err
	}

	if parts := splitParallel(probePlan, ctx.workers(), ctx); len(parts) > 1 {
		outs := make([][]*types.Batch, len(parts))
		err := runParts(ctx, len(parts), func(i int) error {
			pr, err := j.newProber()
			if err != nil {
				return err
			}
			op, err := buildFor(parts[i], ctx)
			if err != nil {
				return err
			}
			if err := op.Open(ctx); err != nil {
				op.Close()
				return err
			}
			defer op.Close()
			for {
				if err := faultinject.Fire("exec.join.probe"); err != nil {
					return err
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				pb, err := op.Next()
				if err != nil {
					return err
				}
				if pb == nil {
					return nil
				}
				bs, err := pr.probeBatch(pb)
				if err != nil {
					return err
				}
				for _, b := range bs {
					if err := ctx.charge("join", batchBytes(b)); err != nil {
						return err
					}
				}
				outs[i] = append(outs[i], bs...)
			}
		})
		if err != nil {
			return err
		}
		res := &Materialized{Schema: j.schema}
		for _, bs := range outs {
			for _, b := range bs {
				res.Append(b)
			}
		}
		j.parallel = true
		j.it = matIterator{mat: res}
		return nil
	}

	pr, err := j.newProber()
	if err != nil {
		return err
	}
	j.pr = pr
	op, err := buildFor(probePlan, ctx)
	if err != nil {
		return err
	}
	j.probe = op
	return op.Open(ctx)
}

// openLoop prepares the block nested-loop join: materialize the right side,
// stream the left.
func (j *joinOp) openLoop(ctx *Context) error {
	l, err := buildFor(j.node.L, ctx)
	if err != nil {
		return err
	}
	j.left = l
	if j.node.On != nil && len(j.node.EquiLeft) == 0 {
		ev, err := expr.Compile(j.node.On)
		if err != nil {
			return err
		}
		j.onEval = ev
	}
	mat, err := drainPipeline(j.node.R, ctx)
	if err != nil {
		return err
	}
	j.rightMat = mat
	return j.left.Open(ctx)
}

func (j *joinOp) Close() error {
	if j.ht != nil {
		if j.probe != nil {
			return j.probe.Close()
		}
		return nil
	}
	if j.left != nil {
		return j.left.Close()
	}
	return nil
}

func (j *joinOp) Next() (*types.Batch, error) {
	if j.parallel {
		return j.it.next(), nil
	}
	if j.ht != nil {
		return j.hashNext()
	}
	return j.loopNext()
}

// hashNext probes the hash table with the next probe-side batch.
func (j *joinOp) hashNext() (*types.Batch, error) {
	for {
		if len(j.pendingOut) > 0 {
			b := j.pendingOut[0]
			j.pendingOut = j.pendingOut[1:]
			return b, nil
		}
		if err := faultinject.Fire("exec.join.probe"); err != nil {
			return nil, err
		}
		pb, err := j.probe.Next()
		if err != nil || pb == nil {
			return nil, err
		}
		bs, err := j.pr.probeBatch(pb)
		if err != nil {
			return nil, err
		}
		j.pendingOut = append(j.pendingOut, bs...)
	}
}

// prober holds the per-worker probe state of a hash join: its own compiled
// residual evaluator (compiled closures are not shared across goroutines)
// over the operator-wide read-only hash table.
type prober struct {
	j        *joinOp
	residual expr.Evaluator
}

func (j *joinOp) newProber() (*prober, error) {
	pr := &prober{j: j}
	if j.node.Residual != nil {
		ev, err := expr.Compile(j.node.Residual)
		if err != nil {
			return nil, err
		}
		pr.residual = ev
	}
	return pr, nil
}

// probeBatch joins one probe-side batch against the hash table, returning
// the matched rows followed by any left-join NULL-extended rows.
func (p *prober) probeBatch(pb *types.Batch) ([]*types.Batch, error) {
	j := p.j
	probeKeys := j.node.EquiRight
	buildKeys := j.node.EquiLeft
	if !j.buildIsLeft {
		probeKeys, buildKeys = j.node.EquiLeft, j.node.EquiRight
	}
	n := pb.Len()
	var buildRefs []rowRef
	var probeIdx []int
	var unmatched []int // left-join probe rows with no match
	for i := 0; i < n; i++ {
		h, ok := rowKeyHash(pb, probeKeys, i)
		matched := false
		if ok {
			for _, ref := range j.ht.lookup(h) {
				bb := j.ht.mat.Batches[ref.batch]
				if keysEqual(pb, probeKeys, i, bb, buildKeys, ref.row) {
					buildRefs = append(buildRefs, ref)
					probeIdx = append(probeIdx, i)
					matched = true
				}
			}
		}
		if !matched && j.node.Type == plan.LeftJoin {
			unmatched = append(unmatched, i)
		}
	}
	out, keep, err := p.assemble(pb, probeIdx, buildRefs)
	if err != nil {
		return nil, err
	}
	var res []*types.Batch
	if out != nil && out.Len() > 0 {
		res = append(res, out)
	}
	// For left joins, rows eliminated by the residual also count as
	// unmatched; track which probe rows survived.
	if j.node.Type == plan.LeftJoin {
		stillMatched := map[int]bool{}
		for oi, pi := range probeIdx {
			if keep == nil || keep[oi] {
				stillMatched[pi] = true
			}
		}
		for _, pi := range probeIdx {
			if !stillMatched[pi] {
				unmatched = append(unmatched, pi)
			}
		}
		// Deduplicate: a probe row with several candidates may appear in
		// unmatched repeatedly.
		seen := map[int]bool{}
		nullRows := types.NewBatch(j.schema)
		for _, pi := range unmatched {
			if seen[pi] || stillMatched[pi] {
				continue
			}
			seen[pi] = true
			row := make([]types.Value, 0, len(j.schema))
			row = append(row, pb.Row(pi)...)
			for _, c := range j.schema[len(pb.Cols):] {
				row = append(row, types.NewNull(c.Type))
			}
			nullRows.AppendRow(row)
		}
		if nullRows.Len() > 0 {
			res = append(res, nullRows)
		}
	}
	return res, nil
}

// assemble materializes matched pairs in output column order (left then
// right), applying the residual predicate. keep reports which output rows
// survived the residual (nil = all).
func (p *prober) assemble(pb *types.Batch, probeIdx []int, buildRefs []rowRef) (*types.Batch, []bool, error) {
	j := p.j
	if len(probeIdx) == 0 {
		return nil, nil, nil
	}
	nl := len(j.node.L.Schema())
	out := &types.Batch{Schema: j.schema, Cols: make([]*types.Column, len(j.schema))}
	for ci := range j.schema {
		fromLeft := ci < nl
		srcCol := ci
		if !fromLeft {
			srcCol = ci - nl
		}
		if fromLeft != j.buildIsLeft {
			// Probe-side column: a single gather.
			out.Cols[ci] = pb.Cols[srcCol].Gather(probeIdx)
			continue
		}
		// Build-side column: rows scatter across the materialized batches.
		col := types.NewColumn(j.schema[ci].Type, len(probeIdx))
		for k := range probeIdx {
			ref := buildRefs[k]
			col.Append(j.ht.mat.Batches[ref.batch].Cols[srcCol].Value(ref.row))
		}
		out.Cols[ci] = col
	}
	if p.residual == nil {
		return out, nil, nil
	}
	c, err := p.residual(out)
	if err != nil {
		return nil, nil, err
	}
	keep := make([]bool, out.Len())
	idx := make([]int, 0, out.Len())
	for i := range keep {
		keep[i] = !c.IsNull(i) && c.Bools[i]
		if keep[i] {
			idx = append(idx, i)
		}
	}
	if len(idx) == out.Len() {
		return out, keep, nil
	}
	return out.Gather(idx), keep, nil
}

// loopNext implements block nested-loop join (cross joins and non-equi
// conditions).
func (j *joinOp) loopNext() (*types.Batch, error) {
	for {
		if len(j.pendingOut) > 0 {
			b := j.pendingOut[0]
			j.pendingOut = j.pendingOut[1:]
			return b, nil
		}
		if j.done {
			return nil, nil
		}
		if j.nlLeft == nil {
			lb, err := j.left.Next()
			if err != nil {
				return nil, err
			}
			if lb == nil {
				j.done = true
				continue
			}
			j.nlLeft = lb
			j.nlMatched = make([]bool, lb.Len())
			j.nlRight = 0
		}
		if j.nlRight >= len(j.rightMat.Batches) {
			// Finished all right batches for this left batch.
			if j.node.Type == plan.LeftJoin {
				nullRows := types.NewBatch(j.schema)
				for i, m := range j.nlMatched {
					if m {
						continue
					}
					row := append([]types.Value{}, j.nlLeft.Row(i)...)
					for _, c := range j.schema[len(j.nlLeft.Cols):] {
						row = append(row, types.NewNull(c.Type))
					}
					nullRows.AppendRow(row)
				}
				if nullRows.Len() > 0 {
					j.pendingOut = append(j.pendingOut, nullRows)
				}
			}
			j.nlLeft = nil
			continue
		}
		rb := j.rightMat.Batches[j.nlRight]
		j.nlRight++
		out, err := j.crossBlock(j.nlLeft, rb)
		if err != nil {
			return nil, err
		}
		if out != nil && out.Len() > 0 {
			return out, nil
		}
	}
}

// crossBlock produces the filtered cross product of two batches and
// records which left rows matched. Output columns are built column-wise:
// left values repeat across the right block, right columns are copied
// wholesale per left row.
func (j *joinOp) crossBlock(lb, rb *types.Batch) (*types.Batch, error) {
	ln, rn := lb.Len(), rb.Len()
	nl := len(lb.Cols)
	out := &types.Batch{Schema: j.schema, Cols: make([]*types.Column, len(j.schema))}
	for ci := range j.schema {
		out.Cols[ci] = types.NewColumn(j.schema[ci].Type, ln*rn)
	}
	leftIdx := make([]int, 0, ln*rn)
	for li := 0; li < ln; li++ {
		for ci, c := range lb.Cols {
			out.Cols[ci].AppendRepeat(c.Value(li), rn)
		}
		for ci, c := range rb.Cols {
			out.Cols[nl+ci].AppendColumn(c)
		}
		for ri := 0; ri < rn; ri++ {
			leftIdx = append(leftIdx, li)
		}
	}
	if j.onEval == nil {
		for i := range j.nlMatched {
			j.nlMatched[i] = true
		}
		return out, nil
	}
	c, err := j.onEval(out)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, out.Len())
	for i := 0; i < out.Len(); i++ {
		if !c.IsNull(i) && c.Bools[i] {
			idx = append(idx, i)
			j.nlMatched[leftIdx[i]] = true
		}
	}
	if len(idx) == 0 {
		return nil, nil
	}
	if len(idx) == out.Len() {
		return out, nil
	}
	return out.Gather(idx), nil
}
