package exec

import (
	"lambdadb/internal/expr"
	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// rowRef addresses a row inside a Materialized relation.
type rowRef struct {
	batch int
	row   int
}

// hashTable is a chained hash table over materialized rows keyed by a set
// of columns. NULL keys never match (SQL equi-join semantics).
type hashTable struct {
	mat     *Materialized
	keyCols []int
	buckets map[uint64][]rowRef
}

func buildHashTable(mat *Materialized, keyCols []int) *hashTable {
	ht := &hashTable{mat: mat, keyCols: keyCols,
		buckets: make(map[uint64][]rowRef, mat.NumRows)}
	for bi, b := range mat.Batches {
		n := b.Len()
		for i := 0; i < n; i++ {
			h, ok := rowKeyHash(b, keyCols, i)
			if !ok {
				continue // NULL key never joins
			}
			ht.buckets[h] = append(ht.buckets[h], rowRef{bi, i})
		}
	}
	return ht
}

// rowKeyHash hashes the key columns of row i; ok is false when any key is
// NULL.
func rowKeyHash(b *types.Batch, cols []int, i int) (uint64, bool) {
	var h uint64
	for _, c := range cols {
		col := b.Cols[c]
		if col.IsNull(i) {
			return 0, false
		}
		h = types.HashCombine(h, col.Value(i).Hash())
	}
	return h, true
}

// keysEqual compares key columns between two rows.
func keysEqual(a *types.Batch, aCols []int, ai int, b *types.Batch, bCols []int, bi int) bool {
	for k := range aCols {
		if !a.Cols[aCols[k]].Value(ai).Equal(b.Cols[bCols[k]].Value(bi)) {
			return false
		}
	}
	return true
}

// joinOp executes inner, left-outer, and cross joins. With equi keys it is
// a hash join; otherwise a block nested-loop join.
type joinOp struct {
	node   *plan.Join
	left   Operator
	right  Operator
	schema types.Schema

	residual expr.Evaluator // nil when no residual predicate
	onEval   expr.Evaluator // nested-loop condition

	ctx *Context

	// Hash-join state.
	ht          *hashTable
	probe       Operator // operator streamed against the hash table
	buildIsLeft bool

	// Left-join bookkeeping: rows of the left (probe) side that matched.
	pendingOut []*types.Batch

	// Nested-loop state.
	rightMat  *Materialized
	nlLeft    *types.Batch
	nlMatched []bool
	nlRight   int
	done      bool
}

func newJoinOp(n *plan.Join) (Operator, error) {
	l, err := Build(n.L)
	if err != nil {
		return nil, err
	}
	r, err := Build(n.R)
	if err != nil {
		return nil, err
	}
	j := &joinOp{node: n, left: l, right: r, schema: n.Schema()}
	if n.Residual != nil {
		ev, err := expr.Compile(n.Residual)
		if err != nil {
			return nil, err
		}
		j.residual = ev
	}
	if n.On != nil && len(n.EquiLeft) == 0 {
		ev, err := expr.Compile(n.On)
		if err != nil {
			return nil, err
		}
		j.onEval = ev
	}
	return j, nil
}

func (j *joinOp) Schema() types.Schema { return j.schema }

func (j *joinOp) Open(ctx *Context) error {
	j.ctx = ctx
	j.done = false
	j.pendingOut = nil
	useHash := len(j.node.EquiLeft) > 0 &&
		(j.node.Type == plan.InnerJoin || j.node.Type == plan.LeftJoin)
	if useHash {
		// Inner joins build on the left (the optimizer put the smaller
		// side there); left-outer joins must probe with the left side, so
		// they build on the right.
		j.buildIsLeft = j.node.Type == plan.InnerJoin
		buildOp, buildKeys := j.left, j.node.EquiLeft
		probeOp := j.right
		if !j.buildIsLeft {
			buildOp, buildKeys = j.right, j.node.EquiRight
			probeOp = j.left
		}
		mat, err := Drain(buildOp, ctx)
		if err != nil {
			return err
		}
		j.ht = buildHashTable(mat, buildKeys)
		j.probe = probeOp
		return probeOp.Open(ctx)
	}
	// Nested loop: materialize the right side, stream the left.
	mat, err := Drain(j.right, ctx)
	if err != nil {
		return err
	}
	j.rightMat = mat
	return j.left.Open(ctx)
}

func (j *joinOp) Close() error {
	if j.ht != nil && j.probe != nil {
		return j.probe.Close()
	}
	return j.left.Close()
}

func (j *joinOp) Next() (*types.Batch, error) {
	if j.ht != nil {
		return j.hashNext()
	}
	return j.loopNext()
}

// hashNext probes the hash table with the next probe-side batch.
func (j *joinOp) hashNext() (*types.Batch, error) {
	for {
		if len(j.pendingOut) > 0 {
			b := j.pendingOut[0]
			j.pendingOut = j.pendingOut[1:]
			return b, nil
		}
		pb, err := j.probe.Next()
		if err != nil || pb == nil {
			return nil, err
		}
		out, err := j.probeBatch(pb)
		if err != nil {
			return nil, err
		}
		if out != nil && out.Len() > 0 {
			return out, nil
		}
	}
}

func (j *joinOp) probeBatch(pb *types.Batch) (*types.Batch, error) {
	probeKeys := j.node.EquiRight
	buildKeys := j.node.EquiLeft
	if !j.buildIsLeft {
		probeKeys, buildKeys = j.node.EquiLeft, j.node.EquiRight
	}
	n := pb.Len()
	var buildRefs []rowRef
	var probeIdx []int
	var unmatched []int // left-join probe rows with no match
	for i := 0; i < n; i++ {
		h, ok := rowKeyHash(pb, probeKeys, i)
		matched := false
		if ok {
			for _, ref := range j.ht.buckets[h] {
				bb := j.ht.mat.Batches[ref.batch]
				if keysEqual(pb, probeKeys, i, bb, buildKeys, ref.row) {
					buildRefs = append(buildRefs, ref)
					probeIdx = append(probeIdx, i)
					matched = true
				}
			}
		}
		if !matched && j.node.Type == plan.LeftJoin {
			unmatched = append(unmatched, i)
		}
	}
	out, keep, err := j.assemble(pb, probeIdx, buildRefs)
	if err != nil {
		return nil, err
	}
	// For left joins, rows eliminated by the residual also count as
	// unmatched; track which probe rows survived.
	if j.node.Type == plan.LeftJoin {
		stillMatched := map[int]bool{}
		for oi, pi := range probeIdx {
			if keep == nil || keep[oi] {
				stillMatched[pi] = true
			}
		}
		for _, pi := range probeIdx {
			if !stillMatched[pi] {
				unmatched = append(unmatched, pi)
			}
		}
		// Deduplicate: a probe row with several candidates may appear in
		// unmatched repeatedly.
		seen := map[int]bool{}
		nullRows := types.NewBatch(j.schema)
		for _, pi := range unmatched {
			if seen[pi] || stillMatched[pi] {
				continue
			}
			seen[pi] = true
			row := make([]types.Value, 0, len(j.schema))
			row = append(row, pb.Row(pi)...)
			for _, c := range j.schema[len(pb.Cols):] {
				row = append(row, types.NewNull(c.Type))
			}
			nullRows.AppendRow(row)
		}
		if nullRows.Len() > 0 {
			j.pendingOut = append(j.pendingOut, nullRows)
		}
	}
	return out, nil
}

// assemble materializes matched pairs in output column order (left then
// right), applying the residual predicate. keep reports which output rows
// survived the residual (nil = all).
func (j *joinOp) assemble(pb *types.Batch, probeIdx []int, buildRefs []rowRef) (*types.Batch, []bool, error) {
	if len(probeIdx) == 0 {
		return nil, nil, nil
	}
	nl := len(j.node.L.Schema())
	out := &types.Batch{Schema: j.schema, Cols: make([]*types.Column, len(j.schema))}
	for ci := range j.schema {
		fromLeft := ci < nl
		srcCol := ci
		if !fromLeft {
			srcCol = ci - nl
		}
		if fromLeft != j.buildIsLeft {
			// Probe-side column: a single gather.
			out.Cols[ci] = pb.Cols[srcCol].Gather(probeIdx)
			continue
		}
		// Build-side column: rows scatter across the materialized batches.
		col := types.NewColumn(j.schema[ci].Type, len(probeIdx))
		for k := range probeIdx {
			ref := buildRefs[k]
			col.Append(j.ht.mat.Batches[ref.batch].Cols[srcCol].Value(ref.row))
		}
		out.Cols[ci] = col
	}
	if j.residual == nil {
		return out, nil, nil
	}
	c, err := j.residual(out)
	if err != nil {
		return nil, nil, err
	}
	keep := make([]bool, out.Len())
	idx := make([]int, 0, out.Len())
	for i := range keep {
		keep[i] = !c.IsNull(i) && c.Bools[i]
		if keep[i] {
			idx = append(idx, i)
		}
	}
	if len(idx) == out.Len() {
		return out, keep, nil
	}
	return out.Gather(idx), keep, nil
}

// loopNext implements block nested-loop join (cross joins and non-equi
// conditions).
func (j *joinOp) loopNext() (*types.Batch, error) {
	for {
		if len(j.pendingOut) > 0 {
			b := j.pendingOut[0]
			j.pendingOut = j.pendingOut[1:]
			return b, nil
		}
		if j.done {
			return nil, nil
		}
		if j.nlLeft == nil {
			lb, err := j.left.Next()
			if err != nil {
				return nil, err
			}
			if lb == nil {
				j.done = true
				continue
			}
			j.nlLeft = lb
			j.nlMatched = make([]bool, lb.Len())
			j.nlRight = 0
		}
		if j.nlRight >= len(j.rightMat.Batches) {
			// Finished all right batches for this left batch.
			if j.node.Type == plan.LeftJoin {
				nullRows := types.NewBatch(j.schema)
				for i, m := range j.nlMatched {
					if m {
						continue
					}
					row := append([]types.Value{}, j.nlLeft.Row(i)...)
					for _, c := range j.schema[len(j.nlLeft.Cols):] {
						row = append(row, types.NewNull(c.Type))
					}
					nullRows.AppendRow(row)
				}
				if nullRows.Len() > 0 {
					j.pendingOut = append(j.pendingOut, nullRows)
				}
			}
			j.nlLeft = nil
			continue
		}
		rb := j.rightMat.Batches[j.nlRight]
		j.nlRight++
		out, err := j.crossBlock(j.nlLeft, rb)
		if err != nil {
			return nil, err
		}
		if out != nil && out.Len() > 0 {
			return out, nil
		}
	}
}

// crossBlock produces the filtered cross product of two batches and
// records which left rows matched. Output columns are built column-wise:
// left values repeat across the right block, right columns are copied
// wholesale per left row.
func (j *joinOp) crossBlock(lb, rb *types.Batch) (*types.Batch, error) {
	ln, rn := lb.Len(), rb.Len()
	nl := len(lb.Cols)
	out := &types.Batch{Schema: j.schema, Cols: make([]*types.Column, len(j.schema))}
	for ci := range j.schema {
		out.Cols[ci] = types.NewColumn(j.schema[ci].Type, ln*rn)
	}
	leftIdx := make([]int, 0, ln*rn)
	for li := 0; li < ln; li++ {
		for ci, c := range lb.Cols {
			out.Cols[ci].AppendRepeat(c.Value(li), rn)
		}
		for ci, c := range rb.Cols {
			out.Cols[nl+ci].AppendColumn(c)
		}
		for ri := 0; ri < rn; ri++ {
			leftIdx = append(leftIdx, li)
		}
	}
	if j.onEval == nil {
		for i := range j.nlMatched {
			j.nlMatched[i] = true
		}
		return out, nil
	}
	c, err := j.onEval(out)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, out.Len())
	for i := 0; i < out.Len(); i++ {
		if !c.IsNull(i) && c.Bools[i] {
			idx = append(idx, i)
			j.nlMatched[leftIdx[i]] = true
		}
	}
	if len(idx) == 0 {
		return nil, nil
	}
	if len(idx) == out.Len() {
		return out, nil
	}
	return out.Gather(idx), nil
}
