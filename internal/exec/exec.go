// Package exec implements the vectorized (batch-at-a-time) physical
// execution engine: relational operators, the paper's iterate operator and
// recursive CTEs, and the bridges to the analytical operators.
//
// Operators follow the Volcano protocol with batches: Open prepares state,
// Next returns the next batch (nil at end), Close releases resources.
// Parallelism is morsel-style: pipelines rooted at a base-table scan can be
// split into physical row ranges and executed by a worker pool (used by
// aggregation and the analytical operators' input materialization).
package exec

import (
	"context"
	"fmt"
	"runtime"

	"lambdadb/internal/plan"
	"lambdadb/internal/types"
)

// Context carries per-query execution state.
type Context struct {
	// Workers is the parallelism degree for morsel-parallel fragments.
	Workers int
	// Bindings maps working-table names (ITERATE, recursive CTEs) to their
	// current contents.
	Bindings map[string]*Materialized
	// OnIndexProbe, when set, is invoked once per completed index-scan
	// operator with the number of rows it produced (engine telemetry).
	OnIndexProbe func(rows int64)

	// goCtx governs cancellation and deadlines; nil means no cancellation
	// (context.Background semantics). Operators check it at morsel
	// boundaries via Err, so a cancelled query aborts within one morsel's
	// work even inside worker pools.
	goCtx context.Context
	// mem is the per-query memory accountant; nil means unlimited.
	mem *memAccountant
	// stats is the per-query telemetry collector; nil means disarmed (the
	// default), in which case buildWith constructs the exact seed operator
	// tree with no wrappers.
	stats *StatsCollector

	// epoch counts iteration rounds of the innermost running ITERATE /
	// recursive CTE; epoch-scoped Shared subplans are recomputed when it
	// advances.
	epoch uint64
	// shared caches materialized Shared subplans.
	shared sharedCache
}

// AttachContext sets the Go context governing cancellation and deadlines
// for this query.
func (c *Context) AttachContext(ctx context.Context) { c.goCtx = ctx }

// Err returns context.Canceled / context.DeadlineExceeded once the query's
// context is done, nil otherwise. Nil-safe; operators call it at every
// morsel boundary.
func (c *Context) Err() error {
	if c == nil || c.goCtx == nil {
		return nil
	}
	return c.goCtx.Err()
}

// doneCh exposes the cancellation channel for producer-goroutine selects;
// the nil channel (no context) blocks forever, which is the desired no-op.
func (c *Context) doneCh() <-chan struct{} {
	if c == nil || c.goCtx == nil {
		return nil
	}
	return c.goCtx.Done()
}

// BumpEpoch advances the iteration epoch, invalidating epoch-scoped shared
// materializations. The iterate and recursive-CTE operators call it once
// per iteration.
func (c *Context) BumpEpoch() { c.epoch++ }

// EnableStats arms per-operator telemetry for this query and returns the
// collector. It also ensures a memory accountant exists (with an effectively
// unlimited budget when none was configured) so PeakBytes reports the
// query's materialization high-water mark.
func (c *Context) EnableStats() *StatsCollector {
	if c.stats == nil {
		c.stats = newStatsCollector()
	}
	if c.mem == nil {
		c.mem = &memAccountant{limit: int64(^uint64(0) >> 1)}
	}
	return c.stats
}

// statsCollector returns the query's collector, nil when telemetry is
// disarmed. Nil-safe so plan-splitting helpers can call it with no context.
func (c *Context) statsCollector() *StatsCollector {
	if c == nil {
		return nil
	}
	return c.stats
}

// NewContext returns a Context with default parallelism.
func NewContext() *Context {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return &Context{
		Workers:  w,
		Bindings: map[string]*Materialized{},
	}
}

// workers returns the effective parallelism degree, clamped to >= 1, so
// operators never have to defend against zero or negative Workers values
// set by callers that bypass NewContext.
func (c *Context) workers() int {
	if c == nil || c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// Operator is a physical operator.
type Operator interface {
	// Schema returns the operator's output layout.
	Schema() types.Schema
	// Open prepares the operator for execution.
	Open(ctx *Context) error
	// Next returns the next output batch, or nil when exhausted.
	Next() (*types.Batch, error)
	// Close releases resources. It is safe to call after a failed Open.
	Close() error
}

// Materialized is a fully computed relation.
type Materialized struct {
	Schema  types.Schema
	Batches []*types.Batch
	NumRows int
}

// Append adds a batch.
func (m *Materialized) Append(b *types.Batch) {
	if b == nil || b.Len() == 0 {
		return
	}
	m.Batches = append(m.Batches, b)
	m.NumRows += b.Len()
}

// Rows flattens the result into value rows (client/result use).
func (m *Materialized) Rows() [][]types.Value {
	out := make([][]types.Value, 0, m.NumRows)
	for _, b := range m.Batches {
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
	return out
}

// SliceRows returns batches covering rows [lo, hi) of the materialized
// relation, slicing the boundary batches. hi <= 0 means to the end. The
// returned batches may alias m's storage.
func (m *Materialized) SliceRows(lo, hi int) []*types.Batch {
	if hi <= 0 || hi > m.NumRows {
		hi = m.NumRows
	}
	var out []*types.Batch
	base := 0
	for _, b := range m.Batches {
		n := b.Len()
		if base+n <= lo {
			base += n
			continue
		}
		if base >= hi {
			break
		}
		from, to := 0, n
		if lo > base {
			from = lo - base
		}
		if hi < base+n {
			to = hi - base
		}
		if from == 0 && to == n {
			out = append(out, b)
		} else {
			out = append(out, b.Slice(from, to))
		}
		base += n
	}
	return out
}

// Scan yields the materialized batches.
func (m *Materialized) Scan(yield func(*types.Batch) error) error {
	for _, b := range m.Batches {
		if err := yield(b); err != nil {
			return err
		}
	}
	return nil
}

// buildHook lets tests inject physical operators for test-only plan nodes.
var buildHook func(plan.Node) (Operator, bool)

// Build translates a logical plan into a physical operator tree with
// telemetry disarmed.
func Build(p plan.Node) (Operator, error) { return buildWith(p, nil) }

// buildFor builds a plan for execution under ctx, wrapping operators with
// telemetry when the query's collector is armed.
func buildFor(p plan.Node, ctx *Context) (Operator, error) {
	return buildWith(p, ctx.statsCollector())
}

// buildWith translates a logical plan into a physical operator tree. With a
// nil collector the result is exactly the tree Build produced before the
// telemetry layer existed; with a collector every operator (Alias nodes are
// transparent) is wrapped in a statsOp keyed by its plan node.
func buildWith(p plan.Node, sc *StatsCollector) (Operator, error) {
	if buildHook != nil {
		if op, ok := buildHook(p); ok {
			return op, nil
		}
	}
	var op Operator
	var err error
	switch n := p.(type) {
	case *plan.Scan:
		op = newTableScan(n)
	case *plan.IndexScan:
		op = newIndexScan(n)
	case *plan.WorkingScan:
		op = newWorkingScan(n)
	case *plan.Values:
		op = newValuesOp(n)
	case *plan.Alias:
		return buildWith(n.Child, sc)
	case *plan.Shared:
		op = newSharedOp(n)
	case *plan.Filter:
		op, err = newFilterOp(n, sc)
	case *plan.Project:
		op, err = newProjectOp(n, sc)
	case *plan.Join:
		op, err = newJoinOp(n)
	case *plan.Aggregate:
		op, err = newAggOp(n)
	case *plan.Sort:
		op, err = newSortOp(n)
	case *plan.Limit:
		op, err = newLimitOp(n, sc)
	case *plan.Distinct:
		op, err = newDistinctOp(n, sc)
	case *plan.Union:
		op, err = newUnionOp(n, sc)
	case *plan.Iterate:
		op = newIterateOp(n)
	case *plan.RecursiveCTE:
		op = newRecursiveOp(n)
	case *plan.KMeans:
		op, err = newKMeansOp(n)
	case *plan.KMeansAssign:
		op, err = newKMeansAssignOp(n)
	case *plan.PageRank:
		op, err = newPageRankOp(n)
	case *plan.NaiveBayesTrain:
		op = newNBTrainOp(n)
	case *plan.NaiveBayesPredict:
		op = newNBPredictOp(n)
	default:
		return nil, fmt.Errorf("exec: no physical operator for %T", p)
	}
	if err != nil {
		return nil, err
	}
	if sc != nil {
		op = &statsOp{inner: op, node: p, sc: sc}
	}
	return op, nil
}

// Run builds, executes, and materializes a plan.
func Run(p plan.Node, ctx *Context) (*Materialized, error) {
	op, err := buildFor(p, ctx)
	if err != nil {
		return nil, err
	}
	return Drain(op, ctx)
}

// opLabel names an operator for error reporting (ResourceError.Operator,
// panic containment).
func opLabel(op Operator) string {
	switch o := op.(type) {
	case *statsOp:
		return opLabel(o.inner)
	case *tableScan:
		return "scan"
	case *indexScan:
		return "index-scan"
	case *workingScan:
		return "working-scan"
	case *valuesOp:
		return "values"
	case *sharedOp:
		return "shared"
	case *filterOp:
		return "filter"
	case *projectOp:
		return "project"
	case *joinOp:
		return "join"
	case *aggOp:
		return "aggregate"
	case *sortOp:
		return "sort"
	case *limitOp:
		return "limit"
	case *distinctOp:
		return "distinct"
	case *unionOp:
		return "union"
	case *iterateOp:
		return "iterate"
	case *recursiveOp:
		return "recursive-cte"
	}
	return fmt.Sprintf("%T", op)
}

// Drain opens an operator, collects all batches, and closes it. It is the
// serial executor boundary: operator panics are contained into
// *InternalError, cancellation is checked per batch, and collected batches
// are charged against the query's memory budget.
func Drain(op Operator, ctx *Context) (mat *Materialized, err error) {
	label := opLabel(op)
	defer containPanic(label, &err)
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	out := &Materialized{Schema: op.Schema()}
	for {
		if err := ctx.Err(); err != nil {
			op.Close()
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		if err := ctx.charge(label, batchBytes(b)); err != nil {
			op.Close()
			return nil, err
		}
		out.Append(b)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// matIterator drains a Materialized as batches (shared by several
// operators that deliver from a buffered result).
type matIterator struct {
	mat *Materialized
	pos int
}

func (it *matIterator) next() *types.Batch {
	if it.mat == nil || it.pos >= len(it.mat.Batches) {
		return nil
	}
	b := it.mat.Batches[it.pos]
	it.pos++
	return b
}
